// Figure 5: accepted load (throughput) vs. offered load under VCT,
// 8-phit packets. Panels: (a) uniform, (b) ADVG+1, (c) ADVG+h.
//
// Headline shapes reproduced (paper Sec. IV-A): the in-transit adaptive
// mechanisms beat Minimal under UN and beat Valiant/PB under ADVG;
// under ADVG+h Valiant and PB are pinned near 1/h while PAR-6/2 and OLM
// reach ~0.35 and RLM ~0.30 (h=8 numbers).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig05_throughput_vct", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 5: throughput vs offered load, VCT", cfg);

  struct Panel {
    const char* id;
    const char* pattern;
    int offset;
    std::vector<std::string> lineup;
  };
  const std::vector<Panel> panels = {
      {"5a_UN", "uniform", 0, bench::uniform_lineup()},
      {"5b_ADVG+1", "advg", 1, bench::adversarial_lineup()},
      {"5c_ADVG+h", "advg", cfg.h, bench::adversarial_lineup()},
  };

  for (const Panel& panel : panels) {
    SimConfig pc = cfg;
    pc.pattern = panel.pattern;
    pc.pattern_offset = panel.offset;
    std::cout << "\n## panel " << panel.id << "\n";
    const auto points =
        run_experiments(sweep_grid(pc, panel.lineup, default_loads(1.0, 6)));
    print_sweep(std::cout, points, Metric::kThroughput, "offered_load");
  }
  return 0;
}
