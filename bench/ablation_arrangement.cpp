// Ablation: absolute vs. palmtree global-link arrangement. Both wire each
// pair of groups exactly once; which router hosts the link changes which
// local links the adversarial patterns saturate.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main() {
  using namespace dfsim;
  SimConfig cfg = bench_defaults();
  bench::banner("Ablation: global arrangement (absolute vs palmtree)", cfg);

  CsvWriter csv(std::cout,
                {"arrangement", "pattern", "routing", "accepted_load"});
  for (const auto arr :
       {GlobalArrangement::kAbsolute, GlobalArrangement::kPalmtree}) {
    for (const char* pattern : {"advg", "uniform"}) {
      for (const char* routing : {"olm", "minimal"}) {
        SimConfig pc = cfg;
        pc.arrangement = arr;
        pc.routing = routing;
        pc.pattern = pattern;
        pc.pattern_offset = 1;
        pc.load = pattern == std::string("advg") ? 0.5 : 0.8;
        const SteadyResult r = run_steady(pc);
        csv.row({arr == GlobalArrangement::kAbsolute ? "absolute"
                                                     : "palmtree",
                 pattern, routing, CsvWriter::fmt(r.accepted_load)});
      }
    }
  }
  return 0;
}
