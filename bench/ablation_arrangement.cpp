// Ablation: absolute vs. palmtree global-link arrangement. Both wire each
// pair of groups exactly once; which router hosts the link changes which
// local links the adversarial patterns saturate.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("ablation_arrangement", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Ablation: global arrangement (absolute vs palmtree)", cfg);

  std::vector<ExperimentPoint> grid;
  for (const auto arr :
       {GlobalArrangement::kAbsolute, GlobalArrangement::kPalmtree}) {
    for (const char* pattern : {"advg", "uniform"}) {
      for (const char* routing : {"olm", "minimal"}) {
        ExperimentPoint pt;
        pt.cfg = cfg;
        pt.cfg.arrangement = arr;
        pt.cfg.routing = routing;
        pt.cfg.pattern = pattern;
        pt.cfg.pattern_offset = 1;
        pt.cfg.load = pattern == std::string("advg") ? 0.5 : 0.8;
        grid.push_back(std::move(pt));
      }
    }
  }
  const auto points = run_experiments(grid);

  CsvWriter csv(std::cout,
                {"arrangement", "pattern", "routing", "accepted_load"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SimConfig& pc = grid[i].cfg;
    csv.row({pc.arrangement == GlobalArrangement::kAbsolute ? "absolute"
                                                            : "palmtree",
             pc.pattern, pc.routing,
             CsvWriter::fmt(points[i].steady.accepted_load)});
  }
  return 0;
}
