// Figure 10: misrouting-threshold sweep for RLM/VCT under UNIFORM
// traffic — latency and throughput for thresholds 30..60%. Low thresholds
// misroute rarely (good for UN); the paper picks 45% as the compromise.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig10_threshold_un", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 10: RLM threshold sweep, uniform, VCT", cfg);
  cfg.routing = "rlm";
  cfg.pattern = "uniform";

  const std::vector<double> thresholds = {0.30, 0.40, 0.45, 0.50, 0.60};
  const std::vector<double> loads = default_loads(0.9, 6);

  std::vector<ExperimentPoint> grid;
  for (const double th : thresholds) {
    for (const double load : loads) {
      ExperimentPoint pt;
      pt.series = "rlm_th=" + CsvWriter::fmt(th * 100) + "%";
      pt.x = load;
      pt.cfg = cfg;
      pt.cfg.misroute_threshold = th;
      pt.cfg.load = load;
      grid.push_back(std::move(pt));
    }
  }
  const auto points = run_experiments(grid);

  std::cout << "\n## panel 10a_latency and 10b_throughput\n";
  CsvWriter csv(std::cout, {"series", "offered_load", "avg_latency_cycles",
                            "accepted_load"});
  for (const ExperimentResult& p : points) {
    csv.row({p.series, CsvWriter::fmt(p.x),
             CsvWriter::fmt(p.steady.avg_latency),
             CsvWriter::fmt(p.steady.accepted_load)});
  }
  return 0;
}
