// Figure 7: average latency vs. offered load under WORMHOLE flow control
// (80-phit packets, 8 flits x 10 phits; OLM excluded — VCT only).
// Panels: (a) uniform, (b) ADVG+1, (c) ADVG+h.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig07_latency_wh", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::configure_wormhole(cfg);
  bench::banner("Figure 7: latency vs offered load, wormhole", cfg);

  struct Panel {
    const char* id;
    const char* pattern;
    int offset;
    std::vector<std::string> lineup;
    double max_load;
  };
  const std::vector<Panel> panels = {
      {"7a_UN", "uniform", 0, bench::uniform_lineup_wh(), 0.4},
      {"7b_ADVG+1", "advg", 1, bench::adversarial_lineup_wh(), 0.5},
      {"7c_ADVG+h", "advg", cfg.h, bench::adversarial_lineup_wh(), 0.4},
  };

  for (const Panel& panel : panels) {
    SimConfig pc = cfg;
    pc.pattern = panel.pattern;
    pc.pattern_offset = panel.offset;
    std::cout << "\n## panel " << panel.id << "\n";
    const auto points = run_experiments(
        sweep_grid(pc, panel.lineup, default_loads(panel.max_load, 6)));
    print_sweep(std::cout, points, Metric::kLatency, "offered_load");
  }
  return 0;
}
