// Figure 8: accepted load vs. offered load under wormhole flow control
// (80-phit packets). Panels: (a) uniform, (b) ADVG+1, (c) ADVG+h.
//
// Paper headline: PAR-6/2 highest (extra VCs fight head-of-line blocking
// under WH), RLM close and clearly above Valiant/PB under adversarial
// traffic; Valiant/PB pinned near 1/h under ADVG+h.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig08_throughput_wh", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::configure_wormhole(cfg);
  bench::banner("Figure 8: throughput vs offered load, wormhole", cfg);

  struct Panel {
    const char* id;
    const char* pattern;
    int offset;
    std::vector<std::string> lineup;
  };
  const std::vector<Panel> panels = {
      {"8a_UN", "uniform", 0, bench::uniform_lineup_wh()},
      {"8b_ADVG+1", "advg", 1, bench::adversarial_lineup_wh()},
      {"8c_ADVG+h", "advg", cfg.h, bench::adversarial_lineup_wh()},
  };

  for (const Panel& panel : panels) {
    SimConfig pc = cfg;
    pc.pattern = panel.pattern;
    pc.pattern_offset = panel.offset;
    std::cout << "\n## panel " << panel.id << "\n";
    const auto points =
        run_experiments(sweep_grid(pc, panel.lineup, default_loads(1.0, 6)));
    print_sweep(std::cout, points, Metric::kThroughput, "offered_load");
  }
  return 0;
}
