// Shared scaffolding for the figure benches: banner, scale notes, and the
// routing line-ups each figure compares.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/simulator.hpp"
#include "api/sweep.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim::bench {

inline void banner(const std::string& what, const SimConfig& cfg) {
  const DragonflyTopology topo(cfg.h);
  std::cout << "# " << what << "\n";
  std::cout << "# " << topo.describe() << "\n";
  std::cout << "# flow="
            << (cfg.flow == FlowControl::kVirtualCutThrough ? "VCT"
                                                            : "wormhole")
            << " packet=" << cfg.packet_phits << " phits"
            << " warmup=" << cfg.warmup_cycles
            << " measure=" << cfg.measure_cycles << " seed=" << cfg.seed
            << "\n";
  std::cout << "# scale knobs: DF_FULL=1 (paper h=8), DF_H, DF_WARMUP, "
               "DF_MEASURE, DF_SEED, DF_BURST\n";
}

/// Paper Fig. 4/5 line-up under uniform traffic (Valiant is replaced by
/// Minimal as the reference, exactly as the paper plots it).
inline std::vector<std::string> uniform_lineup() {
  return {"par-6/2", "olm", "rlm", "minimal", "pb"};
}

/// Paper Fig. 4/5 line-up under adversarial traffic.
inline std::vector<std::string> adversarial_lineup() {
  return {"par-6/2", "olm", "rlm", "valiant", "pb"};
}

/// Wormhole line-ups exclude OLM (VCT-only, paper Sec. IV-B).
inline std::vector<std::string> uniform_lineup_wh() {
  return {"par-6/2", "rlm", "minimal", "pb"};
}
inline std::vector<std::string> adversarial_lineup_wh() {
  return {"par-6/2", "rlm", "valiant", "pb"};
}

inline void configure_wormhole(SimConfig& cfg) {
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;  // 8 flits of 10 phits (paper Sec. IV-B)
  cfg.flit_phits = 10;
}

}  // namespace dfsim::bench
