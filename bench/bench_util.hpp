// Shared scaffolding for the figure benches: banner, scale notes, the
// routing line-ups each figure compares, the --jobs flag, and the
// BENCH_sweep.json wall-clock reporter that tracks the perf trajectory of
// every figure bench across PRs.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/simulator.hpp"
#include "api/sweep.hpp"
#include "common/bench_json.hpp"
#include "common/env.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim::bench {

/// Parses the common bench flags. `--jobs=N` (or `--jobs N`) sets the
/// process-wide worker count used by every parallel sweep; DF_JOBS is the
/// env equivalent, and unset means hardware concurrency.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      runtime::set_default_jobs(std::atoi(arg + 7));
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      runtime::set_default_jobs(std::atoi(argv[++i]));
    }
  }
}

/// RAII wall-clock + memory reporter. Construct first thing in main();
/// on destruction it appends one record to the JSON array in
/// BENCH_sweep.json (path overridable via DF_BENCH_JSON, empty disables):
///   {"bench": "fig04_latency_vct", "wall_s": 12.34, "jobs": 8,
///    "peak_rss_mb": 210.5, "bytes_per_terminal": 13372}
/// Runs under DF_ENGINE=sharded report as "<name>+sharded" — a separate
/// perf-gate identity, so the two engines' trajectories never mask each
/// other in the fastest-of-N-records reduction.
class BenchReport {
 public:
  BenchReport(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    if (argv != nullptr) parse_args(argc, argv);
    const char* engine = std::getenv("DF_ENGINE");
    if (engine != nullptr && std::string(engine) == "sharded") {
      name_ += "+sharded";
    }
  }

  /// Terminal count of the (largest) shape the bench ran; enables the
  /// bytes_per_terminal field of the record.
  void set_terminals(std::int64_t terminals) { terminals_ = terminals; }

  ~BenchReport() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rss_mb =
        static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
    // Phase-profiler telemetry (DF_PROFILE=1): every profiled engine this
    // process ran folded its per-phase counters into the process-wide
    // accumulator at destruction; all-zero means profiling was off.
    std::string extra;
    const Engine::PhaseProfile prof = accumulated_phase_profile();
    if (prof.total_ns > 0) {
      std::ostringstream p;
      p << "\"serial_fraction\": " << prof.serial_fraction()
        << ", \"profiled_steps\": " << prof.steps
        << ", \"arrive_ns\": " << prof.arrive_ns
        << ", \"deliver_ns\": " << prof.deliver_ns
        << ", \"alloc_ns\": " << prof.alloc_ns
        << ", \"flush_ns\": " << prof.flush_ns;
      extra = p.str();
    }
    append_bench_record(name_, wall_s, runtime::default_jobs(), "", rss_mb,
                        terminals_, extra);
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t terminals_ = 0;
};

inline void banner(const std::string& what, const SimConfig& cfg) {
  const DragonflyTopology topo = cfg.make_topology();
  std::cout << "# " << what << "\n";
  std::cout << "# " << topo.describe() << "\n";
  std::cout << "# flow="
            << (cfg.flow == FlowControl::kVirtualCutThrough ? "VCT"
                                                            : "wormhole")
            << " packet=" << cfg.packet_phits << " phits"
            << " warmup=" << cfg.warmup_cycles
            << " measure=" << cfg.measure_cycles << " seed=" << cfg.seed
            << " jobs=" << runtime::default_jobs() << "\n";
  // Byte-identical to the pre-(p,a,h,g) banner for balanced shapes (the
  // figure CSVs are pinned); the unbalanced knobs are listed only when in
  // use, and are documented in the README "Topology" section.
  std::cout << "# scale knobs: DF_FULL=1 (paper h=8), DF_H, DF_WARMUP, "
               "DF_MEASURE, DF_SEED, DF_BURST; --jobs=N / DF_JOBS\n";
  if (!topo.balanced()) {
    std::cout << "# unbalanced shape knobs in effect: DF_P, DF_A, DF_G, "
                 "DF_TOPO\n";
  }
}

/// Paper Fig. 4/5 line-up under uniform traffic (Valiant is replaced by
/// Minimal as the reference, exactly as the paper plots it).
inline std::vector<std::string> uniform_lineup() {
  return {"par-6/2", "olm", "rlm", "minimal", "pb"};
}

/// Paper Fig. 4/5 line-up under adversarial traffic.
inline std::vector<std::string> adversarial_lineup() {
  return {"par-6/2", "olm", "rlm", "valiant", "pb"};
}

/// Wormhole line-ups exclude OLM (VCT-only, paper Sec. IV-B).
inline std::vector<std::string> uniform_lineup_wh() {
  return {"par-6/2", "rlm", "minimal", "pb"};
}
inline std::vector<std::string> adversarial_lineup_wh() {
  return {"par-6/2", "rlm", "valiant", "pb"};
}

inline void configure_wormhole(SimConfig& cfg) {
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;  // 8 flits of 10 phits (paper Sec. IV-B)
  cfg.flit_phits = 10;
}

}  // namespace dfsim::bench
