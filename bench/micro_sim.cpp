// google-benchmark micro measurements of the simulator substrate:
// cycle cost at several scales/loads, routing-decision machinery,
// topology arithmetic and the parity-sign table construction.
//
// Wall-clock of the whole run is appended to BENCH_sweep.json via
// BenchReport, so the perf trajectory of the engine hot path is recorded
// alongside the figure benches from PR to PR.
#include <benchmark/benchmark.h>

#include "api/config.hpp"
#include "bench_util.hpp"
#include "routing/factory.hpp"
#include "routing/parity_sign.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/pattern.hpp"

namespace {

using namespace dfsim;

void BM_EngineCycle(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  const double load = static_cast<double>(state.range(1)) / 100.0;
  const DragonflyTopology topo(h);
  auto routing = make_routing("olm", topo, {});
  UniformPattern pattern(topo);
  InjectionProcess inj;
  inj.load = load;
  EngineConfig ec;
  Engine engine(topo, ec, *routing, pattern, inj);
  engine.run_until(2000);  // warm the network to steady occupancy
  for (auto _ : state) {
    engine.step();
  }
  state.counters["terminals"] = topo.num_terminals();
  state.counters["phits/cycle"] = benchmark::Counter(
      static_cast<double>(engine.delivered_phits()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineCycle)
    ->Args({2, 30})
    ->Args({3, 5})  // low load: the active-router worklist's home turf
    ->Args({3, 30})
    ->Args({3, 80})
    ->Args({4, 50})
    ->Unit(benchmark::kMicrosecond);

void BM_ParitySignTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    LocalRouteRestriction r(RestrictionPolicy::kParitySign);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParitySignTableBuild);

void BM_AllowedIntermediates(benchmark::State& state) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  const int group = static_cast<int>(state.range(0));
  int i = 0;
  for (auto _ : state) {
    auto v = r.allowed_intermediates(i % group, (i + 1) % group, group);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_AllowedIntermediates)->Arg(8)->Arg(16);

void BM_TopologyGateway(benchmark::State& state) {
  const DragonflyTopology topo(8);
  GroupId g = 0;
  for (auto _ : state) {
    const GroupId target = (g + 7) % topo.num_groups();
    benchmark::DoNotOptimize(topo.gateway_router(g, target));
    benchmark::DoNotOptimize(topo.gateway_port(g, target));
    g = (g + 1) % topo.num_groups();
  }
}
BENCHMARK(BM_TopologyGateway);

void BM_RemoteEndpoint(benchmark::State& state) {
  const DragonflyTopology topo(8);
  RouterId r = 0;
  PortId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.remote_endpoint(r, p));
    p = (p + 1) % topo.first_terminal_port();
    if (p == 0) r = (r + 1) % topo.num_routers();
  }
}
BENCHMARK(BM_RemoteEndpoint);

}  // namespace

int main(int argc, char** argv) {
  dfsim::bench::BenchReport report("micro_sim");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
