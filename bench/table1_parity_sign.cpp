// Regenerates the paper's Table I: the 16 two-hop type combinations of
// the parity-sign restriction, with allowed/forbidden verdicts, plus the
// per-pair route-count guarantees it provides (Sec. III-B).
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "routing/parity_sign.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("table1_parity_sign", argc, argv);
  const LocalRouteRestriction restriction(RestrictionPolicy::kParitySign);

  std::cout << "# Table I: parity-sign 2-hop combinations\n";
  std::cout << "first,second,allowed\n";
  for (const auto& row : restriction.table()) {
    std::cout << to_string(row.first) << ',' << to_string(row.second) << ','
              << (row.allowed ? "YES" : "NO") << '\n';
  }

  std::cout << "\n# Route-count guarantees (>= h-1 per ordered pair)\n";
  std::cout << "h,group_size,min_two_hop_routes,max_two_hop_routes\n";
  const int max_h = static_cast<int>(env_int("DF_MAX_H", 16));
  for (int h = 2; h <= max_h; h *= 2) {
    const int a = DragonflyTopology(h).routers_per_group();
    std::cout << h << ',' << a << ','
              << restriction.min_two_hop_routes(a) << ','
              << restriction.max_two_hop_routes(a) << '\n';
  }
  return 0;
}
