// Transient response to a traffic change (the paper's core claim made
// visible over time): every source runs uniform traffic, then switches to
// ADVG+1 mid-run. Per-window accepted load shows the on-the-fly adaptive
// mechanisms (OLM, PB) absorbing the change — throughput dips at the
// switch and recovers within the measurement span as in-transit decisions
// start misrouting — while Minimal collapses onto the single minimal
// global link (~1/(a*p)) and stays there. Valiant is the flat reference:
// oblivious to the switch, paying its detour everywhere.
//
// Knobs: DF_TRAFFIC sets the pre-switch pattern (default un),
// DF_TRANSIENT_TO the post-switch one (default advg+1), DF_LOAD the
// offered load (default 0.4). Each phase is DF_MEASURE cycles split into
// DF_WINDOWS windows (default 8).
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig_transient", argc, argv);
  SimConfig cfg = bench_defaults();
  cfg.pattern = env_str("DF_TRAFFIC", "un");
  cfg.load = env_double("DF_LOAD", 0.4);
  const std::string to = env_str("DF_TRANSIENT_TO", "advg+1");
  const int windows = static_cast<int>(env_int("DF_WINDOWS", 8));

  bench::banner("Transient: throughput vs time across a " +
                    cfg.pattern + " -> " + to + " switch @" +
                    std::to_string(cfg.load),
                cfg);

  const std::vector<Phase> phases = {
      {cfg.measure_cycles, windows, "", -1.0},  // steady pre-switch span
      {cfg.measure_cycles, windows, to, -1.0},  // post-switch response
  };

  std::vector<ExperimentPoint> grid;
  for (const char* routing : {"minimal", "valiant", "olm", "pb"}) {
    ExperimentPoint pt;
    pt.series = routing;
    pt.cfg = cfg;
    pt.cfg.routing = routing;
    pt.phases = phases;
    grid.push_back(std::move(pt));
  }
  print_phased(std::cout, run_experiments(grid));
  return 0;
}
