// Ablation: parity-sign vs. sign-only vs. unrestricted local misrouting.
//
// (1) combinatorial: per-pair 2-hop route counts (sign-only starves some
//     pairs entirely — the paper's motivation for parity-sign);
// (2) dynamic: ADVL+1 throughput, where the starved pairs directly cost
//     bandwidth.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "routing/parity_sign.hpp"

int main() {
  using namespace dfsim;
  SimConfig cfg = bench_defaults();
  bench::banner("Ablation: local-route restriction policies", cfg);

  std::cout << "\n## route-count balance per policy (group of 2h)\n";
  {
    CsvWriter csv(std::cout, {"policy", "h", "min_routes", "max_routes"});
    for (const int h : {2, 4, 8}) {
      const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
      const LocalRouteRestriction so(RestrictionPolicy::kSignOnly);
      const LocalRouteRestriction none(RestrictionPolicy::kNone);
      csv.row({"parity-sign", CsvWriter::fmt(h),
               CsvWriter::fmt(ps.min_two_hop_routes(2 * h)),
               CsvWriter::fmt(ps.max_two_hop_routes(2 * h))});
      csv.row({"sign-only", CsvWriter::fmt(h),
               CsvWriter::fmt(so.min_two_hop_routes(2 * h)),
               CsvWriter::fmt(so.max_two_hop_routes(2 * h))});
      csv.row({"unrestricted", CsvWriter::fmt(h),
               CsvWriter::fmt(none.min_two_hop_routes(2 * h)),
               CsvWriter::fmt(none.max_two_hop_routes(2 * h))});
    }
  }

  std::cout << "\n## ADVL+1 throughput at offered load 1.0\n";
  {
    CsvWriter csv(std::cout, {"policy", "accepted_load", "deadlock"});
    for (const char* routing : {"rlm", "rlm-signonly"}) {
      SimConfig pc = cfg;
      pc.routing = routing;
      pc.pattern = "advl";
      pc.pattern_offset = 1;
      pc.load = 1.0;
      const SteadyResult r = run_steady(pc);
      csv.row({routing, CsvWriter::fmt(r.accepted_load),
               r.deadlock ? "yes" : "no"});
    }
  }
  return 0;
}
