// Ablation: parity-sign vs. sign-only vs. unrestricted local misrouting.
//
// (1) combinatorial: per-pair 2-hop route counts (sign-only starves some
//     pairs entirely — the paper's motivation for parity-sign);
// (2) dynamic: ADVL+1 throughput, where the starved pairs directly cost
//     bandwidth.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "routing/parity_sign.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("ablation_restriction", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Ablation: local-route restriction policies", cfg);

  std::cout << "\n## route-count balance per policy (group of a = 2h)\n";
  {
    CsvWriter csv(std::cout, {"policy", "h", "min_routes", "max_routes"});
    for (const int h : {2, 4, 8}) {
      // Group size through the topology (a = 2h for balanced shapes).
      const int a = DragonflyTopology(h).routers_per_group();
      const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
      const LocalRouteRestriction so(RestrictionPolicy::kSignOnly);
      const LocalRouteRestriction none(RestrictionPolicy::kNone);
      csv.row({"parity-sign", CsvWriter::fmt(h),
               CsvWriter::fmt(ps.min_two_hop_routes(a)),
               CsvWriter::fmt(ps.max_two_hop_routes(a))});
      csv.row({"sign-only", CsvWriter::fmt(h),
               CsvWriter::fmt(so.min_two_hop_routes(a)),
               CsvWriter::fmt(so.max_two_hop_routes(a))});
      csv.row({"unrestricted", CsvWriter::fmt(h),
               CsvWriter::fmt(none.min_two_hop_routes(a)),
               CsvWriter::fmt(none.max_two_hop_routes(a))});
    }
  }

  std::cout << "\n## ADVL+1 throughput at offered load 1.0\n";
  {
    std::vector<ExperimentPoint> grid;
    for (const char* routing : {"rlm", "rlm-signonly"}) {
      ExperimentPoint pt;
      pt.series = routing;
      pt.cfg = cfg;
      pt.cfg.routing = routing;
      pt.cfg.pattern = "advl";
      pt.cfg.pattern_offset = 1;
      pt.cfg.load = 1.0;
      grid.push_back(std::move(pt));
    }
    const auto points = run_experiments(grid);
    CsvWriter csv(std::cout, {"policy", "accepted_load", "deadlock"});
    for (const ExperimentResult& p : points) {
      csv.row({p.series, CsvWriter::fmt(p.steady.accepted_load),
               p.steady.deadlock ? "yes" : "no"});
    }
  }
  return 0;
}
