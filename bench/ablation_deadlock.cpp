// Ablation / demonstration: why the restriction (or the escape path) is
// needed at 3/2 VCs. "rlm-unrestricted" allows the same local misrouting
// as RLM but with NO parity-sign filter: the intra-group CDG has cycles
// (see bench/table1 and the analysis tests) and the deadlock watchdog
// fires under adversarial-local stress, while RLM and OLM sail through
// the identical workload.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("ablation_deadlock", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Ablation: deadlock with unrestricted local misrouting",
                cfg);
  cfg.pattern = "advl";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  // Aggressive misrouting and tighter buffers make cyclic waits likely;
  // a modest watchdog keeps the bench fast.
  cfg.misroute_threshold = 0.9;
  cfg.local_buf_phits = 16;
  cfg.watchdog_cycles = 3000;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 16000;

  const std::vector<std::string> lineup = {"rlm-unrestricted", "rlm", "olm"};
  std::vector<ExperimentPoint> grid;
  for (const std::string& routing : lineup) {
    ExperimentPoint pt;
    pt.series = routing;
    pt.cfg = cfg;
    pt.cfg.routing = routing;
    grid.push_back(std::move(pt));
  }
  const auto points = run_experiments(grid);

  CsvWriter csv(std::cout,
                {"routing", "deadlock_detected", "accepted_load"});
  for (const ExperimentResult& p : points) {
    csv.row({p.series, p.steady.deadlock ? "YES" : "no",
             CsvWriter::fmt(p.steady.accepted_load)});
  }
  std::cout << "# note: rlm-unrestricted uses RLM's VC ladder without the\n"
               "# parity-sign filter; cyclic intra-group dependencies can\n"
               "# deadlock it. RLM (restriction) and OLM (escape paths)\n"
               "# complete the same workload deadlock-free.\n";
  return 0;
}
