// Figure 11: misrouting-threshold sweep for RLM/VCT under ADVG+1 —
// latency and throughput for thresholds 30..60%. High thresholds misroute
// eagerly (good under adversarial traffic); with Fig. 10 this motivates
// the paper's 45% compromise.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig11_threshold_advg1", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 11: RLM threshold sweep, ADVG+1, VCT", cfg);
  cfg.routing = "rlm";
  cfg.pattern = "advg";
  cfg.pattern_offset = 1;

  const std::vector<double> thresholds = {0.30, 0.40, 0.45, 0.50, 0.60};
  const std::vector<double> loads = default_loads(1.0, 6);

  std::vector<ExperimentPoint> grid;
  for (const double th : thresholds) {
    for (const double load : loads) {
      ExperimentPoint pt;
      pt.series = "rlm_th=" + CsvWriter::fmt(th * 100) + "%";
      pt.x = load;
      pt.cfg = cfg;
      pt.cfg.misroute_threshold = th;
      pt.cfg.load = load;
      grid.push_back(std::move(pt));
    }
  }
  const auto points = run_experiments(grid);

  std::cout << "\n## panel 11a_latency and 11b_throughput\n";
  CsvWriter csv(std::cout, {"series", "offered_load", "avg_latency_cycles",
                            "accepted_load"});
  for (const ExperimentResult& p : points) {
    csv.row({p.series, CsvWriter::fmt(p.x),
             CsvWriter::fmt(p.steady.avg_latency),
             CsvWriter::fmt(p.steady.accepted_load)});
  }
  return 0;
}
