// Figure 9: mixed adversarial traffic under wormhole flow control.
// (a) max throughput at offered load 1.0 vs. % global traffic;
// (b) burst consumption time (the paper scales the burst to 89 packets of
//     80 phits so the payload matches the VCT experiment's 1000 x 8).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig09_mixed_wh", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::configure_wormhole(cfg);
  bench::banner("Figure 9: mixed ADVG+h / ADVL+1, wormhole", cfg);
  cfg.pattern = "mixed";
  cfg.load = 1.0;
  // Keep total payload equal to the VCT burst: N x 8 phits == M x 80.
  cfg.burst_packets = std::max<std::uint64_t>(1, cfg.burst_packets / 10);

  const std::vector<std::string> lineup = {"par-6/2", "rlm", "pb"};
  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<ExperimentPoint> grid;
  for (const std::string& routing : lineup) {
    for (const double p : fractions) {
      ExperimentPoint pt;
      pt.series = routing;
      pt.x = p * 100.0;
      pt.cfg = cfg;
      pt.cfg.routing = routing;
      pt.cfg.global_fraction = p;
      grid.push_back(std::move(pt));
    }
  }

  const auto points = run_experiments(grid);

  std::cout << "\n## panel 9a_throughput\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "accepted_load"});
    for (const ExperimentResult& p : points) {
      csv.point(p.series, p.x, p.steady.accepted_load);
    }
  }

  std::cout << "\n## panel 9b_burst_consumption\n";
  {
    // Reuse the sweep's derived per-point seeds so both panels run the
    // same grid point with the same stream.
    const auto bursts = runtime::parallel_map<BurstResult>(
        grid.size(), 0, [&](std::size_t i) {
          SimConfig pc = grid[i].cfg;
          pc.seed = points[i].seed;
          return run_burst(pc);
        });
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "consumption_kcycles"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      csv.point(grid[i].series, grid[i].x,
                static_cast<double>(bursts[i].consumption_cycles) / 1000.0);
    }
  }
  return 0;
}
