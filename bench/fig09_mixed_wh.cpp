// Figure 9: mixed adversarial traffic under wormhole flow control.
// (a) max throughput at offered load 1.0 vs. % global traffic;
// (b) burst consumption time (the paper scales the burst to 89 packets of
//     80 phits so the payload matches the VCT experiment's 1000 x 8).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main() {
  using namespace dfsim;
  SimConfig cfg = bench_defaults();
  bench::configure_wormhole(cfg);
  bench::banner("Figure 9: mixed ADVG+h / ADVL+1, wormhole", cfg);
  cfg.pattern = "mixed";
  cfg.load = 1.0;
  // Keep total payload equal to the VCT burst: N x 8 phits == M x 80.
  cfg.burst_packets = std::max<std::uint64_t>(1, cfg.burst_packets / 10);

  const std::vector<std::string> lineup = {"par-6/2", "rlm", "pb"};
  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::cout << "\n## panel 9a_throughput\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "accepted_load"});
    for (const std::string& routing : lineup) {
      for (const double p : fractions) {
        SimConfig pc = cfg;
        pc.routing = routing;
        pc.global_fraction = p;
        const SteadyResult r = run_steady(pc);
        csv.point(routing, p * 100.0, r.accepted_load);
      }
    }
  }

  std::cout << "\n## panel 9b_burst_consumption\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "consumption_kcycles"});
    for (const std::string& routing : lineup) {
      for (const double p : fractions) {
        SimConfig pc = cfg;
        pc.routing = routing;
        pc.global_fraction = p;
        const BurstResult r = run_burst(pc);
        csv.point(routing, p * 100.0,
                  static_cast<double>(r.consumption_cycles) / 1000.0);
      }
    }
  }
  return 0;
}
