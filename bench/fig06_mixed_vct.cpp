// Figure 6: mixed adversarial traffic (p% ADVG+h, rest ADVL+1) under VCT.
// (a) max throughput at offered load 1.0 vs. % global traffic;
// (b) burst consumption time vs. % global traffic.
//
// Paper headline (h=8): at 0% global PB ~0.5 (Valiant detours), RLM 0.61,
// PAR-6/2 and OLM 0.79; OLM drains bursts in ~36% of PB's time, RLM ~42.5%.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main() {
  using namespace dfsim;
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 6: mixed ADVG+h / ADVL+1, VCT", cfg);
  cfg.pattern = "mixed";
  cfg.load = 1.0;

  const std::vector<std::string> lineup = {"par-6/2", "olm", "rlm", "pb"};
  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::cout << "\n## panel 6a_throughput\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "accepted_load"});
    for (const std::string& routing : lineup) {
      for (const double p : fractions) {
        SimConfig pc = cfg;
        pc.routing = routing;
        pc.global_fraction = p;
        const SteadyResult r = run_steady(pc);
        csv.point(routing, p * 100.0, r.accepted_load);
      }
    }
  }

  std::cout << "\n## panel 6b_burst_consumption\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "consumption_kcycles"});
    for (const std::string& routing : lineup) {
      for (const double p : fractions) {
        SimConfig pc = cfg;
        pc.routing = routing;
        pc.global_fraction = p;
        const BurstResult r = run_burst(pc);
        csv.point(routing, p * 100.0,
                  static_cast<double>(r.consumption_cycles) / 1000.0);
      }
    }
  }
  return 0;
}
