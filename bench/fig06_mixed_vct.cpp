// Figure 6: mixed adversarial traffic (p% ADVG+h, rest ADVL+1) under VCT.
// (a) max throughput at offered load 1.0 vs. % global traffic;
// (b) burst consumption time vs. % global traffic.
//
// Paper headline (h=8): at 0% global PB ~0.5 (Valiant detours), RLM 0.61,
// PAR-6/2 and OLM 0.79; OLM drains bursts in ~36% of PB's time, RLM ~42.5%.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig06_mixed_vct", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 6: mixed ADVG+h / ADVL+1, VCT", cfg);
  cfg.pattern = "mixed";
  cfg.load = 1.0;

  const std::vector<std::string> lineup = {"par-6/2", "olm", "rlm", "pb"};
  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<ExperimentPoint> grid;
  for (const std::string& routing : lineup) {
    for (const double p : fractions) {
      ExperimentPoint pt;
      pt.series = routing;
      pt.x = p * 100.0;
      pt.cfg = cfg;
      pt.cfg.routing = routing;
      pt.cfg.global_fraction = p;
      grid.push_back(std::move(pt));
    }
  }

  const auto points = run_experiments(grid);

  std::cout << "\n## panel 6a_throughput\n";
  {
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "accepted_load"});
    for (const ExperimentResult& p : points) {
      csv.point(p.series, p.x, p.steady.accepted_load);
    }
  }

  std::cout << "\n## panel 6b_burst_consumption\n";
  {
    // Reuse the sweep's derived per-point seeds so both panels run the
    // same grid point with the same stream.
    const auto bursts = runtime::parallel_map<BurstResult>(
        grid.size(), 0, [&](std::size_t i) {
          SimConfig pc = grid[i].cfg;
          pc.seed = points[i].seed;
          return run_burst(pc);
        });
    CsvWriter csv(std::cout,
                  {"series", "global_traffic_pct", "consumption_kcycles"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      csv.point(grid[i].series, grid[i].x,
                static_cast<double>(bursts[i].consumption_cycles) / 1000.0);
    }
  }
  return 0;
}
