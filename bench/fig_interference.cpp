// Multi-job interference under placement policies (not a paper figure —
// the paper stops at synthetic single-pattern traffic): four concurrent
// jobs run the same collective motif, once packed onto contiguous
// terminal blocks and once scattered by a seeded random placement, on a
// healthy and on a degraded network. Contiguous ring traffic is
// neighbor-local and every mechanism serves it; random placement turns
// each ring edge into a random inter-group flow, so a few global links
// pick up several flows at once — a hotspot Minimal is wired into while
// the in-transit adaptive mechanisms (OLM, PB) route around it. The CSV
// is per-job: each row is one job's accepted load and latency, so the
// interference (which job starves, which placement collides) is visible
// rather than averaged away.
//
// Knobs: DF_MOTIF sets the per-job motif (default ring-allreduce),
// DF_LOAD the offered load (default 0.45), DF_JOBS_N the job count
// (default 4), DF_FAULT_FRACTION the degraded panel's failure fraction
// (default 0.1, sampled with DF_FAULT_SEED).
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "traffic/workload.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig_interference", argc, argv);
  SimConfig cfg = bench_defaults();
  cfg.load = env_double("DF_LOAD", 0.45);
  const std::string motif = env_str("DF_MOTIF", "ring-allreduce");
  const long jobs_n = env_int("DF_JOBS_N", 4);
  const double fault_fraction = env_double("DF_FAULT_FRACTION", 0.1);
  // Balanced shapes wire exactly one global link per group pair, so the
  // never-disconnect fault sampler has nothing it may kill there; default
  // to the twice-trunked sibling unless the user pinned a shape (the same
  // choice fig_fault_degradation makes).
  if (cfg.topo.empty() && cfg.g == 0) {
    const TopoParams tp = cfg.topo_params();
    cfg.g = tp.a * tp.h / 2 + 1;
  }
  cfg.fault_spec.clear();

  bench::banner("Interference: " + std::to_string(jobs_n) + " " + motif +
                    " jobs, contiguous vs random placement @" +
                    std::to_string(cfg.load),
                cfg);
  std::cout << "# workload knobs: DF_MOTIF, DF_JOBS_N, DF_FAULT_FRACTION, "
               "DF_FAULT_SEED\n";

  const std::vector<std::string> lineup = {"minimal", "valiant", "olm",
                                           "pb"};
  const std::vector<std::string> placements = {"contig", "random"};
  struct Network {
    const char* id;
    double fraction;
  };
  const std::vector<Network> networks = {{"healthy", 0.0},
                                         {"faulted", fault_fraction}};

  std::cout << "\nplacement,network,routing,job,terminals,delivered,"
               "accepted_load,avg_latency,total_accepted\n";
  const DragonflyTopology topo = cfg.make_topology();
  for (const std::string& place : placements) {
    const std::string spec =
        "jobs:" + std::to_string(jobs_n) + ":place=" + place + ":" + motif;
    // One build up front for the job labels and sizes; the per-point
    // engines resolve the same spec (and the same partition — placement
    // is seeded by the spec, not by the run seed) themselves.
    const auto wl = make_workload(&topo, spec);
    const std::vector<std::int32_t> sizes = wl->job_sizes();

    std::vector<ExperimentPoint> grid;
    for (const Network& net : networks) {
      for (const std::string& routing : lineup) {
        ExperimentPoint pt;
        pt.series = place + "/" + net.id + "/" + routing;
        pt.cfg = cfg;
        pt.cfg.routing = routing;
        pt.cfg.workload = spec;
        pt.cfg.fault_fraction = net.fraction;
        grid.push_back(std::move(pt));
      }
    }
    const auto results = run_experiments(grid);
    std::size_t i = 0;
    for (const Network& net : networks) {
      for (const std::string& routing : lineup) {
        const SteadyResult& r = results[i++].steady;
        for (std::size_t j = 0; j < r.per_job.size(); ++j) {
          const TrafficWindow& w = r.per_job[j];
          std::printf("%s,%s,%s,%s,%d,%llu,%.6f,%.3f,%.6f\n",
                      place.c_str(), net.id, routing.c_str(),
                      wl->job_label(static_cast<int>(j)).c_str(),
                      static_cast<int>(sizes[j]),
                      static_cast<unsigned long long>(w.delivered),
                      w.accepted_load, w.avg_latency, r.accepted_load);
        }
      }
    }
  }
  return 0;
}
