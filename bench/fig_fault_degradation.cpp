// Fault degradation: accepted throughput vs. global-link failure fraction
// for Minimal, Valiant, OLM and Piggybacking under UN and ADVG+1.
//
// Not a paper figure — the paper only ever evaluates healthy networks —
// but the natural stress test of its thesis: in-transit adaptive routing
// claims to route around congestion, and a degraded dragonfly is
// congestion it cannot negotiate away. Each point samples a fault set
// (fraction of wired global links, seeded by DF_FAULT_SEED, never
// disconnecting a group pair) and runs a steady-state measurement at a
// fixed offered load near saturation; the series show how gracefully
// each mechanism sheds capacity as links die.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig_fault_degradation", argc, argv);
  SimConfig cfg = bench_defaults();
  // Balanced shapes wire exactly one global link per group pair, so the
  // never-disconnect sampler has nothing it may kill there. Unless the
  // user pinned a shape (DF_G / DF_TOPO), default to the twice-trunked
  // sibling — g = a*h/2 + 1 wires every pair exactly twice — whose spare
  // links are real failure candidates at every fraction swept below.
  if (cfg.topo.empty() && cfg.g == 0) {
    const TopoParams tp = cfg.topo_params();
    cfg.g = tp.a * tp.h / 2 + 1;
  }
  bench::banner("Fault degradation: throughput vs failure fraction", cfg);
  std::cout << "# fault knobs: DF_FAULT_SEED (sampled fault-set seed)\n";
  // The x-axis IS the sampled failure fraction; an explicit DF_FAULTS
  // spec would conflict with it at every nonzero point.
  cfg.fault_spec.clear();

  const std::vector<double> fractions = {0.0, 0.05, 0.1, 0.2};
  const std::vector<std::string> lineup = {"minimal", "valiant", "olm",
                                           "pb"};

  struct Panel {
    const char* id;
    const char* pattern;
    int offset;
    double load;  ///< fixed offered load, near the healthy saturation
  };
  const std::vector<Panel> panels = {
      {"UN", "uniform", 0, 0.9},
      {"ADVG+1", "advg", 1, 0.5},
  };

  for (const Panel& panel : panels) {
    std::vector<ExperimentPoint> grid;
    for (const std::string& routing : lineup) {
      for (const double f : fractions) {
        ExperimentPoint pt;
        pt.series = routing;
        pt.x = f;
        pt.cfg = cfg;
        pt.cfg.routing = routing;
        pt.cfg.pattern = panel.pattern;
        pt.cfg.pattern_offset = panel.offset;
        pt.cfg.load = panel.load;
        pt.cfg.fault_fraction = f;
        grid.push_back(std::move(pt));
      }
    }
    std::cout << "\n## panel " << panel.id << " @ offered load "
              << panel.load << "\n";
    const auto points = run_experiments(grid);
    print_sweep(std::cout, points, Metric::kThroughput,
                "failure_fraction");
  }
  return 0;
}
