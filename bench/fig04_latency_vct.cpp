// Figure 4: average latency vs. offered load under VCT flow control,
// 8-phit packets. Three panels: (a) uniform, (b) ADVG+1, (c) ADVG+h.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig04_latency_vct", argc, argv);
  SimConfig cfg = bench_defaults();
  bench::banner("Figure 4: latency vs offered load, VCT", cfg);

  struct Panel {
    const char* id;
    const char* pattern;
    int offset;
    std::vector<std::string> lineup;
    double max_load;
  };
  const std::vector<Panel> panels = {
      {"4a_UN", "uniform", 0, bench::uniform_lineup(), 0.6},
      {"4b_ADVG+1", "advg", 1, bench::adversarial_lineup(), 0.5},
      {"4c_ADVG+h", "advg", cfg.h, bench::adversarial_lineup(), 0.4},
  };

  for (const Panel& panel : panels) {
    SimConfig pc = cfg;
    pc.pattern = panel.pattern;
    pc.pattern_offset = panel.offset;
    std::cout << "\n## panel " << panel.id << "\n";
    const auto points = run_experiments(
        sweep_grid(pc, panel.lineup, default_loads(panel.max_load, 6)));
    print_sweep(std::cout, points, Metric::kLatency, "offered_load");
  }
  return 0;
}
