// Scale capability point: the paper's full h=8 shape (p=8, a=16, g=129 —
// 2064 routers, 16512 terminals) as a single pinned steady-state run, so
// the nightly pipeline tracks that the big shape (a) still runs end to
// end with nonzero throughput and (b) how much memory and wall-clock it
// costs (peak_rss_mb / bytes_per_terminal land in BENCH_sweep.json via
// BenchReport). Honors DF_ENGINE=sharded like every bench, reporting as
// "fig_scale+sharded" so the two engines' trajectories stay separate.
// DF_H overrides the shape (the nightly also pins h=16: 16416 routers,
// 262656 terminals — the scale the sharded engine exists for).
//
// Deliberately one (pattern, routing, load) point rather than a figure
// sweep: the full fig05 grid at h=8 is an hours-long run, while this
// point keeps the nightly budget in minutes.
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::BenchReport report("fig_scale", argc, argv);

  SimConfig cfg;
  cfg.h = static_cast<int>(env_int("DF_H", 8));  // balanced: p=h, a=2h
  cfg.routing = env_str("DF_ROUTING", "olm");
  cfg.pattern = env_str("DF_TRAFFIC", "uniform");
  cfg.load = env_double("DF_LOAD", 0.30);
  cfg.warmup_cycles = static_cast<Cycle>(env_int("DF_WARMUP", 2000));
  cfg.measure_cycles = static_cast<Cycle>(env_int("DF_MEASURE", 4000));
  cfg.seed = static_cast<std::uint64_t>(env_int("DF_SEED", 1));
  cfg.engine = env_str("DF_ENGINE", cfg.engine);
  cfg.validate();

  const DragonflyTopology topo = cfg.make_topology();
  report.set_terminals(topo.num_terminals());
  bench::banner("Scale point: pinned h=8 steady run", cfg);

  const SteadyResult res = run_steady(cfg);
  const double rss_mb =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
  std::cout << "engine,routing,pattern,offered_load,accepted_load,"
               "avg_latency,terminals,peak_rss_mb\n";
  std::cout << cfg.engine << ',' << cfg.routing << ',' << cfg.pattern << ','
            << cfg.load << ',' << res.accepted_load << ','
            << res.avg_latency << ',' << topo.num_terminals() << ','
            << rss_mb << "\n";
  return 0;
}
