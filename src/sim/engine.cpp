#include "sim/engine.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "traffic/pattern.hpp"

namespace dfsim {

namespace {
std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Engine::Engine(const DragonflyTopology& topo, const EngineConfig& cfg,
               RoutingAlgorithm& routing, TrafficPattern& pattern,
               const InjectionProcess& injection)
    : topo_(topo),
      cfg_(cfg),
      routing_(routing),
      pattern_(pattern),
      injection_(injection),
      rng_(cfg.seed) {
  flit_phits_ = cfg_.flit_phits > 0 ? cfg_.flit_phits : cfg_.packet_phits;
  if (cfg_.packet_phits % flit_phits_ != 0) {
    throw std::invalid_argument("packet_phits must be a multiple of flit_phits");
  }
  flits_per_packet_ = cfg_.packet_phits / flit_phits_;
  if (cfg_.flow == FlowControl::kVirtualCutThrough && flits_per_packet_ != 1) {
    throw std::invalid_argument(
        "VCT forwards whole packets: use flit_phits == packet_phits");
  }
  if (cfg_.flow == FlowControl::kWormhole && !routing_.supports_wormhole()) {
    throw std::invalid_argument(routing_.name() +
                                " requires VCT flow control (paper Sec. III)");
  }
  if (cfg_.local_vcs < routing_.min_local_vcs() ||
      cfg_.global_vcs < routing_.min_global_vcs()) {
    throw std::invalid_argument(routing_.name() + " needs at least " +
                                std::to_string(routing_.min_local_vcs()) + "/" +
                                std::to_string(routing_.min_global_vcs()) +
                                " local/global VCs");
  }
  if (cfg_.local_buf_phits < cfg_.packet_phits &&
      cfg_.flow == FlowControl::kVirtualCutThrough) {
    throw std::invalid_argument("VCT needs local buffers >= packet size");
  }

  injection_buf_phits_ = cfg_.injection_buf_phits > 0
                             ? cfg_.injection_buf_phits
                             : std::max(2 * cfg_.packet_phits,
                                        cfg_.local_buf_phits);
  gen_probability_ = injection_.load / static_cast<double>(cfg_.packet_phits);

  vc_stride_ = std::max({cfg_.local_vcs, cfg_.global_vcs, 1});
  const int ports = topo_.ports_per_router();

  if (ports > 63) {
    throw std::invalid_argument(
        "router degree above 63 ports unsupported (h <= 16)");
  }
  routers_.resize(static_cast<size_t>(topo_.num_routers()));
  for (auto& rt : routers_) {
    rt.in.resize(static_cast<size_t>(ports * vc_stride_));
    rt.out.resize(static_cast<size_t>(ports * vc_stride_));
    rt.out_busy_until.assign(static_cast<size_t>(ports), 0);
    rt.in_rr.assign(static_cast<size_t>(ports), 0);
    rt.out_rr.assign(static_cast<size_t>(ports), 0);
    rt.port_occupied_vcs.assign(static_cast<size_t>(ports), 0);
  }
  // Initialize credits to the downstream buffer capacity. Port classes
  // match across a link (local<->local, global<->global).
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports; ++p) {
      const PortClass cls = topo_.port_class(p);
      if (cls == PortClass::kTerminal) continue;
      for (VcId v = 0; v < vc_count(p); ++v) {
        out_vc(r, p, v).credits_phits = buffer_capacity(cls);
      }
    }
  }

  terminals_.resize(static_cast<size_t>(topo_.num_terminals()));
  for (auto& ts : terminals_) {
    if (injection_.mode == InjectionProcess::Mode::kBurst) {
      ts.burst_remaining = injection_.burst_packets;
    }
  }

  ring_size_ = next_pow2(static_cast<size_t>(
      cfg_.global_latency + std::max(cfg_.packet_phits, flit_phits_) + 4));
  flit_ring_.resize(ring_size_);
  credit_ring_.resize(ring_size_);
  delivery_ring_.resize(ring_size_);

  out_first_nom_.assign(static_cast<size_t>(ports), -1);
}

int Engine::vc_count(PortId port) const {
  switch (topo_.port_class(port)) {
    case PortClass::kLocal:
      return cfg_.local_vcs;
    case PortClass::kGlobal:
      return cfg_.global_vcs;
    case PortClass::kTerminal:
      return 1;
  }
  return 1;
}

int Engine::buffer_capacity(PortClass cls) const {
  switch (cls) {
    case PortClass::kLocal:
      return cfg_.local_buf_phits;
    case PortClass::kGlobal:
      return cfg_.global_buf_phits;
    case PortClass::kTerminal:
      return injection_buf_phits_;
  }
  return cfg_.local_buf_phits;
}

bool Engine::output_usable(RouterId r, PortId port, VcId vc,
                           const Flit& flit) const {
  const RouterState& rt = routers_[static_cast<size_t>(r)];
  if (rt.out_busy_until[static_cast<size_t>(port)] > now_) return false;
  if (topo_.port_class(port) == PortClass::kTerminal) return true;
  const OutputVc& ovc = output_vc(r, port, vc);
  if (flit.head) {
    if (ovc.bound_packet != kInvalid) return false;
  } else {
    if (ovc.bound_packet != flit.packet) return false;
  }
  return ovc.credits_phits >= flit.size_phits;
}

double Engine::output_occupancy(RouterId r, PortId port, VcId vc) const {
  const PortClass cls = topo_.port_class(port);
  if (cls == PortClass::kTerminal) return 0.0;
  const int cap = buffer_capacity(cls);
  const OutputVc& ovc = output_vc(r, port, vc);
  return 1.0 - static_cast<double>(ovc.credits_phits) /
                   static_cast<double>(cap);
}

double Engine::port_occupancy(RouterId r, PortId port) const {
  const int n = vc_count(port);
  double total = 0.0;
  for (VcId v = 0; v < n; ++v) total += output_occupancy(r, port, v);
  return total / static_cast<double>(n);
}

double Engine::port_max_occupancy(RouterId r, PortId port) const {
  const int n = vc_count(port);
  double worst = 0.0;
  for (VcId v = 0; v < n; ++v) {
    worst = std::max(worst, output_occupancy(r, port, v));
  }
  return worst;
}

int Engine::port_queue_phits(RouterId r, PortId port) const {
  const PortClass cls = topo_.port_class(port);
  if (cls == PortClass::kTerminal) return 0;
  const int cap = buffer_capacity(cls);
  int total = 0;
  for (VcId v = 0; v < vc_count(port); ++v) {
    total += cap - output_vc(r, port, v).credits_phits;
  }
  return total;
}

void Engine::schedule_flit(Cycle at, FlitEvent ev) {
  assert(at > now_ && at - now_ < ring_size_);
  flit_ring_[ring_slot(at)].push_back(ev);
}

void Engine::schedule_credit(Cycle at, CreditEvent ev) {
  assert(at > now_ && at - now_ < ring_size_);
  credit_ring_[ring_slot(at)].push_back(ev);
}

void Engine::schedule_delivery(Cycle at, PacketId id) {
  assert(at > now_ && at - now_ < ring_size_);
  delivery_ring_[ring_slot(at)].push_back(id);
}

void Engine::process_arrivals() {
  const std::size_t slot = ring_slot(now_);

  auto& credits = credit_ring_[slot];
  for (const CreditEvent& ev : credits) {
    OutputVc& ovc = out_vc(ev.router, ev.port, ev.vc);
    ovc.credits_phits += ev.phits;
    assert(ovc.credits_phits <=
           buffer_capacity(topo_.port_class(ev.port)));
  }
  credits.clear();

  auto& flits = flit_ring_[slot];
  for (const FlitEvent& ev : flits) {
    RouterState& rt = routers_[static_cast<size_t>(ev.router)];
    InputVc& ivc = in_vc(ev.router, ev.port, ev.vc);
    if (ivc.fifo.empty()) {
      ++rt.nonempty_vcs;
      ivc.head_since = now_;
      if (++rt.port_occupied_vcs[static_cast<size_t>(ev.port)] == 1) {
        rt.occupied_ports |= 1ULL << ev.port;
      }
    }
    ivc.fifo.push_back(ev.flit);
    ivc.occupancy_phits += ev.flit.size_phits;
    if (topo_.port_class(ev.port) == PortClass::kTerminal) {
      const NodeId t = topo_.terminal_id(
          ev.router, ev.port - topo_.first_terminal_port());
      terminals_[static_cast<size_t>(t)].inflight_phits -= ev.flit.size_phits;
    }
    assert(ivc.occupancy_phits <=
           buffer_capacity(topo_.port_class(ev.port)));
  }
  flits.clear();

  auto& deliveries = delivery_ring_[slot];
  for (const PacketId id : deliveries) deliver(id);
  deliveries.clear();
}

void Engine::deliver(PacketId id) {
  const Packet& pkt = pool_[id];
  ++delivered_packets_;
  delivered_phits_ += static_cast<std::uint64_t>(pkt.size_phits);
  if (on_delivered_) on_delivered_(pkt, now_);
  pool_.release(id);
  last_progress_ = now_;
}

void Engine::allocate_router(RouterId r) {
  RouterState& rt = routers_[static_cast<size_t>(r)];
  const int ports = topo_.ports_per_router();

  noms_.clear();
  touched_outs_.clear();

  std::uint64_t pending = rt.occupied_ports;
  while (pending != 0) {
    const PortId p = static_cast<PortId>(std::countr_zero(pending));
    pending &= pending - 1;
    const int nvc = vc_count(p);
    const int start = rt.in_rr[static_cast<size_t>(p)] % nvc;
    for (int k = 0; k < nvc; ++k) {
      const VcId v = static_cast<VcId>((start + k) % nvc);
      InputVc& ivc = in_vc(r, p, v);
      if (ivc.fifo.empty()) continue;
      const Flit& flit = ivc.fifo.front();
      if (now_ - ivc.head_since > cfg_.watchdog_cycles) deadlock_ = true;

      Nomination nom{p, v, kInvalid, 0, false, {}};
      if (ivc.bound_out_port != kInvalid) {
        // Wormhole continuation: body flits follow the head's decision.
        if (!output_usable(r, ivc.bound_out_port, ivc.bound_out_vc, flit)) {
          continue;
        }
        nom.out_port = ivc.bound_out_port;
        nom.out_vc = ivc.bound_out_vc;
      } else {
        assert(flit.head);
        Packet& pkt = pool_[flit.packet];
        RoutingContext ctx{*this, r, p, v, pkt};
        const auto choice = routing_.decide(ctx);
        if (!choice) continue;
        assert(output_usable(r, choice->port, choice->vc, flit));
        nom.out_port = choice->port;
        nom.out_vc = choice->vc;
        nom.fresh = true;
        nom.choice = *choice;
      }

      // Output arbitration: keep the requester closest to the RR pointer.
      const auto op = static_cast<size_t>(nom.out_port);
      const std::int16_t cur = out_first_nom_[op];
      if (cur < 0) {
        out_first_nom_[op] = static_cast<std::int16_t>(noms_.size());
        noms_.push_back(nom);
        touched_outs_.push_back(nom.out_port);
      } else {
        const int base = rt.out_rr[op];
        const int d_new = (nom.in_port - base + ports) % ports;
        const int d_cur = (noms_[static_cast<size_t>(cur)].in_port - base +
                           ports) % ports;
        if (d_new < d_cur) {
          noms_[static_cast<size_t>(cur)] = nom;
        }
      }
      break;  // this input port nominated; move to the next port
    }
  }

  for (const PortId op : touched_outs_) {
    const std::int16_t idx = out_first_nom_[static_cast<size_t>(op)];
    assert(idx >= 0);
    out_first_nom_[static_cast<size_t>(op)] = -1;
    const Nomination& nom = noms_[static_cast<size_t>(idx)];
    send_flit(r, nom.in_port, nom.in_vc, nom.out_port, nom.out_vc,
              nom.fresh ? &nom.choice : nullptr);
    rt.out_rr[static_cast<size_t>(op)] =
        static_cast<std::uint16_t>((nom.in_port + 1) % ports);
    rt.in_rr[static_cast<size_t>(nom.in_port)] = static_cast<std::uint16_t>(
        (nom.in_vc + 1) % vc_count(nom.in_port));
  }
}

void Engine::apply_route_state(Packet& pkt, RouterId r,
                               const RouteChoice& choice) {
  RouteState& rs = pkt.rs;
  if (choice.commit_valiant) {
    rs.valiant = true;
    rs.inter_group = choice.inter_group;
  }
  switch (topo_.port_class(choice.port)) {
    case PortClass::kLocal:
      rs.prev_local_idx = static_cast<std::int8_t>(topo_.local_index(r));
      ++rs.local_hops_group;
      ++rs.local_hops_total;
      rs.last_local_vc = static_cast<std::int8_t>(choice.vc);
      if (choice.local_misroute) ++rs.local_mis_group;
      ++rs.total_hops;
      break;
    case PortClass::kGlobal:
      ++rs.global_hops;
      rs.local_hops_group = 0;
      rs.local_mis_group = 0;
      rs.prev_local_idx = -1;
      ++rs.total_hops;
      break;
    case PortClass::kTerminal:
      break;  // ejection
  }
  // Paper Sec. III: at most one global and one local misroute per visited
  // group; the longest route is l-l-g-l-l-g-l-l (8 hops).
  assert(rs.global_hops <= 2);
  assert(rs.local_hops_group <= 2);
  assert(rs.total_hops <= 8);
}

void Engine::send_flit(RouterId r, PortId in_port, VcId in_vc_id,
                       PortId out_port, VcId out_vc_id,
                       const RouteChoice* fresh_choice) {
  RouterState& rt = routers_[static_cast<size_t>(r)];
  InputVc& ivc = in_vc(r, in_port, in_vc_id);
  const Flit flit = ivc.fifo.front();
  ivc.fifo.pop_front();
  ivc.occupancy_phits -= flit.size_phits;
  if (ivc.fifo.empty()) {
    --rt.nonempty_vcs;
    if (--rt.port_occupied_vcs[static_cast<size_t>(in_port)] == 0) {
      rt.occupied_ports &= ~(1ULL << in_port);
    }
  } else {
    ivc.head_since = now_;
  }

  // Return the freed space upstream. Injection-buffer space is visible to
  // the co-located source immediately (no wire to cross).
  const PortClass in_cls = topo_.port_class(in_port);
  if (in_cls != PortClass::kTerminal) {
    const auto up = topo_.remote_endpoint(r, in_port);
    schedule_credit(now_ + link_latency(in_cls),
                    {up.router, up.port, in_vc_id, flit.size_phits});
  }

  if (fresh_choice != nullptr) {
    Packet& pkt = pool_[flit.packet];
    apply_route_state(pkt, r, *fresh_choice);
    routing_.on_hop(*this, pkt, *fresh_choice, r);
    if (on_hop_) on_hop_(pkt, *fresh_choice, r);
  }

  const PortClass out_cls = topo_.port_class(out_port);
  rt.out_busy_until[static_cast<size_t>(out_port)] =
      now_ + static_cast<Cycle>(flit.size_phits);
  phits_sent_[static_cast<int>(out_cls)] +=
      static_cast<std::uint64_t>(flit.size_phits);

  // Input-VC binding for multi-flit packets (wormhole).
  if (flit.head && !flit.tail) {
    ivc.bound_out_port = out_port;
    ivc.bound_out_vc = out_vc_id;
  }
  if (flit.tail) {
    ivc.bound_out_port = kInvalid;
    ivc.bound_out_vc = kInvalid;
  }

  if (out_cls == PortClass::kTerminal) {
    if (flit.tail) {
      schedule_delivery(now_ + static_cast<Cycle>(flit.size_phits),
                        flit.packet);
    }
    last_progress_ = now_;
    return;
  }

  OutputVc& ovc = out_vc(r, out_port, out_vc_id);
  ovc.credits_phits -= flit.size_phits;
  assert(ovc.credits_phits >= 0);
  if (cfg_.flow == FlowControl::kWormhole) {
    if (flit.head) ovc.bound_packet = flit.packet;
    if (flit.tail) ovc.bound_packet = kInvalid;
  }

  const auto down = topo_.remote_endpoint(r, out_port);
  schedule_flit(
      now_ + static_cast<Cycle>(flit.size_phits + link_latency(out_cls)),
      {down.router, down.port, out_vc_id, flit});
  last_progress_ = now_;
}

void Engine::inject_terminals() {
  const bool bernoulli = injection_.mode == InjectionProcess::Mode::kBernoulli;
  const int num_terms = topo_.num_terminals();
  for (NodeId t = 0; t < num_terms; ++t) {
    TerminalState& ts = terminals_[static_cast<size_t>(t)];
    if (bernoulli && gen_probability_ > 0.0 &&
        rng_.bernoulli(gen_probability_)) {
      const bool accepted =
          ts.pending_created.size() <
          static_cast<std::size_t>(cfg_.source_queue_cap);
      if (accepted) ts.pending_created.push_back(now_);
      if (on_generated_) on_generated_(now_, accepted);
    }
    const bool has_pending =
        !ts.pending_created.empty() || ts.burst_remaining > 0;
    if (!has_pending || ts.link_busy_until > now_) continue;

    const RouterId r = topo_.router_of_terminal(t);
    const PortId port = topo_.terminal_port(t);
    const InputVc& ivc = input_vc(r, port, 0);
    if (ivc.occupancy_phits + ts.inflight_phits + cfg_.packet_phits >
        injection_buf_phits_) {
      continue;
    }
    materialize(t, ts);
  }
}

void Engine::materialize(NodeId t, TerminalState& ts) {
  Cycle created = 0;
  if (!ts.pending_created.empty()) {
    created = ts.pending_created.front();
    ts.pending_created.pop_front();
  } else {
    assert(ts.burst_remaining > 0);
    --ts.burst_remaining;
  }

  NodeId dst;
  if (!ts.forced_dst.empty()) {
    dst = ts.forced_dst.front();
    ts.forced_dst.pop_front();
  } else {
    dst = pattern_.dest(t, rng_);
  }
  assert(dst != t && dst >= 0 && dst < topo_.num_terminals());

  const PacketId id = pool_.alloc();
  Packet& pkt = pool_[id];
  pkt.src = t;
  pkt.dst = dst;
  pkt.size_phits = cfg_.packet_phits;
  pkt.num_flits = static_cast<std::int16_t>(flits_per_packet_);
  pkt.flit_phits = static_cast<std::int16_t>(flit_phits_);
  pkt.created = created;
  pkt.injected = now_;
  pkt.rs.dst_router = topo_.router_of_terminal(dst);
  pkt.rs.dst_group = topo_.group_of_terminal(dst);
  pkt.rs.src_group = topo_.group_of_terminal(t);

  const RouterId r = topo_.router_of_terminal(t);
  const PortId port = topo_.terminal_port(t);
  for (int k = 0; k < flits_per_packet_; ++k) {
    Flit flit;
    flit.packet = id;
    flit.index = static_cast<std::int16_t>(k);
    flit.size_phits = static_cast<std::int16_t>(flit_phits_);
    flit.head = (k == 0);
    flit.tail = (k == flits_per_packet_ - 1);
    schedule_flit(now_ + static_cast<Cycle>((k + 1) * flit_phits_),
                  {r, port, 0, flit});
  }
  ts.inflight_phits += cfg_.packet_phits;
  ts.link_busy_until = now_ + static_cast<Cycle>(cfg_.packet_phits);
  last_progress_ = now_;
}

void Engine::inject_for_test(NodeId src, NodeId dst, Cycle created) {
  TerminalState& ts = terminals_[static_cast<size_t>(src)];
  ts.pending_created.push_back(created);
  ts.forced_dst.push_back(dst);
}

bool Engine::step() {
  if (deadlock_) return false;
  process_arrivals();
  routing_.per_cycle(*this);
  const int num_routers = topo_.num_routers();
  for (RouterId r = 0; r < num_routers; ++r) {
    if (routers_[static_cast<size_t>(r)].nonempty_vcs > 0) {
      allocate_router(r);
    }
  }
  inject_terminals();
  if (pool_.in_use() > 0 && now_ - last_progress_ > cfg_.watchdog_cycles) {
    deadlock_ = true;
  }
  ++now_;
  return !deadlock_;
}

void Engine::run_until(Cycle end) {
  while (now_ < end && step()) {
  }
}

}  // namespace dfsim
