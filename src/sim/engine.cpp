#include "sim/engine.hpp"

#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <type_traits>

// Complete BarrierTeam type: the constructor's exception cleanup destroys
// the shard_team_ member.
#include "runtime/thread_pool.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace dfsim {

namespace {
std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Engine::Engine(const DragonflyTopology& topo, const EngineConfig& cfg,
               RoutingAlgorithm& routing, TrafficPattern& pattern,
               const InjectionProcess& injection)
    : topo_(topo),
      cfg_(cfg),
      routing_(routing),
      pattern_(&pattern),
      injection_(injection),
      rng_(cfg.seed) {
  // Negated >=/<= so NaN fails too. SimConfig::validate() repeats this
  // (plus the duty-vs-load feasibility check) with pointed messages; this
  // guards direct Engine construction.
  if (!(injection_.onoff_on >= 0.0 && injection_.onoff_on <= 1.0) ||
      !(injection_.onoff_off >= 0.0 && injection_.onoff_off <= 1.0) ||
      (injection_.onoff_on == 0.0) != (injection_.onoff_off == 0.0)) {
    throw std::invalid_argument(
        "ON/OFF transition probabilities must both be in (0, 1] or both 0");
  }
  flit_phits_ = cfg_.flit_phits > 0 ? cfg_.flit_phits : cfg_.packet_phits;
  if (cfg_.packet_phits % flit_phits_ != 0) {
    throw std::invalid_argument("packet_phits must be a multiple of flit_phits");
  }
  flits_per_packet_ = cfg_.packet_phits / flit_phits_;
  if (cfg_.flow == FlowControl::kVirtualCutThrough && flits_per_packet_ != 1) {
    throw std::invalid_argument(
        "VCT forwards whole packets: use flit_phits == packet_phits");
  }
  if (cfg_.flow == FlowControl::kWormhole && !routing_.supports_wormhole()) {
    throw std::invalid_argument(routing_.name() +
                                " requires VCT flow control (paper Sec. III)");
  }
  if (cfg_.sharded && cfg_.flow == FlowControl::kWormhole) {
    throw std::invalid_argument(
        "the sharded engine supports VCT only: wormhole VC ownership "
        "spans shard boundaries (use engine=exact for wormhole runs)");
  }
  if (cfg_.local_vcs < routing_.min_local_vcs() ||
      cfg_.global_vcs < routing_.min_global_vcs()) {
    throw std::invalid_argument(routing_.name() + " needs at least " +
                                std::to_string(routing_.min_local_vcs()) + "/" +
                                std::to_string(routing_.min_global_vcs()) +
                                " local/global VCs");
  }
  if (cfg_.local_buf_phits < cfg_.packet_phits &&
      cfg_.flow == FlowControl::kVirtualCutThrough) {
    throw std::invalid_argument("VCT needs local buffers >= packet size");
  }
  if (cfg_.local_buf_phits < flit_phits_ ||
      cfg_.global_buf_phits < flit_phits_) {
    throw std::invalid_argument("buffers must hold at least one flit");
  }

  injection_buf_phits_ = cfg_.injection_buf_phits > 0
                             ? cfg_.injection_buf_phits
                             : std::max(2 * cfg_.packet_phits,
                                        cfg_.local_buf_phits);
  gen_probability_ = injection_.load / static_cast<double>(cfg_.packet_phits);

  vc_stride_ = std::max({cfg_.local_vcs, cfg_.global_vcs, 1});
  ports_ = topo_.ports_per_router();
  first_terminal_port_ = topo_.first_terminal_port();
  terminals_per_router_ = topo_.terminals_per_router();

  // The head-hop cache packs port*16+vc into an int16: 2047*16+15 is
  // exactly INT16_MAX. (The old one-word occupied-port bitmask capped
  // degree at 63, which an h=8+ shape blows straight through.)
  if (ports_ > 2047) {
    throw std::invalid_argument(
        "router degree above 2047 ports unsupported (16-bit hop encoding)");
  }
  if (vc_stride_ > 16) {
    throw std::invalid_argument(
        "more than 16 VCs per port unsupported (nonempty-VC bitmask)");
  }
  // FixedRing tracks its slice with 16-bit indices; a silent narrowing
  // would corrupt neighboring VCs' arena slices, so reject up front.
  if (std::max({cfg_.local_buf_phits, cfg_.global_buf_phits,
                injection_buf_phits_}) /
          flit_phits_ >
      INT16_MAX) {
    throw std::invalid_argument(
        "buffer capacity above 32767 flits unsupported (16-bit rings)");
  }

  cap_by_class_[static_cast<int>(PortClass::kLocal)] = cfg_.local_buf_phits;
  cap_by_class_[static_cast<int>(PortClass::kGlobal)] = cfg_.global_buf_phits;
  cap_by_class_[static_cast<int>(PortClass::kTerminal)] =
      injection_buf_phits_;
  for (int c = 0; c < 3; ++c) {
    const int cap = cap_by_class_[c];
    if (cap > 0 && (cap & (cap - 1)) == 0) {
      inv_cap_[c] = 1.0 / static_cast<double>(cap);
    }
  }

  port_class_.resize(static_cast<size_t>(ports_));
  vc_count_.resize(static_cast<size_t>(ports_));
  for (PortId p = 0; p < ports_; ++p) {
    const PortClass cls = topo_.port_class(p);
    port_class_[static_cast<size_t>(p)] = static_cast<std::uint8_t>(cls);
    switch (cls) {
      case PortClass::kLocal:
        vc_count_[static_cast<size_t>(p)] = cfg_.local_vcs;
        break;
      case PortClass::kGlobal:
        vc_count_[static_cast<size_t>(p)] = cfg_.global_vcs;
        break;
      case PortClass::kTerminal:
        vc_count_[static_cast<size_t>(p)] = 1;
        break;
    }
  }

  const auto num_routers = static_cast<std::size_t>(topo_.num_routers());
  const auto num_ports = num_routers * static_cast<std::size_t>(ports_);
  const auto num_vcs = num_ports * static_cast<std::size_t>(vc_stride_);
  // The waiter lists store VC indices in 32-bit slots; a shape whose VC
  // count overflows them would corrupt retry suppression silently.
  if (num_vcs >= static_cast<std::size_t>(INT32_MAX)) {
    throw std::invalid_argument(
        "topology too large: total VC count overflows 32-bit VC indices");
  }
  occ_words_ = (ports_ + 63) / 64;

  in_vcs_.resize(num_vcs);
  out_vcs_.resize(num_vcs);
  vc_sleep_until_.assign(num_vcs, 0);
  head_hop_.assign(num_vcs, kHeadUnknown);
  ovc_waiter_head_.assign(num_vcs, -1);
  vc_waiter_next_.assign(num_vcs, kNotWaiting);
  out_busy_until_.assign(num_ports, 0);
  in_scan_.assign(num_ports, 0);
  port_wake_.assign(num_ports, 0);
  out_rr_.assign(num_ports, 0);
  occupied_ports_.assign(num_routers * static_cast<std::size_t>(occ_words_),
                         0);
  nonempty_vcs_.assign(num_routers, 0);
  active_routers_.assign((num_routers + 63) / 64, 0);

  // Carve the per-VC flit rings out of one contiguous arena. Every flit
  // in flight is exactly flit_phits_ phits, so a VC of capacity C phits
  // holds at most C / flit_phits_ flits.
  std::size_t total_flits = 0;
  for (PortId p = 0; p < ports_; ++p) {
    const std::size_t cap_flits = static_cast<std::size_t>(
        port_capacity(p) / flit_phits_);
    total_flits +=
        cap_flits * static_cast<std::size_t>(vc_count(p)) * num_routers;
  }
  flit_arena_.resize(total_flits);
  std::size_t offset = 0;
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      const auto cap_flits =
          static_cast<std::int32_t>(port_capacity(p) / flit_phits_);
      assert(cap_flits >= 1);
      for (VcId v = 0; v < vc_count(p); ++v) {
        in_vc(r, p, v).fifo.bind(flit_arena_.data() + offset, cap_flits);
        offset += static_cast<std::size_t>(cap_flits);
      }
    }
  }
  assert(offset == total_flits);

  // Initialize credits to the downstream buffer capacity. Port classes
  // match across a link (local<->local, global<->global). Cache the far
  // endpoint of every link while we walk the ports.
  endpoints_.resize(num_ports);
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      const PortClass cls = pclass(p);
      if (cls == PortClass::kTerminal) continue;
      endpoints_[port_index(r, p)] = topo_.remote_endpoint(r, p);
      for (VcId v = 0; v < vc_count(p); ++v) {
        out_vc(r, p, v).credits_phits = buffer_capacity(cls);
      }
    }
  }

  terminals_.resize(static_cast<size_t>(topo_.num_terminals()));
  pending_terminals_.assign(
      (static_cast<std::size_t>(topo_.num_terminals()) + 63) / 64, 0);
  if (topo_.faulted()) {
    terminal_dead_.assign(static_cast<size_t>(topo_.num_terminals()), 0);
    for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
      if (!topo_.terminal_alive(t)) {
        terminal_dead_[static_cast<size_t>(t)] = 1;
        has_dead_terminals_ = true;
      }
    }
  }
  if (injection_.mode == InjectionProcess::Mode::kBurst) {
    for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      TerminalState& ts = terminals_[static_cast<size_t>(t)];
      ts.burst_remaining = injection_.burst_packets;
      if (ts.burst_remaining > 0) mark_terminal_pending(t);
    }
  }

  if (injection_.mode == InjectionProcess::Mode::kBernoulli &&
      injection_.onoff_on > 0.0) {
    onoff_ = true;
    refresh_onoff_probability();
    // Seed each chain from its stationary distribution (one draw per
    // terminal, ascending, before cycle 0) so the process needs no extra
    // warmup to reach its long-run duty cycle. Plain Bernoulli runs draw
    // nothing here — their historical RNG stream is untouched.
    const double duty =
        injection_.onoff_on / (injection_.onoff_on + injection_.onoff_off);
    onoff_state_.resize(static_cast<size_t>(topo_.num_terminals()));
    for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
      onoff_state_[static_cast<size_t>(t)] = rng_.bernoulli(duty) ? 1 : 0;
    }
  }

  ring_size_ = next_pow2(static_cast<size_t>(
      cfg_.global_latency + std::max(cfg_.packet_phits, flit_phits_) + 4));
  flit_ring_.reset(ring_size_);
  credit_ring_.reset(ring_size_);
  delivery_ring_.reset(ring_size_);

  // Pre-size for steady-state churn, but cap the reservation: at h=8+
  // shapes 4 packets/terminal would pre-commit hundreds of MB before a
  // single packet exists. Beyond the cap the pool grows on demand.
  pool_.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(topo_.num_terminals()) * 4, std::size_t{1}
                                                               << 20));

  scratch_.out_first_nom.assign(static_cast<size_t>(ports_), -1);

  if (cfg_.sharded) init_shards();
}

void Engine::schedule_flit(Cycle at, FlitEvent ev) {
  assert(at > now_ && at - now_ < ring_size_);
  flit_ring_.push(ring_slot(at), ev);
}

void Engine::schedule_credit(Cycle at, CreditEvent ev) {
  assert(at > now_ && at - now_ < ring_size_);
  credit_ring_.push(ring_slot(at), ev);
}

void Engine::schedule_delivery(Cycle at, PacketId id) {
  assert(at > now_ && at - now_ < ring_size_);
  delivery_ring_.push(ring_slot(at), id);
}

void Engine::process_arrivals() {
  const std::size_t slot = ring_slot(now_);

  credit_ring_.drain(slot, [&](const CreditEvent& ev) {
    const std::size_t ovidx = vc_index(ev.router, ev.port, ev.vc);
    OutputVc& ovc = out_vcs_[ovidx];
    ovc.credits_phits += ev.phits;
    assert(ovc.credits_phits <= port_capacity(ev.port));
    wake_waiters(ovidx);
  });

  flit_ring_.drain(slot, [&](const FlitEvent& ev) {
    const std::size_t vidx = vc_index(ev.router, ev.port, ev.vc);
    InputVc& ivc = in_vcs_[vidx];
    if (ivc.fifo.empty()) {
      ++nonempty_vcs_[static_cast<size_t>(ev.router)];
      ivc.head_since = now_;
      head_hop_[vidx] = kHeadUnknown;  // this flit becomes the head
      const std::size_t pidx = port_index(ev.router, ev.port);
      std::uint32_t& scan = in_scan_[pidx];
      if ((scan >> 16) == 0) set_occupied(ev.router, ev.port);
      scan |= 1u << (16 + ev.vc);
      port_wake_[pidx] = 0;  // a fresh head makes the port actionable
      mark_router_active(ev.router);
    }
    ivc.fifo.push_back(ev.flit);
    ivc.occupancy_phits += ev.flit.size_phits;
    if (pclass(ev.port) == PortClass::kTerminal) {
      const NodeId t = ev.router * terminals_per_router_ +
                       (ev.port - first_terminal_port_);
      terminals_[static_cast<size_t>(t)].inflight_phits -= ev.flit.size_phits;
    }
    assert(ivc.occupancy_phits <= port_capacity(ev.port));
  });

  delivery_ring_.drain(slot, [&](PacketId id) { deliver(id); });
}

void Engine::deliver(PacketId id) {
  const Packet& pkt = pool_[id];
  ++delivered_packets_;
  delivered_phits_ += static_cast<std::uint64_t>(pkt.size_phits);
  // Request-reply causality: deliveries run serially in BOTH steppers
  // (the sharded deliver phase drains per-shard rings in ascending
  // order), so queueing the reply here is deterministic.
  if (workload_ != nullptr) maybe_reply(pkt);
  if (on_delivered_) on_delivered_(pkt, now_);
  pool_.release(id);
  last_progress_ = now_;
}

void Engine::maybe_reply(const Packet& pkt) {
  if ((pkt.flags & (kPacketFlagReply | kPacketFlagNoReply)) != 0) return;
  if (!workload_->wants_reply(pkt.src)) return;
  // The reply travels dst -> src; its latency clock starts at the
  // request's delivery.
  const bool accepted = push_forced(pkt.dst, pkt.src, now_, kPacketFlagReply);
  if (on_generated_) on_generated_(now_, accepted);
}

bool Engine::push_forced(NodeId t, NodeId dst, Cycle created,
                         std::uint8_t flags) {
  if (!has_forced_dst_) {
    const auto n = static_cast<std::size_t>(topo_.num_terminals());
    forced_dst_.resize(n);
    forced_created_.resize(n);
    forced_flags_.resize(n);
    has_forced_dst_ = true;
  }
  const auto ti = static_cast<std::size_t>(t);
  if (forced_dst_[ti].size() >=
      static_cast<std::size_t>(cfg_.source_queue_cap)) {
    return false;
  }
  forced_created_[ti].push_back(created);
  forced_dst_[ti].push_back(dst);
  forced_flags_[ti].push_back(flags);
  // The sharded stepper iterates its shard's terminal range directly and
  // never reads the pending bitmap; skipping the mark there also keeps
  // parallel-phase pushes (message bodies) off the shared bitmap words.
  if (!sharded_) mark_terminal_pending(t);
  return true;
}

void Engine::feed_trace() {
  workload_->drain_trace(now_, [&](NodeId src, NodeId dst, int size_phits) {
    // Rows touching a dead terminal can never be injected/delivered;
    // count them with the dead-destination drops.
    if (has_dead_terminals_ && (terminal_dead_[static_cast<size_t>(src)] ||
                                terminal_dead_[static_cast<size_t>(dst)])) {
      ++dead_dst_drops_;
      return;
    }
    const int packets =
        (size_phits + cfg_.packet_phits - 1) / cfg_.packet_phits;
    for (int k = 0; k < packets; ++k) {
      const bool accepted = push_forced(src, dst, now_, kPacketFlagNoReply);
      if (on_generated_) on_generated_(now_, accepted);
    }
  });
}

void Engine::set_workload(Workload* w) {
  workload_ = w;
  workload_trace_ = w != nullptr && w->is_trace();
  if (w != nullptr && !has_forced_dst_) {
    // Eager allocation: the sharded stepper queues message bodies from a
    // parallel phase, which must never race a lazy resize.
    const auto n = static_cast<std::size_t>(topo_.num_terminals());
    forced_dst_.resize(n);
    forced_created_.resize(n);
    forced_flags_.resize(n);
    has_forced_dst_ = true;
  }
}

void Engine::set_terminal_loads(const std::vector<double>& loads) {
  if (loads.empty()) {
    has_terminal_loads_ = false;
    terminal_gen_prob_.clear();
    terminal_gen_threshold_.clear();
    return;
  }
  if (loads.size() != static_cast<std::size_t>(topo_.num_terminals())) {
    throw std::invalid_argument(
        "terminal load vector has " + std::to_string(loads.size()) +
        " entries but the topology has " +
        std::to_string(topo_.num_terminals()) + " terminals");
  }
  terminal_gen_prob_.resize(loads.size());
  terminal_gen_threshold_.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double p = loads[i] / static_cast<double>(cfg_.packet_phits);
    terminal_gen_prob_[i] = p;
    // 2^64-scaled threshold for the sharded counter-based coin; clamp at
    // the all-ones word so p ~ 1 cannot overflow the conversion.
    terminal_gen_threshold_[i] =
        p >= 1.0 ? ~0ULL
                 : static_cast<std::uint64_t>(p * 18446744073709551616.0);
  }
  has_terminal_loads_ = true;
}

// Walk only routers with buffered flits, in ascending id order (the same
// order as the exhaustive scan this replaces — routing mechanisms may draw
// from the shared RNG inside decide(), so order is part of the contract).
void Engine::allocate_active_routers() {
  const std::size_t words = active_routers_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = active_routers_[w];
    if (bits == 0) continue;
    std::uint64_t keep = bits;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto r = static_cast<RouterId>(w * 64 + static_cast<size_t>(b));
      if (nonempty_vcs_[static_cast<size_t>(r)] > 0) {
        allocate_router(r, scratch_, nullptr);
      }
      if (nonempty_vcs_[static_cast<size_t>(r)] == 0) {
        keep &= ~(1ULL << b);  // drained: drop from the worklist
      }
    }
    active_routers_[w] = keep;
  }
}

void Engine::allocate_router(RouterId r, AllocScratch& scratch,
                             Shard* shard) {
  const std::size_t rbase = port_index(r, 0);

  scratch.noms.clear();
  scratch.touched_outs.clear();

  for (int ow = 0; ow < occ_words_; ++ow) {
    std::uint64_t pending =
        occupied_ports_[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(occ_words_) +
                        static_cast<std::size_t>(ow)];
    while (pending != 0) {
      const PortId p =
          static_cast<PortId>(ow * 64 + std::countr_zero(pending));
      pending &= pending - 1;
      const std::size_t pbase = rbase + static_cast<size_t>(p);
      // Every nonempty VC of this port is asleep: one load replaces the
      // whole VC walk. Arrivals and credit wakes clear the gate; timed
      // sleeps simply expire.
      if (port_wake_[pbase] > now_) continue;
      const int nvc = vc_count(p);
      const std::uint32_t scan = in_scan_[pbase];
      const std::uint32_t mask = scan >> 16;
      // RR pointers are stored pre-reduced (always < the port's VC count /
      // port count), so the wraparound is a compare instead of a division.
      const int start = static_cast<int>(scan & 0xffffu);
      // Earliest wake among this port's sleeping nonempty VCs; published
      // to port_wake_ only when NO VC was actionable (an actionable VC
      // that nominates — or merely fails decide() — forces a revisit
      // next cycle, since its state can change without an event).
      Cycle port_min = std::numeric_limits<Cycle>::max();
      bool any_nominated = false;
      for (int k = 0; k < nvc; ++k) {
        int vi = start + k;
        if (vi >= nvc) vi -= nvc;
        if (((mask >> vi) & 1u) == 0) continue;  // empty VC: skip the load
        const VcId v = static_cast<VcId>(vi);
        const std::size_t vidx = vc_index(r, p, v);
        if (vc_sleep_until_[vidx] > now_) {  // provably blocked
          if (vc_sleep_until_[vidx] < port_min) {
            port_min = vc_sleep_until_[vidx];
          }
          continue;
        }
        InputVc& ivc = in_vcs_[vidx];
        if (now_ - ivc.head_since > cfg_.watchdog_cycles) {
          if (shard != nullptr) {
            shard->deadlock = true;
          } else {
            deadlock_ = true;
          }
        }

        Nomination nom{p, v, kInvalid, 0, false, {}};
        std::int16_t hh = head_hop_[vidx];
        if (hh >= 0) {
          // Cached pure-minimal verdict for this head: decide() would
          // return exactly this hop iff usable. Neither the packet pool
          // nor the flit arena needs to be touched to retry it.
          const PortId op = hh >> 4;
          const VcId ov = hh & 0xf;
          if (!head_usable(r, op, ov)) {
            suppress_retry(vidx, ivc, r, op, ov);
            if (vc_sleep_until_[vidx] < port_min) {
              port_min = vc_sleep_until_[vidx];
            }
            continue;
          }
          nom.out_port = op;
          nom.out_vc = ov;
          nom.fresh = true;
          nom.choice = RouteChoice{op, ov};
        } else if (ivc.bound_out_port != kInvalid) {
          // Wormhole continuation: body flits follow the head's decision.
          const Flit& flit = ivc.fifo.front();
          if (!output_usable(r, ivc.bound_out_port, ivc.bound_out_vc,
                             flit)) {
            suppress_retry(vidx, ivc, r, ivc.bound_out_port,
                           ivc.bound_out_vc);
            if (vc_sleep_until_[vidx] < port_min) {
              port_min = vc_sleep_until_[vidx];
            }
            continue;
          }
          nom.out_port = ivc.bound_out_port;
          nom.out_vc = ivc.bound_out_vc;
        } else {
          const Flit& flit = ivc.fifo.front();
          assert(flit.head);
          Packet& pkt = pool_[flit.packet];
          // Sharded mode draws from a counter-based stream keyed by
          // (seed, cycle, VC index): any worker evaluating this decision
          // constructs the identical stream. Exact mode keeps the single
          // shared cursor, whose ascending draw order is the contract.
          if (shard != nullptr) {
            scratch.rng = keyed_stream(cfg_.seed, now_, kStreamRoute,
                                       static_cast<std::uint64_t>(vidx));
          }
          RoutingContext ctx{*this,      r,    p, v, pkt, flit,
                             shard != nullptr ? scratch.rng : rng_};
          std::optional<RouteChoice> choice;
          if (hh == kHeadUnknown) {
            // First decision for this (head, router): the fused entry
            // point computes the purity verdict and — when impure — the
            // decision in one pass; the verdict is cached for the retry
            // cycles.
            std::optional<Hop> hop;
            choice = routing_.decide_fresh(ctx, &hop);
            if (hop) {
              hh = static_cast<std::int16_t>((hop->port << 4) | hop->vc);
              head_hop_[vidx] = hh;
              if (!output_usable(r, hop->port, hop->vc, flit)) {
                suppress_retry(vidx, ivc, r, hop->port, hop->vc);
                if (vc_sleep_until_[vidx] < port_min) {
                  port_min = vc_sleep_until_[vidx];
                }
                continue;
              }
              nom.out_port = hop->port;
              nom.out_vc = hop->vc;
              nom.fresh = true;
              nom.choice = RouteChoice{hop->port, hop->vc};
              goto nominated;
            }
            head_hop_[vidx] = kHeadImpure;
          } else {
            choice = routing_.decide(ctx);
          }
          {
            if (!choice) {
              port_min = 0;  // drew RNG and failed: must retry next cycle
              continue;
            }
            assert(output_usable(r, choice->port, choice->vc, flit));
            nom.out_port = choice->port;
            nom.out_vc = choice->vc;
            nom.fresh = true;
            nom.choice = *choice;
          }
        }
      nominated:

        // Output arbitration: keep the requester closest to the RR
        // pointer.
        const auto op = static_cast<size_t>(nom.out_port);
        const std::int16_t cur = scratch.out_first_nom[op];
        if (cur < 0) {
          scratch.out_first_nom[op] =
              static_cast<std::int16_t>(scratch.noms.size());
          scratch.noms.push_back(nom);
          scratch.touched_outs.push_back(nom.out_port);
        } else {
          const int base = out_rr_[rbase + op];
          int d_new = nom.in_port - base;
          if (d_new < 0) d_new += ports_;
          int d_cur = scratch.noms[static_cast<size_t>(cur)].in_port - base;
          if (d_cur < 0) d_cur += ports_;
          if (d_new < d_cur) {
            scratch.noms[static_cast<size_t>(cur)] = nom;
          }
        }
        any_nominated = true;
        break;  // this input port nominated; move to the next port
      }
      if (!any_nominated && port_min > now_) port_wake_[pbase] = port_min;
    }
  }

  for (const PortId op : scratch.touched_outs) {
    const std::int16_t idx = scratch.out_first_nom[static_cast<size_t>(op)];
    assert(idx >= 0);
    scratch.out_first_nom[static_cast<size_t>(op)] = -1;
    const Nomination& nom = scratch.noms[static_cast<size_t>(idx)];
    send_flit(r, nom.in_port, nom.in_vc, nom.out_port, nom.out_vc,
              nom.fresh ? &nom.choice : nullptr, shard);
    const int next_in = nom.in_port + 1;
    out_rr_[rbase + static_cast<size_t>(op)] =
        static_cast<std::uint16_t>(next_in == ports_ ? 0 : next_in);
    const int next_vc = nom.in_vc + 1;
    std::uint32_t& scan = in_scan_[rbase + static_cast<size_t>(nom.in_port)];
    scan = (scan & 0xffff0000u) |
           static_cast<std::uint32_t>(
               next_vc == vc_count(nom.in_port) ? 0 : next_vc);
  }
}

void Engine::apply_route_state(Packet& pkt, RouterId r,
                               const RouteChoice& choice) {
  pkt.min_cache.router = kInvalid;  // the hop changes the route state
  RouteState& rs = pkt.rs;
  if (choice.commit_valiant) {
    rs.valiant = true;
    rs.inter_group = choice.inter_group;
  }
  switch (pclass(choice.port)) {
    case PortClass::kLocal:
      rs.prev_local_idx = static_cast<std::int8_t>(topo_.local_index(r));
      ++rs.local_hops_group;
      ++rs.local_hops_total;
      rs.last_local_vc = static_cast<std::int8_t>(choice.vc);
      if (choice.local_misroute) ++rs.local_mis_group;
      ++rs.total_hops;
      break;
    case PortClass::kGlobal:
      ++rs.global_hops;
      rs.local_hops_group = 0;
      rs.local_mis_group = 0;
      rs.prev_local_idx = -1;
      ++rs.total_hops;
      break;
    case PortClass::kTerminal:
      break;  // ejection
  }
  // Paper Sec. III: at most one global and one local misroute per visited
  // group; the longest route is l-l-g-l-l-g-l-l (8 hops).
  assert(rs.global_hops <= 2);
  assert(rs.local_hops_group <= 2);
  assert(rs.total_hops <= 8);
}

void Engine::send_flit(RouterId r, PortId in_port, VcId in_vc_id,
                       PortId out_port, VcId out_vc_id,
                       const RouteChoice* fresh_choice, Shard* shard) {
  const std::size_t in_vidx = vc_index(r, in_port, in_vc_id);
  InputVc& ivc = in_vcs_[in_vidx];
  const Flit flit = ivc.fifo.front();
  ivc.fifo.pop_front();
  ivc.occupancy_phits -= flit.size_phits;
  head_hop_[in_vidx] = kHeadUnknown;  // whatever follows is a new head
  if (ivc.fifo.empty()) {
    --nonempty_vcs_[static_cast<size_t>(r)];
    std::uint32_t& scan = in_scan_[port_index(r, in_port)];
    scan &= ~(1u << (16 + in_vc_id));
    if ((scan >> 16) == 0) clear_occupied(r, in_port);
  } else {
    ivc.head_since = now_;
  }

  // Return the freed space upstream. Injection-buffer space is visible to
  // the co-located source immediately (no wire to cross). In sharded mode
  // a credit whose upstream router lives in this very shard goes straight
  // into the shard's own wheel; only cross-shard credits (global links)
  // ride the outbox to the serial flush.
  const PortClass in_cls = pclass(in_port);
  if (in_cls != PortClass::kTerminal) {
    const auto up = endpoints_[port_index(r, in_port)];
    const CreditEvent cev{up.router, up.port, in_vc_id, flit.size_phits};
    const Cycle at = now_ + link_latency(in_cls);
    if (shard != nullptr) {
      if (up.router >= shard->first_router && up.router < shard->end_router) {
        shard->credit_ring.push(ring_slot(at), cev);
      } else {
        shard->outbox_credits.push_back({at, cev});
      }
    } else {
      schedule_credit(at, cev);
    }
  }

  if (fresh_choice != nullptr) {
    Packet& pkt = pool_[flit.packet];
    apply_route_state(pkt, r, *fresh_choice);
    routing_.on_hop(*this, pkt, *fresh_choice, r);
    if (on_hop_) {
      // External hop hooks may touch arbitrary user state; replay them in
      // deterministic ascending-shard order at the flush.
      if (shard != nullptr) {
        shard->hops.push_back({flit.packet, *fresh_choice, r});
      } else {
        on_hop_(pkt, *fresh_choice, r);
      }
    }
  }

  // No flit may ever depart on a dead (or unwired) port: the routing
  // mechanisms' alive filters and the recomputed canonical tables are
  // supposed to make this unreachable.
  assert(topo_.port_alive(r, out_port));

  const PortClass out_cls = pclass(out_port);
  out_busy_until_[port_index(r, out_port)] =
      now_ + static_cast<Cycle>(flit.size_phits);
  (shard != nullptr ? shard->phits_sent
                    : phits_sent_)[static_cast<int>(out_cls)] +=
      static_cast<std::uint64_t>(flit.size_phits);

  // Input-VC binding for multi-flit packets (wormhole).
  if (flit.head && !flit.tail) {
    ivc.bound_out_port = static_cast<std::int16_t>(out_port);
    ivc.bound_out_vc = static_cast<std::int16_t>(out_vc_id);
  }
  if (flit.tail) {
    ivc.bound_out_port = InputVc::kInvalid16;
    ivc.bound_out_vc = InputVc::kInvalid16;
  }

  if (out_cls == PortClass::kTerminal) {
    if (flit.tail) {
      const Cycle at = now_ + static_cast<Cycle>(flit.size_phits);
      if (shard != nullptr) {
        // Ejection happens at the owning router: deliveries are always
        // same-shard, straight into the shard's own wheel.
        shard->delivery_ring.push(ring_slot(at), flit.packet);
      } else {
        schedule_delivery(at, flit.packet);
      }
    }
    if (shard != nullptr) {
      shard->progressed = true;
    } else {
      last_progress_ = now_;
    }
    return;
  }

  const std::size_t out_vidx = vc_index(r, out_port, out_vc_id);
  OutputVc& ovc = out_vcs_[out_vidx];
  ovc.credits_phits -= flit.size_phits;
  assert(ovc.credits_phits >= 0);
  if (cfg_.flow == FlowControl::kWormhole) {
    if (flit.head) ovc.bound_packet = flit.packet;
    if (flit.tail) {
      ovc.bound_packet = kInvalid;
      wake_waiters(out_vidx);
    }
  }

  const auto down = endpoints_[port_index(r, out_port)];
  const Cycle at =
      now_ + static_cast<Cycle>(flit.size_phits + link_latency(out_cls));
  const FlitEvent fev{down.router, down.port, out_vc_id, flit};
  if (shard != nullptr) {
    // Local-link flits stay inside the group (= the shard) and go into
    // the shard's own wheel; only global-link flits cross the outbox.
    if (down.router >= shard->first_router &&
        down.router < shard->end_router) {
      shard->flit_ring.push(ring_slot(at), fev);
    } else {
      shard->outbox_flits.push_back({at, fev});
    }
    shard->progressed = true;
  } else {
    schedule_flit(at, fev);
    last_progress_ = now_;
  }
}

// Terminals draw generation randomness in strict ascending order — that
// per-terminal draw order is part of the seed contract, so the Bernoulli
// loop still visits every terminal. The pending bitmap only gates the
// injection attempt (source-queue, link and buffer checks), which is the
// expensive part at low load.
void Engine::inject_terminals() {
  const bool draws = injection_.mode == InjectionProcess::Mode::kBernoulli &&
                     (gen_probability_ > 0.0 || has_terminal_loads_);
  if (draws && onoff_) {
    // Markov ON/OFF sources: step each terminal's chain (one draw), then
    // let ON terminals generate at the duty-compensated rate (a second
    // draw). Same ascending-terminal order as the plain Bernoulli loop.
    const int num_terms = topo_.num_terminals();
    for (NodeId t = 0; t < num_terms; ++t) {
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      std::uint8_t& on = onoff_state_[static_cast<size_t>(t)];
      if (on != 0) {
        if (rng_.bernoulli(injection_.onoff_off)) on = 0;
      } else if (rng_.bernoulli(injection_.onoff_on)) {
        on = 1;  // transitions apply immediately: an ON entry can generate
      }
      if (on != 0 && rng_.bernoulli(gen_probability_on_)) {
        TerminalState& ts = terminals_[static_cast<size_t>(t)];
        const bool accepted =
            ts.pending_created.size() <
            static_cast<std::size_t>(cfg_.source_queue_cap);
        if (accepted) {
          ts.pending_created.push_back(now_);
          mark_terminal_pending(t);
        }
        if (on_generated_) on_generated_(now_, accepted);
      }
      if (terminal_pending(t)) try_inject(t);
    }
    return;
  }
  if (draws) {
    const int num_terms = topo_.num_terminals();
    for (NodeId t = 0; t < num_terms; ++t) {
      // Terminals on dead routers generate nothing (and draw nothing, so
      // the fault set fully determines the degraded-network RNG stream);
      // the flag is never set on healthy topologies.
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      // Per-terminal loads (multi-job workloads) swap the probability but
      // keep one draw per live terminal, so the stream stays ascending.
      if (rng_.bernoulli(has_terminal_loads_
                             ? terminal_gen_prob_[static_cast<size_t>(t)]
                             : gen_probability_)) {
        TerminalState& ts = terminals_[static_cast<size_t>(t)];
        const bool accepted =
            ts.pending_created.size() <
            static_cast<std::size_t>(cfg_.source_queue_cap);
        if (accepted) {
          ts.pending_created.push_back(now_);
          mark_terminal_pending(t);
        }
        if (on_generated_) on_generated_(now_, accepted);
      }
      if (terminal_pending(t)) try_inject(t);
    }
    return;
  }
  // No generation randomness this cycle (burst mode, or zero load): only
  // terminals with queued work need a look, still in ascending order.
  const std::size_t words = pending_terminals_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = pending_terminals_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      try_inject(static_cast<NodeId>(w * 64 + static_cast<size_t>(b)));
    }
  }
}

void Engine::try_inject(NodeId t) {
  TerminalState& ts = terminals_[static_cast<size_t>(t)];
  if (!terminal_has_work(t, ts)) {
    clear_terminal_pending(t);
    return;
  }
  if (ts.link_busy_until > now_) return;

  // The source's router and port are pure arithmetic on the terminal id;
  // recomputing them here beats an 8-byte-per-terminal cache at scale.
  const RouterId r = topo_.router_of_terminal(t);
  const PortId port = topo_.terminal_port(t);
  const InputVc& ivc = in_vcs_[vc_index(r, port, 0)];
  if (ivc.occupancy_phits + ts.inflight_phits + cfg_.packet_phits >
      injection_buf_phits_) {
    return;
  }
  materialize(t, ts);
  if (!terminal_has_work(t, ts)) {
    clear_terminal_pending(t);
  }
}

void Engine::materialize(NodeId t, TerminalState& ts) {
  Cycle created = 0;
  NodeId dst;
  std::uint8_t flags = 0;
  if (has_forced_dst_ && !forced_dst_[static_cast<size_t>(t)].empty()) {
    // Forced packets (scripted injections, workload replies, message
    // bodies, trace rows) carry their own creation time and flags and go
    // ahead of the Bernoulli backlog.
    const auto ti = static_cast<size_t>(t);
    created = forced_created_[ti].front();
    forced_created_[ti].pop_front();
    dst = forced_dst_[ti].front();
    forced_dst_[ti].pop_front();
    flags = forced_flags_[ti].front();
    forced_flags_[ti].pop_front();
  } else {
    if (!ts.pending_created.empty()) {
      created = ts.pending_created.front();
      ts.pending_created.pop_front();
    } else {
      assert(ts.burst_remaining > 0);
      --ts.burst_remaining;
    }
    dst = pattern_->dest(t, rng_);
    if (workload_ != nullptr) {
      // Multi-packet messages: the body packets follow as forced entries
      // behind this head (same destination and creation time; they never
      // trigger replies of their own).
      const int extra = workload_->message_packets(t, rng_) - 1;
      for (int k = 0; k < extra; ++k) {
        const bool accepted =
            push_forced(t, dst, created, kPacketFlagNoReply);
        if (on_generated_) on_generated_(now_, accepted);
      }
    }
  }
  assert(dst != t && dst >= 0 && dst < topo_.num_terminals());

  // A packet addressed to a terminal on a dead router can never be
  // delivered; it is dropped at the source (counted, so accepted-load
  // analysis can separate fault losses from congestion).
  if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(dst)]) {
    ++dead_dst_drops_;
    return;
  }

  const PacketId id = pool_.alloc();
  Packet& pkt = pool_[id];
  pkt.src = t;
  pkt.dst = dst;
  pkt.size_phits = cfg_.packet_phits;
  pkt.num_flits = static_cast<std::int16_t>(flits_per_packet_);
  pkt.flit_phits = static_cast<std::int16_t>(flit_phits_);
  pkt.created = created;
  pkt.injected = now_;
  pkt.flags = flags;
  pkt.rs.dst_router = topo_.router_of_terminal(dst);
  pkt.rs.dst_group = topo_.group_of_terminal(dst);
  pkt.rs.src_group = topo_.group_of_terminal(t);

  const RouterId r = topo_.router_of_terminal(t);
  const PortId port = topo_.terminal_port(t);
  for (int k = 0; k < flits_per_packet_; ++k) {
    Flit flit;
    flit.packet = id;
    flit.index = static_cast<std::int16_t>(k);
    flit.size_phits = static_cast<std::int16_t>(flit_phits_);
    flit.head = (k == 0);
    flit.tail = (k == flits_per_packet_ - 1);
    schedule_flit(now_ + static_cast<Cycle>((k + 1) * flit_phits_),
                  {r, port, 0, flit});
  }
  ts.inflight_phits += cfg_.packet_phits;
  ts.link_busy_until = now_ + static_cast<Cycle>(cfg_.packet_phits);
  last_progress_ = now_;
}

void Engine::inject_for_test(NodeId src, NodeId dst, Cycle created) {
  push_forced(src, dst, created, 0);
  if (sharded_) mark_terminal_pending(src);  // serial caller: safe to mark
}

bool Engine::step() {
  if (deadlock_) return false;
  if (sharded_) return step_sharded();
  process_arrivals();
  routing_.per_cycle(*this);
  if (workload_trace_) feed_trace();
  allocate_active_routers();
  inject_terminals();
  if (pool_.in_use() > 0 && now_ - last_progress_ > cfg_.watchdog_cycles) {
    deadlock_ = true;
  }
  ++now_;
  return !deadlock_;
}

void Engine::run_until(Cycle end) {
  while (now_ < end && step()) {
  }
}

std::size_t Engine::footprint_bytes() const {
  const auto vec = [](const auto& v) {
    return v.capacity() *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t total = sizeof(Engine);
  total += vec(port_class_) + vec(vc_count_);
  total += vec(in_vcs_) + vec(out_vcs_) + vec(flit_arena_);
  total += vec(vc_sleep_until_) + vec(head_hop_) + vec(port_wake_);
  total += vec(ovc_waiter_head_) + vec(vc_waiter_next_);
  total += vec(endpoints_) + vec(out_busy_until_) + vec(in_scan_) +
           vec(out_rr_);
  total += vec(occupied_ports_) + vec(nonempty_vcs_);
  total += vec(active_routers_) + vec(pending_terminals_);
  total += vec(terminals_) + vec(onoff_state_) + vec(terminal_dead_);
  for (const TerminalState& ts : terminals_) {
    total += ts.pending_created.footprint_bytes();
  }
  total += vec(forced_dst_) + vec(forced_created_) + vec(forced_flags_);
  for (const auto& q : forced_dst_) total += q.footprint_bytes();
  for (const auto& q : forced_created_) total += q.footprint_bytes();
  for (const auto& q : forced_flags_) total += q.footprint_bytes();
  total += vec(terminal_gen_prob_) + vec(terminal_gen_threshold_);
  total += pool_.capacity() * sizeof(Packet);
  total += flit_ring_.footprint_bytes() + credit_ring_.footprint_bytes() +
           delivery_ring_.footprint_bytes();
  // Shard-owned allocations: the per-shard timing wheels, outboxes and
  // staging vectors are where the sharded engine's event memory actually
  // lives (the global wheels above stay empty in sharded mode).
  total += vec(shards_);
  for (const Shard& s : shards_) {
    total += s.flit_ring.footprint_bytes() + s.credit_ring.footprint_bytes() +
             s.delivery_ring.footprint_bytes();
    total += vec(s.outbox_flits) + vec(s.outbox_credits);
    total += vec(s.injections) + vec(s.hops) + vec(s.gen_accepted);
    total += vec(s.scratch.noms) + vec(s.scratch.out_first_nom) +
             vec(s.scratch.touched_outs);
  }
  return total;
}

}  // namespace dfsim
