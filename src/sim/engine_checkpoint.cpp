// Engine checkpoint/restart: serialize the flat engine state so a run
// killed at cycle C resumes bit-identically (exact-mode determinism).
//
// What is saved: the clock, the RNG cursor, every input-VC FIFO, credits
// and wormhole bindings, switch round-robin pointers, the packet pool
// (slot contents and free-list order — future alloc() ids must replay),
// per-terminal source queues / burst budgets / ON/OFF chains, the timing
// wheels' in-flight events (one wheel triple per shard in sharded mode,
// the global triple in exact mode), delivery counters, the routing
// mechanism's cross-cycle state, and (v4) the workload layer: per-packet
// flag bytes, the forced-injection (created, dst, flags) queues,
// per-terminal offered loads and the trace replay cursor.
//
// What is deliberately NOT saved, because rebuilding it is decision- and
// RNG-neutral: the retry-suppression caches (vc_sleep_until_, waiter
// lists, head_hop_ verdicts) — a woken head redoes a usability check that
// fails identically; pure verdicts are recomputed by pure_minimal_hop,
// which is RNG-free by contract — the per-packet minimal-port memos, and
// the lazily-cleared worklist bits (recomputed as their minimal sets,
// which the scan loops treat identically).
#include <istream>
#include <ostream>

#include "common/serialize.hpp"
#include "sim/engine.hpp"
#include "traffic/workload.hpp"

namespace dfsim {

namespace {

constexpr char kMagic[8] = {'D', 'F', 'E', 'N', 'G', 'C', 'K', '\n'};
constexpr std::uint64_t kEndSentinel = 0xdf51aced0c0ffee1ULL;

void write_flit(std::ostream& os, const Flit& f) {
  ser::write_i32(os, f.packet);
  ser::write_i32(os, f.index);
  ser::write_i32(os, f.size_phits);
  ser::write_u8(os, f.head ? 1 : 0);
  ser::write_u8(os, f.tail ? 1 : 0);
}

Flit read_flit(std::istream& is) {
  Flit f;
  f.packet = ser::read_i32(is, "flit packet id");
  f.index = static_cast<std::int16_t>(ser::read_i32(is, "flit index"));
  f.size_phits =
      static_cast<std::int16_t>(ser::read_i32(is, "flit size"));
  f.head = ser::read_u8(is, "flit head flag") != 0;
  f.tail = ser::read_u8(is, "flit tail flag") != 0;
  return f;
}

void write_packet(std::ostream& os, const Packet& p) {
  ser::write_i32(os, p.src);
  ser::write_i32(os, p.dst);
  ser::write_i32(os, p.size_phits);
  ser::write_i32(os, p.num_flits);
  ser::write_i32(os, p.flit_phits);
  ser::write_u64(os, p.created);
  ser::write_u64(os, p.injected);
  const RouteState& rs = p.rs;
  ser::write_i32(os, rs.dst_router);
  ser::write_i32(os, rs.dst_group);
  ser::write_i32(os, rs.src_group);
  ser::write_i32(os, rs.inter_group);
  ser::write_u8(os, rs.valiant ? 1 : 0);
  ser::write_i32(os, rs.global_hops);
  ser::write_i32(os, rs.local_hops_group);
  ser::write_i32(os, rs.local_mis_group);
  ser::write_i32(os, rs.local_hops_total);
  ser::write_i32(os, rs.total_hops);
  ser::write_i32(os, rs.prev_local_idx);
  ser::write_i32(os, rs.last_local_vc);
  ser::write_u8(os, p.flags);
  // min_cache is a pure memo: recomputed on first use after restore.
}

Packet read_packet(std::istream& is) {
  Packet p;
  p.src = ser::read_i32(is, "packet src");
  p.dst = ser::read_i32(is, "packet dst");
  p.size_phits = ser::read_i32(is, "packet size");
  p.num_flits =
      static_cast<std::int16_t>(ser::read_i32(is, "packet flit count"));
  p.flit_phits =
      static_cast<std::int16_t>(ser::read_i32(is, "packet flit size"));
  p.created = ser::read_u64(is, "packet created cycle");
  p.injected = ser::read_u64(is, "packet injected cycle");
  RouteState& rs = p.rs;
  rs.dst_router = ser::read_i32(is, "route dst router");
  rs.dst_group = ser::read_i32(is, "route dst group");
  rs.src_group = ser::read_i32(is, "route src group");
  rs.inter_group = ser::read_i32(is, "route inter group");
  rs.valiant = ser::read_u8(is, "route valiant flag") != 0;
  rs.global_hops =
      static_cast<std::int8_t>(ser::read_i32(is, "route global hops"));
  rs.local_hops_group =
      static_cast<std::int8_t>(ser::read_i32(is, "route local hops"));
  rs.local_mis_group =
      static_cast<std::int8_t>(ser::read_i32(is, "route local misroutes"));
  rs.local_hops_total =
      static_cast<std::int8_t>(ser::read_i32(is, "route local hops total"));
  rs.total_hops =
      static_cast<std::int8_t>(ser::read_i32(is, "route total hops"));
  rs.prev_local_idx =
      static_cast<std::int8_t>(ser::read_i32(is, "route prev local idx"));
  rs.last_local_vc =
      static_cast<std::int8_t>(ser::read_i32(is, "route last local vc"));
  p.flags = ser::read_u8(is, "packet flags");
  return p;
}

}  // namespace

void Engine::save_checkpoint(std::ostream& os) const {
  // --- versioned, shape-checked header ----------------------------------
  ser::write_bytes(os, kMagic, sizeof(kMagic));
  ser::write_u32(os, kCheckpointVersion);
  ser::write_u64(os, static_cast<std::uint64_t>(topo_.num_routers()));
  ser::write_u64(os, static_cast<std::uint64_t>(topo_.num_terminals()));
  ser::write_u64(os, static_cast<std::uint64_t>(ports_));
  ser::write_u64(os, static_cast<std::uint64_t>(vc_stride_));
  ser::write_u64(os, static_cast<std::uint64_t>(flit_phits_));
  ser::write_u64(os, static_cast<std::uint64_t>(flits_per_packet_));
  ser::write_u64(os, ring_size_);
  ser::write_u8(os, static_cast<std::uint8_t>(cfg_.flow));
  ser::write_u8(os, onoff_ ? 1 : 0);
  // v2: engine mode. The two steppers draw from different RNG streams, so
  // resuming a sharded run under exact (or vice versa) would silently fork
  // the trajectory.
  ser::write_u8(os, sharded_ ? 1 : 0);
  ser::write_string(os, routing_.name());

  // --- clock, RNG, counters ---------------------------------------------
  ser::write_u64(os, now_);
  ser::write_u64(os, last_progress_);
  ser::write_u8(os, deadlock_ ? 1 : 0);
  std::uint64_t rng_state[Rng::kStateWords];
  rng_.save_state(rng_state);
  for (const auto w : rng_state) ser::write_u64(os, w);
  ser::write_f64(os, injection_.load);
  ser::write_u64(os, delivered_packets_);
  ser::write_u64(os, delivered_phits_);
  for (const auto s : phits_sent_) ser::write_u64(os, s);
  ser::write_u64(os, dead_dst_drops_);

  // --- packet pool (slot layout + free-list order) ----------------------
  ser::write_u64(os, pool_.capacity());
  ser::write_u64(os, pool_.free_list().size());
  for (const PacketId id : pool_.free_list()) ser::write_i32(os, id);
  std::vector<std::uint8_t> live(pool_.capacity(), 1);
  for (const PacketId id : pool_.free_list()) {
    live[static_cast<std::size_t>(id)] = 0;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i]) write_packet(os, pool_[static_cast<PacketId>(i)]);
  }

  // --- router state: input/output VCs, per-port scan state --------------
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      for (VcId v = 0; v < vc_count(p); ++v) {
        const InputVc& ivc = in_vcs_[vc_index(r, p, v)];
        ser::write_u32(os, static_cast<std::uint32_t>(ivc.fifo.size()));
        // FixedRing exposes only the front; visit by draining a copy.
        FixedRing<Flit> walk = ivc.fifo;
        while (!walk.empty()) {
          write_flit(os, walk.front());
          walk.pop_front();
        }
        ser::write_i32(os, ivc.occupancy_phits);
        ser::write_i32(os, ivc.bound_out_port);
        ser::write_i32(os, ivc.bound_out_vc);
        ser::write_u64(os, ivc.head_since);
        const OutputVc& ovc = out_vcs_[vc_index(r, p, v)];
        ser::write_i32(os, ovc.credits_phits);
        ser::write_i32(os, ovc.bound_packet);
      }
      ser::write_u64(os, out_busy_until_[port_index(r, p)]);
      ser::write_u32(os, in_scan_[port_index(r, p)]);
      ser::write_u32(os, out_rr_[port_index(r, p)]);
    }
  }

  // --- terminal injection state -----------------------------------------
  for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
    const TerminalState& ts = terminals_[static_cast<std::size_t>(t)];
    ser::write_u64(os, ts.pending_created.size());
    ts.pending_created.for_each(
        [&](const Cycle c) { ser::write_u64(os, c); });
    if (has_forced_dst_) {
      // v4: forced entries are (created, dst, flags) triples; the three
      // parallel queues always hold the same count, serialized
      // queue-major.
      const auto ti = static_cast<std::size_t>(t);
      const auto& fd = forced_dst_[ti];
      ser::write_u64(os, fd.size());
      fd.for_each([&](const NodeId d) { ser::write_i32(os, d); });
      forced_created_[ti].for_each(
          [&](const Cycle c) { ser::write_u64(os, c); });
      forced_flags_[ti].for_each(
          [&](const std::uint8_t f) { ser::write_u8(os, f); });
    } else {
      ser::write_u64(os, 0);
    }
    ser::write_u64(os, ts.burst_remaining);
    ser::write_u64(os, ts.link_busy_until);
    ser::write_i32(os, ts.inflight_phits);
  }
  if (onoff_) {
    for (const std::uint8_t s : onoff_state_) ser::write_u8(os, s);
  }

  // --- workload state (v4) ----------------------------------------------
  ser::write_u8(os, has_terminal_loads_ ? 1 : 0);
  if (has_terminal_loads_) {
    for (const double p : terminal_gen_prob_) ser::write_f64(os, p);
  }
  ser::write_u8(os, workload_ != nullptr ? 1 : 0);
  ser::write_u64(os, workload_ != nullptr ? workload_->cursor() : 0);

  // --- timing wheels -----------------------------------------------------
  // v3: the sharded engine keeps one wheel triple per shard (the global
  // wheels stay empty), serialized shard-major. The event encodings are
  // identical across modes; only the grouping differs. Exact checkpoints
  // keep the v2 single-wheel layout under the bumped version.
  const auto write_wheels = [&](const SlabEventRing<FlitEvent>& fr,
                                const SlabEventRing<CreditEvent>& cr,
                                const SlabEventRing<PacketId>& dr) {
    for (std::size_t slot = 0; slot < ring_size_; ++slot) {
      ser::write_u32(os, static_cast<std::uint32_t>(fr.slot_size(slot)));
      fr.visit(slot, [&](const FlitEvent& ev) {
        ser::write_i32(os, ev.router);
        ser::write_i32(os, ev.port);
        ser::write_i32(os, ev.vc);
        write_flit(os, ev.flit);
      });
      ser::write_u32(os, static_cast<std::uint32_t>(cr.slot_size(slot)));
      cr.visit(slot, [&](const CreditEvent& ev) {
        ser::write_i32(os, ev.router);
        ser::write_i32(os, ev.port);
        ser::write_i32(os, ev.vc);
        ser::write_i32(os, ev.phits);
      });
      ser::write_u32(os, static_cast<std::uint32_t>(dr.slot_size(slot)));
      dr.visit(slot, [&](const PacketId id) { ser::write_i32(os, id); });
    }
  };
  if (sharded_) {
    ser::write_u64(os, shards_.size());
    for (const Shard& s : shards_) {
      write_wheels(s.flit_ring, s.credit_ring, s.delivery_ring);
    }
  } else {
    write_wheels(flit_ring_, credit_ring_, delivery_ring_);
  }

  // --- routing mechanism state ------------------------------------------
  routing_.save_state(os);
  ser::write_u64(os, kEndSentinel);
}

void Engine::restore(std::istream& is) {
  if (now_ != 0 || pool_.in_use() != 0) {
    throw std::logic_error(
        "Engine::restore requires a freshly-constructed engine (same "
        "config as the checkpointed run)");
  }

  // --- header ------------------------------------------------------------
  char magic[8];
  ser::read_bytes(is, magic, sizeof(magic), "checkpoint magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(
        "not a dfsim engine checkpoint (bad magic bytes)");
  }
  const std::uint32_t version = ser::read_u32(is, "checkpoint version");
  if (version == 2) {
    // The one predecessor anyone may still hold files from gets a pointed
    // message: v3 moved the sharded engine's in-flight events into
    // per-shard timing wheels, so a v2 stream cannot be decoded here.
    throw std::runtime_error(
        "checkpoint format version 2 is not supported by this build "
        "(version 3 stores the sharded engine's in-flight events in "
        "per-shard timing wheels; re-run the checkpointed experiment to "
        "produce a v3 checkpoint)");
  }
  if (version == 3) {
    throw std::runtime_error(
        "checkpoint format version 3 is not supported by this build "
        "(version 4 adds workload state: per-packet flag bytes, the "
        "forced-injection queues' creation times and flags, per-terminal "
        "offered loads and the trace replay cursor; re-run the "
        "checkpointed experiment to produce a v4 checkpoint)");
  }
  if (version != kCheckpointVersion) {
    throw std::runtime_error(
        "checkpoint format version " + std::to_string(version) +
        " is not supported by this build (expected " +
        std::to_string(kCheckpointVersion) + ")");
  }
  ser::expect_u64(is, static_cast<std::uint64_t>(topo_.num_routers()),
                  "router count");
  ser::expect_u64(is, static_cast<std::uint64_t>(topo_.num_terminals()),
                  "terminal count");
  ser::expect_u64(is, static_cast<std::uint64_t>(ports_),
                  "ports per router");
  ser::expect_u64(is, static_cast<std::uint64_t>(vc_stride_), "VC stride");
  ser::expect_u64(is, static_cast<std::uint64_t>(flit_phits_),
                  "flit phits");
  ser::expect_u64(is, static_cast<std::uint64_t>(flits_per_packet_),
                  "flits per packet");
  ser::expect_u64(is, ring_size_, "timing-wheel size");
  const std::uint8_t flow = ser::read_u8(is, "flow control");
  if (flow != static_cast<std::uint8_t>(cfg_.flow)) {
    throw std::runtime_error(
        "checkpoint mismatch: flow-control discipline differs from this "
        "configuration");
  }
  const std::uint8_t onoff = ser::read_u8(is, "onoff flag");
  if ((onoff != 0) != onoff_) {
    throw std::runtime_error(
        "checkpoint mismatch: Markov ON/OFF injection differs from this "
        "configuration");
  }
  const std::uint8_t sharded = ser::read_u8(is, "engine mode");
  if ((sharded != 0) != sharded_) {
    throw std::runtime_error(
        std::string("checkpoint mismatch: the run was checkpointed under "
                    "the ") +
        (sharded != 0 ? "sharded" : "exact") +
        " engine but this configuration uses the " +
        (sharded_ ? "sharded" : "exact") +
        " engine (the two draw different RNG streams; set engine= to "
        "match)");
  }
  const std::string routing_name = ser::read_string(is, "routing name");
  if (routing_name != routing_.name()) {
    throw std::runtime_error(
        "checkpoint mismatch: routing mechanism is \"" + routing_name +
        "\" in the checkpoint but \"" + routing_.name() +
        "\" in this configuration");
  }

  // --- clock, RNG, counters ---------------------------------------------
  now_ = ser::read_u64(is, "cycle clock");
  last_progress_ = ser::read_u64(is, "last progress cycle");
  deadlock_ = ser::read_u8(is, "deadlock flag") != 0;
  std::uint64_t rng_state[Rng::kStateWords];
  for (auto& w : rng_state) w = ser::read_u64(is, "rng state");
  rng_.set_state(rng_state);
  // Re-derives gen_probability_ (and the ON/OFF duty compensation) with
  // the same arithmetic the original run used — bit-identical draws.
  set_offered_load(ser::read_f64(is, "offered load"));
  delivered_packets_ = ser::read_u64(is, "delivered packets");
  delivered_phits_ = ser::read_u64(is, "delivered phits");
  for (auto& s : phits_sent_) s = ser::read_u64(is, "phits sent");
  dead_dst_drops_ = ser::read_u64(is, "dead destination drops");

  // --- packet pool -------------------------------------------------------
  const std::uint64_t slot_count = ser::read_u64(is, "pool slot count");
  const std::uint64_t free_count = ser::read_u64(is, "pool free count");
  if (free_count > slot_count) {
    throw std::runtime_error(
        "checkpoint corrupt: packet-pool free list larger than the pool");
  }
  std::vector<PacketId> free_list(static_cast<std::size_t>(free_count));
  for (auto& id : free_list) {
    id = ser::read_i32(is, "pool free id");
    if (id < 0 || static_cast<std::uint64_t>(id) >= slot_count) {
      throw std::runtime_error(
          "checkpoint corrupt: packet-pool free id out of range");
    }
  }
  std::vector<std::uint8_t> live(static_cast<std::size_t>(slot_count), 1);
  for (const PacketId id : free_list) {
    if (live[static_cast<std::size_t>(id)] == 0) {
      throw std::runtime_error(
          "checkpoint corrupt: packet-pool free id listed twice");
    }
    live[static_cast<std::size_t>(id)] = 0;
  }
  pool_.restore(static_cast<std::size_t>(slot_count), std::move(free_list));
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i]) pool_[static_cast<PacketId>(i)] = read_packet(is);
  }

  // --- router state ------------------------------------------------------
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      for (VcId v = 0; v < vc_count(p); ++v) {
        const std::size_t vidx = vc_index(r, p, v);
        InputVc& ivc = in_vcs_[vidx];
        const std::uint32_t nflits = ser::read_u32(is, "input VC depth");
        if (static_cast<std::int32_t>(nflits) > ivc.fifo.capacity()) {
          throw std::runtime_error(
              "checkpoint corrupt: input VC holds more flits than its "
              "buffer capacity");
        }
        for (std::uint32_t k = 0; k < nflits; ++k) {
          ivc.fifo.push_back(read_flit(is));
        }
        ivc.occupancy_phits = ser::read_i32(is, "input VC occupancy");
        ivc.bound_out_port =
            static_cast<std::int16_t>(ser::read_i32(is, "VC bound port"));
        ivc.bound_out_vc =
            static_cast<std::int16_t>(ser::read_i32(is, "VC bound vc"));
        ivc.head_since = ser::read_u64(is, "VC head since");
        OutputVc& ovc = out_vcs_[vidx];
        ovc.credits_phits = ser::read_i32(is, "output VC credits");
        ovc.bound_packet = ser::read_i32(is, "output VC bound packet");
      }
      out_busy_until_[port_index(r, p)] =
          ser::read_u64(is, "port busy-until");
      in_scan_[port_index(r, p)] = ser::read_u32(is, "port scan word");
      out_rr_[port_index(r, p)] =
          static_cast<std::uint16_t>(ser::read_u32(is, "port RR pointer"));
    }
  }

  // --- terminals ---------------------------------------------------------
  forced_dst_.clear();
  forced_created_.clear();
  forced_flags_.clear();
  has_forced_dst_ = false;
  for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
    TerminalState& ts = terminals_[static_cast<std::size_t>(t)];
    ts.pending_created = {};
    const std::uint64_t npending = ser::read_u64(is, "source queue depth");
    for (std::uint64_t k = 0; k < npending; ++k) {
      ts.pending_created.push_back(ser::read_u64(is, "source queue entry"));
    }
    const std::uint64_t nforced = ser::read_u64(is, "forced dst depth");
    if (nforced > 0 && !has_forced_dst_) {
      const auto n = static_cast<std::size_t>(topo_.num_terminals());
      forced_dst_.resize(n);
      forced_created_.resize(n);
      forced_flags_.resize(n);
      has_forced_dst_ = true;
    }
    const auto ti = static_cast<std::size_t>(t);
    for (std::uint64_t k = 0; k < nforced; ++k) {
      forced_dst_[ti].push_back(ser::read_i32(is, "forced dst entry"));
    }
    for (std::uint64_t k = 0; k < nforced; ++k) {
      forced_created_[ti].push_back(
          ser::read_u64(is, "forced created entry"));
    }
    for (std::uint64_t k = 0; k < nforced; ++k) {
      forced_flags_[ti].push_back(ser::read_u8(is, "forced flags entry"));
    }
    ts.burst_remaining = ser::read_u64(is, "burst budget");
    ts.link_busy_until = ser::read_u64(is, "terminal link busy");
    ts.inflight_phits = ser::read_i32(is, "terminal inflight phits");
  }
  if (onoff_) {
    for (auto& s : onoff_state_) s = ser::read_u8(is, "onoff chain state");
  }

  // --- workload state (v4) ----------------------------------------------
  if (ser::read_u8(is, "terminal loads flag") != 0) {
    // The stream carries terminal_gen_prob_ — the per-terminal generation
    // PROBABILITIES, already divided by packet_phits. Assign them
    // directly; routing through set_terminal_loads() would divide again.
    const auto n = static_cast<std::size_t>(topo_.num_terminals());
    terminal_gen_prob_.resize(n);
    terminal_gen_threshold_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = ser::read_f64(is, "terminal load");
      terminal_gen_prob_[i] = p;
      terminal_gen_threshold_[i] =
          p >= 1.0 ? ~0ULL
                   : static_cast<std::uint64_t>(p * 18446744073709551616.0);
    }
    has_terminal_loads_ = true;
  } else {
    set_terminal_loads({});
  }
  const bool had_workload = ser::read_u8(is, "workload flag") != 0;
  if (had_workload != (workload_ != nullptr)) {
    throw std::runtime_error(
        std::string("checkpoint mismatch: the run was checkpointed ") +
        (had_workload ? "with" : "without") +
        " a workload but this configuration runs " +
        (workload_ != nullptr ? "with" : "without") +
        " one (set workload= to match)");
  }
  const std::uint64_t trace_cursor = ser::read_u64(is, "trace cursor");
  if (workload_ != nullptr) {
    workload_->set_cursor(trace_cursor);
    // Re-establish the eager queue allocation set_workload() guarantees:
    // the sharded stepper pushes message bodies from a parallel phase and
    // must never race a lazy resize.
    if (!has_forced_dst_) {
      const auto n = static_cast<std::size_t>(topo_.num_terminals());
      forced_dst_.resize(n);
      forced_created_.resize(n);
      forced_flags_.resize(n);
      has_forced_dst_ = true;
    }
  }

  // --- timing wheels -----------------------------------------------------
  const auto read_wheels = [&](SlabEventRing<FlitEvent>& fr,
                               SlabEventRing<CreditEvent>& cr,
                               SlabEventRing<PacketId>& dr) {
    fr.reset(ring_size_);
    cr.reset(ring_size_);
    dr.reset(ring_size_);
    for (std::size_t slot = 0; slot < ring_size_; ++slot) {
      const std::uint32_t nf = ser::read_u32(is, "flit event count");
      for (std::uint32_t k = 0; k < nf; ++k) {
        FlitEvent ev;
        ev.router = ser::read_i32(is, "flit event router");
        ev.port = ser::read_i32(is, "flit event port");
        ev.vc = ser::read_i32(is, "flit event vc");
        ev.flit = read_flit(is);
        fr.push(slot, ev);
      }
      const std::uint32_t nc = ser::read_u32(is, "credit event count");
      for (std::uint32_t k = 0; k < nc; ++k) {
        CreditEvent ev;
        ev.router = ser::read_i32(is, "credit event router");
        ev.port = ser::read_i32(is, "credit event port");
        ev.vc = ser::read_i32(is, "credit event vc");
        ev.phits = ser::read_i32(is, "credit event phits");
        cr.push(slot, ev);
      }
      const std::uint32_t nd = ser::read_u32(is, "delivery event count");
      for (std::uint32_t k = 0; k < nd; ++k) {
        dr.push(slot, ser::read_i32(is, "delivery event id"));
      }
    }
  };
  if (sharded_) {
    ser::expect_u64(is, shards_.size(), "shard count");
    for (Shard& s : shards_) {
      read_wheels(s.flit_ring, s.credit_ring, s.delivery_ring);
    }
  } else {
    read_wheels(flit_ring_, credit_ring_, delivery_ring_);
  }

  // --- routing mechanism state + end sentinel ----------------------------
  routing_.restore_state(is);
  if (ser::read_u64(is, "end sentinel") != kEndSentinel) {
    throw std::runtime_error(
        "checkpoint corrupt: end sentinel mismatch (the stream is "
        "misaligned or was written by an incompatible routing mechanism)");
  }

  // --- rebuild the derived state -----------------------------------------
  // Retry-suppression caches restart cold: waking a provably-blocked head
  // redoes a usability check that fails identically and draws nothing, so
  // this is bit-identical to carrying the caches over.
  std::fill(vc_sleep_until_.begin(), vc_sleep_until_.end(), 0);
  std::fill(port_wake_.begin(), port_wake_.end(), 0);
  std::fill(head_hop_.begin(), head_hop_.end(), kHeadUnknown);
  std::fill(ovc_waiter_head_.begin(), ovc_waiter_head_.end(), -1);
  std::fill(vc_waiter_next_.begin(), vc_waiter_next_.end(), kNotWaiting);

  // Worklists: recompute the minimal consistent sets. A stale (lazily
  // cleared) bit's only effect was a skip-and-clear scan, so dropping it
  // changes no decision.
  std::fill(occupied_ports_.begin(), occupied_ports_.end(), 0);
  std::fill(nonempty_vcs_.begin(), nonempty_vcs_.end(), 0);
  std::fill(active_routers_.begin(), active_routers_.end(), 0);
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      if ((in_scan_[port_index(r, p)] >> 16) != 0) {
        set_occupied(r, p);
      }
      for (VcId v = 0; v < vc_count(p); ++v) {
        if (!in_vcs_[vc_index(r, p, v)].fifo.empty()) {
          ++nonempty_vcs_[static_cast<std::size_t>(r)];
        }
      }
    }
    if (nonempty_vcs_[static_cast<std::size_t>(r)] > 0) {
      mark_router_active(r);
    }
  }
  std::fill(pending_terminals_.begin(), pending_terminals_.end(), 0);
  for (NodeId t = 0; t < topo_.num_terminals(); ++t) {
    const TerminalState& ts = terminals_[static_cast<std::size_t>(t)];
    if (!ts.pending_created.empty() || ts.burst_remaining > 0 ||
        (has_forced_dst_ &&
         !forced_dst_[static_cast<std::size_t>(t)].empty())) {
      mark_terminal_pending(t);
    }
  }
}

}  // namespace dfsim
