// Packets, flits and per-packet routing state.
//
// Buffering and switching are *flit*-granular: under VCT one flit is the
// whole packet (8 phits in the paper's experiments); under wormhole a
// packet is several flits (8 flits of 10 phits). Serialization is
// phit-granular: a flit of s phits occupies its link for s cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace dfsim {

/// Routing progress carried by each packet and updated by the engine when
/// a hop is actually taken (not merely considered). Mechanisms read this
/// to enforce their hop budgets, VC ladders and route restrictions.
struct RouteState {
  RouterId dst_router = kInvalid;
  GroupId dst_group = kInvalid;
  GroupId src_group = kInvalid;

  /// Valiant intermediate group; kInvalid until a global misroute commits.
  GroupId inter_group = kInvalid;
  bool valiant = false;

  std::int8_t global_hops = 0;        ///< global hops taken (0..2)
  std::int8_t local_hops_group = 0;   ///< local hops taken in current group
  std::int8_t local_mis_group = 0;    ///< local misroutes in current group
  std::int8_t local_hops_total = 0;   ///< all local hops (PAR-6/2 ladder)
  std::int8_t total_hops = 0;         ///< every switch traversal

  /// Local index of the router this packet occupied before its last local
  /// hop in the current group (kInvalid when none) — RLM uses it to type
  /// the previous hop for the parity-sign restriction.
  std::int8_t prev_local_idx = -1;

  /// 0-based index of the last local VC the packet travelled on, in any
  /// group (-1 if none). OLM's "equal or lower than previously used" rule.
  std::int8_t last_local_vc = -1;
};

/// Memoized minimal-continuation port for one (packet, router) pairing.
/// The minimal output port is a pure function of the router and the
/// packet's RouteState, and a blocked head flit re-runs decide() every
/// cycle it waits — caching the port walk turns those retries into one
/// load. Invalidated whenever a hop updates the RouteState.
struct MinPortCache {
  RouterId router = kInvalid;  ///< router this entry is valid at
  /// Narrowed to 16 bits (ports are capped at 2047) so the memo packs
  /// into 8 bytes — this struct sits inside every pooled Packet.
  std::int16_t port = -1;
  std::int8_t cls = 0;  ///< PortClass of `port`
};

/// Packet::flags bits, set by the workload layer (traffic/workload.hpp).
/// kPacketFlagReply marks a reply message; kPacketFlagNoReply suppresses
/// reply generation on delivery (trace rows, the body packets of a
/// multi-packet message). A plain request carries flags == 0.
inline constexpr std::uint8_t kPacketFlagReply = 1;
inline constexpr std::uint8_t kPacketFlagNoReply = 2;

struct Packet {
  // Hot while routing (read by every decide() retry) — keep at the front
  // so they share a cache line.
  NodeId src = kInvalid;
  NodeId dst = kInvalid;
  std::int32_t size_phits = 0;
  std::int16_t num_flits = 0;
  std::int16_t flit_phits = 0;
  RouteState rs;
  /// Decision-retry memo; mutable because deciding doesn't alter a route.
  mutable MinPortCache min_cache;

  // Read at delivery only.
  Cycle created = 0;   ///< cycle the source generated it (queue time counts)
  Cycle injected = 0;  ///< cycle its head entered the injection buffer
  std::uint8_t flags = 0;  ///< workload flag bits (kPacketFlag*)
};

struct Flit {
  PacketId packet = kInvalid;
  std::int16_t index = 0;
  std::int16_t size_phits = 0;
  bool head = false;
  bool tail = false;
};

// Flits are copied into arena ring buffers and event slabs with plain
// stores; keep them trivially copyable.
static_assert(std::is_trivially_copyable_v<Flit>);

/// Slab allocator for packets. Open-loop runs create millions of packets;
/// recycling keeps the working set flat and ids stable while in flight.
class PacketPool {
 public:
  PacketId alloc();
  void release(PacketId id);

  /// Pre-size both the slot slab and the free list so steady-state churn
  /// never reallocates. Ids handed out are unaffected: alloc() prefers
  /// the free list and only grows the slab when it is empty.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

  Packet& operator[](PacketId id) { return slots_[static_cast<size_t>(id)]; }
  const Packet& operator[](PacketId id) const {
    return slots_[static_cast<size_t>(id)];
  }

  std::size_t in_use() const { return slots_.size() - free_.size(); }
  std::size_t capacity() const { return slots_.size(); }

  // --- checkpoint support -----------------------------------------------
  // The slot layout and the free-list ORDER are both part of the saved
  // state: alloc() pops from the free list's back, so the id sequence of
  // future allocations — and with it every wormhole VC binding — replays
  // exactly only if the list is restored verbatim.
  const std::vector<PacketId>& free_list() const { return free_; }
  void restore(std::size_t slot_count, std::vector<PacketId> free) {
    slots_.assign(slot_count, Packet{});
    free_ = std::move(free);
  }

 private:
  std::vector<Packet> slots_;
  std::vector<PacketId> free_;
};

}  // namespace dfsim
