// Per-(port, VC) buffer state of an input-buffered router.
#pragma once

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace dfsim {

/// One FIFO virtual-channel buffer on an input port. Occupancy is counted
/// in phits against the configured capacity for the port class. The flit
/// storage is a fixed-capacity ring bound to a slice of the engine's
/// contiguous arena — capacity is buffer_capacity(class) / flit size, so
/// no push can ever exceed it while credits are accounted correctly.
struct InputVc {
  FixedRing<Flit> fifo;  // 16 bytes
  std::int32_t occupancy_phits = 0;

  /// Wormhole: while a multi-flit packet is being forwarded, body flits
  /// must follow the head's switch decision. Set when a head flit that is
  /// not also a tail wins allocation; cleared when the tail is forwarded.
  /// 16-bit on purpose (ports number < 64): the whole struct packs into
  /// 32 bytes, two VCs per cache line on the allocation scan.
  std::int16_t bound_out_port = kInvalid16;
  std::int16_t bound_out_vc = kInvalid16;

  /// Cycle at which the current head flit reached the queue head; the
  /// deadlock watchdog flags heads that stay blocked too long (this
  /// catches partial deadlocks that leave the rest of the network moving).
  Cycle head_since = 0;

  bool empty() const { return fifo.empty(); }

  static constexpr std::int16_t kInvalid16 = -1;
};
static_assert(sizeof(InputVc) == 32);

/// Credit-tracking state for one VC of an output port. `credits_phits` is
/// the free space believed to exist in the downstream input buffer; it is
/// decremented on send and incremented when a credit returns one link
/// latency after the downstream router drains the flit.
struct OutputVc {
  std::int32_t credits_phits = 0;

  /// Wormhole: the downstream VC is private to one packet from its head
  /// until its tail. kInvalid when free for a new header.
  PacketId bound_packet = kInvalid;
};

}  // namespace dfsim
