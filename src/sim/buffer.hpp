// Per-(port, VC) buffer state of an input-buffered router.
#pragma once

#include <deque>

#include "common/types.hpp"
#include "sim/packet.hpp"

namespace dfsim {

/// One FIFO virtual-channel buffer on an input port. Occupancy is counted
/// in phits against the configured capacity for the port class.
struct InputVc {
  std::deque<Flit> fifo;
  std::int32_t occupancy_phits = 0;

  /// Cycle at which the current head flit reached the queue head; the
  /// deadlock watchdog flags heads that stay blocked too long (this
  /// catches partial deadlocks that leave the rest of the network moving).
  Cycle head_since = 0;

  /// Wormhole: while a multi-flit packet is being forwarded, body flits
  /// must follow the head's switch decision. Set when a head flit that is
  /// not also a tail wins allocation; cleared when the tail is forwarded.
  PortId bound_out_port = kInvalid;
  VcId bound_out_vc = kInvalid;

  bool empty() const { return fifo.empty(); }
};

/// Credit-tracking state for one VC of an output port. `credits_phits` is
/// the free space believed to exist in the downstream input buffer; it is
/// decremented on send and incremented when a credit returns one link
/// latency after the downstream router drains the flit.
struct OutputVc {
  std::int32_t credits_phits = 0;

  /// Wormhole: the downstream VC is private to one packet from its head
  /// until its tail. kInvalid when free for a new header.
  PacketId bound_packet = kInvalid;
};

}  // namespace dfsim
