// The group-sharded parallel stepper (EngineConfig::sharded).
//
// Routers are partitioned by group: shard s owns routers [s*a, (s+1)*a)
// and their terminals, AND its own flit/credit/delivery timing wheels —
// every event addressed to a router in s lives in s's rings. A cycle runs
// as
//
//   1. parallel — each shard drains this cycle's slot of its own credit
//                 and flit rings (arrival bookkeeping, own routers only)
//   2. serial   — packet deliveries (per-shard delivery rings, ascending
//                 shard order) + RoutingAlgorithm::per_cycle
//   3. parallel — per-shard allocation + injection; same-shard future
//                 events go straight into the shard's own rings, only
//                 cross-shard events (global-link flits and their
//                 credits) are staged in a per-source-shard outbox
//   4. serial   — replay the outboxes and hooks, materialize injections,
//                 reduce counters, in ascending shard order
//
// The serial work per cycle is O(cross-shard events + shards), not
// O(all events + shards): intra-shard traffic — all local and terminal
// links, the bulk of every cycle — never leaves its shard.
//
// Determinism for ANY worker count: the partition is a pure function of
// the topology, the parallel phases touch only owner-shard state and
// draw from counter-based RNG streams keyed by (seed, cycle, entity),
// and each shard's ring contents are a pure function of that shard's
// deterministic staging order plus the ascending-shard outbox replay.
// Event order *within* one ring slot is arrival-bookkeeping-neutral (at
// most one flit per input port per cycle — upstream links serialize —
// and credit application commutes), so results are bit-identical across
// jobs=1..N. They are NOT bit-compatible with the exact engine, whose
// single shared RNG cursor implies a different draw sequence.
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/env.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace dfsim {

namespace {

// Process-wide profile accumulator (see accumulated_phase_profile()).
std::mutex g_profile_mu;
Engine::PhaseProfile g_profile_total;

void accumulate_profile(const Engine::PhaseProfile& p) {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  g_profile_total.steps += p.steps;
  g_profile_total.arrive_ns += p.arrive_ns;
  g_profile_total.deliver_ns += p.deliver_ns;
  g_profile_total.alloc_ns += p.alloc_ns;
  g_profile_total.flush_ns += p.flush_ns;
  g_profile_total.total_ns += p.total_ns;
}

std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Engine::PhaseProfile accumulated_phase_profile() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  return g_profile_total;
}

// Defined here (not in engine.cpp) so the unique_ptr<BarrierTeam> member
// destroys against the complete type.
Engine::~Engine() {
  if (profile_ && profile_data_.steps > 0) {
    accumulate_profile(profile_data_);
  }
}

void Engine::init_shards() {
  sharded_ = true;
  profile_ = cfg_.profile || env_flag("DF_PROFILE");
  routers_per_shard_ = topo_.routers_per_group();
  const int num_shards = topo_.num_groups();
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    sh.first_router = s * routers_per_shard_;
    sh.end_router = (s + 1) * routers_per_shard_;
    sh.first_terminal = sh.first_router * terminals_per_router_;
    sh.end_terminal = sh.end_router * terminals_per_router_;
    sh.scratch.out_first_nom.assign(static_cast<size_t>(ports_), -1);
    sh.flit_ring.reset(ring_size_);
    sh.credit_ring.reset(ring_size_);
    sh.delivery_ring.reset(ring_size_);
  }
  shard_assign_static_ =
      env_str("DF_SHARD_ASSIGN", "static") != "dynamic";
  shard_workers_ =
      std::min(runtime::resolve_jobs(cfg_.shard_jobs), num_shards);
  if (shard_workers_ > 1) {
    shard_team_ = std::make_unique<runtime::BarrierTeam>(
        shard_workers_, [this](int w) { shard_worker(w); });
  }
}

// The fixed per-worker callback the barrier team runs each phase. Static
// block assignment keeps shard w's state in the same worker's cache for
// both phases of every cycle; the dynamic path re-claims shards through
// an atomic cursor (PR-7 behavior, useful under skewed shard costs).
// Either way the phases touch disjoint state, so assignment affects only
// locality, never results.
void Engine::shard_worker(int w) {
  void (Engine::*phase)(Shard&) = shard_phase_;
  const std::size_t n = shards_.size();
  if (shard_assign_static_) {
    const auto W = static_cast<std::size_t>(shard_workers_);
    const auto uw = static_cast<std::size_t>(w);
    const std::size_t lo = n * uw / W;
    const std::size_t hi = n * (uw + 1) / W;
    for (std::size_t i = lo; i < hi; ++i) (this->*phase)(shards_[i]);
    return;
  }
  for (;;) {
    const std::size_t i =
        shard_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    (this->*phase)(shards_[i]);
  }
}

void Engine::run_shards(void (Engine::*phase)(Shard&)) {
  if (!shard_team_) {
    for (Shard& s : shards_) (this->*phase)(s);
    return;
  }
  shard_phase_ = phase;
  shard_next_.store(0, std::memory_order_relaxed);
  shard_team_->run();
}

bool Engine::step_sharded() {
  return profile_ ? step_sharded_impl<true>() : step_sharded_impl<false>();
}

template <bool kProfile>
bool Engine::step_sharded_impl() {
  // Timestamps are taken at the phase boundaries, so the four phase
  // counters tile the step exactly: arrive + deliver + alloc + flush ==
  // total by construction. The untimed instantiation contains no clock
  // reads at all.
  std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0;
  if constexpr (kProfile) t0 = profile_now_ns();

  // Phase 1 (parallel): per-shard arrival bookkeeping straight off each
  // shard's own rings — the global drain-and-partition phase is gone.
  run_shards(&Engine::arrive_shard);
  if constexpr (kProfile) t1 = profile_now_ns();

  // Phase 2 (serial): deliveries (pool release + user hook) in ascending
  // shard order, then the routing mechanism's global per-cycle work.
  // Ejection happens at the destination router, so a delivery's ring and
  // its packet's last hop share a shard: ascending-shard drain order
  // equals the old global wheel's flush order, keeping the pool
  // free-list sequence (hence future packet ids) unchanged.
  const std::size_t slot = ring_slot(now_);
  for (Shard& s : shards_) {
    s.delivery_ring.drain(slot, [&](PacketId id) { deliver(id); });
  }
  routing_.per_cycle(*this);
  // Trace rows feed at the same serial point as the exact stepper's:
  // after routing bookkeeping, before allocation/injection sees them.
  if (workload_trace_) feed_trace();
  if constexpr (kProfile) t2 = profile_now_ns();

  // Phase 3 (parallel): switch allocation + injection. Same-shard future
  // events are scheduled directly; cross-shard ones land in the outbox.
  run_shards(&Engine::allocate_and_inject_shard);
  if constexpr (kProfile) t3 = profile_now_ns();

  // Phase 4 (serial): apply the staged cross-shard effects in ascending
  // shard order.
  for (Shard& s : shards_) flush_shard(s);

  if (pool_.in_use() > 0 && now_ - last_progress_ > cfg_.watchdog_cycles) {
    deadlock_ = true;
  }
  ++now_;

  if constexpr (kProfile) {
    t4 = profile_now_ns();
    ++profile_data_.steps;
    profile_data_.arrive_ns += t1 - t0;
    profile_data_.deliver_ns += t2 - t1;
    profile_data_.alloc_ns += t3 - t2;
    profile_data_.flush_ns += t4 - t3;
    profile_data_.total_ns += t4 - t0;
  }
  return !deadlock_;
}

// Mirrors process_arrivals() minus the active-router bitmap: the sharded
// allocator walks its own router range directly, and the bitmap's words
// straddle shard boundaries (a cross-shard read-modify-write hazard).
// Slot order differs from the retired global wheel (same-shard events
// precede cross-shard ones) but arrival bookkeeping is order-invariant
// within a slot: credits commute, and the upstream link's serialization
// means at most one flit per input port per cycle.
void Engine::arrive_shard(Shard& s) {
  const std::size_t slot = ring_slot(now_);

  s.credit_ring.drain_prefetch(
      slot,
      [&](const CreditEvent& ev) {
        __builtin_prefetch(&out_vcs_[vc_index(ev.router, ev.port, ev.vc)]);
      },
      [&](const CreditEvent& ev) {
        const std::size_t ovidx = vc_index(ev.router, ev.port, ev.vc);
        OutputVc& ovc = out_vcs_[ovidx];
        ovc.credits_phits += ev.phits;
        assert(ovc.credits_phits <= port_capacity(ev.port));
        wake_waiters(ovidx);  // waiter chains never leave the router
      });

  s.flit_ring.drain_prefetch(
      slot,
      [&](const FlitEvent& ev) {
        __builtin_prefetch(&in_vcs_[vc_index(ev.router, ev.port, ev.vc)]);
      },
      [&](const FlitEvent& ev) {
        const std::size_t vidx = vc_index(ev.router, ev.port, ev.vc);
        InputVc& ivc = in_vcs_[vidx];
        if (ivc.fifo.empty()) {
          ++nonempty_vcs_[static_cast<size_t>(ev.router)];
          ivc.head_since = now_;
          head_hop_[vidx] = kHeadUnknown;  // this flit becomes the head
          const std::size_t pidx = port_index(ev.router, ev.port);
          std::uint32_t& scan = in_scan_[pidx];
          if ((scan >> 16) == 0) set_occupied(ev.router, ev.port);
          scan |= 1u << (16 + ev.vc);
          port_wake_[pidx] = 0;  // a fresh head makes the port actionable
        }
        ivc.fifo.push_back(ev.flit);
        ivc.occupancy_phits += ev.flit.size_phits;
        if (pclass(ev.port) == PortClass::kTerminal) {
          const NodeId t = ev.router * terminals_per_router_ +
                           (ev.port - first_terminal_port_);
          terminals_[static_cast<size_t>(t)].inflight_phits -=
              ev.flit.size_phits;
        }
        assert(ivc.occupancy_phits <= port_capacity(ev.port));
      });
}

void Engine::allocate_and_inject_shard(Shard& s) {
  for (RouterId r = s.first_router; r < s.end_router; ++r) {
    if (nonempty_vcs_[static_cast<size_t>(r)] > 0) {
      allocate_router(r, s.scratch, &s);
    }
  }

  const bool draws = injection_.mode == InjectionProcess::Mode::kBernoulli &&
                     (gen_probability_ > 0.0 || has_terminal_loads_);
  if (draws && !onoff_) {
    // Plain-Bernoulli fast path: the generation coin for terminal t is a
    // single mix64 of the hoisted per-cycle stream key against a fixed
    // threshold — no keyed Rng is built unless the terminal reaches its
    // destination draw (try_inject_shard derives the stream lazily; its
    // xoshiro reseed decorrelates the stream from the raw coin value).
    // Still a pure function of (seed, cycle, terminal), hence exactly as
    // jobs-invariant as the full per-terminal stream it replaces.
    const std::uint64_t kcd = mix64(
        mix64(cfg_.seed, static_cast<std::uint64_t>(now_)), kStreamInject);
    const bool always = gen_probability_ >= 1.0;
    const std::uint64_t threshold =
        always ? ~0ULL
               : static_cast<std::uint64_t>(
                     gen_probability_ * 18446744073709551616.0 /* 2^64 */);
    for (NodeId t = s.first_terminal; t < s.end_terminal; ++t) {
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      TerminalState& ts = terminals_[static_cast<size_t>(t)];
      // Per-terminal workload loads swap in each terminal's own threshold;
      // an all-ones threshold means "always generate" in either case, so
      // the legacy uniform-load coin is bit-for-bit unchanged.
      const std::uint64_t th =
          has_terminal_loads_
              ? terminal_gen_threshold_[static_cast<std::size_t>(t)]
              : threshold;
      const bool generate =
          th == ~0ULL || mix64(kcd, static_cast<std::uint64_t>(t)) < th;
      if (generate) {
        const bool accepted =
            ts.pending_created.size() <
            static_cast<std::size_t>(cfg_.source_queue_cap);
        if (accepted) ts.pending_created.push_back(now_);
        if (on_generated_) s.gen_accepted.push_back(accepted ? 1 : 0);
      } else if (!terminal_has_work(t, ts)) {
        continue;  // nothing generated, nothing queued: no attempt
      }
      try_inject_shard(t, ts, nullptr, s);
    }
    return;
  }
  if (draws) {
    // ON/OFF: each terminal's generation randomness comes from its own
    // keyed stream, in a fixed draw order: ON/OFF chain step(s),
    // generation draw, then (inside try_inject_shard) the destination
    // draw.
    for (NodeId t = s.first_terminal; t < s.end_terminal; ++t) {
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      TerminalState& ts = terminals_[static_cast<size_t>(t)];
      Rng trng = keyed_stream(cfg_.seed, now_, kStreamInject,
                              static_cast<std::uint64_t>(t));
      std::uint8_t& on = onoff_state_[static_cast<size_t>(t)];
      if (on != 0) {
        if (trng.bernoulli(injection_.onoff_off)) on = 0;
      } else if (trng.bernoulli(injection_.onoff_on)) {
        on = 1;
      }
      const bool generate = on != 0 && trng.bernoulli(gen_probability_on_);
      if (generate) {
        const bool accepted =
            ts.pending_created.size() <
            static_cast<std::size_t>(cfg_.source_queue_cap);
        if (accepted) ts.pending_created.push_back(now_);
        if (on_generated_) s.gen_accepted.push_back(accepted ? 1 : 0);
      }
      try_inject_shard(t, ts, &trng, s);
    }
    return;
  }

  // No generation randomness (burst mode, zero load, or scripted
  // destinations only): look at terminals with queued work. The keyed
  // stream has drawn nothing yet here, so try_inject_shard derives it
  // lazily — only if the attempt survives to the destination draw.
  for (NodeId t = s.first_terminal; t < s.end_terminal; ++t) {
    TerminalState& ts = terminals_[static_cast<size_t>(t)];
    if (!terminal_has_work(t, ts)) continue;
    try_inject_shard(t, ts, nullptr, s);
  }
}

// try_inject + materialize, restricted to owner-shard state: the packet
// itself (a pool allocation, hence cross-shard) is staged and materialized
// at the flush, but the source-side bookkeeping — queue pop, destination
// draw, inflight/link accounting — happens here so the next cycle's
// capacity checks see it.
void Engine::try_inject_shard(NodeId t, TerminalState& ts, Rng* rng,
                              Shard& s) {
  if (!terminal_has_work(t, ts)) return;
  if (ts.link_busy_until > now_) return;

  const RouterId r = topo_.router_of_terminal(t);
  const PortId port = topo_.terminal_port(t);
  const InputVc& ivc = in_vcs_[vc_index(r, port, 0)];
  if (ivc.occupancy_phits + ts.inflight_phits + cfg_.packet_phits >
      injection_buf_phits_) {
    return;
  }

  Cycle created = 0;
  NodeId dst;
  std::uint8_t flags = 0;
  const auto ti = static_cast<std::size_t>(t);
  if (has_forced_dst_ && !forced_dst_[ti].empty()) {
    // Forced packets (scripted injections, workload replies, message
    // bodies, trace rows) carry their own creation time and flags and go
    // ahead of the Bernoulli backlog — mirroring materialize(). Terminal
    // t's queues belong to this shard alone, so the parallel-phase pop
    // is race-free.
    created = forced_created_[ti].front();
    forced_created_[ti].pop_front();
    dst = forced_dst_[ti].front();
    forced_dst_[ti].pop_front();
    flags = forced_flags_[ti].front();
    forced_flags_[ti].pop_front();
  } else {
    if (!ts.pending_created.empty()) {
      created = ts.pending_created.front();
      ts.pending_created.pop_front();
    } else {
      assert(ts.burst_remaining > 0);
      --ts.burst_remaining;
    }
    Rng lazy;
    if (rng == nullptr) {
      // No generation draw preceded this attempt, so the terminal's keyed
      // stream is still at its origin: deriving it here, at its first
      // actual draw, is draw-for-draw identical to deriving it up front.
      lazy = keyed_stream(cfg_.seed, now_, kStreamInject,
                          static_cast<std::uint64_t>(t));
      rng = &lazy;
    }
    dst = pattern_->dest(t, *rng);
    if (workload_ != nullptr) {
      // Multi-packet messages: the size draw comes from the same keyed
      // stream as the destination, keeping it a pure function of
      // (seed, cycle, terminal) — hence jobs-invariant. Body packets
      // queue as forced entries behind this head (own-terminal push:
      // race-free); their generation hook replays from the staging
      // buffer at the serial flush.
      const int extra = workload_->message_packets(t, *rng) - 1;
      for (int k = 0; k < extra; ++k) {
        const bool accepted =
            push_forced(t, dst, created, kPacketFlagNoReply);
        if (on_generated_) s.gen_accepted.push_back(accepted ? 1 : 0);
      }
    }
  }
  assert(dst != t && dst >= 0 && dst < topo_.num_terminals());

  if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(dst)]) {
    ++s.dead_dst_drops;
    return;
  }

  ts.inflight_phits += cfg_.packet_phits;
  ts.link_busy_until = now_ + static_cast<Cycle>(cfg_.packet_phits);
  s.injections.push_back({t, dst, created, flags});
  s.progressed = true;
}

void Engine::flush_shard(Shard& s) {
  if (s.deadlock) deadlock_ = true;
  s.deadlock = false;

  // User hooks replay in staging order (allocation order within the
  // shard), ascending shard — a deterministic serialization.
  if (on_hop_) {
    for (const HopRecord& h : s.hops) {
      // Hopped packets are alive at least until their staged delivery
      // fires, which is strictly in the future.
      on_hop_(pool_[h.packet], h.choice, h.router);
    }
    s.hops.clear();
  }
  if (on_generated_) {
    for (const std::uint8_t accepted : s.gen_accepted) {
      on_generated_(now_, accepted != 0);
    }
    s.gen_accepted.clear();
  }

  // Cross-shard events, replayed in staging order. Events bound for
  // different destination shards land in disjoint rings, so one outbox
  // per source shard replayed here is slot-for-slot identical to a
  // per-(source, destination) split replayed in ascending (src, dst).
  for (const StagedCredit& c : s.outbox_credits) {
    assert(c.at > now_ && c.at - now_ < ring_size_);
    shards_[shard_of(c.ev.router)].credit_ring.push(ring_slot(c.at), c.ev);
  }
  s.outbox_credits.clear();
  for (const StagedFlit& f : s.outbox_flits) {
    assert(f.at > now_ && f.at - now_ < ring_size_);
    shards_[shard_of(f.ev.router)].flit_ring.push(ring_slot(f.at), f.ev);
  }
  s.outbox_flits.clear();

  for (const StagedInjection& inj : s.injections) {
    const PacketId id = pool_.alloc();
    Packet& pkt = pool_[id];
    pkt.src = inj.terminal;
    pkt.dst = inj.dst;
    pkt.size_phits = cfg_.packet_phits;
    pkt.num_flits = static_cast<std::int16_t>(flits_per_packet_);
    pkt.flit_phits = static_cast<std::int16_t>(flit_phits_);
    pkt.created = inj.created;
    pkt.injected = now_;
    pkt.flags = inj.flags;
    pkt.rs.dst_router = topo_.router_of_terminal(inj.dst);
    pkt.rs.dst_group = topo_.group_of_terminal(inj.dst);
    pkt.rs.src_group = topo_.group_of_terminal(inj.terminal);

    // The source terminal's router is in this very shard, so injection
    // flits go straight into s's own wheel (we are serial here; nothing
    // is draining it).
    const RouterId r = topo_.router_of_terminal(inj.terminal);
    const PortId port = topo_.terminal_port(inj.terminal);
    for (int k = 0; k < flits_per_packet_; ++k) {
      Flit flit;
      flit.packet = id;
      flit.index = static_cast<std::int16_t>(k);
      flit.size_phits = static_cast<std::int16_t>(flit_phits_);
      flit.head = (k == 0);
      flit.tail = (k == flits_per_packet_ - 1);
      const Cycle at = now_ + static_cast<Cycle>((k + 1) * flit_phits_);
      s.flit_ring.push(ring_slot(at), {r, port, 0, flit});
    }
  }
  s.injections.clear();

  for (int c = 0; c < 3; ++c) {
    phits_sent_[c] += s.phits_sent[c];
    s.phits_sent[c] = 0;
  }
  dead_dst_drops_ += s.dead_dst_drops;
  s.dead_dst_drops = 0;
  if (s.progressed) last_progress_ = now_;
  s.progressed = false;
}

}  // namespace dfsim
