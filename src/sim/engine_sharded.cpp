// The group-sharded parallel stepper (EngineConfig::sharded).
//
// Routers are partitioned by group: shard s owns routers [s*a, (s+1)*a)
// and their terminals, so every piece of router/terminal state has exactly
// one owning shard. A cycle runs as
//
//   1. serial   — drain this cycle's flit/credit ring slots into per-shard
//                 inboxes (ring order is preserved per shard)
//   2. parallel — per-shard arrival bookkeeping (own routers only)
//   3. serial   — packet deliveries + RoutingAlgorithm::per_cycle
//   4. parallel — per-shard allocation + injection; every cross-shard
//                 effect (scheduled events, hooks, counters) is staged
//   5. serial   — flush the staged effects in ascending shard order
//
// Determinism for ANY worker count: the partition is a pure function of
// the topology, phases 2 and 4 touch only owner-shard state and draw from
// counter-based RNG streams keyed by (seed, cycle, entity), and phase 5
// replays side effects in a fixed order. The results are therefore
// bit-identical across jobs=1..N — but not bit-compatible with the exact
// engine, whose single shared RNG cursor implies a different draw
// sequence.
#include <atomic>
#include <cassert>
#include <memory>

#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {

// Defined here (not in engine.cpp) so the unique_ptr<ThreadPool> member
// destroys against the complete type.
Engine::~Engine() = default;

void Engine::init_shards() {
  sharded_ = true;
  routers_per_shard_ = topo_.routers_per_group();
  const int num_shards = topo_.num_groups();
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    sh.first_router = s * routers_per_shard_;
    sh.end_router = (s + 1) * routers_per_shard_;
    sh.first_terminal = sh.first_router * terminals_per_router_;
    sh.end_terminal = sh.end_router * terminals_per_router_;
    sh.scratch.out_first_nom.assign(static_cast<size_t>(ports_), -1);
  }
  const int workers =
      std::min(runtime::resolve_jobs(cfg_.shard_jobs), num_shards);
  if (workers > 1) {
    shard_pool_ = std::make_unique<runtime::ThreadPool>(workers);
  }
}

void Engine::run_shards(void (Engine::*phase)(Shard&)) {
  if (!shard_pool_) {
    for (Shard& s : shards_) (this->*phase)(s);
    return;
  }
  // Workers claim shards dynamically; shard state is disjoint, and the
  // pool's queue mutex orders every claimed shard's writes before
  // wait_idle returns.
  std::atomic<std::size_t> next{0};
  const std::size_t n = shards_.size();
  const int workers = shard_pool_->size();
  for (int w = 0; w < workers; ++w) {
    shard_pool_->submit([this, phase, &next, n] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        (this->*phase)(shards_[i]);
      }
    });
  }
  shard_pool_->wait_idle();
}

bool Engine::step_sharded() {
  const std::size_t slot = ring_slot(now_);
  const int rps = routers_per_shard_;

  // Phase 1: partition this cycle's arrivals by owning shard. Per-shard
  // inbox order is ring order, so arrival bookkeeping is order-stable.
  credit_ring_.drain(slot, [&](const CreditEvent& ev) {
    shards_[static_cast<std::size_t>(ev.router / rps)].inbox_credits
        .push_back(ev);
  });
  flit_ring_.drain(slot, [&](const FlitEvent& ev) {
    shards_[static_cast<std::size_t>(ev.router / rps)].inbox_flits.push_back(
        ev);
  });

  // Phase 2: per-shard arrival bookkeeping.
  run_shards(&Engine::arrive_shard);

  // Phase 3: deliveries (pool release + user hook) and the routing
  // mechanism's global per-cycle work stay serial.
  delivery_ring_.drain(slot, [&](PacketId id) { deliver(id); });
  routing_.per_cycle(*this);

  // Phase 4: switch allocation + injection, effects staged per shard.
  run_shards(&Engine::allocate_and_inject_shard);

  // Phase 5: apply staged effects in ascending shard order.
  for (Shard& s : shards_) flush_shard(s);

  if (pool_.in_use() > 0 && now_ - last_progress_ > cfg_.watchdog_cycles) {
    deadlock_ = true;
  }
  ++now_;
  return !deadlock_;
}

// Mirrors process_arrivals() minus the active-router bitmap: the sharded
// allocator walks its own router range directly, and the bitmap's words
// straddle shard boundaries (a cross-shard read-modify-write hazard).
void Engine::arrive_shard(Shard& s) {
  for (const CreditEvent& ev : s.inbox_credits) {
    const std::size_t ovidx = vc_index(ev.router, ev.port, ev.vc);
    OutputVc& ovc = out_vcs_[ovidx];
    ovc.credits_phits += ev.phits;
    assert(ovc.credits_phits <= port_capacity(ev.port));
    wake_waiters(ovidx);  // waiter chains never leave the router
  }
  s.inbox_credits.clear();

  for (const FlitEvent& ev : s.inbox_flits) {
    const std::size_t vidx = vc_index(ev.router, ev.port, ev.vc);
    InputVc& ivc = in_vcs_[vidx];
    if (ivc.fifo.empty()) {
      ++nonempty_vcs_[static_cast<size_t>(ev.router)];
      ivc.head_since = now_;
      head_hop_[vidx] = kHeadUnknown;  // this flit becomes the head
      std::uint32_t& scan = in_scan_[port_index(ev.router, ev.port)];
      if ((scan >> 16) == 0) set_occupied(ev.router, ev.port);
      scan |= 1u << (16 + ev.vc);
    }
    ivc.fifo.push_back(ev.flit);
    ivc.occupancy_phits += ev.flit.size_phits;
    if (pclass(ev.port) == PortClass::kTerminal) {
      const NodeId t = ev.router * terminals_per_router_ +
                       (ev.port - first_terminal_port_);
      terminals_[static_cast<size_t>(t)].inflight_phits -=
          ev.flit.size_phits;
    }
    assert(ivc.occupancy_phits <= port_capacity(ev.port));
  }
  s.inbox_flits.clear();
}

void Engine::allocate_and_inject_shard(Shard& s) {
  for (RouterId r = s.first_router; r < s.end_router; ++r) {
    if (nonempty_vcs_[static_cast<size_t>(r)] > 0) {
      allocate_router(r, s.scratch, &s);
    }
  }

  const bool draws = injection_.mode == InjectionProcess::Mode::kBernoulli &&
                     gen_probability_ > 0.0;
  if (draws) {
    // Each terminal's generation randomness comes from its own keyed
    // stream, in a fixed draw order: ON/OFF chain step(s), generation
    // draw, then (inside try_inject_shard) the destination draw.
    for (NodeId t = s.first_terminal; t < s.end_terminal; ++t) {
      if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(t)]) {
        continue;
      }
      TerminalState& ts = terminals_[static_cast<size_t>(t)];
      Rng trng = keyed_stream(cfg_.seed, now_, kStreamInject,
                              static_cast<std::uint64_t>(t));
      bool generate;
      if (onoff_) {
        std::uint8_t& on = onoff_state_[static_cast<size_t>(t)];
        if (on != 0) {
          if (trng.bernoulli(injection_.onoff_off)) on = 0;
        } else if (trng.bernoulli(injection_.onoff_on)) {
          on = 1;
        }
        generate = on != 0 && trng.bernoulli(gen_probability_on_);
      } else {
        generate = trng.bernoulli(gen_probability_);
      }
      if (generate) {
        const bool accepted =
            ts.pending_created.size() <
            static_cast<std::size_t>(cfg_.source_queue_cap);
        if (accepted) ts.pending_created.push_back(now_);
        if (on_generated_) s.gen_accepted.push_back(accepted ? 1 : 0);
      }
      try_inject_shard(t, ts, trng, s);
    }
    return;
  }

  // No generation randomness (burst mode, zero load, or scripted
  // destinations only): look at terminals with queued work.
  for (NodeId t = s.first_terminal; t < s.end_terminal; ++t) {
    TerminalState& ts = terminals_[static_cast<size_t>(t)];
    if (ts.pending_created.empty() && ts.burst_remaining == 0) continue;
    Rng trng = keyed_stream(cfg_.seed, now_, kStreamInject,
                            static_cast<std::uint64_t>(t));
    try_inject_shard(t, ts, trng, s);
  }
}

// try_inject + materialize, restricted to owner-shard state: the packet
// itself (a pool allocation, hence cross-shard) is staged and materialized
// at the flush, but the source-side bookkeeping — queue pop, destination
// draw, inflight/link accounting — happens here so the next cycle's
// capacity checks see it.
void Engine::try_inject_shard(NodeId t, TerminalState& ts, Rng& rng,
                              Shard& s) {
  if (ts.pending_created.empty() && ts.burst_remaining == 0) return;
  if (ts.link_busy_until > now_) return;

  const RouterId r = topo_.router_of_terminal(t);
  const PortId port = topo_.terminal_port(t);
  const InputVc& ivc = in_vcs_[vc_index(r, port, 0)];
  if (ivc.occupancy_phits + ts.inflight_phits + cfg_.packet_phits >
      injection_buf_phits_) {
    return;
  }

  Cycle created = 0;
  if (!ts.pending_created.empty()) {
    created = ts.pending_created.front();
    ts.pending_created.pop_front();
  } else {
    assert(ts.burst_remaining > 0);
    --ts.burst_remaining;
  }

  NodeId dst;
  if (has_forced_dst_ && !forced_dst_[static_cast<size_t>(t)].empty()) {
    dst = forced_dst_[static_cast<size_t>(t)].front();
    forced_dst_[static_cast<size_t>(t)].pop_front();
  } else {
    dst = pattern_->dest(t, rng);
  }
  assert(dst != t && dst >= 0 && dst < topo_.num_terminals());

  if (has_dead_terminals_ && terminal_dead_[static_cast<size_t>(dst)]) {
    ++s.dead_dst_drops;
    return;
  }

  ts.inflight_phits += cfg_.packet_phits;
  ts.link_busy_until = now_ + static_cast<Cycle>(cfg_.packet_phits);
  s.injections.push_back({t, dst, created});
  s.progressed = true;
}

void Engine::flush_shard(Shard& s) {
  if (s.deadlock) deadlock_ = true;
  s.deadlock = false;

  // User hooks replay in staging order (allocation order within the
  // shard), ascending shard — a deterministic serialization.
  if (on_hop_) {
    for (const HopRecord& h : s.hops) {
      // Hopped packets are alive at least until their staged delivery
      // fires, which is strictly in the future.
      on_hop_(pool_[h.packet], h.choice, h.router);
    }
  }
  s.hops.clear();
  if (on_generated_) {
    for (const std::uint8_t accepted : s.gen_accepted) {
      on_generated_(now_, accepted != 0);
    }
  }
  s.gen_accepted.clear();

  for (const StagedCredit& c : s.staged_credits) schedule_credit(c.at, c.ev);
  s.staged_credits.clear();
  for (const StagedFlit& f : s.staged_flits) schedule_flit(f.at, f.ev);
  s.staged_flits.clear();
  for (const StagedDelivery& d : s.staged_deliveries) {
    schedule_delivery(d.at, d.id);
  }
  s.staged_deliveries.clear();

  for (const StagedInjection& inj : s.injections) {
    const PacketId id = pool_.alloc();
    Packet& pkt = pool_[id];
    pkt.src = inj.terminal;
    pkt.dst = inj.dst;
    pkt.size_phits = cfg_.packet_phits;
    pkt.num_flits = static_cast<std::int16_t>(flits_per_packet_);
    pkt.flit_phits = static_cast<std::int16_t>(flit_phits_);
    pkt.created = inj.created;
    pkt.injected = now_;
    pkt.rs.dst_router = topo_.router_of_terminal(inj.dst);
    pkt.rs.dst_group = topo_.group_of_terminal(inj.dst);
    pkt.rs.src_group = topo_.group_of_terminal(inj.terminal);

    const RouterId r = topo_.router_of_terminal(inj.terminal);
    const PortId port = topo_.terminal_port(inj.terminal);
    for (int k = 0; k < flits_per_packet_; ++k) {
      Flit flit;
      flit.packet = id;
      flit.index = static_cast<std::int16_t>(k);
      flit.size_phits = static_cast<std::int16_t>(flit_phits_);
      flit.head = (k == 0);
      flit.tail = (k == flits_per_packet_ - 1);
      schedule_flit(now_ + static_cast<Cycle>((k + 1) * flit_phits_),
                    {r, port, 0, flit});
    }
  }
  s.injections.clear();

  for (int c = 0; c < 3; ++c) {
    phits_sent_[c] += s.phits_sent[c];
    s.phits_sent[c] = 0;
  }
  dead_dst_drops_ += s.dead_dst_drops;
  s.dead_dst_drops = 0;
  if (s.progressed) last_progress_ = now_;
  s.progressed = false;
}

}  // namespace dfsim
