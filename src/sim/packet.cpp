#include "sim/packet.hpp"

namespace dfsim {

PacketId PacketPool::alloc() {
  if (!free_.empty()) {
    const PacketId id = free_.back();
    free_.pop_back();
    slots_[static_cast<size_t>(id)] = Packet{};
    return id;
  }
  slots_.emplace_back();
  return static_cast<PacketId>(slots_.size() - 1);
}

void PacketPool::release(PacketId id) { free_.push_back(id); }

}  // namespace dfsim
