// The cycle-driven network simulator substrate.
//
// Models the paper's evaluation platform: a single-cycle simulator of FIFO
// input-buffered routers with VCT or wormhole flow control, credit-based
// link-level backpressure, phit-granular serialization and configurable
// link latencies (Section IV).
//
// Per cycle:
//   1. credit arrivals   (returned one link latency after downstream drain)
//   2. flit arrivals     (full flit lands in the downstream input VC)
//   3. switch allocation (input nomination + output round-robin grant)
//   4. injection         (terminals materialize pending packets)
//
// Hot-path layout: all per-router and per-terminal state lives in flat
// engine-level arrays (no per-router heap objects), every input VC's flit
// FIFO is a fixed-capacity ring carved from one contiguous arena, and the
// timing wheels recycle slab chunks across wraps. Two bitmap worklists —
// active routers and terminals with pending work — keep step() away from
// idle state entirely. All of it is iterated in ascending id order, so
// results are bit-identical to the exhaustive scans they replaced.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"
#include "sim/buffer.hpp"
#include "sim/packet.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

namespace runtime {
class BarrierTeam;
}

class TrafficPattern;
class Workload;

struct EngineConfig {
  FlowControl flow = FlowControl::kVirtualCutThrough;
  int packet_phits = 8;
  int flit_phits = 0;  ///< 0 -> whole-packet flits (VCT default)

  int local_vcs = 3;
  int global_vcs = 2;
  int local_buf_phits = 32;    ///< per local-port VC FIFO (paper Sec. IV)
  int global_buf_phits = 256;  ///< per global-port VC FIFO
  int injection_buf_phits = 0;  ///< 0 -> max(2*packet, local_buf)

  int local_latency = 10;    ///< cycles of wire delay, local links
  int global_latency = 100;  ///< cycles of wire delay, global links

  /// Cycles without any flit movement (while traffic is in flight) after
  /// which the engine declares deadlock and stops.
  Cycle watchdog_cycles = 20000;

  /// Source backlog cap per terminal, in packets. Beyond saturation the
  /// backlog would grow without bound; capping it keeps memory flat while
  /// leaving accepted-load measurements untouched (the network, not the
  /// source queue, is the bottleneck whenever the cap binds).
  int source_queue_cap = 256;

  /// Opt-in group-sharded parallel stepper (DF_ENGINE=sharded): routers
  /// are partitioned by group across a thread pool with per-cycle
  /// barriers, and every RNG draw comes from a counter-based stream keyed
  /// by (seed, cycle, entity) — results are bit-identical for ANY worker
  /// count, but NOT bit-compatible with the default exact mode (whose
  /// single-stream ascending draw order is its own contract). VCT only.
  bool sharded = false;
  /// Worker threads for the sharded stepper; 0 resolves via
  /// runtime::resolve_jobs (--jobs / DF_JOBS / hardware concurrency).
  int shard_jobs = 0;

  /// Per-phase cycle profiler for the sharded stepper (DF_PROFILE=1 is
  /// the env equivalent). Off by default: the hot loop then contains no
  /// clock reads at all — the flag is checked once per step and the
  /// timed path is a separate template instantiation.
  bool profile = false;

  std::uint64_t seed = 1;
};

/// How terminals generate traffic.
struct InjectionProcess {
  enum class Mode : std::uint8_t { kBernoulli, kBurst };
  Mode mode = Mode::kBernoulli;
  /// Offered load in phits/(node*cycle) — a packet is generated with
  /// probability load/packet_phits each cycle (Bernoulli process).
  double load = 0.0;
  /// Burst mode: packets per node, all generated at cycle 0.
  std::uint64_t burst_packets = 0;
  /// Markov ON/OFF modulation of the Bernoulli process (both 0 =
  /// disabled, the memoryless default). Each terminal carries a two-state
  /// chain stepped once per cycle: OFF -> ON with probability onoff_on,
  /// ON -> OFF with probability onoff_off. While ON it generates with the
  /// Bernoulli probability divided by the stationary ON share
  /// onoff_on / (onoff_on + onoff_off), so the long-run offered load
  /// still matches `load` while arrivals clump into bursts with geometric
  /// ON/OFF dwell times. That while-ON probability is clamped at 1, under
  /// which the real offered load would undershoot `load` —
  /// SimConfig::validate() rejects such duty/load combinations up front.
  /// Layers on ANY traffic pattern (the pattern only picks destinations).
  double onoff_on = 0.0;
  double onoff_off = 0.0;
};

/// Delivery callback: packet (still valid), delivery cycle.
using DeliveryHook = std::function<void(const Packet&, Cycle)>;
/// Generation callback: cycle, accepted (false when the source cap bound).
using GenerationHook = std::function<void(Cycle, bool)>;
/// Hop callback: packet (route state already updated), the decision taken,
/// and the router it was taken at. Used by tests and route tracing.
using HopHook = std::function<void(const Packet&, const RouteChoice&,
                                   RouterId)>;

class Engine {
 public:
  Engine(const DragonflyTopology& topo, const EngineConfig& cfg,
         RoutingAlgorithm& routing, TrafficPattern& pattern,
         const InjectionProcess& injection);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advance one cycle. Returns false once deadlock was detected.
  bool step();
  /// Run until `end` cycles (absolute) or deadlock.
  void run_until(Cycle end);

  // --- observability --------------------------------------------------
  Cycle now() const { return now_; }
  bool deadlock_detected() const { return deadlock_; }
  std::uint64_t packets_in_flight() const { return pool_.in_use(); }
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_phits() const { return delivered_phits_; }
  /// Packets dropped at injection because their destination terminal sits
  /// on a dead router (degraded topologies only; always 0 when healthy).
  std::uint64_t dead_destination_drops() const { return dead_dst_drops_; }
  std::uint64_t phits_sent(PortClass cls) const {
    return phits_sent_[static_cast<int>(cls)];
  }
  /// True when the group-sharded parallel stepper is active.
  bool sharded() const { return sharded_; }

  /// Per-phase wall-clock totals of the sharded stepper, accumulated only
  /// while profiling (EngineConfig::profile / DF_PROFILE=1). The four
  /// phase counters tile each step exactly — timestamps are taken at the
  /// phase boundaries, so arrive + deliver + alloc + flush == total by
  /// construction. All-zero when profiling is off or the engine is exact.
  struct PhaseProfile {
    std::uint64_t steps = 0;
    std::uint64_t arrive_ns = 0;   ///< parallel: per-shard ring drains
    std::uint64_t deliver_ns = 0;  ///< serial: deliveries + per_cycle
    std::uint64_t alloc_ns = 0;    ///< parallel: allocation + injection
    std::uint64_t flush_ns = 0;    ///< serial: outbox replay + injections
    std::uint64_t total_ns = 0;
    /// Amdahl estimate: the share of step time spent in the serial
    /// phases (deliver + flush). 0 when nothing was profiled.
    double serial_fraction() const {
      if (total_ns == 0) return 0.0;
      return static_cast<double>(deliver_ns + flush_ns) /
             static_cast<double>(total_ns);
    }
  };
  const PhaseProfile& phase_profile() const { return profile_data_; }
  bool profiling() const { return profile_; }
  /// Resident bytes of the engine's own state arrays (arenas, VC state,
  /// worklists, terminals, timing wheels, packet pool). Used by the scale
  /// benches to report bytes-per-terminal; excludes malloc overhead.
  std::size_t footprint_bytes() const;

  const DragonflyTopology& topology() const { return topo_; }
  const EngineConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }

  // --- mid-run switches (phased runs) -----------------------------------
  /// Swap the destination pattern; takes effect at the next generation.
  /// The caller keeps `p` alive for the rest of the run. Packets already
  /// in flight keep their destinations — that mid-stream transition is
  /// exactly what run_phased measures.
  void set_pattern(TrafficPattern& p) { pattern_ = &p; }
  const TrafficPattern& pattern() const { return *pattern_; }
  /// Change the offered load of the Bernoulli source process (phits per
  /// node-cycle); takes effect at the next cycle's generation draws.
  void set_offered_load(double load) {
    injection_.load = load;
    gen_probability_ = load / static_cast<double>(cfg_.packet_phits);
    refresh_onoff_probability();
  }

  // --- workload layer (traffic/workload.hpp) ---------------------------
  /// Attach an application workload. The workload's pattern must already
  /// be the engine's pattern (it supplies fresh destination draws); on
  /// top of that the engine consults the workload for request-reply
  /// causality (a reply is queued at the destination terminal when a
  /// request is delivered), multi-packet message sizes, and trace rows.
  /// The caller keeps `w` alive for the rest of the run; nullptr
  /// detaches. Call before the first step().
  void set_workload(Workload* w);
  const Workload* workload() const { return workload_; }

  /// Per-terminal offered loads (phits/node/cycle) for multi-job
  /// workloads; overrides the uniform Bernoulli load per terminal. An
  /// empty vector restores the uniform process. In sharded mode the
  /// per-terminal coin is still a pure function of (seed, cycle,
  /// terminal), so worker-count independence is preserved.
  void set_terminal_loads(const std::vector<double>& loads);

  void set_delivery_hook(DeliveryHook hook) { on_delivered_ = std::move(hook); }
  void set_generation_hook(GenerationHook hook) {
    on_generated_ = std::move(hook);
  }
  void set_hop_hook(HopHook hook) { on_hop_ = std::move(hook); }

  // --- queries used by routing mechanisms -------------------------------
  // (defined inline: mechanisms call these once or more per decide(), so
  // they must not cost a cross-module call)

  /// True when a flit could depart on (port, vc) this cycle: link idle,
  /// enough credits for the flow-control discipline, and (wormhole) the
  /// downstream VC not owned by another packet.
  bool output_usable(RouterId r, PortId port, VcId vc,
                     const Flit& flit) const {
    if (out_busy_until_[port_index(r, port)] > now_) return false;
    if (pclass(port) == PortClass::kTerminal) return true;
    const OutputVc& ovc = out_vcs_[vc_index(r, port, vc)];
    if (flit.head) {
      if (ovc.bound_packet != kInvalid) return false;
    } else {
      if (ovc.bound_packet != flit.packet) return false;
    }
    return ovc.credits_phits >= flit.size_phits;
  }

  /// Downstream buffer occupancy fraction in [0,1] derived from credits —
  /// the misrouting trigger's input (paper Sec. III: "a misrouting trigger
  /// based on the credits count of the output ports").
  double output_occupancy(RouterId r, PortId port, VcId vc) const {
    const int cls = port_class_[static_cast<size_t>(port)];
    if (static_cast<PortClass>(cls) == PortClass::kTerminal) return 0.0;
    const OutputVc& ovc = out_vcs_[vc_index(r, port, vc)];
    // inv_cap_ is nonzero only for power-of-two capacities, where the
    // multiply is bit-identical to the division (exact exponent shift);
    // other capacities take the division so results never drift.
    const double inv = inv_cap_[cls];
    const double credits = static_cast<double>(ovc.credits_phits);
    if (inv != 0.0) return 1.0 - credits * inv;
    return 1.0 - credits / static_cast<double>(cap_by_class_[cls]);
  }

  /// Occupancy averaged over all VCs of an output port.
  double port_occupancy(RouterId r, PortId port) const {
    const int n = vc_count(port);
    double total = 0.0;
    for (VcId v = 0; v < n; ++v) total += output_occupancy(r, port, v);
    return total / static_cast<double>(n);
  }

  /// Worst (most occupied) VC of an output port — a saturated VC must not
  /// be diluted by its idle siblings (Piggybacking's saturation signal).
  double port_max_occupancy(RouterId r, PortId port) const {
    const int n = vc_count(port);
    double worst = 0.0;
    for (VcId v = 0; v < n; ++v) {
      worst = std::max(worst, output_occupancy(r, port, v));
    }
    return worst;
  }

  /// Total queued phits believed downstream of an output port, over all
  /// VCs (UGAL's queue-depth comparison).
  int port_queue_phits(RouterId r, PortId port) const {
    if (pclass(port) == PortClass::kTerminal) return 0;
    const int cap = port_capacity(port);
    int total = 0;
    for (VcId v = 0; v < vc_count(port); ++v) {
      total += cap - out_vcs_[vc_index(r, port, v)].credits_phits;
    }
    return total;
  }

  int vc_count(PortId port) const {
    return vc_count_[static_cast<size_t>(port)];
  }
  int buffer_capacity(PortClass cls) const {
    return cap_by_class_[static_cast<int>(cls)];
  }
  int flit_phits() const { return flit_phits_; }
  int flits_per_packet() const { return flits_per_packet_; }

  const InputVc& input_vc(RouterId r, PortId port, VcId vc) const {
    return in_vcs_[vc_index(r, port, vc)];
  }
  const OutputVc& output_vc(RouterId r, PortId port, VcId vc) const {
    return out_vcs_[vc_index(r, port, vc)];
  }
  const Packet& packet(PacketId id) const { return pool_[id]; }

  // --- checkpoint / restart ---------------------------------------------
  /// Bumped whenever the checkpoint byte layout changes; restore rejects
  /// any other version with a pointed message (no cross-version decoding).
  /// v2: engine-mode byte in the header (exact vs sharded — the two draw
  /// different RNG streams, so cross-mode restores must fail loudly).
  /// v3: sharded checkpoints serialize the per-shard timing wheels (one
  /// flit/credit/delivery ring per shard) instead of the retired global
  /// wheels; v2 sharded streams are rejected with a pointed message.
  /// v4: workload state — per-packet flag bytes, the forced-injection
  /// queues' (created, dst, flags) triples, per-terminal offered loads,
  /// and the workload's trace cursor; v3 streams are rejected with a
  /// pointed message.
  static constexpr std::uint32_t kCheckpointVersion = 4;

  /// Serialize the complete dynamic engine state behind a versioned,
  /// shape-checked header: every input-VC FIFO (flit arena slices), all
  /// credits and wormhole VC bindings, the timing-wheel events in flight,
  /// the packet pool (slots AND free-list order), per-terminal injection
  /// state including Markov ON/OFF chains, the RNG cursor, switch RR
  /// pointers, and the routing mechanism's cross-cycle state
  /// (RoutingAlgorithm::save_state). Derived retry-suppression caches
  /// (sleep timers, waiter lists, pure-hop verdicts, minimal-port memos)
  /// are NOT serialized: rebuilding them draws no randomness and changes
  /// no decision, so a restored run replays bit-identically without them.
  /// Call only between step() boundaries (never from a hook).
  void save_checkpoint(std::ostream& os) const;

  /// Inverse of save_checkpoint, into a FRESHLY-CONSTRUCTED engine built
  /// from the same configuration and topology. Throws std::runtime_error
  /// with a pointed message on a truncated, corrupt, version-mismatched
  /// or wrong-shape checkpoint, and std::logic_error when this engine has
  /// already stepped. After a successful restore, the cycle-by-cycle
  /// behavior is bit-identical to the engine the checkpoint was saved
  /// from (exact-mode determinism contract).
  void restore(std::istream& is);

  // --- test hooks -------------------------------------------------------
  /// Inject a fully-formed packet directly at its source terminal's queue
  /// (unit tests drive single packets through the network this way).
  void inject_for_test(NodeId src, NodeId dst, Cycle created);

 private:
  /// Per-terminal injection state — the engine's biggest per-entity array
  /// at h=8+ shapes, so it holds only what every terminal needs: the
  /// router/port mapping is pure arithmetic (recomputed from the
  /// topology), and the test-only scripted destinations live in a lazy
  /// engine-level side table (forced_dst_) that stays empty outside unit
  /// tests. The RingDeque itself allocates nothing until first use.
  struct TerminalState {
    RingDeque<Cycle> pending_created;  // capped backlog of creation times
    std::uint64_t burst_remaining = 0;
    Cycle link_busy_until = 0;
    std::int32_t inflight_phits = 0;  // reserved in the injection buffer
  };

  struct FlitEvent {
    RouterId router;
    PortId port;
    VcId vc;
    Flit flit;
  };
  struct CreditEvent {
    RouterId router;
    PortId port;
    VcId vc;
    std::int32_t phits;
  };

  std::size_t port_index(RouterId r, PortId port) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(ports_) +
           static_cast<std::size_t>(port);
  }
  std::size_t vc_index(RouterId r, PortId port, VcId vc) const {
    return port_index(r, port) * static_cast<std::size_t>(vc_stride_) +
           static_cast<std::size_t>(vc);
  }
  // Occupied-port bitmask, occ_words_ 64-bit words per router (the
  // one-word-per-router layout capped router degree at 63).
  std::size_t occ_index(RouterId r, PortId port) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(occ_words_) +
           (static_cast<std::size_t>(port) >> 6);
  }
  void set_occupied(RouterId r, PortId port) {
    occupied_ports_[occ_index(r, port)] |= 1ULL << (port & 63);
  }
  void clear_occupied(RouterId r, PortId port) {
    occupied_ports_[occ_index(r, port)] &= ~(1ULL << (port & 63));
  }
  PortClass pclass(PortId port) const {
    return static_cast<PortClass>(port_class_[static_cast<size_t>(port)]);
  }
  int port_capacity(PortId port) const {
    return cap_by_class_[port_class_[static_cast<size_t>(port)]];
  }

  InputVc& in_vc(RouterId r, PortId port, VcId vc) {
    return in_vcs_[vc_index(r, port, vc)];
  }
  OutputVc& out_vc(RouterId r, PortId port, VcId vc) {
    return out_vcs_[vc_index(r, port, vc)];
  }

  // --- worklists --------------------------------------------------------
  void mark_router_active(RouterId r) {
    active_routers_[static_cast<std::size_t>(r) >> 6] |=
        1ULL << (static_cast<std::size_t>(r) & 63);
  }
  void mark_terminal_pending(NodeId t) {
    pending_terminals_[static_cast<std::size_t>(t) >> 6] |=
        1ULL << (static_cast<std::size_t>(t) & 63);
  }
  bool terminal_pending(NodeId t) const {
    return (pending_terminals_[static_cast<std::size_t>(t) >> 6] >>
            (static_cast<std::size_t>(t) & 63)) &
           1ULL;
  }
  void clear_terminal_pending(NodeId t) {
    pending_terminals_[static_cast<std::size_t>(t) >> 6] &=
        ~(1ULL << (static_cast<std::size_t>(t) & 63));
  }

  /// output_usable() specialized for a head flit (every flit in flight is
  /// exactly flit_phits_ phits), so pure retries skip the arena read.
  bool head_usable(RouterId r, PortId port, VcId vc) const {
    if (out_busy_until_[port_index(r, port)] > now_) return false;
    if (pclass(port) == PortClass::kTerminal) return true;
    const OutputVc& ovc = out_vcs_[vc_index(r, port, vc)];
    return ovc.bound_packet == kInvalid && ovc.credits_phits >= flit_phits_;
  }

  /// Head at `vidx` just failed its (decision-free) usability check
  /// toward (out_port, out_vc). Nothing can change the verdict except
  ///   - the output link's serialization ending (a known future cycle),
  ///   - a credit arriving on that output VC, or
  ///   - (wormhole) the VC's owning packet releasing it (tail sent),
  /// so suppress retries until the earliest such event: a timed sleep for
  /// the busy case, an entry on the output VC's waiter list for the other
  /// two. Both are capped at the head's watchdog deadline — exactly the
  /// first cycle the per-head deadlock check would fire — so detection
  /// timing is untouched. Only callers that provably draw no RNG while
  /// blocked (pure-minimal heads, wormhole continuations) may use this.
  void suppress_retry(std::size_t vidx, const InputVc& ivc, RouterId r,
                      PortId out_port, VcId out_vc) {
    const Cycle deadline = ivc.head_since + cfg_.watchdog_cycles + 1;
    const Cycle busy = out_busy_until_[port_index(r, out_port)];
    if (busy > now_) {
      vc_sleep_until_[vidx] = busy < deadline ? busy : deadline;
      return;
    }
    // An idle terminal output is always usable — being blocked on one is
    // impossible here.
    assert(pclass(out_port) != PortClass::kTerminal);
    const std::size_t ovidx = vc_index(r, out_port, out_vc);
    vc_sleep_until_[vidx] = deadline;
    if (vc_waiter_next_[vidx] == kNotWaiting) {
      vc_waiter_next_[vidx] = ovc_waiter_head_[ovidx];
      ovc_waiter_head_[ovidx] = static_cast<std::int32_t>(vidx);
    }
  }

  /// A credit arrived on / ownership was released from output VC `ovidx`:
  /// put every input VC waiting on it back into the allocation scan.
  void wake_waiters(std::size_t ovidx) {
    std::int32_t w = ovc_waiter_head_[ovidx];
    if (w < 0) return;
    ovc_waiter_head_[ovidx] = -1;
    do {
      const auto wi = static_cast<std::size_t>(w);
      const std::int32_t next = vc_waiter_next_[wi];
      vc_waiter_next_[wi] = kNotWaiting;
      vc_sleep_until_[wi] = 0;
      // The woken VC's port is actionable again (vc_index is
      // port_index * vc_stride_ + vc, so the division recovers the port).
      port_wake_[wi / static_cast<std::size_t>(vc_stride_)] = 0;
      w = next;
    } while (w >= 0);
  }

  /// ON/OFF mode: recompute the while-ON generation probability from the
  /// current load and the chain's stationary ON share. No-op otherwise.
  void refresh_onoff_probability() {
    if (!onoff_) return;
    const double duty =
        injection_.onoff_on / (injection_.onoff_on + injection_.onoff_off);
    gen_probability_on_ = std::min(1.0, gen_probability_ / duty);
  }

  // Scratch shared by one allocation scan: nominations, the per-output
  // first-nominee slots, and (sharded mode) the current decision's keyed
  // RNG stream. One instance per shard — concurrent allocate_router calls
  // must never share it.
  struct Nomination {
    PortId in_port;
    VcId in_vc;
    PortId out_port;
    VcId out_vc;
    bool fresh;          // head flit with a fresh routing decision
    RouteChoice choice;  // valid when fresh
  };
  struct AllocScratch {
    std::vector<Nomination> noms;
    std::vector<std::int16_t> out_first_nom;  // per out port -> index|-1
    std::vector<PortId> touched_outs;
    Rng rng;  // per-decision keyed stream (sharded mode only)
  };
  struct Shard;  // defined below

  void process_arrivals();
  void allocate_active_routers();
  void allocate_router(RouterId r, AllocScratch& scratch, Shard* shard);
  void send_flit(RouterId r, PortId in_port, VcId in_vc_id, PortId out_port,
                 VcId out_vc_id, const RouteChoice* fresh_choice,
                 Shard* shard);
  void apply_route_state(Packet& pkt, RouterId r, const RouteChoice& choice);
  void inject_terminals();
  void try_inject(NodeId terminal);
  void materialize(NodeId terminal, TerminalState& ts);
  void deliver(PacketId id);

  // --- workload support -------------------------------------------------
  /// Queue a fully-specified packet (destination, creation time, flags)
  /// at terminal `t`'s forced queue; materialized before fresh pattern
  /// draws. Returns false (and queues nothing) when the source backlog
  /// cap binds. Caller must be a serial phase, or own `t`'s shard.
  bool push_forced(NodeId t, NodeId dst, Cycle created, std::uint8_t flags);
  bool forced_pending(NodeId t) const {
    return has_forced_dst_ && !forced_dst_[static_cast<std::size_t>(t)].empty();
  }
  /// True when terminal `t` still has anything to inject.
  bool terminal_has_work(NodeId t, const TerminalState& ts) const {
    return !ts.pending_created.empty() || ts.burst_remaining != 0 ||
           forced_pending(t);
  }
  /// Replay trace rows with cycle <= now into the forced queues (serial
  /// point of both steppers; no-op unless a trace workload is attached).
  void feed_trace();
  /// Request-reply causality: called from deliver() (serial in both
  /// modes) to queue a reply at the destination terminal.
  void maybe_reply(const Packet& pkt);

  // --- sharded stepper (engine_sharded.cpp) -----------------------------
  void init_shards();
  bool step_sharded();
  template <bool kProfile>
  bool step_sharded_impl();
  void run_shards(void (Engine::*phase)(Shard&));
  void shard_worker(int worker);
  void arrive_shard(Shard& s);
  void allocate_and_inject_shard(Shard& s);
  /// `rng` is null in the no-generation-draw path: the keyed injection
  /// stream is then constructed lazily at the destination draw (the only
  /// draw that path can make), so terminals that bail on the early checks
  /// never pay the stream derivation.
  void try_inject_shard(NodeId t, TerminalState& ts, Rng* rng, Shard& s);
  void flush_shard(Shard& s);

  void schedule_flit(Cycle at, FlitEvent ev);
  void schedule_credit(Cycle at, CreditEvent ev);
  void schedule_delivery(Cycle at, PacketId id);
  std::size_t ring_slot(Cycle at) const { return at & (ring_size_ - 1); }

  int link_latency(PortClass cls) const {
    return cls == PortClass::kGlobal ? cfg_.global_latency
                                     : cfg_.local_latency;
  }

  const DragonflyTopology& topo_;
  EngineConfig cfg_;
  RoutingAlgorithm& routing_;
  TrafficPattern* pattern_;  ///< swappable mid-run via set_pattern
  InjectionProcess injection_;

  int ports_;
  int vc_stride_;
  int first_terminal_port_;
  int terminals_per_router_;
  int flit_phits_;
  int flits_per_packet_;
  int injection_buf_phits_;
  double gen_probability_;

  // Per-port-class constants, indexed by static_cast<int>(PortClass).
  int cap_by_class_[3] = {0, 0, 0};
  double inv_cap_[3] = {0.0, 0.0, 0.0};  ///< 1/cap if pow2 capacity, else 0

  // Per-port lookups shared by all routers (the port layout is uniform).
  std::vector<std::uint8_t> port_class_;  // [port] -> PortClass
  std::vector<std::int32_t> vc_count_;    // [port]

  // Flat router state, indexed via port_index()/vc_index().
  std::vector<InputVc> in_vcs_;
  std::vector<OutputVc> out_vcs_;
  /// Retry suppression for heads blocked by output serialization: while a
  /// pure-minimal head (or a wormhole continuation, which never consults
  /// the routing mechanism) waits on a port that is busy until cycle T,
  /// no cycle before T can change the verdict and no RNG would be drawn —
  /// so the VC sleeps until min(T, its watchdog deadline) and the scan
  /// skips it with a single load. Bit-identical to retrying every cycle.
  std::vector<Cycle> vc_sleep_until_;
  /// Port-level aggregation of vc_sleep_until_: when EVERY nonempty VC of
  /// an input port is asleep, the port records its earliest wake here and
  /// the allocation scan skips the whole port with a single load (instead
  /// of walking its VC mask to rediscover that nothing is actionable).
  /// Cleared to 0 — port actionable — whenever a flit arrives into an
  /// empty VC of the port or a waiting VC is woken by wake_waiters; timed
  /// sleeps simply expire. Like the per-VC sleeps this is derived,
  /// behavior-neutral state: a skipped visit would have nominated nothing
  /// and drawn no RNG, so results are bit-identical with or without it.
  std::vector<Cycle> port_wake_;
  /// Per-VC verdict of RoutingAlgorithm::pure_minimal_hop for the current
  /// head flit: kHeadUnknown (re-ask on next scan), kHeadImpure (full
  /// decide() every retry), or the encoded pure hop port*16+vc. Reset
  /// whenever the VC's head changes (send, or arrival into an empty VC);
  /// the head's RouteState cannot change between those points, so a
  /// cached verdict never goes stale. Pure retries then touch neither the
  /// packet pool nor the flit arena.
  std::vector<std::int16_t> head_hop_;
  static constexpr std::int16_t kHeadUnknown = -1;
  static constexpr std::int16_t kHeadImpure = -2;
  /// Intrusive waiter lists for the event-driven half of retry
  /// suppression: ovc_waiter_head_[output vc] chains the input VCs whose
  /// pure heads are blocked on that VC's credits/ownership, linked
  /// through vc_waiter_next_[input vc] (kNotWaiting when not enlisted).
  std::vector<std::int32_t> ovc_waiter_head_;
  std::vector<std::int32_t> vc_waiter_next_;
  static constexpr std::int32_t kNotWaiting = -2;
  std::vector<Flit> flit_arena_;  // backs every InputVc::fifo
  std::vector<DragonflyTopology::Endpoint> endpoints_;  // [router*ports+port]
  std::vector<Cycle> out_busy_until_;          // [router*ports+port]
  /// Input-side per-port scan state, packed so the allocation scan loads
  /// one word per port: low 16 bits = RR pointer over VCs (pre-reduced),
  /// high 16 bits = bitmask of nonempty VCs.
  std::vector<std::uint32_t> in_scan_;         // [router*ports+port]
  std::vector<std::uint16_t> out_rr_;  // [router*ports+port], over inputs
  /// Occupied-port bitmask, occ_words_ words per router (see occ_index).
  std::vector<std::uint64_t> occupied_ports_;
  int occ_words_ = 1;
  std::vector<std::int32_t> nonempty_vcs_;     // [router]

  // Worklist bitmaps: a router is active while any input VC holds flits; a
  // terminal is pending while its source queue or burst budget is nonzero.
  std::vector<std::uint64_t> active_routers_;
  std::vector<std::uint64_t> pending_terminals_;

  std::vector<TerminalState> terminals_;
  /// Forced-injection queues: fully-specified packets (destination,
  /// creation time, flag bits) queued ahead of fresh pattern draws —
  /// inject_for_test scripts, workload replies, multi-packet message
  /// bodies, and trace rows. Three parallel RingDeques per terminal,
  /// pushed and popped together. Lazily sized on first use (eagerly by
  /// set_workload) so plain runs never pay num_terminals RingDeques.
  std::vector<RingDeque<NodeId>> forced_dst_;
  std::vector<RingDeque<Cycle>> forced_created_;
  std::vector<RingDeque<std::uint8_t>> forced_flags_;
  bool has_forced_dst_ = false;
  /// Application workload (non-owning; see set_workload). The cached
  /// trace flag keeps the per-step check to one bool.
  Workload* workload_ = nullptr;
  bool workload_trace_ = false;
  /// Per-terminal Bernoulli generation (multi-job workloads): absolute
  /// probabilities for the exact stepper, 2^64-scaled thresholds for the
  /// sharded counter-based coin. Empty (flag false) on the uniform path.
  std::vector<double> terminal_gen_prob_;
  std::vector<std::uint64_t> terminal_gen_threshold_;
  bool has_terminal_loads_ = false;
  /// Markov ON/OFF injection (InjectionProcess::onoff_*): one chain state
  /// per terminal, stepped before that terminal's generation draw. Empty
  /// (and the flag false) for plain Bernoulli sources, whose draw
  /// sequence must stay bit-identical to the historical process.
  std::vector<std::uint8_t> onoff_state_;
  bool onoff_ = false;
  double gen_probability_on_ = 0.0;  ///< per-cycle generation prob while ON
  /// Degraded topologies only: terminals on dead routers neither draw
  /// generation randomness nor inject. Empty (and the flag false) on
  /// healthy networks, so the hot injection loop is untouched there.
  std::vector<std::uint8_t> terminal_dead_;
  bool has_dead_terminals_ = false;
  std::uint64_t dead_dst_drops_ = 0;
  PacketPool pool_;
  Rng rng_;

  Cycle now_ = 0;
  Cycle last_progress_ = 0;
  bool deadlock_ = false;

  std::size_t ring_size_ = 0;
  SlabEventRing<FlitEvent> flit_ring_;
  SlabEventRing<CreditEvent> credit_ring_;
  SlabEventRing<PacketId> delivery_ring_;

  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_phits_ = 0;
  std::uint64_t phits_sent_[3] = {0, 0, 0};

  DeliveryHook on_delivered_;
  GenerationHook on_generated_;
  HopHook on_hop_;

  // Exact-mode allocation scratch (avoids per-cycle allocations); the
  // sharded stepper uses one AllocScratch per shard instead.
  AllocScratch scratch_;

  // --- group-sharded parallel stepper -----------------------------------
  // One shard per group: shard s owns routers [s*a, (s+1)*a) and their
  // terminals, so shard-ascending iteration IS router-ascending
  // iteration. Each shard owns its OWN timing wheels: during the parallel
  // phases a shard drains arrivals from / schedules same-shard futures
  // into its own rings directly, and only cross-shard events (global-link
  // flits and their credits) are staged in a per-source-shard outbox that
  // the serial flush replays in ascending shard order. The serial work
  // per cycle is therefore O(cross-shard events), not O(all events).
  struct StagedFlit {
    Cycle at;
    FlitEvent ev;
  };
  struct StagedCredit {
    Cycle at;
    CreditEvent ev;
  };
  struct StagedInjection {
    NodeId terminal;
    NodeId dst;
    Cycle created;
    std::uint8_t flags;
  };
  struct HopRecord {
    PacketId packet;
    RouteChoice choice;
    RouterId router;
  };
  struct Shard {
    RouterId first_router = 0;
    RouterId end_router = 0;
    NodeId first_terminal = 0;
    NodeId end_terminal = 0;
    AllocScratch scratch;
    // The shard's own timing wheels. Every event addressed to a router in
    // this shard lives here; deliveries are always same-shard (ejection
    // happens at the owning router), so they never cross an outbox.
    SlabEventRing<FlitEvent> flit_ring;
    SlabEventRing<CreditEvent> credit_ring;
    SlabEventRing<PacketId> delivery_ring;
    // Cross-shard events staged during the parallel allocation phase,
    // replayed serially in ascending source-shard order. One outbox per
    // source shard suffices: events bound for different destination
    // shards land in disjoint rings, so replaying a single outbox in
    // staging order produces ring contents identical to a
    // per-(source, destination) split replayed in ascending (src, dst)
    // order — O(shards) buffers instead of O(shards^2).
    std::vector<StagedFlit> outbox_flits;
    std::vector<StagedCredit> outbox_credits;
    std::vector<StagedInjection> injections;
    std::vector<HopRecord> hops;
    std::vector<std::uint8_t> gen_accepted;
    std::uint64_t phits_sent[3] = {0, 0, 0};
    std::uint64_t dead_dst_drops = 0;
    bool progressed = false;
    bool deadlock = false;
  };
  std::vector<Shard> shards_;
  bool sharded_ = false;
  std::unique_ptr<runtime::BarrierTeam> shard_team_;
  /// Phase dispatched to the persistent worker team; set by run_shards
  /// before releasing the barrier (the team's callback is fixed).
  void (Engine::*shard_phase_)(Shard&) = nullptr;
  /// Dynamic-claim cursor (DF_SHARD_ASSIGN=dynamic fallback path).
  std::atomic<std::size_t> shard_next_{0};
  int shard_workers_ = 1;
  /// Static block assignment (the default): worker w owns shards
  /// [w*n/W, (w+1)*n/W) every phase of every cycle, so a shard's state
  /// stays in one worker's cache. DF_SHARD_ASSIGN=dynamic restores the
  /// PR-7 atomic-claim behavior (useful when shard costs are skewed).
  bool shard_assign_static_ = true;
  /// shard_of(router): routers_per_group is fixed per topology.
  int routers_per_shard_ = 1;
  std::size_t shard_of(RouterId r) const {
    return static_cast<std::size_t>(r / routers_per_shard_);
  }
  bool profile_ = false;
  PhaseProfile profile_data_;
  /// keyed_stream domains: routing decisions key on the input VC index,
  /// injection and message-size draws on the terminal id.
  static constexpr std::uint64_t kStreamRoute = 1;
  static constexpr std::uint64_t kStreamInject = 2;
  static constexpr std::uint64_t kStreamSize = 3;
};

/// Process-wide sum of every profiled engine's PhaseProfile, folded in at
/// engine destruction. BenchReport reads this at exit to attach the
/// serial-fraction estimate to its BENCH_sweep.json record (a bench may
/// run several engines; the sum is what its wall-clock actually covered).
Engine::PhaseProfile accumulated_phase_profile();

}  // namespace dfsim
