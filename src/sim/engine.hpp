// The cycle-driven network simulator substrate.
//
// Models the paper's evaluation platform: a single-cycle simulator of FIFO
// input-buffered routers with VCT or wormhole flow control, credit-based
// link-level backpressure, phit-granular serialization and configurable
// link latencies (Section IV).
//
// Per cycle:
//   1. credit arrivals   (returned one link latency after downstream drain)
//   2. flit arrivals     (full flit lands in the downstream input VC)
//   3. switch allocation (input nomination + output round-robin grant)
//   4. injection         (terminals materialize pending packets)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"
#include "sim/buffer.hpp"
#include "sim/packet.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class TrafficPattern;

struct EngineConfig {
  FlowControl flow = FlowControl::kVirtualCutThrough;
  int packet_phits = 8;
  int flit_phits = 0;  ///< 0 -> whole-packet flits (VCT default)

  int local_vcs = 3;
  int global_vcs = 2;
  int local_buf_phits = 32;    ///< per local-port VC FIFO (paper Sec. IV)
  int global_buf_phits = 256;  ///< per global-port VC FIFO
  int injection_buf_phits = 0;  ///< 0 -> max(2*packet, local_buf)

  int local_latency = 10;    ///< cycles of wire delay, local links
  int global_latency = 100;  ///< cycles of wire delay, global links

  /// Cycles without any flit movement (while traffic is in flight) after
  /// which the engine declares deadlock and stops.
  Cycle watchdog_cycles = 20000;

  /// Source backlog cap per terminal, in packets. Beyond saturation the
  /// backlog would grow without bound; capping it keeps memory flat while
  /// leaving accepted-load measurements untouched (the network, not the
  /// source queue, is the bottleneck whenever the cap binds).
  int source_queue_cap = 256;

  std::uint64_t seed = 1;
};

/// How terminals generate traffic.
struct InjectionProcess {
  enum class Mode : std::uint8_t { kBernoulli, kBurst };
  Mode mode = Mode::kBernoulli;
  /// Offered load in phits/(node*cycle) — a packet is generated with
  /// probability load/packet_phits each cycle (Bernoulli process).
  double load = 0.0;
  /// Burst mode: packets per node, all generated at cycle 0.
  std::uint64_t burst_packets = 0;
};

/// Delivery callback: packet (still valid), delivery cycle.
using DeliveryHook = std::function<void(const Packet&, Cycle)>;
/// Generation callback: cycle, accepted (false when the source cap bound).
using GenerationHook = std::function<void(Cycle, bool)>;
/// Hop callback: packet (route state already updated), the decision taken,
/// and the router it was taken at. Used by tests and route tracing.
using HopHook = std::function<void(const Packet&, const RouteChoice&,
                                   RouterId)>;

class Engine {
 public:
  Engine(const DragonflyTopology& topo, const EngineConfig& cfg,
         RoutingAlgorithm& routing, TrafficPattern& pattern,
         const InjectionProcess& injection);

  /// Advance one cycle. Returns false once deadlock was detected.
  bool step();
  /// Run until `end` cycles (absolute) or deadlock.
  void run_until(Cycle end);

  // --- observability --------------------------------------------------
  Cycle now() const { return now_; }
  bool deadlock_detected() const { return deadlock_; }
  std::uint64_t packets_in_flight() const { return pool_.in_use(); }
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_phits() const { return delivered_phits_; }
  std::uint64_t phits_sent(PortClass cls) const {
    return phits_sent_[static_cast<int>(cls)];
  }

  const DragonflyTopology& topology() const { return topo_; }
  const EngineConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }

  void set_delivery_hook(DeliveryHook hook) { on_delivered_ = std::move(hook); }
  void set_generation_hook(GenerationHook hook) {
    on_generated_ = std::move(hook);
  }
  void set_hop_hook(HopHook hook) { on_hop_ = std::move(hook); }

  // --- queries used by routing mechanisms -------------------------------
  /// True when a flit could depart on (port, vc) this cycle: link idle,
  /// enough credits for the flow-control discipline, and (wormhole) the
  /// downstream VC not owned by another packet.
  bool output_usable(RouterId r, PortId port, VcId vc, const Flit& flit) const;

  /// Downstream buffer occupancy fraction in [0,1] derived from credits —
  /// the misrouting trigger's input (paper Sec. III: "a misrouting trigger
  /// based on the credits count of the output ports").
  double output_occupancy(RouterId r, PortId port, VcId vc) const;

  /// Occupancy averaged over all VCs of an output port.
  double port_occupancy(RouterId r, PortId port) const;

  /// Worst (most occupied) VC of an output port — a saturated VC must not
  /// be diluted by its idle siblings (Piggybacking's saturation signal).
  double port_max_occupancy(RouterId r, PortId port) const;

  /// Total queued phits believed downstream of an output port, over all
  /// VCs (UGAL's queue-depth comparison).
  int port_queue_phits(RouterId r, PortId port) const;

  int vc_count(PortId port) const;
  int buffer_capacity(PortClass cls) const;
  int flit_phits() const { return flit_phits_; }
  int flits_per_packet() const { return flits_per_packet_; }

  const InputVc& input_vc(RouterId r, PortId port, VcId vc) const {
    return routers_[static_cast<size_t>(r)]
        .in[static_cast<size_t>(port * vc_stride_ + vc)];
  }
  const OutputVc& output_vc(RouterId r, PortId port, VcId vc) const {
    return routers_[static_cast<size_t>(r)]
        .out[static_cast<size_t>(port * vc_stride_ + vc)];
  }
  const Packet& packet(PacketId id) const { return pool_[id]; }

  // --- test hooks -------------------------------------------------------
  /// Inject a fully-formed packet directly at its source terminal's queue
  /// (unit tests drive single packets through the network this way).
  void inject_for_test(NodeId src, NodeId dst, Cycle created);

 private:
  struct RouterState {
    std::vector<InputVc> in;    // [port * vc_stride + vc]
    std::vector<OutputVc> out;  // [port * vc_stride + vc]
    std::vector<Cycle> out_busy_until;
    std::vector<std::uint16_t> in_rr;   // per input port, over VCs
    std::vector<std::uint16_t> out_rr;  // per output port, over input ports
    std::vector<std::uint8_t> port_occupied_vcs;  // nonempty VCs per port
    std::uint64_t occupied_ports = 0;  // bitmask (4h-1 <= 63 for h <= 16)
    int nonempty_vcs = 0;
  };

  struct TerminalState {
    std::deque<Cycle> pending_created;  // capped backlog of creation times
    std::deque<NodeId> forced_dst;      // scripted destinations (tests)
    std::uint64_t burst_remaining = 0;
    Cycle link_busy_until = 0;
    std::int32_t inflight_phits = 0;  // reserved in the injection buffer
  };

  struct FlitEvent {
    RouterId router;
    PortId port;
    VcId vc;
    Flit flit;
  };
  struct CreditEvent {
    RouterId router;
    PortId port;
    VcId vc;
    std::int32_t phits;
  };

  InputVc& in_vc(RouterId r, PortId port, VcId vc) {
    return routers_[static_cast<size_t>(r)]
        .in[static_cast<size_t>(port * vc_stride_ + vc)];
  }
  OutputVc& out_vc(RouterId r, PortId port, VcId vc) {
    return routers_[static_cast<size_t>(r)]
        .out[static_cast<size_t>(port * vc_stride_ + vc)];
  }

  void process_arrivals();
  void allocate_router(RouterId r);
  void send_flit(RouterId r, PortId in_port, VcId in_vc_id, PortId out_port,
                 VcId out_vc_id, const RouteChoice* fresh_choice);
  void apply_route_state(Packet& pkt, RouterId r, const RouteChoice& choice);
  void inject_terminals();
  void materialize(NodeId terminal, TerminalState& ts);
  void deliver(PacketId id);

  void schedule_flit(Cycle at, FlitEvent ev);
  void schedule_credit(Cycle at, CreditEvent ev);
  void schedule_delivery(Cycle at, PacketId id);
  std::size_t ring_slot(Cycle at) const { return at & (ring_size_ - 1); }

  int link_latency(PortClass cls) const {
    return cls == PortClass::kGlobal ? cfg_.global_latency
                                     : cfg_.local_latency;
  }

  const DragonflyTopology& topo_;
  EngineConfig cfg_;
  RoutingAlgorithm& routing_;
  TrafficPattern& pattern_;
  InjectionProcess injection_;

  int vc_stride_;
  int flit_phits_;
  int flits_per_packet_;
  int injection_buf_phits_;
  double gen_probability_;

  std::vector<RouterState> routers_;
  std::vector<TerminalState> terminals_;
  PacketPool pool_;
  Rng rng_;

  Cycle now_ = 0;
  Cycle last_progress_ = 0;
  bool deadlock_ = false;

  std::size_t ring_size_ = 0;
  std::vector<std::vector<FlitEvent>> flit_ring_;
  std::vector<std::vector<CreditEvent>> credit_ring_;
  std::vector<std::vector<PacketId>> delivery_ring_;

  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_phits_ = 0;
  std::uint64_t phits_sent_[3] = {0, 0, 0};

  DeliveryHook on_delivered_;
  GenerationHook on_generated_;
  HopHook on_hop_;

  // scratch for allocation (avoids per-cycle allocations)
  struct Nomination {
    PortId in_port;
    VcId in_vc;
    PortId out_port;
    VcId out_vc;
    bool fresh;          // head flit with a fresh routing decision
    RouteChoice choice;  // valid when fresh
  };
  std::vector<Nomination> noms_;
  std::vector<std::int16_t> out_first_nom_;  // per out port -> index|-1
  std::vector<PortId> touched_outs_;
};

}  // namespace dfsim
