#include "analysis/cdg.hpp"

#include <algorithm>

namespace dfsim {

LocalChannelDependencyGraph::LocalChannelDependencyGraph(
    int group_size, const LocalRouteRestriction& restriction)
    : group_size_(group_size) {
  adj_.resize(static_cast<size_t>(num_channels()));
  for (int i = 0; i < group_size_; ++i) {
    for (int k = 0; k < group_size_; ++k) {
      if (k == i) continue;
      for (int j = 0; j < group_size_; ++j) {
        if (j == i || j == k) continue;
        if (!restriction.hop_pair_allowed(i, k, j)) continue;
        adj_[static_cast<size_t>(channel_id(i, k))].push_back(
            channel_id(k, j));
      }
    }
  }
  for (auto& row : adj_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
}

LocalChannelDependencyGraph::LocalChannelDependencyGraph(
    const DragonflyTopology& topo, GroupId group,
    const LocalRouteRestriction& restriction)
    : group_size_(topo.routers_per_group()) {
  const auto link_alive = [&](int u, int v) {
    const RouterId ru = topo.router_id(group, u);
    const RouterId rv = topo.router_id(group, v);
    return topo.router_alive(ru) && topo.router_alive(rv) &&
           topo.local_link_alive(ru, rv);
  };
  adj_.resize(static_cast<size_t>(num_channels()));
  for (int i = 0; i < group_size_; ++i) {
    for (int k = 0; k < group_size_; ++k) {
      if (k == i || !link_alive(i, k)) continue;
      for (int j = 0; j < group_size_; ++j) {
        if (j == i || j == k) continue;
        if (!link_alive(k, j)) continue;
        if (!restriction.hop_pair_allowed(i, k, j)) continue;
        adj_[static_cast<size_t>(channel_id(i, k))].push_back(
            channel_id(k, j));
      }
    }
  }
  for (auto& row : adj_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
}

int LocalChannelDependencyGraph::channel_id(int i, int j) const {
  return i * (group_size_ - 1) + (j < i ? j : j - 1);
}

bool LocalChannelDependencyGraph::has_cycle() const {
  return !find_cycle().empty();
}

std::vector<int> LocalChannelDependencyGraph::find_cycle() const {
  // Iterative DFS with colors; reconstructs one back-edge cycle.
  const int n = num_channels();
  std::vector<std::uint8_t> color(static_cast<size_t>(n), 0);  // 0/1/2
  std::vector<int> parent(static_cast<size_t>(n), -1);

  for (int root = 0; root < n; ++root) {
    if (color[static_cast<size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack;  // node, next-edge idx
    stack.emplace_back(root, 0);
    color[static_cast<size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& edges = adj_[static_cast<size_t>(node)];
      if (idx < edges.size()) {
        const int next = edges[idx++];
        if (color[static_cast<size_t>(next)] == 1) {
          // Found a cycle: walk parents from `node` back to `next`.
          std::vector<int> cycle{next};
          for (int cur = node; cur != next;
               cur = parent[static_cast<size_t>(cur)]) {
            cycle.push_back(cur);
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (color[static_cast<size_t>(next)] == 0) {
          color[static_cast<size_t>(next)] = 1;
          parent[static_cast<size_t>(next)] = node;
          stack.emplace_back(next, 0);
        }
      } else {
        color[static_cast<size_t>(node)] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace dfsim
