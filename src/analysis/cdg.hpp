// Channel-dependency-graph analysis of intra-group local misrouting.
//
// Inside a supernode, RLM lets a packet take TWO local hops on the SAME
// virtual channel, so Günther's ascending-order argument does not apply;
// the parity-sign restriction must keep the local channel dependency
// graph acyclic on its own. This module machine-checks that claim (and
// exhibits the cycle that unrestricted local misrouting creates, e.g. the
// Fig. 2 triple (0->5->1), (5->1->0), (1->0->5)).
//
// Vertices are directed local channels (i -> j); an edge c1 -> c2 exists
// iff some allowed 2-hop route uses c1 then c2 (i.e. a packet holding c1
// may wait for c2 within the same VC).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/parity_sign.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class LocalChannelDependencyGraph {
 public:
  /// Build the dependency graph over a complete local graph of
  /// `group_size` routers under `restriction`.
  LocalChannelDependencyGraph(int group_size,
                              const LocalRouteRestriction& restriction);
  /// Same, sized from a topology's group (a routers, balanced or not).
  LocalChannelDependencyGraph(const DragonflyTopology& topo,
                              const LocalRouteRestriction& restriction)
      : LocalChannelDependencyGraph(topo.routers_per_group(), restriction) {}
  /// Dependency graph of one concrete group of a (possibly degraded)
  /// topology: channels over dead local links or dead routers do not
  /// exist, so neither do their dependencies. A subgraph of the healthy
  /// graph — faults can only remove cycles, never create them — and the
  /// faulted tests machine-check exactly that.
  LocalChannelDependencyGraph(const DragonflyTopology& topo, GroupId group,
                              const LocalRouteRestriction& restriction);

  int num_channels() const { return group_size_ * (group_size_ - 1); }
  int channel_id(int i, int j) const;  // i != j

  bool has_cycle() const;
  /// One cycle as a channel-id sequence (empty when acyclic).
  std::vector<int> find_cycle() const;

  const std::vector<std::vector<int>>& adjacency() const { return adj_; }

 private:
  int group_size_;
  std::vector<std::vector<int>> adj_;
};

}  // namespace dfsim
