#include "analysis/route_census.hpp"

#include <algorithm>
#include <functional>

namespace dfsim {

namespace {
/// Shared census core: count i -> k -> j routes that the restriction
/// allows and whose both legs pass `link_ok` (always-true when healthy).
void count_routes(int group_size, const LocalRouteRestriction& restriction,
                  const std::function<bool(int, int)>& link_ok,
                  std::vector<std::vector<int>>& routes,
                  std::vector<std::vector<int>>& link_load) {
  for (int i = 0; i < group_size; ++i) {
    for (int j = 0; j < group_size; ++j) {
      if (i == j) continue;
      for (int k = 0; k < group_size; ++k) {
        if (k == i || k == j) continue;
        if (!restriction.hop_pair_allowed(i, k, j)) continue;
        if (!link_ok(i, k) || !link_ok(k, j)) continue;
        ++routes[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        ++link_load[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(k)];
        ++link_load[static_cast<std::size_t>(k)]
                   [static_cast<std::size_t>(j)];
      }
    }
  }
}
}  // namespace

RouteCensus::RouteCensus(int group_size,
                         const LocalRouteRestriction& restriction)
    : group_size_(group_size),
      routes_(static_cast<std::size_t>(group_size),
              std::vector<int>(static_cast<std::size_t>(group_size), 0)),
      link_load_(static_cast<std::size_t>(group_size),
                 std::vector<int>(static_cast<std::size_t>(group_size), 0)) {
  count_routes(group_size_, restriction, [](int, int) { return true; },
               routes_, link_load_);
}

RouteCensus::RouteCensus(const DragonflyTopology& topo, GroupId group,
                         const LocalRouteRestriction& restriction)
    : group_size_(topo.routers_per_group()),
      routes_(static_cast<std::size_t>(group_size_),
              std::vector<int>(static_cast<std::size_t>(group_size_), 0)),
      link_load_(static_cast<std::size_t>(group_size_),
                 std::vector<int>(static_cast<std::size_t>(group_size_),
                                  0)) {
  count_routes(
      group_size_, restriction,
      [&](int u, int v) {
        const RouterId ru = topo.router_id(group, u);
        const RouterId rv = topo.router_id(group, v);
        return topo.router_alive(ru) && topo.router_alive(rv) &&
               topo.local_link_alive(ru, rv);
      },
      routes_, link_load_);
}

std::vector<int> RouteCensus::pair_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(group_size_ - 1), 0);
  for (int i = 0; i < group_size_; ++i) {
    for (int j = 0; j < group_size_; ++j) {
      if (i == j) continue;
      const int k =
          routes_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      ++hist[static_cast<std::size_t>(k)];
    }
  }
  return hist;
}

std::vector<std::vector<int>> RouteCensus::link_load() const {
  return link_load_;
}

int RouteCensus::max_link_load() const {
  int best = 0;
  for (int i = 0; i < group_size_; ++i) {
    for (int j = 0; j < group_size_; ++j) {
      if (i != j) {
        best = std::max(best, link_load_[static_cast<std::size_t>(i)]
                                        [static_cast<std::size_t>(j)]);
      }
    }
  }
  return best;
}

int RouteCensus::min_link_load() const {
  int best = group_size_ * group_size_;
  for (int i = 0; i < group_size_; ++i) {
    for (int j = 0; j < group_size_; ++j) {
      if (i != j) {
        best = std::min(best, link_load_[static_cast<std::size_t>(i)]
                                        [static_cast<std::size_t>(j)]);
      }
    }
  }
  return best;
}

int RouteCensus::starved_pairs() const {
  int count = 0;
  for (int i = 0; i < group_size_; ++i) {
    for (int j = 0; j < group_size_; ++j) {
      if (i != j && routes_[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j)] == 0) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace dfsim
