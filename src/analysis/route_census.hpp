// Static route census: enumerate, for a given restriction policy, the
// non-minimal route diversity the network offers — per-pair 2-hop route
// counts inside a group and per-link appearance counts (how often each
// local link participates in an allowed 2-hop route). The paper's
// sign-only vs parity-sign argument is about exactly these distributions:
// sign-only leaves pairs with zero routes and loads links unevenly.
#pragma once

#include <vector>

#include "routing/parity_sign.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class RouteCensus {
 public:
  RouteCensus(int group_size, const LocalRouteRestriction& restriction);
  /// Same, sized from a topology's group (a routers, balanced or not).
  RouteCensus(const DragonflyTopology& topo,
              const LocalRouteRestriction& restriction)
      : RouteCensus(topo.routers_per_group(), restriction) {}
  /// Census of one concrete group of a (possibly degraded) topology:
  /// routes through dead routers or dead local links are not counted, so
  /// the diversity/starvation numbers reflect what a faulted group really
  /// offers. Identical to the group-size ctor on healthy topologies.
  RouteCensus(const DragonflyTopology& topo, GroupId group,
              const LocalRouteRestriction& restriction);

  /// routes[i][j]: number of allowed 2-hop routes from i to j (i != j).
  const std::vector<std::vector<int>>& routes() const { return routes_; }

  /// Histogram over ordered pairs: count of pairs having k routes,
  /// k = 0 .. group_size-2.
  std::vector<int> pair_histogram() const;

  /// For each directed local link (i -> j), in how many allowed 2-hop
  /// routes it appears (as first or second hop). Perfectly balanced
  /// restrictions give a tight distribution.
  std::vector<std::vector<int>> link_load() const;

  /// Max/min of the link_load distribution (imbalance witness).
  int max_link_load() const;
  int min_link_load() const;

  /// Number of ordered pairs with zero non-minimal routes (starved).
  int starved_pairs() const;

 private:
  int group_size_;
  std::vector<std::vector<int>> routes_;
  std::vector<std::vector<int>> link_load_;
};

}  // namespace dfsim
