#include "routing/valiant.hpp"

#include "routing/route_util.hpp"
#include "sim/engine.hpp"

namespace dfsim {

std::optional<RouteChoice> ValiantRouting::decide(RoutingContext& ctx) {
  Engine& eng = ctx.engine;
  const RouteState& rs = ctx.packet.rs;
  const Flit& flit = ctx.flit;

  // At injection (and only there), commit to a random intermediate group.
  // Same-router packets, tiny networks (G < 3), and degraded sources with
  // no alive link to any eligible intermediate group go minimally.
  if (!rs.valiant && rs.total_hops == 0 && ctx.router != rs.dst_router &&
      topo_.num_groups() >= 3 &&
      valiant_groups_available(topo_, topo_.group_of_router(ctx.router),
                               rs.dst_group)) {
    const GroupId g = topo_.group_of_router(ctx.router);
    const GroupId x = draw_valiant_group(ctx.rng, topo_, g, rs.dst_group);

    RouteChoice c;
    c.commit_valiant = true;
    c.inter_group = x;
    const RouterId gw = topo_.gateway_router(g, x);
    if (gw == ctx.router) {
      c.port = topo_.gateway_port(g, x);
      c.vc = rs.global_hops;  // gVC1
    } else {
      c.port = topo_.local_port_to(topo_.local_index(ctx.router),
                                   topo_.local_index(gw));
      c.vc = rs.global_hops;  // lVC1
    }
    if (!eng.output_usable(ctx.router, c.port, c.vc, flit)) {
      return std::nullopt;
    }
    return c;
  }

  const Hop hop = minimal_hop_with(topo_, ctx.router, ctx.packet,
                                   rs.global_hops, rs.global_hops);
  if (!eng.output_usable(ctx.router, hop.port, hop.vc, flit)) {
    return std::nullopt;
  }
  RouteChoice choice;
  choice.port = hop.port;
  choice.vc = hop.vc;
  return choice;
}

std::optional<Hop> ValiantRouting::pure_minimal_hop(const RoutingContext& ctx) {
  const RouteState& rs = ctx.packet.rs;
  // The injection decision draws the intermediate group from the RNG.
  if (!rs.valiant && rs.total_hops == 0 && ctx.router != rs.dst_router &&
      topo_.num_groups() >= 3) {
    return std::nullopt;
  }
  return minimal_hop_with(topo_, ctx.router, ctx.packet, rs.global_hops,
                          rs.global_hops);
}

}  // namespace dfsim
