#include "routing/olm.hpp"

#include <cassert>

#include "routing/vc_ladder.hpp"
#include "sim/engine.hpp"

namespace dfsim {

namespace {
int occupied_rank_of(const RoutingContext& ctx,
                     const DragonflyTopology& topo) {
  return occupied_rank(topo.port_class(ctx.in_port), ctx.in_vc);
}
}  // namespace

namespace {
/// Ladder part of the escape check: can the class sequence be climbed on
/// strictly ascending ranks starting above `start_rank`?
bool ladder_feasible(const MinimalClasses& seq, int start_rank, int local_vcs,
                     int global_vcs) {
  int rank = start_rank;
  for (int i = 0; i < seq.count; ++i) {
    if (seq.cls[i] == PortClass::kLocal) {
      const int v = next_local_vc_above(rank, local_vcs);
      if (v < 0) return false;
      rank = local_rank(v);
    } else {
      const int v = next_global_vc_above(rank, global_vcs);
      if (v < 0) return false;
      rank = global_rank(v);
    }
  }
  return true;
}
}  // namespace

bool OlmRouting::escape_feasible(const DragonflyTopology& topo, int local_vcs,
                                 int global_vcs, int start_rank,
                                 RouterId from, const RouteState& rs) {
  return ladder_feasible(minimal_classes(topo, from, rs), start_rank,
                         local_vcs, global_vcs);
}

VcId OlmRouting::minimal_local_vc(const RoutingContext& ctx) const {
  const int rank = occupied_rank_of(ctx, topo_);
  const int v =
      next_local_vc_above(rank, ctx.engine.config().local_vcs);
  assert(v >= 0 && "OLM escape invariant violated: no local VC above");
  return v >= 0 ? v : ctx.engine.config().local_vcs - 1;
}

VcId OlmRouting::minimal_global_vc(const RoutingContext& ctx) const {
  const int rank = occupied_rank_of(ctx, topo_);
  const int v =
      next_global_vc_above(rank, ctx.engine.config().global_vcs);
  assert(v >= 0 && "OLM escape invariant violated: no global VC above");
  return v >= 0 ? v : ctx.engine.config().global_vcs - 1;
}

VcId OlmRouting::commit_local_vc(const RoutingContext&) const {
  return 0;  // lVC1, per Fig. 3 routes b/c
}

bool OlmRouting::direct_commit_allowed(const RoutingContext& ctx) const {
  // A Valiant detour's first global hop must take gVC1: the committed
  // continuation g-l-g-l then climbs gVC1 < lVC2 < gVC2 < lVC3, and after
  // landing the escape ladder is still feasible from every position. A
  // packet that already sits on lVC2 (destination-group local misroute of
  // intra-group traffic) would depart on gVC2 instead, leaving the
  // remaining l-g-l of the detour nowhere to climb — the very escape
  // violation on_hop()'s debug assert machine-checks. Committing through a
  // remote gateway stays allowed: that hop re-enters on lVC1, from which
  // the global hop takes gVC1.
  return occupied_rank_of(ctx, topo_) < global_rank(0);
}

void OlmRouting::local_misroute_vcs(const RoutingContext& ctx, RouterId k,
                                    RouterId /*target*/,
                                    std::vector<VcId>& vcs) const {
  // Offer every VC that keeps the escape ladder ascending: lVC1 in an
  // intermediate group, lVC1 and lVC2 in the destination group (the
  // paper's route c uses lVC2 there and notes lVC1 is "also possible").
  // Spreading misrouted traffic over all feasible VCs is what the paper
  // means by "balance traffic across the different virtual channels".
  const int local_vcs = ctx.engine.config().local_vcs;
  const int global_vcs = ctx.engine.config().global_vcs;
  // One minimal-classes walk per misroute target; only the start rank
  // changes across the candidate VCs.
  const MinimalClasses seq = minimal_classes(topo_, k, ctx.packet.rs);
  for (VcId v = static_cast<VcId>(local_vcs - 1); v >= 0; --v) {
    if (ladder_feasible(seq, local_rank(v), local_vcs, global_vcs)) {
      vcs.push_back(v);
    }
  }
}

void OlmRouting::on_hop(const Engine& engine, Packet& packet,
                        const RouteChoice& choice, RouterId router) {
#ifndef NDEBUG
  // Machine-check the escape invariant after every hop: from wherever the
  // flit lands, a strictly-ascending minimal route must still exist.
  if (topo_.port_class(choice.port) == PortClass::kTerminal) return;
  const auto down = topo_.remote_endpoint(router, choice.port);
  const int rank = occupied_rank(topo_.port_class(choice.port), choice.vc);
  assert(escape_feasible(topo_, engine.config().local_vcs,
                         engine.config().global_vcs, rank, down.router,
                         packet.rs));
#else
  (void)engine;
  (void)packet;
  (void)choice;
  (void)router;
#endif
}

}  // namespace dfsim
