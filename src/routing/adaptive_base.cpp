#include "routing/adaptive_base.hpp"

#include <cassert>

#include "sim/engine.hpp"

namespace dfsim {

AdaptiveBase::AdaptiveBase(const DragonflyTopology& topo,
                           const AdaptiveParams& params)
    : topo_(topo), params_(params), trigger_(params.threshold) {}

Hop AdaptiveBase::minimal_hop(const RoutingContext& ctx) const {
  // Resolve the (memoized) port first so only the VC discipline of the
  // needed port class pays its virtual call.
  const MinPortCache mc = minimal_port(topo_, ctx.router, ctx.packet);
  switch (static_cast<PortClass>(mc.cls)) {
    case PortClass::kTerminal:
      return {mc.port, 0};
    case PortClass::kGlobal:
      return {mc.port, minimal_global_vc(ctx)};
    case PortClass::kLocal:
      break;
  }
  return {mc.port, minimal_local_vc(ctx)};
}

bool AdaptiveBase::commit_hop_allowed(const RoutingContext&, RouterId) const {
  return true;
}

bool AdaptiveBase::direct_commit_allowed(const RoutingContext&) const {
  return true;
}

// Mirror of the rs-only gates guarding collect_global_candidates /
// collect_local_candidates. While neither collection is reachable, decide()
// reduces to "minimal hop iff usable" with no RNG draw, which the engine
// may then evaluate itself on every retry cycle. Any drift between these
// gates and the collectors' own early returns breaks seed reproducibility,
// so keep the two in lockstep.
bool AdaptiveBase::decision_is_pure(const RoutingContext& ctx) const {
  const RouteState& rs = ctx.packet.rs;
  if (ctx.router == rs.dst_router) return true;
  // Global misrouting reachable (source group, before any global hop)?
  if (!rs.valiant && rs.global_hops == 0 && rs.local_hops_group <= 1 &&
      topo_.num_groups() >= 3) {
    return false;
  }
  // Local misrouting reachable (samples draw RNG even when no candidate
  // survives the VC filter)?
  const GroupId g = topo_.group_of_router(ctx.router);
  const bool heading_out = rs.valiant && rs.global_hops == 0;
  const bool at_dst_group = g == rs.dst_group && !heading_out;
  const bool at_inter_group =
      rs.valiant && rs.global_hops == 1 && g != rs.dst_group;
  if ((at_dst_group || at_inter_group) && rs.local_mis_group == 0 &&
      rs.local_hops_group == 0 && topo_.routers_per_group() >= 3) {
    const RouterId target = at_dst_group
                                ? rs.dst_router
                                : topo_.gateway_router(g, rs.dst_group);
    if (target != ctx.router) return false;
  }
  return true;
}

std::optional<Hop> AdaptiveBase::pure_minimal_hop(const RoutingContext& ctx) {
  if (!decision_is_pure(ctx)) return std::nullopt;
  return minimal_hop(ctx);
}

// First visit of a head at this router: gates and minimal route in one
// pass. Verdict and draws are bit-identical to pure_minimal_hop() +
// decide() — decide_impure is the tail of decide() after its own
// minimal_hop resolve.
std::optional<RouteChoice> AdaptiveBase::decide_fresh(
    RoutingContext& ctx, std::optional<Hop>* pure_hop) {
  const Hop min = minimal_hop(ctx);
  if (decision_is_pure(ctx)) {
    *pure_hop = min;
    return std::nullopt;  // the engine nominates via the cached verdict
  }
  *pure_hop = std::nullopt;
  return decide_impure(ctx, min);
}

std::optional<RouteChoice> AdaptiveBase::decide(RoutingContext& ctx) {
  return decide_impure(ctx, minimal_hop(ctx));
}

std::optional<RouteChoice> AdaptiveBase::decide_impure(RoutingContext& ctx,
                                                       const Hop& min) {
  Engine& eng = ctx.engine;
  const Flit& flit = ctx.flit;

  if (eng.output_usable(ctx.router, min.port, min.vc, flit)) {
    RouteChoice choice;
    choice.port = min.port;
    choice.vc = min.vc;
    return choice;
  }
  // A blocked ejection port has no non-minimal alternative. (The memo is
  // hot: minimal_hop just resolved it.)
  if (static_cast<PortClass>(ctx.packet.min_cache.cls) ==
      PortClass::kTerminal) {
    return std::nullopt;
  }

  static thread_local std::vector<RouteChoice> candidates;
  static thread_local std::vector<RouteChoice> eligible;
  candidates.clear();
  collect_global_candidates(ctx, candidates);
  collect_local_candidates(ctx, candidates);
  if (candidates.empty()) return std::nullopt;

  const double min_occ =
      eng.output_occupancy(ctx.router, min.port, min.vc);
  // Branchless compaction: write every candidate and advance the cursor
  // by the verdict, instead of a hard-to-predict keep/skip branch per
  // candidate (the usable/trigger mix is close to 50/50 under congestion
  // — exactly where this loop is hottest). The verdict itself stays
  // short-circuiting: a candidate blocked at the link-busy check never
  // touches its output VC's cache line for the occupancy. Order is
  // preserved and the loop draws no RNG, so the single uniform() below
  // sees the same eligible sequence as the branching loop did.
  eligible.resize(candidates.size());
  std::size_t m = 0;
  for (const RouteChoice& c : candidates) {
    const bool ok =
        eng.output_usable(ctx.router, c.port, c.vc, flit) &&
        trigger_.allows(eng.output_occupancy(ctx.router, c.port, c.vc),
                        min_occ);
    eligible[m] = c;
    m += ok ? 1 : 0;
  }
  if (m == 0) return std::nullopt;
  return eligible[ctx.rng.uniform(m)];
}

void AdaptiveBase::collect_global_candidates(RoutingContext& ctx,
                                             std::vector<RouteChoice>& out) {
  const RouteState& rs = ctx.packet.rs;
  // Global misrouting happens in the source group only, before any global
  // hop, at the source router or right after the first minimal local hop.
  if (rs.valiant || rs.global_hops != 0) return;
  if (rs.local_hops_group > 1) return;
  if (ctx.router == rs.dst_router) return;  // same-router traffic

  const GroupId g = topo_.group_of_router(ctx.router);
  const int num_groups = topo_.num_groups();
  if (num_groups < 3) return;

  if (rs.local_hops_group == 0) {
    // At the source router: misroute through this router's OWN global
    // ports (paper Fig. 3 route a commits straight onto gVC1). This keeps
    // lVC1 free for minimal first hops and spends only the bandwidth the
    // router actually owns.
    const int rl = topo_.local_index(ctx.router);
    const VcId global_vc = minimal_global_vc(ctx);  // invariant across ports
    for (int k = 0; k < topo_.num_global_ports(); ++k) {
      const PortId port = topo_.first_global_port() + k;
      const int slot = topo_.global_link_of(rl, port);
      // Unwired slots (unbalanced shapes) and dead slots (degraded
      // networks) are not candidates.
      if (!topo_.global_slot_alive(g, slot)) continue;
      RouteChoice c;
      c.commit_valiant = true;
      c.inter_group = topo_.global_link_dest(g, slot);
      if (c.inter_group == rs.dst_group) continue;
      c.port = port;
      c.vc = global_vc;
      out.push_back(c);
    }
    return;
  }

  // After the first local hop: PAR-style revert to Valiant via a sampled
  // gateway elsewhere in the group (paper Fig. 3 routes b/c) or this
  // router's own ports. For intra-group traffic that first hop can have
  // been a *misroute* onto a high VC (OFAR-style, destination == source
  // group), from which a direct global departure may be unable to start
  // the mechanism's escape ladder — direct_commit_allowed() drops those
  // candidates (the sampled draws below are consumed either way, so the
  // RNG sequence only diverges where an unsafe candidate existed).
  Rng& rng = ctx.rng;
  const bool direct_ok = direct_commit_allowed(ctx);
  const VcId global_vc =
      direct_ok ? minimal_global_vc(ctx) : 0;  // invariant across samples
  const VcId commit_vc = commit_local_vc(ctx);
  for (int s = 0; s < params_.global_candidates; ++s) {
    auto x = static_cast<GroupId>(
        rng.uniform(static_cast<std::uint64_t>(num_groups)));
    if (x == g || x == rs.dst_group) continue;
    // Degraded networks: a sampled group whose every link from here died
    // has no gateway to commit through (the sample still consumed its RNG
    // draw, keeping the draw sequence fault-independent).
    if (topo_.faulted() && !topo_.groups_linked(g, x)) continue;

    RouteChoice c;
    c.commit_valiant = true;
    c.inter_group = x;
    const RouterId gw = topo_.gateway_router(g, x);
    if (gw == ctx.router) {
      if (!direct_ok) continue;
      c.port = topo_.gateway_port(g, x);
      c.vc = global_vc;
    } else {
      if (!commit_hop_allowed(ctx, gw)) continue;
      // The connectivity invariant keeps source->gateway local links of
      // canonical routes alive; guard anyway for engines driven on
      // unvalidated fault sets.
      if (topo_.faulted() && !topo_.local_link_alive(ctx.router, gw)) {
        continue;
      }
      c.port = topo_.local_port_to(topo_.local_index(ctx.router),
                                   topo_.local_index(gw));
      c.vc = commit_vc;
    }
    out.push_back(c);
  }
}

void AdaptiveBase::collect_local_candidates(RoutingContext& ctx,
                                            std::vector<RouteChoice>& out) {
  const RouteState& rs = ctx.packet.rs;
  if (ctx.router == rs.dst_router) return;

  const GroupId g = topo_.group_of_router(ctx.router);
  // Local misrouting is allowed in the intermediate and destination
  // supernodes (OFAR-style), one per group, and only before the group's
  // minimal local hop was taken.
  const bool heading_out = rs.valiant && rs.global_hops == 0;
  const bool at_dst_group = g == rs.dst_group && !heading_out;
  const bool at_inter_group =
      rs.valiant && rs.global_hops == 1 && g != rs.dst_group;
  if (!at_dst_group && !at_inter_group) return;
  if (rs.local_mis_group > 0 || rs.local_hops_group > 0) return;

  const RouterId target = at_dst_group
                              ? rs.dst_router
                              : topo_.gateway_router(g, rs.dst_group);
  if (target == ctx.router) {
    // Already at the in-group target (gateway); the blocked output is the
    // global link and a local detour would need a third local hop later.
    return;
  }
  const int group_size = topo_.routers_per_group();
  if (group_size < 3) return;

  Rng& rng = ctx.rng;
  const int my_local = topo_.local_index(ctx.router);
  const int target_local = topo_.local_index(target);
  for (int s = 0; s < params_.local_candidates; ++s) {
    const auto k = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(group_size)));
    if (k == my_local || k == target_local) continue;
    // Degraded networks: both legs of the detour (here -> k -> target)
    // must be alive; a dead k fails both checks via its dead ports.
    if (topo_.faulted() &&
        (!topo_.local_link_alive(ctx.router, topo_.router_id(g, k)) ||
         !topo_.local_link_alive(topo_.router_id(g, k), target))) {
      continue;
    }

    static thread_local std::vector<VcId> vc_scratch;
    vc_scratch.clear();
    local_misroute_vcs(ctx, topo_.router_id(g, k),
                       topo_.router_id(g, target_local), vc_scratch);
    for (const VcId vc : vc_scratch) {
      RouteChoice c;
      c.local_misroute = true;
      c.port = topo_.local_port_to(my_local, k);
      c.vc = vc;
      out.push_back(c);
    }
  }
}

}  // namespace dfsim
