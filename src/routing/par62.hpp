// PAR-6/2 — the naive reference mechanism (paper Sec. III-A): Progressive
// Adaptive Routing extended with one local misroute per intermediate /
// destination supernode. Deadlock is avoided with Günther's distance
// classes alone: every hop climbs to a fresh VC, so the longest route
// l-l-g-l-l-g-l-l needs SIX local VCs (lVC1..lVC6) and two global ones —
// the router cost the paper's proposals eliminate.
#pragma once

#include "routing/adaptive_base.hpp"

namespace dfsim {

class Par62Routing final : public AdaptiveBase {
 public:
  Par62Routing(const DragonflyTopology& topo, const AdaptiveParams& params)
      : AdaptiveBase(topo, params) {}

  int min_local_vcs() const override { return 6; }
  bool supports_wormhole() const override { return true; }
  std::string name() const override { return "par-6/2"; }

 protected:
  // Strictly ascending ladder: the k-th local hop (0-based) uses lVC_{k+1},
  // the k-th global hop uses gVC_{k+1}.
  VcId minimal_local_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.local_hops_total;
  }
  VcId minimal_global_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.global_hops;
  }
  VcId commit_local_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.local_hops_total;
  }
  void local_misroute_vcs(const RoutingContext& ctx, RouterId /*k*/,
                          RouterId /*target*/,
                          std::vector<VcId>& vcs) const override {
    vcs.push_back(ctx.packet.rs.local_hops_total);
  }
};

}  // namespace dfsim
