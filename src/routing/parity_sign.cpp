#include "routing/parity_sign.hpp"

#include <algorithm>

namespace dfsim {

const char* to_string(LocalHopType t) {
  switch (t) {
    case LocalHopType::kOddMinus:
      return "odd-";
    case LocalHopType::kEvenPlus:
      return "even+";
    case LocalHopType::kOddPlus:
      return "odd+";
    case LocalHopType::kEvenMinus:
      return "even-";
  }
  return "?";
}

LocalRouteRestriction::LocalRouteRestriction(RestrictionPolicy policy,
                                             const TypeOrder& order)
    : policy_(policy) {
  switch (policy) {
    case RestrictionPolicy::kParitySign:
      build_parity_sign(order);
      break;
    case RestrictionPolicy::kSignOnly:
      build_sign_only();
      break;
    case RestrictionPolicy::kNone:
      for (auto& row : allowed_) std::fill(row, row + kNumHopTypes, true);
      break;
  }
}

void LocalRouteRestriction::build_parity_sign(const TypeOrder& order) {
  // Tri-state marking per the paper: same-type pairs can never close a
  // cycle, so they start Allowed. Then, for each link type in order:
  // still-blank pairs *starting* with it become Allowed, and still-blank
  // pairs *ending* with it become Not allowed. The result guarantees the
  // last link of any multi-hop chain differs from the first, so no cycle.
  enum : std::uint8_t { kBlank, kYes, kNo };
  std::uint8_t mark[kNumHopTypes][kNumHopTypes];
  for (auto& row : mark) std::fill(row, row + kNumHopTypes, kBlank);
  for (int t = 0; t < kNumHopTypes; ++t) mark[t][t] = kYes;

  for (const LocalHopType lt : order) {
    const int t = static_cast<int>(lt);
    for (int u = 0; u < kNumHopTypes; ++u) {
      if (mark[t][u] == kBlank) mark[t][u] = kYes;
    }
    for (int u = 0; u < kNumHopTypes; ++u) {
      if (mark[u][t] == kBlank) mark[u][t] = kNo;
    }
  }
  for (int a = 0; a < kNumHopTypes; ++a) {
    for (int b = 0; b < kNumHopTypes; ++b) {
      allowed_[a][b] = mark[a][b] == kYes;
    }
  }
}

void LocalRouteRestriction::build_sign_only() {
  const auto is_plus = [](int t) {
    return t == static_cast<int>(LocalHopType::kOddPlus) ||
           t == static_cast<int>(LocalHopType::kEvenPlus);
  };
  for (int a = 0; a < kNumHopTypes; ++a) {
    for (int b = 0; b < kNumHopTypes; ++b) {
      allowed_[a][b] = !(is_plus(a) && !is_plus(b));
    }
  }
}

std::vector<int> LocalRouteRestriction::allowed_intermediates(
    int i, int j, int group_size) const {
  std::vector<int> result;
  for (int k = 0; k < group_size; ++k) {
    if (k == i || k == j) continue;
    if (hop_pair_allowed(i, k, j)) result.push_back(k);
  }
  return result;
}

int LocalRouteRestriction::min_two_hop_routes(int group_size) const {
  int best = group_size;
  for (int i = 0; i < group_size; ++i) {
    for (int j = 0; j < group_size; ++j) {
      if (i == j) continue;
      best = std::min(
          best, static_cast<int>(allowed_intermediates(i, j, group_size)
                                     .size()));
    }
  }
  return best;
}

int LocalRouteRestriction::max_two_hop_routes(int group_size) const {
  int best = 0;
  for (int i = 0; i < group_size; ++i) {
    for (int j = 0; j < group_size; ++j) {
      if (i == j) continue;
      best = std::max(
          best, static_cast<int>(allowed_intermediates(i, j, group_size)
                                     .size()));
    }
  }
  return best;
}

std::vector<LocalRouteRestriction::TableRow> LocalRouteRestriction::table()
    const {
  std::vector<TableRow> rows;
  rows.reserve(16);
  for (int a = 0; a < kNumHopTypes; ++a) {
    for (int b = 0; b < kNumHopTypes; ++b) {
      rows.push_back({static_cast<LocalHopType>(a),
                      static_cast<LocalHopType>(b), allowed_[a][b]});
    }
  }
  return rows;
}

}  // namespace dfsim
