// Minimal (MIN) routing: always the shortest l-g-l path, ascending VCs
// lVC1-gVC1-lVC2. The paper's baseline for uniform traffic; collapses to
// ~1/(a*p) throughput under ADVG — a group's a*p terminals share the one
// canonical global link per group pair (1/(2h^2) for the paper's
// balanced shape).
#pragma once

#include "routing/routing.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class MinimalRouting final : public RoutingAlgorithm {
 public:
  explicit MinimalRouting(const DragonflyTopology& topo) : topo_(topo) {}

  std::optional<RouteChoice> decide(RoutingContext& ctx) override;
  std::optional<Hop> pure_minimal_hop(const RoutingContext& ctx) override;

  int min_local_vcs() const override { return 2; }
  int min_global_vcs() const override { return 1; }
  bool supports_wormhole() const override { return true; }
  std::string name() const override { return "minimal"; }

 private:
  const DragonflyTopology& topo_;
};

}  // namespace dfsim
