#include "routing/minimal.hpp"

#include "routing/route_util.hpp"
#include "sim/engine.hpp"

namespace dfsim {

std::optional<RouteChoice> MinimalRouting::decide(RoutingContext& ctx) {
  const RouteState& rs = ctx.packet.rs;
  // Group-ladder VCs: lVC_{1+globals}, gVC_{1+globals}.
  const Hop hop = minimal_hop_with(topo_, ctx.router, ctx.packet,
                                   rs.global_hops, rs.global_hops);
  const Flit& flit = ctx.flit;
  if (!ctx.engine.output_usable(ctx.router, hop.port, hop.vc, flit)) {
    return std::nullopt;
  }
  RouteChoice choice;
  choice.port = hop.port;
  choice.vc = hop.vc;
  return choice;
}

std::optional<Hop> MinimalRouting::pure_minimal_hop(const RoutingContext& ctx) {
  // Minimal routing is the pure-minimal decision everywhere, by name.
  const RouteState& rs = ctx.packet.rs;
  return minimal_hop_with(topo_, ctx.router, ctx.packet, rs.global_hops,
                          rs.global_hops);
}

}  // namespace dfsim
