// Restricted Local Misrouting (RLM, paper Sec. III-B) — the first of the
// paper's two proposals. Cost: the standard 3 local / 2 global VCs.
//
// VC discipline: the group-phase ladder lVC_{1+globals}/gVC_{1+globals},
// so BOTH local hops inside one supernode share a VC (the ascending-order
// rule of Günther is deliberately violated within groups). Deadlock
// freedom is restored by the parity-sign restriction on 2-hop local
// routes (Table I): the last link of any chain of allowed hop pairs can
// never have the same type as the first, so no cycle closes. Because no
// cycle can ever form — rather than being escaped from — RLM works under
// both VCT and wormhole flow control.
//
// The restriction is enforced at selection time: a local misroute
// current -> k is only offered when the forced continuation k -> target
// forms an allowed pair, and a PAR-style Valiant commit after the first
// minimal source-group hop must form an allowed pair with that hop.
#pragma once

#include "routing/adaptive_base.hpp"
#include "routing/parity_sign.hpp"

namespace dfsim {

class RlmRouting final : public AdaptiveBase {
 public:
  RlmRouting(const DragonflyTopology& topo, const AdaptiveParams& params,
             RestrictionPolicy policy = RestrictionPolicy::kParitySign)
      : AdaptiveBase(topo, params), restriction_(policy) {}

  int min_local_vcs() const override { return 3; }
  bool supports_wormhole() const override {
    // The unrestricted variant exists to demonstrate deadlock; it is not
    // safe anywhere, but we let it run under both flow controls.
    return true;
  }
  std::string name() const override;

  const LocalRouteRestriction& restriction() const { return restriction_; }

 protected:
  VcId minimal_local_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.global_hops;  // lVC_{1+globals}
  }
  VcId minimal_global_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.global_hops;  // gVC_{1+globals}
  }
  VcId commit_local_vc(const RoutingContext& ctx) const override {
    return ctx.packet.rs.global_hops;  // still lVC1 in the source group
  }
  bool commit_hop_allowed(const RoutingContext& ctx,
                          RouterId gateway) const override;
  void local_misroute_vcs(const RoutingContext& ctx, RouterId k,
                          RouterId target,
                          std::vector<VcId>& vcs) const override;

 private:
  LocalRouteRestriction restriction_;
};

}  // namespace dfsim
