#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/minimal.hpp"
#include "routing/olm.hpp"
#include "routing/par62.hpp"
#include "routing/rlm.hpp"
#include "routing/valiant.hpp"

namespace dfsim {

namespace {

std::unique_ptr<RoutingAlgorithm> build_minimal(const DragonflyTopology& topo,
                                                const RoutingParams&) {
  return std::make_unique<MinimalRouting>(topo);
}

std::unique_ptr<RoutingAlgorithm> build_valiant(const DragonflyTopology& topo,
                                                const RoutingParams&) {
  return std::make_unique<ValiantRouting>(topo);
}

std::unique_ptr<RoutingAlgorithm> build_pb(const DragonflyTopology& topo,
                                           const RoutingParams& params) {
  return std::make_unique<PiggybackRouting>(topo, params.piggyback);
}

std::unique_ptr<RoutingAlgorithm> build_ugal(const DragonflyTopology& topo,
                                             const RoutingParams& params) {
  return std::make_unique<UgalRouting>(topo, params.ugal);
}

std::unique_ptr<RoutingAlgorithm> build_par62(const DragonflyTopology& topo,
                                              const RoutingParams& params) {
  return std::make_unique<Par62Routing>(topo, params.adaptive);
}

std::unique_ptr<RoutingAlgorithm> build_rlm(const DragonflyTopology& topo,
                                            const RoutingParams& params) {
  return std::make_unique<RlmRouting>(topo, params.adaptive,
                                      RestrictionPolicy::kParitySign);
}

std::unique_ptr<RoutingAlgorithm> build_rlm_signonly(
    const DragonflyTopology& topo, const RoutingParams& params) {
  return std::make_unique<RlmRouting>(topo, params.adaptive,
                                      RestrictionPolicy::kSignOnly);
}

std::unique_ptr<RoutingAlgorithm> build_rlm_unrestricted(
    const DragonflyTopology& topo, const RoutingParams& params) {
  return std::make_unique<RlmRouting>(topo, params.adaptive,
                                      RestrictionPolicy::kNone);
}

std::unique_ptr<RoutingAlgorithm> build_olm(const DragonflyTopology& topo,
                                            const RoutingParams& params) {
  return std::make_unique<OlmRouting>(topo, params.adaptive);
}

}  // namespace

const std::vector<RoutingEntry>& routing_registry() {
  static const std::vector<RoutingEntry> kRegistry = {
      {"minimal", "min", "shortest path (l-g-l), no adaptivity",
       build_minimal},
      {"valiant", "val", "random intermediate group, fully oblivious",
       build_valiant},
      {"pb", "piggyback",
       "UGAL with piggybacked remote global-link state", build_pb},
      {"ugal", "", "source-adaptive minimal-vs-Valiant by queue depth",
       build_ugal},
      {"par-6/2", "par62", "progressive adaptive routing, 6/2 VC split",
       build_par62},
      {"rlm", "", "on-the-fly restricted local misrouting (parity+sign)",
       build_rlm},
      {"rlm-signonly", "", "RLM with the sign-only restriction policy",
       build_rlm_signonly},
      {"rlm-unrestricted", "", "RLM with local misroutes unrestricted",
       build_rlm_unrestricted},
      {"olm", "", "on-the-fly opportunistic local misrouting (the paper's "
                  "headline mechanism)",
       build_olm},
  };
  return kRegistry;
}

std::string routing_names() {
  std::string out;
  for (const RoutingEntry& entry : routing_registry()) {
    if (!out.empty()) out += ", ";
    out += entry.key;
    if (entry.alias[0] != '\0') {
      out += " (";
      out += entry.alias;
      out += ")";
    }
  }
  return out;
}

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const DragonflyTopology& topo,
                                               const RoutingParams& params) {
  for (const RoutingEntry& entry : routing_registry()) {
    if (name == entry.key || (entry.alias[0] != '\0' && name == entry.alias)) {
      return entry.build(topo, params);
    }
  }
  throw std::invalid_argument("unknown routing mechanism: " + name +
                              " (known: " + routing_names() + ")");
}

}  // namespace dfsim
