#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/minimal.hpp"
#include "routing/olm.hpp"
#include "routing/par62.hpp"
#include "routing/rlm.hpp"
#include "routing/valiant.hpp"

namespace dfsim {

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const DragonflyTopology& topo,
                                               const RoutingParams& params) {
  if (name == "minimal" || name == "min") {
    return std::make_unique<MinimalRouting>(topo);
  }
  if (name == "valiant" || name == "val") {
    return std::make_unique<ValiantRouting>(topo);
  }
  if (name == "pb" || name == "piggyback") {
    return std::make_unique<PiggybackRouting>(topo, params.piggyback);
  }
  if (name == "ugal") {
    return std::make_unique<UgalRouting>(topo, params.ugal);
  }
  if (name == "par-6/2" || name == "par62") {
    return std::make_unique<Par62Routing>(topo, params.adaptive);
  }
  if (name == "rlm") {
    return std::make_unique<RlmRouting>(topo, params.adaptive,
                                        RestrictionPolicy::kParitySign);
  }
  if (name == "rlm-signonly") {
    return std::make_unique<RlmRouting>(topo, params.adaptive,
                                        RestrictionPolicy::kSignOnly);
  }
  if (name == "rlm-unrestricted") {
    return std::make_unique<RlmRouting>(topo, params.adaptive,
                                        RestrictionPolicy::kNone);
  }
  if (name == "olm") {
    return std::make_unique<OlmRouting>(topo, params.adaptive);
  }
  throw std::invalid_argument("unknown routing mechanism: " + name);
}

}  // namespace dfsim
