// The ascending virtual-channel order that underpins every deadlock
// argument in the paper (Günther's distance classes):
//
//   lVC1 < gVC1 < lVC2 < gVC2 < lVC3 < ... (< lVC4, gVC.. for PAR-6/2)
//
// We assign each (class, index) pair a *rank*; a route is deadlock-free by
// distance classes iff its rank sequence is strictly increasing. OLM's
// escape-path reasoning is phrased entirely in ranks (see olm.cpp).
#pragma once

#include "common/types.hpp"

namespace dfsim {

/// Rank of the k-th local VC (0-based): lVC1 -> 1, lVC2 -> 3, lVC3 -> 5...
constexpr int local_rank(int vc0) { return 2 * vc0 + 1; }

/// Rank of the k-th global VC (0-based): gVC1 -> 2, gVC2 -> 4.
constexpr int global_rank(int vc0) { return 2 * vc0 + 2; }

/// Rank of the VC a packet currently occupies given its input port class.
inline int occupied_rank(PortClass cls, VcId vc) {
  switch (cls) {
    case PortClass::kLocal:
      return local_rank(vc);
    case PortClass::kGlobal:
      return global_rank(vc);
    case PortClass::kTerminal:
      return 0;  // injection queue ranks below every network VC
  }
  return 0;
}

/// Smallest 0-based local VC index whose rank exceeds `rank`, or -1 when
/// none exists below `num_local_vcs`.
inline int next_local_vc_above(int rank, int num_local_vcs) {
  for (int v = 0; v < num_local_vcs; ++v) {
    if (local_rank(v) > rank) return v;
  }
  return -1;
}

/// Smallest 0-based global VC index whose rank exceeds `rank`, or -1.
inline int next_global_vc_above(int rank, int num_global_vcs) {
  for (int v = 0; v < num_global_vcs; ++v) {
    if (global_rank(v) > rank) return v;
  }
  return -1;
}

}  // namespace dfsim
