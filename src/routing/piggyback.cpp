#include "routing/piggyback.hpp"

#include "common/serialize.hpp"
#include "routing/route_util.hpp"
#include "sim/engine.hpp"

namespace dfsim {

PiggybackRouting::PiggybackRouting(const DragonflyTopology& topo,
                                   const PiggybackParams& params)
    : topo_(topo),
      params_(params),
      links_per_group_(topo.global_links_per_group()),
      published_(static_cast<size_t>(topo.num_groups() * links_per_group_),
                 0.0) {}

void PiggybackRouting::per_cycle(Engine& engine) {
  if (engine.now() % static_cast<Cycle>(params_.broadcast_period) != 0) {
    return;
  }
  for (GroupId g = 0; g < topo_.num_groups(); ++g) {
    for (int j = 0; j < links_per_group_; ++j) {
      // Unwired slots (unbalanced shapes) and dead slots (degraded
      // networks) carry no traffic and publish a permanent 0.
      if (!topo_.global_slot_alive(g, j)) continue;
      const RouterId owner = topo_.router_id(g, topo_.global_link_router(j));
      const PortId port = topo_.global_link_port(j);
      published_[static_cast<size_t>(g * links_per_group_ + j)] =
          engine.port_max_occupancy(owner, port);
    }
  }
}

void PiggybackRouting::save_state(std::ostream& os) const {
  ser::write_u64(os, published_.size());
  for (const double v : published_) ser::write_f64(os, v);
}

void PiggybackRouting::restore_state(std::istream& is) {
  const std::uint64_t n = ser::read_u64(is, "pb published table size");
  if (n != published_.size()) {
    throw std::runtime_error(
        "checkpoint mismatch: pb published table has " + std::to_string(n) +
        " entries in the checkpoint but " +
        std::to_string(published_.size()) + " in this configuration");
  }
  for (double& v : published_) v = ser::read_f64(is, "pb published entry");
}

std::optional<RouteChoice> PiggybackRouting::decide(RoutingContext& ctx) {
  Engine& eng = ctx.engine;
  const RouteState& rs = ctx.packet.rs;
  const Flit& flit = ctx.flit;

  const bool at_injection = !rs.valiant && rs.total_hops == 0 &&
                            ctx.router != rs.dst_router &&
                            topo_.num_groups() >= 3;
  if (at_injection) {
    const GroupId g = topo_.group_of_router(ctx.router);
    // Minimal congestion signal: the group's global channel toward the
    // destination group, or (intra-group traffic) the single local link
    // toward the destination router, observed directly at this router.
    double min_occ;
    if (rs.dst_group != g) {
      min_occ = published(g, topo_.global_link_to(g, rs.dst_group));
    } else {
      min_occ = eng.port_max_occupancy(
          ctx.router, topo_.local_port_to(topo_.local_index(ctx.router),
                                          topo_.local_index(rs.dst_router)));
    }
    if (min_occ > params_.saturation_threshold &&
        valiant_groups_available(topo_, g, rs.dst_group)) {
      const GroupId x =
          draw_valiant_group(ctx.rng, topo_, g, rs.dst_group);
      if (!saturated(g, topo_.global_link_to(g, x))) {
        RouteChoice c;
        c.commit_valiant = true;
        c.inter_group = x;
        const RouterId gw = topo_.gateway_router(g, x);
        if (gw == ctx.router) {
          c.port = topo_.gateway_port(g, x);
        } else {
          c.port = topo_.local_port_to(topo_.local_index(ctx.router),
                                       topo_.local_index(gw));
        }
        c.vc = 0;  // lVC1 or gVC1
        if (eng.output_usable(ctx.router, c.port, c.vc, flit)) return c;
        return std::nullopt;
      }
    }
  }

  const Hop hop = minimal_hop_with(topo_, ctx.router, ctx.packet,
                                   rs.global_hops, rs.global_hops);
  if (!eng.output_usable(ctx.router, hop.port, hop.vc, flit)) {
    return std::nullopt;
  }
  RouteChoice choice;
  choice.port = hop.port;
  choice.vc = hop.vc;
  return choice;
}

std::optional<Hop> PiggybackRouting::pure_minimal_hop(
    const RoutingContext& ctx) {
  const RouteState& rs = ctx.packet.rs;
  // The injection decision reads congestion state and may draw a Valiant
  // group; in transit Piggybacking forwards minimally.
  if (!rs.valiant && rs.total_hops == 0 && ctx.router != rs.dst_router &&
      topo_.num_groups() >= 3) {
    return std::nullopt;
  }
  return minimal_hop_with(topo_, ctx.router, ctx.packet, rs.global_hops,
                          rs.global_hops);
}

}  // namespace dfsim
