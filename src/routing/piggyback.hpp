// Piggybacking (PB) source-adaptive routing (Jiang, Kim & Dally, ISCA'09;
// the best cost/performance indirect adaptive scheme per that paper and
// the main adaptive baseline of García et al.).
//
// Each router piggybacks the saturation state of its global channels onto
// traffic inside its group; every router therefore holds a (slightly
// stale) table of all a*h global-link occupancies of its group. At
// injection the source picks Valiant iff the minimal global channel is
// saturated and the candidate Valiant channel is not. Decisions are made
// only at injection (source routing): no in-transit re-routing and no
// local misrouting — which is exactly why PB caps at 1/p (1/h balanced)
// under ADVG+h (Figs. 4c/5c) and at ~0.5 under pure ADVL (Fig. 6a, via
// Valiant).
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct PiggybackParams {
  double saturation_threshold = 0.35;  ///< occupancy fraction -> saturated
  int broadcast_period = 10;  ///< cycles between state refreshes (staleness)
};

class PiggybackRouting final : public RoutingAlgorithm {
 public:
  PiggybackRouting(const DragonflyTopology& topo,
                   const PiggybackParams& params);

  std::optional<RouteChoice> decide(RoutingContext& ctx) override;
  std::optional<Hop> pure_minimal_hop(const RoutingContext& ctx) override;
  void per_cycle(Engine& engine) override;
  /// The published tables are refreshed only every broadcast_period
  /// cycles; between refreshes they are stale copies a resumed run cannot
  /// rebuild from engine state, so they checkpoint as-is.
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

  int min_local_vcs() const override { return 3; }
  int min_global_vcs() const override { return 2; }
  bool supports_wormhole() const override { return true; }
  std::string name() const override { return "pb"; }

  /// Published (stale) occupancy of global link j of group g; exposed for
  /// tests of the broadcast model.
  double published(GroupId g, int j) const {
    return published_[static_cast<size_t>(g * links_per_group_ + j)];
  }

 private:
  bool saturated(GroupId g, int j) const {
    return published(g, j) > params_.saturation_threshold;
  }

  const DragonflyTopology& topo_;
  PiggybackParams params_;
  int links_per_group_;
  std::vector<double> published_;
};

}  // namespace dfsim
