// The credit-based misrouting trigger (paper Sec. III):
//
//   "Routing chooses between the minimal output and one of the possible
//    non-minimal outputs using a misrouting trigger based on the credits
//    count of the output ports. If the minimal output is not available, a
//    non-minimal output is randomly chosen among those with an occupancy
//    lower than a given threshold. This threshold is a percentage of the
//    occupancy of the minimal queue."
//
// Higher thresholds misroute more aggressively (better under adversarial
// traffic, worse under uniform — Figs. 10/11 sweep this).
#pragma once

namespace dfsim {

class MisroutingTrigger {
 public:
  explicit MisroutingTrigger(double threshold = 0.45)
      : threshold_(threshold) {}

  /// Candidate occupancies must fall strictly below threshold times the
  /// minimal queue's occupancy (both as fractions of buffer capacity).
  bool allows(double candidate_occupancy, double minimal_occupancy) const {
    return candidate_occupancy < threshold_ * minimal_occupancy;
  }

  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace dfsim
