#include "routing/ugal.hpp"

#include "routing/route_util.hpp"
#include "sim/engine.hpp"

namespace dfsim {

std::optional<RouteChoice> UgalRouting::decide(RoutingContext& ctx) {
  Engine& eng = ctx.engine;
  const RouteState& rs = ctx.packet.rs;
  const Flit& flit = ctx.flit;

  const bool at_injection =
      !rs.valiant && rs.total_hops == 0 && ctx.router != rs.dst_router &&
      topo_.num_groups() >= 3 &&
      valiant_groups_available(topo_, topo_.group_of_router(ctx.router),
                               rs.dst_group);
  if (at_injection) {
    const GroupId g = topo_.group_of_router(ctx.router);
    const Hop min = minimal_hop_with(topo_, ctx.router, ctx.packet, 0, 0);
    const double q_min =
        static_cast<double>(eng.port_queue_phits(ctx.router, min.port));

    const GroupId x = draw_valiant_group(ctx.rng, topo_, g, rs.dst_group);

    RouteChoice val;
    val.commit_valiant = true;
    val.inter_group = x;
    const RouterId gw = topo_.gateway_router(g, x);
    val.port = gw == ctx.router
                   ? topo_.gateway_port(g, x)
                   : topo_.local_port_to(topo_.local_index(ctx.router),
                                         topo_.local_index(gw));
    val.vc = 0;
    const double q_val =
        static_cast<double>(eng.port_queue_phits(ctx.router, val.port));

    if (q_min > params_.bias * q_val + params_.offset_phits &&
        eng.output_usable(ctx.router, val.port, val.vc, flit)) {
      return val;
    }
  }

  const Hop hop = minimal_hop_with(topo_, ctx.router, ctx.packet,
                                   rs.global_hops, rs.global_hops);
  if (!eng.output_usable(ctx.router, hop.port, hop.vc, flit)) {
    return std::nullopt;
  }
  RouteChoice choice;
  choice.port = hop.port;
  choice.vc = hop.vc;
  return choice;
}

std::optional<Hop> UgalRouting::pure_minimal_hop(const RoutingContext& ctx) {
  const RouteState& rs = ctx.packet.rs;
  // The injection decision draws a Valiant group and reads queue depths.
  if (!rs.valiant && rs.total_hops == 0 && ctx.router != rs.dst_router &&
      topo_.num_groups() >= 3) {
    return std::nullopt;
  }
  return minimal_hop_with(topo_, ctx.router, ctx.packet, rs.global_hops,
                          rs.global_hops);
}

}  // namespace dfsim
