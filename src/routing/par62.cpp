#include "routing/par62.hpp"

// PAR-6/2 is fully described by its VC ladder; all behaviour lives in
// AdaptiveBase and the inline overrides in the header.
