// The intra-group route restriction at the heart of RLM (paper Sec. III-B
// and Table I).
//
// Routers inside a supernode form a complete graph K_2h. A hop from local
// index i to j is typed by *sign* (+ if j > i) and *parity* (odd if i and
// j have different parity, even otherwise) — four link types. RLM forbids
// certain 2-hop type combinations so that no cyclic dependency can form
// among local channels that share a VC, while guaranteeing at least h-1
// two-hop routes between every pair of routers (plus the minimal hop).
//
// The simpler *sign-only* rule (forbid (+,-) turns) is also provided: it
// breaks cycles too, but leaves some router pairs with zero non-minimal
// routes (e.g. 0 -> 1 needs (+,-)), unbalancing the local links — the
// paper's motivation for parity-sign. `kNone` disables the restriction
// entirely (deadlock-prone; used to demonstrate the cycles RLM prevents).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dfsim {

enum class LocalHopType : std::uint8_t {
  kOddMinus = 0,
  kEvenPlus = 1,
  kOddPlus = 2,
  kEvenMinus = 3,
};
inline constexpr int kNumHopTypes = 4;

const char* to_string(LocalHopType t);

/// Type of the local hop i -> j (local indices, i != j).
inline LocalHopType local_hop_type(int i, int j) {
  const bool odd = ((i ^ j) & 1) != 0;
  const bool plus = j > i;
  if (odd) return plus ? LocalHopType::kOddPlus : LocalHopType::kOddMinus;
  return plus ? LocalHopType::kEvenPlus : LocalHopType::kEvenMinus;
}

enum class RestrictionPolicy : std::uint8_t {
  kParitySign,  ///< the paper's proposal (Table I)
  kSignOnly,    ///< the strawman: forbid (+,-) turns
  kNone,        ///< no restriction (deadlock-prone)
};

class LocalRouteRestriction {
 public:
  /// Order in which link types are processed by the marking algorithm.
  /// The paper uses (1) odd-, (2) even+, (3) odd+, (4) even-.
  using TypeOrder = std::array<LocalHopType, 4>;
  static constexpr TypeOrder kPaperOrder = {
      LocalHopType::kOddMinus, LocalHopType::kEvenPlus,
      LocalHopType::kOddPlus, LocalHopType::kEvenMinus};

  explicit LocalRouteRestriction(
      RestrictionPolicy policy = RestrictionPolicy::kParitySign,
      const TypeOrder& order = kPaperOrder);

  RestrictionPolicy policy() const { return policy_; }

  /// Is the 2-hop type combination (first, then second) allowed?
  bool combo_allowed(LocalHopType first, LocalHopType second) const {
    return allowed_[static_cast<int>(first)][static_cast<int>(second)];
  }

  /// Is the 2-hop route i -> k -> j allowed? (i, k, j distinct local idx)
  bool hop_pair_allowed(int i, int k, int j) const {
    return combo_allowed(local_hop_type(i, k), local_hop_type(k, j));
  }

  /// Valid intermediate routers for a 2-hop route from i to j inside a
  /// group of `group_size` routers.
  std::vector<int> allowed_intermediates(int i, int j, int group_size) const;

  /// Minimum, over all ordered pairs, of the number of allowed 2-hop
  /// routes (the paper proves >= h-1 for parity-sign).
  int min_two_hop_routes(int group_size) const;
  /// Same, but the maximum (sign-only is unbalanced: up to 2h-2).
  int max_two_hop_routes(int group_size) const;

  struct TableRow {
    LocalHopType first;
    LocalHopType second;
    bool allowed;
  };
  /// All 16 combinations — regenerates the paper's Table I.
  std::vector<TableRow> table() const;

 private:
  void build_parity_sign(const TypeOrder& order);
  void build_sign_only();

  RestrictionPolicy policy_;
  bool allowed_[kNumHopTypes][kNumHopTypes];
};

}  // namespace dfsim
