// Shared skeleton of the in-transit adaptive mechanisms (PAR-6/2, RLM,
// OLM). Per paper Sec. III:
//
//   - every router first tries to forward minimally;
//   - if the minimal output is unavailable, non-minimal candidates are
//     gathered: global misrouting (a Valiant commit) in the source group
//     at the source router or after the first minimal hop (as in PAR),
//     and one local misroute per intermediate/destination group (as in
//     OFAR);
//   - candidates pass the credit-count trigger (occupancy below a
//     percentage of the minimal queue's occupancy) and one is chosen at
//     random;
//   - otherwise the packet waits and the decision is revisited next cycle.
//
// Subclasses provide the VC discipline and candidate filters that make
// each mechanism deadlock-free.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "routing/trigger.hpp"
#include "routing/route_util.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct AdaptiveParams {
  double threshold = 0.45;  ///< misrouting trigger (fraction, Figs. 10/11)
  int global_candidates = 4;  ///< Valiant intermediate groups sampled/cycle
  int local_candidates = 4;   ///< local misroute routers sampled/cycle
};

class AdaptiveBase : public RoutingAlgorithm {
 public:
  AdaptiveBase(const DragonflyTopology& topo, const AdaptiveParams& params);

  std::optional<RouteChoice> decide(RoutingContext& ctx) final;
  std::optional<Hop> pure_minimal_hop(const RoutingContext& ctx) final;
  std::optional<RouteChoice> decide_fresh(RoutingContext& ctx,
                                          std::optional<Hop>* pure_hop) final;

  int min_global_vcs() const override { return 2; }

 protected:
  // --- VC discipline ---------------------------------------------------
  /// VC for the minimal local / global continuation.
  virtual VcId minimal_local_vc(const RoutingContext& ctx) const = 0;
  virtual VcId minimal_global_vc(const RoutingContext& ctx) const = 0;
  /// VC for the extra local hop of a Valiant commit through a remote
  /// gateway in the source group.
  virtual VcId commit_local_vc(const RoutingContext& ctx) const = 0;

  // --- candidate filters -----------------------------------------------
  /// May the source-group commit hop (prev -> current -> gateway) be
  /// taken? RLM applies the parity-sign restriction here.
  virtual bool commit_hop_allowed(const RoutingContext& ctx,
                                  RouterId gateway) const;
  /// May a Valiant commit depart straight onto one of THIS router's
  /// global ports, given the VC the packet currently occupies? Only
  /// consulted after the packet already took a local hop (at the source
  /// router the packet always sits on the injection queue). OLM requires
  /// the commit to start its ladder at gVC1, which is impossible once a
  /// destination-group local misroute parked the packet on lVC2.
  virtual bool direct_commit_allowed(const RoutingContext& ctx) const;
  /// Append the VCs on which a local misroute current -> k (followed by
  /// the forced k -> in-group target hop) is permitted. Empty = forbidden.
  virtual void local_misroute_vcs(const RoutingContext& ctx, RouterId k,
                                  RouterId in_group_target,
                                  std::vector<VcId>& vcs) const = 0;

  Hop minimal_hop(const RoutingContext& ctx) const;

  const DragonflyTopology& topo_;
  AdaptiveParams params_;
  MisroutingTrigger trigger_;

 private:
  /// Purity gates of pure_minimal_hop() as a predicate (no route resolve);
  /// the single source of truth both entry points share.
  bool decision_is_pure(const RoutingContext& ctx) const;
  /// decide() after the minimal hop has been resolved (`min` must be this
  /// packet's minimal hop at ctx.router, with the min_cache memo hot).
  std::optional<RouteChoice> decide_impure(RoutingContext& ctx,
                                           const Hop& min);
  // Candidate collection appends into caller-provided scratch; decide()
  // keeps the scratch in thread_local storage so concurrent decisions
  // from the sharded engine's workers never share a buffer.
  void collect_global_candidates(RoutingContext& ctx,
                                 std::vector<RouteChoice>& out);
  void collect_local_candidates(RoutingContext& ctx,
                                std::vector<RouteChoice>& out);
};

}  // namespace dfsim
