// The routing-mechanism interface. The engine re-evaluates `decide` every
// cycle for every head flit until the flit wins switch allocation, which
// implements the paper's on-the-fly (in-transit) adaptivity: "the routing
// decision can be revisited on each hop".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "routing/route_util.hpp"
#include "sim/packet.hpp"

namespace dfsim {

class Engine;

/// A concrete output selection for the current cycle, plus the route-state
/// side effects to apply if (and only if) the hop actually wins allocation.
struct RouteChoice {
  PortId port = kInvalid;
  VcId vc = 0;

  /// This hop commits the packet to a Valiant path via `inter_group`
  /// (global misrouting, decided in the source group).
  bool commit_valiant = false;
  GroupId inter_group = kInvalid;

  /// This hop is an OFAR-style local misroute (counts against the one
  /// local misroute allowed per group).
  bool local_misroute = false;
};

/// Everything a mechanism may inspect when deciding: the engine exposes
/// output usability (link free + credits + VC allocation) and downstream
/// occupancy, which is the credit-count information real routers have.
struct RoutingContext {
  Engine& engine;
  RouterId router;
  PortId in_port;
  VcId in_vc;
  Packet& packet;
  /// The head flit under decision (the front of (in_port, in_vc)); saves
  /// mechanisms the buffer lookup on the hottest path in the simulator.
  const Flit& flit;
  /// The stream every decide() draw must come from. Exact mode passes the
  /// engine's global stream (draw order = ascending VC index, the seed
  /// contract); sharded mode passes a counter-based stream keyed by
  /// (seed, cycle, vc index) so results are worker-count independent.
  Rng& rng;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Pick this cycle's output for the head flit, or nullopt to wait.
  /// Implementations must only return choices that are usable this cycle.
  virtual std::optional<RouteChoice> decide(RoutingContext& ctx) = 0;

  /// Purity declaration for the decision-retry fast path. If — for the
  /// packet's CURRENT RouteState at router `ctx.router`, and for ANY
  /// engine state — decide() is exactly "return the minimal hop iff it is
  /// usable, else wait", with no RNG draw and no side effects, return
  /// that minimal hop; otherwise nullopt. The engine caches the answer in
  /// the packet (RouteState only changes when a hop is taken) and runs
  /// the usability check itself on every retry cycle, skipping the full
  /// decide() call. Mechanisms whose decision may misroute, bias, or
  /// draw randomness at this (packet, router) must return nullopt; the
  /// default keeps every decision on the slow path.
  virtual std::optional<Hop> pure_minimal_hop(const RoutingContext& /*ctx*/) {
    return std::nullopt;
  }

  /// Fused first-visit entry point: semantically pure_minimal_hop()
  /// followed — when the verdict is impure — by decide(), but overridable
  /// as one pass so the purity gates and the minimal-route resolution are
  /// not computed twice on the hottest path. Writes the purity verdict to
  /// *pure_hop. When the verdict is engaged (pure) the return value is
  /// ignored: the engine caches the hop and runs the usability check
  /// itself, exactly as with pure_minimal_hop. Overrides must keep the
  /// verdict and any RNG draws bit-identical to the two-call sequence.
  virtual std::optional<RouteChoice> decide_fresh(
      RoutingContext& ctx, std::optional<Hop>* pure_hop) {
    *pure_hop = pure_minimal_hop(ctx);
    if (*pure_hop) return std::nullopt;  // engine nominates via the verdict
    return decide(ctx);
  }

  /// Invoked once per simulated cycle before allocation; mechanisms with
  /// distributed state (Piggybacking's broadcast) refresh it here.
  virtual void per_cycle(Engine& /*engine*/) {}

  /// Invoked when a head flit actually departs on `choice`, after the
  /// engine applied the generic RouteState bookkeeping. Mechanisms add
  /// their own (e.g. OLM asserts its escape invariant here).
  virtual void on_hop(const Engine& /*engine*/, Packet& /*packet*/,
                      const RouteChoice& /*choice*/, RouterId /*router*/) {}

  /// Checkpoint hooks, called from Engine::save_checkpoint / restore.
  /// Mechanisms with mutable cross-cycle state (Piggybacking's published
  /// occupancy tables) serialize it here so a resumed run replays
  /// bit-identically; the default covers the stateless majority. The two
  /// must read/write the same byte count (the engine frames the section).
  virtual void save_state(std::ostream& /*os*/) const {}
  virtual void restore_state(std::istream& /*is*/) {}

  /// Resource demands; the engine config is validated against these.
  virtual int min_local_vcs() const = 0;
  virtual int min_global_vcs() const = 0;
  virtual bool supports_wormhole() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace dfsim
