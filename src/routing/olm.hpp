// Opportunistic Local Misrouting (OLM, paper Sec. III-C) — the paper's
// best-performing proposal. Cost: the standard 3/2 VCs; VCT only.
//
// OLM keeps PAR-6/2's full routing freedom. Cyclic dependencies MAY form
// among low VCs, but deadlock cannot occur because every packet always
// retains an *escape path*: a minimal continuation whose VCs climb the
// global rank order lVC1 < gVC1 < lVC2 < gVC2 < lVC3 strictly (a Duato
// escape layer; rank-increasing dependencies form a DAG and VCT leaves no
// extended dependencies because a packet moves only when it fits whole).
//
// Concretely:
//   - minimal hops greedily take the lowest VC of the needed class whose
//     rank exceeds the rank of the VC the packet currently occupies
//     (reproducing the paper's example ladders of Fig. 3 exactly);
//   - a local misroute onto lVC_m is permitted iff, from the misrouted
//     position, a strictly-rank-ascending minimal route still exists
//     starting above lVC_m's rank. That admits lVC1 in an intermediate
//     group and lVC1/lVC2 in the destination group — the paper's "equal
//     or lower index than the previously used one", derived rather than
//     postulated — and requires whole-packet buffering (hence VCT);
//   - the source-group commit hop of a Valiant detour reuses lVC1, which
//     is safe because the committed continuation g-l-g-l climbs
//     gVC1 < lVC2 < gVC2 < lVC3.
#pragma once

#include "routing/adaptive_base.hpp"

namespace dfsim {

class OlmRouting final : public AdaptiveBase {
 public:
  OlmRouting(const DragonflyTopology& topo, const AdaptiveParams& params)
      : AdaptiveBase(topo, params) {}

  int min_local_vcs() const override { return 3; }
  bool supports_wormhole() const override { return false; }
  std::string name() const override { return "olm"; }

  void on_hop(const Engine& engine, Packet& packet, const RouteChoice& choice,
              RouterId router) override;

  /// True iff a strictly-rank-ascending minimal route to the packet's
  /// destination exists from router `from` for a packet occupying a VC of
  /// rank `start_rank`. Public so tests can machine-check the invariant.
  static bool escape_feasible(const DragonflyTopology& topo, int local_vcs,
                              int global_vcs, int start_rank, RouterId from,
                              const RouteState& rs);

 protected:
  VcId minimal_local_vc(const RoutingContext& ctx) const override;
  VcId minimal_global_vc(const RoutingContext& ctx) const override;
  VcId commit_local_vc(const RoutingContext& ctx) const override;
  bool direct_commit_allowed(const RoutingContext& ctx) const override;
  void local_misroute_vcs(const RoutingContext& ctx, RouterId k,
                          RouterId target,
                          std::vector<VcId>& vcs) const override;
};

}  // namespace dfsim
