// Shared route helpers: phase resolution and minimal-hop computation.
// Everything here is expressed through the topology's gateway tables, so
// it is valid for any (p, a, h, g) shape — balanced or not, trunked or
// partially populated global wiring included.
//
// A packet's "steering group" is the Valiant intermediate group while a
// committed global misroute is still pending, and the destination group
// otherwise. Minimal continuation is then: eject at the destination
// router, a single local hop inside the destination group, or
// (local-to-gateway)? + global toward the steering group.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct Hop {
  PortId port = kInvalid;
  VcId vc = 0;
};

/// Hop classes of the minimal continuation, in order (at most l-g-l).
struct MinimalClasses {
  int count = 0;
  PortClass cls[3]{};
};

/// Degraded-network guard for the source-side Valiant draws (VAL, PB,
/// UGAL, PAR's sampled gateways): true when at least one intermediate
/// group with an alive global link from `g` remains after excluding `g`
/// itself and the destination group. Healthy topologies always qualify
/// (complete inter-group connectivity; callers already require G >= 3),
/// so the healthy RNG stream is untouched. Without this guard the
/// rejection-sampling draw loops could spin forever on a heavily degraded
/// source group.
inline bool valiant_groups_available(const DragonflyTopology& topo,
                                     GroupId g, GroupId dst) {
  if (!topo.faulted()) return true;
  int eligible = topo.reachable_groups(g);
  if (dst != g && topo.groups_linked(g, dst)) --eligible;
  return eligible > 0;
}

/// The shared rejection-sampling draw of a Valiant intermediate group:
/// uniform over groups, excluding the source group, the destination
/// group, and — on degraded networks — groups with no alive link from
/// `g`. Callers must have established eligibility via
/// valiant_groups_available first, or the loop cannot terminate. Healthy
/// topologies skip the faulted() clause, so the draw sequence (and with
/// it every pinned golden) is bit-identical to the historical loops this
/// replaces.
inline GroupId draw_valiant_group(Rng& rng, const DragonflyTopology& topo,
                                  GroupId g, GroupId dst) {
  GroupId x;
  do {
    x = static_cast<GroupId>(
        rng.uniform(static_cast<std::uint64_t>(topo.num_groups())));
  } while (x == g || x == dst ||
           (topo.faulted() && !topo.groups_linked(g, x)));
  return x;
}

inline GroupId steering_group(const RouteState& rs, GroupId current) {
  if (rs.valiant && rs.global_hops == 0 && current != rs.inter_group) {
    return rs.inter_group;
  }
  return rs.dst_group;
}

/// Minimal next-hop port and its class, memoized in the packet: a blocked
/// head re-evaluates its decision every cycle, and the port depends only
/// on (router, RouteState), which cannot change while the packet waits.
inline MinPortCache minimal_port(const DragonflyTopology& topo, RouterId r,
                                 const Packet& pkt) {
  if (pkt.min_cache.router == r) return pkt.min_cache;
  const RouteState& rs = pkt.rs;
  MinPortCache mc;
  mc.router = r;
  if (r == rs.dst_router) {
    mc.port = static_cast<std::int16_t>(topo.terminal_port(pkt.dst));
    mc.cls = static_cast<std::int8_t>(PortClass::kTerminal);
  } else {
    const GroupId g = topo.group_of_router(r);
    const GroupId tg = steering_group(rs, g);
    if (g == tg) {
      mc.port = static_cast<std::int16_t>(topo.local_port_to(
          topo.local_index(r), topo.local_index(rs.dst_router)));
      mc.cls = static_cast<std::int8_t>(PortClass::kLocal);
    } else {
      const RouterId gw = topo.gateway_router(g, tg);
      if (r == gw) {
        mc.port = static_cast<std::int16_t>(topo.gateway_port(g, tg));
        mc.cls = static_cast<std::int8_t>(PortClass::kGlobal);
      } else {
        mc.port = static_cast<std::int16_t>(topo.local_port_to(
            topo.local_index(r), topo.local_index(gw)));
        mc.cls = static_cast<std::int8_t>(PortClass::kLocal);
      }
    }
  }
  pkt.min_cache = mc;
  return mc;
}

/// Minimal next hop using explicit VC indices for the local/global case.
inline Hop minimal_hop_with(const DragonflyTopology& topo, RouterId r,
                            const Packet& pkt, VcId local_vc, VcId global_vc) {
  const MinPortCache mc = minimal_port(topo, r, pkt);
  switch (static_cast<PortClass>(mc.cls)) {
    case PortClass::kTerminal:
      return {mc.port, 0};
    case PortClass::kGlobal:
      return {mc.port, global_vc};
    case PortClass::kLocal:
      break;
  }
  return {mc.port, local_vc};
}

/// Class sequence of the *pure minimal* route from `r` to the packet's
/// destination, ignoring any Valiant commitment. This is what OLM's
/// escape-path feasibility check walks (see olm.cpp).
inline MinimalClasses minimal_classes(const DragonflyTopology& topo,
                                      RouterId r, const RouteState& rs) {
  MinimalClasses seq;
  if (r == rs.dst_router) return seq;
  const GroupId g = topo.group_of_router(r);
  if (g == rs.dst_group) {
    seq.cls[seq.count++] = PortClass::kLocal;
    return seq;
  }
  const RouterId gw = topo.gateway_router(g, rs.dst_group);
  if (r != gw) seq.cls[seq.count++] = PortClass::kLocal;
  seq.cls[seq.count++] = PortClass::kGlobal;
  const RouterId in_gw = topo.gateway_router(rs.dst_group, g);
  if (in_gw != rs.dst_router) seq.cls[seq.count++] = PortClass::kLocal;
  return seq;
}

}  // namespace dfsim
