// UGAL-L (Universal Globally-Adaptive Load-balancing with local queue
// information) — a reference point from the paper's related work (Jiang
// et al., ISCA'09). Included as an extension: at injection the source
// compares its own output-queue depths, weighting Valiant routes by their
// doubled global-hop count, and commits accordingly. Source-routed, no
// local misrouting.
#pragma once

#include "routing/routing.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct UgalParams {
  /// Valiant chosen when q_min > bias * q_val + offset (phits).
  double bias = 2.0;
  double offset_phits = 8.0;
};

class UgalRouting final : public RoutingAlgorithm {
 public:
  UgalRouting(const DragonflyTopology& topo, const UgalParams& params)
      : topo_(topo), params_(params) {}

  std::optional<RouteChoice> decide(RoutingContext& ctx) override;
  std::optional<Hop> pure_minimal_hop(const RoutingContext& ctx) override;

  int min_local_vcs() const override { return 3; }
  int min_global_vcs() const override { return 2; }
  bool supports_wormhole() const override { return true; }
  std::string name() const override { return "ugal"; }

 private:
  const DragonflyTopology& topo_;
  UgalParams params_;
};

}  // namespace dfsim
