// Construction of routing mechanisms by name (used by the API facade,
// benches and examples).
#pragma once

#include <memory>
#include <string>

#include "routing/adaptive_base.hpp"
#include "routing/piggyback.hpp"
#include "routing/routing.hpp"
#include "routing/ugal.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct RoutingParams {
  AdaptiveParams adaptive;
  PiggybackParams piggyback;
  UgalParams ugal;
};

/// Names: "minimal", "valiant", "pb", "ugal", "par-6/2" (or "par62"),
/// "rlm", "rlm-signonly", "rlm-unrestricted", "olm".
std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const DragonflyTopology& topo,
                                               const RoutingParams& params);

}  // namespace dfsim
