// Construction of routing mechanisms by name (used by the API facade,
// benches and examples).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/adaptive_base.hpp"
#include "routing/piggyback.hpp"
#include "routing/routing.hpp"
#include "routing/ugal.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct RoutingParams {
  AdaptiveParams adaptive;
  PiggybackParams piggyback;
  UgalParams ugal;
};

/// One registry row. `build` constructs the mechanism from the topology
/// and the shared parameter block.
struct RoutingEntry {
  const char* key;    ///< canonical name
  const char* alias;  ///< optional second name ("" = none)
  const char* help;   ///< one-line description for --list-routing
  std::unique_ptr<RoutingAlgorithm> (*build)(const DragonflyTopology& topo,
                                             const RoutingParams& params);
};

/// The routing registry, in documentation order. New mechanisms register
/// here and nowhere else — make_routing, the unknown-name error message
/// and df_run --list-routing all derive from this list.
const std::vector<RoutingEntry>& routing_registry();

/// Comma-separated canonical keys (for error messages and --help output).
std::string routing_names();

/// Names: "minimal", "valiant", "pb", "ugal", "par-6/2" (or "par62"),
/// "rlm", "rlm-signonly", "rlm-unrestricted", "olm". Throws
/// std::invalid_argument naming the full registry on an unknown name.
std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const DragonflyTopology& topo,
                                               const RoutingParams& params);

}  // namespace dfsim
