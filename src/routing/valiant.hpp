// Valiant randomized routing (VAL): every packet is globally misrouted
// through a uniformly random intermediate group, then forwarded minimally
// — l-g-l-g-l, VCs lVC1-gVC1-lVC2-gVC2-lVC3. Load-balances ADVG at the
// cost of halving peak throughput; cannot dodge saturated local links
// (caps at 1/p — the router's p terminals behind one local link — under
// ADVG+h and ADVL; 1/h for the paper's balanced p = h, Figs. 4c/5c).
#pragma once

#include "routing/routing.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class ValiantRouting final : public RoutingAlgorithm {
 public:
  explicit ValiantRouting(const DragonflyTopology& topo) : topo_(topo) {}

  std::optional<RouteChoice> decide(RoutingContext& ctx) override;
  std::optional<Hop> pure_minimal_hop(const RoutingContext& ctx) override;

  int min_local_vcs() const override { return 3; }
  int min_global_vcs() const override { return 2; }
  bool supports_wormhole() const override { return true; }
  std::string name() const override { return "valiant"; }

 private:
  const DragonflyTopology& topo_;
};

}  // namespace dfsim
