#include "routing/rlm.hpp"

namespace dfsim {

std::string RlmRouting::name() const {
  switch (restriction_.policy()) {
    case RestrictionPolicy::kParitySign:
      return "rlm";
    case RestrictionPolicy::kSignOnly:
      return "rlm-signonly";
    case RestrictionPolicy::kNone:
      return "rlm-unrestricted";
  }
  return "rlm";
}

bool RlmRouting::commit_hop_allowed(const RoutingContext& ctx,
                                    RouterId gateway) const {
  const RouteState& rs = ctx.packet.rs;
  if (rs.local_hops_group == 0) return true;  // first local hop: no pair yet
  // The first (minimal) source-group hop came from prev_local_idx; the
  // commit hop toward the Valiant gateway is the second on lVC1.
  return restriction_.hop_pair_allowed(rs.prev_local_idx,
                                       topo_.local_index(ctx.router),
                                       topo_.local_index(gateway));
}

void RlmRouting::local_misroute_vcs(const RoutingContext& ctx, RouterId k,
                                    RouterId target,
                                    std::vector<VcId>& vcs) const {
  if (!restriction_.hop_pair_allowed(topo_.local_index(ctx.router),
                                     topo_.local_index(k),
                                     topo_.local_index(target))) {
    return;
  }
  vcs.push_back(minimal_local_vc(ctx));
}

}  // namespace dfsim
