// Streaming statistics helpers used by the metrics collector and tests.
#pragma once

#include <cstdint>
#include <vector>

namespace dfsim {

/// Welford running mean/variance; O(1) memory, numerically stable.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  void merge(const RunningStat& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;

  // --- checkpoint support -----------------------------------------------
  // The Welford accumulator is order-sensitive in floating point, so a
  // resumed run must continue from the bit-exact (count, mean, m2) triple
  // rather than re-deriving it.
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  void restore(std::uint64_t count, double mean, double m2) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width histogram with overflow bucket; used for latency
/// distributions (percentiles of packet latency).
class Histogram {
 public:
  /// Buckets of `width` covering [0, width*num_buckets); one extra
  /// overflow bucket beyond that.
  Histogram(double width, std::size_t num_buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// Inclusive percentile (0 < p <= 100), interpolated within the bucket
  /// containing the target rank (samples assumed uniformly spread inside
  /// it); returns 0 when empty. Ranks landing in the overflow bucket
  /// report the end of the covered range, width*num_buckets, since their
  /// true magnitude is unknown.
  double percentile(double p) const;

  double bucket_width() const { return width_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Checkpoint support: overwrite the counts with a saved snapshot. The
  /// snapshot must come from a histogram of identical geometry.
  void restore(const std::vector<std::uint64_t>& buckets,
               std::uint64_t total);

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;  // last bucket = overflow
  std::uint64_t total_ = 0;
};

}  // namespace dfsim
