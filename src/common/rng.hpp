// Small, fast, reproducible PRNG (xoshiro256** seeded via splitmix64).
// Deterministic across platforms so simulations replay exactly by seed.
#pragma once

#include <cstdint>

namespace dfsim {

/// splitmix64 step; used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire's nearly-divisionless method (acceptable modulo bias is
    // rejected, so the distribution is exact).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform_real() < p; }

  /// Derive an independent stream (e.g. one per terminal) from this one.
  /// The child key is routed through a splitmix64 finalizer step so that
  /// near-equal parent draws (low-entropy counters, adjacent seeds) can't
  /// hand the child ctor correlated state.
  Rng split() {
    std::uint64_t sm = next_u64();
    return Rng(splitmix64(sm));
  }

  // --- checkpoint support -----------------------------------------------
  // The four xoshiro words ARE the stream cursor: saving and restoring
  // them resumes the draw sequence exactly where it left off.
  static constexpr int kStateWords = 4;
  void save_state(std::uint64_t out[kStateWords]) const {
    for (int i = 0; i < kStateWords; ++i) out[i] = state_[i];
  }
  void set_state(const std::uint64_t in[kStateWords]) {
    for (int i = 0; i < kStateWords; ++i) state_[i] = in[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Mix one key word into a hash chain (golden-ratio increment through the
/// splitmix64 finalizer — the same derivation `runtime::derive_seed`
/// uses). Chaining mix64 over several words builds a well-separated key
/// from structured inputs like (seed, cycle, entity).
inline std::uint64_t mix64(std::uint64_t state, std::uint64_t word) {
  std::uint64_t s = state + 0x9e3779b97f4a7c15ULL * (word + 1);
  return splitmix64(s);
}

/// Counter-based stream construction: a fresh Rng keyed purely by
/// (seed, cycle, domain, entity). Any party that knows the key gets the
/// identical stream — no shared cursor, so draw results are independent
/// of which worker evaluates which entity. This is the sharded engine's
/// determinism contract (see engine_sharded.cpp): `domain` separates
/// draw sites (allocation vs injection), `entity` is the VC index or
/// terminal id.
inline Rng keyed_stream(std::uint64_t seed, std::uint64_t cycle,
                        std::uint64_t domain, std::uint64_t entity) {
  std::uint64_t k = mix64(seed, cycle);
  k = mix64(k, domain);
  k = mix64(k, entity);
  return Rng(k);
}

}  // namespace dfsim
