// Allocation-free ring-buffer primitives for the simulation hot path.
//
// Three shapes, one theme — memory is carved up front and reused forever:
//   - FixedRing<T>:    non-owning FIFO view over a slice of a shared arena;
//                      the per-(port, VC) flit buffers of every router live
//                      back to back in one engine-owned allocation.
//   - RingDeque<T>:    owning, growable FIFO with power-of-two wraparound;
//                      replaces std::deque where the bound is soft (source
//                      backlogs), so empty queues cost no heap block.
//   - SlabEventRing<T>: per-slot FIFOs of a timing wheel, backed by chunks
//                      from one shared slab that recycle across wraps.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace dfsim {

/// Fixed-capacity FIFO over externally-owned storage. The owner binds a
/// slice of its arena once; pushes beyond the bound capacity are a logic
/// error (callers gate on credit/occupancy accounting first). Indices are
/// 16-bit on purpose: the struct is 16 bytes, which keeps the InputVc it
/// lives in at a cache-friendly 32.
template <typename T>
class FixedRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "FixedRing elements are moved with plain stores");

 public:
  void bind(T* data, std::int32_t capacity) {
    assert(capacity > 0 && capacity <= INT16_MAX);
    data_ = data;
    cap_ = static_cast<std::int16_t>(capacity);
    head_ = 0;
    count_ = 0;
  }

  bool empty() const { return count_ == 0; }
  std::int32_t size() const { return count_; }
  std::int32_t capacity() const { return cap_; }

  const T& front() const {
    assert(count_ > 0);
    return data_[head_];
  }

  void push_back(const T& v) {
    assert(count_ < cap_);
    std::int16_t tail = static_cast<std::int16_t>(head_ + count_);
    if (tail >= cap_) tail = static_cast<std::int16_t>(tail - cap_);
    data_[tail] = v;
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    if (++head_ == cap_) head_ = 0;
    --count_;
  }

 private:
  T* data_ = nullptr;
  std::int16_t cap_ = 0;
  std::int16_t head_ = 0;
  std::int16_t count_ = 0;
};

/// Growable FIFO with contiguous power-of-two storage. Unlike std::deque
/// it allocates nothing while empty and everything it ever allocates is
/// one block, so scanning many mostly-empty queues stays cache-friendly.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  /// Heap bytes held by this deque (memory-audit support).
  std::size_t footprint_bytes() const { return buf_.capacity() * sizeof(T); }

  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  void push_back(const T& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = v;
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// Checkpoint support: visit every element front to back without
  /// consuming it (the physical head offset is not part of the saved
  /// state — a restored deque holding the same sequence is equivalent).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Timing-wheel storage: one FIFO per slot, all slots sharing a slab of
/// fixed-size chunks threaded through free lists. A drained slot returns
/// its chunks to the slab, so steady state runs with zero allocation no
/// matter how often the wheel wraps.
///
/// Constraint: drain() callbacks must not push() into the same ring (the
/// slab may grow under the iteration). The engine's event handlers only
/// ever schedule into *future* cycles from the allocation phase, never
/// from a drain, so this holds by construction there.
template <typename T, int kChunkCap = 16>
class SlabEventRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SlabEventRing elements are moved with plain stores");

 public:
  void reset(std::size_t num_slots) {
    slots_.assign(num_slots, Slot{});
    chunks_.clear();
    free_head_ = -1;
  }

  void push(std::size_t slot, const T& ev) {
    assert(!draining_);
    Slot& s = slots_[slot];
    if (s.tail < 0 || chunks_[static_cast<std::size_t>(s.tail)].count ==
                          kChunkCap) {
      const std::int32_t c = acquire_chunk();
      if (s.tail >= 0) {
        chunks_[static_cast<std::size_t>(s.tail)].next = c;
      } else {
        s.head = c;
      }
      s.tail = c;
    }
    Chunk& ch = chunks_[static_cast<std::size_t>(s.tail)];
    ch.items[ch.count++] = ev;
  }

  /// Visit the slot's events in FIFO order, then recycle its chunks.
  template <typename Fn>
  void drain(std::size_t slot, Fn&& fn) {
    Slot& s = slots_[slot];
    std::int32_t c = s.head;
    if (c < 0) return;  // empty: skip the slot-reset stores
    s.head = -1;
    s.tail = -1;
#ifndef NDEBUG
    draining_ = true;
#endif
    while (c >= 0) {
      Chunk& ch = chunks_[static_cast<std::size_t>(c)];
      for (std::int32_t i = 0; i < ch.count; ++i) fn(ch.items[i]);
      const std::int32_t next = ch.next;
      ch.next = free_head_;
      free_head_ = c;
      c = next;
    }
#ifndef NDEBUG
    draining_ = false;
#endif
  }

  /// drain() that runs `prefetch(ev)` over a whole chunk before `fn(ev)`
  /// processes it. The caller computes the dependent address (e.g. the
  /// input VC an event lands in) in `prefetch`, so up to kChunkCap target
  /// cache lines are in flight while earlier events are handled — the
  /// arrive phase is latency-bound on exactly those scattered loads.
  /// Ordering seen by `fn` is identical to drain().
  template <typename Pf, typename Fn>
  void drain_prefetch(std::size_t slot, Pf&& prefetch, Fn&& fn) {
    Slot& s = slots_[slot];
    std::int32_t c = s.head;
    if (c < 0) return;
    s.head = -1;
    s.tail = -1;
#ifndef NDEBUG
    draining_ = true;
#endif
    while (c >= 0) {
      Chunk& ch = chunks_[static_cast<std::size_t>(c)];
      for (std::int32_t i = 0; i < ch.count; ++i) prefetch(ch.items[i]);
      for (std::int32_t i = 0; i < ch.count; ++i) fn(ch.items[i]);
      const std::int32_t next = ch.next;
      ch.next = free_head_;
      free_head_ = c;
      c = next;
    }
#ifndef NDEBUG
    draining_ = false;
#endif
  }

  std::size_t slab_chunks() const { return chunks_.size(); }

  /// True when the slot holds no events — a single load, so per-cycle
  /// pollers (the sharded engine checks every shard's wheels every
  /// cycle) skip empty slots without touching the slab.
  bool slot_empty(std::size_t slot) const { return slots_[slot].head < 0; }

  /// Resident bytes of the slab and slot table (memory-audit support).
  std::size_t footprint_bytes() const {
    return chunks_.capacity() * sizeof(Chunk) +
           slots_.capacity() * sizeof(Slot);
  }

  /// Checkpoint support: visit the slot's events in FIFO order WITHOUT
  /// recycling them (unlike drain). The wheel is unchanged afterwards.
  template <typename Fn>
  void visit(std::size_t slot, Fn&& fn) const {
    std::int32_t c = slots_[slot].head;
    while (c >= 0) {
      const Chunk& ch = chunks_[static_cast<std::size_t>(c)];
      for (std::int32_t i = 0; i < ch.count; ++i) fn(ch.items[i]);
      c = ch.next;
    }
  }

  /// Checkpoint support: number of events queued in one slot.
  std::size_t slot_size(std::size_t slot) const {
    std::size_t n = 0;
    visit(slot, [&](const T&) { ++n; });
    return n;
  }

 private:
  struct Chunk {
    std::int32_t next = -1;
    std::int32_t count = 0;
    T items[kChunkCap];
  };
  struct Slot {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  std::int32_t acquire_chunk() {
    if (free_head_ >= 0) {
      const std::int32_t c = free_head_;
      Chunk& ch = chunks_[static_cast<std::size_t>(c)];
      free_head_ = ch.next;
      ch.next = -1;
      ch.count = 0;
      return c;
    }
    chunks_.emplace_back();
    return static_cast<std::int32_t>(chunks_.size() - 1);
  }

  std::vector<Chunk> chunks_;
  std::vector<Slot> slots_;
  std::int32_t free_head_ = -1;
#ifndef NDEBUG
  bool draining_ = false;
#endif
};

}  // namespace dfsim
