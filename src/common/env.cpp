#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace dfsim {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  if (*raw == '\0') return false;
  if (std::strcmp(raw, "0") == 0) return false;
  if (std::strcmp(raw, "false") == 0) return false;
  if (std::strcmp(raw, "FALSE") == 0) return false;
  return true;
}

int env_jobs() {
  const std::int64_t jobs = env_int("DF_JOBS", 0);
  return jobs > 0 ? static_cast<int>(jobs) : 0;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

}  // namespace dfsim
