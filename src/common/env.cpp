#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dfsim {

namespace {

void warn(const char* name, const char* raw, const char* why) {
  std::fprintf(stderr, "dfsim: ignoring %s=\"%s\" (%s)\n", name, raw, why);
}

/// True when anything but trailing whitespace follows the parsed number.
bool trailing_garbage(const char* end) {
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return true;
    ++end;
  }
  return false;
}

}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || trailing_garbage(end)) {
    warn(name, raw, "not an integer");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, raw, "out of the 64-bit integer range");
    return fallback;
  }
  return static_cast<std::int64_t>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(raw, &end);
  if (end == raw || trailing_garbage(end)) {
    warn(name, raw, "not a number");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, raw, "out of the double range");
    return fallback;
  }
  return value;
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  if (*raw == '\0') return false;
  if (std::strcmp(raw, "0") == 0) return false;
  if (std::strcmp(raw, "false") == 0) return false;
  if (std::strcmp(raw, "FALSE") == 0) return false;
  return true;
}

int env_jobs() {
  const std::int64_t jobs = env_int("DF_JOBS", 0);
  if (jobs < 0) {
    warn("DF_JOBS", std::getenv("DF_JOBS"),
         "worker counts must be positive; using auto");
    return 0;
  }
  if (jobs > INT32_MAX) {
    warn("DF_JOBS", std::getenv("DF_JOBS"),
         "worker count out of range; using auto");
    return 0;
  }
  return jobs > 0 ? static_cast<int>(jobs) : 0;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

}  // namespace dfsim
