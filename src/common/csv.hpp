// Minimal CSV emitter for benchmark output. Every figure bench prints
// `series,x,y` rows so the paper's plots can be regenerated directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dfsim {

class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, const std::vector<std::string>& header);

  /// Writes one row; values are printed with up to 6 significant digits.
  void row(const std::vector<std::string>& cells);

  /// Convenience: series/x/y triple, the common shape of figure data.
  void point(const std::string& series, double x, double y);

  static std::string fmt(double v);

 private:
  std::ostream& out_;
  std::size_t width_;
};

}  // namespace dfsim
