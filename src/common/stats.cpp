#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dfsim {

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double width, std::size_t num_buckets)
    : width_(width), buckets_(num_buckets + 1, 0) {}

void Histogram::add(double x) {
  std::size_t idx = buckets_.size() - 1;  // overflow by default
  if (x >= 0.0) {
    const auto raw = static_cast<std::size_t>(x / width_);
    if (raw < buckets_.size() - 1) idx = raw;
  }
  ++buckets_[idx];
  ++total_;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return width_ * static_cast<double>(i + 1);
    }
  }
  return width_ * static_cast<double>(buckets_.size());
}

}  // namespace dfsim
