#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dfsim {

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double width, std::size_t num_buckets)
    : width_(width), buckets_(num_buckets + 1, 0) {}

void Histogram::add(double x) {
  std::size_t idx = buckets_.size() - 1;  // overflow by default
  if (x >= 0.0) {
    const auto raw = static_cast<std::size_t>(x / width_);
    if (raw < buckets_.size() - 1) idx = raw;
  }
  ++buckets_[idx];
  ++total_;
}

void Histogram::restore(const std::vector<std::uint64_t>& buckets,
                        std::uint64_t total) {
  if (buckets.size() != buckets_.size()) {
    throw std::invalid_argument(
        "Histogram::restore: snapshot has " +
        std::to_string(buckets.size()) + " buckets, this histogram " +
        std::to_string(buckets_.size()));
  }
  buckets_ = buckets;
  total_ = total;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  std::uint64_t seen = 0;
  const std::size_t num_real = buckets_.size() - 1;
  for (std::size_t i = 0; i < num_real; ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate within the bucket, treating its samples as spread
      // uniformly: the k-th of c samples sits at lower + width*(k-0.5)/c.
      // (The old code returned the bucket's upper edge, biasing every
      // percentile upward by up to one bucket width.)
      const double rank = std::max(1.0, std::ceil(target));
      const double k = rank - static_cast<double>(seen);
      return width_ * (static_cast<double>(i) +
                       (k - 0.5) / static_cast<double>(in_bucket));
    }
    seen += in_bucket;
  }
  // The requested rank lands in the overflow bucket: its samples have no
  // upper bound, so report the range's end rather than pretending the
  // last real bucket (or one past it) contained them.
  return width_ * static_cast<double>(num_real);
}

}  // namespace dfsim
