// Fundamental identifier and time types shared by every module.
#pragma once

#include <cstdint>

namespace dfsim {

/// Simulation time, in router cycles.
using Cycle = std::uint64_t;

/// Identifiers are plain 32-bit ints; -1 (kInvalid) means "none".
using NodeId = std::int32_t;    ///< terminal (computing server)
using RouterId = std::int32_t;  ///< router, global numbering
using GroupId = std::int32_t;   ///< supernode
using PortId = std::int32_t;    ///< router port, per-router numbering
using VcId = std::int32_t;      ///< virtual channel index within a port
using PacketId = std::int32_t;  ///< slot in the packet pool
using LinkId = std::int32_t;    ///< flattened (router, output port) or terminal link

inline constexpr std::int32_t kInvalid = -1;

/// Link-level flow control discipline (paper Section I).
enum class FlowControl : std::uint8_t {
  kVirtualCutThrough,  ///< whole-packet units, credit >= packet size
  kWormhole,           ///< flit units, per-packet output-VC allocation
};

/// Port classes of a dragonfly router (h injection/ejection, 2h-1 local,
/// h global ports; paper Section I).
enum class PortClass : std::uint8_t { kLocal, kGlobal, kTerminal };

}  // namespace dfsim
