// Appending wall-clock records to BENCH_sweep.json — the perf-trajectory
// ledger every figure bench and the manifest runner report into. One JSON
// array of {"bench", "wall_s", "jobs"} records (plus "peak_rss_mb" and
// "bytes_per_terminal" memory telemetry when available), grown
// read-modify-write under an exclusive flock so concurrent writers never
// interleave.
#pragma once

#include <cstdint>
#include <string>

namespace dfsim {

/// Peak resident set size of this process so far, in bytes (Linux
/// ru_maxrss; 0 if the platform query fails).
std::uint64_t peak_rss_bytes();

/// JSON string-escape `s` (quotes, backslashes, control characters).
/// Bench names flow in from manifest names and engine-mode suffixes;
/// an unescaped quote would make the ledger unparsable forever.
std::string json_escape(const std::string& s);

/// Append one record to the JSON array at `path`. An empty `path` reads
/// the DF_BENCH_JSON env var (default "BENCH_sweep.json"); an explicitly
/// empty DF_BENCH_JSON disables the report. A file that is not our array
/// (foreign output, or a record truncated by a killed process) is
/// replaced rather than appended to. I/O failures are swallowed — the
/// ledger is best-effort telemetry, never worth failing a run over.
///
/// `peak_rss_mb` <= 0 omits the memory fields; `terminals` > 0 adds
/// "bytes_per_terminal" (peak RSS over the largest shape the bench ran).
/// `extra_json`, when non-empty, is spliced into the record verbatim after
/// the standard fields — it must be a fragment of the form
/// `"key": value, "key2": value2` (no braces). The phase profiler's
/// serial-fraction telemetry rides in this way.
void append_bench_record(const std::string& bench, double wall_s, int jobs,
                         const std::string& path = "",
                         double peak_rss_mb = 0.0,
                         std::int64_t terminals = 0,
                         const std::string& extra_json = "");

}  // namespace dfsim
