// Appending wall-clock records to BENCH_sweep.json — the perf-trajectory
// ledger every figure bench and the manifest runner report into. One JSON
// array of {"bench", "wall_s", "jobs"} records, grown read-modify-write
// under an exclusive flock so concurrent writers never interleave.
#pragma once

#include <string>

namespace dfsim {

/// Append one record to the JSON array at `path`. An empty `path` reads
/// the DF_BENCH_JSON env var (default "BENCH_sweep.json"); an explicitly
/// empty DF_BENCH_JSON disables the report. A file that is not our array
/// (foreign output, or a record truncated by a killed process) is
/// replaced rather than appended to. I/O failures are swallowed — the
/// ledger is best-effort telemetry, never worth failing a run over.
void append_bench_record(const std::string& bench, double wall_s, int jobs,
                         const std::string& path = "");

}  // namespace dfsim
