// Helpers for reading tuning knobs from the environment. Benchmarks use
// these so that `build/bench/figXX` runs at laptop scale by default and at
// paper scale with DF_FULL=1 (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

namespace dfsim {

/// Integer env var, or `fallback` when unset/unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Floating-point env var, or `fallback` when unset/unparsable.
double env_double(const char* name, double fallback);

/// Boolean flag: set and not "0"/"false"/"" -> true.
bool env_flag(const char* name);

/// String env var, or `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

/// Worker-count knob DF_JOBS: a positive integer, or 0 (meaning "auto",
/// i.e. hardware concurrency) when unset, zero, negative or unparsable.
int env_jobs();

}  // namespace dfsim
