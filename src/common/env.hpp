// Helpers for reading tuning knobs from the environment. Benchmarks use
// these so that `build/bench/figXX` runs at laptop scale by default and at
// paper scale with DF_FULL=1 (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

namespace dfsim {

/// Integer env var, or `fallback` when unset. Trailing non-numeric input
/// ("3x") and out-of-range values are rejected — with a warning on
/// stderr — rather than silently truncated to their numeric prefix.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Floating-point env var, or `fallback` when unset. Same trailing-junk
/// and range policy as env_int.
double env_double(const char* name, double fallback);

/// Boolean flag: set and not "0"/"false"/"" -> true.
bool env_flag(const char* name);

/// String env var, or `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

/// Worker-count knob DF_JOBS: a positive integer, or 0 (meaning "auto",
/// i.e. hardware concurrency) when unset, zero, or unparsable. Negative
/// and oversized values fall back to auto WITH a stderr warning instead
/// of being coerced silently.
int env_jobs();

}  // namespace dfsim
