#include "common/bench_json.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dfsim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

void append_bench_record(const std::string& bench, double wall_s, int jobs,
                         const std::string& path_in, double peak_rss_mb,
                         std::int64_t terminals,
                         const std::string& extra_json) {
  std::string path = path_in;
  if (path.empty()) {
    // Explicitly-empty DF_BENCH_JSON disables the report (env_str would
    // fold empty into the fallback).
    const char* path_env = std::getenv("DF_BENCH_JSON");
    path = path_env ? path_env : "BENCH_sweep.json";
  }
  if (path.empty()) return;

  std::ostringstream record;
  record << "  {\"bench\": \"" << json_escape(bench)
         << "\", \"wall_s\": " << wall_s
         << ", \"jobs\": " << jobs;
  if (peak_rss_mb > 0.0) {
    record << ", \"peak_rss_mb\": " << peak_rss_mb;
    if (terminals > 0) {
      record << ", \"bytes_per_terminal\": "
             << static_cast<std::int64_t>(peak_rss_mb * 1024.0 * 1024.0 /
                                          static_cast<double>(terminals));
    }
  }
  if (!extra_json.empty()) record << ", " << extra_json;
  record << "}";

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return;
  ::flock(fd, LOCK_EX);

  std::string existing;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    existing.append(buf, static_cast<std::size_t>(n));
  }
  // Keep the file a valid JSON array: strip the closing bracket of an
  // existing array and append, or start a fresh one. Anything that is
  // not our array — another tool's output, or a record truncated by a
  // killed bench — is replaced rather than appended to, since appending
  // would keep it unparsable forever.
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ' ||
          existing.back() == ']')) {
    existing.pop_back();
  }
  if (!existing.empty() &&
      (existing.front() != '[' || existing.back() != '}')) {
    existing.clear();
  }

  std::string out;
  if (existing.empty()) {
    out = "[\n" + record.str() + "\n]\n";
  } else {
    out = existing + ",\n" + record.str() + "\n]\n";
  }
  ::lseek(fd, 0, SEEK_SET);
  if (::ftruncate(fd, 0) == 0) {
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w = ::write(fd, out.data() + off, out.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }
  ::flock(fd, LOCK_UN);
  ::close(fd);
}

}  // namespace dfsim
