// Binary checkpoint serialization primitives.
//
// Everything the checkpoint subsystem writes goes through these helpers:
// fixed little-endian integer encodings, doubles as IEEE-754 bit patterns
// (restored values are bit-exact, which the resume determinism contract
// requires), and length-prefixed strings. Reads throw std::runtime_error
// with a pointed message on a short or malformed stream, so a truncated
// checkpoint is rejected instead of silently restoring garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfsim::ser {

inline void write_bytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(n));
}

inline void read_bytes(std::istream& is, void* data, std::size_t n,
                       const char* what) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw std::runtime_error(
        std::string("checkpoint truncated while reading ") + what);
  }
}

inline void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, b, 8);
}

inline std::uint64_t read_u64(std::istream& is, const char* what) {
  unsigned char b[8];
  read_bytes(is, b, 8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

inline void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, b, 4);
}

inline std::uint32_t read_u32(std::istream& is, const char* what) {
  unsigned char b[4];
  read_bytes(is, b, 4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

inline void write_i64(std::ostream& os, std::int64_t v) {
  write_u64(os, static_cast<std::uint64_t>(v));
}
inline std::int64_t read_i64(std::istream& is, const char* what) {
  return static_cast<std::int64_t>(read_u64(is, what));
}

inline void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}
inline std::int32_t read_i32(std::istream& is, const char* what) {
  return static_cast<std::int32_t>(read_u32(is, what));
}

inline void write_u8(std::ostream& os, std::uint8_t v) {
  write_bytes(os, &v, 1);
}
inline std::uint8_t read_u8(std::istream& is, const char* what) {
  std::uint8_t v = 0;
  read_bytes(is, &v, 1, what);
  return v;
}

/// Doubles travel as their IEEE-754 bit pattern: restore is bit-exact, so
/// resumed floating-point accumulations continue from the same values.
inline void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(os, bits);
}

inline double read_f64(std::istream& is, const char* what) {
  const std::uint64_t bits = read_u64(is, what);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  write_bytes(os, s.data(), s.size());
}

inline std::string read_string(std::istream& is, const char* what) {
  const std::uint64_t n = read_u64(is, what);
  // A length beyond any sane checkpoint is corruption, not a string; cap
  // before allocating so a flipped length byte cannot demand petabytes.
  if (n > (1ULL << 32)) {
    throw std::runtime_error(
        std::string("checkpoint corrupt: implausible string length for ") +
        what);
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) read_bytes(is, s.data(), static_cast<std::size_t>(n), what);
  return s;
}

/// Structural expectation check for header fields: a checkpoint written
/// for a different shape/config names the first mismatching field.
inline void expect_u64(std::istream& is, std::uint64_t expected,
                       const char* field) {
  const std::uint64_t got = read_u64(is, field);
  if (got != expected) {
    throw std::runtime_error(
        std::string("checkpoint mismatch: ") + field + " is " +
        std::to_string(got) + " in the checkpoint but " +
        std::to_string(expected) + " in this configuration");
  }
}

inline void write_u64_vec(std::ostream& os,
                          const std::vector<std::uint64_t>& v) {
  write_u64(os, v.size());
  for (const auto x : v) write_u64(os, x);
}

inline std::vector<std::uint64_t> read_u64_vec(std::istream& is,
                                               const char* what) {
  const std::uint64_t n = read_u64(is, what);
  if (n > (1ULL << 32)) {
    throw std::runtime_error(
        std::string("checkpoint corrupt: implausible vector length for ") +
        what);
  }
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = read_u64(is, what);
  return v;
}

}  // namespace dfsim::ser
