#include "common/csv.hpp"

#include <cstdio>

namespace dfsim {

CsvWriter::CsvWriter(std::ostream& out, const std::vector<std::string>& header)
    : out_(out), width_(header.size()) {
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::point(const std::string& series, double x, double y) {
  row({series, fmt(x), fmt(y)});
}

std::string CsvWriter::fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return std::string(buf);
}

}  // namespace dfsim
