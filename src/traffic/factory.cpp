#include "traffic/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "traffic/pattern.hpp"

namespace dfsim {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("traffic spec \"" + spec + "\": " + why);
}

/// Parse "+N" / "-N" offset args (empty = default +1). Anything else —
/// including trailing garbage — is rejected with the key's help string.
int parse_offset(const std::string& args, const std::string& spec,
                 const char* help) {
  if (args.empty()) return 1;
  if ((args[0] != '+' && args[0] != '-') || args.size() < 2) {
    bad_spec(spec, std::string("expected ") + help);
  }
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(args, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, std::string("expected ") + help);
  }
  if (pos != args.size()) {
    bad_spec(spec, "trailing characters \"" + args.substr(pos) +
                       "\" after the offset");
  }
  return value;
}

double parse_fraction(const std::string& text, const std::string& spec,
                      const char* what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, std::string(what) + " \"" + text + "\" is not a number");
  }
  if (pos != text.size()) {
    bad_spec(spec, std::string("trailing characters \"") + text.substr(pos) +
                       "\" after the " + what);
  }
  return value;
}

std::unique_ptr<TrafficPattern> build_single(const DragonflyTopology* topo,
                                             const std::string& single,
                                             const std::string& spec,
                                             bool inside_mix);

// --- registry builders ---------------------------------------------------

std::unique_ptr<TrafficPattern> build_uniform(const DragonflyTopology* topo,
                                              const std::string& args,
                                              const std::string& spec) {
  if (!args.empty()) bad_spec(spec, "\"un\" takes no arguments");
  if (topo == nullptr) return nullptr;
  return std::make_unique<UniformPattern>(*topo);
}

std::unique_ptr<TrafficPattern> build_advg(const DragonflyTopology* topo,
                                           const std::string& args,
                                           const std::string& spec) {
  const int offset = parse_offset(args, spec, "advg+<N> or advg-<N>");
  if (topo == nullptr) return nullptr;
  return std::make_unique<AdversarialGlobalPattern>(*topo, offset);
}

std::unique_ptr<TrafficPattern> build_advl(const DragonflyTopology* topo,
                                           const std::string& args,
                                           const std::string& spec) {
  const int offset = parse_offset(args, spec, "advl+<N> or advl-<N>");
  if (topo == nullptr) return nullptr;
  return std::make_unique<AdversarialLocalPattern>(*topo, offset);
}

std::unique_ptr<TrafficPattern> build_shift(const DragonflyTopology* topo,
                                            const std::string& args,
                                            const std::string& spec) {
  const int offset = parse_offset(args, spec, "shift+<N> or shift-<N>");
  if (topo == nullptr) return nullptr;
  const int g = topo->num_groups();
  const int norm = ((offset % g) + g) % g;
  if (norm == 0) {
    bad_spec(spec, "shift offset " + std::to_string(offset) +
                       " is 0 mod g = " + std::to_string(g) +
                       ", which would make every terminal send to itself");
  }
  return std::make_unique<ShiftPattern>(*topo, norm);
}

std::unique_ptr<TrafficPattern> build_hotspot(const DragonflyTopology* topo,
                                              const std::string& args,
                                              const std::string& spec) {
  if (args.empty() || args[0] != ':') {
    bad_spec(spec,
             "expected hotspot:<fraction>[@<group>], e.g. hotspot:0.2@7");
  }
  const std::string body = args.substr(1);
  const std::size_t at = body.find('@');
  const std::string frac_text = body.substr(0, at);
  if (frac_text.empty()) bad_spec(spec, "hotspot fraction is missing");
  const double fraction = parse_fraction(frac_text, spec, "hotspot fraction");
  if (!(fraction > 0.0) || fraction > 1.0) {
    bad_spec(spec, "hotspot fraction must be in (0, 1], got " + frac_text);
  }
  int group = 0;
  if (at != std::string::npos) {
    const std::string group_text = body.substr(at + 1);
    if (group_text.empty() ||
        group_text.find_first_not_of("0123456789") != std::string::npos) {
      bad_spec(spec, "hotspot group \"" + group_text +
                         "\" is not a non-negative integer");
    }
    try {
      group = std::stoi(group_text);
    } catch (const std::exception&) {
      bad_spec(spec, "hotspot group \"" + group_text + "\" is out of range");
    }
  }
  if (topo == nullptr) return nullptr;
  try {
    return std::make_unique<HotspotPattern>(*topo, fraction, group);
  } catch (const std::invalid_argument& e) {
    bad_spec(spec, e.what());
  }
}

template <BitPermutationPattern::Kind kKind>
std::unique_ptr<TrafficPattern> build_bitperm(const DragonflyTopology* topo,
                                              const std::string& args,
                                              const std::string& spec) {
  if (!args.empty()) {
    bad_spec(spec, "bit-permutation patterns take no arguments");
  }
  if (topo == nullptr) return nullptr;
  return std::make_unique<BitPermutationPattern>(*topo, kKind);
}

std::unique_ptr<TrafficPattern> build_mixed(const DragonflyTopology* topo,
                                            const std::string& args,
                                            const std::string& spec) {
  double fraction = 0.5;
  if (!args.empty()) {
    if (args[0] != ':') bad_spec(spec, "expected mixed[:<global-fraction>]");
    fraction = parse_fraction(args.substr(1), spec, "mixed global fraction");
    if (fraction < 0.0 || fraction > 1.0) {
      bad_spec(spec, "mixed global fraction must be in [0, 1]");
    }
  }
  if (topo == nullptr) return nullptr;
  return std::make_unique<MixedAdversarialPattern>(*topo, fraction);
}

std::unique_ptr<TrafficPattern> build_mix(const DragonflyTopology* topo,
                                          const std::string& args,
                                          const std::string& spec) {
  if (args.empty() || args[0] != ':' || args.size() < 2) {
    bad_spec(spec,
             "expected mix:<spec>=<weight>[,<spec>=<weight>...], e.g. "
             "mix:un=0.7,advg+1=0.3");
  }
  std::vector<WeightedMixPattern::Component> components;
  std::string body = args.substr(1);
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string comp = body.substr(start, comma - start);
    // Split at the LAST '=' so component specs may themselves contain
    // '='-free arguments of any shape.
    const std::size_t eq = comp.rfind('=');
    if (comp.empty() || eq == std::string::npos || eq == 0 ||
        eq + 1 == comp.size()) {
      bad_spec(spec, "mix component \"" + comp +
                         "\" is not of the form <spec>=<weight>");
    }
    const double weight =
        parse_fraction(comp.substr(eq + 1), spec, "mix weight");
    if (!(weight > 0.0)) {
      bad_spec(spec, "mix weight in \"" + comp + "\" must be positive");
    }
    auto pattern = build_single(topo, comp.substr(0, eq), spec,
                                /*inside_mix=*/true);
    if (topo != nullptr) {
      components.push_back({std::move(pattern), weight});
    }
    start = comma + 1;
    if (comma == body.size()) break;
  }
  if (topo == nullptr) return nullptr;
  return std::make_unique<WeightedMixPattern>(std::move(components));
}

// -------------------------------------------------------------------------

std::unique_ptr<TrafficPattern> build_single(const DragonflyTopology* topo,
                                             const std::string& single,
                                             const std::string& spec,
                                             bool inside_mix) {
  const std::string low = lower(single);
  std::size_t key_len = 0;
  while (key_len < low.size() &&
         std::isalpha(static_cast<unsigned char>(low[key_len]))) {
    ++key_len;
  }
  const std::string key = low.substr(0, key_len);
  const std::string args = low.substr(key_len);
  if (key.empty()) {
    bad_spec(spec, "pattern name missing in \"" + single + "\" (known: " +
                       traffic_pattern_names() + ")");
  }
  for (const TrafficPatternEntry& entry : traffic_pattern_registry()) {
    if (key != entry.key && key != entry.alias) continue;
    if (inside_mix && entry.build == &build_mix) {
      bad_spec(spec, "mix components cannot be mixes themselves");
    }
    return entry.build(topo, args, spec);
  }
  bad_spec(spec, "unknown pattern \"" + key + "\" (known: " +
                     traffic_pattern_names() + ")");
}

}  // namespace

const std::vector<TrafficPatternEntry>& traffic_pattern_registry() {
  static const std::vector<TrafficPatternEntry> kRegistry = {
      {"un", "uniform", "un", &build_uniform},
      {"advg", "", "advg[+N|-N]", &build_advg},
      {"advl", "", "advl[+N|-N]", &build_advl},
      {"shift", "", "shift[+N|-N]", &build_shift},
      {"hotspot", "hot", "hotspot:<frac>[@<group>]", &build_hotspot},
      {"shuffle", "", "shuffle",
       &build_bitperm<BitPermutationPattern::Kind::kShuffle>},
      {"transpose", "", "transpose",
       &build_bitperm<BitPermutationPattern::Kind::kTranspose>},
      {"bitcomp", "", "bitcomp",
       &build_bitperm<BitPermutationPattern::Kind::kComplement>},
      {"bitrev", "", "bitrev",
       &build_bitperm<BitPermutationPattern::Kind::kReverse>},
      {"mixed", "", "mixed[:<global-frac>]", &build_mixed},
      {"mix", "", "mix:<spec>=<w>,...", &build_mix},
  };
  return kRegistry;
}

std::string traffic_pattern_names() {
  std::string names;
  for (const TrafficPatternEntry& entry : traffic_pattern_registry()) {
    if (!names.empty()) names += ", ";
    names += entry.key;
  }
  return names;
}

std::unique_ptr<TrafficPattern> make_pattern_spec(
    const DragonflyTopology& topo, const std::string& spec) {
  if (spec.empty()) {
    bad_spec(spec, "empty (known patterns: " + traffic_pattern_names() + ")");
  }
  return build_single(&topo, spec, spec, /*inside_mix=*/false);
}

void validate_pattern_spec(const std::string& spec) {
  // The historical four-argument names route through make_pattern's
  // legacy branches, whose extra parameters (offset, global fraction)
  // live outside the spec string — accept them as-is.
  static const char* kLegacy[] = {"uniform", "UN",   "shift", "SHIFT",
                                  "hotspot", "HOT",  "advg",  "ADVG",
                                  "advl",    "ADVL", "mixed", "MIX"};
  for (const char* name : kLegacy) {
    if (spec == name) return;
  }
  if (spec.empty()) {
    bad_spec(spec, "empty (known patterns: " + traffic_pattern_names() + ")");
  }
  build_single(nullptr, spec, spec, /*inside_mix=*/false);
}

}  // namespace dfsim
