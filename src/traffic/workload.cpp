#include "traffic/workload.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/serialize.hpp"

namespace dfsim {

struct Workload::Job {
  enum class Motif { kAllToAll, kRing, kHalo2d, kShift };
  Motif motif = Motif::kAllToAll;
  std::string label;             ///< canonical motif text, e.g. "halo2d:4x8"
  std::vector<NodeId> members;   ///< placement order (defines ring/grid)
  int rows = 0, cols = 0;        ///< halo2d grid (0 = auto-factor)
  int shift = 1;                 ///< shift offset (normalized per job)
  int size_min = 1, size_max = 1;  ///< packets per message
  bool reply = false;
  double load = -1.0;            ///< -1 = inherit the config load
};

namespace {

using Job = Workload::Job;

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("workload spec \"" + spec + "\": " + why);
}

int parse_int(const std::string& text, const std::string& spec,
              const std::string& what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    bad_spec(spec, what + " \"" + text + "\" is not a non-negative integer");
  }
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    bad_spec(spec, what + " \"" + text + "\" is out of range");
  }
}

double parse_load(const std::string& text, const std::string& spec) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "job load \"" + text + "\" is not a number");
  }
  if (pos != text.size()) {
    bad_spec(spec, "trailing characters \"" + text.substr(pos) +
                       "\" after the job load");
  }
  if (!(value >= 0.0) || value > 1.0) {
    bad_spec(spec, "job load must be in [0, 1], got " + text);
  }
  return value;
}

/// Parse one motif spec: name[:RxC][:size=K|MIN-MAX][:reply=0|1].
/// Members/placement are filled in later by the caller.
Job parse_motif(const std::string& text, const std::string& spec,
                bool default_reply) {
  Job job;
  job.reply = default_reply;
  if (text.empty()) {
    bad_spec(spec, "motif is missing (known motifs: alltoall, "
                   "ring-allreduce, halo2d, shift)");
  }
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) colon = text.size();
    tokens.push_back(text.substr(start, colon - start));
    start = colon + 1;
    if (colon == text.size()) break;
  }

  const std::string& head = tokens[0];
  if (head == "alltoall" || head == "a2a" || head == "un" ||
      head == "uniform") {
    job.motif = Job::Motif::kAllToAll;
    job.label = "alltoall";
  } else if (head == "ring-allreduce" || head == "ring") {
    job.motif = Job::Motif::kRing;
    job.label = "ring-allreduce";
  } else if (head == "halo2d" || head == "halo") {
    job.motif = Job::Motif::kHalo2d;
    job.label = "halo2d";
  } else if (head.rfind("shift", 0) == 0) {
    job.motif = Job::Motif::kShift;
    job.label = head;
    const std::string offs = head.substr(5);
    if (!offs.empty()) {
      if ((offs[0] != '+' && offs[0] != '-') || offs.size() < 2) {
        bad_spec(spec, "expected shift+<N> or shift-<N>, got \"" + head +
                           "\"");
      }
      std::size_t pos = 0;
      try {
        job.shift = std::stoi(offs, &pos);
      } catch (const std::exception&) {
        bad_spec(spec, "shift offset \"" + offs + "\" is not an integer");
      }
      if (pos != offs.size()) {
        bad_spec(spec, "trailing characters \"" + offs.substr(pos) +
                           "\" after the shift offset");
      }
    }
  } else {
    bad_spec(spec, "unknown motif \"" + head +
                       "\" (known motifs: alltoall, ring-allreduce, "
                       "halo2d, shift)");
  }

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("size=", 0) == 0) {
      const std::string body = tok.substr(5);
      const std::size_t dash = body.find('-');
      if (dash == std::string::npos) {
        job.size_min = job.size_max =
            parse_int(body, spec, "message size");
      } else {
        job.size_min = parse_int(body.substr(0, dash), spec,
                                 "message size minimum");
        job.size_max = parse_int(body.substr(dash + 1), spec,
                                 "message size maximum");
      }
      if (job.size_min < 1 || job.size_max < job.size_min) {
        bad_spec(spec, "message size range must satisfy 1 <= min <= max, "
                       "got \"" + tok + "\"");
      }
      job.label += ":" + tok;
    } else if (tok.rfind("reply=", 0) == 0) {
      const std::string body = tok.substr(6);
      if (body == "0") {
        job.reply = false;
      } else if (body == "1") {
        job.reply = true;
      } else {
        bad_spec(spec, "expected reply=0 or reply=1, got \"" + tok + "\"");
      }
    } else if (job.motif == Job::Motif::kHalo2d && job.rows == 0 &&
               tok.find('x') != std::string::npos) {
      const std::size_t x = tok.find('x');
      job.rows = parse_int(tok.substr(0, x), spec, "halo2d grid rows");
      job.cols = parse_int(tok.substr(x + 1), spec, "halo2d grid columns");
      if (job.rows < 1 || job.cols < 1) {
        bad_spec(spec, "halo2d grid \"" + tok +
                           "\" must have positive dimensions");
      }
      job.label += ":" + tok;
    } else {
      bad_spec(spec, "unexpected motif argument \"" + tok +
                         "\" (expected [:RxC] [:size=K|MIN-MAX] "
                         "[:reply=0|1])");
    }
  }
  return job;
}

/// Resolve topology-dependent per-job structure once the member list is
/// known: minimum size, shift normalization, halo grid factorization.
void finalize_job(Job& job, int index, const std::string& spec) {
  const int n = static_cast<int>(job.members.size());
  if (n < 2) {
    bad_spec(spec, "job " + std::to_string(index) + " has " +
                       std::to_string(n) +
                       " terminal(s); every job needs at least 2");
  }
  switch (job.motif) {
    case Job::Motif::kShift: {
      const int norm = ((job.shift % n) + n) % n;
      if (norm == 0) {
        bad_spec(spec, "job " + std::to_string(index) + " shift offset " +
                           std::to_string(job.shift) + " is 0 mod " +
                           std::to_string(n) +
                           ", which would make every terminal send to "
                           "itself");
      }
      job.shift = norm;
      break;
    }
    case Job::Motif::kHalo2d: {
      if (job.rows == 0) {
        // Auto-factor: the most square grid (largest divisor <= sqrt(n)).
        int best = 1;
        for (int r = 1; r * r <= n; ++r) {
          if (n % r == 0) best = r;
        }
        job.rows = best;
        job.cols = n / best;
      } else if (job.rows * job.cols != n) {
        bad_spec(spec, "job " + std::to_string(index) + " halo2d grid " +
                           std::to_string(job.rows) + "x" +
                           std::to_string(job.cols) + " = " +
                           std::to_string(job.rows * job.cols) +
                           " does not match the job's " +
                           std::to_string(n) + " terminals");
      }
      break;
    }
    default:
      break;
  }
}

/// Split `count` terminals into `jobs` contiguous block sizes (earlier
/// jobs absorb the remainder).
std::vector<int> block_sizes(int count, int jobs) {
  std::vector<int> sizes(static_cast<std::size_t>(jobs), count / jobs);
  for (int j = 0; j < count % jobs; ++j) ++sizes[static_cast<std::size_t>(j)];
  return sizes;
}

// --- trace loading -------------------------------------------------------

std::vector<Workload::TraceRow> load_binary_trace(std::istream& is,
                                                  const std::string& path) {
  const std::uint64_t count = ser::read_u64(is, "trace row count");
  if (count > (1ULL << 32)) {
    throw std::invalid_argument("trace file \"" + path +
                                "\" row count is implausible (" +
                                std::to_string(count) + ")");
  }
  std::vector<Workload::TraceRow> rows(static_cast<std::size_t>(count));
  try {
    for (auto& row : rows) {
      row.cycle = ser::read_u64(is, "trace row cycle");
      row.src = ser::read_i32(is, "trace row src");
      row.dst = ser::read_i32(is, "trace row dst");
      row.size_phits = ser::read_i32(is, "trace row size");
    }
  } catch (const std::runtime_error& e) {
    throw std::invalid_argument("trace file \"" + path + "\": " + e.what());
  }
  return rows;
}

std::vector<Workload::TraceRow> load_csv_trace(std::istream& is,
                                               const std::string& path) {
  std::vector<Workload::TraceRow> rows;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Workload::TraceRow row;
    unsigned long long cycle = 0;
    char trailing = 0;
    const int got = std::sscanf(line.c_str(), " %llu , %d , %d , %d %c",
                                &cycle, &row.src, &row.dst, &row.size_phits,
                                &trailing);
    if (got != 4) {
      throw std::invalid_argument(
          "trace file \"" + path + "\" line " + std::to_string(lineno) +
          ": expected \"cycle,src,dst,size\", got \"" + line + "\"");
    }
    row.cycle = cycle;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Workload::TraceRow> load_trace(const std::string& path,
                                           const std::string& spec,
                                           int num_terminals) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    bad_spec(spec, "trace file \"" + path + "\" cannot be opened");
  }
  char magic[8] = {};
  is.read(magic, 8);
  std::vector<Workload::TraceRow> rows;
  if (is.gcount() == 8 && std::memcmp(magic, kTraceMagic, 8) == 0) {
    rows = load_binary_trace(is, path);
  } else {
    is.clear();
    is.seekg(0);
    rows = load_csv_trace(is, path);
  }
  Cycle prev = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const std::string where =
        "trace file \"" + path + "\" row " + std::to_string(i);
    if (row.src < 0 || row.src >= num_terminals || row.dst < 0 ||
        row.dst >= num_terminals) {
      throw std::invalid_argument(
          where + ": terminal ids must be in [0, " +
          std::to_string(num_terminals) + "), got src=" +
          std::to_string(row.src) + " dst=" + std::to_string(row.dst));
    }
    if (row.src == row.dst) {
      throw std::invalid_argument(where + ": src equals dst (" +
                                  std::to_string(row.src) + ")");
    }
    if (row.size_phits < 1) {
      throw std::invalid_argument(where + ": size must be >= 1 phit, got " +
                                  std::to_string(row.size_phits));
    }
    if (row.cycle < prev) {
      throw std::invalid_argument(where +
                                  ": cycles must be non-decreasing (" +
                                  std::to_string(row.cycle) + " after " +
                                  std::to_string(prev) + ")");
    }
    prev = row.cycle;
  }
  return rows;
}

// --- spec parsing --------------------------------------------------------

struct ParsedJobs {
  int num_jobs = 0;
  std::string place = "contig";
  std::uint64_t seed = 1;  ///< fixed default so placement is seed-stable
  std::vector<Job> jobs;   ///< parsed motifs, one per '|' entry
};

ParsedJobs parse_jobs(const std::string& args, const std::string& spec) {
  ParsedJobs out;
  std::size_t pos = 0;
  std::size_t colon = args.find(':');
  out.num_jobs = parse_int(args.substr(0, colon), spec, "job count");
  if (out.num_jobs < 1) bad_spec(spec, "job count must be >= 1");
  if (colon == std::string::npos) {
    bad_spec(spec, "job list is missing (expected jobs:<J>[:place=contig|"
                   "random|rr][:seed=<S>]:<job>|<job>|...)");
  }
  pos = colon + 1;
  // Consume place=/seed= fields; the first segment that is neither marks
  // the start of the '|'-separated job list (which may itself contain
  // ':', so it runs to the end of the spec).
  while (true) {
    colon = args.find(':', pos);
    const std::string field =
        args.substr(pos, colon == std::string::npos ? colon : colon - pos);
    if (field.rfind("place=", 0) == 0) {
      out.place = field.substr(6);
      if (out.place != "contig" && out.place != "random" &&
          out.place != "rr") {
        bad_spec(spec, "unknown placement policy \"" + out.place +
                           "\" (known: contig, random, rr)");
      }
    } else if (field.rfind("seed=", 0) == 0) {
      out.seed = static_cast<std::uint64_t>(
          parse_int(field.substr(5), spec, "placement seed"));
    } else {
      break;
    }
    if (colon == std::string::npos) {
      bad_spec(spec, "job list is missing after the placement fields");
    }
    pos = colon + 1;
  }
  const std::string list = args.substr(pos);
  if (list.empty()) bad_spec(spec, "job list is empty");
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t bar = list.find('|', start);
    if (bar == std::string::npos) bar = list.size();
    const std::string entry = list.substr(start, bar - start);
    if (entry.empty()) {
      bad_spec(spec, "empty job entry in the job list");
    }
    const std::size_t at = entry.rfind('@');
    Job job = parse_motif(at == std::string::npos ? entry
                                                  : entry.substr(0, at),
                          spec, /*default_reply=*/false);
    if (at != std::string::npos) {
      job.load = parse_load(entry.substr(at + 1), spec);
    }
    out.jobs.push_back(std::move(job));
    start = bar + 1;
    if (bar == list.size()) break;
  }
  if (static_cast<int>(out.jobs.size()) > out.num_jobs) {
    bad_spec(spec, "more job entries (" + std::to_string(out.jobs.size()) +
                       ") than jobs (" + std::to_string(out.num_jobs) +
                       ")");
  }
  return out;
}

}  // namespace

const std::vector<WorkloadEntry>& workload_registry() {
  static const std::vector<WorkloadEntry> kRegistry = {
      {"coll", "",
       "coll:<alltoall|ring-allreduce|halo2d[:RxC]|shift[+N]>"
       "[:size=K|MIN-MAX][:reply=0|1]"},
      {"jobs", "",
       "jobs:<J>[:place=contig|random|rr][:seed=<S>]:<job>|<job>|... "
       "(job = motif[:size=..][:reply=..][@load])"},
      {"trace", "", "trace:<file> (CSV or binary cycle,src,dst,size rows)"},
  };
  return kRegistry;
}

std::string workload_names() {
  std::string names;
  for (const WorkloadEntry& entry : workload_registry()) {
    if (!names.empty()) names += ", ";
    names += entry.key;
  }
  return names;
}

std::unique_ptr<Workload> make_workload(const DragonflyTopology* topo,
                                        const std::string& spec) {
  if (spec.empty()) {
    bad_spec(spec, "empty (known workloads: " + workload_names() + ")");
  }
  const std::size_t colon = spec.find(':');
  const std::string key = lower(spec.substr(0, colon));
  const std::string args =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);

  const bool known = std::any_of(
      workload_registry().begin(), workload_registry().end(),
      [&](const WorkloadEntry& e) { return key == e.key || key == e.alias; });
  if (!known) {
    bad_spec(spec, "unknown workload \"" + key + "\" (known: " +
                       workload_names() + ")");
  }

  std::unique_ptr<Workload> w(new Workload());
  w->spec_ = spec;

  if (key == "trace") {
    if (args.empty()) {
      bad_spec(spec, "trace file path is missing (expected trace:<file>)");
    }
    w->trace_ = true;
    if (topo == nullptr) return nullptr;
    const int n = topo->num_terminals();
    w->num_terminals_ = n;
    w->rows_ = load_trace(args, spec, n);
    // A trace is one pseudo-job spanning every terminal, so per-job
    // metrics and the delivered-totals comparison in the nightly smoke
    // have a job to attribute to.
    Job job;
    job.label = "trace";
    job.members.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) job.members[static_cast<std::size_t>(t)] = t;
    w->jobs_.push_back(std::move(job));
    w->job_of_.assign(static_cast<std::size_t>(n), 0);
    w->rank_of_.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) w->rank_of_[static_cast<std::size_t>(t)] = t;
    return w;
  }

  if (key == "coll") {
    Job job = parse_motif(lower(args), spec, /*default_reply=*/true);
    if (topo == nullptr) return nullptr;
    const int n = topo->num_terminals();
    w->num_terminals_ = n;
    job.members.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) job.members[static_cast<std::size_t>(t)] = t;
    finalize_job(job, 0, spec);
    w->jobs_.push_back(std::move(job));
    w->job_of_.assign(static_cast<std::size_t>(n), 0);
    w->rank_of_.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) w->rank_of_[static_cast<std::size_t>(t)] = t;
    return w;
  }

  // jobs:J
  ParsedJobs parsed = parse_jobs(lower(args), spec);
  if (topo == nullptr) return nullptr;
  const int n = topo->num_terminals();
  const int num_jobs = parsed.num_jobs;
  if (2 * num_jobs > n) {
    bad_spec(spec, std::to_string(num_jobs) + " jobs need at least " +
                       std::to_string(2 * num_jobs) +
                       " terminals, but the topology has " +
                       std::to_string(n));
  }
  w->num_terminals_ = n;

  // Assign each job its motif (entries cycle round-robin when fewer than
  // J were given), then place terminals.
  w->jobs_.resize(static_cast<std::size_t>(num_jobs));
  for (int j = 0; j < num_jobs; ++j) {
    w->jobs_[static_cast<std::size_t>(j)] =
        parsed.jobs[static_cast<std::size_t>(j) % parsed.jobs.size()];
  }

  if (parsed.place == "rr") {
    for (int t = 0; t < n; ++t) {
      w->jobs_[static_cast<std::size_t>(t % num_jobs)].members.push_back(t);
    }
  } else {
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) order[static_cast<std::size_t>(t)] = t;
    if (parsed.place == "random") {
      // Fisher-Yates with a spec-local seed (NOT the simulation seed):
      // sweep points that derive per-point seeds keep one placement.
      Rng rng(mix64(0xdf0b1acede5eedULL, parsed.seed));
      for (int i = n - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform(static_cast<std::uint64_t>(i) + 1));
        std::swap(order[static_cast<std::size_t>(i)], order[j]);
      }
    }
    const std::vector<int> sizes = block_sizes(n, num_jobs);
    std::size_t next = 0;
    for (int j = 0; j < num_jobs; ++j) {
      auto& members = w->jobs_[static_cast<std::size_t>(j)].members;
      members.assign(order.begin() + static_cast<std::ptrdiff_t>(next),
                     order.begin() + static_cast<std::ptrdiff_t>(
                                         next + static_cast<std::size_t>(
                                                    sizes[static_cast<
                                                        std::size_t>(j)])));
      next += static_cast<std::size_t>(sizes[static_cast<std::size_t>(j)]);
    }
  }

  w->job_of_.assign(static_cast<std::size_t>(n), -1);
  w->rank_of_.assign(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < num_jobs; ++j) {
    Job& job = w->jobs_[static_cast<std::size_t>(j)];
    finalize_job(job, j, spec);
    for (std::size_t r = 0; r < job.members.size(); ++r) {
      w->job_of_[static_cast<std::size_t>(job.members[r])] = j;
      w->rank_of_[static_cast<std::size_t>(job.members[r])] =
          static_cast<std::int32_t>(r);
    }
  }
  return w;
}

void validate_workload_spec(const std::string& spec) {
  make_workload(nullptr, spec);
}

Workload::~Workload() = default;

NodeId Workload::dest(NodeId src, Rng& rng) {
  if (trace_) {
    // Trace runs disable Bernoulli injection, so fresh draws only happen
    // if a caller drives the pattern directly; honor the interface with
    // a uniform draw.
    const auto pick = static_cast<NodeId>(
        rng.uniform(static_cast<std::uint64_t>(num_terminals_ - 1)));
    return pick >= src ? pick + 1 : pick;
  }
  const Job& job = jobs_[static_cast<std::size_t>(job_of_[
      static_cast<std::size_t>(src)])];
  const int n = static_cast<int>(job.members.size());
  const int rank = rank_of_[static_cast<std::size_t>(src)];
  switch (job.motif) {
    case Job::Motif::kAllToAll: {
      const auto pick = static_cast<int>(
          rng.uniform(static_cast<std::uint64_t>(n - 1)));
      return job.members[static_cast<std::size_t>(
          pick >= rank ? pick + 1 : pick)];
    }
    case Job::Motif::kRing:
      return job.members[static_cast<std::size_t>((rank + 1) % n)];
    case Job::Motif::kShift:
      return job.members[static_cast<std::size_t>((rank + job.shift) % n)];
    case Job::Motif::kHalo2d: {
      const int row = rank / job.cols;
      const int col = rank % job.cols;
      const int candidates[4] = {
          ((row + job.rows - 1) % job.rows) * job.cols + col,  // up
          ((row + 1) % job.rows) * job.cols + col,             // down
          row * job.cols + (col + job.cols - 1) % job.cols,    // left
          row * job.cols + (col + 1) % job.cols,               // right
      };
      int unique[4];
      int count = 0;
      for (const int c : candidates) {
        if (c == rank) continue;
        bool seen = false;
        for (int k = 0; k < count; ++k) seen = seen || unique[k] == c;
        if (!seen) unique[count++] = c;
      }
      const auto pick = static_cast<int>(
          rng.uniform(static_cast<std::uint64_t>(count)));
      return job.members[static_cast<std::size_t>(unique[pick])];
    }
  }
  return job.members[0];  // unreachable
}

int Workload::num_jobs() const { return static_cast<int>(jobs_.size()); }

const std::vector<std::int32_t>& Workload::job_of_terminal() const {
  return job_of_;
}

std::vector<std::int32_t> Workload::job_sizes() const {
  std::vector<std::int32_t> sizes;
  sizes.reserve(jobs_.size());
  for (const Job& job : jobs_) {
    sizes.push_back(static_cast<std::int32_t>(job.members.size()));
  }
  return sizes;
}

std::string Workload::job_label(int job) const {
  return "job" + std::to_string(job) + ":" +
         jobs_[static_cast<std::size_t>(job)].label;
}

std::vector<double> Workload::terminal_loads(double base_load) const {
  if (trace_) return {};
  const bool any_explicit = std::any_of(
      jobs_.begin(), jobs_.end(), [](const Job& j) { return j.load >= 0.0; });
  if (!any_explicit) return {};
  std::vector<double> loads(static_cast<std::size_t>(num_terminals_), 0.0);
  for (const Job& job : jobs_) {
    const double load = job.load >= 0.0 ? job.load : base_load;
    for (const NodeId t : job.members) {
      loads[static_cast<std::size_t>(t)] = load;
    }
  }
  return loads;
}

bool Workload::wants_reply(NodeId src) const {
  return jobs_[static_cast<std::size_t>(
                   job_of_[static_cast<std::size_t>(src)])]
      .reply;
}

int Workload::message_packets(NodeId src, Rng& rng) const {
  const Job& job = jobs_[static_cast<std::size_t>(
      job_of_[static_cast<std::size_t>(src)])];
  if (job.size_min == job.size_max) return job.size_min;
  return job.size_min +
         static_cast<int>(rng.uniform(static_cast<std::uint64_t>(
             job.size_max - job.size_min + 1)));
}

void Workload::drain_trace(
    Cycle now,
    const std::function<void(NodeId, NodeId, int)>& emit) {
  while (cursor_ < rows_.size() && rows_[cursor_].cycle <= now) {
    const TraceRow& row = rows_[cursor_];
    emit(row.src, row.dst, row.size_phits);
    ++cursor_;
  }
}

void Workload::set_cursor(std::uint64_t cursor) {
  if (cursor > rows_.size()) {
    throw std::invalid_argument(
        "workload cursor " + std::to_string(cursor) +
        " is beyond the trace's " + std::to_string(rows_.size()) + " rows");
  }
  cursor_ = cursor;
}

}  // namespace dfsim
