// Registry-based construction of traffic patterns from DF_TRAFFIC spec
// strings (mirroring src/routing/factory.cpp for routing mechanisms).
//
// Grammar (case-insensitive keys):
//
//   spec      := single | "mix:" comp ("," comp)*
//   comp      := single "=" weight            (weights normalized)
//   single    := key args
//
//   un | uniform               uniform random
//   advg[+N|-N]                adversarial-global, offset default +1
//   advl[+N|-N]                adversarial-local, offset default +1
//   shift[+N|-N]               group-shift permutation, offset default +1
//                              (normalized mod g; ≡ 0 rejected: self-send)
//   hotspot:F[@G] | hot:...    fraction F in (0,1] to group G (default 0)
//   shuffle | transpose        bit permutations on the low floor(log2(N))
//   bitcomp | bitrev           bits of the terminal index
//   mixed[:F]                  legacy Fig. 6/9 mix: ADVG+h share F (0.5)
//
// Examples: "un", "advg+1", "hotspot:0.2@7", "mix:un=0.7,advg+1=0.3".
//
// Every entry parses its own arguments and throws std::invalid_argument
// with a pointed message (the offending spec, what was expected, and on
// an unknown key the full name list). validate_pattern_spec() runs the
// same parsers without a topology, so configs can be rejected before
// anything is built; topology-dependent range checks (hot group < g,
// degenerate offsets) still happen at construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class TrafficPattern;

/// One registry row. `build` parses `args` (everything after the key) and
/// returns the pattern — or nullptr when `topo` is null (parse-only mode,
/// used by validate_pattern_spec), still throwing on malformed args.
struct TrafficPatternEntry {
  const char* key;       ///< canonical lower-case name
  const char* alias;     ///< optional second name ("" = none)
  const char* help;      ///< spec syntax, e.g. "hotspot:<frac>[@<group>]"
  std::unique_ptr<TrafficPattern> (*build)(const DragonflyTopology* topo,
                                           const std::string& args,
                                           const std::string& spec);
};

/// The pattern registry, in documentation order. New patterns register
/// here and nowhere else — the spec parser, the error messages and the
/// README table all derive from this list.
const std::vector<TrafficPatternEntry>& traffic_pattern_registry();

/// Comma-separated canonical keys (for error messages and --help output).
std::string traffic_pattern_names();

/// Resolve a spec string against a topology. Throws std::invalid_argument
/// with a pointed message on any parse or range error.
std::unique_ptr<TrafficPattern> make_pattern_spec(
    const DragonflyTopology& topo, const std::string& spec);

/// Syntax-check a spec without building anything (no topology needed).
/// Accepts every string make_pattern_spec could accept on some topology;
/// throws std::invalid_argument on anything else. Also accepts the
/// historical four-argument names ("uniform", "mixed", ...) so
/// SimConfig::validate can take either form.
void validate_pattern_spec(const std::string& spec);

}  // namespace dfsim
