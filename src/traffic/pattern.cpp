#include "traffic/pattern.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "traffic/factory.hpp"

namespace dfsim {

namespace {

/// Normalize an adversarial offset into [0, modulus) (negative offsets
/// wrap, matching the mod-arithmetic the patterns document).
int normalize_offset(int offset, int modulus) {
  return ((offset % modulus) + modulus) % modulus;
}

/// Uniform draw over [0, count) excluding `skip` (0 <= skip < count).
int uniform_excluding(Rng& rng, int count, int skip) {
  auto d = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(count - 1)));
  if (d >= skip) ++d;
  return d;
}

}  // namespace

NodeId UniformPattern::dest(NodeId src, Rng& rng) {
  const int n = topo_.num_terminals();
  // Uniform over all terminals except src.
  auto d = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n - 1)));
  if (d >= src) ++d;
  return d;
}

AdversarialGlobalPattern::AdversarialGlobalPattern(
    const DragonflyTopology& topo, int offset)
    : topo_(topo), offset_(normalize_offset(offset, topo.num_groups())) {
  if (offset_ == 0 &&
      topo_.routers_per_group() * topo_.terminals_per_router() < 2) {
    throw std::invalid_argument(
        "ADVG offset ≡ 0 (mod g) with a single-terminal group leaves no "
        "destination other than the source");
  }
}

NodeId AdversarialGlobalPattern::dest(NodeId src, Rng& rng) {
  const GroupId g = topo_.group_of_terminal(src);
  const GroupId target = (g + offset_) % topo_.num_groups();
  const int per_group =
      topo_.routers_per_group() * topo_.terminals_per_router();
  if (target == g) {
    // Degenerate offset (≡ 0 mod g): honor the never-self contract by
    // drawing over the group's other terminals.
    const int src_within = src - g * per_group;
    return static_cast<NodeId>(
        g * per_group + uniform_excluding(rng, per_group, src_within));
  }
  const auto within =
      static_cast<int>(rng.uniform(static_cast<std::uint64_t>(per_group)));
  return static_cast<NodeId>(target * per_group + within);
}

AdversarialLocalPattern::AdversarialLocalPattern(
    const DragonflyTopology& topo, int offset)
    : topo_(topo),
      offset_(normalize_offset(offset, topo.routers_per_group())) {
  if (offset_ == 0 && topo_.terminals_per_router() < 2) {
    throw std::invalid_argument(
        "ADVL offset ≡ 0 (mod a) with p = 1 leaves no destination other "
        "than the source");
  }
}

NodeId AdversarialLocalPattern::dest(NodeId src, Rng& rng) {
  const RouterId r = topo_.router_of_terminal(src);
  const GroupId g = topo_.group_of_router(r);
  const int target_local =
      (topo_.local_index(r) + offset_) % topo_.routers_per_group();
  const RouterId target = topo_.router_id(g, target_local);
  const int p = topo_.terminals_per_router();
  if (target == r) {
    // Degenerate offset (≡ 0 mod a): draw over the router's other slots.
    const int src_slot = src - r * p;
    return topo_.terminal_id(target, uniform_excluding(rng, p, src_slot));
  }
  const auto slot =
      static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p)));
  return topo_.terminal_id(target, slot);
}

MixedAdversarialPattern::MixedAdversarialPattern(
    const DragonflyTopology& topo, double global_fraction)
    : global_fraction_(global_fraction),
      global_(topo, topo.h()),
      local_(topo, 1) {}

NodeId MixedAdversarialPattern::dest(NodeId src, Rng& rng) {
  if (rng.bernoulli(global_fraction_)) return global_.dest(src, rng);
  return local_.dest(src, rng);
}

std::string MixedAdversarialPattern::name() const {
  return "MIX(" + std::to_string(static_cast<int>(global_fraction_ * 100)) +
         "%G)";
}

NodeId ShiftPattern::dest(NodeId src, Rng& /*rng*/) {
  const int per_group =
      topo_.routers_per_group() * topo_.terminals_per_router();
  const GroupId g = topo_.group_of_terminal(src);
  const int within = src - g * per_group;
  const GroupId target = (g + offset_) % topo_.num_groups();
  return static_cast<NodeId>(target * per_group + within);
}

HotspotPattern::HotspotPattern(const DragonflyTopology& topo,
                               double hot_fraction, int hot_group)
    : topo_(topo),
      hot_fraction_(hot_fraction),
      hot_group_(hot_group),
      uniform_(topo) {
  if (!(hot_fraction > 0.0) || hot_fraction > 1.0) {
    throw std::invalid_argument(
        "hotspot fraction must be in (0, 1], got " +
        std::to_string(hot_fraction));
  }
  if (hot_group < 0 || hot_group >= topo.num_groups()) {
    throw std::invalid_argument(
        "hotspot group " + std::to_string(hot_group) +
        " outside [0, g = " + std::to_string(topo.num_groups()) + ")");
  }
}

NodeId HotspotPattern::dest(NodeId src, Rng& rng) {
  if (rng.bernoulli(hot_fraction_)) {
    const int per_group =
        topo_.routers_per_group() * topo_.terminals_per_router();
    const NodeId base = static_cast<NodeId>(hot_group_) * per_group;
    NodeId d;
    do {
      d = base + static_cast<NodeId>(
                     rng.uniform(static_cast<std::uint64_t>(per_group)));
    } while (d == src);
    return d;
  }
  return uniform_.dest(src, rng);
}

std::string HotspotPattern::name() const {
  std::string n =
      "HOT(" + std::to_string(static_cast<int>(hot_fraction_ * 100)) + "%";
  if (hot_group_ != 0) n += "@" + std::to_string(hot_group_);
  return n + ")";
}

BitPermutationPattern::BitPermutationPattern(const DragonflyTopology& topo,
                                             Kind kind)
    : kind_(kind) {
  const int n = topo.num_terminals();
  if (n < 2) {
    throw std::invalid_argument(
        "bit-permutation patterns need at least 2 terminals");
  }
  int bits = 0;
  while ((2 << bits) <= n) ++bits;  // bits = floor(log2(n))
  const NodeId block = static_cast<NodeId>(1) << bits;
  const NodeId mask = block - 1;
  const int half = bits / 2;

  table_.resize(static_cast<std::size_t>(n));
  for (NodeId s = 0; s < n; ++s) {
    NodeId d = s;
    if (s < block) {
      switch (kind_) {
        case Kind::kShuffle:
          d = ((s << 1) | (s >> (bits - 1))) & mask;
          break;
        case Kind::kTranspose:
          // Rotate right by floor(bits/2); for even bit counts this swaps
          // the index halves (row/column transpose).
          d = half == 0 ? s
                        : (((s >> half) | (s << (bits - half))) & mask);
          break;
        case Kind::kComplement:
          d = ~s & mask;
          break;
        case Kind::kReverse: {
          d = 0;
          for (int b = 0; b < bits; ++b) d |= ((s >> b) & 1) << (bits - 1 - b);
          break;
        }
      }
    }
    table_[static_cast<std::size_t>(s)] = d;
  }

  // Derange the fixed points (the rule's own, e.g. 0 under shuffle, plus
  // every index >= 2^bits) by cycling them; a lone fixed point instead
  // swaps images with a neighbor. Both edits permute images only, so the
  // table stays a bijection.
  std::vector<NodeId> fixed;
  for (NodeId s = 0; s < n; ++s) {
    if (table_[static_cast<std::size_t>(s)] == s) fixed.push_back(s);
  }
  if (fixed.size() == 1) {
    const NodeId f = fixed.front();
    NodeId y = (f + 1) % n;
    if (table_[static_cast<std::size_t>(y)] == f) y = (f + 2) % n;
    std::swap(table_[static_cast<std::size_t>(f)],
              table_[static_cast<std::size_t>(y)]);
  } else {
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      table_[static_cast<std::size_t>(fixed[i])] =
          fixed[(i + 1) % fixed.size()];
    }
  }

  // Machine-check the contract: a permutation with no fixed points.
  std::vector<char> hit(static_cast<std::size_t>(n), 0);
  for (NodeId s = 0; s < n; ++s) {
    const NodeId d = table_[static_cast<std::size_t>(s)];
    if (d < 0 || d >= n || d == s || hit[static_cast<std::size_t>(d)]) {
      throw std::logic_error(name() +
                             " table is not a self-free permutation");
    }
    hit[static_cast<std::size_t>(d)] = 1;
  }
}

NodeId BitPermutationPattern::dest(NodeId src, Rng& /*rng*/) {
  return table_[static_cast<std::size_t>(src)];
}

std::string BitPermutationPattern::name() const {
  switch (kind_) {
    case Kind::kShuffle:
      return "SHUFFLE";
    case Kind::kTranspose:
      return "TRANSPOSE";
    case Kind::kComplement:
      return "BITCOMP";
    case Kind::kReverse:
      return "BITREV";
  }
  return "BITPERM";
}

WeightedMixPattern::WeightedMixPattern(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("mix pattern needs at least one component");
  }
  double total = 0.0;
  for (const Component& c : components_) {
    if (!(c.weight > 0.0) || !std::isfinite(c.weight)) {
      throw std::invalid_argument(
          "mix component weight must be positive and finite, got " +
          std::to_string(c.weight));
    }
    total += c.weight;
  }
  cumulative_.reserve(components_.size());
  double acc = 0.0;
  for (const Component& c : components_) {
    acc += c.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding shortfall
}

NodeId WeightedMixPattern::dest(NodeId src, Rng& rng) {
  const double u = rng.uniform_real();
  std::size_t i = 0;
  while (i + 1 < cumulative_.size() && u >= cumulative_[i]) ++i;
  return components_[i].pattern->dest(src, rng);
}

std::string WeightedMixPattern::name() const {
  std::string n = "MIX(";
  double total = 0.0;
  for (const Component& c : components_) total += c.weight;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    // Semicolon separator: these names land in unquoted CSV cells
    // (print_phased), where a comma would split the row.
    if (i > 0) n += ";";
    char frac[16];
    std::snprintf(frac, sizeof(frac), "%.2f", components_[i].weight / total);
    n += components_[i].pattern->name() + "=" + frac;
  }
  return n + ")";
}

std::unique_ptr<TrafficPattern> make_pattern(const DragonflyTopology& topo,
                                             const std::string& name,
                                             int offset,
                                             double global_fraction) {
  if (name == "uniform" || name == "UN") {
    return std::make_unique<UniformPattern>(topo);
  }
  if (name == "shift" || name == "SHIFT") {
    return std::make_unique<ShiftPattern>(topo, offset);
  }
  if (name == "hotspot" || name == "HOT") {
    return std::make_unique<HotspotPattern>(topo, global_fraction);
  }
  if (name == "advg" || name == "ADVG") {
    return std::make_unique<AdversarialGlobalPattern>(topo, offset);
  }
  if (name == "advl" || name == "ADVL") {
    return std::make_unique<AdversarialLocalPattern>(topo, offset);
  }
  if (name == "mixed" || name == "MIX") {
    return std::make_unique<MixedAdversarialPattern>(topo, global_fraction);
  }
  // Not one of the historical four-argument names: resolve it as a
  // DF_TRAFFIC spec string ("un", "advg+1", "hotspot:0.2@7", "mix:...").
  return make_pattern_spec(topo, name);
}

}  // namespace dfsim
