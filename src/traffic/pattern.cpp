#include "traffic/pattern.hpp"

#include <stdexcept>

namespace dfsim {

namespace {

/// Normalize an adversarial offset into [0, modulus) (negative offsets
/// wrap, matching the mod-arithmetic the patterns document).
int normalize_offset(int offset, int modulus) {
  return ((offset % modulus) + modulus) % modulus;
}

/// Uniform draw over [0, count) excluding `skip` (0 <= skip < count).
int uniform_excluding(Rng& rng, int count, int skip) {
  auto d = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(count - 1)));
  if (d >= skip) ++d;
  return d;
}

}  // namespace

NodeId UniformPattern::dest(NodeId src, Rng& rng) {
  const int n = topo_.num_terminals();
  // Uniform over all terminals except src.
  auto d = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n - 1)));
  if (d >= src) ++d;
  return d;
}

AdversarialGlobalPattern::AdversarialGlobalPattern(
    const DragonflyTopology& topo, int offset)
    : topo_(topo), offset_(normalize_offset(offset, topo.num_groups())) {
  if (offset_ == 0 &&
      topo_.routers_per_group() * topo_.terminals_per_router() < 2) {
    throw std::invalid_argument(
        "ADVG offset ≡ 0 (mod g) with a single-terminal group leaves no "
        "destination other than the source");
  }
}

NodeId AdversarialGlobalPattern::dest(NodeId src, Rng& rng) {
  const GroupId g = topo_.group_of_terminal(src);
  const GroupId target = (g + offset_) % topo_.num_groups();
  const int per_group =
      topo_.routers_per_group() * topo_.terminals_per_router();
  if (target == g) {
    // Degenerate offset (≡ 0 mod g): honor the never-self contract by
    // drawing over the group's other terminals.
    const int src_within = src - g * per_group;
    return static_cast<NodeId>(
        g * per_group + uniform_excluding(rng, per_group, src_within));
  }
  const auto within =
      static_cast<int>(rng.uniform(static_cast<std::uint64_t>(per_group)));
  return static_cast<NodeId>(target * per_group + within);
}

AdversarialLocalPattern::AdversarialLocalPattern(
    const DragonflyTopology& topo, int offset)
    : topo_(topo),
      offset_(normalize_offset(offset, topo.routers_per_group())) {
  if (offset_ == 0 && topo_.terminals_per_router() < 2) {
    throw std::invalid_argument(
        "ADVL offset ≡ 0 (mod a) with p = 1 leaves no destination other "
        "than the source");
  }
}

NodeId AdversarialLocalPattern::dest(NodeId src, Rng& rng) {
  const RouterId r = topo_.router_of_terminal(src);
  const GroupId g = topo_.group_of_router(r);
  const int target_local =
      (topo_.local_index(r) + offset_) % topo_.routers_per_group();
  const RouterId target = topo_.router_id(g, target_local);
  const int p = topo_.terminals_per_router();
  if (target == r) {
    // Degenerate offset (≡ 0 mod a): draw over the router's other slots.
    const int src_slot = src - r * p;
    return topo_.terminal_id(target, uniform_excluding(rng, p, src_slot));
  }
  const auto slot =
      static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p)));
  return topo_.terminal_id(target, slot);
}

MixedAdversarialPattern::MixedAdversarialPattern(
    const DragonflyTopology& topo, double global_fraction)
    : global_fraction_(global_fraction),
      global_(topo, topo.h()),
      local_(topo, 1) {}

NodeId MixedAdversarialPattern::dest(NodeId src, Rng& rng) {
  if (rng.bernoulli(global_fraction_)) return global_.dest(src, rng);
  return local_.dest(src, rng);
}

std::string MixedAdversarialPattern::name() const {
  return "MIX(" + std::to_string(static_cast<int>(global_fraction_ * 100)) +
         "%G)";
}

NodeId ShiftPattern::dest(NodeId src, Rng& /*rng*/) {
  const int per_group =
      topo_.routers_per_group() * topo_.terminals_per_router();
  const GroupId g = topo_.group_of_terminal(src);
  const int within = src - g * per_group;
  const GroupId target = (g + offset_) % topo_.num_groups();
  return static_cast<NodeId>(target * per_group + within);
}

HotspotPattern::HotspotPattern(const DragonflyTopology& topo,
                               double hot_fraction)
    : topo_(topo), hot_fraction_(hot_fraction), uniform_(topo) {}

NodeId HotspotPattern::dest(NodeId src, Rng& rng) {
  if (rng.bernoulli(hot_fraction_)) {
    const int per_group =
        topo_.routers_per_group() * topo_.terminals_per_router();
    NodeId d;
    do {
      d = static_cast<NodeId>(
          rng.uniform(static_cast<std::uint64_t>(per_group)));
    } while (d == src);
    return d;
  }
  return uniform_.dest(src, rng);
}

std::string HotspotPattern::name() const {
  return "HOT(" + std::to_string(static_cast<int>(hot_fraction_ * 100)) +
         "%)";
}

std::unique_ptr<TrafficPattern> make_pattern(const DragonflyTopology& topo,
                                             const std::string& name,
                                             int offset,
                                             double global_fraction) {
  if (name == "uniform" || name == "UN") {
    return std::make_unique<UniformPattern>(topo);
  }
  if (name == "shift" || name == "SHIFT") {
    return std::make_unique<ShiftPattern>(topo, offset);
  }
  if (name == "hotspot" || name == "HOT") {
    return std::make_unique<HotspotPattern>(topo, global_fraction);
  }
  if (name == "advg" || name == "ADVG") {
    return std::make_unique<AdversarialGlobalPattern>(topo, offset);
  }
  if (name == "advl" || name == "ADVL") {
    return std::make_unique<AdversarialLocalPattern>(topo, offset);
  }
  if (name == "mixed" || name == "MIX") {
    return std::make_unique<MixedAdversarialPattern>(topo, global_fraction);
  }
  throw std::invalid_argument("unknown traffic pattern: " + name);
}

}  // namespace dfsim
