// Synthetic traffic patterns from the paper's methodology (Sec. IV),
// generalized to the parametric (p, a, h, g) dragonfly:
//
//   UN      — uniform random: every other terminal equally likely.
//   ADVG+N  — adversarial-global: every node in group i sends to a random
//             node of group (i+N) mod g; saturates the single (canonical)
//             global link between the two groups (minimal throughput cap
//             1/(a*p), the group's a*p terminals sharing one link).
//   ADVL+N  — adversarial-local: every node of router i sends to a random
//             node of router (i+N) mod a in the same group; saturates the
//             single local link (cap 1/p without local misrouting).
//   MIX(f)  — ADVG+h with probability f, else ADVL+1 (Figs. 6 and 9).
//
// Offsets are normalized modulo the relevant dimension at construction,
// and the documented "dest never equals src" contract holds even for the
// degenerate offsets (N ≡ 0 mod g / mod a), which fall back to a uniform
// draw over the remaining terminals of the target group/router.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  /// Destination terminal for a packet from `src` (never equal to src).
  virtual NodeId dest(NodeId src, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(const DragonflyTopology& topo) : topo_(topo) {}
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override { return "UN"; }

 private:
  const DragonflyTopology& topo_;
};

class AdversarialGlobalPattern final : public TrafficPattern {
 public:
  /// `offset` is normalized mod the group count; an offset ≡ 0 targets
  /// the sender's own group (minus the sender itself). Throws
  /// std::invalid_argument when that leaves no valid destination (a
  /// single-terminal group).
  AdversarialGlobalPattern(const DragonflyTopology& topo, int offset);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override {
    return "ADVG+" + std::to_string(offset_);
  }

 private:
  const DragonflyTopology& topo_;
  int offset_;
};

class AdversarialLocalPattern final : public TrafficPattern {
 public:
  /// `offset` is normalized mod the group size; an offset ≡ 0 targets
  /// the sender's own router (minus the sender itself). Throws
  /// std::invalid_argument when that leaves no valid destination (p = 1).
  AdversarialLocalPattern(const DragonflyTopology& topo, int offset);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override {
    return "ADVL+" + std::to_string(offset_);
  }

 private:
  const DragonflyTopology& topo_;
  int offset_;
};

/// Fig. 6/9 mix: fraction `global_fraction` of packets follow ADVG+h, the
/// rest ADVL+1. Both components need local misrouting for full throughput.
class MixedAdversarialPattern final : public TrafficPattern {
 public:
  MixedAdversarialPattern(const DragonflyTopology& topo,
                          double global_fraction);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override;

 private:
  double global_fraction_;
  AdversarialGlobalPattern global_;
  AdversarialLocalPattern local_;
};

/// Group-shift permutation: terminal t sends to the terminal with the
/// same in-group coordinates, `offset` groups over. A *deterministic*
/// adversarial-global pattern (every node has exactly one destination),
/// harsher than ADVG+N's randomized in-group spread.
class ShiftPattern final : public TrafficPattern {
 public:
  ShiftPattern(const DragonflyTopology& topo, int offset)
      : topo_(topo), offset_(offset) {}
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override {
    return "SHIFT+" + std::to_string(offset_);
  }

 private:
  const DragonflyTopology& topo_;
  int offset_;
};

/// Hotspot: a fraction of the traffic targets the terminals of one group
/// (`hot_group`, default 0); the rest is uniform. Models acceptance-side
/// congestion. Throws std::invalid_argument for a fraction outside (0, 1]
/// or a group outside [0, g).
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(const DragonflyTopology& topo, double hot_fraction,
                 int hot_group = 0);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override;

 private:
  const DragonflyTopology& topo_;
  double hot_fraction_;
  int hot_group_;
  UniformPattern uniform_;
};

/// Classic bit-permutation workloads (Dally & Towles Ch. 3), defined on
/// the b = floor(log2(N)) low bits of the terminal index:
///
///   shuffle    — rotate the b-bit index left by one (perfect shuffle)
///   transpose  — rotate right by b/2 (for even b: swap index halves,
///                the matrix-transpose pattern)
///   bitcomp    — complement all b bits
///   bitrev     — reverse the b bits
///
/// Terminal counts are rarely powers of two on a dragonfly, so indices
/// >= 2^b start as fixed points, as do the rule's own fixed points (e.g.
/// 0 under shuffle); the constructor then deranges all fixed points by
/// cycling them, keeping the map a bijection while honoring the
/// "dest != src" contract. The final table is machine-checked to be a
/// self-free permutation (throws std::logic_error otherwise), and every
/// destination is deterministic — no RNG is drawn.
class BitPermutationPattern final : public TrafficPattern {
 public:
  enum class Kind { kShuffle, kTranspose, kComplement, kReverse };

  BitPermutationPattern(const DragonflyTopology& topo, Kind kind);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override;

  /// The number of terminals the permutation acts on (table size).
  int size() const { return static_cast<int>(table_.size()); }

 private:
  Kind kind_;
  std::vector<NodeId> table_;
};

/// Per-pair rate mix: each generation picks one component pattern with
/// probability proportional to its weight. Built by the spec factory for
/// "mix:un=0.7,advg+1=0.3"-style specs (weights are normalized; they need
/// not sum to 1). Throws std::invalid_argument when empty or when the
/// weight sum is not positive and finite.
class WeightedMixPattern final : public TrafficPattern {
 public:
  struct Component {
    std::unique_ptr<TrafficPattern> pattern;
    double weight = 0.0;
  };

  explicit WeightedMixPattern(std::vector<Component> components);
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override;

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;  ///< normalized upper edges
};

/// Legacy by-name factory: "uniform" | "advg" (with offset) | "advl" |
/// "mixed" | "shift" | "hotspot" (global_fraction = hot fraction), the
/// historical four-argument construction paths, bit-for-bit. Any other
/// name is resolved as a DF_TRAFFIC spec string via make_pattern_spec
/// (traffic/factory.hpp), so SimConfig::pattern accepts both forms.
std::unique_ptr<TrafficPattern> make_pattern(const DragonflyTopology& topo,
                                             const std::string& name,
                                             int offset,
                                             double global_fraction);

}  // namespace dfsim
