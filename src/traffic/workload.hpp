// Application workloads layered above the synthetic traffic patterns:
// collective motifs with message sizes and request-reply causality,
// multi-job interference under placement policies, and external trace
// replay. Resolved from DF_WORKLOAD spec strings by a registry in the
// style of traffic/factory.cpp.
//
// Grammar (case-insensitive keys):
//
//   spec  := "coll:" motif | "jobs:" J fields ":" job ("|" job)* |
//            "trace:" FILE
//   motif := ( "alltoall" | "a2a" | "ring-allreduce" | "ring" |
//              "halo2d" [":" RxC] | "shift" ["+N"|"-N"] )
//            [":size=" K | ":size=" MIN "-" MAX] [":reply=" 0|1]
//   fields:= (":place=" ("contig"|"random"|"rr"))? (":seed=" S)?
//   job   := motif ["@" load]
//
//   coll:<motif>    one collective motif spanning every terminal
//                   (replies default ON — request-reply causality).
//   jobs:J:...      J concurrent jobs partitioning the terminals under
//                   the placement policy (default contig). Each job runs
//                   its own motif; "@load" overrides the config load for
//                   that job's terminals. Fewer job entries than J cycle
//                   round-robin. Replies default OFF per job.
//   trace:FILE      replay "cycle,src,dst,size" rows (CSV, '#' comments,
//                   or binary; see kTraceMagic). Sizes are phits; rows
//                   must be sorted by cycle. Bernoulli injection is
//                   disabled for trace runs.
//
// Motifs draw destinations job-locally, so jobs never exchange traffic —
// interference happens purely in the shared network. A Workload IS a
// TrafficPattern: the engine's destination-draw sites are unchanged, so
// the sharded engine's worker-count-independent keyed-RNG contract holds
// for workload runs automatically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "traffic/pattern.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

/// First 8 bytes of a binary trace file. Rows follow as little-endian
/// (u64 cycle, i32 src, i32 dst, i32 size_phits) records after a u64
/// row count.
inline constexpr char kTraceMagic[8] = {'D', 'F', 'T', 'R',
                                        'A', 'C', 'E', '\n'};

/// One registry row (mirrors TrafficPatternEntry). `key` is the spec
/// prefix before the first ':'.
struct WorkloadEntry {
  const char* key;    ///< canonical lower-case name
  const char* alias;  ///< optional second name ("" = none)
  const char* help;   ///< spec syntax, e.g. "jobs:<J>[:place=...]:<job>|..."
};

/// The workload registry, in documentation order. The spec parser, the
/// error messages and the README table all derive from this list.
const std::vector<WorkloadEntry>& workload_registry();

/// Comma-separated canonical keys (for error messages and --help output).
std::string workload_names();

class Workload;

/// Resolve a workload spec against a topology. Throws
/// std::invalid_argument with a pointed message on any parse or range
/// error (unknown names include the registry list). Returns nullptr when
/// `topo` is null (parse-only mode), still throwing on malformed specs.
std::unique_ptr<Workload> make_workload(const DragonflyTopology* topo,
                                        const std::string& spec);

/// Syntax-check a spec without a topology (used by SimConfig::validate).
/// Topology-dependent checks (job sizes, halo grid factorization, trace
/// file existence) still happen at construction.
void validate_workload_spec(const std::string& spec);

/// A built workload: a job partition of the terminals, one motif per
/// job, optional message-size distributions and request-reply causality,
/// or a trace cursor. Derives TrafficPattern so the engine draws fresh
/// destinations straight from the job-local motifs.
class Workload : public TrafficPattern {
 public:
  ~Workload() override;

  // --- TrafficPattern -----------------------------------------------------
  /// Job-local motif draw; never returns src. Trace workloads never
  /// receive fresh draws (injection load is forced to 0) but fall back
  /// to a uniform draw to honor the interface.
  NodeId dest(NodeId src, Rng& rng) override;
  std::string name() const override { return spec_; }

  // --- job partition ------------------------------------------------------
  int num_jobs() const;
  /// job_of_terminal()[t] in [0, num_jobs); every terminal belongs to
  /// exactly one job (the partition is a bijection onto the terminals).
  const std::vector<std::int32_t>& job_of_terminal() const;
  /// Terminals per job (sums to the topology's terminal count).
  std::vector<std::int32_t> job_sizes() const;
  /// Stable CSV label for a job, e.g. "job0:alltoall".
  std::string job_label(int job) const;

  /// Per-terminal absolute offered loads (phits/cycle/terminal); jobs
  /// without an explicit "@load" inherit `base_load`. Empty means "use
  /// the uniform config load" (single-job collectives, traces).
  std::vector<double> terminal_loads(double base_load) const;

  // --- request-reply causality -------------------------------------------
  /// Should delivering a request generated at terminal `src` produce a
  /// reply? (Replies themselves and trace rows never do; the engine
  /// tracks that via packet flags.)
  bool wants_reply(NodeId src) const;

  /// Packets per message for a fresh generation at `src` (>= 1). Draws
  /// from `rng` only when the job's size spec is a range, so fixed-size
  /// jobs cost no stream state.
  int message_packets(NodeId src, Rng& rng) const;

  // --- trace replay -------------------------------------------------------
  bool is_trace() const { return trace_; }
  /// Emit every not-yet-replayed row with row.cycle <= now, in file
  /// order, advancing the cursor.
  void drain_trace(Cycle now,
                   const std::function<void(NodeId src, NodeId dst,
                                            int size_phits)>& emit);
  /// Replay cursor (row index) for checkpointing; 0 for non-trace
  /// workloads. set_cursor throws std::invalid_argument when out of
  /// range.
  std::uint64_t cursor() const { return cursor_; }
  void set_cursor(std::uint64_t cursor);

  // Implementation detail, public so the spec parser's file-local
  // helpers in workload.cpp can build them.
  struct Job;
  struct TraceRow {
    Cycle cycle = 0;
    NodeId src = 0;
    NodeId dst = 0;
    int size_phits = 0;
  };

 private:
  friend std::unique_ptr<Workload> make_workload(const DragonflyTopology*,
                                                 const std::string&);
  Workload() = default;

  std::string spec_;
  bool trace_ = false;
  std::vector<Job> jobs_;
  std::vector<std::int32_t> job_of_;   ///< terminal -> job
  std::vector<std::int32_t> rank_of_;  ///< terminal -> rank within job
  std::vector<TraceRow> rows_;
  std::uint64_t cursor_ = 0;
  int num_terminals_ = 0;
};

}  // namespace dfsim
