#include "api/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/env.hpp"
#include "topology/fault_model.hpp"
#include "traffic/factory.hpp"
#include "traffic/workload.hpp"

namespace dfsim {

TopoParams parse_topo_spec(const std::string& spec) {
  TopoParams tp;
  // A bare integer is the balanced-h shorthand ("4" == "h4"), so every
  // consumer that accepts a spec also accepts a plain h.
  if (!spec.empty() &&
      spec.find_first_not_of("0123456789") == std::string::npos) {
    return parse_topo_spec("h" + spec);
  }
  bool seen[4] = {false, false, false, false};  // p, a, h, g
  std::size_t i = 0;
  while (i < spec.size()) {
    const char c = spec[i];
    if (c == ' ' || c == ',' || c == ';' || c == ':' || c == '=') {
      ++i;
      continue;
    }
    int* field = nullptr;
    int slot = -1;
    switch (std::tolower(static_cast<unsigned char>(c))) {
      case 'p':
        field = &tp.p;
        slot = 0;
        break;
      case 'a':
        field = &tp.a;
        slot = 1;
        break;
      case 'h':
        field = &tp.h;
        slot = 2;
        break;
      case 'g':
        field = &tp.g;
        slot = 3;
        break;
      default:
        throw std::invalid_argument(
            "topology spec \"" + spec + "\": unknown dimension '" +
            std::string(1, c) + "' (expected p, a, h or g)");
    }
    ++i;
    while (i < spec.size() && (spec[i] == ' ' || spec[i] == '=')) ++i;
    std::size_t digits = i;
    while (digits < spec.size() &&
           std::isdigit(static_cast<unsigned char>(spec[digits]))) {
      ++digits;
    }
    if (digits == i) {
      throw std::invalid_argument("topology spec \"" + spec +
                                  "\": dimension '" + std::string(1, c) +
                                  "' has no value");
    }
    // Bound the value before std::stoi so oversized dimensions get the
    // documented invalid_argument (not out_of_range), and downstream
    // a*h arithmetic stays far from integer overflow.
    if (digits - i > 7) {
      throw std::invalid_argument("topology spec \"" + spec +
                                  "\": dimension '" + std::string(1, c) +
                                  "' value is out of range (max 7 digits)");
    }
    if (seen[slot]) {
      throw std::invalid_argument("topology spec \"" + spec +
                                  "\": dimension '" + std::string(1, c) +
                                  "' given twice");
    }
    seen[slot] = true;
    *field = std::stoi(spec.substr(i, digits - i));
    i = digits;
  }
  if (!seen[2]) {
    throw std::invalid_argument("topology spec \"" + spec +
                                "\": missing mandatory dimension 'h'");
  }
  if (!seen[0]) tp.p = tp.h;
  if (!seen[1]) tp.a = 2 * tp.h;
  if (!seen[3]) {
    const long long max_g =
        static_cast<long long>(tp.a) * static_cast<long long>(tp.h) + 1;
    if (max_g > INT32_MAX) {
      throw std::invalid_argument(
          "topology spec \"" + spec +
          "\": balanced default g = a*h + 1 overflows; give g explicitly");
    }
    tp.g = static_cast<int>(max_g);
  }
  return tp;
}

TopoParams SimConfig::topo_params() const {
  if (!topo.empty()) return parse_topo_spec(topo);
  TopoParams tp;
  tp.h = h;
  // Exactly 0 selects the balanced default; negatives flow through so
  // validate()/the topology constructor reject them with a pointed
  // message instead of silently running the wrong shape.
  tp.p = p != 0 ? p : h;
  // 64-bit intermediates: the balanced defaults multiply user-supplied
  // knobs, which must not overflow before validate() can reject them.
  const long long def_a = a != 0 ? a : 2LL * h;
  const long long def_g =
      g != 0 ? g : def_a * static_cast<long long>(tp.h) + 1;
  if (def_a > INT32_MAX || def_a < INT32_MIN || def_g > INT32_MAX ||
      def_g < INT32_MIN) {
    throw std::invalid_argument(
        "SimConfig: balanced topology defaults overflow for h = " +
        std::to_string(h) + "; set a and g explicitly");
  }
  tp.a = static_cast<int>(def_a);
  tp.g = static_cast<int>(def_g);
  return tp;
}

DragonflyTopology SimConfig::make_topology() const {
  const TopoParams tp = topo_params();
  DragonflyTopology topo(tp.p, tp.a, tp.h, tp.g, arrangement);
  if (!fault_spec.empty()) {
    topo.apply_faults(FaultModel::parse(topo, fault_spec));
  } else if (fault_fraction != 0.0) {
    topo.apply_faults(
        FaultModel::sample(topo, fault_fraction, fault_seed));
  }
  return topo;
}

void SimConfig::validate() const {
  const TopoParams tp = topo_params();  // throws on a malformed spec
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("SimConfig: " + msg);
  };
  const auto check_dim = [&](const char* name, int value) {
    if (value < 1) {
      std::ostringstream os;
      os << "topology dimension " << name << " must be >= 1, got " << value;
      fail(os.str());
    }
  };
  check_dim("h", tp.h);
  check_dim("p", tp.p);
  check_dim("a", tp.a);
  check_dim("g", tp.g);
  // 64-bit product: directly-set knobs can be arbitrarily large ints.
  const long long max_groups =
      static_cast<long long>(tp.a) * static_cast<long long>(tp.h) + 1;
  if (tp.g > max_groups) {
    std::ostringstream os;
    os << "g = " << tp.g << " exceeds the a*h + 1 = " << max_groups
       << " groups the " << tp.a << "x" << tp.h
       << " global link slots can connect";
    fail(os.str());
  }
  // RouteState packs local indices into 8 bits (sim/packet.hpp).
  if (tp.a > 127) {
    std::ostringstream os;
    os << "a = " << tp.a << " exceeds the engine's group-size limit of 127";
    fail(os.str());
  }
  // The engine packs the head-hop cache as port*16+vc in an int16
  // (sim/engine.cpp); checking here turns an eventual engine throw into a
  // pointed message. a <= 127 already bounds the first term.
  const long long degree = static_cast<long long>(tp.a) - 1 + tp.h + tp.p;
  if (degree > 2047) {
    std::ostringstream os;
    os << "router degree a - 1 + h + p = " << degree
       << " exceeds the engine's 2047-port limit";
    fail(os.str());
  }
  if (engine != "exact" && engine != "sharded") {
    std::ostringstream os;
    os << "engine must be \"exact\" or \"sharded\", got \"" << engine
       << "\"";
    fail(os.str());
  }
  if (engine == "sharded" && flow == FlowControl::kWormhole) {
    fail(
        "the sharded engine supports VCT only: wormhole VC ownership "
        "spans shard boundaries (use engine=exact for wormhole runs)");
  }
  if (!(load > 0.0) || load > 1.0) {
    std::ostringstream os;
    os << "load must be in (0, 1], got " << load;
    fail(os.str());
  }
  // Traffic spec: reject malformed pattern strings before anything is
  // built (topology-dependent range checks still happen at construction).
  try {
    validate_pattern_spec(pattern);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  if (!workload.empty()) {
    try {
      validate_workload_spec(workload);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    if (onoff_on > 0.0 || onoff_off > 0.0) {
      fail(
          "workload and ON/OFF injection cannot be combined: workloads "
          "drive per-terminal loads and forced injections through the "
          "plain Bernoulli path (clear onoff_on/onoff_off or workload)");
    }
  }
  // Written as negated >=/<= so NaN fails too (every comparison with NaN
  // is false, which would sail through the direct form).
  if (!(onoff_on >= 0.0 && onoff_on <= 1.0) ||
      !(onoff_off >= 0.0 && onoff_off <= 1.0) ||
      (onoff_on == 0.0) != (onoff_off == 0.0)) {
    std::ostringstream os;
    os << "ON/OFF transition probabilities must both be in (0, 1] or both "
          "0 (disabled), got onoff_on = "
       << onoff_on << ", onoff_off = " << onoff_off;
    fail(os.str());
  }
  if (onoff_on > 0.0) {
    // The while-ON generation probability is load / (packet_phits * duty)
    // and cannot exceed 1: beyond that the sources physically cannot make
    // up for their OFF time and the real offered load silently undershoots
    // the configured one. Reject instead of mismeasuring.
    const double duty = onoff_on / (onoff_on + onoff_off);
    const double max_load = duty * packet_phits >= 1.0
                                ? 1.0
                                : duty * static_cast<double>(packet_phits);
    if (load > max_load) {
      std::ostringstream os;
      os << "ON/OFF duty cycle " << duty << " cannot sustain load " << load
         << ": ON terminals would need a generation probability above 1. "
            "Raise onoff_on, lower onoff_off, or keep load <= "
         << max_load;
      fail(os.str());
    }
  }
  if (packet_phits < 1) {
    std::ostringstream os;
    os << "packet_phits must be >= 1, got " << packet_phits;
    fail(os.str());
  }
  if (flit_phits < 0 || flit_phits > packet_phits) {
    std::ostringstream os;
    os << "flit_phits must be 0 (whole-packet) or in [1, packet_phits = "
       << packet_phits << "], got " << flit_phits;
    fail(os.str());
  }
  if (local_vcs < 1 || global_vcs < 1) {
    std::ostringstream os;
    os << "VC counts must be >= 1 per port class (the floor of every "
          "routing mechanism; counts below a mechanism's own minimum are "
          "auto-raised), got local_vcs = "
       << local_vcs << ", global_vcs = " << global_vcs;
    fail(os.str());
  }
  // VCT buffers must hold a whole packet; wormhole ones a whole flit.
  const int unit =
      flow == FlowControl::kWormhole && flit_phits > 0 ? flit_phits
                                                       : packet_phits;
  if (local_buf_phits < unit || global_buf_phits < unit) {
    std::ostringstream os;
    os << "buffers must hold at least one flow-control unit (" << unit
       << " phits), got local_buf_phits = " << local_buf_phits
       << ", global_buf_phits = " << global_buf_phits;
    fail(os.str());
  }
  if (fault_fraction < 0.0 || fault_fraction >= 1.0) {
    std::ostringstream os;
    os << "fault_fraction must be in [0, 1), got " << fault_fraction;
    fail(os.str());
  }
  if (!fault_spec.empty() && fault_fraction != 0.0) {
    fail("set fault_spec or fault_fraction, not both (an explicit fault "
         "set and a sampled one cannot be combined)");
  }
  if (!fault_spec.empty() || fault_fraction != 0.0) {
    // Resolve and apply the fault set (surfacing spec parse errors with
    // their own pointed messages) and reject sets that sever the minimal
    // route between any pair of live terminals — such a pair would starve
    // under every routing mechanism.
    const DragonflyTopology faulted = make_topology();
    const std::string err = faulted.connectivity_failure();
    if (!err.empty()) {
      fail("fault set disconnects the network: " + err);
    }
  }
}

EngineConfig SimConfig::engine_config(
    const RoutingAlgorithm& routing_algo) const {
  EngineConfig ec;
  ec.flow = flow;
  ec.packet_phits = packet_phits;
  ec.flit_phits = flit_phits;
  ec.local_vcs = std::max(local_vcs, routing_algo.min_local_vcs());
  ec.global_vcs = std::max(global_vcs, routing_algo.min_global_vcs());
  ec.local_buf_phits = local_buf_phits;
  ec.global_buf_phits = global_buf_phits;
  ec.local_latency = local_latency;
  ec.global_latency = global_latency;
  ec.watchdog_cycles = watchdog_cycles;
  ec.sharded = engine == "sharded";
  ec.shard_jobs = 0;  // resolved at runtime (DF_JOBS / --jobs), not config
  ec.seed = seed;
  return ec;
}

RoutingParams SimConfig::routing_params() const {
  RoutingParams rp;
  rp.adaptive.threshold = misroute_threshold;
  rp.adaptive.global_candidates = global_candidates;
  rp.adaptive.local_candidates = local_candidates;
  rp.piggyback.saturation_threshold = pb_threshold;
  rp.piggyback.broadcast_period = pb_period;
  return rp;
}

namespace {

/// Shortest decimal form that reparses to the exact same double (%.17g is
/// guaranteed to round-trip IEEE-754 binary64).
std::string fmt_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

long long parse_int_value(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  long long out = 0;
  try {
    out = std::stoll(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != v.size() || v.empty()) {
    throw std::invalid_argument("config key \"" + key +
                                "\": expected an integer, got \"" + v + "\"");
  }
  return out;
}

double parse_double_value(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != v.size() || v.empty()) {
    throw std::invalid_argument("config key \"" + key +
                                "\": expected a number, got \"" + v + "\"");
  }
  return out;
}

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string SimConfig::describe() const {
  std::ostringstream os;
  os << "h=" << h << '\n';
  os << "p=" << p << '\n';
  os << "a=" << a << '\n';
  os << "g=" << g << '\n';
  os << "topo=" << topo << '\n';
  os << "arrangement="
     << (arrangement == GlobalArrangement::kPalmtree ? "palmtree"
                                                     : "absolute")
     << '\n';
  os << "fault_spec=" << fault_spec << '\n';
  os << "fault_fraction=" << fmt_f64(fault_fraction) << '\n';
  os << "fault_seed=" << fault_seed << '\n';
  os << "flow=" << (flow == FlowControl::kWormhole ? "wormhole" : "vct")
     << '\n';
  os << "packet_phits=" << packet_phits << '\n';
  os << "flit_phits=" << flit_phits << '\n';
  os << "local_vcs=" << local_vcs << '\n';
  os << "global_vcs=" << global_vcs << '\n';
  os << "local_buf_phits=" << local_buf_phits << '\n';
  os << "global_buf_phits=" << global_buf_phits << '\n';
  os << "local_latency=" << local_latency << '\n';
  os << "global_latency=" << global_latency << '\n';
  os << "routing=" << routing << '\n';
  os << "misroute_threshold=" << fmt_f64(misroute_threshold) << '\n';
  os << "global_candidates=" << global_candidates << '\n';
  os << "local_candidates=" << local_candidates << '\n';
  os << "pb_threshold=" << fmt_f64(pb_threshold) << '\n';
  os << "pb_period=" << pb_period << '\n';
  os << "pattern=" << pattern << '\n';
  os << "pattern_offset=" << pattern_offset << '\n';
  os << "global_fraction=" << fmt_f64(global_fraction) << '\n';
  os << "load=" << fmt_f64(load) << '\n';
  os << "onoff_on=" << fmt_f64(onoff_on) << '\n';
  os << "onoff_off=" << fmt_f64(onoff_off) << '\n';
  os << "workload=" << workload << '\n';
  os << "engine=" << engine << '\n';
  os << "warmup_cycles=" << warmup_cycles << '\n';
  os << "measure_cycles=" << measure_cycles << '\n';
  os << "burst_packets=" << burst_packets << '\n';
  os << "max_cycles=" << max_cycles << '\n';
  os << "watchdog_cycles=" << watchdog_cycles << '\n';
  os << "seed=" << seed << '\n';
  return os.str();
}

void SimConfig::set(const std::string& key, const std::string& value) {
  const auto as_int = [&] {
    const long long v = parse_int_value(key, value);
    if (v > INT32_MAX || v < INT32_MIN) {
      throw std::invalid_argument("config key \"" + key +
                                  "\": value out of 32-bit range");
    }
    return static_cast<int>(v);
  };
  const auto as_u64 = [&] {
    return static_cast<std::uint64_t>(parse_int_value(key, value));
  };
  const auto as_f64 = [&] { return parse_double_value(key, value); };

  if (key == "h") h = as_int();
  else if (key == "p") p = as_int();
  else if (key == "a") a = as_int();
  else if (key == "g") g = as_int();
  else if (key == "topo") topo = value;
  else if (key == "arrangement") {
    if (value == "absolute") arrangement = GlobalArrangement::kAbsolute;
    else if (value == "palmtree") arrangement = GlobalArrangement::kPalmtree;
    else {
      throw std::invalid_argument(
          "config key \"arrangement\": expected absolute or palmtree, "
          "got \"" + value + "\"");
    }
  } else if (key == "fault_spec") fault_spec = value;
  else if (key == "fault_fraction") fault_fraction = as_f64();
  else if (key == "fault_seed") fault_seed = as_u64();
  else if (key == "flow") {
    if (value == "vct") flow = FlowControl::kVirtualCutThrough;
    else if (value == "wormhole") flow = FlowControl::kWormhole;
    else {
      throw std::invalid_argument(
          "config key \"flow\": expected vct or wormhole, got \"" + value +
          "\"");
    }
  } else if (key == "packet_phits") packet_phits = as_int();
  else if (key == "flit_phits") flit_phits = as_int();
  else if (key == "local_vcs") local_vcs = as_int();
  else if (key == "global_vcs") global_vcs = as_int();
  else if (key == "local_buf_phits") local_buf_phits = as_int();
  else if (key == "global_buf_phits") global_buf_phits = as_int();
  else if (key == "local_latency") local_latency = as_int();
  else if (key == "global_latency") global_latency = as_int();
  else if (key == "routing") routing = value;
  else if (key == "misroute_threshold") misroute_threshold = as_f64();
  else if (key == "global_candidates") global_candidates = as_int();
  else if (key == "local_candidates") local_candidates = as_int();
  else if (key == "pb_threshold") pb_threshold = as_f64();
  else if (key == "pb_period") pb_period = as_int();
  else if (key == "pattern") pattern = value;
  else if (key == "pattern_offset") pattern_offset = as_int();
  else if (key == "global_fraction") global_fraction = as_f64();
  else if (key == "load") load = as_f64();
  else if (key == "onoff_on") onoff_on = as_f64();
  else if (key == "onoff_off") onoff_off = as_f64();
  else if (key == "workload") workload = value;
  else if (key == "engine") engine = value;
  else if (key == "warmup_cycles") warmup_cycles = static_cast<Cycle>(as_u64());
  else if (key == "measure_cycles") {
    measure_cycles = static_cast<Cycle>(as_u64());
  } else if (key == "burst_packets") burst_packets = as_u64();
  else if (key == "max_cycles") max_cycles = static_cast<Cycle>(as_u64());
  else if (key == "watchdog_cycles") {
    watchdog_cycles = static_cast<Cycle>(as_u64());
  } else if (key == "seed") seed = as_u64();
  else {
    throw std::invalid_argument("config: unknown key \"" + key + "\"");
  }
}

SimConfig SimConfig::parse(const std::string& text) {
  SimConfig cfg;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trimmed(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "config line " + std::to_string(lineno) +
          ": expected key=value, got \"" + t + "\"");
    }
    try {
      cfg.set(trimmed(t.substr(0, eq)), trimmed(t.substr(eq + 1)));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  return cfg;
}

SimConfig bench_defaults() {
  SimConfig cfg;
  if (env_flag("DF_FULL")) {
    // Paper scale: h=8 — 129 groups, 2064 routers, 16512 terminals.
    cfg.h = 8;
    cfg.warmup_cycles = 20000;
    cfg.measure_cycles = 40000;
    cfg.burst_packets = 1000;
  } else {
    cfg.h = 3;  // 19 groups, 114 routers, 342 terminals
    cfg.warmup_cycles = 3000;
    cfg.measure_cycles = 8000;
    cfg.burst_packets = 200;
  }
  cfg.h = static_cast<int>(env_int("DF_H", cfg.h));
  // Unbalanced-shape knobs; 0 (the default) keeps the balanced shorthand.
  cfg.p = static_cast<int>(env_int("DF_P", cfg.p));
  cfg.a = static_cast<int>(env_int("DF_A", cfg.a));
  cfg.g = static_cast<int>(env_int("DF_G", cfg.g));
  cfg.topo = env_str("DF_TOPO", cfg.topo);
  cfg.warmup_cycles =
      static_cast<Cycle>(env_int("DF_WARMUP", static_cast<std::int64_t>(
                                                  cfg.warmup_cycles)));
  cfg.measure_cycles =
      static_cast<Cycle>(env_int("DF_MEASURE", static_cast<std::int64_t>(
                                                   cfg.measure_cycles)));
  cfg.burst_packets = static_cast<std::uint64_t>(
      env_int("DF_BURST", static_cast<std::int64_t>(cfg.burst_packets)));
  cfg.seed = static_cast<std::uint64_t>(env_int("DF_SEED", 1));
  // Traffic knobs (README "Traffic patterns"). Benches with fixed panels
  // (fig04-11) override the pattern per panel; DF_TRAFFIC drives the
  // single-pattern binaries (quickstart, fig_transient base phase, ...).
  cfg.pattern = env_str("DF_TRAFFIC", cfg.pattern);
  // Workload spec (README "Workloads"); empty runs the plain pattern.
  cfg.workload = env_str("DF_WORKLOAD", cfg.workload);
  // Engine mode (README "Engine internals"): exact (default) or sharded.
  cfg.engine = env_str("DF_ENGINE", cfg.engine);
  cfg.onoff_on = env_double("DF_ONOFF_ON", cfg.onoff_on);
  cfg.onoff_off = env_double("DF_ONOFF_OFF", cfg.onoff_off);
  // Degraded-network knobs (README "Faults"); all default to healthy.
  cfg.fault_spec = env_str("DF_FAULTS", cfg.fault_spec);
  cfg.fault_fraction = env_double("DF_FAULT_FRACTION", cfg.fault_fraction);
  cfg.fault_seed = static_cast<std::uint64_t>(
      env_int("DF_FAULT_SEED", static_cast<std::int64_t>(cfg.fault_seed)));
  return cfg;
}

}  // namespace dfsim
