#include "api/config.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace dfsim {

EngineConfig SimConfig::engine_config(
    const RoutingAlgorithm& routing_algo) const {
  EngineConfig ec;
  ec.flow = flow;
  ec.packet_phits = packet_phits;
  ec.flit_phits = flit_phits;
  ec.local_vcs = std::max(local_vcs, routing_algo.min_local_vcs());
  ec.global_vcs = std::max(global_vcs, routing_algo.min_global_vcs());
  ec.local_buf_phits = local_buf_phits;
  ec.global_buf_phits = global_buf_phits;
  ec.local_latency = local_latency;
  ec.global_latency = global_latency;
  ec.watchdog_cycles = watchdog_cycles;
  ec.seed = seed;
  return ec;
}

RoutingParams SimConfig::routing_params() const {
  RoutingParams rp;
  rp.adaptive.threshold = misroute_threshold;
  rp.adaptive.global_candidates = global_candidates;
  rp.adaptive.local_candidates = local_candidates;
  rp.piggyback.saturation_threshold = pb_threshold;
  rp.piggyback.broadcast_period = pb_period;
  return rp;
}

SimConfig bench_defaults() {
  SimConfig cfg;
  if (env_flag("DF_FULL")) {
    // Paper scale: h=8 — 129 groups, 2064 routers, 16512 terminals.
    cfg.h = 8;
    cfg.warmup_cycles = 20000;
    cfg.measure_cycles = 40000;
    cfg.burst_packets = 1000;
  } else {
    cfg.h = 3;  // 19 groups, 114 routers, 342 terminals
    cfg.warmup_cycles = 3000;
    cfg.measure_cycles = 8000;
    cfg.burst_packets = 200;
  }
  cfg.h = static_cast<int>(env_int("DF_H", cfg.h));
  cfg.warmup_cycles =
      static_cast<Cycle>(env_int("DF_WARMUP", static_cast<std::int64_t>(
                                                  cfg.warmup_cycles)));
  cfg.measure_cycles =
      static_cast<Cycle>(env_int("DF_MEASURE", static_cast<std::int64_t>(
                                                   cfg.measure_cycles)));
  cfg.burst_packets = static_cast<std::uint64_t>(
      env_int("DF_BURST", static_cast<std::int64_t>(cfg.burst_packets)));
  cfg.seed = static_cast<std::uint64_t>(env_int("DF_SEED", 1));
  return cfg;
}

}  // namespace dfsim
