// The public one-stop configuration for running an experiment, and its
// environment-driven defaults (quick laptop scale vs. DF_FULL paper
// scale). This is the entry point downstream users touch first.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

struct SimConfig {
  // --- topology ---------------------------------------------------------
  int h = 4;
  GlobalArrangement arrangement = GlobalArrangement::kAbsolute;

  // --- router / flow control --------------------------------------------
  FlowControl flow = FlowControl::kVirtualCutThrough;
  int packet_phits = 8;   ///< paper VCT experiments: 8
  int flit_phits = 0;     ///< 0 = whole-packet; paper WH: 10 (8 flits)
  int local_vcs = 3;      ///< auto-raised to the mechanism's minimum
  int global_vcs = 2;
  int local_buf_phits = 32;
  int global_buf_phits = 256;
  int local_latency = 10;
  int global_latency = 100;

  // --- routing -----------------------------------------------------------
  std::string routing = "olm";
  double misroute_threshold = 0.45;  ///< Figs. 10/11 pick 45%
  int global_candidates = 4;
  int local_candidates = 4;
  double pb_threshold = 0.35;
  int pb_period = 10;

  // --- traffic -----------------------------------------------------------
  std::string pattern = "uniform";  ///< uniform | advg | advl | mixed
  int pattern_offset = 1;           ///< the +N of ADVG+N / ADVL+N
  double global_fraction = 0.5;     ///< mixed pattern share of ADVG+h
  double load = 0.5;                ///< offered phits/(node*cycle)

  // --- measurement ---------------------------------------------------------
  Cycle warmup_cycles = 5000;
  Cycle measure_cycles = 15000;
  std::uint64_t burst_packets = 200;  ///< per node, burst experiments
  Cycle max_cycles = 2000000;         ///< hard stop for burst runs
  Cycle watchdog_cycles = 20000;
  std::uint64_t seed = 1;

  /// Engine-level knobs derived from the above.
  EngineConfig engine_config(const RoutingAlgorithm& routing_algo) const;
  RoutingParams routing_params() const;
};

/// Defaults for bench binaries: laptop scale unless DF_FULL=1, overridable
/// via DF_H, DF_WARMUP, DF_MEASURE, DF_SEED, DF_BURST.
SimConfig bench_defaults();

}  // namespace dfsim
