// The public one-stop configuration for running an experiment, and its
// environment-driven defaults (quick laptop scale vs. DF_FULL paper
// scale). This is the entry point downstream users touch first.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

/// Resolved dragonfly shape parameters (see SimConfig topology knobs).
struct TopoParams {
  int p = 0;  ///< terminals per router
  int a = 0;  ///< routers per group
  int h = 0;  ///< global ports per router
  int g = 0;  ///< number of groups
};

/// Parse a topology spec string: letter+integer tokens in any order,
/// optionally separated by spaces/commas (e.g. "h4", "p2a6h3g8",
/// "p2,a6,h3,g8"). `h` is mandatory; omitted letters default to the
/// balanced shape for that h (p = h, a = 2h, g = a*h + 1). Throws
/// std::invalid_argument with a pointed message on malformed input.
TopoParams parse_topo_spec(const std::string& spec);

struct SimConfig {
  // --- topology ---------------------------------------------------------
  // The balanced paper shape needs only `h` (shorthand for p = h, a = 2h,
  // g = 2h^2 + 1). Unbalanced shapes either set p/a/g explicitly (0 keeps
  // the balanced default for that dimension) or put a full spec string in
  // `topo`, which then overrides all four numeric knobs.
  int h = 4;
  int p = 0;         ///< terminals/router; 0 = balanced (p = h)
  int a = 0;         ///< routers/group;    0 = balanced (a = 2h)
  int g = 0;         ///< groups;           0 = maximal  (g = a*h + 1)
  std::string topo;  ///< optional spec string, e.g. "h4" or "p2a6h3g8"
  GlobalArrangement arrangement = GlobalArrangement::kAbsolute;

  // --- faults -----------------------------------------------------------
  // Degraded-network runs: either an explicit fault spec ("gl:3-17,r:42",
  // see src/topology/fault_model.hpp for the grammar) or a sampled
  // failure fraction of the wired global links, drawn from fault_seed.
  // Exactly one of the two may be set; both empty/zero (the default) is a
  // healthy network with zero overhead. validate() rejects fault sets
  // that disconnect any pair of live terminals.
  std::string fault_spec;        ///< explicit dead routers/links
  double fault_fraction = 0.0;   ///< sampled dead global-link fraction
  std::uint64_t fault_seed = 1;  ///< RNG seed for the sampled set

  // --- router / flow control --------------------------------------------
  FlowControl flow = FlowControl::kVirtualCutThrough;
  int packet_phits = 8;   ///< paper VCT experiments: 8
  int flit_phits = 0;     ///< 0 = whole-packet; paper WH: 10 (8 flits)
  int local_vcs = 3;      ///< auto-raised to the mechanism's minimum
  int global_vcs = 2;
  int local_buf_phits = 32;
  int global_buf_phits = 256;
  int local_latency = 10;
  int global_latency = 100;

  // --- routing -----------------------------------------------------------
  std::string routing = "olm";
  double misroute_threshold = 0.45;  ///< Figs. 10/11 pick 45%
  int global_candidates = 4;
  int local_candidates = 4;
  double pb_threshold = 0.35;
  int pb_period = 10;

  // --- traffic -----------------------------------------------------------
  // `pattern` accepts either a historical name (uniform | advg | advl |
  // mixed | shift | hotspot, parameterized by pattern_offset /
  // global_fraction) or a DF_TRAFFIC spec string resolved by the traffic
  // registry: "un", "advg+1", "hotspot:0.2@7", "shuffle", "transpose",
  // "bitcomp", "bitrev", "mix:un=0.7,advg+1=0.3" (see
  // src/traffic/factory.hpp for the grammar).
  std::string pattern = "uniform";
  int pattern_offset = 1;        ///< the +N of legacy ADVG+N / ADVL+N
  double global_fraction = 0.5;  ///< legacy mixed pattern share of ADVG+h
  double load = 0.5;             ///< offered phits/(node*cycle)
  // Markov ON/OFF source modulation (both 0 = plain Bernoulli): per-cycle
  // OFF->ON / ON->OFF transition probabilities. The long-run offered load
  // stays `load`; arrivals clump into geometric ON bursts. Layered on
  // whatever `pattern` resolves to.
  double onoff_on = 0.0;
  double onoff_off = 0.0;
  // Application workload layered above the pattern (DF_WORKLOAD spec
  // resolved by the workload registry): collective motifs
  // ("coll:alltoall", "coll:ring-allreduce", "coll:halo2d:4x8"),
  // multi-job interference ("jobs:4:place=random:alltoall@0.3|ring"),
  // or trace replay ("trace:FILE"). Empty (the default) runs the plain
  // `pattern`; when set, `pattern` is ignored and the workload supplies
  // destinations, message sizes, replies and per-job loads (see
  // src/traffic/workload.hpp for the grammar).
  std::string workload;

  // --- engine -------------------------------------------------------------
  // "exact" (default): the serial stepper whose single-RNG ascending draw
  // order is the historical bit-identity contract. "sharded": the
  // group-sharded parallel stepper — deterministic for any worker count
  // via counter-based RNG streams, but a different stream than exact.
  // Worker count is NOT part of the config (DF_JOBS / --jobs at runtime),
  // so describe() and checkpoints stay worker-independent.
  std::string engine = "exact";

  // --- measurement ---------------------------------------------------------
  Cycle warmup_cycles = 5000;
  Cycle measure_cycles = 15000;
  std::uint64_t burst_packets = 200;  ///< per node, burst experiments
  Cycle max_cycles = 2000000;         ///< hard stop for burst runs
  Cycle watchdog_cycles = 20000;
  std::uint64_t seed = 1;

  /// The (p, a, h, g) shape this config resolves to: `topo` if set, else
  /// the numeric knobs with 0s filled from the balanced defaults.
  TopoParams topo_params() const;
  /// Construct the topology this config describes, with the fault set
  /// (fault_spec, or sampled from fault_fraction/fault_seed) applied.
  DragonflyTopology make_topology() const;

  /// Throw std::invalid_argument with a precise message when any knob is
  /// out of range: malformed/inconsistent p/a/h/g, load outside (0, 1],
  /// non-positive phit counts, flit_phits > packet_phits, or VC counts
  /// below the floor any mechanism needs (>= 1 per class; the engine
  /// auto-raises counts below a specific mechanism's minimum). Called by
  /// run_steady/run_burst before anything is built.
  void validate() const;

  /// Engine-level knobs derived from the above.
  EngineConfig engine_config(const RoutingAlgorithm& routing_algo) const;
  RoutingParams routing_params() const;

  // --- textual round-trip (manifests, checkpoints, drift detection) -----
  /// Canonical textual form: every knob as one `key=value` line in a
  /// fixed order. Doubles are printed with round-trip precision, so
  /// parse(describe()) reconstructs this config exactly. The manifest
  /// ledger and run checkpoints store describe() and compare it on
  /// resume, turning config drift into a pointed error instead of a
  /// silently-wrong resumed run.
  std::string describe() const;

  /// Set one knob by its describe() key (e.g. set("routing", "olm")).
  /// Throws std::invalid_argument naming the key on an unknown key or an
  /// unparsable value. parse() and the manifest grid expansion are built
  /// on this.
  void set(const std::string& key, const std::string& value);

  /// Inverse of describe(), and the manifest base-config reader: accepts
  /// any subset of describe()'s `key=value` lines (missing keys keep
  /// their defaults), blank lines, and `#` comments. Throws
  /// std::invalid_argument naming the offending line on malformed input.
  static SimConfig parse(const std::string& text);
};

/// Defaults for bench binaries: laptop scale unless DF_FULL=1, overridable
/// via DF_H, DF_P, DF_A, DF_G, DF_TOPO, DF_WARMUP, DF_MEASURE, DF_SEED,
/// DF_BURST, DF_TRAFFIC, DF_WORKLOAD, DF_ENGINE, DF_FAULTS.
SimConfig bench_defaults();

}  // namespace dfsim
