// Multi-seed replication: run the same configuration under independent
// seeds and report mean ± stddev, so figure points can carry error bars
// and regressions can be detected beyond single-run noise.
#pragma once

#include <cstdint>
#include <vector>

#include "api/simulator.hpp"
#include "common/stats.hpp"

namespace dfsim {

struct ReplicatedResult {
  RunningStat latency;
  RunningStat accepted_load;
  RunningStat hops;
  int deadlocks = 0;
  int replications = 0;

  double latency_mean() const { return latency.mean(); }
  double latency_stddev() const { return latency.stddev(); }
  double accepted_mean() const { return accepted_load.mean(); }
  double accepted_stddev() const { return accepted_load.stddev(); }
};

/// Run `replications` independent copies of the steady-state experiment,
/// seeding run k with cfg.seed + k.
ReplicatedResult run_replicated(const SimConfig& cfg, int replications);

}  // namespace dfsim
