// Multi-seed replication: run the same configuration under independent
// seeds and report mean ± stddev, so figure points can carry error bars
// and regressions can be detected beyond single-run noise.
#pragma once

#include <cstdint>
#include <vector>

#include "api/simulator.hpp"
#include "common/stats.hpp"

namespace dfsim {

struct ReplicatedResult {
  RunningStat latency;
  RunningStat accepted_load;
  RunningStat hops;
  int deadlocks = 0;
  int replications = 0;

  /// Per-replication seeds and results, in replication order (k-th entry
  /// is replication k). Lets callers audit stream independence and attach
  /// per-run data to error bars.
  std::vector<std::uint64_t> seeds;
  std::vector<SteadyResult> runs;

  double latency_mean() const { return latency.mean(); }
  double latency_stddev() const { return latency.stddev(); }
  double accepted_mean() const { return accepted_load.mean(); }
  double accepted_stddev() const { return accepted_load.stddev(); }
};

/// Seed of replication k for a base seed: splitmix64-derived (the same
/// generator the sweep runtime uses per grid point), so the streams of
/// neighboring base seeds never collide. The old `base + k` scheme made
/// replication k of seed s identical to replication k-1 of seed s+1,
/// silently correlating error bars across sweep points.
std::uint64_t replication_seed(std::uint64_t base, int k);

/// Run `replications` independent copies of the steady-state experiment,
/// seeding run k with replication_seed(cfg.seed, k).
ReplicatedResult run_replicated(const SimConfig& cfg, int replications);

}  // namespace dfsim
