#include "api/sweep.hpp"

#include "common/csv.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed.hpp"

namespace dfsim {

std::vector<SweepPoint> parallel_sweep(const std::vector<SweepJob>& jobs,
                                       const SweepOptions& opts) {
  std::vector<SweepPoint> out(jobs.size());
  runtime::parallel_for(jobs.size(), opts.jobs, [&](std::size_t i) {
    const SweepJob& job = jobs[i];
    SimConfig cfg = job.cfg;
    if (opts.derive_seeds) {
      cfg.seed = runtime::derive_seed(job.cfg.seed, i);
    }
    SweepPoint& p = out[i];
    p.series = job.series;
    p.x = job.x;
    p.seed = cfg.seed;
    p.result = run_steady(cfg);
  });
  return out;
}

std::vector<SweepPoint> parallel_sweep(const SimConfig& base,
                                       const std::vector<std::string>& routings,
                                       const std::vector<double>& loads,
                                       const SweepOptions& opts) {
  std::vector<SweepJob> jobs;
  jobs.reserve(routings.size() * loads.size());
  for (const std::string& routing : routings) {
    for (const double load : loads) {
      SweepJob job;
      job.series = routing;
      job.x = load;
      job.cfg = base;
      job.cfg.routing = routing;
      job.cfg.load = load;
      jobs.push_back(std::move(job));
    }
  }
  return parallel_sweep(jobs, opts);
}

std::vector<SweepPoint> load_sweep(const SimConfig& base,
                                   const std::vector<std::string>& routings,
                                   const std::vector<double>& loads) {
  return parallel_sweep(base, routings, loads, {});
}

void print_sweep(std::ostream& out, const std::vector<SweepPoint>& points,
                 Metric metric, const std::string& x_label) {
  const char* y_label =
      metric == Metric::kLatency ? "avg_latency_cycles" : "accepted_load";
  CsvWriter csv(out, {"series", x_label, y_label});
  for (const SweepPoint& p : points) {
    const double y = metric == Metric::kLatency ? p.result.avg_latency
                                                : p.result.accepted_load;
    csv.point(p.series, p.x, y);
  }
}

std::vector<double> default_loads(double max_load, int points) {
  std::vector<double> loads;
  loads.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    loads.push_back(max_load * static_cast<double>(i) /
                    static_cast<double>(points));
  }
  return loads;
}

}  // namespace dfsim
