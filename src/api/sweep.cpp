#include "api/sweep.hpp"

#include "common/csv.hpp"

namespace dfsim {

std::vector<SweepPoint> load_sweep(const SimConfig& base,
                                   const std::vector<std::string>& routings,
                                   const std::vector<double>& loads) {
  std::vector<SweepPoint> out;
  out.reserve(routings.size() * loads.size());
  for (const std::string& routing : routings) {
    for (const double load : loads) {
      SimConfig cfg = base;
      cfg.routing = routing;
      cfg.load = load;
      SweepPoint p;
      p.series = routing;
      p.x = load;
      p.result = run_steady(cfg);
      out.push_back(std::move(p));
    }
  }
  return out;
}

void print_sweep(std::ostream& out, const std::vector<SweepPoint>& points,
                 Metric metric, const std::string& x_label) {
  const char* y_label =
      metric == Metric::kLatency ? "avg_latency_cycles" : "accepted_load";
  CsvWriter csv(out, {"series", x_label, y_label});
  for (const SweepPoint& p : points) {
    const double y = metric == Metric::kLatency ? p.result.avg_latency
                                                : p.result.accepted_load;
    csv.point(p.series, p.x, y);
  }
}

std::vector<double> default_loads(double max_load, int points) {
  std::vector<double> loads;
  loads.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    loads.push_back(max_load * static_cast<double>(i) /
                    static_cast<double>(points));
  }
  return loads;
}

}  // namespace dfsim
