#include "api/sweep.hpp"

#include "common/csv.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed.hpp"

namespace dfsim {

std::vector<SweepPoint> parallel_sweep(const std::vector<SweepJob>& jobs,
                                       const SweepOptions& opts) {
  std::vector<SweepPoint> out(jobs.size());
  runtime::parallel_for(jobs.size(), opts.jobs, [&](std::size_t i) {
    const SweepJob& job = jobs[i];
    SimConfig cfg = job.cfg;
    if (opts.derive_seeds) {
      cfg.seed = runtime::derive_seed(job.cfg.seed, i);
    }
    SweepPoint& p = out[i];
    p.series = job.series;
    p.x = job.x;
    p.seed = cfg.seed;
    p.result = run_steady(cfg);
  });
  return out;
}

std::vector<SweepPoint> parallel_sweep(const SimConfig& base,
                                       const std::vector<std::string>& routings,
                                       const std::vector<double>& loads,
                                       const SweepOptions& opts) {
  std::vector<SweepJob> jobs;
  jobs.reserve(routings.size() * loads.size());
  for (const std::string& routing : routings) {
    for (const double load : loads) {
      SweepJob job;
      job.series = routing;
      job.x = load;
      job.cfg = base;
      job.cfg.routing = routing;
      job.cfg.load = load;
      jobs.push_back(std::move(job));
    }
  }
  return parallel_sweep(jobs, opts);
}

std::vector<SweepPoint> load_sweep(const SimConfig& base,
                                   const std::vector<std::string>& routings,
                                   const std::vector<double>& loads) {
  return parallel_sweep(base, routings, loads, {});
}

void print_sweep(std::ostream& out, const std::vector<SweepPoint>& points,
                 Metric metric, const std::string& x_label) {
  const char* y_label =
      metric == Metric::kLatency ? "avg_latency_cycles" : "accepted_load";
  // The measured offered load and the source-queue drop rate ride along
  // on every row: a saturated point (drop rate > 0, measured offer below
  // the configured x) is otherwise indistinguishable from an accepted-
  // load plateau with healthy sources.
  CsvWriter csv(out, {"series", x_label, y_label, "offered_load_measured",
                      "source_drop_rate"});
  for (const SweepPoint& p : points) {
    const double y = metric == Metric::kLatency ? p.result.avg_latency
                                                : p.result.accepted_load;
    csv.row({p.series, CsvWriter::fmt(p.x), CsvWriter::fmt(y),
             CsvWriter::fmt(p.result.offered_load),
             CsvWriter::fmt(p.result.source_drop_rate)});
  }
}

std::vector<PhasedPoint> parallel_phased_sweep(
    const std::vector<PhasedJob>& jobs, const SweepOptions& opts) {
  std::vector<PhasedPoint> out(jobs.size());
  runtime::parallel_for(jobs.size(), opts.jobs, [&](std::size_t i) {
    const PhasedJob& job = jobs[i];
    SimConfig cfg = job.cfg;
    if (opts.derive_seeds) {
      cfg.seed = runtime::derive_seed(job.cfg.seed, i);
    }
    PhasedPoint& p = out[i];
    p.series = job.series;
    p.seed = cfg.seed;
    p.result = run_phased(cfg, job.phases);
  });
  return out;
}

void print_phased(std::ostream& out,
                  const std::vector<PhasedPoint>& points) {
  CsvWriter csv(out, {"series", "cycle_end", "accepted_load",
                      "offered_load_measured", "avg_latency_cycles",
                      "pattern"});
  for (const PhasedPoint& p : points) {
    for (const PhaseWindow& w : p.result.windows) {
      csv.row({p.series, CsvWriter::fmt(static_cast<double>(w.stats.end)),
               CsvWriter::fmt(w.stats.accepted_load),
               CsvWriter::fmt(w.stats.offered_load),
               CsvWriter::fmt(w.stats.avg_latency), w.pattern});
    }
    csv.row({p.series,
             CsvWriter::fmt(static_cast<double>(p.result.drain.end)),
             CsvWriter::fmt(p.result.drain.accepted_load),
             CsvWriter::fmt(p.result.drain.offered_load),
             CsvWriter::fmt(p.result.drain.avg_latency), "drain"});
  }
}

std::vector<double> default_loads(double max_load, int points) {
  std::vector<double> loads;
  loads.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    loads.push_back(max_load * static_cast<double>(i) /
                    static_cast<double>(points));
  }
  return loads;
}

}  // namespace dfsim
