#include "api/sweep.hpp"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <system_error>

#include "api/claim.hpp"
#include "common/csv.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed.hpp"

namespace dfsim {

ExperimentResult run_experiment_point(const ExperimentPoint& pt,
                                      std::uint64_t seed, std::size_t index,
                                      const SweepOptions& opts) {
  SimConfig cfg = pt.cfg;
  cfg.seed = seed;
  SimulationRun run = pt.phases.empty()
                          ? SimulationRun::steady(cfg)
                          : SimulationRun::phased(cfg, pt.phases);
  const std::string ckpt =
      (opts.checkpoint_every > 0 && opts.checkpoint_path)
          ? opts.checkpoint_path(index)
          : std::string();
  if (!ckpt.empty() && opts.resume && std::filesystem::exists(ckpt)) {
    std::ifstream is(ckpt, std::ios::binary);
    if (!is) {
      throw std::runtime_error("cannot open checkpoint " + ckpt);
    }
    run.restore(is);
  }
  if (ckpt.empty()) {
    run.run_to_completion();
  } else {
    // Write-to-temp + atomic rename: a checkpoint file either is a
    // complete snapshot or does not exist, never a torn write. The temp
    // name is unique per writer so two claimers racing on one stolen
    // point cannot interleave into the same temp file.
    while (run.advance(opts.checkpoint_every)) {
      const std::string tmp = unique_temp_path(ckpt);
      {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        run.save_checkpoint(os);
        if (!os) {
          throw std::runtime_error("failed to write checkpoint " + tmp);
        }
      }
      std::filesystem::rename(tmp, ckpt);
      if (opts.on_checkpoint) opts.on_checkpoint(index);
    }
    std::error_code ec;
    std::filesystem::remove(ckpt, ec);  // point finished; drop the snapshot
  }

  ExperimentResult r;
  r.series = pt.series;
  r.x = pt.x;
  r.seed = seed;
  r.is_phased = !pt.phases.empty();
  if (r.is_phased) {
    r.phased = run.phased_result();
    r.steady = r.phased.total;
  } else {
    r.steady = run.steady_result();
  }
  return r;
}

std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentPoint>& points, const SweepOptions& opts) {
  std::vector<ExperimentResult> out(points.size());
  std::mutex progress_mu;
  std::size_t completed = 0;
  runtime::parallel_for(points.size(), opts.jobs, [&](std::size_t i) {
    const std::uint64_t seed = opts.derive_seeds
                                   ? runtime::derive_seed(points[i].cfg.seed, i)
                                   : points[i].cfg.seed;
    out[i] = run_experiment_point(points[i], seed, i, opts);
    if (opts.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      opts.progress(++completed, points.size());
    }
  });
  return out;
}

std::vector<ExperimentPoint> sweep_grid(
    const SimConfig& base, const std::vector<std::string>& routings,
    const std::vector<double>& loads) {
  std::vector<ExperimentPoint> points;
  points.reserve(routings.size() * loads.size());
  for (const std::string& routing : routings) {
    for (const double load : loads) {
      ExperimentPoint pt;
      pt.series = routing;
      pt.x = load;
      pt.cfg = base;
      pt.cfg.routing = routing;
      pt.cfg.load = load;
      points.push_back(std::move(pt));
    }
  }
  return points;
}

namespace {

// Shared CSV row emitters behind the public printers.
void sweep_rows(std::ostream& out, Metric metric, const std::string& x_label,
                std::size_t n,
                const std::function<void(std::size_t, std::string&, double&,
                                         SteadyResult&)>& get) {
  const char* y_label =
      metric == Metric::kLatency ? "avg_latency_cycles" : "accepted_load";
  // The measured offered load and the source-queue drop rate ride along
  // on every row: a saturated point (drop rate > 0, measured offer below
  // the configured x) is otherwise indistinguishable from an accepted-
  // load plateau with healthy sources.
  CsvWriter csv(out, {"series", x_label, y_label, "offered_load_measured",
                      "source_drop_rate"});
  for (std::size_t i = 0; i < n; ++i) {
    std::string series;
    double x = 0.0;
    SteadyResult r;
    get(i, series, x, r);
    const double y =
        metric == Metric::kLatency ? r.avg_latency : r.accepted_load;
    csv.row({series, CsvWriter::fmt(x), CsvWriter::fmt(y),
             CsvWriter::fmt(r.offered_load),
             CsvWriter::fmt(r.source_drop_rate)});
  }
}

void phased_rows(std::ostream& out, std::size_t n,
                 const std::function<void(std::size_t, std::string&,
                                          PhasedResult&)>& get) {
  CsvWriter csv(out, {"series", "cycle_end", "accepted_load",
                      "offered_load_measured", "avg_latency_cycles",
                      "pattern"});
  for (std::size_t i = 0; i < n; ++i) {
    std::string series;
    PhasedResult r;
    get(i, series, r);
    for (const PhaseWindow& w : r.windows) {
      csv.row({series, CsvWriter::fmt(static_cast<double>(w.stats.end)),
               CsvWriter::fmt(w.stats.accepted_load),
               CsvWriter::fmt(w.stats.offered_load),
               CsvWriter::fmt(w.stats.avg_latency), w.pattern});
    }
    csv.row({series, CsvWriter::fmt(static_cast<double>(r.drain.end)),
             CsvWriter::fmt(r.drain.accepted_load),
             CsvWriter::fmt(r.drain.offered_load),
             CsvWriter::fmt(r.drain.avg_latency), "drain"});
  }
}

}  // namespace

void print_sweep(std::ostream& out,
                 const std::vector<ExperimentResult>& results, Metric metric,
                 const std::string& x_label) {
  sweep_rows(out, metric, x_label, results.size(),
             [&](std::size_t i, std::string& series, double& x,
                 SteadyResult& r) {
               series = results[i].series;
               x = results[i].x;
               r = results[i].steady;
             });
}

void print_phased(std::ostream& out,
                  const std::vector<ExperimentResult>& results) {
  phased_rows(out, results.size(),
              [&](std::size_t i, std::string& series, PhasedResult& r) {
                series = results[i].series;
                r = results[i].phased;
              });
}

std::vector<double> default_loads(double max_load, int points) {
  std::vector<double> loads;
  loads.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    loads.push_back(max_load * static_cast<double>(i) /
                    static_cast<double>(points));
  }
  return loads;
}

}  // namespace dfsim
