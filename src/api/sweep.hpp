// Experiment grids shared by the figure benches and the manifest runner:
// run a load sweep (or an arbitrary grid of steady/phased experiments)
// over several routing mechanisms and print paper-style CSV series.
//
// All grids execute through ONE path — run_experiments — on top of the
// parallel runtime (src/runtime/): grid points are independent
// simulations, so they are sharded across a thread pool. Each point runs
// with a deterministic seed derived from the base config's seed and the
// point's grid index, which makes the output bit-identical for any worker
// count — `--jobs=1` and `--jobs=N` produce the same CSV bytes in the
// same order. The same path optionally checkpoints each in-flight run
// periodically and resumes from an existing checkpoint, which is what the
// manifest runner (api/manifest.hpp) builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "api/simulator.hpp"

namespace dfsim {

// --- the unified experiment surface --------------------------------------

/// One grid point: the fully-configured run plus the CSV series/x it
/// reports under. An empty phase schedule means a steady-state run
/// (run_steady semantics); a non-empty one a phased run (run_phased).
struct ExperimentPoint {
  std::string series;
  double x = 0.0;
  SimConfig cfg;
  std::vector<Phase> phases;  ///< empty = steady-state experiment
};

/// What one point produced. `steady` is always filled: for steady points
/// it is the run's SteadyResult, for phased points it aliases
/// `phased.total` (the whole-run aggregate) so series-level summaries
/// never need to branch on the shape.
struct ExperimentResult {
  std::string series;
  double x = 0.0;
  std::uint64_t seed = 0;  ///< derived per-point seed the run used
  bool is_phased = false;
  SteadyResult steady;
  PhasedResult phased;  ///< windows/drain populated only when is_phased
};

struct SweepOptions {
  /// Worker threads; <= 0 resolves via the runtime default (--jobs /
  /// DF_JOBS / hardware concurrency). 1 forces the serial path.
  int jobs = 0;
  /// Derive a per-point seed from cfg.seed and the grid index (default).
  /// Off = every point runs with its config's seed untouched.
  bool derive_seeds = true;
  /// Called once per completed point, serialized under a lock:
  /// (points completed so far, total points). Null = silent.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Periodic checkpointing: every `checkpoint_every` simulated cycles
  /// the in-flight run is serialized to checkpoint_path(index) via
  /// write-to-temp + atomic rename, and the file is removed when the
  /// point completes. <= 0 or a null checkpoint_path = run straight
  /// through with zero checkpoint overhead.
  Cycle checkpoint_every = 0;
  std::function<std::string(std::size_t)> checkpoint_path;
  /// With checkpointing configured: if checkpoint_path(index) exists,
  /// restore the run from it and continue instead of starting the point
  /// from cycle 0 (bit-identical to the uninterrupted run).
  bool resume = false;
  /// Called with the point index after every periodic checkpoint lands
  /// (atomic rename included). The manifest claimer uses this as its
  /// lease heartbeat: a long-running point re-stamps its claim file on
  /// every checkpoint, so live work is never stolen by TTL expiry.
  std::function<void(std::size_t)> on_checkpoint;
};

/// Run every grid point, in parallel, preserving point order in the
/// returned vector. The single execution path behind every bench grid
/// and the manifest runner.
std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentPoint>& points, const SweepOptions& opts = {});

/// Execute a single prepared point with an already-derived seed —
/// the per-point body of run_experiments, exposed so the manifest runner
/// shares it exactly. `index` feeds checkpoint_path.
ExperimentResult run_experiment_point(const ExperimentPoint& pt,
                                      std::uint64_t seed, std::size_t index,
                                      const SweepOptions& opts);

/// Build the classic (routing, load) steady grid: routings-major,
/// loads-minor — identical point order to the historical serial loop.
std::vector<ExperimentPoint> sweep_grid(const SimConfig& base,
                                        const std::vector<std::string>& routings,
                                        const std::vector<double>& loads);

/// Print one metric of a steady sweep as `series,x,y` CSV rows.
enum class Metric { kLatency, kThroughput };
void print_sweep(std::ostream& out,
                 const std::vector<ExperimentResult>& results, Metric metric,
                 const std::string& x_label);

/// Print a phased sweep as CSV rows of per-window throughput over time:
/// series,cycle_end,accepted_load,offered_load_measured,
/// avg_latency_cycles,pattern (cycle_end is absolute, warmup included;
/// the drain window rides along with pattern "drain").
void print_phased(std::ostream& out,
                  const std::vector<ExperimentResult>& results);

/// Standard load grids used by the figure benches.
std::vector<double> default_loads(double max_load, int points);

}  // namespace dfsim
