// Sweep helpers shared by the figure benches: run a load sweep (or an
// arbitrary one-dimensional parameter sweep) over several routing
// mechanisms and print paper-style CSV series.
//
// All sweeps execute through the parallel runtime (src/runtime/): grid
// points are independent simulations, so they are sharded across a thread
// pool. Each point runs with a deterministic seed derived from the base
// config's seed and the point's grid index, which makes the output
// bit-identical for any worker count — `--jobs=1` and `--jobs=N` produce
// the same CSV bytes in the same order.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "api/simulator.hpp"

namespace dfsim {

struct SweepPoint {
  std::string series;
  double x = 0.0;
  std::uint64_t seed = 0;  ///< derived per-point seed the run used
  SteadyResult result;
};

/// One prepared grid point for the generic sweep: the fully-configured
/// SimConfig plus the CSV series/x it reports under.
struct SweepJob {
  std::string series;
  double x = 0.0;
  SimConfig cfg;
};

struct SweepOptions {
  /// Worker threads; <= 0 resolves via the runtime default (--jobs /
  /// DF_JOBS / hardware concurrency). 1 forces the serial path.
  int jobs = 0;
  /// Derive a per-point seed from cfg.seed and the grid index (default).
  /// Off = every point runs with its config's seed untouched.
  bool derive_seeds = true;
};

/// Run `run_steady` for every (routing, load) pair of the grid, in
/// parallel. Output order is routings-major, loads-minor — identical to
/// the historical serial loop.
std::vector<SweepPoint> parallel_sweep(const SimConfig& base,
                                       const std::vector<std::string>& routings,
                                       const std::vector<double>& loads,
                                       const SweepOptions& opts = {});

/// Generic grid: run `run_steady` for every prepared job, in parallel,
/// preserving the jobs' order in the returned vector.
std::vector<SweepPoint> parallel_sweep(const std::vector<SweepJob>& jobs,
                                       const SweepOptions& opts = {});

/// Back-compat alias for the (routing, load) sweep with default options.
std::vector<SweepPoint> load_sweep(const SimConfig& base,
                                   const std::vector<std::string>& routings,
                                   const std::vector<double>& loads);

/// Print one metric of a sweep as `series,x,y` rows.
enum class Metric { kLatency, kThroughput };
void print_sweep(std::ostream& out, const std::vector<SweepPoint>& points,
                 Metric metric, const std::string& x_label);

/// Standard load grids used by the figure benches.
std::vector<double> default_loads(double max_load, int points);

// --- phased sweeps -------------------------------------------------------

/// One prepared phased run (api/simulator.hpp run_phased) of a transient
/// sweep: the configured base run plus its phase schedule.
struct PhasedJob {
  std::string series;
  SimConfig cfg;
  std::vector<Phase> phases;
};

struct PhasedPoint {
  std::string series;
  std::uint64_t seed = 0;  ///< derived per-job seed the run used
  PhasedResult result;
};

/// Run run_phased for every job, in parallel, preserving job order. Seeds
/// derive from each job's cfg.seed and its index (SweepOptions), so the
/// output is bit-identical for any worker count.
std::vector<PhasedPoint> parallel_phased_sweep(
    const std::vector<PhasedJob>& jobs, const SweepOptions& opts = {});

/// Print a phased sweep as CSV rows of per-window throughput over time:
/// series,cycle_end,accepted_load,offered_load_measured,
/// avg_latency_cycles,pattern (cycle_end is absolute, warmup included;
/// the drain window rides along with pattern "drain").
void print_phased(std::ostream& out, const std::vector<PhasedPoint>& points);

}  // namespace dfsim
