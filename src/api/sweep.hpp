// Sweep helpers shared by the figure benches: run a load sweep (or a
// one-dimensional parameter sweep) over several routing mechanisms and
// print paper-style CSV series.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "api/simulator.hpp"

namespace dfsim {

struct SweepPoint {
  std::string series;
  double x = 0.0;
  SteadyResult result;
};

/// Run `run_steady` for every (routing, load) pair.
std::vector<SweepPoint> load_sweep(const SimConfig& base,
                                   const std::vector<std::string>& routings,
                                   const std::vector<double>& loads);

/// Print one metric of a sweep as `series,x,y` rows.
enum class Metric { kLatency, kThroughput };
void print_sweep(std::ostream& out, const std::vector<SweepPoint>& points,
                 Metric metric, const std::string& x_label);

/// Standard load grids used by the figure benches.
std::vector<double> default_loads(double max_load, int points);

}  // namespace dfsim
