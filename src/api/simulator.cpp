#include "api/simulator.hpp"

#include <stdexcept>

#include "metrics/collector.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "traffic/factory.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {

namespace {

struct Harness {
  explicit Harness(const SimConfig& cfg, InjectionProcess injection)
      : topo(cfg.make_topology()),
        routing(make_routing(cfg.routing, topo, cfg.routing_params())),
        pattern(make_pattern(topo, cfg.pattern, cfg.pattern_offset,
                             cfg.global_fraction)),
        collector(cfg.warmup_cycles, topo.num_terminals()),
        engine(topo, cfg.engine_config(*routing), *routing, *pattern,
               injection) {
    engine.set_delivery_hook([this](const Packet& pkt, Cycle now) {
      collector.on_delivered(pkt, now);
    });
    engine.set_generation_hook([this](Cycle now, bool accepted) {
      collector.on_generated(now, accepted);
    });
  }

  DragonflyTopology topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<TrafficPattern> pattern;
  Collector collector;
  Engine engine;
};

/// The whole-run aggregate both run_steady and run_phased report — one
/// assembly point so a new SteadyResult field cannot be forgotten in one
/// of them.
SteadyResult steady_result_from(const Harness& hx, const SimConfig& cfg) {
  SteadyResult out;
  out.avg_latency = hx.collector.avg_latency();
  out.p99_latency = hx.collector.p99_latency();
  out.accepted_load = hx.collector.accepted_load(hx.engine.now());
  out.offered_load =
      hx.collector.offered_load(hx.engine.now(), cfg.packet_phits);
  out.source_drop_rate = hx.collector.drop_rate();
  out.avg_hops = hx.collector.avg_hops();
  out.delivered = hx.collector.delivered_packets();
  out.dead_destination_drops = hx.engine.dead_destination_drops();
  out.deadlock = hx.engine.deadlock_detected();
  return out;
}

}  // namespace

SteadyResult run_steady(const SimConfig& cfg) {
  cfg.validate();
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBernoulli;
  inj.load = cfg.load;
  inj.onoff_on = cfg.onoff_on;
  inj.onoff_off = cfg.onoff_off;

  Harness hx(cfg, inj);
  const Cycle end = cfg.warmup_cycles + cfg.measure_cycles;
  hx.engine.run_until(end);
  return steady_result_from(hx, cfg);
}

BurstResult run_burst(const SimConfig& cfg) {
  cfg.validate();
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBurst;
  inj.burst_packets = cfg.burst_packets;

  SimConfig adjusted = cfg;
  adjusted.warmup_cycles = 0;  // every packet counts in a drain run
  Harness hx(adjusted, inj);

  // Degraded topologies: dead terminals never inject their burst, and a
  // live source's packet to a dead destination is dropped at injection
  // (counted) — both must come off the drain target or the loop would
  // spin to max_cycles on every faulted burst run.
  std::uint64_t live_terminals = 0;
  for (NodeId t = 0; t < hx.topo.num_terminals(); ++t) {
    if (hx.topo.terminal_alive(t)) ++live_terminals;
  }
  const auto expected = cfg.burst_packets * live_terminals;
  while (hx.collector.delivered_packets_total() +
                 hx.engine.dead_destination_drops() <
             expected &&
         hx.engine.now() < cfg.max_cycles && hx.engine.step()) {
  }

  BurstResult out;
  out.consumption_cycles = hx.engine.now();
  out.completed = hx.collector.delivered_packets_total() +
                      hx.engine.dead_destination_drops() ==
                  expected;
  out.deadlock = hx.engine.deadlock_detected();
  return out;
}

PhasedResult run_phased(const SimConfig& cfg,
                        const std::vector<Phase>& phases) {
  cfg.validate();
  if (phases.empty()) {
    throw std::invalid_argument("run_phased: the phase schedule is empty");
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& ph = phases[i];
    if (ph.cycles < 1) {
      throw std::invalid_argument("run_phased: phase " + std::to_string(i) +
                                  " has non-positive length");
    }
    if (ph.windows < 1 || static_cast<Cycle>(ph.windows) > ph.cycles) {
      throw std::invalid_argument(
          "run_phased: phase " + std::to_string(i) + " wants " +
          std::to_string(ph.windows) + " windows in " +
          std::to_string(ph.cycles) + " cycles");
    }
    if (!ph.pattern.empty()) validate_pattern_spec(ph.pattern);
    // Negative = keep; otherwise [0, 1]. NaN satisfies neither arm and is
    // rejected rather than silently meaning "keep".
    if (!(ph.load < 0.0 || (ph.load >= 0.0 && ph.load <= 1.0))) {
      throw std::invalid_argument("run_phased: phase " + std::to_string(i) +
                                  " load must be < 0 (keep) or in [0, 1]");
    }
    // The same ON/OFF duty feasibility check validate() applies to the
    // base load: a switched-to load the duty cycle cannot sustain would
    // clamp the while-ON probability and silently mismeasure.
    if (cfg.onoff_on > 0.0 && ph.load >= 0.0) {
      const double duty = cfg.onoff_on / (cfg.onoff_on + cfg.onoff_off);
      if (ph.load > duty * static_cast<double>(cfg.packet_phits)) {
        throw std::invalid_argument(
            "run_phased: phase " + std::to_string(i) + " load " +
            std::to_string(ph.load) +
            " exceeds what the ON/OFF duty cycle can sustain (see "
            "SimConfig::validate)");
      }
    }
  }

  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBernoulli;
  inj.load = cfg.load;
  inj.onoff_on = cfg.onoff_on;
  inj.onoff_off = cfg.onoff_off;

  Harness hx(cfg, inj);
  PhasedResult out;

  // Warmup under the config's own pattern/load, exactly as run_steady.
  hx.engine.run_until(cfg.warmup_cycles);

  // Patterns built for phase switches must outlive the engine run.
  std::vector<std::unique_ptr<TrafficPattern>> switched;
  std::string active_pattern = hx.pattern->name();
  double active_load = cfg.load;

  for (std::size_t i = 0;
       i < phases.size() && !hx.engine.deadlock_detected(); ++i) {
    const Phase& ph = phases[i];
    if (!ph.pattern.empty()) {
      switched.push_back(make_pattern(hx.topo, ph.pattern,
                                      cfg.pattern_offset,
                                      cfg.global_fraction));
      hx.engine.set_pattern(*switched.back());
      active_pattern = switched.back()->name();
    }
    if (ph.load >= 0.0) {
      hx.engine.set_offered_load(ph.load);
      active_load = ph.load;
    }
    const Cycle phase_start = hx.engine.now();
    const Cycle stride = ph.cycles / ph.windows;
    for (int w = 0; w < ph.windows; ++w) {
      const Cycle start = hx.engine.now();
      // The last window absorbs the integer-division remainder.
      const Cycle end = w + 1 == ph.windows ? phase_start + ph.cycles
                                            : start + stride;
      hx.engine.run_until(end);
      PhaseWindow pw;
      pw.phase = static_cast<int>(i);
      pw.window = w;
      pw.pattern = active_pattern;
      pw.load = active_load;
      pw.stats =
          hx.collector.cut_window(start, hx.engine.now(), cfg.packet_phits);
      out.windows.push_back(std::move(pw));
      if (hx.engine.deadlock_detected()) break;
    }
  }

  // Drain: stop injection and let in-flight traffic land, so the windows
  // plus the drain account for every delivery of the run.
  const Cycle drain_start = hx.engine.now();
  if (!hx.engine.deadlock_detected()) {
    hx.engine.set_offered_load(0.0);
    const Cycle drain_deadline = drain_start + cfg.max_cycles;
    while (hx.engine.packets_in_flight() > 0 &&
           hx.engine.now() < drain_deadline && hx.engine.step()) {
    }
  }
  out.drain = hx.collector.cut_window(drain_start, hx.engine.now(),
                                      cfg.packet_phits);
  out.drained = hx.engine.packets_in_flight() == 0 &&
                !hx.engine.deadlock_detected();
  out.total = steady_result_from(hx, cfg);
  return out;
}

}  // namespace dfsim
