#include "api/simulator.hpp"

#include "metrics/collector.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {

namespace {

struct Harness {
  explicit Harness(const SimConfig& cfg, InjectionProcess injection)
      : topo(cfg.make_topology()),
        routing(make_routing(cfg.routing, topo, cfg.routing_params())),
        pattern(make_pattern(topo, cfg.pattern, cfg.pattern_offset,
                             cfg.global_fraction)),
        collector(cfg.warmup_cycles, topo.num_terminals()),
        engine(topo, cfg.engine_config(*routing), *routing, *pattern,
               injection) {
    engine.set_delivery_hook([this](const Packet& pkt, Cycle now) {
      collector.on_delivered(pkt, now);
    });
    engine.set_generation_hook([this](Cycle now, bool accepted) {
      collector.on_generated(now, accepted);
    });
  }

  DragonflyTopology topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<TrafficPattern> pattern;
  Collector collector;
  Engine engine;
};

}  // namespace

SteadyResult run_steady(const SimConfig& cfg) {
  cfg.validate();
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBernoulli;
  inj.load = cfg.load;

  Harness hx(cfg, inj);
  const Cycle end = cfg.warmup_cycles + cfg.measure_cycles;
  hx.engine.run_until(end);

  SteadyResult out;
  out.avg_latency = hx.collector.avg_latency();
  out.p99_latency = hx.collector.p99_latency();
  out.accepted_load = hx.collector.accepted_load(hx.engine.now());
  out.offered_load =
      hx.collector.offered_load(hx.engine.now(), cfg.packet_phits);
  out.source_drop_rate = hx.collector.drop_rate();
  out.avg_hops = hx.collector.avg_hops();
  out.delivered = hx.collector.delivered_packets();
  out.dead_destination_drops = hx.engine.dead_destination_drops();
  out.deadlock = hx.engine.deadlock_detected();
  return out;
}

BurstResult run_burst(const SimConfig& cfg) {
  cfg.validate();
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBurst;
  inj.burst_packets = cfg.burst_packets;

  SimConfig adjusted = cfg;
  adjusted.warmup_cycles = 0;  // every packet counts in a drain run
  Harness hx(adjusted, inj);

  // Degraded topologies: dead terminals never inject their burst, and a
  // live source's packet to a dead destination is dropped at injection
  // (counted) — both must come off the drain target or the loop would
  // spin to max_cycles on every faulted burst run.
  std::uint64_t live_terminals = 0;
  for (NodeId t = 0; t < hx.topo.num_terminals(); ++t) {
    if (hx.topo.terminal_alive(t)) ++live_terminals;
  }
  const auto expected = cfg.burst_packets * live_terminals;
  while (hx.collector.delivered_packets_total() +
                 hx.engine.dead_destination_drops() <
             expected &&
         hx.engine.now() < cfg.max_cycles && hx.engine.step()) {
  }

  BurstResult out;
  out.consumption_cycles = hx.engine.now();
  out.completed = hx.collector.delivered_packets_total() +
                      hx.engine.dead_destination_drops() ==
                  expected;
  out.deadlock = hx.engine.deadlock_detected();
  return out;
}

}  // namespace dfsim
