#include "api/simulator.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/serialize.hpp"
#include "metrics/collector.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "traffic/factory.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace dfsim {

// Named (not anonymous) namespace: SimulationRun::Impl holds a Harness by
// value, and a class with external linkage must not embed an
// internal-linkage type (-Wsubobject-linkage). The type still lives only
// in this translation unit.
namespace simrun_detail {

struct Harness {
  explicit Harness(const SimConfig& cfg, InjectionProcess injection)
      : topo(cfg.make_topology()),
        routing(make_routing(cfg.routing, topo, cfg.routing_params())),
        pattern(make_pattern(topo, cfg.pattern, cfg.pattern_offset,
                             cfg.global_fraction)),
        workload(cfg.workload.empty() ? nullptr
                                      : make_workload(&topo, cfg.workload)),
        collector(cfg.warmup_cycles, topo.num_terminals()),
        // A Workload IS a TrafficPattern: when one is configured it takes
        // over the engine's destination draws wholesale (cfg.pattern is
        // ignored, as documented on the knob).
        engine(topo, cfg.engine_config(*routing), *routing,
               workload != nullptr ? static_cast<TrafficPattern&>(*workload)
                                   : *pattern,
               injection) {
    engine.set_delivery_hook([this](const Packet& pkt, Cycle now) {
      collector.on_delivered(pkt, now);
    });
    engine.set_generation_hook([this](Cycle now, bool accepted) {
      collector.on_generated(now, accepted);
    });
    if (workload != nullptr) {
      engine.set_workload(workload.get());
      const std::vector<double> loads = workload->terminal_loads(cfg.load);
      if (!loads.empty()) engine.set_terminal_loads(loads);
      collector.set_job_map(workload->job_of_terminal(),
                            workload->num_jobs());
      // Trace replay: every injection comes from the file's rows; the
      // Bernoulli sources must stay silent.
      if (workload->is_trace()) engine.set_offered_load(0.0);
    }
  }

  DragonflyTopology topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<TrafficPattern> pattern;
  std::unique_ptr<Workload> workload;
  Collector collector;
  Engine engine;
};

/// The whole-run aggregate both run_steady and run_phased report — one
/// assembly point so a new SteadyResult field cannot be forgotten in one
/// of them.
SteadyResult steady_result_from(const Harness& hx, const SimConfig& cfg) {
  SteadyResult out;
  out.avg_latency = hx.collector.avg_latency();
  out.p99_latency = hx.collector.p99_latency();
  out.accepted_load = hx.collector.accepted_load(hx.engine.now());
  out.offered_load =
      hx.collector.offered_load(hx.engine.now(), cfg.packet_phits);
  out.source_drop_rate = hx.collector.drop_rate();
  out.avg_hops = hx.collector.avg_hops();
  out.delivered = hx.collector.delivered_packets();
  out.dead_destination_drops = hx.engine.dead_destination_drops();
  out.deadlock = hx.engine.deadlock_detected();
  if (hx.collector.num_jobs() > 0) {
    // Non-advancing totals: steady results may be derived repeatedly.
    out.per_job =
        hx.collector.job_totals(cfg.warmup_cycles, hx.engine.now());
  }
  return out;
}

InjectionProcess bernoulli_injection(const SimConfig& cfg) {
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBernoulli;
  inj.load = cfg.load;
  inj.onoff_on = cfg.onoff_on;
  inj.onoff_off = cfg.onoff_off;
  return inj;
}

void validate_phases(const SimConfig& cfg, const std::vector<Phase>& phases) {
  if (phases.empty()) {
    throw std::invalid_argument("run_phased: the phase schedule is empty");
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& ph = phases[i];
    if (ph.cycles < 1) {
      throw std::invalid_argument("run_phased: phase " + std::to_string(i) +
                                  " has non-positive length");
    }
    if (ph.windows < 1 || static_cast<Cycle>(ph.windows) > ph.cycles) {
      throw std::invalid_argument(
          "run_phased: phase " + std::to_string(i) + " wants " +
          std::to_string(ph.windows) + " windows in " +
          std::to_string(ph.cycles) + " cycles");
    }
    if (!cfg.workload.empty() && (!ph.pattern.empty() || ph.load >= 0.0)) {
      throw std::invalid_argument(
          "run_phased: phase " + std::to_string(i) +
          " switches the pattern or load, but the run has workload \"" +
          cfg.workload +
          "\": workloads own the destination draws and per-terminal "
          "loads, so mid-run phase switches are not supported (drop the "
          "switch or the workload)");
    }
    if (!ph.pattern.empty()) validate_pattern_spec(ph.pattern);
    // Negative = keep; otherwise [0, 1]. NaN satisfies neither arm and is
    // rejected rather than silently meaning "keep".
    if (!(ph.load < 0.0 || (ph.load >= 0.0 && ph.load <= 1.0))) {
      throw std::invalid_argument("run_phased: phase " + std::to_string(i) +
                                  " load must be < 0 (keep) or in [0, 1]");
    }
    // The same ON/OFF duty feasibility check validate() applies to the
    // base load: a switched-to load the duty cycle cannot sustain would
    // clamp the while-ON probability and silently mismeasure.
    if (cfg.onoff_on > 0.0 && ph.load >= 0.0) {
      const double duty = cfg.onoff_on / (cfg.onoff_on + cfg.onoff_off);
      if (ph.load > duty * static_cast<double>(cfg.packet_phits)) {
        throw std::invalid_argument(
            "run_phased: phase " + std::to_string(i) + " load " +
            std::to_string(ph.load) +
            " exceeds what the ON/OFF duty cycle can sustain (see "
            "SimConfig::validate)");
      }
    }
  }
}

constexpr char kRunMagic[8] = {'D', 'F', 'R', 'U', 'N', 'C', 'K', '\n'};

void write_traffic_window(std::ostream& os, const TrafficWindow& w) {
  ser::write_u64(os, w.start);
  ser::write_u64(os, w.end);
  ser::write_u64(os, w.delivered);
  ser::write_u64(os, w.delivered_phits);
  ser::write_u64(os, w.generated);
  ser::write_u64(os, w.dropped);
  ser::write_f64(os, w.avg_latency);
  ser::write_f64(os, w.accepted_load);
  ser::write_f64(os, w.offered_load);
  ser::write_f64(os, w.drop_rate);
}

void write_window_vec(std::ostream& os,
                      const std::vector<TrafficWindow>& ws) {
  ser::write_u64(os, ws.size());
  for (const TrafficWindow& w : ws) write_traffic_window(os, w);
}

std::vector<TrafficWindow> read_window_vec(std::istream& is);

TrafficWindow read_traffic_window(std::istream& is) {
  TrafficWindow w;
  w.start = ser::read_u64(is, "window start");
  w.end = ser::read_u64(is, "window end");
  w.delivered = ser::read_u64(is, "window delivered");
  w.delivered_phits = ser::read_u64(is, "window delivered phits");
  w.generated = ser::read_u64(is, "window generated");
  w.dropped = ser::read_u64(is, "window dropped");
  w.avg_latency = ser::read_f64(is, "window avg latency");
  w.accepted_load = ser::read_f64(is, "window accepted load");
  w.offered_load = ser::read_f64(is, "window offered load");
  w.drop_rate = ser::read_f64(is, "window drop rate");
  return w;
}

std::vector<TrafficWindow> read_window_vec(std::istream& is) {
  const std::uint64_t n = ser::read_u64(is, "per-job window count");
  if (n > (1ULL << 20)) {
    throw std::runtime_error(
        "checkpoint corrupt: implausible per-job window count");
  }
  std::vector<TrafficWindow> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(read_traffic_window(is));
  }
  return out;
}

/// Name the first knob that differs between two describe() texts, for the
/// config-drift error message.
std::string first_config_difference(const std::string& saved,
                                    const std::string& current) {
  std::istringstream a(saved), b(current);
  std::string la, lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) return "(identical texts?)";
    if (!ga || !gb || la != lb) {
      return "checkpoint has \"" + (ga ? la : std::string("<missing>")) +
             "\" but this run was built with \"" +
             (gb ? lb : std::string("<missing>")) + "\"";
    }
  }
}

}  // namespace simrun_detail

using namespace simrun_detail;

// ---------------------------------------------------------------------------
// SimulationRun: the staged state machine every run shape executes on.
// ---------------------------------------------------------------------------

struct SimulationRun::Impl {
  enum class Kind : std::uint8_t { kSteady = 0, kBurst = 1, kPhased = 2 };
  enum class Stage : std::uint8_t {
    kWarmup = 0,
    kPhaseRun = 1,
    kDrain = 2,
    kDone = 3,
  };

  Impl(const SimConfig& c, const InjectionProcess& inj)
      : cfg(c), hx(c, inj) {}

  SimConfig cfg;         // post-adjustment (burst runs zero the warmup)
  std::string cfg_text;  // cfg.describe(), captured at construction
  Kind kind = Kind::kSteady;
  std::vector<Phase> phases;  // steady: one synthesized measure phase
  Harness hx;
  bool advanced = false;  // any advance() or restore() happened

  // --- stage cursor (all serialized) ------------------------------------
  Stage stage = Stage::kWarmup;
  std::size_t phase_idx = 0;
  int window_idx = 0;
  bool phase_entered = false;  // pattern/load switch of phase_idx applied
  Cycle phase_start = 0;
  Cycle window_start = 0;
  Cycle drain_start = 0;
  bool draining = false;  // drain entered (injection already stopped)
  std::string active_pattern_spec;  // "" = the config's own pattern
  std::string active_pattern_name;
  double active_load = 0.0;
  std::uint64_t burst_expected = 0;

  // Pattern built for the most recent phase switch; the engine only ever
  // points at the latest one, and in-flight packets carry their own
  // destinations, so earlier switches need not be kept alive.
  std::unique_ptr<TrafficPattern> switched;

  // --- accumulated results (serialized) ----------------------------------
  std::vector<PhaseWindow> windows;
  TrafficWindow drain_window;
  std::vector<TrafficWindow> drain_per_job;
  bool drained = false;

  bool deadlock() const { return hx.engine.deadlock_detected(); }
  Cycle now() const { return hx.engine.now(); }

  /// Run the engine toward `target`, spending at most `remaining` cycles
  /// (decremented by what was actually spent).
  void run_toward(Cycle target, Cycle& remaining) {
    const Cycle before = now();
    if (before >= target) return;
    const Cycle span = target - before;
    hx.engine.run_until(span <= remaining ? target : before + remaining);
    remaining -= now() - before;
  }

  void close_window() {
    PhaseWindow pw;
    pw.phase = static_cast<int>(phase_idx);
    pw.window = window_idx;
    pw.pattern = active_pattern_name;
    pw.load = active_load;
    pw.stats = hx.collector.cut_window(window_start, now(), cfg.packet_phits);
    if (hx.collector.num_jobs() > 0) {
      pw.per_job = hx.collector.cut_job_windows(window_start, now());
    }
    windows.push_back(std::move(pw));
  }

  /// Cut the drain window and finish. On the deadlock paths drain_start
  /// was just set to now(), so the cut is empty — exactly the historical
  /// run_phased behavior (the drain cut happens unconditionally, keeping
  /// the windows + drain tiling of the run intact).
  void finish_phased() {
    drain_window =
        hx.collector.cut_window(drain_start, now(), cfg.packet_phits);
    if (hx.collector.num_jobs() > 0) {
      drain_per_job = hx.collector.cut_job_windows(drain_start, now());
    }
    drained = hx.engine.packets_in_flight() == 0 && !deadlock();
    stage = Stage::kDone;
  }

  void enter_phase() {
    const Phase& ph = phases[phase_idx];
    if (!ph.pattern.empty()) {
      switched = make_pattern(hx.topo, ph.pattern, cfg.pattern_offset,
                              cfg.global_fraction);
      hx.engine.set_pattern(*switched);
      active_pattern_spec = ph.pattern;
      active_pattern_name = switched->name();
    }
    if (ph.load >= 0.0) {
      hx.engine.set_offered_load(ph.load);
      active_load = ph.load;
    }
    phase_start = now();
    window_start = now();
    window_idx = 0;
    phase_entered = true;
  }
};

SimulationRun::SimulationRun() = default;
SimulationRun::SimulationRun(SimulationRun&&) noexcept = default;
SimulationRun& SimulationRun::operator=(SimulationRun&&) noexcept = default;
SimulationRun::~SimulationRun() = default;

SimulationRun SimulationRun::steady(const SimConfig& cfg) {
  cfg.validate();
  SimulationRun run;
  run.impl_ = std::make_unique<Impl>(cfg, bernoulli_injection(cfg));
  Impl& im = *run.impl_;
  im.kind = Impl::Kind::kSteady;
  im.cfg_text = cfg.describe();
  // The measurement span as a single one-window phase that keeps the
  // config's own pattern and load: the historical run_until(warmup +
  // measure) loop, expressed on the shared stage machine.
  Phase measure;
  measure.cycles = cfg.measure_cycles;
  measure.windows = 1;
  im.phases.push_back(measure);
  im.active_pattern_name = im.hx.pattern->name();
  im.active_load = cfg.load;
  return run;
}

SimulationRun SimulationRun::burst(const SimConfig& cfg) {
  cfg.validate();
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBurst;
  inj.burst_packets = cfg.burst_packets;

  SimConfig adjusted = cfg;
  adjusted.warmup_cycles = 0;  // every packet counts in a drain run

  SimulationRun run;
  run.impl_ = std::make_unique<Impl>(adjusted, inj);
  Impl& im = *run.impl_;
  im.kind = Impl::Kind::kBurst;
  im.cfg_text = adjusted.describe();
  im.active_pattern_name = im.hx.pattern->name();
  im.active_load = 0.0;

  // Degraded topologies: dead terminals never inject their burst, and a
  // live source's packet to a dead destination is dropped at injection
  // (counted) — both must come off the drain target or the run would
  // spin to max_cycles on every faulted burst experiment.
  std::uint64_t live_terminals = 0;
  for (NodeId t = 0; t < im.hx.topo.num_terminals(); ++t) {
    if (im.hx.topo.terminal_alive(t)) ++live_terminals;
  }
  im.burst_expected = cfg.burst_packets * live_terminals;
  return run;
}

SimulationRun SimulationRun::phased(const SimConfig& cfg,
                                    const std::vector<Phase>& phases) {
  cfg.validate();
  validate_phases(cfg, phases);
  SimulationRun run;
  run.impl_ = std::make_unique<Impl>(cfg, bernoulli_injection(cfg));
  Impl& im = *run.impl_;
  im.kind = Impl::Kind::kPhased;
  im.cfg_text = cfg.describe();
  im.phases = phases;
  im.active_pattern_name = im.hx.pattern->name();
  im.active_load = cfg.load;
  return run;
}

bool SimulationRun::done() const {
  return impl_->stage == Impl::Stage::kDone;
}

Cycle SimulationRun::now() const { return impl_->now(); }

bool SimulationRun::advance(Cycle budget) {
  Impl& im = *impl_;
  im.advanced = true;
  Cycle remaining = budget;
  while (im.stage != Impl::Stage::kDone) {
    switch (im.stage) {
      case Impl::Stage::kWarmup: {
        im.run_toward(im.cfg.warmup_cycles, remaining);
        if (im.now() < im.cfg.warmup_cycles && !im.deadlock()) {
          return true;  // budget exhausted mid-warmup
        }
        if (im.kind == Impl::Kind::kBurst) {
          // Burst runs have no warmup or phases: straight to the drain.
          im.stage = Impl::Stage::kDrain;
        } else if (im.deadlock()) {
          if (im.kind == Impl::Kind::kPhased) {
            im.drain_start = im.now();
            im.finish_phased();
          } else {
            im.stage = Impl::Stage::kDone;
          }
        } else {
          im.stage = Impl::Stage::kPhaseRun;
        }
        break;
      }

      case Impl::Stage::kPhaseRun: {
        if (!im.phase_entered) im.enter_phase();
        const Phase& ph = im.phases[im.phase_idx];
        const Cycle stride = ph.cycles / static_cast<Cycle>(ph.windows);
        // The last window absorbs the integer-division remainder.
        const Cycle window_end = im.window_idx + 1 == ph.windows
                                     ? im.phase_start + ph.cycles
                                     : im.window_start + stride;
        im.run_toward(window_end, remaining);
        if (im.now() < window_end && !im.deadlock()) {
          return true;  // budget exhausted mid-window
        }
        im.close_window();
        if (im.deadlock()) {
          if (im.kind == Impl::Kind::kPhased) {
            im.drain_start = im.now();
            im.finish_phased();
          } else {
            im.stage = Impl::Stage::kDone;
          }
          break;
        }
        ++im.window_idx;
        im.window_start = im.now();
        if (im.window_idx == ph.windows) {
          ++im.phase_idx;
          im.phase_entered = false;
          if (im.phase_idx == im.phases.size()) {
            // Steady runs end with the measurement span; phased runs
            // stop injection and let the in-flight traffic land.
            im.stage = im.kind == Impl::Kind::kPhased ? Impl::Stage::kDrain
                                                      : Impl::Stage::kDone;
          }
        }
        break;
      }

      case Impl::Stage::kDrain: {
        Engine& eng = im.hx.engine;
        if (im.kind == Impl::Kind::kBurst) {
          const auto delivered = [&] {
            return im.hx.collector.delivered_packets_total() +
                   eng.dead_destination_drops();
          };
          while (remaining > 0 && delivered() < im.burst_expected &&
                 eng.now() < im.cfg.max_cycles) {
            if (!eng.step()) break;
            --remaining;
          }
          if (delivered() >= im.burst_expected ||
              eng.now() >= im.cfg.max_cycles || im.deadlock()) {
            im.stage = Impl::Stage::kDone;
            break;
          }
          return true;  // budget exhausted mid-drain
        }
        if (!im.draining) {
          im.drain_start = im.now();
          im.draining = true;
          eng.set_offered_load(0.0);
          // Per-terminal workload loads force generation draws regardless
          // of the uniform load; clearing them is what actually silences
          // the sources.
          eng.set_terminal_loads({});
        }
        const Cycle deadline = im.drain_start + im.cfg.max_cycles;
        while (remaining > 0 && eng.packets_in_flight() > 0 &&
               eng.now() < deadline) {
          if (!eng.step()) break;
          --remaining;
        }
        if (eng.packets_in_flight() == 0 || eng.now() >= deadline ||
            im.deadlock()) {
          im.finish_phased();
          break;
        }
        return true;  // budget exhausted mid-drain
      }

      case Impl::Stage::kDone:
        break;
    }
  }
  return false;
}

void SimulationRun::run_to_completion() {
  // A per-slice budget comfortably above any single run's span; advance()
  // re-enters the loop until the stage machine reports done.
  while (advance(std::numeric_limits<Cycle>::max() / 4)) {
  }
}

SteadyResult SimulationRun::steady_result() const {
  const Impl& im = *impl_;
  if (im.kind != Impl::Kind::kSteady) {
    throw std::logic_error("steady_result() asked of a non-steady run");
  }
  return steady_result_from(im.hx, im.cfg);
}

BurstResult SimulationRun::burst_result() const {
  const Impl& im = *impl_;
  if (im.kind != Impl::Kind::kBurst) {
    throw std::logic_error("burst_result() asked of a non-burst run");
  }
  BurstResult out;
  out.consumption_cycles = im.now();
  out.completed = im.hx.collector.delivered_packets_total() +
                      im.hx.engine.dead_destination_drops() ==
                  im.burst_expected;
  out.deadlock = im.deadlock();
  return out;
}

PhasedResult SimulationRun::phased_result() const {
  const Impl& im = *impl_;
  if (im.kind != Impl::Kind::kPhased) {
    throw std::logic_error("phased_result() asked of a non-phased run");
  }
  PhasedResult out;
  out.windows = im.windows;
  out.drain = im.drain_window;
  out.drain_per_job = im.drain_per_job;
  out.drained = im.drained;
  out.total = steady_result_from(im.hx, im.cfg);
  return out;
}

void SimulationRun::save_checkpoint(std::ostream& os) const {
  const Impl& im = *impl_;
  ser::write_bytes(os, kRunMagic, sizeof(kRunMagic));
  ser::write_u32(os, kCheckpointVersion);
  ser::write_string(os, im.cfg_text);
  ser::write_u8(os, static_cast<std::uint8_t>(im.kind));
  ser::write_u64(os, im.phases.size());
  for (const Phase& ph : im.phases) {
    ser::write_u64(os, ph.cycles);
    ser::write_i32(os, ph.windows);
    ser::write_string(os, ph.pattern);
    ser::write_f64(os, ph.load);
  }
  ser::write_u8(os, static_cast<std::uint8_t>(im.stage));
  ser::write_u64(os, im.phase_idx);
  ser::write_i32(os, im.window_idx);
  ser::write_u8(os, im.phase_entered ? 1 : 0);
  ser::write_u64(os, im.phase_start);
  ser::write_u64(os, im.window_start);
  ser::write_u64(os, im.drain_start);
  ser::write_u8(os, im.draining ? 1 : 0);
  ser::write_string(os, im.active_pattern_spec);
  ser::write_string(os, im.active_pattern_name);
  ser::write_f64(os, im.active_load);
  ser::write_u64(os, im.burst_expected);
  ser::write_u64(os, im.windows.size());
  for (const PhaseWindow& pw : im.windows) {
    ser::write_i32(os, pw.phase);
    ser::write_i32(os, pw.window);
    ser::write_string(os, pw.pattern);
    ser::write_f64(os, pw.load);
    write_traffic_window(os, pw.stats);
    write_window_vec(os, pw.per_job);  // v2: per-job cuts of the window
  }
  write_traffic_window(os, im.drain_window);
  write_window_vec(os, im.drain_per_job);
  ser::write_u8(os, im.drained ? 1 : 0);
  im.hx.collector.save(os);
  im.hx.engine.save_checkpoint(os);
}

void SimulationRun::restore(std::istream& is) {
  Impl& im = *impl_;
  if (im.advanced || im.now() != 0) {
    throw std::logic_error(
        "SimulationRun::restore requires a freshly-constructed run (same "
        "config and schedule as the checkpointed one)");
  }

  char magic[8];
  ser::read_bytes(is, magic, sizeof(magic), "run checkpoint magic");
  if (std::memcmp(magic, kRunMagic, sizeof(kRunMagic)) != 0) {
    throw std::runtime_error(
        "not a dfsim run checkpoint (bad magic bytes)");
  }
  const std::uint32_t version = ser::read_u32(is, "run checkpoint version");
  if (version == 1) {
    throw std::runtime_error(
        "run checkpoint format version 1 is not supported by this build "
        "(version 2 added the workload knob to the config text and "
        "per-job sections to every accumulated window; re-run the "
        "checkpointed experiment to produce a v2 checkpoint)");
  }
  if (version != kCheckpointVersion) {
    throw std::runtime_error(
        "run checkpoint format version " + std::to_string(version) +
        " is not supported by this build (expected " +
        std::to_string(kCheckpointVersion) + ")");
  }
  const std::string saved_cfg = ser::read_string(is, "run config text");
  if (saved_cfg != im.cfg_text) {
    throw std::runtime_error(
        "checkpoint config drift: " +
        first_config_difference(saved_cfg, im.cfg_text) +
        " — resume with the exact configuration the run was started with");
  }
  const std::uint8_t kind = ser::read_u8(is, "run kind");
  if (kind != static_cast<std::uint8_t>(im.kind)) {
    throw std::runtime_error(
        "checkpoint mismatch: the checkpointed run is a different "
        "experiment shape (steady/burst/phased) than this one");
  }
  const std::uint64_t nphases = ser::read_u64(is, "run phase count");
  if (nphases != im.phases.size()) {
    throw std::runtime_error(
        "checkpoint mismatch: phase schedule has " +
        std::to_string(nphases) + " phases in the checkpoint but " +
        std::to_string(im.phases.size()) + " in this run");
  }
  for (std::size_t i = 0; i < im.phases.size(); ++i) {
    const Phase& ph = im.phases[i];
    const Cycle cycles = ser::read_u64(is, "phase length");
    const std::int32_t windows = ser::read_i32(is, "phase windows");
    const std::string pattern = ser::read_string(is, "phase pattern");
    const double load = ser::read_f64(is, "phase load");
    if (cycles != ph.cycles || windows != ph.windows ||
        pattern != ph.pattern ||
        std::memcmp(&load, &ph.load, sizeof(double)) != 0) {
      throw std::runtime_error(
          "checkpoint mismatch: phase " + std::to_string(i) +
          " of the schedule differs from the checkpointed one");
    }
  }

  const std::uint8_t stage = ser::read_u8(is, "run stage");
  if (stage > static_cast<std::uint8_t>(Impl::Stage::kDone)) {
    throw std::runtime_error("checkpoint corrupt: unknown run stage");
  }
  im.stage = static_cast<Impl::Stage>(stage);
  im.phase_idx = ser::read_u64(is, "run phase index");
  im.window_idx = ser::read_i32(is, "run window index");
  im.phase_entered = ser::read_u8(is, "run phase-entered flag") != 0;
  im.phase_start = ser::read_u64(is, "run phase start");
  im.window_start = ser::read_u64(is, "run window start");
  im.drain_start = ser::read_u64(is, "run drain start");
  im.draining = ser::read_u8(is, "run draining flag") != 0;
  im.active_pattern_spec = ser::read_string(is, "run active pattern spec");
  im.active_pattern_name = ser::read_string(is, "run active pattern name");
  im.active_load = ser::read_f64(is, "run active load");
  im.burst_expected = ser::read_u64(is, "run burst target");
  if (im.phase_idx > im.phases.size()) {
    throw std::runtime_error("checkpoint corrupt: phase index out of range");
  }

  const std::uint64_t nwindows = ser::read_u64(is, "run window count");
  if (nwindows > (1ULL << 32)) {
    throw std::runtime_error(
        "checkpoint corrupt: implausible accumulated-window count");
  }
  im.windows.clear();
  im.windows.reserve(static_cast<std::size_t>(nwindows));
  for (std::uint64_t i = 0; i < nwindows; ++i) {
    PhaseWindow pw;
    pw.phase = ser::read_i32(is, "accumulated window phase");
    pw.window = ser::read_i32(is, "accumulated window index");
    pw.pattern = ser::read_string(is, "accumulated window pattern");
    pw.load = ser::read_f64(is, "accumulated window load");
    pw.stats = read_traffic_window(is);
    pw.per_job = read_window_vec(is);
    im.windows.push_back(std::move(pw));
  }
  im.drain_window = read_traffic_window(is);
  im.drain_per_job = read_window_vec(is);
  im.drained = ser::read_u8(is, "run drained flag") != 0;

  im.hx.collector.load(is);
  im.hx.engine.restore(is);

  // Reinstate the mid-run pattern switch: the engine's pattern pointer is
  // process-local, so it is rebuilt from the phase's spec string rather
  // than serialized. Patterns are stateless given the engine's (restored)
  // RNG, so the rebuilt instance draws identically.
  if (!im.active_pattern_spec.empty()) {
    im.switched = make_pattern(im.hx.topo, im.active_pattern_spec,
                               im.cfg.pattern_offset, im.cfg.global_fraction);
    im.hx.engine.set_pattern(*im.switched);
    im.active_pattern_name = im.switched->name();
  }
  im.advanced = true;
}

// ---------------------------------------------------------------------------
// The historical one-call wrappers, now thin shims over SimulationRun.
// ---------------------------------------------------------------------------

SteadyResult run_steady(const SimConfig& cfg) {
  SimulationRun run = SimulationRun::steady(cfg);
  run.run_to_completion();
  return run.steady_result();
}

BurstResult run_burst(const SimConfig& cfg) {
  SimulationRun run = SimulationRun::burst(cfg);
  run.run_to_completion();
  return run.burst_result();
}

PhasedResult run_phased(const SimConfig& cfg,
                        const std::vector<Phase>& phases) {
  SimulationRun run = SimulationRun::phased(cfg, phases);
  run.run_to_completion();
  return run.phased_result();
}

}  // namespace dfsim
