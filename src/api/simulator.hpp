// High-level facade: build topology + routing + traffic + engine from a
// SimConfig and run the experiment shapes of the paper — steady-state
// (latency/throughput curves), burst drain (consumption time), and phased
// runs (transient response to mid-run traffic changes).
//
// All three shapes execute on ONE staged state machine (SimulationRun):
// warmup -> phase windows -> drain, with run_steady/run_burst/run_phased
// as thin wrappers. The run object can stop between cycles, serialize
// itself (save_checkpoint), and resume in a fresh process bit-identically
// — the substrate of the resumable-experiment manifest runner.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "metrics/collector.hpp"

namespace dfsim {

struct SteadyResult {
  double avg_latency = 0.0;     ///< cycles, source queueing included
  double p99_latency = 0.0;     ///< cycles
  double accepted_load = 0.0;   ///< phits/(node*cycle) delivered
  /// phits/(node*cycle) the sources *tried* to inject during measurement,
  /// including generations the source-queue cap dropped. Past saturation
  /// this tracks the configured load while accepted_load plateaus.
  double offered_load = 0.0;
  /// Fraction of measurement-window generations dropped by the source
  /// queue cap; nonzero exactly when a point is source-saturated.
  double source_drop_rate = 0.0;
  double avg_hops = 0.0;        ///< network hops per packet
  std::uint64_t delivered = 0;  ///< packets measured
  /// Packets dropped at injection because their destination sat on a dead
  /// router (degraded topologies only; 0 on healthy networks).
  std::uint64_t dead_destination_drops = 0;
  bool deadlock = false;
  /// Per-job measurement totals, one entry per job of a multi-job
  /// workload (empty when cfg.workload is empty or single-job).
  /// accepted_load is normalized by the job's own terminal count;
  /// generated/offered/drop stay 0 — the generation hook carries no
  /// terminal id, so offered load cannot be attributed to a job.
  std::vector<TrafficWindow> per_job;
};

struct BurstResult {
  Cycle consumption_cycles = 0;  ///< cycles to drain the whole burst
  bool completed = false;        ///< false: hit max_cycles or deadlock
  bool deadlock = false;
};

/// Run an open-loop steady-state experiment (Bernoulli sources at
/// cfg.load) for warmup + measure cycles.
SteadyResult run_steady(const SimConfig& cfg);

/// Run a burst-consumption experiment: every node sends
/// cfg.burst_packets packets (generated at cycle 0), report the cycles
/// until the network drains (Figs. 6b / 9b).
BurstResult run_burst(const SimConfig& cfg);

// --- phased runs ---------------------------------------------------------

/// One phase of a phased run: `cycles` long, split into `windows` equal
/// stats windows (the last window absorbs the division remainder). On
/// entry the phase may switch the traffic pattern (a DF_TRAFFIC spec; ""
/// keeps the current one) and/or the offered load (< 0 keeps it) — the
/// mid-run swap the paper's "reacting to changing traffic" claim is
/// about. Packets already in flight keep their destinations.
struct Phase {
  Cycle cycles = 0;
  int windows = 1;
  std::string pattern;  ///< spec to switch to at phase start; "" = keep
  double load = -1.0;   ///< load to switch to at phase start; < 0 = keep
};

/// One closed stats window of a phased run. The post-phase drain is NOT
/// one of these — it lives in PhasedResult::drain.
struct PhaseWindow {
  int phase = 0;         ///< index into the phases vector
  int window = 0;        ///< window index within the phase
  std::string pattern;   ///< pattern name active during the window
  double load = 0.0;     ///< offered load configured during the window
  TrafficWindow stats;
  /// Per-job cuts of the same window (multi-job workloads; empty
  /// otherwise). Cut at the same boundaries as `stats`, so per-job
  /// windows tile the run and sum to the per-job totals exactly.
  std::vector<TrafficWindow> per_job;
};

struct PhasedResult {
  std::vector<PhaseWindow> windows;  ///< measurement windows, in order
  /// Post-phase drain: injection stops and the engine runs until the
  /// network empties (or cfg.max_cycles). Deliveries land here.
  TrafficWindow drain;
  /// Per-job cut of the drain span (multi-job workloads; empty otherwise).
  std::vector<TrafficWindow> drain_per_job;
  bool drained = false;  ///< network fully emptied within the budget
  /// Whole-run aggregate over [warmup, end of drain]. Every integer
  /// counter equals the sum of the windows' (including drain's): the
  /// windows tile the measured span exactly.
  SteadyResult total;
};

/// Run a phased experiment: cfg.warmup_cycles of warmup under the
/// config's own pattern/load (excluded from stats, as in run_steady),
/// then the phases in order with per-window stats snapshots, then a
/// drain. cfg.measure_cycles is ignored — the phases define the span.
/// Throws std::invalid_argument for an empty schedule, a non-positive
/// phase length or window count, or a bad pattern spec / load.
PhasedResult run_phased(const SimConfig& cfg,
                        const std::vector<Phase>& phases);

// --- resumable runs ------------------------------------------------------

/// One experiment as a resumable object: the staged warmup/measure/drain
/// state machine all run shapes share (run_steady/run_burst/run_phased are
/// thin wrappers over it). Construct via the steady/burst/phased
/// factories, drive with advance() (or run_to_completion()), read the
/// shape's result when done. Between advance() calls the run can be
/// serialized with save_checkpoint() and later restored — possibly in a
/// different process — into a freshly-constructed run built from the SAME
/// config and phase schedule; the resumed run then replays bit-identically
/// (the engine's exact-mode determinism contract extends to whole runs).
class SimulationRun {
 public:
  /// Bumped when the run-level checkpoint layout changes. The engine
  /// section carries its own Engine::kCheckpointVersion underneath.
  /// v2: the workload knob joined the config text and every accumulated
  /// window gained a per-job section; v1 streams are rejected with a
  /// pointed message.
  static constexpr std::uint32_t kCheckpointVersion = 2;

  /// The experiment shapes. Each factory validates exactly as the
  /// corresponding run_* wrapper always has (same exceptions, same
  /// messages) and builds the full harness eagerly.
  static SimulationRun steady(const SimConfig& cfg);
  static SimulationRun burst(const SimConfig& cfg);
  static SimulationRun phased(const SimConfig& cfg,
                              const std::vector<Phase>& phases);

  SimulationRun(SimulationRun&&) noexcept;
  SimulationRun& operator=(SimulationRun&&) noexcept;
  ~SimulationRun();

  bool done() const;
  Cycle now() const;

  /// Advance up to `budget` cycles (stage transitions included), stopping
  /// early when the run completes. Returns !done(). A generous budget
  /// driven in a loop is exactly run_to_completion(); a small budget
  /// yields between slices so callers can checkpoint periodically.
  bool advance(Cycle budget);
  void run_to_completion();

  /// Serialize the whole run: a versioned header carrying
  /// SimConfig::describe() and the phase schedule (both re-checked on
  /// restore — config drift fails with a pointed message naming the first
  /// differing knob), the stage cursor, the accumulated phase windows,
  /// the collector, and the full engine state. Call only between
  /// advance() slices.
  void save_checkpoint(std::ostream& os) const;

  /// Restore into a freshly-constructed (never advanced) run built from
  /// the same config and schedule. Throws std::runtime_error on a
  /// truncated/corrupt/mismatched checkpoint and std::logic_error if this
  /// run has already advanced.
  void restore(std::istream& is);

  /// Shape-matched results; throw std::logic_error when asked of a
  /// different shape. Valid once done() (partial reads are permitted for
  /// progress reporting but reflect only what has been accumulated).
  SteadyResult steady_result() const;
  BurstResult burst_result() const;
  PhasedResult phased_result() const;

 private:
  SimulationRun();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dfsim
