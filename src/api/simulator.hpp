// High-level facade: build topology + routing + traffic + engine from a
// SimConfig and run the experiment shapes of the paper — steady-state
// (latency/throughput curves), burst drain (consumption time), and phased
// runs (transient response to mid-run traffic changes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "metrics/collector.hpp"

namespace dfsim {

struct SteadyResult {
  double avg_latency = 0.0;     ///< cycles, source queueing included
  double p99_latency = 0.0;     ///< cycles
  double accepted_load = 0.0;   ///< phits/(node*cycle) delivered
  /// phits/(node*cycle) the sources *tried* to inject during measurement,
  /// including generations the source-queue cap dropped. Past saturation
  /// this tracks the configured load while accepted_load plateaus.
  double offered_load = 0.0;
  /// Fraction of measurement-window generations dropped by the source
  /// queue cap; nonzero exactly when a point is source-saturated.
  double source_drop_rate = 0.0;
  double avg_hops = 0.0;        ///< network hops per packet
  std::uint64_t delivered = 0;  ///< packets measured
  /// Packets dropped at injection because their destination sat on a dead
  /// router (degraded topologies only; 0 on healthy networks).
  std::uint64_t dead_destination_drops = 0;
  bool deadlock = false;
};

struct BurstResult {
  Cycle consumption_cycles = 0;  ///< cycles to drain the whole burst
  bool completed = false;        ///< false: hit max_cycles or deadlock
  bool deadlock = false;
};

/// Run an open-loop steady-state experiment (Bernoulli sources at
/// cfg.load) for warmup + measure cycles.
SteadyResult run_steady(const SimConfig& cfg);

/// Run a burst-consumption experiment: every node sends
/// cfg.burst_packets packets (generated at cycle 0), report the cycles
/// until the network drains (Figs. 6b / 9b).
BurstResult run_burst(const SimConfig& cfg);

// --- phased runs ---------------------------------------------------------

/// One phase of a phased run: `cycles` long, split into `windows` equal
/// stats windows (the last window absorbs the division remainder). On
/// entry the phase may switch the traffic pattern (a DF_TRAFFIC spec; ""
/// keeps the current one) and/or the offered load (< 0 keeps it) — the
/// mid-run swap the paper's "reacting to changing traffic" claim is
/// about. Packets already in flight keep their destinations.
struct Phase {
  Cycle cycles = 0;
  int windows = 1;
  std::string pattern;  ///< spec to switch to at phase start; "" = keep
  double load = -1.0;   ///< load to switch to at phase start; < 0 = keep
};

/// One closed stats window of a phased run. The post-phase drain is NOT
/// one of these — it lives in PhasedResult::drain.
struct PhaseWindow {
  int phase = 0;         ///< index into the phases vector
  int window = 0;        ///< window index within the phase
  std::string pattern;   ///< pattern name active during the window
  double load = 0.0;     ///< offered load configured during the window
  TrafficWindow stats;
};

struct PhasedResult {
  std::vector<PhaseWindow> windows;  ///< measurement windows, in order
  /// Post-phase drain: injection stops and the engine runs until the
  /// network empties (or cfg.max_cycles). Deliveries land here.
  TrafficWindow drain;
  bool drained = false;  ///< network fully emptied within the budget
  /// Whole-run aggregate over [warmup, end of drain]. Every integer
  /// counter equals the sum of the windows' (including drain's): the
  /// windows tile the measured span exactly.
  SteadyResult total;
};

/// Run a phased experiment: cfg.warmup_cycles of warmup under the
/// config's own pattern/load (excluded from stats, as in run_steady),
/// then the phases in order with per-window stats snapshots, then a
/// drain. cfg.measure_cycles is ignored — the phases define the span.
/// Throws std::invalid_argument for an empty schedule, a non-positive
/// phase length or window count, or a bad pattern spec / load.
PhasedResult run_phased(const SimConfig& cfg,
                        const std::vector<Phase>& phases);

}  // namespace dfsim
