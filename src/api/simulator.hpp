// High-level facade: build topology + routing + traffic + engine from a
// SimConfig and run the two experiment shapes of the paper — steady-state
// (latency/throughput curves) and burst drain (consumption time).
#pragma once

#include <cstdint>

#include "api/config.hpp"

namespace dfsim {

struct SteadyResult {
  double avg_latency = 0.0;     ///< cycles, source queueing included
  double p99_latency = 0.0;     ///< cycles
  double accepted_load = 0.0;   ///< phits/(node*cycle) delivered
  /// phits/(node*cycle) the sources *tried* to inject during measurement,
  /// including generations the source-queue cap dropped. Past saturation
  /// this tracks the configured load while accepted_load plateaus.
  double offered_load = 0.0;
  /// Fraction of measurement-window generations dropped by the source
  /// queue cap; nonzero exactly when a point is source-saturated.
  double source_drop_rate = 0.0;
  double avg_hops = 0.0;        ///< network hops per packet
  std::uint64_t delivered = 0;  ///< packets measured
  /// Packets dropped at injection because their destination sat on a dead
  /// router (degraded topologies only; 0 on healthy networks).
  std::uint64_t dead_destination_drops = 0;
  bool deadlock = false;
};

struct BurstResult {
  Cycle consumption_cycles = 0;  ///< cycles to drain the whole burst
  bool completed = false;        ///< false: hit max_cycles or deadlock
  bool deadlock = false;
};

/// Run an open-loop steady-state experiment (Bernoulli sources at
/// cfg.load) for warmup + measure cycles.
SteadyResult run_steady(const SimConfig& cfg);

/// Run a burst-consumption experiment: every node sends
/// cfg.burst_packets packets (generated at cycle 0), report the cycles
/// until the network drains (Figs. 6b / 9b).
BurstResult run_burst(const SimConfig& cfg);

}  // namespace dfsim
