#include "api/manifest.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "api/claim.hpp"
#include "common/bench_json.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed.hpp"

namespace dfsim {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, sep)) {
    const std::string t = trimmed(item);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Parse one `phase = cycles=N windows=M [pattern=P] [load=X]` value.
Phase parse_phase_value(const std::string& value) {
  Phase phase;
  bool have_cycles = false;
  std::istringstream is(value);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("phase token '" + token +
                                  "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    try {
      if (key == "cycles") {
        phase.cycles = static_cast<Cycle>(std::stoull(val));
        have_cycles = true;
      } else if (key == "windows") {
        phase.windows = std::stoi(val);
      } else if (key == "pattern") {
        phase.pattern = val;
      } else if (key == "load") {
        phase.load = std::stod(val);
      } else {
        throw std::invalid_argument("unknown phase key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("bad phase value '" + token + "'");
    }
  }
  if (!have_cycles) {
    throw std::invalid_argument("phase line is missing cycles=N");
  }
  return phase;
}

std::string point_file(const std::string& run_dir, std::size_t index,
                       const char* ext) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "point_%04zu", index);
  return run_dir + "/" + buf + ext;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// Name the first line where the stored manifest and the current one part
// ways — the resume-time drift diagnostic.
std::string first_line_difference(const std::string& stored,
                                  const std::string& current) {
  std::istringstream sa(stored);
  std::istringstream sb(current);
  std::string la;
  std::string lb;
  int line = 1;
  while (true) {
    const bool ha = static_cast<bool>(std::getline(sa, la));
    const bool hb = static_cast<bool>(std::getline(sb, lb));
    if (!ha && !hb) return "no difference";
    if (la != lb || ha != hb) {
      std::ostringstream os;
      os << "line " << line << " is \"" << (ha ? la : "<missing>")
         << "\" in the run directory but \"" << (hb ? lb : "<missing>")
         << "\" in this manifest";
      return os.str();
    }
    ++line;
  }
}

// CSV rows of one completed point, header-less (the merge step writes
// the header once). Steady points are one row; phased points get one row
// per window plus the drain row, print_phased-style.
std::string point_rows(const ExperimentResult& r) {
  std::ostringstream os;
  const std::string prefix =
      r.series + "," + CsvWriter::fmt(r.x) + "," + std::to_string(r.seed);
  if (!r.is_phased) {
    os << prefix << "," << CsvWriter::fmt(r.steady.avg_latency) << ","
       << CsvWriter::fmt(r.steady.accepted_load) << ","
       << CsvWriter::fmt(r.steady.offered_load) << ","
       << CsvWriter::fmt(r.steady.source_drop_rate) << "\n";
    return os.str();
  }
  for (const PhaseWindow& w : r.phased.windows) {
    os << prefix << ","
       << CsvWriter::fmt(static_cast<double>(w.stats.end)) << ","
       << CsvWriter::fmt(w.stats.accepted_load) << ","
       << CsvWriter::fmt(w.stats.offered_load) << ","
       << CsvWriter::fmt(w.stats.avg_latency) << "," << w.pattern << "\n";
  }
  os << prefix << ","
     << CsvWriter::fmt(static_cast<double>(r.phased.drain.end)) << ","
     << CsvWriter::fmt(r.phased.drain.accepted_load) << ","
     << CsvWriter::fmt(r.phased.drain.offered_load) << ","
     << CsvWriter::fmt(r.phased.drain.avg_latency) << ",drain\n";
  return os.str();
}

}  // namespace

Manifest Manifest::parse(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string line = trimmed(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("manifest line " +
                                  std::to_string(line_no) +
                                  ": expected key = value, got '" + line +
                                  "'");
    }
    const std::string key = trimmed(line.substr(0, eq));
    const std::string value = trimmed(line.substr(eq + 1));
    try {
      if (key == "name") {
        if (value.empty() ||
            value.find_first_of("/\\ \t") != std::string::npos) {
          throw std::invalid_argument(
              "name must be non-empty without slashes or spaces");
        }
        m.name = value;
      } else if (key == "phase") {
        m.phases.push_back(parse_phase_value(value));
      } else if (key.rfind("grid.", 0) == 0) {
        const std::string axis_key = key.substr(5);
        const std::vector<std::string> values = split_list(value, ',');
        if (values.empty()) {
          throw std::invalid_argument("axis '" + axis_key +
                                      "' has no values");
        }
        for (const std::string& v : values) {
          SimConfig probe;  // validates the key and value shape eagerly
          probe.set(axis_key, v);
        }
        m.axes.emplace_back(axis_key, values);
      } else {
        m.base.set(key, value);
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("manifest line " +
                                  std::to_string(line_no) + ": " +
                                  e.what());
    }
  }
  return m;
}

Manifest Manifest::load_file(const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("manifest ") + path + ": " +
                                e.what());
  }
  try {
    return parse(text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::vector<ExperimentPoint> Manifest::expand() const {
  std::size_t total = 1;
  for (const auto& [key, values] : axes) total *= values.size();

  std::vector<ExperimentPoint> points;
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    // Odometer decomposition: first axis slowest, last axis fastest —
    // the same routings-major/loads-minor order sweep_grid produces for
    // a (routing, load) grid.
    std::vector<std::size_t> pick(axes.size(), 0);
    std::size_t rem = i;
    for (std::size_t a = axes.size(); a-- > 0;) {
      pick[a] = rem % axes[a].second.size();
      rem /= axes[a].second.size();
    }
    ExperimentPoint pt;
    pt.cfg = base;
    pt.phases = phases;
    bool have_load = false;
    std::string series;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& key = axes[a].first;
      const std::string& value = axes[a].second[pick[a]];
      pt.cfg.set(key, value);
      if (key == "load") {
        have_load = true;
        continue;  // the load axis is the x coordinate, not the series
      }
      if (!series.empty()) series += "/";
      // Bare routing names keep manifest series labels identical to the
      // figure sweeps'; every other axis spells out key=value.
      series += (key == "routing") ? value : key + "=" + value;
    }
    pt.series = series.empty() ? name : series;
    pt.x = have_load ? pt.cfg.load : 0.0;
    points.push_back(std::move(pt));
  }
  return points;
}

std::string Manifest::describe() const {
  std::ostringstream os;
  os << "manifest_version=1\n";
  os << "name=" << name << "\n";
  for (const auto& [key, values] : axes) {
    os << "axis." << key << "=";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ",";
      os << values[i];
    }
    os << "\n";
  }
  for (const Phase& p : phases) {
    os << "phase=cycles=" << p.cycles << " windows=" << p.windows
       << " pattern=" << p.pattern << " load=" << fmt_f64(p.load) << "\n";
  }
  os << base.describe();
  return os.str();
}

Cycle resolve_checkpoint_every(Cycle opt_value) {
  if (opt_value > 0) return opt_value;
  const std::int64_t v = env_int("DF_CHECKPOINT_EVERY", 20000);
  if (v < 0) {
    // A raw cast would wrap the negative to a huge unsigned Cycle and
    // silently disable checkpointing; reject like every other env knob.
    std::fprintf(stderr,
                 "dfsim: ignoring DF_CHECKPOINT_EVERY=%lld (checkpoint "
                 "cadence must be non-negative; using 20000)\n",
                 static_cast<long long>(v));
    return 20000;
  }
  return static_cast<Cycle>(v);
}

namespace {

// Merge in point order: header once, then every ledger file verbatim.
void merge_point_files(const Manifest& m, const std::string& run_dir,
                       std::size_t n_points, const std::string& csv_path) {
  std::ostringstream merged;
  merged << (m.phases.empty()
                 ? "series,x,seed,avg_latency_cycles,accepted_load,"
                   "offered_load_measured,source_drop_rate\n"
                 : "series,x,seed,cycle_end,accepted_load,"
                   "offered_load_measured,avg_latency_cycles,pattern\n");
  for (std::size_t i = 0; i < n_points; ++i) {
    merged << read_file(point_file(run_dir, i, ".csv"));
  }
  write_file_atomic(csv_path, merged.str());
}

}  // namespace

ManifestRunSummary run_manifest(const Manifest& m,
                                const ManifestRunOptions& opts) {
  const auto start = std::chrono::steady_clock::now();

  std::string run_dir = opts.run_dir;
  if (run_dir.empty()) run_dir = env_str("DF_RUN_DIR", "");
  if (run_dir.empty()) run_dir = m.name + ".run";
  std::filesystem::create_directories(run_dir);

  // The ledger is only meaningful against the exact same manifest: a
  // drifted grid or base config silently remapping point indices would
  // merge results from two different experiments. (Two claimers racing
  // to create MANIFEST.txt both atomically rename identical bytes.)
  const std::string desc = m.describe();
  const std::string manifest_path = run_dir + "/MANIFEST.txt";
  if (std::filesystem::exists(manifest_path)) {
    const std::string stored = read_file(manifest_path);
    if (stored != desc) {
      throw std::runtime_error(
          "manifest drift against run directory " + run_dir + ": " +
          first_line_difference(stored, desc) +
          "; use a fresh run directory or restore the original manifest");
    }
  } else {
    write_file_atomic(manifest_path, desc);
  }

  const std::vector<ExperimentPoint> points = m.expand();
  const double ttl =
      opts.claim_ttl_s > 0.0 ? opts.claim_ttl_s : env_claim_ttl();
  // Unique-suffix temps orphaned by killed writers; the age gate keeps
  // live peers' in-flight temps safe.
  cleanup_stale_temps(run_dir, ttl);

  ManifestRunSummary summary;
  summary.total_points = points.size();
  summary.run_dir = run_dir;
  summary.csv_path = run_dir + "/results.csv";

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (std::filesystem::exists(point_file(run_dir, i, ".csv"))) {
      ++summary.skipped_points;
      // A crash between landing the point file and dropping the
      // checkpoint (or the lease) can orphan either; clean them up here.
      std::error_code ec;
      std::filesystem::remove(point_file(run_dir, i, ".ckpt"), ec);
    } else {
      pending.push_back(i);
    }
  }

  SweepOptions sopts;
  sopts.jobs = opts.jobs;
  sopts.checkpoint_every = resolve_checkpoint_every(opts.checkpoint_every);
  sopts.checkpoint_path = [&run_dir](std::size_t index) {
    return point_file(run_dir, index, ".ckpt");
  };
  sopts.resume = true;

  std::mutex log_mu;
  if (!opts.claim) {
    // Single-process mode: the pending set is fixed, shard it statically
    // across the thread pool (the historical path, byte-for-byte).
    std::size_t done = 0;
    runtime::parallel_for(pending.size(), opts.jobs, [&](std::size_t k) {
      const std::size_t i = pending[k];
      const ExperimentResult r = run_experiment_point(
          points[i], runtime::derive_seed(points[i].cfg.seed, i), i, sopts);
      write_file_atomic(point_file(run_dir, i, ".csv"), point_rows(r));
      if (opts.log != nullptr) {
        std::lock_guard<std::mutex> lock(log_mu);
        ++done;
        *opts.log << "[" << done << "/" << pending.size() << "] point " << i
                  << " (" << r.series << ") done\n";
      }
    });
    summary.ran_points = pending.size();
  } else {
    // Claim mode: workers (threads here, processes/machines across the
    // fleet) dynamically partition the pending points by taking
    // claim_NNNN leases. A worker keeps scanning until the ledger is
    // complete, stealing expired leases of crashed peers along the way;
    // with no claimable work it backs off and re-polls (no_merge exits
    // instead, leaving the remainder to the peers that hold it).
    std::atomic<std::size_t> ran{0};
    std::atomic<std::size_t> stolen{0};
    std::atomic<std::size_t> logged{0};
    std::mutex error_mu;
    std::exception_ptr first_error;

    auto claim_worker = [&]() {
      PointClaimer claimer(run_dir, ttl);
      SweepOptions wopts = sopts;
      wopts.jobs = 1;
      // The lease heartbeat: every periodic checkpoint re-stamps the
      // claim file, so a live long-running point never expires.
      wopts.on_checkpoint = [&claimer](std::size_t index) {
        claimer.heartbeat(index);
      };
      std::uint64_t backoff_ms = 50;
      const std::uint64_t backoff_cap_ms = std::max<std::uint64_t>(
          1000, static_cast<std::uint64_t>(ttl * 1000.0) / 4);
      while (true) {
        bool did_work = false;
        bool any_incomplete = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const std::string csv = point_file(run_dir, i, ".csv");
          if (std::filesystem::exists(csv)) {
            // A completed point's lease is inert (a claimer that died
            // between landing the csv and unlinking its lease).
            std::error_code ec;
            std::filesystem::remove(claimer.lease_path(i), ec);
            continue;
          }
          any_incomplete = true;
          const PointClaimer::Claim c = claimer.try_claim(i);
          if (c == PointClaimer::Claim::kBusy) continue;
          if (std::filesystem::exists(csv)) {
            // The previous holder landed the csv in the window between
            // our completion scan and winning the lease.
            claimer.release(i);
            continue;
          }
          if (c == PointClaimer::Claim::kStolen) ++stolen;
          const ExperimentResult r = run_experiment_point(
              points[i], runtime::derive_seed(points[i].cfg.seed, i), i,
              wopts);
          write_file_atomic(csv, point_rows(r));
          claimer.release(i);
          ++ran;
          did_work = true;
          backoff_ms = 50;
          if (opts.log != nullptr) {
            std::lock_guard<std::mutex> lock(log_mu);
            *opts.log << "[claimed " << ++logged << "] point " << i << " ("
                      << r.series << ")"
                      << (c == PointClaimer::Claim::kStolen ? " (stolen)"
                                                            : "")
                      << " done\n";
          }
        }
        if (!any_incomplete) break;  // ledger complete — barrier reached
        if (!did_work) {
          if (opts.no_merge) break;  // leave the rest to the peers holding it
          std::this_thread::sleep_for(
              std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2, backoff_cap_ms);
        }
      }
    };
    auto guarded_worker = [&]() {
      try {
        claim_worker();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    };

    const int workers = runtime::resolve_jobs(opts.jobs);
    if (workers <= 1) {
      guarded_worker();
    } else {
      std::vector<std::thread> team;
      team.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) team.emplace_back(guarded_worker);
      for (std::thread& t : team) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
    summary.ran_points = ran.load();
    summary.stolen_leases = stolen.load();
  }

  // Merge barrier: results.csv only ever reflects a complete ledger.
  // In claim mode any process that finds every point file present
  // performs the merge (idempotent: identical bytes, atomic rename);
  // one that exits early reports how much is still pending instead.
  std::size_t missing = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!std::filesystem::exists(point_file(run_dir, i, ".csv"))) ++missing;
  }
  summary.pending_points = missing;
  if (missing == 0 && !(opts.claim && opts.no_merge)) {
    merge_point_files(m, run_dir, points.size(), summary.csv_path);
    summary.merged = true;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    append_bench_record("manifest:" + m.name, wall_s,
                        runtime::resolve_jobs(opts.jobs));
  } else if (missing > 0 && opts.log != nullptr) {
    std::lock_guard<std::mutex> lock(log_mu);
    *opts.log << missing << " points still pending; merge deferred\n";
  }
  return summary;
}

}  // namespace dfsim
