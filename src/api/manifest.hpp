// Manifest-driven resumable experiments: a declarative text file
// describing a whole experiment grid (base config x grid axes x an
// optional phase schedule), executed point-by-point through the unified
// run_experiment_point path with per-point completion ledger, periodic
// checkpoints, and crash-safe resume.
//
// A manifest is line-oriented `key = value` text (# comments, blank
// lines allowed):
//
//   name = olm_vs_minimal            # run name (ledger dir, BENCH record)
//   h = 2                            # any SimConfig::describe() key sets
//   warmup_cycles = 500              # the base config
//
//   grid.routing = minimal, olm     # each grid.<key> line is one axis:
//   grid.load = 0.2, 0.4, 0.6       # comma-separated values for any
//   grid.seed = 1, 2                # SimConfig key; axes multiply
//
//   workload = jobs:4:alltoall       # workload specs (traffic/workload.hpp)
//   grid.workload = jobs:4:place=contig:alltoall, jobs:4:place=random:alltoall
//                                    # are plain SimConfig keys, so they sweep
//                                    # like any other axis (no commas in specs)
//
//   phase = cycles=800 windows=2                    # optional: phased
//   phase = cycles=800 windows=2 pattern=advg+1     # points instead of
//                                                   # steady ones
//
// The grid expands in odometer order (first axis slowest, last fastest),
// each point seeded with runtime::derive_seed(seed, point index) — the
// exact derivation parallel sweeps use, so a manifest run of a
// (routing, load) grid reproduces parallel_sweep bit-for-bit.
//
// Execution (run_manifest) is crash-safe and resumable:
//   <run_dir>/MANIFEST.txt    canonical manifest text; drift on resume
//                             is a pointed error, not a silent rerun
//   <run_dir>/point_NNNN.csv  completion ledger: rows of a finished
//                             point, landed via write-temp + atomic
//                             rename (a point file either exists whole
//                             or not at all)
//   <run_dir>/point_NNNN.ckpt periodic checkpoint of an in-flight point
//   <run_dir>/results.csv     merge of all point files, written last
// Re-running the same manifest skips every completed point and restores
// any in-flight point from its checkpoint; the merged CSV is
// byte-identical to the uninterrupted run's.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/sweep.hpp"

namespace dfsim {

struct Manifest {
  std::string name = "run";
  SimConfig base;
  std::vector<Phase> phases;  ///< empty = steady-state points
  /// Grid axes in manifest order: (SimConfig::set key, values).
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;

  /// Parse manifest text. Throws std::invalid_argument naming the
  /// offending line on malformed input, unknown keys, or bad values
  /// (axis values are validated against SimConfig::set eagerly).
  static Manifest parse(const std::string& text);
  /// Read and parse a manifest file; errors are prefixed with the path.
  static Manifest load_file(const std::string& path);

  /// Expand the grid to concrete points, odometer order (first axis
  /// slowest). Series labels come from the non-load axis values; x is
  /// the load axis value (0 when load is not swept).
  std::vector<ExperimentPoint> expand() const;

  /// Canonical textual form of the whole manifest (name, axes, phases,
  /// base config). Stored in the run directory and compared on resume —
  /// any drift fails with a message naming the first differing line.
  std::string describe() const;
};

struct ManifestRunOptions {
  /// Ledger/checkpoint directory. Empty = $DF_RUN_DIR, else
  /// "<name>.run" under the current directory. Created if missing.
  std::string run_dir;
  int jobs = 0;  ///< worker threads; <= 0 resolves via the runtime default
  /// Checkpoint the in-flight point every N cycles. 0 =
  /// $DF_CHECKPOINT_EVERY, else 20000.
  Cycle checkpoint_every = 0;
  std::ostream* log = nullptr;  ///< per-point progress lines; null = quiet
  /// Work-stealing claim mode (`df_run --claim`): instead of statically
  /// partitioning the pending points, every worker takes a
  /// `claim_NNNN` lease (api/claim.hpp) before executing a point, so N
  /// processes on N machines sharing the run directory partition the
  /// grid dynamically. Leases of crashed claimers are stolen after
  /// `claim_ttl_s`; the merge runs only once every point file exists
  /// (any claimer that reaches the complete barrier performs it).
  bool claim = false;
  /// Lease staleness TTL in seconds; <= 0 = $DF_CLAIM_TTL, else 60.
  double claim_ttl_s = 0.0;
  /// Claim mode only: exit as soon as no point is claimable instead of
  /// polling for peers' leases to complete or expire — the summary then
  /// reports how many points are still pending and no merge happens.
  bool no_merge = false;
};

struct ManifestRunSummary {
  std::size_t total_points = 0;
  std::size_t skipped_points = 0;  ///< completed by a previous run
  std::size_t ran_points = 0;      ///< executed (or resumed) this run
  std::size_t stolen_leases = 0;   ///< expired leases taken over (claim mode)
  /// Points whose ledger file was still missing when this process
  /// stopped claiming (peers hold their leases, or --no-merge exited
  /// early). 0 whenever `merged`.
  std::size_t pending_points = 0;
  bool merged = false;  ///< this process performed (or re-performed) the merge
  std::string run_dir;
  std::string csv_path;  ///< the merged results.csv
};

/// The checkpoint cadence run_manifest resolves from `opt_value` and
/// $DF_CHECKPOINT_EVERY: a positive option wins; otherwise the env var,
/// validated like every other env knob — a negative value is rejected
/// with a stderr warning (instead of wrapping to a huge unsigned Cycle
/// that silently disables checkpointing) and the 20000 default applies.
/// DF_CHECKPOINT_EVERY=0 explicitly disables periodic checkpoints.
Cycle resolve_checkpoint_every(Cycle opt_value);

/// Execute (or resume) a manifest. Skips points whose ledger file
/// already exists, restores any checkpointed in-flight point, merges all
/// point files into results.csv, and appends a
/// {"bench": "manifest:<name>", ...} record to BENCH_sweep.json.
/// With opts.claim, points are taken via work-stealing leases so many
/// processes (machines) can share one run directory; the merge (and the
/// BENCH record) happen only in the process that finds the ledger
/// complete. Throws std::runtime_error on manifest drift against an
/// existing run directory and std::invalid_argument for a malformed
/// manifest.
ManifestRunSummary run_manifest(const Manifest& m,
                                const ManifestRunOptions& opts = {});

}  // namespace dfsim
