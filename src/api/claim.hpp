// Work-stealing point leases for multi-machine manifest runs, plus the
// atomic-write helpers the run-directory ledger is built on.
//
// N processes (on one machine or many, sharing the run directory over a
// POSIX filesystem) each run `df_run --claim` against the same manifest.
// Before executing point NNNN a claimer takes the lease file
// `<run_dir>/claim_NNNN`:
//
//   - creation is `open(O_CREAT|O_EXCL)` — atomic on POSIX, so exactly
//     one claimer wins a fresh lease;
//   - the winner writes a `host:pid:timestamp` record and HOLDS an
//     exclusive flock on the open descriptor for as long as it works on
//     the point (the flock is the liveness signal filesystems release
//     for us the instant a claimer dies, covering same-machine and
//     NFSv4-style network mounts);
//   - a lease whose file is older than the TTL (`DF_CLAIM_TTL` seconds,
//     judged by the file's mtime so one fileserver clock arbitrates for
//     every machine) AND whose flock can be taken is a crashed
//     claimer's: it is stolen in place — flock first, then rewrite the
//     record through the held descriptor, so two stealers can never
//     both win;
//   - live claimers re-stamp their lease on every periodic checkpoint
//     (SweepOptions::on_checkpoint), so a long point is never stolen
//     while it makes progress.
//
// Safety does not rest on arbitration alone: points are deterministic
// (derived seeds, bit-identical engines) and land via write-unique-temp
// + atomic rename, so even a double-executed point writes the same
// bytes twice and the ledger stays correct. The lease protocol is what
// makes the fan-out efficient; the ledger is what makes it safe.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace dfsim {

/// A temp name for atomically replacing `path`:
/// `path.tmp.<pid>.<counter>`. Unique per call — never shared, so
/// concurrent writers of the same path cannot interleave into one temp
/// file and rename a corrupt entry into place.
std::string unique_temp_path(const std::string& path);

/// Atomically replace `path` with `body`: write to unique_temp_path()
/// and rename it into place. Throws std::runtime_error on write failure.
void write_file_atomic(const std::string& path, const std::string& body);

/// Remove stray `*.tmp.*` files under `dir` older than `ttl_s` seconds
/// (write_file_atomic temps orphaned by a killed process). The age gate
/// keeps a live peer's in-flight temp safe; strays from crashed
/// claimers age past any sane TTL. Errors are swallowed — cleanup is
/// best-effort hygiene.
void cleanup_stale_temps(const std::string& dir, double ttl_s);

/// The DF_CLAIM_TTL env knob in seconds (default 60). Non-positive or
/// unparsable values fall back to the default with a stderr warning.
double env_claim_ttl();

/// One process's (or thread's) view of the lease files in a run
/// directory. Thread-safe; each worker thread may also keep its own
/// instance — exclusion is per open descriptor, not per process.
class PointClaimer {
 public:
  enum class Claim {
    kClaimed,  ///< fresh lease created — the point is ours
    kStolen,   ///< expired lease of a dead claimer taken over
    kBusy,     ///< somebody else holds a live lease; move on
  };

  /// `ttl_s` <= 0 resolves via env_claim_ttl().
  PointClaimer(std::string run_dir, double ttl_s);
  /// Releases (unlinks) every lease still held — a destructed claimer
  /// did not complete those points, so peers may take them immediately.
  ~PointClaimer();
  PointClaimer(const PointClaimer&) = delete;
  PointClaimer& operator=(const PointClaimer&) = delete;

  /// Try to take the lease for point `index`.
  Claim try_claim(std::size_t index);
  /// Re-stamp a held lease (fresh record + mtime) so it cannot expire
  /// under a live claimer. Called from the periodic-checkpoint hook.
  void heartbeat(std::size_t index);
  /// Drop a held lease (point completed, or handed back).
  void release(std::size_t index);

  /// `<run_dir>/claim_NNNN` for point `index`.
  std::string lease_path(std::size_t index) const;
  /// The record a claimer writes into its lease: "host:pid:epoch-secs".
  static std::string lease_record();

  double ttl_s() const { return ttl_s_; }

 private:
  std::string run_dir_;
  double ttl_s_;
  std::mutex mu_;
  std::map<std::size_t, int> held_;  ///< index -> open, flocked fd
};

}  // namespace dfsim
