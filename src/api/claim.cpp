#include "api/claim.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "common/env.hpp"

namespace dfsim {

namespace fs = std::filesystem;

std::string unique_temp_path(const std::string& path) {
  // A shared temp name (`path + ".tmp"`) would let two writers of the
  // same path — e.g. two claimers finishing the same stolen point —
  // interleave into one temp file and rename a corrupt ledger entry.
  // The pid + counter suffix makes every writer's temp its own.
  static std::atomic<unsigned long> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

void write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = unique_temp_path(path);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os << body;
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("failed to write " + path);
    }
  }
  fs::rename(tmp, path);
}

void cleanup_stale_temps(const std::string& dir, double ttl_s) {
  std::error_code ec;
  const std::time_t now = std::time(nullptr);
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    struct stat st;
    if (::stat(it->path().c_str(), &st) != 0) continue;
    if (std::difftime(now, st.st_mtime) <= ttl_s) continue;
    std::error_code rm_ec;
    fs::remove(it->path(), rm_ec);
  }
}

double env_claim_ttl() {
  const double ttl = env_double("DF_CLAIM_TTL", 60.0);
  if (ttl <= 0.0) {
    std::fprintf(stderr,
                 "dfsim: ignoring DF_CLAIM_TTL=%g (lease TTL must be "
                 "positive; using 60)\n",
                 ttl);
    return 60.0;
  }
  return ttl;
}

PointClaimer::PointClaimer(std::string run_dir, double ttl_s)
    : run_dir_(std::move(run_dir)),
      ttl_s_(ttl_s > 0.0 ? ttl_s : env_claim_ttl()) {}

PointClaimer::~PointClaimer() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [index, fd] : held_) {
    ::unlink(lease_path(index).c_str());
    ::close(fd);  // drops the flock
  }
}

std::string PointClaimer::lease_path(std::size_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "claim_%04zu", index);
  return run_dir_ + "/" + buf;
}

std::string PointClaimer::lease_record() {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  return std::string(host) + ":" + std::to_string(::getpid()) + ":" +
         std::to_string(static_cast<long long>(std::time(nullptr))) + "\n";
}

namespace {

// Overwrite the lease through an already-open descriptor. The write
// also refreshes the file's mtime — the staleness clock.
void stamp(int fd) {
  const std::string record = PointClaimer::lease_record();
  if (::ftruncate(fd, 0) != 0) return;
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t w = ::pwrite(fd, record.data() + off,
                               record.size() - off,
                               static_cast<off_t>(off));
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

PointClaimer::Claim PointClaimer::try_claim(std::size_t index) {
  const std::string path = lease_path(index);

  // Fast path: O_CREAT|O_EXCL is the POSIX-atomic "exactly one winner"
  // primitive — a fresh lease is created by exactly one claimer.
  int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
  if (fd >= 0) {
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0 && errno == EWOULDBLOCK) {
      // Pathological interleaving: someone opened and locked our file
      // between the create and the flock. Treat as contended.
      ::close(fd);
      return Claim::kBusy;
    }
    stamp(fd);
    std::lock_guard<std::mutex> lock(mu_);
    held_[index] = fd;
    return Claim::kClaimed;
  }
  if (errno != EEXIST) return Claim::kBusy;

  // The lease exists. It is stealable only when it is (a) older than
  // the TTL and (b) not flock-held by a live process. On filesystems
  // where flock is a no-op the TTL alone arbitrates (the documented
  // fallback); on everything else the held lock makes a live claimer
  // unstealable no matter how slow it is.
  fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Claim::kBusy;  // holder just released it; rescan
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      std::difftime(std::time(nullptr), st.st_mtime) <= ttl_s_) {
    ::close(fd);
    return Claim::kBusy;
  }
  const int rc = ::flock(fd, LOCK_EX | LOCK_NB);
  if (rc != 0 && (errno == EWOULDBLOCK || errno == EINTR)) {
    ::close(fd);  // expired mtime but a live holder: a laggard, not a corpse
    return Claim::kBusy;
  }
  // Steal in place through the held descriptor: we own the flock now,
  // so no other stealer can pass the check above until we release.
  stamp(fd);
  std::lock_guard<std::mutex> lock(mu_);
  held_[index] = fd;
  return Claim::kStolen;
}

void PointClaimer::heartbeat(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = held_.find(index);
  if (it != held_.end()) stamp(it->second);
}

void PointClaimer::release(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = held_.find(index);
  if (it == held_.end()) return;
  ::unlink(lease_path(index).c_str());
  ::close(it->second);
  held_.erase(it);
}

}  // namespace dfsim
