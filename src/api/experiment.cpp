#include "api/experiment.hpp"

#include "runtime/seed.hpp"

namespace dfsim {

std::uint64_t replication_seed(std::uint64_t base, int k) {
  // Offset the index space so replication streams also stay disjoint from
  // parallel_sweep's per-point streams (which use plain grid indices on
  // the same base seed).
  return runtime::derive_seed(base, 0x5eed0000ULL +
                                        static_cast<std::uint64_t>(k));
}

ReplicatedResult run_replicated(const SimConfig& cfg, int replications) {
  ReplicatedResult out;
  out.seeds.reserve(static_cast<std::size_t>(replications));
  out.runs.reserve(static_cast<std::size_t>(replications));
  for (int k = 0; k < replications; ++k) {
    SimConfig run_cfg = cfg;
    run_cfg.seed = replication_seed(cfg.seed, k);
    const SteadyResult r = run_steady(run_cfg);
    out.latency.add(r.avg_latency);
    out.accepted_load.add(r.accepted_load);
    out.hops.add(r.avg_hops);
    if (r.deadlock) ++out.deadlocks;
    ++out.replications;
    out.seeds.push_back(run_cfg.seed);
    out.runs.push_back(r);
  }
  return out;
}

}  // namespace dfsim
