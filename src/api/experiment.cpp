#include "api/experiment.hpp"

namespace dfsim {

ReplicatedResult run_replicated(const SimConfig& cfg, int replications) {
  ReplicatedResult out;
  for (int k = 0; k < replications; ++k) {
    SimConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + static_cast<std::uint64_t>(k);
    const SteadyResult r = run_steady(run_cfg);
    out.latency.add(r.avg_latency);
    out.accepted_load.add(r.accepted_load);
    out.hops.add(r.avg_hops);
    if (r.deadlock) ++out.deadlocks;
    ++out.replications;
  }
  return out;
}

}  // namespace dfsim
