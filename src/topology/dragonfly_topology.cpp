#include "topology/dragonfly_topology.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace dfsim {

DragonflyTopology::DragonflyTopology(int h, GlobalArrangement arrangement)
    : h_(h), arrangement_(arrangement) {
  if (h < 1) throw std::invalid_argument("dragonfly h must be >= 1");
}

PortClass DragonflyTopology::port_class(PortId port) const {
  if (port < first_global_port()) return PortClass::kLocal;
  if (port < first_terminal_port()) return PortClass::kGlobal;
  return PortClass::kTerminal;
}

int DragonflyTopology::local_peer(int from_local, PortId local_port) const {
  assert(local_port >= 0 && local_port < num_local_ports());
  return local_port < from_local ? local_port : local_port + 1;
}

PortId DragonflyTopology::local_port_to(int from_local, int to_local) const {
  assert(from_local != to_local);
  return to_local < from_local ? to_local : to_local - 1;
}

GroupId DragonflyTopology::global_link_dest(GroupId g, int j) const {
  const int G = num_groups();
  if (arrangement_ == GlobalArrangement::kAbsolute) {
    return (g + j + 1) % G;
  }
  return ((g - j - 1) % G + G) % G;
}

int DragonflyTopology::global_link_reverse(GroupId /*g*/, int j) const {
  // Both arrangements satisfy dest(dest(g, j), G - 2 - j) == g.
  return num_groups() - 2 - j;
}

int DragonflyTopology::global_link_to(GroupId g, GroupId target) const {
  assert(g != target);
  const int G = num_groups();
  int j;
  if (arrangement_ == GlobalArrangement::kAbsolute) {
    j = ((target - g - 1) % G + G) % G;
  } else {
    j = ((g - target - 1) % G + G) % G;
  }
  assert(j >= 0 && j < G - 1);
  return j;
}

RouterId DragonflyTopology::gateway_router(GroupId g, GroupId target) const {
  return router_id(g, global_link_router(global_link_to(g, target)));
}

PortId DragonflyTopology::gateway_port(GroupId g, GroupId target) const {
  return global_link_port(global_link_to(g, target));
}

DragonflyTopology::Endpoint DragonflyTopology::remote_endpoint(
    RouterId r, PortId port) const {
  const GroupId g = group_of_router(r);
  const int rl = local_index(r);
  switch (port_class(port)) {
    case PortClass::kLocal: {
      const int peer = local_peer(rl, port);
      return {router_id(g, peer), local_port_to(peer, rl)};
    }
    case PortClass::kGlobal: {
      const int j = global_link_of(rl, port);
      const GroupId dest = global_link_dest(g, j);
      const int jr = global_link_reverse(g, j);
      return {router_id(dest, global_link_router(jr)), global_link_port(jr)};
    }
    case PortClass::kTerminal:
      return {};
  }
  return {};
}

int DragonflyTopology::min_hops(RouterId from, RouterId to) const {
  if (from == to) return 0;
  const GroupId gf = group_of_router(from);
  const GroupId gt = group_of_router(to);
  if (gf == gt) return 1;
  const RouterId out_gw = gateway_router(gf, gt);
  const RouterId in_gw = gateway_router(gt, gf);
  int hops = 1;                 // the global hop
  if (from != out_gw) ++hops;   // local hop to exit gateway
  if (to != in_gw) ++hops;      // local hop from entry gateway
  return hops;
}

std::string DragonflyTopology::describe() const {
  std::ostringstream os;
  os << "dragonfly(h=" << h_ << "): " << num_groups() << " groups x "
     << routers_per_group() << " routers, " << num_routers() << " routers, "
     << num_terminals() << " terminals, "
     << (arrangement_ == GlobalArrangement::kAbsolute ? "absolute"
                                                      : "palmtree")
     << " global arrangement";
  return os.str();
}

}  // namespace dfsim
