#include "topology/dragonfly_topology.hpp"

#include <sstream>
#include <stdexcept>

namespace dfsim {

namespace {

// 64-bit intermediates: the balanced shorthand squares a user-supplied
// h, which must not overflow before the constructor can reject it.
int balanced_a(int h) {
  const long long a = 2LL * h;
  if (a > INT32_MAX) {
    throw std::invalid_argument("dragonfly h too large for the balanced "
                                "shorthand; use the (p, a, h, g) ctor");
  }
  return h < 1 ? 1 : static_cast<int>(a);
}

int balanced_groups(int h) {
  const long long g = 2LL * h * h + 1;
  if (g > INT32_MAX) {
    throw std::invalid_argument("dragonfly h too large for the balanced "
                                "shorthand; use the (p, a, h, g) ctor");
  }
  return g < 1 ? 1 : static_cast<int>(g);
}

}  // namespace

DragonflyTopology::DragonflyTopology(int h, GlobalArrangement arrangement)
    : DragonflyTopology(h, balanced_a(h), h, balanced_groups(h),
                        arrangement) {}

DragonflyTopology::DragonflyTopology(int p, int a, int h, int g,
                                     GlobalArrangement arrangement)
    : p_(p), a_(a), h_(h), g_(g), arrangement_(arrangement) {
  if (h < 1) throw std::invalid_argument("dragonfly h must be >= 1");
  if (p < 1) throw std::invalid_argument("dragonfly p must be >= 1");
  if (a < 1) throw std::invalid_argument("dragonfly a must be >= 1");
  if (g < 1) throw std::invalid_argument("dragonfly g must be >= 1");
  const long long slots = static_cast<long long>(a) * h;
  if (g > slots + 1) {
    std::ostringstream os;
    os << "dragonfly g must be <= a*h + 1 = " << slots + 1
       << " (each group has only a*h = " << slots
       << " global link slots); got g = " << g;
    throw std::invalid_argument(os.str());
  }
  // Identifiers are 32-bit; keep every derived count in range, and bound
  // the global-link tables (g * a*h entries each) before allocating them.
  const long long terminals =
      static_cast<long long>(a) * g * p;
  if (terminals > INT32_MAX / 2) {
    throw std::invalid_argument(
        "dragonfly a*g*p exceeds the 32-bit identifier range");
  }
  if (slots > INT32_MAX || static_cast<long long>(g) * slots > (1LL << 28)) {
    throw std::invalid_argument(
        "dragonfly g*a*h global link slots exceed the supported range");
  }
  build_global_tables();
}

// Global wiring, generated once. Slots are consumed in "rounds" over the
// g-1 possible group offsets: slot j has round t = j / (g-1) and offset
// o = j % (g-1) + 1, and connects to group g+o (absolute) or g-o
// (palmtree), mod g. The far side of offset o is offset g-o in the same
// round, i.e. slot t*(g-1) + (g-2-o+1) — when that slot index falls past
// a*h (only possible in the final partial round of an unbalanced shape),
// the slot stays unwired rather than wiring an asymmetric link. Complete
// inter-group connectivity is still guaranteed: g <= a*h + 1 means round
// 0 is always full and covers every offset.
//
// Balanced shapes have exactly one full round (a*h = g-1), which makes
// the tables collapse to the classic closed forms — absolute:
// dest(g, j) = (g + j + 1) mod G, palmtree: dest(g, j) = (g - j - 1)
// mod G, reverse(j) = G - 2 - j — preserving historical port numbering
// bit-for-bit.
void DragonflyTopology::build_global_tables() {
  const int L = global_links_per_group();
  link_dest_.assign(static_cast<std::size_t>(g_) * L, kInvalid);
  link_reverse_.assign(static_cast<std::size_t>(g_) * L, kInvalid);
  link_to_.assign(static_cast<std::size_t>(g_) * g_, kInvalid);
  if (g_ == 1) return;  // single group: all global slots unwired

  const int offsets = g_ - 1;
  for (GroupId gg = 0; gg < g_; ++gg) {
    for (int j = 0; j < L; ++j) {
      const int round = j / offsets;
      const int c = j % offsets;  // offset index, offset o = c + 1
      // Far-side offset index: o' = g - o, i.e. c' = g - 2 - c.
      const int jr = round * offsets + (g_ - 2 - c);
      if (jr >= L) continue;  // far-side slot missing -> leave unwired
      const int o = c + 1;
      const GroupId d = arrangement_ == GlobalArrangement::kAbsolute
                            ? (gg + o) % g_
                            : (gg - o + g_) % g_;
      link_dest_[link_index(gg, j)] = d;
      link_reverse_[link_index(gg, j)] = jr;
      auto& canonical = link_to_[static_cast<std::size_t>(gg) * g_ + d];
      if (canonical == kInvalid) canonical = j;
    }
  }
}

std::string DragonflyTopology::describe() const {
  std::ostringstream os;
  // Balanced shapes keep the historical one-parameter banner so pinned
  // bench output stays byte-identical; unbalanced shapes spell out all
  // four dimensions.
  if (balanced()) {
    os << "dragonfly(h=" << h_ << "): ";
  } else {
    os << "dragonfly(p=" << p_ << ", a=" << a_ << ", h=" << h_
       << ", g=" << g_ << "): ";
  }
  os << num_groups() << " groups x " << routers_per_group() << " routers, "
     << num_routers() << " routers, " << num_terminals() << " terminals, "
     << (arrangement_ == GlobalArrangement::kAbsolute ? "absolute"
                                                      : "palmtree")
     << " global arrangement";
  return os.str();
}

}  // namespace dfsim
