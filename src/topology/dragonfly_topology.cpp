#include "topology/dragonfly_topology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "topology/fault_model.hpp"

namespace dfsim {

namespace {

// 64-bit intermediates: the balanced shorthand squares a user-supplied
// h, which must not overflow before the constructor can reject it.
int balanced_a(int h) {
  const long long a = 2LL * h;
  if (a > INT32_MAX) {
    throw std::invalid_argument("dragonfly h too large for the balanced "
                                "shorthand; use the (p, a, h, g) ctor");
  }
  return h < 1 ? 1 : static_cast<int>(a);
}

int balanced_groups(int h) {
  const long long g = 2LL * h * h + 1;
  if (g > INT32_MAX) {
    throw std::invalid_argument("dragonfly h too large for the balanced "
                                "shorthand; use the (p, a, h, g) ctor");
  }
  return g < 1 ? 1 : static_cast<int>(g);
}

}  // namespace

DragonflyTopology::DragonflyTopology(int h, GlobalArrangement arrangement)
    : DragonflyTopology(h, balanced_a(h), h, balanced_groups(h),
                        arrangement) {}

DragonflyTopology::DragonflyTopology(int p, int a, int h, int g,
                                     GlobalArrangement arrangement)
    : p_(p), a_(a), h_(h), g_(g), arrangement_(arrangement) {
  if (h < 1) throw std::invalid_argument("dragonfly h must be >= 1");
  if (p < 1) throw std::invalid_argument("dragonfly p must be >= 1");
  if (a < 1) throw std::invalid_argument("dragonfly a must be >= 1");
  if (g < 1) throw std::invalid_argument("dragonfly g must be >= 1");
  const long long slots = static_cast<long long>(a) * h;
  if (g > slots + 1) {
    std::ostringstream os;
    os << "dragonfly g must be <= a*h + 1 = " << slots + 1
       << " (each group has only a*h = " << slots
       << " global link slots); got g = " << g;
    throw std::invalid_argument(os.str());
  }
  // Identifiers are 32-bit; keep every derived count in range, and bound
  // the global-link tables (g * a*h entries each) before allocating them.
  const long long terminals =
      static_cast<long long>(a) * g * p;
  if (terminals > INT32_MAX / 2) {
    throw std::invalid_argument(
        "dragonfly a*g*p exceeds the 32-bit identifier range");
  }
  if (slots > INT32_MAX || static_cast<long long>(g) * slots > (1LL << 28)) {
    throw std::invalid_argument(
        "dragonfly g*a*h global link slots exceed the supported range");
  }
  build_global_tables();
}

// Global wiring, generated once. Slots are consumed in "rounds" over the
// g-1 possible group offsets: slot j has round t = j / (g-1) and offset
// o = j % (g-1) + 1, and connects to group g+o (absolute) or g-o
// (palmtree), mod g. The far side of offset o is offset g-o in the same
// round, i.e. slot t*(g-1) + (g-2-o+1) — when that slot index falls past
// a*h (only possible in the final partial round of an unbalanced shape),
// the slot stays unwired rather than wiring an asymmetric link. Complete
// inter-group connectivity is still guaranteed: g <= a*h + 1 means round
// 0 is always full and covers every offset.
//
// Balanced shapes have exactly one full round (a*h = g-1), which makes
// the tables collapse to the classic closed forms — absolute:
// dest(g, j) = (g + j + 1) mod G, palmtree: dest(g, j) = (g - j - 1)
// mod G, reverse(j) = G - 2 - j — preserving historical port numbering
// bit-for-bit.
void DragonflyTopology::build_global_tables() {
  const int L = global_links_per_group();
  link_dest_.assign(static_cast<std::size_t>(g_) * L, kInvalid);
  link_reverse_.assign(static_cast<std::size_t>(g_) * L, kInvalid);
  link_to_.assign(static_cast<std::size_t>(g_) * g_, kInvalid);
  // Healthy shapes are completely connected (round 0 covers every
  // offset), so every group reaches the g-1 others.
  reachable_groups_.assign(static_cast<std::size_t>(g_), g_ - 1);
  if (g_ == 1) return;  // single group: all global slots unwired

  const int offsets = g_ - 1;
  for (GroupId gg = 0; gg < g_; ++gg) {
    for (int j = 0; j < L; ++j) {
      const int round = j / offsets;
      const int c = j % offsets;  // offset index, offset o = c + 1
      // Far-side offset index: o' = g - o, i.e. c' = g - 2 - c.
      const int jr = round * offsets + (g_ - 2 - c);
      if (jr >= L) continue;  // far-side slot missing -> leave unwired
      const int o = c + 1;
      const GroupId d = arrangement_ == GlobalArrangement::kAbsolute
                            ? (gg + o) % g_
                            : (gg - o + g_) % g_;
      link_dest_[link_index(gg, j)] = d;
      link_reverse_[link_index(gg, j)] = jr;
      auto& canonical = link_to_[static_cast<std::size_t>(gg) * g_ + d];
      if (canonical == kInvalid) canonical = j;
    }
  }
}

void DragonflyTopology::mark_port_dead(RouterId r, PortId port) {
  dead_port_[static_cast<std::size_t>(r) *
                 static_cast<std::size_t>(ports_per_router()) +
             static_cast<std::size_t>(port)] = 1;
}

// Recompute the canonical slot of every group pair as the smallest ALIVE
// slot, so minimal routes steer around dead canonical links onto trunked
// duplicates; pairs whose every link died drop to kInvalid (and out of
// reachable_groups_), which the Valiant/adaptive candidate filters and
// the connectivity check consult.
void DragonflyTopology::rebuild_canonical_links() {
  std::fill(link_to_.begin(), link_to_.end(), kInvalid);
  for (GroupId gg = 0; gg < g_; ++gg) {
    for (int j = 0; j < global_links_per_group(); ++j) {
      if (!global_slot_alive(gg, j)) continue;
      auto& canonical =
          link_to_[static_cast<std::size_t>(gg) * g_ +
                   link_dest_[link_index(gg, j)]];
      if (canonical == kInvalid) canonical = j;
    }
  }
  for (GroupId gg = 0; gg < g_; ++gg) {
    int count = 0;
    for (GroupId d = 0; d < g_; ++d) {
      if (link_to_[static_cast<std::size_t>(gg) * g_ + d] != kInvalid) {
        ++count;
      }
    }
    reachable_groups_[static_cast<std::size_t>(gg)] = count;
  }
}

void DragonflyTopology::apply_faults(const FaultModel& faults) {
  if (faulted_) {
    throw std::logic_error(
        "DragonflyTopology::apply_faults called twice; faults are static "
        "and must be applied in one set");
  }
  if (faults.empty()) return;
  dead_router_.assign(static_cast<std::size_t>(num_routers()), 0);
  dead_port_.assign(static_cast<std::size_t>(num_routers()) *
                        static_cast<std::size_t>(ports_per_router()),
                    0);
  faulted_ = true;

  for (const RouterId r : faults.dead_routers()) {
    if (r < 0 || r >= num_routers()) {
      throw std::invalid_argument("fault set names router " +
                                  std::to_string(r) +
                                  ", outside this topology");
    }
    if (dead_router_[static_cast<std::size_t>(r)] != 0) continue;
    dead_router_[static_cast<std::size_t>(r)] = 1;
    ++dead_router_count_;
    // Every attached link dies with the router — including the far-side
    // ports, so no neighbour ever selects an output toward it.
    for (PortId p = 0; p < ports_per_router(); ++p) {
      mark_port_dead(r, p);
      if (port_class(p) == PortClass::kTerminal) continue;
      const Endpoint far = remote_endpoint(r, p);
      if (far.router != kInvalid) mark_port_dead(far.router, far.port);
    }
  }
  for (const FaultModel::DeadLink& l : faults.dead_links()) {
    if (l.a < 0 || l.a >= num_routers() || l.b < 0 || l.b >= num_routers()) {
      throw std::invalid_argument(
          "fault set names a link endpoint outside this topology");
    }
    mark_port_dead(l.a, l.a_port);
    mark_port_dead(l.b, l.b_port);
    ++dead_link_count_;
  }
  rebuild_canonical_links();
}

std::string DragonflyTopology::connectivity_failure() const {
  const auto name = [this](RouterId r) {
    std::ostringstream os;
    os << "router " << r << " (g" << group_of_router(r) << ".r"
       << local_index(r) << ")";
    return os.str();
  };
  int live_terminals = 0;
  for (RouterId r = 0; r < num_routers(); ++r) {
    if (router_alive(r)) live_terminals += p_;
  }
  if (live_terminals < 2) {
    return "fewer than two live terminals remain; no traffic can flow";
  }
  // Minimal-route feasibility for every ordered pair of live routers:
  // the (recomputed-canonical) gateway path local -> global -> local must
  // use only alive links. This is exactly the escape path every routing
  // mechanism falls back to, so a pair failing here would starve no
  // matter the mechanism.
  for (RouterId u = 0; u < num_routers(); ++u) {
    if (!router_alive(u)) continue;
    const GroupId gu = group_of_router(u);
    for (RouterId v = 0; v < num_routers(); ++v) {
      if (v == u || !router_alive(v)) continue;
      const GroupId gv = group_of_router(v);
      if (gu == gv) {
        if (!local_link_alive(u, v)) {
          return "the minimal route from " + name(u) + " to " + name(v) +
                 " needs the dead local link between them (ll:" +
                 std::to_string(std::min(u, v)) + "-" +
                 std::to_string(std::max(u, v)) + ")";
        }
        continue;
      }
      if (!groups_linked(gu, gv)) {
        return "no alive global link remains from group " +
               std::to_string(gu) + " to group " + std::to_string(gv) +
               ", cutting off " + name(u) + " from " + name(v);
      }
      const RouterId gw = gateway_router(gu, gv);
      if (u != gw && !local_link_alive(u, gw)) {
        return "the minimal route from " + name(u) + " to " + name(v) +
               " needs the dead local link to its gateway " + name(gw);
      }
      const int j = global_link_to(gu, gv);
      const int jr = global_link_reverse(gu, j);
      const RouterId entry = router_id(gv, global_link_router(jr));
      if (entry != v && !local_link_alive(entry, v)) {
        return "the minimal route from " + name(u) + " to " + name(v) +
               " needs the dead local link from its entry gateway " +
               name(entry);
      }
    }
  }
  return {};
}

std::string DragonflyTopology::describe() const {
  std::ostringstream os;
  // Balanced shapes keep the historical one-parameter banner so pinned
  // bench output stays byte-identical; unbalanced shapes spell out all
  // four dimensions.
  if (balanced()) {
    os << "dragonfly(h=" << h_ << "): ";
  } else {
    os << "dragonfly(p=" << p_ << ", a=" << a_ << ", h=" << h_
       << ", g=" << g_ << "): ";
  }
  os << num_groups() << " groups x " << routers_per_group() << " routers, "
     << num_routers() << " routers, " << num_terminals() << " terminals, "
     << (arrangement_ == GlobalArrangement::kAbsolute ? "absolute"
                                                      : "palmtree")
     << " global arrangement";
  if (faulted_) {
    os << ", degraded: " << dead_router_count_ << " dead routers, "
       << dead_link_count_ << " dead links";
  }
  return os.str();
}

}  // namespace dfsim
