#include "topology/dragonfly_topology.hpp"

#include <sstream>
#include <stdexcept>

namespace dfsim {

DragonflyTopology::DragonflyTopology(int h, GlobalArrangement arrangement)
    : h_(h), arrangement_(arrangement) {
  if (h < 1) throw std::invalid_argument("dragonfly h must be >= 1");
}

std::string DragonflyTopology::describe() const {
  std::ostringstream os;
  os << "dragonfly(h=" << h_ << "): " << num_groups() << " groups x "
     << routers_per_group() << " routers, " << num_routers() << " routers, "
     << num_terminals() << " terminals, "
     << (arrangement_ == GlobalArrangement::kAbsolute ? "absolute"
                                                      : "palmtree")
     << " global arrangement";
  return os.str();
}

}  // namespace dfsim
