// Maximum-size well-balanced Dragonfly topology (Kim et al., ISCA'08), as
// used throughout García et al., ICPP'13:
//
//   - integer parameter h
//   - supernodes (groups) of a = 2h routers, complete local graph K_2h
//   - G = 2h^2 + 1 groups, complete global graph K_G (one global link
//     between every pair of groups)
//   - each router: h terminals, 2h-1 local ports, h global ports
//
// Port numbering per router:
//   [0, 2h-1)                local ports    (peer skips self, see local_peer)
//   [2h-1, 3h-1)             global ports
//   [3h-1, 4h-1)             terminal ports (injection input / ejection out)
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dfsim {

/// Which permutation wires group-to-group links to routers. Both schemes
/// connect every pair of groups exactly once; they differ in which router
/// hosts the link, which matters under adversarial traffic (ablation).
enum class GlobalArrangement : std::uint8_t {
  kAbsolute,  ///< link j of group g -> group (g + j + 1) mod G
  kPalmtree,  ///< link j of group g -> group (g - j - 1) mod G
};

class DragonflyTopology {
 public:
  explicit DragonflyTopology(
      int h, GlobalArrangement arrangement = GlobalArrangement::kAbsolute);

  // --- scale ---------------------------------------------------------
  int h() const { return h_; }
  int routers_per_group() const { return 2 * h_; }
  int num_groups() const { return 2 * h_ * h_ + 1; }
  int num_routers() const { return routers_per_group() * num_groups(); }
  int terminals_per_router() const { return h_; }
  int num_terminals() const { return num_routers() * h_; }
  GlobalArrangement arrangement() const { return arrangement_; }

  // --- per-router port layout ----------------------------------------
  int num_local_ports() const { return 2 * h_ - 1; }
  int num_global_ports() const { return h_; }
  int num_terminal_ports() const { return h_; }
  int ports_per_router() const { return 4 * h_ - 1; }

  PortId first_local_port() const { return 0; }
  PortId first_global_port() const { return num_local_ports(); }
  PortId first_terminal_port() const {
    return num_local_ports() + num_global_ports();
  }

  PortClass port_class(PortId port) const;

  // --- coordinates -----------------------------------------------------
  GroupId group_of_router(RouterId r) const { return r / routers_per_group(); }
  int local_index(RouterId r) const { return r % routers_per_group(); }
  RouterId router_id(GroupId g, int local_idx) const {
    return g * routers_per_group() + local_idx;
  }

  RouterId router_of_terminal(NodeId t) const {
    return t / terminals_per_router();
  }
  GroupId group_of_terminal(NodeId t) const {
    return group_of_router(router_of_terminal(t));
  }
  /// Terminal's ejection/injection port on its router.
  PortId terminal_port(NodeId t) const {
    return first_terminal_port() + t % terminals_per_router();
  }
  NodeId terminal_id(RouterId r, int slot) const {
    return r * terminals_per_router() + slot;
  }

  // --- local (intra-group) wiring --------------------------------------
  /// Local index of the router reached by `local_port` of router with
  /// local index `from_local`. Ports enumerate peers skipping self.
  int local_peer(int from_local, PortId local_port) const;
  /// Local port on `from_local` that reaches local index `to_local`.
  PortId local_port_to(int from_local, int to_local) const;

  // --- global (inter-group) wiring --------------------------------------
  /// Group reached by global link index j (0 <= j < 2h^2) of group g.
  GroupId global_link_dest(GroupId g, int j) const;
  /// Link index of the reverse direction of link j (same in both groups'
  /// numbering thanks to the arrangement's involution).
  int global_link_reverse(GroupId g, int j) const;
  /// Global link index from group `g` toward group `target` (g != target).
  int global_link_to(GroupId g, GroupId target) const;

  /// Local index of the router inside group `g` owning global link j.
  int global_link_router(int j) const { return j / h_; }
  /// Global port (router-relative) implementing global link j.
  PortId global_link_port(int j) const { return first_global_port() + j % h_; }
  /// Global link index implemented by (`local_idx`, `global_port`).
  int global_link_of(int local_idx, PortId global_port) const {
    return local_idx * h_ + (global_port - first_global_port());
  }

  /// Router (global id) inside group `g` owning the link to `target`.
  RouterId gateway_router(GroupId g, GroupId target) const;
  /// Global port on `gateway_router(g, target)` reaching `target`.
  PortId gateway_port(GroupId g, GroupId target) const;

  // --- link endpoints ---------------------------------------------------
  struct Endpoint {
    RouterId router = kInvalid;
    PortId port = kInvalid;
  };
  /// Router+port on the far side of (router, port). Only for local/global
  /// ports; terminal ports have no router endpoint.
  Endpoint remote_endpoint(RouterId r, PortId port) const;

  /// Minimal hop distance between routers (0, 1, 2, or 3).
  int min_hops(RouterId from, RouterId to) const;

  std::string describe() const;

 private:
  int h_;
  GlobalArrangement arrangement_;
};

}  // namespace dfsim
