// Maximum-size well-balanced Dragonfly topology (Kim et al., ISCA'08), as
// used throughout García et al., ICPP'13:
//
//   - integer parameter h
//   - supernodes (groups) of a = 2h routers, complete local graph K_2h
//   - G = 2h^2 + 1 groups, complete global graph K_G (one global link
//     between every pair of groups)
//   - each router: h terminals, 2h-1 local ports, h global ports
//
// Port numbering per router:
//   [0, 2h-1)                local ports    (peer skips self, see local_peer)
//   [2h-1, 3h-1)             global ports
//   [3h-1, 4h-1)             terminal ports (injection input / ejection out)
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dfsim {

/// Which permutation wires group-to-group links to routers. Both schemes
/// connect every pair of groups exactly once; they differ in which router
/// hosts the link, which matters under adversarial traffic (ablation).
enum class GlobalArrangement : std::uint8_t {
  kAbsolute,  ///< link j of group g -> group (g + j + 1) mod G
  kPalmtree,  ///< link j of group g -> group (g - j - 1) mod G
};

class DragonflyTopology {
 public:
  explicit DragonflyTopology(
      int h, GlobalArrangement arrangement = GlobalArrangement::kAbsolute);

  // --- scale ---------------------------------------------------------
  int h() const { return h_; }
  int routers_per_group() const { return 2 * h_; }
  int num_groups() const { return 2 * h_ * h_ + 1; }
  int num_routers() const { return routers_per_group() * num_groups(); }
  int terminals_per_router() const { return h_; }
  int num_terminals() const { return num_routers() * h_; }
  GlobalArrangement arrangement() const { return arrangement_; }

  // --- per-router port layout ----------------------------------------
  int num_local_ports() const { return 2 * h_ - 1; }
  int num_global_ports() const { return h_; }
  int num_terminal_ports() const { return h_; }
  int ports_per_router() const { return 4 * h_ - 1; }

  PortId first_local_port() const { return 0; }
  PortId first_global_port() const { return num_local_ports(); }
  PortId first_terminal_port() const {
    return num_local_ports() + num_global_ports();
  }

  PortClass port_class(PortId port) const {
    if (port < first_global_port()) return PortClass::kLocal;
    if (port < first_terminal_port()) return PortClass::kGlobal;
    return PortClass::kTerminal;
  }

  // --- coordinates -----------------------------------------------------
  GroupId group_of_router(RouterId r) const { return r / routers_per_group(); }
  int local_index(RouterId r) const { return r % routers_per_group(); }
  RouterId router_id(GroupId g, int local_idx) const {
    return g * routers_per_group() + local_idx;
  }

  RouterId router_of_terminal(NodeId t) const {
    return t / terminals_per_router();
  }
  GroupId group_of_terminal(NodeId t) const {
    return group_of_router(router_of_terminal(t));
  }
  /// Terminal's ejection/injection port on its router.
  PortId terminal_port(NodeId t) const {
    return first_terminal_port() + t % terminals_per_router();
  }
  NodeId terminal_id(RouterId r, int slot) const {
    return r * terminals_per_router() + slot;
  }

  // --- local (intra-group) wiring --------------------------------------
  /// Local index of the router reached by `local_port` of router with
  /// local index `from_local`. Ports enumerate peers skipping self.
  int local_peer(int from_local, PortId local_port) const {
    assert(local_port >= 0 && local_port < num_local_ports());
    return local_port < from_local ? local_port : local_port + 1;
  }
  /// Local port on `from_local` that reaches local index `to_local`.
  PortId local_port_to(int from_local, int to_local) const {
    assert(from_local != to_local);
    return to_local < from_local ? to_local : to_local - 1;
  }

  // --- global (inter-group) wiring --------------------------------------
  /// Group reached by global link index j (0 <= j < 2h^2) of group g.
  GroupId global_link_dest(GroupId g, int j) const {
    const int G = num_groups();
    if (arrangement_ == GlobalArrangement::kAbsolute) {
      const int d = g + j + 1;  // g < G, j <= G-2: at most one wrap
      return d >= G ? d - G : d;
    }
    const int d = g - j - 1;
    return d < 0 ? d + G : d;
  }
  /// Link index of the reverse direction of link j (same in both groups'
  /// numbering thanks to the arrangement's involution).
  int global_link_reverse(GroupId /*g*/, int j) const {
    // Both arrangements satisfy dest(dest(g, j), G - 2 - j) == g.
    return num_groups() - 2 - j;
  }
  /// Global link index from group `g` toward group `target` (g != target).
  int global_link_to(GroupId g, GroupId target) const {
    assert(g != target);
    const int G = num_groups();
    // Both operands are in [0, G), so the modulo reduces to one wrap.
    int j = arrangement_ == GlobalArrangement::kAbsolute ? target - g - 1
                                                         : g - target - 1;
    if (j < 0) j += G;
    assert(j >= 0 && j < G - 1);
    return j;
  }

  /// Local index of the router inside group `g` owning global link j.
  int global_link_router(int j) const { return j / h_; }
  /// Global port (router-relative) implementing global link j.
  PortId global_link_port(int j) const { return first_global_port() + j % h_; }
  /// Global link index implemented by (`local_idx`, `global_port`).
  int global_link_of(int local_idx, PortId global_port) const {
    return local_idx * h_ + (global_port - first_global_port());
  }

  /// Router (global id) inside group `g` owning the link to `target`.
  RouterId gateway_router(GroupId g, GroupId target) const {
    return router_id(g, global_link_router(global_link_to(g, target)));
  }
  /// Global port on `gateway_router(g, target)` reaching `target`.
  PortId gateway_port(GroupId g, GroupId target) const {
    return global_link_port(global_link_to(g, target));
  }

  // --- link endpoints ---------------------------------------------------
  struct Endpoint {
    RouterId router = kInvalid;
    PortId port = kInvalid;
  };
  /// Router+port on the far side of (router, port). Only for local/global
  /// ports; terminal ports have no router endpoint.
  Endpoint remote_endpoint(RouterId r, PortId port) const {
    const GroupId g = group_of_router(r);
    const int rl = local_index(r);
    switch (port_class(port)) {
      case PortClass::kLocal: {
        const int peer = local_peer(rl, port);
        return {router_id(g, peer), local_port_to(peer, rl)};
      }
      case PortClass::kGlobal: {
        const int j = global_link_of(rl, port);
        const GroupId dest = global_link_dest(g, j);
        const int jr = global_link_reverse(g, j);
        return {router_id(dest, global_link_router(jr)),
                global_link_port(jr)};
      }
      case PortClass::kTerminal:
        return {};
    }
    return {};
  }

  /// Minimal hop distance between routers (0, 1, 2, or 3).
  int min_hops(RouterId from, RouterId to) const {
    if (from == to) return 0;
    const GroupId gf = group_of_router(from);
    const GroupId gt = group_of_router(to);
    if (gf == gt) return 1;
    int hops = 1;                                 // the global hop
    if (from != gateway_router(gf, gt)) ++hops;   // local exit hop
    if (to != gateway_router(gt, gf)) ++hops;     // local entry hop
    return hops;
  }

  std::string describe() const;

 private:
  int h_;
  GlobalArrangement arrangement_;
};

}  // namespace dfsim
