// Parametric Dragonfly topology (Kim et al., ISCA'08), covering the full
// (p, a, h, g) design space:
//
//   - p terminals per router, a routers per group (complete local graph
//     K_a), h global ports per router, g groups with g <= a*h + 1
//   - global links are generated from the arrangement at construction
//     into per-group link tables; every pair of groups is connected at
//     least once (the first a*h/(g-1) "rounds" cover all offsets), and
//     surplus link slots either trunk a pair a second time or stay
//     unwired (global_link_dest == kInvalid) when their far-side slot
//     does not exist.
//
// The maximum-size well-balanced shape used throughout García et al.,
// ICPP'13 — p = h, a = 2h, g = 2h^2 + 1 — remains the one-argument
// shorthand `DragonflyTopology(h)`, and for it the generated tables
// reproduce the classic closed forms exactly (absolute:
// dest(g, j) = (g + j + 1) mod G; palmtree: (g - j - 1) mod G;
// reverse(j) = G - 2 - j), so balanced port numbering and wiring are
// bit-identical to the historical implementation.
//
// Port numbering per router:
//   [0, a-1)                 local ports    (peer skips self, see local_peer)
//   [a-1, a-1+h)             global ports
//   [a-1+h, a-1+h+p)         terminal ports (injection input / ejection out)
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dfsim {

class FaultModel;

/// Which permutation wires group-to-group links to routers. Both schemes
/// connect every pair of groups at least once; they differ in which router
/// hosts the link, which matters under adversarial traffic (ablation).
enum class GlobalArrangement : std::uint8_t {
  kAbsolute,  ///< link slot offset o of group g -> group (g + o) mod G
  kPalmtree,  ///< link slot offset o of group g -> group (g - o) mod G
};

class DragonflyTopology {
 public:
  /// Balanced shorthand: p = h, a = 2h, g = 2h^2 + 1 (the paper shape).
  explicit DragonflyTopology(
      int h, GlobalArrangement arrangement = GlobalArrangement::kAbsolute);

  /// Full parameterization: p terminals/router, a routers/group, h global
  /// ports/router, g groups (1 <= g <= a*h + 1).
  DragonflyTopology(
      int p, int a, int h, int g,
      GlobalArrangement arrangement = GlobalArrangement::kAbsolute);

  // --- scale ---------------------------------------------------------
  int p() const { return p_; }
  int a() const { return a_; }
  int h() const { return h_; }
  int g() const { return g_; }
  int routers_per_group() const { return a_; }
  int num_groups() const { return g_; }
  int num_routers() const { return a_ * g_; }
  int terminals_per_router() const { return p_; }
  int num_terminals() const { return num_routers() * p_; }
  /// Global link slots per group (wired or not): a*h.
  int global_links_per_group() const { return a_ * h_; }
  /// True for the paper's maximal well-balanced shape (p=h, a=2h,
  /// g=2h^2+1), where every global link slot is wired exactly once.
  bool balanced() const {
    return p_ == h_ && a_ == 2 * h_ && g_ == a_ * h_ + 1;
  }
  GlobalArrangement arrangement() const { return arrangement_; }

  // --- per-router port layout ----------------------------------------
  int num_local_ports() const { return a_ - 1; }
  int num_global_ports() const { return h_; }
  int num_terminal_ports() const { return p_; }
  int ports_per_router() const { return a_ - 1 + h_ + p_; }

  PortId first_local_port() const { return 0; }
  PortId first_global_port() const { return num_local_ports(); }
  PortId first_terminal_port() const {
    return num_local_ports() + num_global_ports();
  }

  PortClass port_class(PortId port) const {
    if (port < first_global_port()) return PortClass::kLocal;
    if (port < first_terminal_port()) return PortClass::kGlobal;
    return PortClass::kTerminal;
  }

  // --- coordinates -----------------------------------------------------
  GroupId group_of_router(RouterId r) const { return r / a_; }
  int local_index(RouterId r) const { return r % a_; }
  RouterId router_id(GroupId g, int local_idx) const {
    return g * a_ + local_idx;
  }

  RouterId router_of_terminal(NodeId t) const { return t / p_; }
  GroupId group_of_terminal(NodeId t) const {
    return group_of_router(router_of_terminal(t));
  }
  /// Terminal's ejection/injection port on its router.
  PortId terminal_port(NodeId t) const {
    return first_terminal_port() + t % p_;
  }
  NodeId terminal_id(RouterId r, int slot) const { return r * p_ + slot; }

  // --- local (intra-group) wiring --------------------------------------
  /// Local index of the router reached by `local_port` of router with
  /// local index `from_local`. Ports enumerate peers skipping self.
  int local_peer(int from_local, PortId local_port) const {
    assert(local_port >= 0 && local_port < num_local_ports());
    return local_port < from_local ? local_port : local_port + 1;
  }
  /// Local port on `from_local` that reaches local index `to_local`.
  PortId local_port_to(int from_local, int to_local) const {
    assert(from_local != to_local);
    return to_local < from_local ? to_local : to_local - 1;
  }

  // --- global (inter-group) wiring --------------------------------------
  /// Group reached by global link slot j (0 <= j < a*h) of group g, or
  /// kInvalid if the slot is unwired (only possible when g < a*h + 1).
  GroupId global_link_dest(GroupId g, int j) const {
    return link_dest_[link_index(g, j)];
  }
  /// Slot index of the reverse direction of link j in the destination
  /// group's numbering; kInvalid for unwired slots.
  int global_link_reverse(GroupId g, int j) const {
    return link_reverse_[link_index(g, j)];
  }
  /// Canonical (smallest) link slot from group `g` toward group `target`
  /// (g != target). Minimal routes always use this slot; trunked
  /// duplicates only carry misrouted traffic.
  int global_link_to(GroupId g, GroupId target) const {
    assert(g != target);
    const int j = link_to_[static_cast<std::size_t>(g) *
                               static_cast<std::size_t>(g_) +
                           static_cast<std::size_t>(target)];
    assert(j != kInvalid);
    return j;
  }

  /// Local index of the router inside group `g` owning global link slot j.
  int global_link_router(int j) const { return j / h_; }
  /// Global port (router-relative) implementing global link slot j.
  PortId global_link_port(int j) const { return first_global_port() + j % h_; }
  /// Global link slot implemented by (`local_idx`, `global_port`).
  int global_link_of(int local_idx, PortId global_port) const {
    return local_idx * h_ + (global_port - first_global_port());
  }

  /// Router (global id) inside group `g` owning the canonical link to
  /// `target`.
  RouterId gateway_router(GroupId g, GroupId target) const {
    return router_id(g, global_link_router(global_link_to(g, target)));
  }
  /// Global port on `gateway_router(g, target)` reaching `target`.
  PortId gateway_port(GroupId g, GroupId target) const {
    return global_link_port(global_link_to(g, target));
  }

  // --- link endpoints ---------------------------------------------------
  struct Endpoint {
    RouterId router = kInvalid;
    PortId port = kInvalid;
  };
  /// Router+port on the far side of (router, port). Only for local/global
  /// ports; terminal ports and unwired global slots have no endpoint.
  Endpoint remote_endpoint(RouterId r, PortId port) const {
    const GroupId g = group_of_router(r);
    const int rl = local_index(r);
    switch (port_class(port)) {
      case PortClass::kLocal: {
        const int peer = local_peer(rl, port);
        return {router_id(g, peer), local_port_to(peer, rl)};
      }
      case PortClass::kGlobal: {
        const int j = global_link_of(rl, port);
        const GroupId dest = global_link_dest(g, j);
        if (dest == kInvalid) return {};
        const int jr = global_link_reverse(g, j);
        return {router_id(dest, global_link_router(jr)),
                global_link_port(jr)};
      }
      case PortClass::kTerminal:
        return {};
    }
    return {};
  }

  // --- faults -----------------------------------------------------------
  // A topology starts fully healthy. apply_faults() marks the given
  // routers and links dead (both directions of a link die together, and a
  // dead router takes every attached link with it) and recomputes the
  // canonical per-group-pair link table so minimal routes steer around
  // dead canonical slots onto alive trunked duplicates. Faults are static;
  // apply_faults may be called at most once.

  /// Mark `faults` dead. Throws std::logic_error when called twice.
  void apply_faults(const FaultModel& faults);
  /// True once a non-empty fault set was applied.
  bool faulted() const { return faulted_; }
  bool router_alive(RouterId r) const {
    return !faulted_ || dead_router_[static_cast<std::size_t>(r)] == 0;
  }
  /// THE per-port liveness predicate every layer consults: false for
  /// unwired global slots (unbalanced shapes), for ports killed by a
  /// fault (either side of a dead link), and for every port of a dead
  /// router — including its terminal ports.
  bool port_alive(RouterId r, PortId port) const {
    if (faulted_ &&
        dead_port_[static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(ports_per_router()) +
                   static_cast<std::size_t>(port)] != 0) {
      return false;
    }
    if (port_class(port) == PortClass::kGlobal) {
      return global_link_dest(group_of_router(r),
                              global_link_of(local_index(r), port)) !=
             kInvalid;
    }
    return true;
  }
  /// Global link slot j of group g is wired and not dead.
  bool global_slot_alive(GroupId g, int j) const {
    if (link_dest_[link_index(g, j)] == kInvalid) return false;
    if (!faulted_) return true;
    const RouterId r = router_id(g, global_link_router(j));
    return dead_port_[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(ports_per_router()) +
                      static_cast<std::size_t>(global_link_port(j))] == 0;
  }
  /// The direct local link between two routers of one group is alive
  /// (false when either router is dead or the link itself was failed).
  bool local_link_alive(RouterId u, RouterId v) const {
    assert(group_of_router(u) == group_of_router(v) && u != v);
    if (!faulted_) return true;
    return dead_port_[static_cast<std::size_t>(u) *
                          static_cast<std::size_t>(ports_per_router()) +
                      static_cast<std::size_t>(local_port_to(
                          local_index(u), local_index(v)))] == 0;
  }
  bool terminal_alive(NodeId t) const {
    return router_alive(router_of_terminal(t));
  }
  /// Groups with at least one alive global link from `g` (g-1 when
  /// healthy; unbalanced shapes are still completely connected).
  int reachable_groups(GroupId g) const {
    return reachable_groups_[static_cast<std::size_t>(g)];
  }
  /// At least one alive global link runs from group u to group v.
  bool groups_linked(GroupId u, GroupId v) const {
    return u != v && link_to_[static_cast<std::size_t>(u) *
                                  static_cast<std::size_t>(g_) +
                              static_cast<std::size_t>(v)] != kInvalid;
  }
  /// Empty when every pair of live terminals still has a fully-alive
  /// minimal route (the invariant all routing mechanisms rely on for
  /// their escape paths); otherwise a pointed description of one broken
  /// pair. O(routers^2), intended for validation time.
  std::string connectivity_failure() const;

  /// Minimal hop distance between routers (0, 1, 2, or 3).
  int min_hops(RouterId from, RouterId to) const {
    if (from == to) return 0;
    const GroupId gf = group_of_router(from);
    const GroupId gt = group_of_router(to);
    if (gf == gt) return 1;
    int hops = 1;                                 // the global hop
    if (from != gateway_router(gf, gt)) ++hops;   // local exit hop
    if (to != gateway_router(gt, gf)) ++hops;     // local entry hop
    return hops;
  }

  std::string describe() const;

 private:
  std::size_t link_index(GroupId g, int j) const {
    assert(g >= 0 && g < g_ && j >= 0 && j < global_links_per_group());
    return static_cast<std::size_t>(g) *
               static_cast<std::size_t>(global_links_per_group()) +
           static_cast<std::size_t>(j);
  }
  void build_global_tables();
  void mark_port_dead(RouterId r, PortId port);
  void rebuild_canonical_links();

  int p_;
  int a_;
  int h_;
  int g_;
  GlobalArrangement arrangement_;

  /// Arrangement-generated wiring, indexed [group * a*h + slot].
  std::vector<GroupId> link_dest_;
  std::vector<std::int32_t> link_reverse_;
  /// Canonical (smallest *alive*) slot per ordered group pair, indexed
  /// [group * g + target]; kInvalid on the diagonal, and — after faults —
  /// for pairs whose every link died.
  std::vector<std::int32_t> link_to_;
  /// Per group: targets with at least one alive link (g-1 when healthy).
  std::vector<std::int32_t> reachable_groups_;

  /// Fault state (empty vectors until apply_faults).
  bool faulted_ = false;
  std::vector<std::uint8_t> dead_router_;  ///< [router]
  std::vector<std::uint8_t> dead_port_;    ///< [router * ports + port]
  int dead_router_count_ = 0;
  int dead_link_count_ = 0;  ///< bidirectional links killed (either way)
};

}  // namespace dfsim
