#include "topology/fault_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "common/rng.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

namespace {

[[noreturn]] void bad_token(const std::string& spec, const std::string& token,
                            const std::string& why) {
  throw std::invalid_argument("fault spec \"" + spec + "\": token \"" +
                              token + "\" " + why);
}

/// Parse the decimal integer in token[pos..); advances pos past it.
int parse_id(const std::string& spec, const std::string& token,
             std::size_t& pos) {
  std::size_t end = pos;
  while (end < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[end]))) {
    ++end;
  }
  if (end == pos) bad_token(spec, token, "expects a router id here");
  if (end - pos > 9) bad_token(spec, token, "has an out-of-range router id");
  const int value = std::stoi(token.substr(pos, end - pos));
  pos = end;
  return value;
}

RouterId checked_router(const DragonflyTopology& topo, const std::string& spec,
                        const std::string& token, int id) {
  if (id < 0 || id >= topo.num_routers()) {
    std::ostringstream os;
    os << "names router " << id << ", but the topology has only routers 0.."
       << topo.num_routers() - 1;
    bad_token(spec, token, os.str());
  }
  return id;
}

/// Both endpoint routers of a token like "gl:3-17".
std::pair<RouterId, RouterId> parse_pair(const DragonflyTopology& topo,
                                         const std::string& spec,
                                         const std::string& token,
                                         std::size_t pos) {
  const int a = parse_id(spec, token, pos);
  if (pos >= token.size() || token[pos] != '-') {
    bad_token(spec, token, "expects the form <routerA>-<routerB>");
  }
  ++pos;
  const int b = parse_id(spec, token, pos);
  if (pos != token.size()) bad_token(spec, token, "has trailing characters");
  if (a == b) bad_token(spec, token, "names the same router twice");
  return {checked_router(topo, spec, token, a),
          checked_router(topo, spec, token, b)};
}

FaultModel::DeadLink make_link(RouterId a, PortId a_port, RouterId b,
                               PortId b_port, bool local) {
  if (a > b) {
    std::swap(a, b);
    std::swap(a_port, b_port);
  }
  return {a, a_port, b, b_port, local};
}

}  // namespace

FaultModel FaultModel::parse(const DragonflyTopology& topo,
                             const std::string& spec) {
  FaultModel fm;
  std::set<RouterId> routers;
  std::set<std::tuple<RouterId, PortId, RouterId>> links;  // dedup

  std::size_t i = 0;
  while (i < spec.size()) {
    const char c = spec[i];
    if (c == ',' || c == ' ' || c == ';' || c == '\t') {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < spec.size() && spec[end] != ',' && spec[end] != ' ' &&
           spec[end] != ';' && spec[end] != '\t') {
      ++end;
    }
    const std::string token = spec.substr(i, end - i);
    i = end;

    const std::size_t colon = token.find(':');
    const std::string kind = colon == std::string::npos
                                 ? std::string()
                                 : token.substr(0, colon);
    if (kind == "r") {
      std::size_t pos = colon + 1;
      const RouterId r = checked_router(topo, spec, token,
                                        parse_id(spec, token, pos));
      if (pos != token.size()) {
        bad_token(spec, token, "has trailing characters");
      }
      if (routers.insert(r).second) fm.dead_routers_.push_back(r);
    } else if (kind == "gl") {
      const auto [a, b] = parse_pair(topo, spec, token, colon + 1);
      // Every global link slot of `a` whose far side is `b` (trunked
      // pairs can own several).
      const GroupId ga = topo.group_of_router(a);
      const int al = topo.local_index(a);
      bool found = false;
      for (int k = 0; k < topo.num_global_ports(); ++k) {
        const PortId port = topo.first_global_port() + k;
        const int j = topo.global_link_of(al, port);
        if (topo.global_link_dest(ga, j) == kInvalid) continue;
        const auto far = topo.remote_endpoint(a, port);
        if (far.router != b) continue;
        found = true;
        const DeadLink link = make_link(a, port, b, far.port, false);
        if (links.insert({link.a, link.a_port, link.b}).second) {
          fm.dead_links_.push_back(link);
        }
      }
      if (!found) {
        std::ostringstream os;
        os << "names a global link between routers " << a << " and " << b
           << ", but the topology wires none";
        bad_token(spec, token, os.str());
      }
    } else if (kind == "ll") {
      const auto [a, b] = parse_pair(topo, spec, token, colon + 1);
      if (topo.group_of_router(a) != topo.group_of_router(b)) {
        std::ostringstream os;
        os << "names a local link between routers " << a << " (group "
           << topo.group_of_router(a) << ") and " << b << " (group "
           << topo.group_of_router(b)
           << "), but local links never cross groups";
        bad_token(spec, token, os.str());
      }
      const PortId a_port =
          topo.local_port_to(topo.local_index(a), topo.local_index(b));
      const PortId b_port =
          topo.local_port_to(topo.local_index(b), topo.local_index(a));
      const DeadLink link = make_link(a, a_port, b, b_port, true);
      if (links.insert({link.a, link.a_port, link.b}).second) {
        fm.dead_links_.push_back(link);
      }
    } else {
      bad_token(spec, token,
                "has an unknown kind (expected r:<id>, gl:<a>-<b> or "
                "ll:<a>-<b>)");
    }
  }
  return fm;
}

FaultModel FaultModel::sample(const DragonflyTopology& topo, double fraction,
                              std::uint64_t seed) {
  if (!(fraction >= 0.0) || fraction >= 1.0) {
    std::ostringstream os;
    os << "fault fraction must be in [0, 1), got " << fraction;
    throw std::invalid_argument(os.str());
  }
  FaultModel fm;
  if (fraction == 0.0) return fm;

  // Candidates: the forward side (smaller group id) of every wired global
  // link. Trunked duplicates appear once per physical link.
  struct Cand {
    GroupId g;
    int slot;
    GroupId dest;
  };
  std::vector<Cand> cands;
  for (GroupId g = 0; g < topo.num_groups(); ++g) {
    for (int j = 0; j < topo.global_links_per_group(); ++j) {
      const GroupId d = topo.global_link_dest(g, j);
      if (d != kInvalid && g < d) cands.push_back({g, j, d});
    }
  }
  auto target = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(cands.size())));

  // Alive-link count per unordered group pair: sampling must never take a
  // pair's last link, or the fault set would sever the (only) minimal
  // route between the two groups.
  std::vector<int> pair_alive(
      static_cast<std::size_t>(topo.num_groups()) *
          static_cast<std::size_t>(topo.num_groups()),
      0);
  const auto pair_index = [&](GroupId u, GroupId v) {
    return static_cast<std::size_t>(u) *
               static_cast<std::size_t>(topo.num_groups()) +
           static_cast<std::size_t>(v);
  };
  for (const Cand& c : cands) ++pair_alive[pair_index(c.g, c.dest)];

  Rng rng(seed);
  // Fisher-Yates over the candidate order.
  for (std::size_t k = cands.size(); k > 1; --k) {
    const auto swap_with = rng.uniform(k);
    std::swap(cands[k - 1], cands[swap_with]);
  }

  std::size_t killed = 0;
  for (const Cand& c : cands) {
    if (killed >= target) break;
    int& alive = pair_alive[pair_index(c.g, c.dest)];
    if (alive <= 1) continue;  // last link of the pair: keep it
    --alive;
    ++killed;
    const RouterId a = topo.router_id(c.g, topo.global_link_router(c.slot));
    const PortId a_port = topo.global_link_port(c.slot);
    const auto far = topo.remote_endpoint(a, a_port);
    fm.dead_links_.push_back(
        make_link(a, a_port, far.router, far.port, false));
  }
  return fm;
}

std::string FaultModel::describe() const {
  std::vector<RouterId> routers = dead_routers_;
  std::sort(routers.begin(), routers.end());
  std::vector<DeadLink> links = dead_links_;
  std::sort(links.begin(), links.end(), [](const DeadLink& x,
                                           const DeadLink& y) {
    return std::tie(x.a, x.a_port, x.b) < std::tie(y.a, y.a_port, y.b);
  });

  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const RouterId r : routers) {
    sep();
    os << "r:" << r;
  }
  std::set<std::string> emitted;
  for (const DeadLink& l : links) {
    std::ostringstream tok;
    tok << (l.local ? "ll:" : "gl:") << l.a << "-" << l.b;
    // One token per router pair, however many physical trunks died.
    if (!emitted.insert(tok.str()).second) continue;
    sep();
    os << tok.str();
  }
  return os.str();
}

}  // namespace dfsim
