// Static fault injection for degraded dragonflies: a set of dead global
// links, dead local links, and dead routers, resolved against a concrete
// topology and then applied to it (DragonflyTopology::apply_faults) so
// every layer — routing, engine, metrics — sees one per-port alive/dead
// predicate.
//
// Fault sets come from two sources:
//   - an explicit spec string, comma/space-separated tokens:
//       r:<router>          the whole router (all links + its terminals)
//       gl:<rA>-<rB>        every global link between routers rA and rB
//       ll:<rA>-<rB>        the local link between rA and rB (same group)
//     e.g. "gl:3-17,r:42" or "ll:0-1 gl:2-30 r:7"
//   - sampling: kill a fraction of the wired global links, drawn from a
//     seeded RNG. Sampling never removes the last alive link between a
//     group pair, so a sampled set always keeps every live minimal route
//     intact (routers and local links are untouched).
//
// Faults are static for the lifetime of a run; there is no repair or
// mid-run failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dfsim {

class DragonflyTopology;

class FaultModel {
 public:
  /// One dead bidirectional link, resolved to both endpoint ports.
  struct DeadLink {
    RouterId a = kInvalid;
    PortId a_port = kInvalid;
    RouterId b = kInvalid;
    PortId b_port = kInvalid;
    bool local = false;  ///< local (intra-group) vs global link
  };

  FaultModel() = default;

  /// Resolve a spec string (grammar above) against `topo`. Throws
  /// std::invalid_argument with a pointed message naming the offending
  /// token on malformed input, out-of-range ids, or links that do not
  /// exist in the topology.
  static FaultModel parse(const DragonflyTopology& topo,
                          const std::string& spec);

  /// Kill round(fraction * wired-global-links) global links chosen by a
  /// seeded RNG, never the last alive link of a group pair. fraction must
  /// be in [0, 1); deterministic for a given (topology, fraction, seed).
  static FaultModel sample(const DragonflyTopology& topo, double fraction,
                           std::uint64_t seed);

  bool empty() const { return dead_routers_.empty() && dead_links_.empty(); }
  const std::vector<RouterId>& dead_routers() const { return dead_routers_; }
  const std::vector<DeadLink>& dead_links() const { return dead_links_; }

  /// Canonical spec-string form of this fault set ("r:5,gl:3-17,..."),
  /// deterministic — equal fault sets stringify equally, which is what
  /// the seed-determinism tests compare. Valid spec grammar, with one
  /// caveat: a gl token names EVERY trunk between its router pair, so
  /// re-parsing a set that sampled only one of a pair's trunked links
  /// yields a (more degraded) superset of it.
  std::string describe() const;

 private:
  std::vector<RouterId> dead_routers_;
  std::vector<DeadLink> dead_links_;
};

}  // namespace dfsim
