// parallel_for: execute body(0..n-1) across a thread pool, claiming work
// through a sharded index queue. Results written by index are bit-identical
// to a serial loop regardless of worker count — the backbone of
// `parallel_sweep` and every figure bench's (routing, load) grid.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dfsim::runtime {

/// Worker count actually used for `requested`: requested > 0 wins, else
/// the process default (set_default_jobs / DF_JOBS env), else
/// std::thread::hardware_concurrency().
int resolve_jobs(int requested);

/// Process-wide default used when a call site passes jobs <= 0.
/// Benches set this from their --jobs=N flag. jobs <= 0 resets to auto.
void set_default_jobs(int jobs);
int default_jobs();

/// Runs body(i) for every i in [0, n). jobs <= 0 resolves via
/// resolve_jobs; jobs == 1 (or n < 2) runs inline on the calling thread.
/// The first exception thrown by a body is rethrown on the caller after
/// all workers finish.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body);

/// Ordered map: out[i] = fn(i), computed concurrently. The result order
/// never depends on the worker count or interleaving.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, int jobs, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace dfsim::runtime
