// Sharded index queue: splits the range [0, n) into contiguous shards and
// hands them out to workers via a single atomic counter. Contiguous shards
// keep each worker on neighbouring grid points (cache- and
// progress-friendly) while over-sharding (several shards per worker)
// load-balances grids whose points have very different run times — a high
// offered-load point simulates far more traffic than a low one.
#pragma once

#include <atomic>
#include <cstddef>

namespace dfsim::runtime {

class ShardedIndexQueue {
 public:
  /// Splits [0, n) into at most `shards` near-equal contiguous chunks.
  ShardedIndexQueue(std::size_t n, std::size_t shards)
      : n_(n), shards_(shards == 0 ? 1 : (shards > n ? (n ? n : 1) : shards)) {}

  /// Claims the next unclaimed shard as [begin, end). Returns false when
  /// the whole range has been handed out. Safe to call from any thread.
  bool next(std::size_t& begin, std::size_t& end) {
    const std::size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= shards_) return false;
    begin = shard * n_ / shards_;
    end = (shard + 1) * n_ / shards_;
    return begin < end;
  }

  std::size_t shard_count() const { return shards_; }

 private:
  std::size_t n_;
  std::size_t shards_;
  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace dfsim::runtime
