// Minimal fixed-size thread pool used by the parallel sweep runtime, and
// the BarrierTeam phase-barrier worker team used by the sharded cycle
// engine. Pool tasks are plain closures; `wait_idle` blocks until every
// submitted task has finished, so one pool can serve several sweep phases
// in sequence.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfsim::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks must not throw past their own frame; wrap
  /// and stash exceptions if the caller needs them (parallel_for does).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable idle_cv_;   ///< signals wait_idle: all done
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Persistent worker team parked on a sense-reversing phase barrier, for
/// callers that run the SAME parallel region thousands of times (the
/// sharded engine runs two per simulated cycle). Unlike ThreadPool there
/// is no queue and no mutex on the hot path: run() bumps an epoch counter
/// (the "go" edge), every worker executes the fixed callback once with
/// its worker index, and the last arrival releases the caller. Workers
/// spin on the epoch for `spin_budget` iterations before parking on a
/// futex (C++20 std::atomic::wait), so an oversubscribed machine — more
/// workers than cores — degrades to condvar-like latency instead of
/// burning the victim core's quantum.
///
/// Memory ordering: everything the caller wrote before run() is visible
/// to the workers (release bump / acquire poll of the epoch), and
/// everything the workers wrote is visible to the caller when run()
/// returns (release decrement / acquire poll of the pending count).
class BarrierTeam {
 public:
  /// Spawns `workers - 1` threads (the caller is worker 0). `fn(w)` runs
  /// once per worker per run(). `spin_budget` < 0 picks a default: a few
  /// thousand spins when the machine has a core per worker, immediate
  /// parking when oversubscribed; DF_BARRIER_SPIN overrides either.
  BarrierTeam(int workers, std::function<void(int)> fn, int spin_budget = -1);
  ~BarrierTeam();

  BarrierTeam(const BarrierTeam&) = delete;
  BarrierTeam& operator=(const BarrierTeam&) = delete;

  /// Executes fn(0..size-1) across the team; returns when all are done.
  /// Not reentrant — one phase at a time.
  void run();

  int size() const { return workers_; }
  int spin_budget() const { return spin_budget_; }

 private:
  void worker_loop(int index);

  std::function<void(int)> fn_;
  std::vector<std::thread> threads_;
  /// The barrier's sense: workers wait for the epoch to move past the
  /// value they last served. 64-bit, so it never wraps in practice.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  int workers_;
  int spin_budget_;
};

}  // namespace dfsim::runtime
