// Minimal fixed-size thread pool used by the parallel sweep runtime.
// Tasks are plain closures; `wait_idle` blocks until every submitted task
// has finished, so one pool can serve several sweep phases in sequence.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfsim::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks must not throw past their own frame; wrap
  /// and stash exceptions if the caller needs them (parallel_for does).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable idle_cv_;   ///< signals wait_idle: all done
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace dfsim::runtime
