#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/env.hpp"

namespace dfsim::runtime {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

BarrierTeam::BarrierTeam(int workers, std::function<void(int)> fn,
                         int spin_budget)
    : fn_(std::move(fn)), workers_(std::max(1, workers)) {
  if (spin_budget < 0) {
    // Spinning only pays when every worker owns a core; oversubscribed,
    // a spinning waiter steals the quantum of the worker it waits for.
    const auto cores = std::thread::hardware_concurrency();
    spin_budget = (cores != 0 && static_cast<unsigned>(workers_) <= cores)
                      ? 4096
                      : 0;
  }
  spin_budget_ =
      static_cast<int>(env_int("DF_BARRIER_SPIN", spin_budget));
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

BarrierTeam::~BarrierTeam() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void BarrierTeam::run() {
  if (workers_ == 1) {
    fn_(0);
    return;
  }
  pending_.store(workers_ - 1, std::memory_order_relaxed);
  // The release bump publishes the caller's pre-run() writes (and the
  // pending count) to every worker whose acquire poll observes it.
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  fn_(0);
  int spins = 0;
  for (;;) {
    const int p = pending_.load(std::memory_order_acquire);
    if (p == 0) return;
    // atomic::wait re-checks the value under the futex, so a notify that
    // lands between this load and the wait is never lost.
    if (++spins > spin_budget_) pending_.wait(p, std::memory_order_acquire);
  }
}

void BarrierTeam::worker_loop(int index) {
  std::uint64_t served = 0;
  for (;;) {
    int spins = 0;
    std::uint64_t e;
    for (;;) {
      e = epoch_.load(std::memory_order_acquire);
      if (e != served) break;
      if (++spins > spin_budget_) epoch_.wait(e, std::memory_order_acquire);
    }
    served = e;
    if (stop_.load(std::memory_order_acquire)) return;
    fn_(index);
    // Release so the caller's acquire poll of pending_ sees this
    // worker's writes; the last arrival wakes a parked caller.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pending_.notify_all();
    }
  }
}

}  // namespace dfsim::runtime
