#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/work_queue.hpp"

namespace dfsim::runtime {

namespace {
std::atomic<int> g_default_jobs{0};  // 0 = auto

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

int default_jobs() {
  const int set = g_default_jobs.load(std::memory_order_relaxed);
  if (set > 0) return set;
  const int env = env_jobs();
  if (env > 0) return env;
  return hardware_jobs();
}

int resolve_jobs(int requested) {
  return requested > 0 ? requested : default_jobs();
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const int workers = std::min<int>(resolve_jobs(jobs),
                                    static_cast<int>(std::min<std::size_t>(
                                        n, 1u << 16)));
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Over-shard 4x so slow points (high load, adversarial patterns) don't
  // leave the other workers idle at the tail of the grid.
  ShardedIndexQueue queue(n, static_cast<std::size_t>(workers) * 4);
  std::exception_ptr first_error;
  std::mutex error_mu;

  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.submit([&] {
      std::size_t begin = 0, end = 0;
      while (queue.next(begin, end)) {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      }
    });
  }
  pool.wait_idle();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dfsim::runtime
