// Deterministic per-point seed derivation for experiment grids. Every
// sweep point gets its own RNG stream derived from the base
// `SimConfig::seed` and the point's grid index, so results are identical
// no matter how many workers execute the grid or in which order.
#pragma once

#include <cstdint>

namespace dfsim::runtime {

/// splitmix64 finalizer over (base, index): well-distributed, collision
/// free in practice for any realistic grid, and stable across platforms.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace dfsim::runtime
