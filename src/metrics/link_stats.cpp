#include "metrics/link_stats.hpp"

#include <algorithm>
#include <sstream>

#include "sim/engine.hpp"

namespace dfsim {

LinkStats::LinkStats(const DragonflyTopology& topo)
    : topo_(topo),
      phits_(static_cast<std::size_t>(topo.num_routers()) *
                 static_cast<std::size_t>(topo.ports_per_router()),
             0) {}

void LinkStats::attach(Engine& engine) {
  engine.set_hop_hook(
      [this](const Packet& pkt, const RouteChoice& choice, RouterId r) {
        // Body flits always follow the head's output, so charging the
        // whole packet at decision time is exact for VCT and wormhole.
        record(r, choice.port, pkt.size_phits);
      });
}

void LinkStats::record(RouterId router, PortId port, int phits) {
  phits_[index(router, port)] += static_cast<std::uint64_t>(phits);
}

double LinkStats::utilization(RouterId router, PortId port,
                              Cycle now) const {
  if (now <= window_start_) return 0.0;
  return static_cast<double>(phits_[index(router, port)]) /
         static_cast<double>(now - window_start_);
}

LinkStats::ClassSummary LinkStats::summarize(PortClass cls,
                                             Cycle now) const {
  ClassSummary s;
  std::uint64_t count = 0;
  double total = 0.0;
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < topo_.ports_per_router(); ++p) {
      if (topo_.port_class(p) != cls) continue;
      if (is_excluded(r, p)) continue;
      const double u = utilization(r, p, now);
      total += u;
      s.max = std::max(s.max, u);
      s.min = std::min(s.min, u);
      ++count;
    }
  }
  if (count > 0) s.mean = total / static_cast<double>(count);
  return s;
}

std::vector<LinkStats::HotLink> LinkStats::hottest(PortClass cls, Cycle now,
                                                   int n) const {
  std::vector<HotLink> all;
  for (RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (PortId p = 0; p < topo_.ports_per_router(); ++p) {
      if (topo_.port_class(p) != cls) continue;
      if (is_excluded(r, p)) continue;
      all.push_back({r, p, utilization(r, p, now)});
    }
  }
  const auto top = std::min<std::size_t>(static_cast<std::size_t>(n),
                                         all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(top),
                    all.end(), [](const HotLink& a, const HotLink& b) {
                      return a.utilization > b.utilization;
                    });
  all.resize(top);
  return all;
}

std::string LinkStats::describe_link(RouterId router, PortId port) const {
  std::ostringstream os;
  os << "g" << topo_.group_of_router(router) << ".r"
     << topo_.local_index(router);
  bool wired = true;
  switch (topo_.port_class(port)) {
    case PortClass::kLocal:
      os << " local->r" << topo_.local_peer(topo_.local_index(router), port);
      break;
    case PortClass::kGlobal: {
      const GroupId dest = topo_.global_link_dest(
          topo_.group_of_router(router),
          topo_.global_link_of(topo_.local_index(router), port));
      if (dest == kInvalid) {
        os << " global (unwired)";
        wired = false;
      } else {
        os << " global->g" << dest;
      }
      break;
    }
    case PortClass::kTerminal:
      os << " eject->t" << (port - topo_.first_terminal_port());
      break;
  }
  if (wired && !topo_.port_alive(router, port)) os << " (dead)";
  return os.str();
}

}  // namespace dfsim
