// Measurement plumbing: warmup-aware latency and accepted-load accounting
// plus burst-drain timing (the paper's three reported metrics).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace dfsim {

class Collector {
 public:
  /// `warmup`: packets created before this cycle are excluded from
  /// latency; phits delivered before it are excluded from throughput.
  Collector(Cycle warmup, int num_terminals);

  void on_delivered(const Packet& pkt, Cycle now);
  void on_generated(Cycle now, bool accepted);

  /// Average end-to-end latency (source queueing included), cycles.
  double avg_latency() const { return latency_.mean(); }
  double latency_stddev() const { return latency_.stddev(); }
  double p99_latency() const { return latency_hist_.percentile(99.0); }

  /// Accepted load in phits/(node*cycle) over [warmup, end].
  double accepted_load(Cycle end) const;

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_packets_total() const {
    return delivered_packets_total_;
  }
  std::uint64_t generated_packets() const { return generated_; }
  std::uint64_t dropped_generations() const { return dropped_; }
  std::uint64_t generated_measured() const { return generated_measured_; }
  std::uint64_t dropped_measured() const { return dropped_measured_; }

  /// Offered load in phits/(node*cycle) over [warmup, end]: what the
  /// sources *tried* to inject, including generations dropped by the
  /// source-queue cap. Past saturation this keeps climbing with the
  /// configured load while accepted_load() plateaus — reporting both is
  /// what makes saturated points distinguishable.
  double offered_load(Cycle end, int packet_phits) const;

  /// Fraction of measurement-window generations dropped by the source
  /// queue cap (0 when none were generated).
  double drop_rate() const;

  /// Mean hop count of measured packets (sanity metric: <= 8 by design).
  double avg_hops() const { return hops_.mean(); }

 private:
  Cycle warmup_;
  int num_terminals_;
  RunningStat latency_;
  RunningStat hops_;
  Histogram latency_hist_;
  std::uint64_t delivered_packets_ = 0;        // in measurement window
  std::uint64_t delivered_packets_total_ = 0;  // since cycle 0
  std::uint64_t delivered_phits_ = 0;          // in measurement window
  std::uint64_t generated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t generated_measured_ = 0;  // in measurement window
  std::uint64_t dropped_measured_ = 0;    // in measurement window
};

}  // namespace dfsim
