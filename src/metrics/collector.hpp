// Measurement plumbing: warmup-aware latency and accepted-load accounting
// plus burst-drain timing (the paper's three reported metrics).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace dfsim {

/// Stats of one measurement window of a phased run: deliveries and
/// (accepted) generations that happened inside [start, end). Cut by
/// Collector::cut_window. `delivered_phits` (and with it accepted_load)
/// counts every post-warmup delivery landing in the window — the same
/// throughput accounting run_steady uses; `delivered` and `avg_latency`
/// cover only *measured* packets (created after warmup), so in the first
/// window delivered * packet_phits may undercount delivered_phits by the
/// warmup-created stragglers.
struct TrafficWindow {
  Cycle start = 0;
  Cycle end = 0;
  std::uint64_t delivered = 0;        ///< packets delivered in the window
  std::uint64_t delivered_phits = 0;  ///< their phits
  std::uint64_t generated = 0;        ///< source generations in the window
  std::uint64_t dropped = 0;          ///< of which the source cap dropped
  double avg_latency = 0.0;    ///< mean latency of the window's deliveries
  double accepted_load = 0.0;  ///< phits/(node*cycle) within the window
  double offered_load = 0.0;   ///< generated phits/(node*cycle) within it
  double drop_rate = 0.0;      ///< dropped / generated (0 when idle)
};

class Collector {
 public:
  /// `warmup`: packets created before this cycle are excluded from
  /// latency; phits delivered before it are excluded from throughput.
  Collector(Cycle warmup, int num_terminals);

  void on_delivered(const Packet& pkt, Cycle now);
  void on_generated(Cycle now, bool accepted);

  /// Average end-to-end latency (source queueing included), cycles.
  double avg_latency() const { return latency_.mean(); }
  double latency_stddev() const { return latency_.stddev(); }
  double p99_latency() const { return latency_hist_.percentile(99.0); }

  /// Accepted load in phits/(node*cycle) over [warmup, end].
  double accepted_load(Cycle end) const;

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_packets_total() const {
    return delivered_packets_total_;
  }
  std::uint64_t generated_packets() const { return generated_; }
  std::uint64_t dropped_generations() const { return dropped_; }
  std::uint64_t generated_measured() const { return generated_measured_; }
  std::uint64_t dropped_measured() const { return dropped_measured_; }

  /// Offered load in phits/(node*cycle) over [warmup, end]: what the
  /// sources *tried* to inject, including generations dropped by the
  /// source-queue cap. Past saturation this keeps climbing with the
  /// configured load while accepted_load() plateaus — reporting both is
  /// what makes saturated points distinguishable.
  double offered_load(Cycle end, int packet_phits) const;

  /// Fraction of measurement-window generations dropped by the source
  /// queue cap (0 when none were generated).
  double drop_rate() const;

  /// Mean hop count of measured packets (sanity metric: <= 8 by design).
  double avg_hops() const { return hops_.mean(); }

  /// Close the window [start, end): report every measured counter's delta
  /// since the previous cut (or since construction) and advance the mark.
  /// Windows therefore tile the run — summing their integer counters over
  /// all cuts reproduces the whole-run totals exactly.
  TrafficWindow cut_window(Cycle start, Cycle end, int packet_phits);

  // --- per-job accounting (multi-job workloads) -------------------------
  /// Partition the terminals for per-job attribution: map[t] names the job
  /// of terminal t, in [0, num_jobs). Deliveries are attributed by packet
  /// source under exactly the whole-run warmup rules (phits when the
  /// delivery is post-warmup; delivered/latency when the packet was also
  /// created post-warmup). An empty map (the default) disables the per-job
  /// counters. Throws std::invalid_argument on a size or range mismatch.
  void set_job_map(const std::vector<std::int32_t>& map, int num_jobs);
  int num_jobs() const { return num_jobs_; }

  /// Per-job deltas over [start, end), cut at the same boundaries as
  /// cut_window (each job carries its own mark, so per-job windows tile
  /// the run and sum to the per-job totals exactly). accepted_load is
  /// normalized by the JOB's terminal count; generated/dropped/offered
  /// stay 0 — the generation hook carries no terminal id, so offered load
  /// cannot be attributed to a job.
  std::vector<TrafficWindow> cut_job_windows(Cycle start, Cycle end);

  /// Whole-measurement per-job totals over [start, end) without advancing
  /// the marks (steady results may be derived repeatedly).
  std::vector<TrafficWindow> job_totals(Cycle start, Cycle end) const;

  // --- checkpoint support -----------------------------------------------
  /// Serialize every counter, the window mark, and the (bit-exact)
  /// floating-point accumulators. load() requires a collector constructed
  /// with the same warmup/terminal-count/histogram geometry and throws
  /// std::runtime_error on a truncated or mismatched stream.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Counter snapshot cut_window diffs against.
  struct Mark {
    std::uint64_t delivered = 0;
    std::uint64_t delivered_phits = 0;
    std::uint64_t generated = 0;
    std::uint64_t dropped = 0;
    double latency_sum = 0.0;
  };
  Mark mark_;
  double latency_sum_ = 0.0;  ///< plain sum feeding per-window means
  Cycle warmup_;
  int num_terminals_;
  RunningStat latency_;
  RunningStat hops_;
  Histogram latency_hist_;
  std::uint64_t delivered_packets_ = 0;        // in measurement window
  std::uint64_t delivered_packets_total_ = 0;  // since cycle 0
  std::uint64_t delivered_phits_ = 0;          // in measurement window
  std::uint64_t generated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t generated_measured_ = 0;  // in measurement window
  std::uint64_t dropped_measured_ = 0;    // in measurement window

  /// Running measured totals (and the cut_job_windows snapshot) for one
  /// job of the partition.
  struct JobCounters {
    std::uint64_t delivered = 0;
    std::uint64_t delivered_phits = 0;
    double latency_sum = 0.0;
  };
  std::vector<std::int32_t> job_of_;  ///< terminal -> job; empty = off
  std::vector<std::int32_t> job_terminals_;
  int num_jobs_ = 0;
  std::vector<JobCounters> job_;
  std::vector<JobCounters> job_mark_;
};

}  // namespace dfsim
