// Per-link utilization accounting. The paper's pathologies are *link*
// phenomena — one saturated global link under ADVG, one saturated local
// link under ADVL, and the pathological local link in the intermediate
// group under ADVG+h with global misrouting. This tracker makes them
// visible: attach to an engine, run, then query utilization per link or
// aggregated per class, and list the hottest links.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topology/dragonfly_topology.hpp"

namespace dfsim {

class Engine;

class LinkStats {
 public:
  explicit LinkStats(const DragonflyTopology& topo);

  /// Register the hop hook on `engine`. Only one hop observer can be
  /// attached to an engine; tests that need both use their own hook and
  /// call record() manually.
  void attach(Engine& engine);

  /// Record `phits` crossing (router, port).
  void record(RouterId router, PortId port, int phits);

  /// Begin the measurement window (typically after warmup).
  void start_window(Cycle now) { window_start_ = now; }

  /// Utilization of one link in phits/cycle over [window_start, now].
  double utilization(RouterId router, PortId port, Cycle now) const;

  struct ClassSummary {
    double mean = 0.0;  ///< mean utilization over the class's links
    double max = 0.0;   ///< the hottest link
    double min = 1.0;   ///< the coldest link
  };
  ClassSummary summarize(PortClass cls, Cycle now) const;

  struct HotLink {
    RouterId router;
    PortId port;
    double utilization;
  };
  /// The `n` busiest links of a class, hottest first.
  std::vector<HotLink> hottest(PortClass cls, Cycle now, int n) const;

  /// Human-readable link name: "g3.r2 local->r5", "g3.r2 global->g7".
  std::string describe_link(RouterId router, PortId port) const;

 private:
  /// Ports that can carry no traffic — unwired global slots (unbalanced
  /// shapes) and dead ports (degraded networks) — are excluded from
  /// class aggregates, so fault-free links are compared against each
  /// other rather than diluted by permanent zeros.
  bool is_excluded(RouterId router, PortId port) const {
    return !topo_.port_alive(router, port);
  }

  std::size_t index(RouterId router, PortId port) const {
    return static_cast<std::size_t>(router) *
               static_cast<std::size_t>(topo_.ports_per_router()) +
           static_cast<std::size_t>(port);
  }

  const DragonflyTopology& topo_;
  std::vector<std::uint64_t> phits_;
  Cycle window_start_ = 0;
};

}  // namespace dfsim
