#include "metrics/collector.hpp"

#include <stdexcept>
#include <string>

#include "common/serialize.hpp"

namespace dfsim {

namespace {

void save_stat(std::ostream& os, const RunningStat& s) {
  ser::write_u64(os, s.count());
  ser::write_f64(os, s.raw_mean());
  ser::write_f64(os, s.raw_m2());
}

void load_stat(std::istream& is, RunningStat& s, const char* what) {
  const std::uint64_t count = ser::read_u64(is, what);
  const double mean = ser::read_f64(is, what);
  const double m2 = ser::read_f64(is, what);
  s.restore(count, mean, m2);
}

}  // namespace

Collector::Collector(Cycle warmup, int num_terminals)
    : warmup_(warmup),
      num_terminals_(num_terminals),
      latency_hist_(/*width=*/16.0, /*num_buckets=*/4096) {}

void Collector::on_delivered(const Packet& pkt, Cycle now) {
  ++delivered_packets_total_;
  if (now < warmup_) return;
  delivered_phits_ += static_cast<std::uint64_t>(pkt.size_phits);
  // Per-job attribution (by packet source) mirrors the whole-run warmup
  // rules exactly, so the per-job counters sum to the totals above.
  JobCounters* jc = nullptr;
  if (num_jobs_ > 0) {
    jc = &job_[static_cast<std::size_t>(
        job_of_[static_cast<std::size_t>(pkt.src)])];
    jc->delivered_phits += static_cast<std::uint64_t>(pkt.size_phits);
  }
  if (pkt.created < warmup_) return;
  ++delivered_packets_;
  const auto lat = static_cast<double>(now - pkt.created);
  latency_.add(lat);
  latency_sum_ += lat;
  latency_hist_.add(lat);
  hops_.add(static_cast<double>(pkt.rs.total_hops));
  if (jc != nullptr) {
    ++jc->delivered;
    jc->latency_sum += lat;
  }
}

void Collector::set_job_map(const std::vector<std::int32_t>& map,
                            int num_jobs) {
  if (map.empty()) {
    job_of_.clear();
    job_terminals_.clear();
    job_.clear();
    job_mark_.clear();
    num_jobs_ = 0;
    return;
  }
  if (map.size() != static_cast<std::size_t>(num_terminals_)) {
    throw std::invalid_argument(
        "Collector::set_job_map: map covers " + std::to_string(map.size()) +
        " terminals but the collector tracks " +
        std::to_string(num_terminals_));
  }
  std::vector<std::int32_t> terminals(static_cast<std::size_t>(num_jobs), 0);
  for (const std::int32_t j : map) {
    if (j < 0 || j >= num_jobs) {
      throw std::invalid_argument(
          "Collector::set_job_map: job id " + std::to_string(j) +
          " outside [0, " + std::to_string(num_jobs) + ")");
    }
    ++terminals[static_cast<std::size_t>(j)];
  }
  job_of_ = map;
  job_terminals_ = std::move(terminals);
  num_jobs_ = num_jobs;
  job_.assign(static_cast<std::size_t>(num_jobs), JobCounters{});
  job_mark_.assign(static_cast<std::size_t>(num_jobs), JobCounters{});
}

std::vector<TrafficWindow> Collector::cut_job_windows(Cycle start,
                                                      Cycle end) {
  std::vector<TrafficWindow> out(static_cast<std::size_t>(num_jobs_));
  for (int j = 0; j < num_jobs_; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    const JobCounters& c = job_[uj];
    JobCounters& m = job_mark_[uj];
    TrafficWindow& w = out[uj];
    w.start = start;
    w.end = end;
    w.delivered = c.delivered - m.delivered;
    w.delivered_phits = c.delivered_phits - m.delivered_phits;
    const double latency_delta = c.latency_sum - m.latency_sum;
    if (w.delivered > 0) {
      w.avg_latency = latency_delta / static_cast<double>(w.delivered);
    }
    if (end > start && job_terminals_[uj] > 0) {
      w.accepted_load =
          static_cast<double>(w.delivered_phits) /
          (static_cast<double>(end - start) *
           static_cast<double>(job_terminals_[uj]));
    }
    m = c;
  }
  return out;
}

std::vector<TrafficWindow> Collector::job_totals(Cycle start,
                                                 Cycle end) const {
  std::vector<TrafficWindow> out(static_cast<std::size_t>(num_jobs_));
  for (int j = 0; j < num_jobs_; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    const JobCounters& c = job_[uj];
    TrafficWindow& w = out[uj];
    w.start = start;
    w.end = end;
    w.delivered = c.delivered;
    w.delivered_phits = c.delivered_phits;
    if (w.delivered > 0) {
      w.avg_latency = c.latency_sum / static_cast<double>(w.delivered);
    }
    if (end > start && job_terminals_[uj] > 0) {
      w.accepted_load =
          static_cast<double>(w.delivered_phits) /
          (static_cast<double>(end - start) *
           static_cast<double>(job_terminals_[uj]));
    }
  }
  return out;
}

void Collector::on_generated(Cycle now, bool accepted) {
  ++generated_;
  if (!accepted) ++dropped_;
  if (now >= warmup_) {
    ++generated_measured_;
    if (!accepted) ++dropped_measured_;
  }
}

double Collector::accepted_load(Cycle end) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(delivered_phits_) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::offered_load(Cycle end, int packet_phits) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(generated_measured_) *
         static_cast<double>(packet_phits) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::drop_rate() const {
  if (generated_measured_ == 0) return 0.0;
  return static_cast<double>(dropped_measured_) /
         static_cast<double>(generated_measured_);
}

void Collector::save(std::ostream& os) const {
  // Geometry fields first so a mismatched restore names the field.
  ser::write_u64(os, warmup_);
  ser::write_u64(os, static_cast<std::uint64_t>(num_terminals_));
  ser::write_u64(os, latency_hist_.buckets().size());

  ser::write_f64(os, latency_sum_);
  save_stat(os, latency_);
  save_stat(os, hops_);
  ser::write_u64_vec(os, latency_hist_.buckets());
  ser::write_u64(os, latency_hist_.count());
  ser::write_u64(os, delivered_packets_);
  ser::write_u64(os, delivered_packets_total_);
  ser::write_u64(os, delivered_phits_);
  ser::write_u64(os, generated_);
  ser::write_u64(os, dropped_);
  ser::write_u64(os, generated_measured_);
  ser::write_u64(os, dropped_measured_);
  ser::write_u64(os, mark_.delivered);
  ser::write_u64(os, mark_.delivered_phits);
  ser::write_u64(os, mark_.generated);
  ser::write_u64(os, mark_.dropped);
  ser::write_f64(os, mark_.latency_sum);
  // Per-job section (count 0 when no job map is set). The map itself is
  // config-derived and re-established before load(); only counters and
  // marks are state.
  ser::write_u64(os, static_cast<std::uint64_t>(num_jobs_));
  for (int j = 0; j < num_jobs_; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    ser::write_u64(os, job_[uj].delivered);
    ser::write_u64(os, job_[uj].delivered_phits);
    ser::write_f64(os, job_[uj].latency_sum);
    ser::write_u64(os, job_mark_[uj].delivered);
    ser::write_u64(os, job_mark_[uj].delivered_phits);
    ser::write_f64(os, job_mark_[uj].latency_sum);
  }
}

void Collector::load(std::istream& is) {
  ser::expect_u64(is, warmup_, "collector warmup cycles");
  ser::expect_u64(is, static_cast<std::uint64_t>(num_terminals_),
                  "collector terminal count");
  ser::expect_u64(is, latency_hist_.buckets().size(),
                  "collector histogram buckets");

  latency_sum_ = ser::read_f64(is, "collector latency sum");
  load_stat(is, latency_, "collector latency stat");
  load_stat(is, hops_, "collector hops stat");
  const auto buckets = ser::read_u64_vec(is, "collector histogram");
  const std::uint64_t hist_total =
      ser::read_u64(is, "collector histogram total");
  latency_hist_.restore(buckets, hist_total);
  delivered_packets_ = ser::read_u64(is, "collector delivered");
  delivered_packets_total_ = ser::read_u64(is, "collector delivered total");
  delivered_phits_ = ser::read_u64(is, "collector delivered phits");
  generated_ = ser::read_u64(is, "collector generated");
  dropped_ = ser::read_u64(is, "collector dropped");
  generated_measured_ = ser::read_u64(is, "collector generated measured");
  dropped_measured_ = ser::read_u64(is, "collector dropped measured");
  mark_.delivered = ser::read_u64(is, "collector mark delivered");
  mark_.delivered_phits = ser::read_u64(is, "collector mark phits");
  mark_.generated = ser::read_u64(is, "collector mark generated");
  mark_.dropped = ser::read_u64(is, "collector mark dropped");
  mark_.latency_sum = ser::read_f64(is, "collector mark latency sum");
  ser::expect_u64(is, static_cast<std::uint64_t>(num_jobs_),
                  "collector job count");
  for (int j = 0; j < num_jobs_; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    job_[uj].delivered = ser::read_u64(is, "collector job delivered");
    job_[uj].delivered_phits = ser::read_u64(is, "collector job phits");
    job_[uj].latency_sum = ser::read_f64(is, "collector job latency sum");
    job_mark_[uj].delivered =
        ser::read_u64(is, "collector job mark delivered");
    job_mark_[uj].delivered_phits =
        ser::read_u64(is, "collector job mark phits");
    job_mark_[uj].latency_sum =
        ser::read_f64(is, "collector job mark latency sum");
  }
}

TrafficWindow Collector::cut_window(Cycle start, Cycle end,
                                    int packet_phits) {
  TrafficWindow w;
  w.start = start;
  w.end = end;
  w.delivered = delivered_packets_ - mark_.delivered;
  w.delivered_phits = delivered_phits_ - mark_.delivered_phits;
  w.generated = generated_measured_ - mark_.generated;
  w.dropped = dropped_measured_ - mark_.dropped;
  const double latency_delta = latency_sum_ - mark_.latency_sum;
  if (w.delivered > 0) {
    w.avg_latency = latency_delta / static_cast<double>(w.delivered);
  }
  if (end > start) {
    const auto span = static_cast<double>(end - start);
    const auto nodes = static_cast<double>(num_terminals_);
    w.accepted_load = static_cast<double>(w.delivered_phits) / (span * nodes);
    w.offered_load = static_cast<double>(w.generated) *
                     static_cast<double>(packet_phits) / (span * nodes);
  }
  if (w.generated > 0) {
    w.drop_rate =
        static_cast<double>(w.dropped) / static_cast<double>(w.generated);
  }
  mark_.delivered = delivered_packets_;
  mark_.delivered_phits = delivered_phits_;
  mark_.generated = generated_measured_;
  mark_.dropped = dropped_measured_;
  mark_.latency_sum = latency_sum_;
  return w;
}

}  // namespace dfsim
