#include "metrics/collector.hpp"

#include "common/serialize.hpp"

namespace dfsim {

namespace {

void save_stat(std::ostream& os, const RunningStat& s) {
  ser::write_u64(os, s.count());
  ser::write_f64(os, s.raw_mean());
  ser::write_f64(os, s.raw_m2());
}

void load_stat(std::istream& is, RunningStat& s, const char* what) {
  const std::uint64_t count = ser::read_u64(is, what);
  const double mean = ser::read_f64(is, what);
  const double m2 = ser::read_f64(is, what);
  s.restore(count, mean, m2);
}

}  // namespace

Collector::Collector(Cycle warmup, int num_terminals)
    : warmup_(warmup),
      num_terminals_(num_terminals),
      latency_hist_(/*width=*/16.0, /*num_buckets=*/4096) {}

void Collector::on_delivered(const Packet& pkt, Cycle now) {
  ++delivered_packets_total_;
  if (now < warmup_) return;
  delivered_phits_ += static_cast<std::uint64_t>(pkt.size_phits);
  if (pkt.created < warmup_) return;
  ++delivered_packets_;
  const auto lat = static_cast<double>(now - pkt.created);
  latency_.add(lat);
  latency_sum_ += lat;
  latency_hist_.add(lat);
  hops_.add(static_cast<double>(pkt.rs.total_hops));
}

void Collector::on_generated(Cycle now, bool accepted) {
  ++generated_;
  if (!accepted) ++dropped_;
  if (now >= warmup_) {
    ++generated_measured_;
    if (!accepted) ++dropped_measured_;
  }
}

double Collector::accepted_load(Cycle end) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(delivered_phits_) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::offered_load(Cycle end, int packet_phits) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(generated_measured_) *
         static_cast<double>(packet_phits) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::drop_rate() const {
  if (generated_measured_ == 0) return 0.0;
  return static_cast<double>(dropped_measured_) /
         static_cast<double>(generated_measured_);
}

void Collector::save(std::ostream& os) const {
  // Geometry fields first so a mismatched restore names the field.
  ser::write_u64(os, warmup_);
  ser::write_u64(os, static_cast<std::uint64_t>(num_terminals_));
  ser::write_u64(os, latency_hist_.buckets().size());

  ser::write_f64(os, latency_sum_);
  save_stat(os, latency_);
  save_stat(os, hops_);
  ser::write_u64_vec(os, latency_hist_.buckets());
  ser::write_u64(os, latency_hist_.count());
  ser::write_u64(os, delivered_packets_);
  ser::write_u64(os, delivered_packets_total_);
  ser::write_u64(os, delivered_phits_);
  ser::write_u64(os, generated_);
  ser::write_u64(os, dropped_);
  ser::write_u64(os, generated_measured_);
  ser::write_u64(os, dropped_measured_);
  ser::write_u64(os, mark_.delivered);
  ser::write_u64(os, mark_.delivered_phits);
  ser::write_u64(os, mark_.generated);
  ser::write_u64(os, mark_.dropped);
  ser::write_f64(os, mark_.latency_sum);
}

void Collector::load(std::istream& is) {
  ser::expect_u64(is, warmup_, "collector warmup cycles");
  ser::expect_u64(is, static_cast<std::uint64_t>(num_terminals_),
                  "collector terminal count");
  ser::expect_u64(is, latency_hist_.buckets().size(),
                  "collector histogram buckets");

  latency_sum_ = ser::read_f64(is, "collector latency sum");
  load_stat(is, latency_, "collector latency stat");
  load_stat(is, hops_, "collector hops stat");
  const auto buckets = ser::read_u64_vec(is, "collector histogram");
  const std::uint64_t hist_total =
      ser::read_u64(is, "collector histogram total");
  latency_hist_.restore(buckets, hist_total);
  delivered_packets_ = ser::read_u64(is, "collector delivered");
  delivered_packets_total_ = ser::read_u64(is, "collector delivered total");
  delivered_phits_ = ser::read_u64(is, "collector delivered phits");
  generated_ = ser::read_u64(is, "collector generated");
  dropped_ = ser::read_u64(is, "collector dropped");
  generated_measured_ = ser::read_u64(is, "collector generated measured");
  dropped_measured_ = ser::read_u64(is, "collector dropped measured");
  mark_.delivered = ser::read_u64(is, "collector mark delivered");
  mark_.delivered_phits = ser::read_u64(is, "collector mark phits");
  mark_.generated = ser::read_u64(is, "collector mark generated");
  mark_.dropped = ser::read_u64(is, "collector mark dropped");
  mark_.latency_sum = ser::read_f64(is, "collector mark latency sum");
}

TrafficWindow Collector::cut_window(Cycle start, Cycle end,
                                    int packet_phits) {
  TrafficWindow w;
  w.start = start;
  w.end = end;
  w.delivered = delivered_packets_ - mark_.delivered;
  w.delivered_phits = delivered_phits_ - mark_.delivered_phits;
  w.generated = generated_measured_ - mark_.generated;
  w.dropped = dropped_measured_ - mark_.dropped;
  const double latency_delta = latency_sum_ - mark_.latency_sum;
  if (w.delivered > 0) {
    w.avg_latency = latency_delta / static_cast<double>(w.delivered);
  }
  if (end > start) {
    const auto span = static_cast<double>(end - start);
    const auto nodes = static_cast<double>(num_terminals_);
    w.accepted_load = static_cast<double>(w.delivered_phits) / (span * nodes);
    w.offered_load = static_cast<double>(w.generated) *
                     static_cast<double>(packet_phits) / (span * nodes);
  }
  if (w.generated > 0) {
    w.drop_rate =
        static_cast<double>(w.dropped) / static_cast<double>(w.generated);
  }
  mark_.delivered = delivered_packets_;
  mark_.delivered_phits = delivered_phits_;
  mark_.generated = generated_measured_;
  mark_.dropped = dropped_measured_;
  mark_.latency_sum = latency_sum_;
  return w;
}

}  // namespace dfsim
