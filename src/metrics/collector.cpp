#include "metrics/collector.hpp"

namespace dfsim {

Collector::Collector(Cycle warmup, int num_terminals)
    : warmup_(warmup),
      num_terminals_(num_terminals),
      latency_hist_(/*width=*/16.0, /*num_buckets=*/4096) {}

void Collector::on_delivered(const Packet& pkt, Cycle now) {
  ++delivered_packets_total_;
  if (now < warmup_) return;
  delivered_phits_ += static_cast<std::uint64_t>(pkt.size_phits);
  if (pkt.created < warmup_) return;
  ++delivered_packets_;
  const auto lat = static_cast<double>(now - pkt.created);
  latency_.add(lat);
  latency_sum_ += lat;
  latency_hist_.add(lat);
  hops_.add(static_cast<double>(pkt.rs.total_hops));
}

void Collector::on_generated(Cycle now, bool accepted) {
  ++generated_;
  if (!accepted) ++dropped_;
  if (now >= warmup_) {
    ++generated_measured_;
    if (!accepted) ++dropped_measured_;
  }
}

double Collector::accepted_load(Cycle end) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(delivered_phits_) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::offered_load(Cycle end, int packet_phits) const {
  if (end <= warmup_) return 0.0;
  const auto window = static_cast<double>(end - warmup_);
  return static_cast<double>(generated_measured_) *
         static_cast<double>(packet_phits) /
         (window * static_cast<double>(num_terminals_));
}

double Collector::drop_rate() const {
  if (generated_measured_ == 0) return 0.0;
  return static_cast<double>(dropped_measured_) /
         static_cast<double>(generated_measured_);
}

TrafficWindow Collector::cut_window(Cycle start, Cycle end,
                                    int packet_phits) {
  TrafficWindow w;
  w.start = start;
  w.end = end;
  w.delivered = delivered_packets_ - mark_.delivered;
  w.delivered_phits = delivered_phits_ - mark_.delivered_phits;
  w.generated = generated_measured_ - mark_.generated;
  w.dropped = dropped_measured_ - mark_.dropped;
  const double latency_delta = latency_sum_ - mark_.latency_sum;
  if (w.delivered > 0) {
    w.avg_latency = latency_delta / static_cast<double>(w.delivered);
  }
  if (end > start) {
    const auto span = static_cast<double>(end - start);
    const auto nodes = static_cast<double>(num_terminals_);
    w.accepted_load = static_cast<double>(w.delivered_phits) / (span * nodes);
    w.offered_load = static_cast<double>(w.generated) *
                     static_cast<double>(packet_phits) / (span * nodes);
  }
  if (w.generated > 0) {
    w.drop_rate =
        static_cast<double>(w.dropped) / static_cast<double>(w.generated);
  }
  mark_.delivered = delivered_packets_;
  mark_.delivered_phits = delivered_phits_;
  mark_.generated = generated_measured_;
  mark_.dropped = dropped_measured_;
  mark_.latency_sum = latency_sum_;
  return w;
}

}  // namespace dfsim
