// df_run: execute (or resume) an experiment manifest.
//
//   df_run <manifest-file> [--jobs=N] [--run-dir=DIR]
//          [--checkpoint-every=CYCLES] [--dry-run]
//          [--claim] [--claim-ttl=SECONDS] [--no-merge]
//   df_run --list-traffic | --list-routing | --list-workloads
//
// The manifest grammar and the run-directory ledger layout are
// documented in src/api/manifest.hpp. Re-running the same command after
// a crash (or a SIGKILL) skips every completed point, restores the
// in-flight point from its periodic checkpoint, and produces a merged
// results.csv byte-identical to an uninterrupted run.
//
// --claim turns on work-stealing mode (src/api/claim.hpp): N df_run
// processes — across machines sharing the run directory — partition
// the pending points dynamically via claim_NNNN lease files, steal
// leases of crashed peers after --claim-ttl seconds (DF_CLAIM_TTL,
// default 60), and whichever process finds the ledger complete
// performs the merge. --no-merge exits as soon as no point is
// claimable, reporting how many points peers still hold. The --list-*
// flags print each registry (key, alias, one-line spec help) and exit.
// Environment: DF_RUN_DIR (default run directory), DF_CHECKPOINT_EVERY
// (checkpoint cadence in cycles, default 20000), DF_CLAIM_TTL (lease
// TTL in seconds), DF_JOBS (worker count).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "api/manifest.hpp"
#include "routing/factory.hpp"
#include "runtime/seed.hpp"
#include "traffic/factory.hpp"
#include "traffic/workload.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <manifest-file> [--jobs=N] [--run-dir=DIR]\n"
               "          [--checkpoint-every=CYCLES] [--dry-run]\n"
               "          [--claim] [--claim-ttl=SECONDS] [--no-merge]\n"
               "       %s --list-traffic | --list-routing | --list-workloads\n",
               argv0, argv0);
  return 2;
}

void print_row(const char* key, const char* alias, const char* help) {
  std::string name = key;
  if (alias[0] != '\0') {
    name += " (";
    name += alias;
    name += ")";
  }
  std::printf("  %-22s %s\n", name.c_str(), help);
}

int list_traffic() {
  std::printf("traffic patterns (DF_TRAFFIC / cfg.pattern specs):\n");
  for (const auto& e : dfsim::traffic_pattern_registry()) {
    print_row(e.key, e.alias, e.help);
  }
  return 0;
}

int list_routing() {
  std::printf("routing mechanisms (DF_ROUTING / cfg.routing names):\n");
  for (const auto& e : dfsim::routing_registry()) {
    print_row(e.key, e.alias, e.help);
  }
  return 0;
}

int list_workloads() {
  std::printf("workloads (DF_WORKLOAD / cfg.workload specs):\n");
  for (const auto& e : dfsim::workload_registry()) {
    print_row(e.key, e.alias, e.help);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;

  std::string manifest_path;
  ManifestRunOptions opts;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--run-dir=", 10) == 0) {
      opts.run_dir = arg + 10;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      opts.checkpoint_every = std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strcmp(arg, "--claim") == 0) {
      opts.claim = true;
    } else if (std::strncmp(arg, "--claim-ttl=", 12) == 0) {
      opts.claim_ttl_s = std::strtod(arg + 12, nullptr);
    } else if (std::strcmp(arg, "--no-merge") == 0) {
      opts.no_merge = true;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(arg, "--list-traffic") == 0) {
      return list_traffic();
    } else if (std::strcmp(arg, "--list-routing") == 0) {
      return list_routing();
    } else if (std::strcmp(arg, "--list-workloads") == 0) {
      return list_workloads();
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (manifest_path.empty()) return usage(argv[0]);

  try {
    const Manifest m = Manifest::load_file(manifest_path);
    const auto points = m.expand();
    if (dry_run) {
      std::cout << "# manifest '" << m.name << "': " << points.size()
                << " points, "
                << (m.phases.empty() ? "steady" : "phased") << "\n";
      std::cout << "index,series,x,seed\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        std::cout << i << "," << points[i].series << "," << points[i].x
                  << "," << runtime::derive_seed(points[i].cfg.seed, i)
                  << "\n";
      }
      return 0;
    }
    opts.log = &std::cerr;
    const ManifestRunSummary s = run_manifest(m, opts);
    std::cout << "manifest '" << m.name << "': " << s.total_points
              << " points, " << s.skipped_points
              << " already complete, " << s.ran_points << " executed";
    if (opts.claim) {
      std::cout << ", " << s.stolen_leases << " stolen";
    }
    std::cout << "\n";
    if (s.merged) {
      std::cout << "results: " << s.csv_path << "\n";
    } else {
      std::cout << s.pending_points
                << " points still pending; merge deferred\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "df_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
