// df_run: execute (or resume) an experiment manifest.
//
//   df_run <manifest-file> [--jobs=N] [--run-dir=DIR]
//          [--checkpoint-every=CYCLES] [--dry-run]
//
// The manifest grammar and the run-directory ledger layout are
// documented in src/api/manifest.hpp. Re-running the same command after
// a crash (or a SIGKILL) skips every completed point, restores the
// in-flight point from its periodic checkpoint, and produces a merged
// results.csv byte-identical to an uninterrupted run. Environment:
// DF_RUN_DIR (default run directory), DF_CHECKPOINT_EVERY (checkpoint
// cadence in cycles, default 20000), DF_JOBS (worker count).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "api/manifest.hpp"
#include "runtime/seed.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <manifest-file> [--jobs=N] [--run-dir=DIR]\n"
               "          [--checkpoint-every=CYCLES] [--dry-run]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;

  std::string manifest_path;
  ManifestRunOptions opts;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--run-dir=", 10) == 0) {
      opts.run_dir = arg + 10;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      opts.checkpoint_every = std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (manifest_path.empty()) return usage(argv[0]);

  try {
    const Manifest m = Manifest::load_file(manifest_path);
    const auto points = m.expand();
    if (dry_run) {
      std::cout << "# manifest '" << m.name << "': " << points.size()
                << " points, "
                << (m.phases.empty() ? "steady" : "phased") << "\n";
      std::cout << "index,series,x,seed\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        std::cout << i << "," << points[i].series << "," << points[i].x
                  << "," << runtime::derive_seed(points[i].cfg.seed, i)
                  << "\n";
      }
      return 0;
    }
    opts.log = &std::cerr;
    const ManifestRunSummary s = run_manifest(m, opts);
    std::cout << "manifest '" << m.name << "': " << s.total_points
              << " points, " << s.skipped_points
              << " already complete, " << s.ran_points
              << " executed\nresults: " << s.csv_path << "\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "df_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
