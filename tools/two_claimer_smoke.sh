#!/usr/bin/env bash
# Two-claimer work-stealing smoke: launch two `df_run --claim` processes
# on one shared run directory, SIGKILL one mid-point, and require the
# survivor to steal the dead claimer's lease (after the TTL) and produce
# a merged results.csv byte-identical to an uninterrupted single-process
# run. Exercises the whole multi-machine stack end to end: O_EXCL lease
# claims, flock liveness, TTL expiry + steal, checkpoint-resume of the
# stolen point, and the complete-ledger merge barrier.
#
#   tools/two_claimer_smoke.sh <path-to-df_run> [workdir] [kill-delay-s]
#
# Exits non-zero if the killed claimer's work cannot be collected
# bit-identically.
set -euo pipefail

DF_RUN=${1:?usage: two_claimer_smoke.sh <path-to-df_run> [workdir] [kill-delay-s]}
WORK=${2:-$(mktemp -d)}
KILL_DELAY=${3:-1.5}
CLAIM_TTL=3

mkdir -p "$WORK"
MANIFEST="$WORK/smoke_manifest.txt"
cat > "$MANIFEST" <<'EOF'
# two-claimer smoke: four phased points long enough that a claimer can
# be killed mid-point at laptop scale.
name = two_claimer_smoke
h = 2
warmup_cycles = 2000
seed = 9

grid.routing = olm, minimal
phase = cycles=400000 windows=4
phase = cycles=400000 windows=4 pattern=advg+1
EOF

REF_DIR="$WORK/ref.run"
CLAIM_DIR="$WORK/claim.run"
rm -rf "$REF_DIR" "$CLAIM_DIR"

echo "== reference run (single process, uninterrupted)"
"$DF_RUN" "$MANIFEST" --run-dir="$REF_DIR" --jobs=1 --checkpoint-every=50000 \
    > /dev/null 2>&1

echo "== two claimers, one SIGKILLed after ${KILL_DELAY}s (TTL ${CLAIM_TTL}s)"
for attempt in 1 2 3; do
  rm -rf "$CLAIM_DIR"
  "$DF_RUN" "$MANIFEST" --run-dir="$CLAIM_DIR" --jobs=1 --claim \
      --claim-ttl="$CLAIM_TTL" --checkpoint-every=50000 \
      > "$WORK/victim.out" 2>&1 &
  victim=$!
  "$DF_RUN" "$MANIFEST" --run-dir="$CLAIM_DIR" --jobs=1 --claim \
      --claim-ttl="$CLAIM_TTL" --checkpoint-every=50000 \
      > "$WORK/survivor.out" 2>&1 &
  survivor=$!
  sleep "$KILL_DELAY"
  if kill -9 "$victim" 2>/dev/null; then
    wait "$victim" 2>/dev/null || true
    wait "$survivor"
    if grep -q '(stolen)' "$WORK/survivor.out"; then
      break  # the victim died holding a lease and it was stolen
    fi
    echo "   attempt $attempt: victim died between points (nothing stolen); retrying"
  else
    wait "$victim" 2>/dev/null || true
    wait "$survivor" 2>/dev/null || true
    echo "   attempt $attempt: victim finished before the kill landed; retrying"
    KILL_DELAY=$(awk -v d="$KILL_DELAY" 'BEGIN { print d / 2 }')
  fi
done

echo "   survivor summary:"
sed 's/^/     /' "$WORK/survivor.out" | tail -5

if ! grep -q '(stolen)' "$WORK/survivor.out"; then
  echo "FAIL: no lease was stolen in any attempt (machine too fast/slow?)" >&2
  exit 1
fi
if [ ! -f "$CLAIM_DIR/results.csv" ]; then
  echo "FAIL: survivor did not reach the merge barrier" >&2
  exit 1
fi
if ls "$CLAIM_DIR"/claim_* > /dev/null 2>&1; then
  echo "FAIL: leases left behind after the merge" >&2
  exit 1
fi

echo "== comparing merged CSVs"
if ! cmp "$REF_DIR/results.csv" "$CLAIM_DIR/results.csv"; then
  echo "FAIL: claimed/stolen results.csv differs from the uninterrupted run" >&2
  exit 1
fi
echo "PASS: killed claimer's lease stolen; merge byte-identical to reference"
