#!/usr/bin/env bash
# Kill-and-resume smoke: start a manifest run, SIGKILL it mid-flight,
# resume it, and require the merged results.csv to be byte-identical to
# an uninterrupted reference run. Exercises the whole checkpoint stack
# end to end: periodic engine snapshots, the atomic point ledger, and
# resume-on-restart.
#
#   tools/kill_resume_smoke.sh <path-to-df_run> [workdir] [kill-delay-s]
#
# Exits non-zero if the killed run cannot be resumed bit-identically.
set -euo pipefail

DF_RUN=${1:?usage: kill_resume_smoke.sh <path-to-df_run> [workdir] [kill-delay-s]}
WORK=${2:-$(mktemp -d)}
KILL_DELAY=${3:-1.5}

mkdir -p "$WORK"
MANIFEST="$WORK/smoke_manifest.txt"
cat > "$MANIFEST" <<'EOF'
# kill-and-resume smoke: two phased runs long enough to be killed
# mid-flight at laptop scale, with a mid-run pattern switch so the
# restored-switched-pattern path is exercised too.
name = kill_resume_smoke
h = 2
warmup_cycles = 2000
seed = 9

grid.routing = olm, minimal
phase = cycles=400000 windows=4
phase = cycles=400000 windows=4 pattern=advg+1
EOF

REF_DIR="$WORK/ref.run"
KILL_DIR="$WORK/kill.run"
rm -rf "$REF_DIR" "$KILL_DIR"

echo "== reference run (uninterrupted)"
"$DF_RUN" "$MANIFEST" --run-dir="$REF_DIR" --jobs=1 --checkpoint-every=50000 \
    > /dev/null 2>&1

echo "== killed run (SIGKILL after ${KILL_DELAY}s)"
for attempt in 1 2 3; do
  rm -rf "$KILL_DIR"
  "$DF_RUN" "$MANIFEST" --run-dir="$KILL_DIR" --jobs=1 \
      --checkpoint-every=50000 > /dev/null 2>&1 &
  pid=$!
  sleep "$KILL_DELAY"
  if kill -9 "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null || true
    if [ ! -f "$KILL_DIR/results.csv" ]; then
      break  # killed mid-flight, as intended
    fi
  fi
  wait "$pid" 2>/dev/null || true
  echo "   attempt $attempt finished before the kill landed; retrying"
  KILL_DELAY=$(awk -v d="$KILL_DELAY" 'BEGIN { print d / 2 }')
done

if [ -f "$KILL_DIR/results.csv" ]; then
  echo "FAIL: could not kill the run mid-flight (machine too fast?)" >&2
  exit 1
fi

echo "   interrupted state:"
ls "$KILL_DIR" | sed 's/^/     /'

echo "== resuming the killed run"
"$DF_RUN" "$MANIFEST" --run-dir="$KILL_DIR" --jobs=1 --checkpoint-every=50000

echo "== comparing merged CSVs"
if ! cmp "$REF_DIR/results.csv" "$KILL_DIR/results.csv"; then
  echo "FAIL: resumed results.csv differs from the uninterrupted run" >&2
  exit 1
fi
echo "PASS: kill-and-resume run is byte-identical to the reference"
