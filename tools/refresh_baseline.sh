#!/usr/bin/env bash
# Regenerate bench/baseline/BENCH_baseline.json — the perf-gate reference
# (tools/perf_gate.py). Run from the repository root on a quiet machine:
#
#     tools/refresh_baseline.sh [build-dir]
#
# It rebuilds Release, then runs exactly the benches the CI gate times —
# the micro_sim smoke and the pinned fig05 point — three times each,
# keeping every record (the gate compares against the fastest). Commit
# the refreshed file together with the change that legitimately moved the
# numbers, and say so in the commit message.
set -euo pipefail

BUILD_DIR="${1:-build}"
BASELINE="bench/baseline/BENCH_baseline.json"
TMP_JSON="$(mktemp --suffix=.json)"
trap 'rm -f "$TMP_JSON"' EXIT
rm -f "$TMP_JSON"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j

export DF_BENCH_JSON="$TMP_JSON"
for _ in 1 2 3; do
  # The same pinned fig05 point the PR gate runs (keep in sync with
  # .github/workflows/ci.yml).
  DF_H=2 DF_WARMUP=500 DF_MEASURE=1500 \
    "$BUILD_DIR/bench/fig05_throughput_vct" --jobs=2 >/dev/null
  # The same point under the sharded engine; reports as
  # "fig05_throughput_vct+sharded", its own perf-gate identity.
  DF_ENGINE=sharded DF_H=2 DF_WARMUP=500 DF_MEASURE=1500 \
    "$BUILD_DIR/bench/fig05_throughput_vct" --jobs=2 >/dev/null
  # The micro_sim smoke (skipped with a note if google-benchmark was
  # unavailable at configure time).
  if [ -x "$BUILD_DIR/bench/micro_sim" ]; then
    (cd "$BUILD_DIR" && ctest -R micro_sim_smoke --output-on-failure >/dev/null)
  else
    echo "note: micro_sim not built (google-benchmark missing); baseline" \
         "will not gate it" >&2
  fi
done

mkdir -p "$(dirname "$BASELINE")"
cp "$TMP_JSON" "$BASELINE"
echo "wrote $BASELINE:"
cat "$BASELINE"
