#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_sweep.json records against a
reference and fail when wall-clock regresses beyond tolerance.

Baseline mode (the committed single-point reference):
    tools/perf_gate.py --baseline bench/baseline/BENCH_baseline.json \
                       --current build/BENCH_sweep.json [--tolerance 0.25]

Trajectory mode (a bench_store.py JSONL store — gate against the actual
recent history instead of one committed snapshot):
    tools/perf_gate.py --trajectory bench_store.jsonl \
                       --current build/BENCH_sweep.json [--window 10]

Baseline/current files are JSON arrays of {"bench": <name>, "wall_s":
<s>, "jobs": N} records (the format every bench's BenchReport appends).
When a bench name appears several times on either side — e.g. best-of-N
runs — the FASTEST record is used, which filters scheduler noise on
shared runners. In trajectory mode the reference per bench is the min
over the last --window store records, so the gate tracks genuine drift
(a slowly decaying trajectory keeps failing) without a manual refresh.

In baseline mode every bench present in the baseline must be present in
the current file; a missing bench means the gate step forgot to run it
and is an error, not a pass. Benches only present in the current file
are reported but not gated (they have no reference yet — refresh the
baseline to gate them, see tools/refresh_baseline.sh; in trajectory
mode, ingest more runs). In trajectory mode only the benches present in
both the store and the current file are gated — the store accumulates
nightly-only benches a PR run never executes.

Exit status: 0 = within tolerance, 1 = regression or missing bench,
2 = bad invocation/unreadable input.
"""

import argparse
import json
import os
import sys

import bench_store


def trajectory_reference(path, window):
    """Per-bench reference from a bench_store JSONL store: the min
    wall_s over each bench's last `window` records."""
    records = bench_store.load_store(path)
    if not records:
        print(f"perf_gate: trajectory store {path} is empty or missing; "
              "ingest a run first (tools/bench_store.py ingest)",
              file=sys.stderr)
        sys.exit(2)
    best = {}
    for name, group in bench_store.by_bench(records).items():
        group.sort(key=lambda r: r.get("seq", 0))
        best[name] = min(r["wall_s"] for r in group[-window:])
    return best


def fastest_by_bench(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    best = {}
    for r in records:
        name, wall = r.get("bench"), r.get("wall_s")
        if not isinstance(name, str) or not isinstance(wall, (int, float)):
            print(f"perf_gate: malformed record in {path}: {r}",
                  file=sys.stderr)
            sys.exit(2)
        if name not in best or wall < best[name]:
            best[name] = float(wall)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline",
                    help="committed reference (bench/baseline/...)")
    ap.add_argument("--trajectory",
                    help="bench_store.py JSONL store to gate against "
                         "(instead of --baseline)")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_sweep.json")
    ap.add_argument("--window", type=int, default=10,
                    help="trajectory mode: trailing records per bench the "
                         "reference min is taken over (default 10)")
    ap.add_argument("--tolerance",
                    type=float,
                    default=float(os.environ.get("PERF_GATE_TOLERANCE",
                                                 "0.25")),
                    help="allowed fractional slowdown (default 0.25, i.e. "
                         "fail above +25%%; PERF_GATE_TOLERANCE overrides)")
    args = ap.parse_args()
    if bool(args.baseline) == bool(args.trajectory):
        print("perf_gate: pass exactly one of --baseline / --trajectory",
              file=sys.stderr)
        return 2

    trajectory_mode = args.trajectory is not None
    if trajectory_mode:
        baseline = trajectory_reference(args.trajectory, args.window)
        ref_label = "trailing"
    else:
        baseline = fastest_by_bench(args.baseline)
        ref_label = "baseline"
    current = fastest_by_bench(args.current)
    if not baseline:
        print("perf_gate: baseline has no records; regenerate it "
              "(tools/refresh_baseline.sh)", file=sys.stderr)
        return 2
    if trajectory_mode and not set(baseline) & set(current):
        print("perf_gate: no overlap between the trajectory store and the "
              "current run — gate step misconfigured", file=sys.stderr)
        return 2

    failed = False
    width = max(len(n) for n in set(baseline) | set(current))
    mode = (f"trajectory window {args.window}" if trajectory_mode
            else "committed baseline")
    print(f"perf gate ({mode}, tolerance +{args.tolerance:.0%}):")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            if trajectory_mode:
                # The store accumulates every bench ever ingested
                # (nightly-only ones included); absence from this run is
                # only an error in baseline mode, where the reference
                # set IS the set the gate step must execute.
                print(f"  {name:<{width}}  not in this run (store "
                      f"{base:.3f}s); not gated")
            else:
                print(f"  {name:<{width}}  MISSING from current run "
                      f"(baseline {base:.3f}s) — gate step misconfigured")
                failed = True
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"  {name:<{width}}  {ref_label} {base:8.3f}s  "
              f"current {cur:8.3f}s  ratio {ratio:5.2f}x  {verdict}")
        if verdict != "ok":
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  current {current[name]:8.3f}s  "
              f"(no reference; not gated)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
