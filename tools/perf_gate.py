#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_sweep.json records against the
committed baseline and fail when wall-clock regresses beyond tolerance.

Usage:
    tools/perf_gate.py --baseline bench/baseline/BENCH_baseline.json \
                       --current build/BENCH_sweep.json [--tolerance 0.25]

Both files are JSON arrays of {"bench": <name>, "wall_s": <s>, "jobs": N}
records (the format every bench's BenchReport appends). When a bench name
appears several times on either side — e.g. best-of-N runs — the FASTEST
record is used, which filters scheduler noise on shared runners.

Every bench present in the baseline must be present in the current file;
a missing bench means the gate step forgot to run it and is an error, not
a pass. Benches only present in the current file are reported but not
gated (they have no reference yet — refresh the baseline to gate them,
see tools/refresh_baseline.sh).

Exit status: 0 = within tolerance, 1 = regression or missing bench,
2 = bad invocation/unreadable input.
"""

import argparse
import json
import os
import sys


def fastest_by_bench(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    best = {}
    for r in records:
        name, wall = r.get("bench"), r.get("wall_s")
        if not isinstance(name, str) or not isinstance(wall, (int, float)):
            print(f"perf_gate: malformed record in {path}: {r}",
                  file=sys.stderr)
            sys.exit(2)
        if name not in best or wall < best[name]:
            best[name] = float(wall)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed reference (bench/baseline/...)")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_sweep.json")
    ap.add_argument("--tolerance",
                    type=float,
                    default=float(os.environ.get("PERF_GATE_TOLERANCE",
                                                 "0.25")),
                    help="allowed fractional slowdown (default 0.25, i.e. "
                         "fail above +25%%; PERF_GATE_TOLERANCE overrides)")
    args = ap.parse_args()

    baseline = fastest_by_bench(args.baseline)
    current = fastest_by_bench(args.current)
    if not baseline:
        print("perf_gate: baseline has no records; regenerate it "
              "(tools/refresh_baseline.sh)", file=sys.stderr)
        return 2

    failed = False
    width = max(len(n) for n in set(baseline) | set(current))
    print(f"perf gate (tolerance +{args.tolerance:.0%}):")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            print(f"  {name:<{width}}  MISSING from current run "
                  f"(baseline {base:.3f}s) — gate step misconfigured")
            failed = True
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"  {name:<{width}}  baseline {base:8.3f}s  "
              f"current {cur:8.3f}s  ratio {ratio:5.2f}x  {verdict}")
        if verdict != "ok":
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  current {current[name]:8.3f}s  "
              f"(no baseline; not gated)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
