#!/usr/bin/env python3
"""bench_store: turn the append-only BENCH_*.json trail into a queryable
per-bench perf trajectory.

Every bench run appends {"bench", "wall_s", "jobs", ...} records to a
BENCH_sweep.json array (src/common/bench_json.cpp). That trail is
per-run and unqueryable: the perf gate compares against one committed
baseline instead of the actual trajectory. This tool ingests those
arrays into a durable JSON-lines store — one record per line, in
ingestion order — and answers trajectory queries over it:

    bench_store.py ingest FILE... [--store PATH] [--no-dedup]
    bench_store.py list           [--store PATH]
    bench_store.py query BENCH    [--store PATH] [--last N] [--json]
    bench_store.py regress BENCH... [--store PATH] [--window N]
                                    [--tolerance T]
    bench_store.py selftest

The store (--store, or $DF_BENCH_STORE, default bench_store.jsonl) is
append-only; each stored record keeps the source record's fields and
gains "seq" (monotonic ingestion index), "source" (basename of the
ingested file) and "fingerprint". The fingerprint hashes (source file
content, record index), so re-ingesting the same BENCH file is a no-op
by default (--no-dedup disables the check).

`query` prints the last N records plus a median/min summary. `regress`
compares the newest record of each named bench against the min of the
trailing window of earlier records and exits 1 when it is slower than
(1 + tolerance) x reference — the trajectory-mode twin of
tools/perf_gate.py, which consumes the same store via --trajectory.

Exit status: 0 = ok, 1 = regression detected, 2 = bad invocation or
unreadable input.
"""

import argparse
import hashlib
import json
import os
import statistics
import sys
import tempfile


def default_store():
    return os.environ.get("DF_BENCH_STORE", "bench_store.jsonl")


def load_store(path):
    """Read the JSONL store; a missing file is an empty store."""
    records = []
    if not os.path.exists(path):
        return records
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as e:
                    print(f"bench_store: {path}:{lineno}: bad record: {e}",
                          file=sys.stderr)
                    sys.exit(2)
    except OSError as e:
        print(f"bench_store: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return records


def cmd_ingest(args):
    store = load_store(args.store)
    seen = {r.get("fingerprint") for r in store}
    seq = max((r.get("seq", -1) for r in store), default=-1) + 1
    added = skipped = 0
    lines = []
    for path in args.files:
        try:
            with open(path, "rb") as f:
                raw = f.read()
            records = json.loads(raw)
        except (OSError, ValueError) as e:
            print(f"bench_store: cannot read {path}: {e}", file=sys.stderr)
            return 2
        if not isinstance(records, list):
            print(f"bench_store: {path} is not a BENCH record array",
                  file=sys.stderr)
            return 2
        content = hashlib.sha256(raw).hexdigest()[:16]
        for index, record in enumerate(records):
            name = record.get("bench")
            wall = record.get("wall_s")
            if not isinstance(name, str) or not isinstance(wall, (int, float)):
                print(f"bench_store: malformed record in {path}: {record}",
                      file=sys.stderr)
                return 2
            # The dedup unit is (file content, record index): re-ingesting
            # the same file skips everything, while a fresh run's file
            # (different timings => different content) always lands.
            fingerprint = f"{content}:{index}"
            if not args.no_dedup and fingerprint in seen:
                skipped += 1
                continue
            stored = dict(record)
            stored["seq"] = seq
            stored["source"] = os.path.basename(path)
            stored["fingerprint"] = fingerprint
            seen.add(fingerprint)
            lines.append(json.dumps(stored, sort_keys=True))
            seq += 1
            added += 1
    if lines:
        with open(args.store, "a") as f:
            f.write("\n".join(lines) + "\n")
    print(f"bench_store: ingested {added} records into {args.store}"
          f" ({skipped} duplicates skipped)")
    return 0


def by_bench(records):
    out = {}
    for r in records:
        out.setdefault(r.get("bench"), []).append(r)
    return out


def cmd_list(args):
    groups = by_bench(load_store(args.store))
    if not groups:
        print(f"bench_store: {args.store} is empty")
        return 0
    width = max(len(n) for n in groups)
    for name in sorted(groups):
        walls = [r["wall_s"] for r in groups[name]]
        print(f"  {name:<{width}}  {len(walls):3d} records"
              f"  min {min(walls):8.3f}s  median"
              f" {statistics.median(walls):8.3f}s")
    return 0


def cmd_query(args):
    groups = by_bench(load_store(args.store))
    records = groups.get(args.bench)
    if not records:
        print(f"bench_store: no records for '{args.bench}' in {args.store}",
              file=sys.stderr)
        return 2
    records.sort(key=lambda r: r.get("seq", 0))
    tail = records[-args.last:] if args.last > 0 else records
    if args.json:
        print(json.dumps(tail, indent=2, sort_keys=True))
    else:
        for r in tail:
            extras = " ".join(f"{k}={r[k]}" for k in sorted(r)
                              if k not in ("bench", "wall_s", "jobs", "seq",
                                           "source", "fingerprint"))
            print(f"  seq {r.get('seq', '?'):>4}  wall"
                  f" {r['wall_s']:8.3f}s  jobs {r.get('jobs', '?')}"
                  f"  {r.get('source', '')} {extras}".rstrip())
    walls = [r["wall_s"] for r in tail]
    print(f"{args.bench}: n={len(walls)} min={min(walls):.3f}s"
          f" median={statistics.median(walls):.3f}s")
    return 0


def trailing_reference(records, window):
    """(reference wall_s, newest wall_s) for a bench's sorted records:
    newest vs the min of the `window` records before it. None when there
    is no history to compare against yet."""
    if len(records) < 2:
        return None
    newest = records[-1]["wall_s"]
    prior = [r["wall_s"] for r in records[-1 - window:-1]]
    return min(prior), newest


def cmd_regress(args):
    groups = by_bench(load_store(args.store))
    failed = False
    print(f"bench_store regress (window {args.window}, tolerance"
          f" +{args.tolerance:.0%}):")
    for name in args.benches:
        records = sorted(groups.get(name, []), key=lambda r: r.get("seq", 0))
        if not records:
            print(f"  {name}: MISSING from {args.store}")
            failed = True
            continue
        ref = trailing_reference(records, args.window)
        if ref is None:
            print(f"  {name}: only {len(records)} record(s); no trailing"
                  f" window to gate against")
            continue
        reference, newest = ref
        ratio = newest / reference if reference > 0 else float("inf")
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"  {name}: newest {newest:.3f}s vs trailing-min"
              f" {reference:.3f}s  ratio {ratio:5.2f}x  {verdict}")
        if verdict != "ok":
            failed = True
    return 1 if failed else 0


def cmd_selftest(args):
    del args
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "store.jsonl")
        a = os.path.join(tmp, "BENCH_a.json")
        b = os.path.join(tmp, "BENCH_b.json")
        # The escaped-name record mirrors what bench_json.cpp now emits
        # for names containing quotes/backslashes.
        with open(a, "w") as f:
            json.dump([{"bench": "fig05", "wall_s": 1.0, "jobs": 2},
                       {"bench": 'we"ird\\name', "wall_s": 0.5, "jobs": 1}], f)
        with open(b, "w") as f:
            json.dump([{"bench": "fig05", "wall_s": 1.1, "jobs": 2},
                       {"bench": "fig05", "wall_s": 5.0, "jobs": 2}], f)

        ns = lambda **kw: argparse.Namespace(store=store, **kw)
        assert cmd_ingest(ns(files=[a], no_dedup=False)) == 0
        assert cmd_ingest(ns(files=[a], no_dedup=False)) == 0  # pure dedup
        assert len(load_store(store)) == 2, "re-ingest must be a no-op"
        assert cmd_ingest(ns(files=[b], no_dedup=False)) == 0
        records = load_store(store)
        assert len(records) == 4, records
        assert [r["seq"] for r in records] == [0, 1, 2, 3], records

        groups = by_bench(records)
        assert len(groups['we"ird\\name']) == 1, "escaped name round-trip"
        assert cmd_query(ns(bench="fig05", last=10, json=False)) == 0
        assert cmd_list(ns()) == 0
        # fig05 trajectory is [1.0, 1.1, 5.0]: the newest (5.0s) regresses
        # against the trailing min (1.0s); dropping the outlier passes.
        assert cmd_regress(ns(benches=["fig05"], window=5,
                              tolerance=0.25)) == 1
        assert cmd_regress(ns(benches=["fig05"], window=5,
                              tolerance=5.0)) == 0
        assert cmd_regress(ns(benches=["absent"], window=5,
                              tolerance=0.25)) == 1
    print("bench_store selftest: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="append BENCH_*.json records")
    p.add_argument("files", nargs="+")
    p.add_argument("--store", default=default_store())
    p.add_argument("--no-dedup", action="store_true")
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser("list", help="benches with record counts")
    p.add_argument("--store", default=default_store())
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("query", help="one bench's trajectory")
    p.add_argument("bench")
    p.add_argument("--store", default=default_store())
    p.add_argument("--last", type=int, default=10)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("regress",
                       help="newest record vs trailing-window min")
    p.add_argument("benches", nargs="+")
    p.add_argument("--store", default=default_store())
    p.add_argument("--window", type=int, default=10)
    p.add_argument("--tolerance", type=float,
                   default=float(os.environ.get("PERF_GATE_TOLERANCE",
                                                "0.25")))
    p.set_defaults(fn=cmd_regress)

    p = sub.add_parser("selftest", help="round-trip the store in a tempdir")
    p.set_defaults(fn=cmd_selftest)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
