#include "metrics/link_stats.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

TEST(LinkStats, ManualRecordAndUtilization) {
  const DragonflyTopology topo(2);
  LinkStats stats(topo);
  stats.start_window(0);
  stats.record(0, 0, 8);
  stats.record(0, 0, 8);
  EXPECT_DOUBLE_EQ(stats.utilization(0, 0, 32), 0.5);
  EXPECT_DOUBLE_EQ(stats.utilization(0, 1, 32), 0.0);
}

TEST(LinkStats, AdvgMinimalSaturatesExactlyOneGlobalLinkPerGroup) {
  const DragonflyTopology topo(2);
  auto routing = make_routing("minimal", topo, {});
  auto pattern = make_pattern(topo, "advg", 1, 0.0);
  InjectionProcess inj;
  inj.load = 0.8;
  EngineConfig ec;
  Engine engine(topo, ec, *routing, *pattern, inj);
  LinkStats stats(topo);
  stats.attach(engine);
  engine.run_until(6000);

  // The single global link g -> g+1 should be near 1 phit/cycle; all
  // other global links of the group idle.
  const GroupId g = 0;
  const RouterId gw = topo.gateway_router(g, 1);
  const PortId hot_port = topo.gateway_port(g, 1);
  EXPECT_GT(stats.utilization(gw, hot_port, engine.now()), 0.75);

  for (int rl = 0; rl < topo.routers_per_group(); ++rl) {
    const RouterId r = topo.router_id(g, rl);
    for (int k = 0; k < topo.num_global_ports(); ++k) {
      const PortId p = topo.first_global_port() + k;
      if (r == gw && p == hot_port) continue;
      EXPECT_LT(stats.utilization(r, p, engine.now()), 0.05)
          << stats.describe_link(r, p);
    }
  }
}

TEST(LinkStats, OlmSpreadsTheAdversarialLoad) {
  const DragonflyTopology topo(2);
  auto routing = make_routing("olm", topo, {});
  auto pattern = make_pattern(topo, "advg", 1, 0.0);
  InjectionProcess inj;
  inj.load = 0.8;
  EngineConfig ec;
  Engine engine(topo, ec, *routing, *pattern, inj);
  LinkStats stats(topo);
  stats.attach(engine);
  engine.run_until(6000);

  // With Valiant detours the mean global utilization rises well above
  // the minimal-routing case (where only 1 of 2h^2 links per group
  // works) and the max/mean skew narrows.
  const auto summary = stats.summarize(PortClass::kGlobal, engine.now());
  EXPECT_GT(summary.mean, 0.15);
  EXPECT_LT(summary.max / (summary.mean + 1e-9), 8.0);
}

TEST(LinkStats, HottestReturnsSortedAndBounded) {
  const DragonflyTopology topo(2);
  LinkStats stats(topo);
  stats.start_window(0);
  stats.record(3, 0, 100);
  stats.record(5, 1, 50);
  stats.record(7, 2, 25);
  const auto top = stats.hottest(PortClass::kLocal, 100, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].router, 3);
  EXPECT_GE(top[0].utilization, top[1].utilization);
}

TEST(LinkStats, DescribeNamesLinkEndpoints) {
  const DragonflyTopology topo(2);
  LinkStats stats(topo);
  EXPECT_EQ(stats.describe_link(0, 0), "g0.r0 local->r1");
  const PortId gp = topo.first_global_port();
  const std::string s = stats.describe_link(0, gp);
  EXPECT_NE(s.find("global->g"), std::string::npos);
  const std::string e = stats.describe_link(0, topo.first_terminal_port());
  EXPECT_NE(e.find("eject->t0"), std::string::npos);
}

TEST(LinkStats, WindowExcludesWarmup) {
  const DragonflyTopology topo(2);
  LinkStats stats(topo);
  stats.record(0, 0, 80);  // before window
  stats.start_window(100);
  EXPECT_DOUBLE_EQ(stats.utilization(0, 0, 100), 0.0);
  // phits recorded before the window still count toward the total; the
  // window only rescales time. Callers attach after warmup for clean
  // numbers — document via behaviour:
  EXPECT_GT(stats.utilization(0, 0, 200), 0.0);
}

}  // namespace
}  // namespace dfsim
