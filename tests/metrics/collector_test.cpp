#include "metrics/collector.hpp"

#include <gtest/gtest.h>

namespace dfsim {
namespace {

Packet make_packet(Cycle created, int phits = 8, int hops = 3) {
  Packet p;
  p.size_phits = phits;
  p.created = created;
  p.rs.total_hops = static_cast<std::int8_t>(hops);
  return p;
}

TEST(Collector, LatencyExcludesWarmupPackets) {
  Collector c(/*warmup=*/1000, /*terminals=*/10);
  c.on_delivered(make_packet(500), 1200);   // created pre-warmup
  c.on_delivered(make_packet(1100), 1300);  // counted: latency 200
  EXPECT_EQ(c.delivered_packets(), 1u);
  EXPECT_DOUBLE_EQ(c.avg_latency(), 200.0);
}

TEST(Collector, ThroughputCountsWindowPhitsOnly) {
  Collector c(1000, 10);
  c.on_delivered(make_packet(100), 900);    // delivered pre-warmup
  c.on_delivered(make_packet(500), 1400);   // phits count (delivery >= W)
  c.on_delivered(make_packet(1100), 1500);  // counts fully
  // 16 phits over window of 1000 cycles, 10 terminals at end=2000.
  EXPECT_DOUBLE_EQ(c.accepted_load(2000), 16.0 / (1000.0 * 10.0));
  EXPECT_EQ(c.delivered_packets_total(), 3u);
}

TEST(Collector, AcceptedLoadZeroBeforeWindow) {
  Collector c(1000, 10);
  EXPECT_DOUBLE_EQ(c.accepted_load(800), 0.0);
}

TEST(Collector, HopsAveragedOverMeasuredPackets) {
  Collector c(0, 4);
  c.on_delivered(make_packet(0, 8, 2), 100);
  c.on_delivered(make_packet(0, 8, 4), 120);
  EXPECT_DOUBLE_EQ(c.avg_hops(), 3.0);
}

TEST(Collector, GenerationDropAccounting) {
  Collector c(0, 4);
  c.on_generated(10, true);
  c.on_generated(11, true);
  c.on_generated(12, false);
  EXPECT_EQ(c.generated_packets(), 3u);
  EXPECT_EQ(c.dropped_generations(), 1u);
}

TEST(Collector, P99TracksTail) {
  Collector c(0, 4);
  for (int i = 0; i < 98; ++i) c.on_delivered(make_packet(0), 100);
  for (int i = 0; i < 2; ++i) c.on_delivered(make_packet(0), 6400);
  // The 99th percentile falls in the slow tail, far above the mean.
  EXPECT_GT(c.p99_latency(), 1000.0);
  EXPECT_GT(c.p99_latency(), c.avg_latency());
}

}  // namespace
}  // namespace dfsim
