#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dfsim {
namespace {

TEST(Uniform, NeverSelfAndCoversNetwork) {
  const DragonflyTopology topo(2);
  UniformPattern p(topo);
  Rng rng(5);
  std::map<NodeId, int> seen;
  for (int i = 0; i < 20000; ++i) {
    const NodeId d = p.dest(3, rng);
    EXPECT_NE(d, 3);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, topo.num_terminals());
    ++seen[d];
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_terminals() - 1);
}

TEST(Uniform, RoughlyBalanced) {
  const DragonflyTopology topo(2);
  UniformPattern p(topo);
  Rng rng(7);
  const int n = topo.num_terminals();
  std::vector<int> counts(static_cast<size_t>(n), 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[static_cast<size_t>(p.dest(0, rng))];
  const double expect = static_cast<double>(draws) / (n - 1);
  for (NodeId d = 1; d < n; ++d) {
    EXPECT_NEAR(counts[static_cast<size_t>(d)], expect, expect * 0.35);
  }
}

TEST(AdvGlobal, TargetsOffsetGroup) {
  const DragonflyTopology topo(3);  // G = 19
  AdversarialGlobalPattern p(topo, 3);
  Rng rng(11);
  for (NodeId src : {0, 5, 100, topo.num_terminals() - 1}) {
    for (int i = 0; i < 200; ++i) {
      const NodeId d = p.dest(src, rng);
      EXPECT_EQ(topo.group_of_terminal(d),
                (topo.group_of_terminal(src) + 3) % topo.num_groups());
    }
  }
}

TEST(AdvGlobal, WrapsAroundGroupCount) {
  const DragonflyTopology topo(2);  // G = 9
  AdversarialGlobalPattern p(topo, 8);
  Rng rng(13);
  const NodeId src = topo.terminal_id(topo.router_id(8, 0), 0);  // group 8
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(topo.group_of_terminal(p.dest(src, rng)), 7);  // (8+8) mod 9
  }
}

TEST(AdvLocal, TargetsNeighborRouterSameGroup) {
  const DragonflyTopology topo(3);
  AdversarialLocalPattern p(topo, 1);
  Rng rng(17);
  for (NodeId src : {0, 7, 50, topo.num_terminals() - 1}) {
    const RouterId r = topo.router_of_terminal(src);
    const GroupId g = topo.group_of_router(r);
    const int expect_local =
        (topo.local_index(r) + 1) % topo.routers_per_group();
    for (int i = 0; i < 100; ++i) {
      const NodeId d = p.dest(src, rng);
      EXPECT_EQ(topo.router_of_terminal(d), topo.router_id(g, expect_local));
      EXPECT_NE(d, src);
    }
  }
}

TEST(Mixed, FractionSplitsBetweenComponents) {
  const DragonflyTopology topo(3);
  MixedAdversarialPattern p(topo, 0.3);
  Rng rng(19);
  const NodeId src = 0;
  const GroupId src_group = topo.group_of_terminal(src);
  int global = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const NodeId d = p.dest(src, rng);
    const GroupId dg = topo.group_of_terminal(d);
    if (dg != src_group) {
      // ADVG+h component.
      EXPECT_EQ(dg, (src_group + topo.h()) % topo.num_groups());
      ++global;
    } else {
      // ADVL+1 component.
      EXPECT_EQ(topo.local_index(topo.router_of_terminal(d)), 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(global) / draws, 0.3, 0.02);
}

TEST(Mixed, ExtremesArePure) {
  const DragonflyTopology topo(2);
  Rng rng(23);
  MixedAdversarialPattern all_local(topo, 0.0);
  MixedAdversarialPattern all_global(topo, 1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(topo.group_of_terminal(all_local.dest(0, rng)), 0);
    EXPECT_EQ(topo.group_of_terminal(all_global.dest(0, rng)),
              topo.h() % topo.num_groups());
  }
}

TEST(Factory, BuildsAllNamesAndRejectsUnknown) {
  const DragonflyTopology topo(2);
  EXPECT_EQ(make_pattern(topo, "uniform", 0, 0.0)->name(), "UN");
  EXPECT_EQ(make_pattern(topo, "advg", 4, 0.0)->name(), "ADVG+4");
  EXPECT_EQ(make_pattern(topo, "advl", 1, 0.0)->name(), "ADVL+1");
  EXPECT_NE(make_pattern(topo, "mixed", 0, 0.4)->name().find("MIX"),
            std::string::npos);
  EXPECT_THROW(make_pattern(topo, "bogus", 0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dfsim
