#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <map>

#include "traffic/factory.hpp"

namespace dfsim {
namespace {

/// The permutation contract every deterministic pattern must satisfy:
/// in-range, never self, each terminal receives exactly one flow, and
/// repeated queries agree (no RNG dependence).
void expect_self_free_permutation(const DragonflyTopology& topo,
                                  TrafficPattern& p) {
  Rng rng(99);
  std::vector<int> hits(static_cast<size_t>(topo.num_terminals()), 0);
  for (NodeId s = 0; s < topo.num_terminals(); ++s) {
    const NodeId d = p.dest(s, rng);
    ASSERT_GE(d, 0) << p.name();
    ASSERT_LT(d, topo.num_terminals()) << p.name();
    EXPECT_NE(d, s) << p.name() << " maps terminal " << s << " to itself";
    EXPECT_EQ(p.dest(s, rng), d) << p.name();
    ++hits[static_cast<size_t>(d)];
  }
  for (const int h : hits) EXPECT_EQ(h, 1) << p.name();
}

TEST(Uniform, NeverSelfAndCoversNetwork) {
  const DragonflyTopology topo(2);
  UniformPattern p(topo);
  Rng rng(5);
  std::map<NodeId, int> seen;
  for (int i = 0; i < 20000; ++i) {
    const NodeId d = p.dest(3, rng);
    EXPECT_NE(d, 3);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, topo.num_terminals());
    ++seen[d];
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_terminals() - 1);
}

TEST(Uniform, RoughlyBalanced) {
  const DragonflyTopology topo(2);
  UniformPattern p(topo);
  Rng rng(7);
  const int n = topo.num_terminals();
  std::vector<int> counts(static_cast<size_t>(n), 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[static_cast<size_t>(p.dest(0, rng))];
  const double expect = static_cast<double>(draws) / (n - 1);
  for (NodeId d = 1; d < n; ++d) {
    EXPECT_NEAR(counts[static_cast<size_t>(d)], expect, expect * 0.35);
  }
}

TEST(AdvGlobal, TargetsOffsetGroup) {
  const DragonflyTopology topo(3);  // G = 19
  AdversarialGlobalPattern p(topo, 3);
  Rng rng(11);
  for (NodeId src : {0, 5, 100, topo.num_terminals() - 1}) {
    for (int i = 0; i < 200; ++i) {
      const NodeId d = p.dest(src, rng);
      EXPECT_EQ(topo.group_of_terminal(d),
                (topo.group_of_terminal(src) + 3) % topo.num_groups());
    }
  }
}

TEST(AdvGlobal, WrapsAroundGroupCount) {
  const DragonflyTopology topo(2);  // G = 9
  AdversarialGlobalPattern p(topo, 8);
  Rng rng(13);
  const NodeId src = topo.terminal_id(topo.router_id(8, 0), 0);  // group 8
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(topo.group_of_terminal(p.dest(src, rng)), 7);  // (8+8) mod 9
  }
}

TEST(AdvLocal, TargetsNeighborRouterSameGroup) {
  const DragonflyTopology topo(3);
  AdversarialLocalPattern p(topo, 1);
  Rng rng(17);
  for (NodeId src : {0, 7, 50, topo.num_terminals() - 1}) {
    const RouterId r = topo.router_of_terminal(src);
    const GroupId g = topo.group_of_router(r);
    const int expect_local =
        (topo.local_index(r) + 1) % topo.routers_per_group();
    for (int i = 0; i < 100; ++i) {
      const NodeId d = p.dest(src, rng);
      EXPECT_EQ(topo.router_of_terminal(d), topo.router_id(g, expect_local));
      EXPECT_NE(d, src);
    }
  }
}

TEST(Mixed, FractionSplitsBetweenComponents) {
  const DragonflyTopology topo(3);
  MixedAdversarialPattern p(topo, 0.3);
  Rng rng(19);
  const NodeId src = 0;
  const GroupId src_group = topo.group_of_terminal(src);
  int global = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const NodeId d = p.dest(src, rng);
    const GroupId dg = topo.group_of_terminal(d);
    if (dg != src_group) {
      // ADVG+h component.
      EXPECT_EQ(dg, (src_group + topo.h()) % topo.num_groups());
      ++global;
    } else {
      // ADVL+1 component.
      EXPECT_EQ(topo.local_index(topo.router_of_terminal(d)), 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(global) / draws, 0.3, 0.02);
}

TEST(Mixed, ExtremesArePure) {
  const DragonflyTopology topo(2);
  Rng rng(23);
  MixedAdversarialPattern all_local(topo, 0.0);
  MixedAdversarialPattern all_global(topo, 1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(topo.group_of_terminal(all_local.dest(0, rng)), 0);
    EXPECT_EQ(topo.group_of_terminal(all_global.dest(0, rng)),
              topo.h() % topo.num_groups());
  }
}

TEST(Factory, BuildsAllNamesAndRejectsUnknown) {
  const DragonflyTopology topo(2);
  EXPECT_EQ(make_pattern(topo, "uniform", 0, 0.0)->name(), "UN");
  EXPECT_EQ(make_pattern(topo, "advg", 4, 0.0)->name(), "ADVG+4");
  EXPECT_EQ(make_pattern(topo, "advl", 1, 0.0)->name(), "ADVL+1");
  EXPECT_NE(make_pattern(topo, "mixed", 0, 0.4)->name().find("MIX"),
            std::string::npos);
  EXPECT_THROW(make_pattern(topo, "bogus", 0, 0.0), std::invalid_argument);
}

// --- bit permutations (spec patterns) ----------------------------------

TEST(BitPermutation, BijectiveOnBalancedAndUnbalancedShapes) {
  // Balanced h=2 (72 terminals) and h=3 (342); unbalanced p2a6h3g8 (96)
  // and a deliberately awkward p3a5h2g7 (105, far from a power of two).
  const DragonflyTopology shapes[] = {
      DragonflyTopology(2), DragonflyTopology(3),
      DragonflyTopology(2, 6, 3, 8), DragonflyTopology(3, 5, 2, 7)};
  for (const DragonflyTopology& topo : shapes) {
    SCOPED_TRACE(topo.num_terminals());
    for (const auto kind : {BitPermutationPattern::Kind::kShuffle,
                            BitPermutationPattern::Kind::kTranspose,
                            BitPermutationPattern::Kind::kComplement,
                            BitPermutationPattern::Kind::kReverse}) {
      BitPermutationPattern p(topo, kind);
      expect_self_free_permutation(topo, p);
    }
  }
}

TEST(BitPermutation, MatchesClassicRulesOnTheAlignedBlock) {
  // 72 terminals -> 6-bit block of 64. Check textbook images away from
  // the fixed-point repair: shuffle rotates left, transpose swaps halves
  // (rotate right by 3), bitcomp complements, bitrev mirrors.
  const DragonflyTopology topo(2);
  Rng rng(1);
  BitPermutationPattern shuffle(topo, BitPermutationPattern::Kind::kShuffle);
  EXPECT_EQ(shuffle.dest(0b000110, rng), 0b001100);
  EXPECT_EQ(shuffle.dest(0b100001, rng), 0b000011);
  BitPermutationPattern transpose(topo,
                                  BitPermutationPattern::Kind::kTranspose);
  EXPECT_EQ(transpose.dest(0b000110, rng), 0b110000);
  EXPECT_EQ(transpose.dest(0b101001, rng), 0b001101);
  BitPermutationPattern comp(topo, BitPermutationPattern::Kind::kComplement);
  EXPECT_EQ(comp.dest(0b000110, rng), 0b111001);
  BitPermutationPattern rev(topo, BitPermutationPattern::Kind::kReverse);
  EXPECT_EQ(rev.dest(0b000110, rng), 0b011000);
  EXPECT_EQ(rev.dest(0b101100, rng), 0b001101);
  // Palindromic indices (0b100001) are the rule's fixed points; they get
  // deranged with the tail, covered by the bijectivity suite above.
}

TEST(Shift, SpecNormalizesOffsetAndStaysAPermutation) {
  const DragonflyTopology topo(2);  // g = 9
  auto p = make_pattern_spec(topo, "shift-1");  // -1 ≡ +8 (mod 9)
  expect_self_free_permutation(topo, *p);
  EXPECT_EQ(p->name(), "SHIFT+8");
}

// --- hotspot with a target group ---------------------------------------

TEST(Hotspot, ConcentratesRateOnTheRequestedGroup) {
  const DragonflyTopology topo(3);
  auto p = make_pattern_spec(topo, "hotspot:0.2@7");
  Rng rng(3);
  const NodeId src = 0;  // not in group 7
  int hot = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const NodeId d = p->dest(src, rng);
    EXPECT_NE(d, src);
    if (topo.group_of_terminal(d) == 7) ++hot;
  }
  // Hot fraction plus the uniform component's spill into group 7.
  const double expected = 0.2 + 0.8 / topo.num_groups();
  EXPECT_NEAR(static_cast<double>(hot) / draws, expected, 0.02);
}

TEST(Hotspot, RejectsBadFractionAndGroup) {
  const DragonflyTopology topo(2);  // g = 9
  EXPECT_THROW(HotspotPattern(topo, 0.0), std::invalid_argument);
  EXPECT_THROW(HotspotPattern(topo, 1.5), std::invalid_argument);
  EXPECT_THROW(HotspotPattern(topo, 0.2, 9), std::invalid_argument);
  EXPECT_THROW(HotspotPattern(topo, 0.2, -1), std::invalid_argument);
}

// --- weighted mixes ----------------------------------------------------

TEST(WeightedMix, HonorsComponentWeights) {
  const DragonflyTopology topo(3);  // g = 19
  auto p = make_pattern_spec(topo, "mix:un=0.7,advg+1=0.3");
  Rng rng(11);
  const NodeId src = 0;
  const int per_group =
      topo.routers_per_group() * topo.terminals_per_router();
  int in_next_group = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (topo.group_of_terminal(p->dest(src, rng)) == 1) ++in_next_group;
  }
  // ADVG+1 sends everything to group 1; UN spills ~per_group/(N-1) of its
  // share there too.
  const double expected =
      0.3 + 0.7 * per_group / (topo.num_terminals() - 1);
  EXPECT_NEAR(static_cast<double>(in_next_group) / draws, expected, 0.02);
}

TEST(WeightedMix, NormalizesWeights) {
  const DragonflyTopology topo(2);
  auto a = make_pattern_spec(topo, "mix:un=0.7,advg+1=0.3");
  auto b = make_pattern_spec(topo, "mix:un=7,advg+1=3");
  // Identical normalized weights -> identical draw sequences.
  Rng ra(5);
  Rng rb(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a->dest(3, ra), b->dest(3, rb));
  }
  EXPECT_EQ(a->name(), b->name());
}

// --- spec strings: registry resolution and pointed errors ---------------

TEST(Spec, ResolvesEveryRegisteredKey) {
  const DragonflyTopology topo(2);
  EXPECT_EQ(make_pattern_spec(topo, "un")->name(), "UN");
  EXPECT_EQ(make_pattern_spec(topo, "UNIFORM")->name(), "UN");
  EXPECT_EQ(make_pattern_spec(topo, "advg+2")->name(), "ADVG+2");
  EXPECT_EQ(make_pattern_spec(topo, "advl")->name(), "ADVL+1");
  EXPECT_EQ(make_pattern_spec(topo, "shift+3")->name(), "SHIFT+3");
  EXPECT_EQ(make_pattern_spec(topo, "hotspot:0.25")->name(), "HOT(25%)");
  EXPECT_EQ(make_pattern_spec(topo, "hot:0.25@2")->name(), "HOT(25%@2)");
  EXPECT_EQ(make_pattern_spec(topo, "shuffle")->name(), "SHUFFLE");
  EXPECT_EQ(make_pattern_spec(topo, "transpose")->name(), "TRANSPOSE");
  EXPECT_EQ(make_pattern_spec(topo, "bitcomp")->name(), "BITCOMP");
  EXPECT_EQ(make_pattern_spec(topo, "bitrev")->name(), "BITREV");
  EXPECT_EQ(make_pattern_spec(topo, "mixed:0.3")->name(), "MIX(30%G)");
  EXPECT_NE(make_pattern_spec(topo, "mix:un=1,advl+1=1")->name().find("MIX"),
            std::string::npos);
}

TEST(Spec, LegacyNamesStillRouteThroughMakePattern) {
  const DragonflyTopology topo(2);
  // Spec strings flow through the same entry point the API facade uses.
  EXPECT_EQ(make_pattern(topo, "advg+2", /*offset=*/7, 0.0)->name(),
            "ADVG+2");  // embedded offset wins over the legacy parameter
  EXPECT_EQ(make_pattern(topo, "transpose", 0, 0.0)->name(), "TRANSPOSE");
}

void expect_spec_error(const std::string& spec,
                       const std::string& expected_fragment) {
  const DragonflyTopology topo(2);
  try {
    make_pattern_spec(topo, spec);
    FAIL() << "spec \"" << spec << "\" was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // Pointed: names the offending spec and what was expected.
    EXPECT_NE(msg.find(spec), std::string::npos) << msg;
    EXPECT_NE(msg.find(expected_fragment), std::string::npos) << msg;
  }
}

TEST(Spec, RejectsMalformedSpecsWithPointedMessages) {
  expect_spec_error("bogus", "known");
  expect_spec_error("", "known");
  expect_spec_error("advg+", "advg+<N>");
  expect_spec_error("advg+1x", "trailing");
  expect_spec_error("advg*3", "advg+<N>");
  expect_spec_error("hotspot", "hotspot:<fraction>");
  expect_spec_error("hotspot:", "missing");
  expect_spec_error("hotspot:1.5", "(0, 1]");
  expect_spec_error("hotspot:abc", "not a number");
  expect_spec_error("hotspot:0.2@x", "not a non-negative integer");
  expect_spec_error("hotspot:0.2@99", "outside");
  expect_spec_error("shift+9", "send to itself");  // 9 ≡ 0 (mod g = 9)
  expect_spec_error("shuffle:3", "no arguments");
  expect_spec_error("mix:", "mix:<spec>=<weight>");
  expect_spec_error("mix:un", "<spec>=<weight>");
  expect_spec_error("mix:un=0", "positive");
  expect_spec_error("mix:un=0.5,mix:un=1=0.5", "cannot be mixes");
  expect_spec_error("mixed:2", "[0, 1]");
}

TEST(Spec, ValidateIsTopologyFree) {
  // Syntax screened without a topology...
  EXPECT_NO_THROW(validate_pattern_spec("mix:un=0.7,advg+1=0.3"));
  EXPECT_NO_THROW(validate_pattern_spec("hotspot:0.2@400"));  // range: later
  EXPECT_THROW(validate_pattern_spec("hotspot:2"), std::invalid_argument);
  EXPECT_THROW(validate_pattern_spec("nope"), std::invalid_argument);
  // ...and the historical four-argument names pass untouched.
  for (const char* legacy : {"uniform", "advg", "advl", "mixed", "shift",
                             "hotspot", "UN", "MIX"}) {
    EXPECT_NO_THROW(validate_pattern_spec(legacy)) << legacy;
  }
}

TEST(Spec, RegistryNamesAreUniqueAndListed) {
  const std::string names = traffic_pattern_names();
  for (const TrafficPatternEntry& entry : traffic_pattern_registry()) {
    EXPECT_NE(names.find(entry.key), std::string::npos) << entry.key;
  }
  // Unknown-name errors carry the full list (operator discoverability).
  expect_spec_error("zzz", names);
}

}  // namespace
}  // namespace dfsim
