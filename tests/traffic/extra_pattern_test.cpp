#include <gtest/gtest.h>

#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

TEST(Shift, IsADeterministicPermutation) {
  const DragonflyTopology topo(2);
  ShiftPattern p(topo, 3);
  Rng rng(1);
  std::vector<int> hits(static_cast<size_t>(topo.num_terminals()), 0);
  for (NodeId s = 0; s < topo.num_terminals(); ++s) {
    const NodeId d = p.dest(s, rng);
    EXPECT_EQ(p.dest(s, rng), d);  // deterministic
    EXPECT_NE(d, s);
    ++hits[static_cast<size_t>(d)];
  }
  // Permutation: every terminal receives exactly one flow.
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Shift, PreservesInGroupCoordinates) {
  const DragonflyTopology topo(3);
  ShiftPattern p(topo, 5);
  Rng rng(1);
  for (NodeId s : {0, 17, 101, topo.num_terminals() - 1}) {
    const NodeId d = p.dest(s, rng);
    EXPECT_EQ(topo.group_of_terminal(d),
              (topo.group_of_terminal(s) + 5) % topo.num_groups());
    // Same router-local and terminal-slot coordinates.
    EXPECT_EQ(topo.local_index(topo.router_of_terminal(d)),
              topo.local_index(topo.router_of_terminal(s)));
    EXPECT_EQ(d % topo.terminals_per_router(),
              s % topo.terminals_per_router());
  }
}

TEST(Hotspot, RespectsHotFraction) {
  const DragonflyTopology topo(3);
  HotspotPattern p(topo, 0.25);
  Rng rng(3);
  const NodeId src = topo.num_terminals() - 1;  // not in the hot group
  int hot = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const NodeId d = p.dest(src, rng);
    if (topo.group_of_terminal(d) == 0) ++hot;
  }
  // Hot fraction plus uniform spill into group 0 (~1/G of the rest).
  const double expected = 0.25 + 0.75 / topo.num_groups();
  EXPECT_NEAR(static_cast<double>(hot) / draws, expected, 0.02);
}

TEST(Hotspot, NeverReturnsSelf) {
  const DragonflyTopology topo(2);
  HotspotPattern p(topo, 1.0);  // always hot: destinations in group 0
  Rng rng(7);
  for (NodeId s = 0;
       s < topo.routers_per_group() * topo.terminals_per_router(); ++s) {
    for (int i = 0; i < 50; ++i) EXPECT_NE(p.dest(s, rng), s);
  }
}

TEST(Factory, BuildsShiftAndHotspot) {
  const DragonflyTopology topo(2);
  EXPECT_EQ(make_pattern(topo, "shift", 2, 0.0)->name(), "SHIFT+2");
  EXPECT_EQ(make_pattern(topo, "hotspot", 0, 0.3)->name(), "HOT(30%)");
}

}  // namespace
}  // namespace dfsim
