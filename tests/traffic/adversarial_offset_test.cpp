// Regression tests for the adversarial patterns' offset handling: the
// documented contract is "dest never equals src", which used to break
// when the offset was ≡ 0 modulo the group count (ADVG) or the group
// size (ADVL) — the target group/router then contains the source, and
// the unguarded uniform draw could return it. Offsets are now normalized
// at construction and the degenerate cases exclude the source.
#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dfsim {
namespace {

TEST(AdvGlobalOffset, MultipleOfGroupCountNeverSelfSends) {
  const DragonflyTopology topo(2);  // G = 9
  for (const int offset : {0, 9, 18, -9}) {
    AdversarialGlobalPattern p(topo, offset);
    Rng rng(31);
    for (NodeId src : {0, 1, 17, topo.num_terminals() - 1}) {
      const GroupId g = topo.group_of_terminal(src);
      std::set<NodeId> seen;
      for (int i = 0; i < 500; ++i) {
        const NodeId d = p.dest(src, rng);
        EXPECT_NE(d, src) << "offset " << offset;
        EXPECT_EQ(topo.group_of_terminal(d), g);  // wraps to its own group
        seen.insert(d);
      }
      // Every other terminal of the group is reachable.
      const int per_group =
          topo.routers_per_group() * topo.terminals_per_router();
      EXPECT_EQ(static_cast<int>(seen.size()), per_group - 1);
    }
  }
}

TEST(AdvGlobalOffset, NormalizesToCanonicalRangeInName) {
  const DragonflyTopology topo(2);  // G = 9
  EXPECT_EQ(AdversarialGlobalPattern(topo, 10).name(), "ADVG+1");
  EXPECT_EQ(AdversarialGlobalPattern(topo, -1).name(), "ADVG+8");
  EXPECT_EQ(AdversarialGlobalPattern(topo, 9).name(), "ADVG+0");
}

TEST(AdvGlobalOffset, NonDegenerateOffsetsKeepTargetingOffsetGroup) {
  const DragonflyTopology topo(2);  // G = 9
  AdversarialGlobalPattern p(topo, 10);  // ≡ +1
  Rng rng(37);
  for (int i = 0; i < 300; ++i) {
    const NodeId d = p.dest(5, rng);
    EXPECT_EQ(topo.group_of_terminal(d),
              (topo.group_of_terminal(5) + 1) % topo.num_groups());
  }
}

TEST(AdvLocalOffset, MultipleOfGroupSizeNeverSelfSends) {
  const DragonflyTopology topo(2);  // a = 4, p = 2
  for (const int offset : {0, 4, 8, -4}) {
    AdversarialLocalPattern p(topo, offset);
    Rng rng(41);
    for (NodeId src : {0, 3, 30, topo.num_terminals() - 1}) {
      const RouterId r = topo.router_of_terminal(src);
      std::set<NodeId> seen;
      for (int i = 0; i < 300; ++i) {
        const NodeId d = p.dest(src, rng);
        EXPECT_NE(d, src) << "offset " << offset;
        EXPECT_EQ(topo.router_of_terminal(d), r);  // wraps to its router
        seen.insert(d);
      }
      // All of the router's other slots are reachable.
      EXPECT_EQ(static_cast<int>(seen.size()),
                topo.terminals_per_router() - 1);
    }
  }
}

TEST(AdvLocalOffset, NormalizesModuloGroupSize) {
  const DragonflyTopology topo(2);  // a = 4
  EXPECT_EQ(AdversarialLocalPattern(topo, 5).name(), "ADVL+1");
  EXPECT_EQ(AdversarialLocalPattern(topo, -1).name(), "ADVL+3");

  AdversarialLocalPattern p(topo, 5);  // ≡ +1
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    const NodeId d = p.dest(0, rng);
    EXPECT_EQ(topo.local_index(topo.router_of_terminal(d)), 1);
  }
}

TEST(AdvOffset, DegenerateWithSingleDestinationThrows) {
  // p = 1: an ADVL offset ≡ 0 (mod a) leaves only the source itself.
  const DragonflyTopology thin(1, 4, 2, 5);
  EXPECT_THROW(AdversarialLocalPattern(thin, 0), std::invalid_argument);
  EXPECT_THROW(AdversarialLocalPattern(thin, 4), std::invalid_argument);
  EXPECT_NO_THROW(AdversarialLocalPattern(thin, 1));
  // A 1x1 group would do the same for ADVG.
  const DragonflyTopology lone(1, 1, 2, 3);
  EXPECT_THROW(AdversarialGlobalPattern(lone, 0), std::invalid_argument);
  EXPECT_NO_THROW(AdversarialGlobalPattern(lone, 1));
}

TEST(AdvOffset, UnbalancedShapesHonorContract) {
  // The unbalanced reference shape: offsets wrap mod g=8 / mod a=6.
  const DragonflyTopology topo(2, 6, 3, 8);
  AdversarialGlobalPattern pg(topo, 8);  // ≡ 0 mod g
  AdversarialLocalPattern pl(topo, 6);   // ≡ 0 mod a
  Rng rng(47);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(pg.dest(11, rng), 11);
    EXPECT_NE(pl.dest(11, rng), 11);
  }
  // Non-degenerate offsets still shift by the normalized amount.
  AdversarialGlobalPattern pg9(topo, 9);  // ≡ +1
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(topo.group_of_terminal(pg9.dest(0, rng)), 1);
  }
}

}  // namespace
}  // namespace dfsim
