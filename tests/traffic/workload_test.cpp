// The workload layer: spec parsing with pointed errors, job placement
// (a bijection onto the terminals under every policy), per-job metric
// attribution (windows tile the run and sum to the whole-run totals),
// request-reply causality, and trace replay round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/simulator.hpp"
#include "common/rng.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/workload.hpp"

namespace dfsim {
namespace {

// --- placement -----------------------------------------------------------

void expect_partition_bijection(const DragonflyTopology& topo,
                                const std::string& spec) {
  SCOPED_TRACE(spec);
  const auto w = make_workload(&topo, spec);
  ASSERT_NE(w, nullptr);
  const int n = topo.num_terminals();
  const auto& job_of = w->job_of_terminal();
  ASSERT_EQ(job_of.size(), static_cast<std::size_t>(n));
  std::vector<int> counted(static_cast<std::size_t>(w->num_jobs()), 0);
  for (int t = 0; t < n; ++t) {
    const std::int32_t j = job_of[static_cast<std::size_t>(t)];
    ASSERT_GE(j, 0) << "terminal " << t << " belongs to no job";
    ASSERT_LT(j, w->num_jobs());
    ++counted[static_cast<std::size_t>(j)];
  }
  const std::vector<std::int32_t> sizes = w->job_sizes();
  ASSERT_EQ(sizes.size(), counted.size());
  int total = 0;
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    EXPECT_EQ(sizes[j], counted[j]) << "job " << j;
    EXPECT_GE(sizes[j], 2) << "job " << j;
    total += sizes[j];
  }
  EXPECT_EQ(total, n);
}

TEST(WorkloadPlacement, EveryPolicyPartitionsTheTerminals) {
  const DragonflyTopology balanced(2);            // 72 terminals
  const DragonflyTopology unbalanced(2, 6, 3, 8);  // 96 terminals
  for (const auto* topo : {&balanced, &unbalanced}) {
    for (const char* place : {"contig", "random", "rr"}) {
      expect_partition_bijection(
          *topo, std::string("jobs:4:place=") + place + ":alltoall|ring");
    }
    // 5 jobs does not divide either terminal count: remainders must be
    // absorbed, not dropped.
    expect_partition_bijection(*topo, "jobs:5:shift+1");
  }
}

TEST(WorkloadPlacement, ContigIsAscendingBlocksAndRrIsModulo) {
  const DragonflyTopology topo(2);  // 72 terminals
  const auto contig = make_workload(&topo, "jobs:4:alltoall");
  const auto& cj = contig->job_of_terminal();
  EXPECT_EQ(cj[0], 0);
  EXPECT_EQ(cj[17], 0);
  EXPECT_EQ(cj[18], 1);
  EXPECT_EQ(cj[71], 3);
  const auto rr = make_workload(&topo, "jobs:4:place=rr:alltoall");
  for (int t = 0; t < 72; ++t) {
    EXPECT_EQ(rr->job_of_terminal()[static_cast<std::size_t>(t)], t % 4);
  }
}

TEST(WorkloadPlacement, RandomPlacementIsSeedStableAndSeedSensitive) {
  const DragonflyTopology topo(2);
  const auto a = make_workload(&topo, "jobs:4:place=random:alltoall");
  const auto b = make_workload(&topo, "jobs:4:place=random:alltoall");
  EXPECT_EQ(a->job_of_terminal(), b->job_of_terminal());
  const auto c = make_workload(&topo, "jobs:4:place=random:seed=9:alltoall");
  EXPECT_NE(a->job_of_terminal(), c->job_of_terminal());
  // Random placement scatters: the first contiguous block must not all
  // land in one job.
  std::set<std::int32_t> first_block(a->job_of_terminal().begin(),
                                     a->job_of_terminal().begin() + 18);
  EXPECT_GT(first_block.size(), 1u);
}

TEST(WorkloadMotifs, DestinationsStayJobLocalAndNeverSelf) {
  const DragonflyTopology topo(2, 6, 3, 8);  // 96 terminals
  for (const char* spec :
       {"jobs:3:alltoall", "jobs:3:ring", "jobs:3:halo2d",
        "jobs:3:shift+5", "jobs:3:place=random:alltoall|halo2d|ring"}) {
    SCOPED_TRACE(spec);
    const auto w = make_workload(&topo, spec);
    Rng rng(7);
    const auto& job_of = w->job_of_terminal();
    for (int t = 0; t < topo.num_terminals(); ++t) {
      for (int draw = 0; draw < 8; ++draw) {
        const NodeId dst = w->dest(t, rng);
        ASSERT_NE(dst, t) << "terminal " << t << " drew itself";
        ASSERT_EQ(job_of[static_cast<std::size_t>(dst)],
                  job_of[static_cast<std::size_t>(t)])
            << "terminal " << t << " drew dst " << dst << " across jobs";
      }
    }
  }
}

TEST(WorkloadMotifs, MessageSizesRespectTheSpecRange) {
  const DragonflyTopology topo(2);
  const auto fixed = make_workload(&topo, "coll:alltoall:size=4");
  const auto ranged = make_workload(&topo, "coll:alltoall:size=2-6");
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fixed->message_packets(0, rng), 4);
    const int k = ranged->message_packets(0, rng);
    ASSERT_GE(k, 2);
    ASSERT_LE(k, 6);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 5u);  // the whole range shows up in 200 draws
}

// --- pointed spec errors -------------------------------------------------

void expect_spec_error(const std::string& spec, const std::string& needle,
                       const DragonflyTopology* topo = nullptr) {
  SCOPED_TRACE(spec);
  try {
    make_workload(topo, spec);
    FAIL() << "spec accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WorkloadSpec, ErrorsArePointed) {
  expect_spec_error("", "known workloads: coll, jobs, trace");
  expect_spec_error("bogus:x", "unknown workload \"bogus\"");
  expect_spec_error("coll:warp", "unknown motif \"warp\"");
  expect_spec_error("coll:alltoall:reply=2", "reply=0 or reply=1");
  expect_spec_error("coll:alltoall:size=0", "1 <= min <= max");
  expect_spec_error("coll:alltoall:size=5-3", "1 <= min <= max");
  expect_spec_error("jobs:0:alltoall", "job count must be >= 1");
  expect_spec_error("jobs:2", "job list is missing");
  expect_spec_error("jobs:2:place=diagonal:alltoall",
                    "unknown placement policy \"diagonal\"");
  expect_spec_error("jobs:2:alltoall|ring|shift+1", "more job entries");
  expect_spec_error("jobs:2:alltoall@1.5", "job load must be in [0, 1]");
  const DragonflyTopology topo(2);  // 72 terminals
  expect_spec_error("jobs:40:alltoall", "40 jobs need at least 80", &topo);
  expect_spec_error("coll:halo2d:5x5", "does not match", &topo);
  expect_spec_error("coll:shift+72", "0 mod 72", &topo);
  expect_spec_error("trace:/nonexistent/file.csv", "cannot be opened",
                    &topo);
}

TEST(WorkloadSpec, ConfigValidatesSpecsAndRejectsOnOffCombination) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.workload = "coll:bogus";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.workload = "coll:alltoall";
  EXPECT_NO_THROW(cfg.validate());
  cfg.onoff_on = 0.05;
  cfg.onoff_off = 0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(WorkloadSpec, DescribeRoundTripsTheKnob) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.workload = "jobs:4:place=random:alltoall|ring";
  const std::string text = cfg.describe();
  EXPECT_NE(text.find("workload=jobs:4:place=random:alltoall|ring"),
            std::string::npos);
  const SimConfig back = SimConfig::parse(text);
  EXPECT_EQ(back.workload, cfg.workload);
  EXPECT_EQ(back.describe(), text);
}

// --- per-job metrics -----------------------------------------------------

SimConfig jobs_config() {
  SimConfig cfg;
  cfg.h = 2;
  cfg.load = 0.2;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 1200;
  cfg.seed = 5;
  cfg.workload = "jobs:3:alltoall|ring|shift+1";
  return cfg;
}

TEST(WorkloadMetrics, PerJobTotalsSumToTheRunTotals) {
  const SimConfig cfg = jobs_config();
  const SteadyResult r = run_steady(cfg);
  ASSERT_FALSE(r.deadlock);
  ASSERT_EQ(r.per_job.size(), 3u);
  std::uint64_t delivered = 0, phits = 0;
  for (const TrafficWindow& w : r.per_job) {
    EXPECT_GT(w.delivered, 0u);
    delivered += w.delivered;
    phits += w.delivered_phits;
  }
  EXPECT_EQ(delivered, r.delivered);
  // Whole-run accepted load is computed from the same phit total.
  const double span = static_cast<double>(cfg.measure_cycles);
  EXPECT_EQ(r.accepted_load, static_cast<double>(phits) / (span * 72.0));
}

TEST(WorkloadMetrics, PerJobWindowsTileThePhasedRun) {
  SimConfig cfg = jobs_config();
  // Phases may not switch pattern/load under a workload (the gate is its
  // own contract, checked below) — the windows still cut per-job stats.
  const PhasedResult r = run_phased(cfg, {{600, 2, "", -1.0},
                                          {600, 2, "", -1.0}});
  EXPECT_THROW(run_phased(cfg, {{600, 2, "", 0.3}}), std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{600, 2, "advg+1", -1.0}}),
               std::invalid_argument);
  ASSERT_FALSE(r.total.deadlock);
  ASSERT_EQ(r.total.per_job.size(), 3u);
  ASSERT_EQ(r.drain_per_job.size(), 3u);
  for (const PhaseWindow& w : r.windows) {
    ASSERT_EQ(w.per_job.size(), 3u);
    for (const TrafficWindow& jw : w.per_job) {
      EXPECT_EQ(jw.start, w.stats.start);
      EXPECT_EQ(jw.end, w.stats.end);
    }
  }
  for (std::size_t j = 0; j < 3; ++j) {
    SCOPED_TRACE(j);
    std::uint64_t delivered = r.drain_per_job[j].delivered;
    std::uint64_t phits = r.drain_per_job[j].delivered_phits;
    for (const PhaseWindow& w : r.windows) {
      delivered += w.per_job[j].delivered;
      phits += w.per_job[j].delivered_phits;
    }
    EXPECT_EQ(delivered, r.total.per_job[j].delivered);
    EXPECT_EQ(phits, r.total.per_job[j].delivered_phits);
  }
}

TEST(WorkloadMetrics, RunsReplayBySeed) {
  const SimConfig cfg = jobs_config();
  const SteadyResult a = run_steady(cfg);
  const SteadyResult b = run_steady(cfg);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.delivered, b.delivered);
  ASSERT_EQ(a.per_job.size(), b.per_job.size());
  for (std::size_t j = 0; j < a.per_job.size(); ++j) {
    EXPECT_EQ(a.per_job[j].delivered, b.per_job[j].delivered);
    EXPECT_EQ(a.per_job[j].avg_latency, b.per_job[j].avg_latency);
  }
}

// --- request-reply causality ---------------------------------------------

TEST(WorkloadReplies, RepliesRoughlyDoubleDeliveriesAndArriveLater) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.load = 0.1;
  cfg.warmup_cycles = 0;  // count every packet of the run
  cfg.measure_cycles = 2000;
  cfg.seed = 3;
  cfg.workload = "coll:alltoall:reply=0";
  const SteadyResult without = run_steady(cfg);
  cfg.workload = "coll:alltoall:reply=1";
  const SteadyResult with = run_steady(cfg);
  ASSERT_FALSE(with.deadlock);
  // Every delivered request queues a reply; replies created near the end
  // may still be in flight, so the ratio is just under 2.
  EXPECT_GT(static_cast<double>(with.delivered),
            1.7 * static_cast<double>(without.delivered));
  EXPECT_LT(static_cast<double>(with.delivered),
            2.1 * static_cast<double>(without.delivered));
  // A reply exists only after its request was delivered, so round trips
  // push the average latency up against the no-reply run.
  EXPECT_GT(with.avg_latency, without.avg_latency * 0.9);
}

// --- trace replay --------------------------------------------------------

class TraceFile {
 public:
  explicit TraceFile(const std::string& contents) {
    path_ = "workload_test_trace_" + std::to_string(counter_++) + ".csv";
    std::ofstream os(path_, std::ios::binary);
    os << contents;
  }
  ~TraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TraceFile::counter_ = 0;

TEST(WorkloadTrace, CsvReplayDeliversEveryRowOnce) {
  // 3 rows, one oversized (33 phits -> 3 packets at packet_phits=16).
  const TraceFile trace(
      "# cycle,src,dst,size\n"
      "10,0,40,16\n"
      "10,1,50,33\n"
      "250,2,60,8\n");
  SimConfig cfg;
  cfg.h = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 3000;
  cfg.packet_phits = 16;
  cfg.workload = "trace:" + trace.path();
  const SteadyResult r = run_steady(cfg);
  ASSERT_FALSE(r.deadlock);
  EXPECT_EQ(r.delivered, 5u);  // 1 + ceil(33/16) + 1 packets
  EXPECT_EQ(r.dead_destination_drops, 0u);
  ASSERT_EQ(r.per_job.size(), 1u);  // the trace pseudo-job
  EXPECT_EQ(r.per_job[0].delivered, 5u);
  // Replays are deterministic.
  const SteadyResult again = run_steady(cfg);
  EXPECT_EQ(again.delivered, r.delivered);
  EXPECT_EQ(again.avg_latency, r.avg_latency);
}

TEST(WorkloadTrace, MalformedRowsAreRejectedWithTheLine) {
  const DragonflyTopology topo(2);
  {
    const TraceFile bad("10,0,40\n");
    expect_spec_error("trace:" + bad.path(), "line 1", &topo);
  }
  {
    const TraceFile bad("10,0,400,4\n");  // dst out of range (72 terms)
    expect_spec_error("trace:" + bad.path(), "terminal ids must be in",
                      &topo);
  }
  {
    const TraceFile bad("10,0,1,4\n5,2,3,4\n");  // cycles go backwards
    expect_spec_error("trace:" + bad.path(), "non-decreasing", &topo);
  }
  {
    const TraceFile bad("10,7,7,4\n");
    expect_spec_error("trace:" + bad.path(), "src equals dst", &topo);
  }
}

TEST(WorkloadTrace, CursorBoundsAreChecked) {
  const TraceFile trace("10,0,40,4\n");
  const DragonflyTopology topo(2);
  const auto w = make_workload(&topo, "trace:" + trace.path());
  EXPECT_EQ(w->cursor(), 0u);
  w->set_cursor(1);
  EXPECT_THROW(w->set_cursor(2), std::invalid_argument);
}

}  // namespace
}  // namespace dfsim
