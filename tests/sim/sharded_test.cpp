// The sharded engine's determinism contract: results are a function of
// (config, seed) only — never of the worker count. jobs=1 and jobs=N must
// produce bit-identical results for every run shape (steady, phased,
// faulted, ON/OFF), checkpoints cut under the sharded engine must resume
// bit-identically, and the sharded engine must agree with the exact
// engine statistically (same network, same offered load — only the
// RNG-stream assignment differs).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/experiment.hpp"
#include "api/simulator.hpp"
#include "runtime/parallel_for.hpp"
#include "traffic/factory.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

/// Pins the process-default worker count for one scope; restores the
/// auto default on exit so tests never leak jobs settings into each
/// other (ctest runs the whole binary as one process).
class JobsGuard {
 public:
  explicit JobsGuard(int jobs) { runtime::set_default_jobs(jobs); }
  ~JobsGuard() { runtime::set_default_jobs(0); }
  JobsGuard(const JobsGuard&) = delete;
  JobsGuard& operator=(const JobsGuard&) = delete;
};

SimConfig sharded_config() {
  SimConfig cfg;
  cfg.h = 2;  // 9 groups, 36 routers — seconds, not minutes
  cfg.engine = "sharded";
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 1200;
  cfg.load = 0.3;
  cfg.seed = 11;
  return cfg;
}

SteadyResult steady_with_jobs(const SimConfig& cfg, int jobs) {
  JobsGuard guard(jobs);
  return run_steady(cfg);
}

void expect_same_steady(const SteadyResult& a, const SteadyResult& b) {
  EXPECT_EQ(a.avg_latency, b.avg_latency);  // exact doubles throughout:
  EXPECT_EQ(a.p99_latency, b.p99_latency);  // the contract is bit
  EXPECT_EQ(a.accepted_load, b.accepted_load);  // identity, not closeness
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.source_drop_rate, b.source_drop_rate);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dead_destination_drops, b.dead_destination_drops);
  EXPECT_EQ(a.deadlock, b.deadlock);
}

// --- worker-count invariance --------------------------------------------

TEST(ShardedDeterminism, SteadyIsWorkerCountInvariant) {
  const SimConfig cfg = sharded_config();
  const SteadyResult serial = steady_with_jobs(cfg, 1);
  const SteadyResult parallel = steady_with_jobs(cfg, 8);
  EXPECT_GT(serial.delivered, 0u);
  expect_same_steady(serial, parallel);
}

TEST(ShardedDeterminism, AdaptiveRoutingIsWorkerCountInvariant) {
  // OLM exercises the keyed per-VC routing streams (escape-ladder
  // tiebreaks draw from ctx.rng) much harder than minimal routing.
  SimConfig cfg = sharded_config();
  cfg.routing = "olm";
  cfg.pattern = "advg+1";
  cfg.load = 0.25;
  expect_same_steady(steady_with_jobs(cfg, 1), steady_with_jobs(cfg, 8));
}

TEST(ShardedDeterminism, OnOffSourcesAreWorkerCountInvariant) {
  // ON/OFF sources chain several draws per terminal per cycle — the
  // keyed injection stream must replay that chain identically no matter
  // which worker owns the terminal's group.
  SimConfig cfg = sharded_config();
  cfg.onoff_on = 0.05;
  cfg.onoff_off = 0.05;
  expect_same_steady(steady_with_jobs(cfg, 1), steady_with_jobs(cfg, 8));
}

TEST(ShardedDeterminism, FaultedTopologyIsWorkerCountInvariant) {
  SimConfig cfg = sharded_config();
  cfg.fault_spec = "r:4,r:5,r:6,r:7";  // one whole dead group
  const SteadyResult serial = steady_with_jobs(cfg, 1);
  const SteadyResult parallel = steady_with_jobs(cfg, 8);
  EXPECT_GT(serial.delivered, 0u);
  expect_same_steady(serial, parallel);
}

TEST(ShardedDeterminism, UnbalancedShapeIsWorkerCountInvariant) {
  // p2a6h3g8: a < 2h leaves global-port slots unwired, g < a*h + 1 wires
  // several links between each group pair, and the group count does not
  // divide evenly across 8 workers — the shard partitioner must handle
  // ragged group-to-worker assignments without the RNG keying noticing.
  SimConfig cfg = sharded_config();
  cfg.h = 0;
  cfg.topo = "p2a6h3g8";
  const SteadyResult serial = steady_with_jobs(cfg, 1);
  const SteadyResult parallel = steady_with_jobs(cfg, 8);
  EXPECT_GT(serial.delivered, 0u);
  expect_same_steady(serial, parallel);
}

TEST(ShardedDeterminism, WorkloadIsWorkerCountInvariant) {
  // A 2-job workload drives per-terminal loads, forced reply/body
  // injections and per-job metric attribution — all of which must stay a
  // pure function of (config, seed) no matter how groups map to workers.
  SimConfig cfg = sharded_config();
  cfg.workload = "jobs:2:alltoall:size=1-3:reply=1|ring@0.15";
  cfg.load = 0.1;
  const SteadyResult serial = steady_with_jobs(cfg, 1);
  const SteadyResult parallel = steady_with_jobs(cfg, 8);
  EXPECT_GT(serial.delivered, 0u);
  expect_same_steady(serial, parallel);
  ASSERT_EQ(serial.per_job.size(), 2u);
  ASSERT_EQ(parallel.per_job.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    SCOPED_TRACE(j);
    EXPECT_GT(serial.per_job[j].delivered, 0u);
    EXPECT_EQ(serial.per_job[j].delivered, parallel.per_job[j].delivered);
    EXPECT_EQ(serial.per_job[j].delivered_phits,
              parallel.per_job[j].delivered_phits);
    EXPECT_EQ(serial.per_job[j].avg_latency, parallel.per_job[j].avg_latency);
    EXPECT_EQ(serial.per_job[j].accepted_load,
              parallel.per_job[j].accepted_load);
  }
}

TEST(ShardedDeterminism, PhasedRunIsWorkerCountInvariant) {
  SimConfig cfg = sharded_config();
  const std::vector<Phase> phases = {
      {600, 2, "", -1.0},          // steady under the config pattern
      {600, 2, "advg+1", 0.2},      // mid-run pattern + load switch
  };
  PhasedResult serial, parallel;
  {
    JobsGuard guard(1);
    serial = run_phased(cfg, phases);
  }
  {
    JobsGuard guard(8);
    parallel = run_phased(cfg, phases);
  }
  ASSERT_EQ(serial.windows.size(), parallel.windows.size());
  for (std::size_t i = 0; i < serial.windows.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial.windows[i].stats.delivered,
              parallel.windows[i].stats.delivered);
    EXPECT_EQ(serial.windows[i].stats.avg_latency,
              parallel.windows[i].stats.avg_latency);
    EXPECT_EQ(serial.windows[i].stats.accepted_load,
              parallel.windows[i].stats.accepted_load);
  }
  EXPECT_EQ(serial.drain.delivered, parallel.drain.delivered);
  EXPECT_EQ(serial.drained, parallel.drained);
  expect_same_steady(serial.total, parallel.total);
}

// --- checkpointing under the sharded engine ------------------------------

TEST(ShardedCheckpoint, MidRunCutResumesBitIdentically) {
  const SimConfig cfg = sharded_config();
  JobsGuard guard(8);

  SimulationRun reference = SimulationRun::steady(cfg);
  reference.run_to_completion();

  SimulationRun cut = SimulationRun::steady(cfg);
  cut.advance(700);  // mid-measurement, flits in flight
  std::stringstream snap;
  cut.save_checkpoint(snap);

  SimulationRun resumed = SimulationRun::steady(cfg);
  resumed.restore(snap);
  resumed.run_to_completion();
  expect_same_steady(reference.steady_result(), resumed.steady_result());
}

TEST(ShardedCheckpoint, CheckpointStreamIsWorkerCountInvariant) {
  // Stronger than result equality: the serialized engine state itself —
  // every queue, credit counter, and in-flight packet — must match byte
  // for byte between worker counts.
  const SimConfig cfg = sharded_config();
  std::string bytes_serial, bytes_parallel;
  {
    JobsGuard guard(1);
    SimulationRun run = SimulationRun::steady(cfg);
    run.advance(700);
    std::stringstream snap;
    run.save_checkpoint(snap);
    bytes_serial = snap.str();
  }
  {
    JobsGuard guard(8);
    SimulationRun run = SimulationRun::steady(cfg);
    run.advance(700);
    std::stringstream snap;
    run.save_checkpoint(snap);
    bytes_parallel = snap.str();
  }
  EXPECT_EQ(bytes_serial, bytes_parallel);
}

TEST(ShardedCheckpoint, EngineModeMismatchIsRejected) {
  SimConfig exact_cfg = sharded_config();
  exact_cfg.engine = "exact";
  SimulationRun exact_run = SimulationRun::steady(exact_cfg);
  exact_run.advance(500);
  std::stringstream snap;
  exact_run.save_checkpoint(snap);

  SimulationRun sharded_run = SimulationRun::steady(sharded_config());
  try {
    sharded_run.restore(snap);
    FAIL() << "restore() accepted a checkpoint from the other engine";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("engine"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedCheckpoint, VersionTwoRejectedPointedly) {
  // v3 moved the in-flight events from one global wheel triple to one
  // triple per shard. A v2 stream must fail with a message that says so,
  // not be misparsed as shard 0's wheels.
  const SimConfig cfg = sharded_config();
  JobsGuard guard(1);
  SimulationRun run = SimulationRun::steady(cfg);
  run.advance(700);
  std::stringstream snap;
  run.save_checkpoint(snap);
  std::string bytes = snap.str();

  // The engine section starts with its own magic; the version u32 sits in
  // the 4 bytes right after it (little-endian).
  const std::size_t eng = bytes.find("DFENGCK\n");
  ASSERT_NE(eng, std::string::npos);
  bytes[eng + 8] = 2;
  bytes[eng + 9] = 0;
  bytes[eng + 10] = 0;
  bytes[eng + 11] = 0;

  SimulationRun fresh = SimulationRun::steady(cfg);
  std::istringstream is(bytes);
  try {
    fresh.restore(is);
    FAIL() << "restore() accepted a version-2 engine section";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
  }
}

TEST(ShardedCheckpoint, VersionThreeRejectedPointedly) {
  // v4 appended workload state (packet flag bytes, forced-queue creation
  // times/flags, per-terminal loads, the trace cursor). A v3 stream must
  // fail with a message naming that, not be misparsed mid-packet.
  const SimConfig cfg = sharded_config();
  JobsGuard guard(1);
  SimulationRun run = SimulationRun::steady(cfg);
  run.advance(700);
  std::stringstream snap;
  run.save_checkpoint(snap);
  std::string bytes = snap.str();

  const std::size_t eng = bytes.find("DFENGCK\n");
  ASSERT_NE(eng, std::string::npos);
  bytes[eng + 8] = 3;
  bytes[eng + 9] = 0;
  bytes[eng + 10] = 0;
  bytes[eng + 11] = 0;

  SimulationRun fresh = SimulationRun::steady(cfg);
  std::istringstream is(bytes);
  try {
    fresh.restore(is);
    FAIL() << "restore() accepted a version-3 engine section";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("workload"), std::string::npos) << msg;
  }
}

TEST(ShardedCheckpoint, WorkloadMidRunCutResumesBitIdentically) {
  SimConfig cfg = sharded_config();
  cfg.workload = "jobs:2:alltoall:size=1-3:reply=1|ring@0.15";
  cfg.load = 0.1;
  JobsGuard guard(8);

  SimulationRun reference = SimulationRun::steady(cfg);
  reference.run_to_completion();

  SimulationRun cut = SimulationRun::steady(cfg);
  cut.advance(700);  // mid-measurement: forced queues non-empty
  std::stringstream snap;
  cut.save_checkpoint(snap);

  SimulationRun resumed = SimulationRun::steady(cfg);
  resumed.restore(snap);
  resumed.run_to_completion();
  expect_same_steady(reference.steady_result(), resumed.steady_result());
  const SteadyResult a = reference.steady_result();
  const SteadyResult b = resumed.steady_result();
  ASSERT_EQ(a.per_job.size(), 2u);
  ASSERT_EQ(b.per_job.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(a.per_job[j].delivered, b.per_job[j].delivered);
    EXPECT_EQ(a.per_job[j].avg_latency, b.per_job[j].avg_latency);
  }
}

// --- phase profiler ------------------------------------------------------

TEST(ShardedProfile, PhaseCountersTileTheTotal) {
  // Timestamps are taken at phase boundaries, so the four phase counters
  // must sum to the step total exactly — any gap means a phase is timed
  // against the wrong edge (and the serial-fraction telemetry lies).
  DragonflyTopology topo(2);
  RoutingParams rp;
  auto routing = make_routing("olm", topo, rp);
  auto pattern = make_pattern_spec(topo, "un");
  EngineConfig ec;
  ec.sharded = true;
  ec.shard_jobs = 2;
  ec.profile = true;
  ec.seed = 7;
  InjectionProcess inj;
  inj.load = 0.3;
  Engine engine(topo, ec, *routing, *pattern, inj);
  ASSERT_TRUE(engine.profiling());
  for (int i = 0; i < 200; ++i) engine.step();

  const Engine::PhaseProfile& p = engine.phase_profile();
  EXPECT_EQ(p.steps, 200u);
  EXPECT_GT(p.total_ns, 0u);
  EXPECT_EQ(p.arrive_ns + p.deliver_ns + p.alloc_ns + p.flush_ns,
            p.total_ns);
  EXPECT_GT(p.serial_fraction(), 0.0);
  EXPECT_LT(p.serial_fraction(), 1.0);
}

TEST(ShardedProfile, OffByDefaultAndAllZero) {
  // Profiling off is the hot configuration: the counters must stay
  // untouched (no clock reads leak into the unprofiled step path).
  DragonflyTopology topo(2);
  RoutingParams rp;
  auto routing = make_routing("olm", topo, rp);
  auto pattern = make_pattern_spec(topo, "un");
  EngineConfig ec;
  ec.sharded = true;
  ec.shard_jobs = 2;
  ec.seed = 7;
  InjectionProcess inj;
  inj.load = 0.3;
  Engine engine(topo, ec, *routing, *pattern, inj);
  EXPECT_FALSE(engine.profiling());
  for (int i = 0; i < 50; ++i) engine.step();

  const Engine::PhaseProfile& p = engine.phase_profile();
  EXPECT_EQ(p.steps, 0u);
  EXPECT_EQ(p.total_ns, 0u);
  EXPECT_EQ(p.arrive_ns + p.deliver_ns + p.alloc_ns + p.flush_ns, 0u);
  EXPECT_EQ(p.serial_fraction(), 0.0);
}

// --- exact vs sharded statistical agreement ------------------------------

TEST(ShardedVsExact, SteadyStateStatisticsAgree) {
  // The two engines draw from differently-structured RNG streams, so
  // individual runs differ — but they simulate the same network at the
  // same offered load, so replicated means must agree within error bars.
  SimConfig cfg = sharded_config();
  cfg.measure_cycles = 2000;
  constexpr int kReps = 5;

  cfg.engine = "exact";
  const ReplicatedResult exact = run_replicated(cfg, kReps);
  cfg.engine = "sharded";
  JobsGuard guard(8);
  const ReplicatedResult sharded = run_replicated(cfg, kReps);

  ASSERT_EQ(exact.deadlocks, 0);
  ASSERT_EQ(sharded.deadlocks, 0);

  // Welch-style combined standard error, generous 5-sigma band plus an
  // absolute floor so a near-zero-variance pair can't flake the test.
  const auto within = [](const RunningStat& a, const RunningStat& b,
                         double floor_abs) {
    const double se = std::sqrt(a.stddev() * a.stddev() / kReps +
                                b.stddev() * b.stddev() / kReps);
    return std::abs(a.mean() - b.mean()) <= 5.0 * se + floor_abs;
  };
  EXPECT_TRUE(within(exact.accepted_load, sharded.accepted_load, 0.01))
      << "exact=" << exact.accepted_mean()
      << " sharded=" << sharded.accepted_mean();
  EXPECT_TRUE(within(exact.latency, sharded.latency, 2.0))
      << "exact=" << exact.latency_mean()
      << " sharded=" << sharded.latency_mean();
}

}  // namespace
}  // namespace dfsim
