// Flow-control invariants under contention: credit conservation, VCT
// whole-packet admission, wormhole VC allocation and backpressure.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

using testing::NeverPattern;
using testing::TestNet;

EngineConfig vct_cfg() {
  EngineConfig ec;
  ec.packet_phits = 8;
  return ec;
}

// After a network fully drains, every output VC must have its full credit
// pool back — conservation over arbitrary contention histories.
TEST(FlowControl, CreditsFullyRestoredAfterDrain) {
  for (const char* routing : {"minimal", "olm", "rlm"}) {
    DragonflyTopology topo(2);
    auto r = make_routing(routing, topo, {});
    UniformPattern pattern(topo);
    InjectionProcess inj;
    inj.mode = InjectionProcess::Mode::kBurst;
    inj.burst_packets = 8;
    EngineConfig ec = vct_cfg();
    Engine engine(topo, ec, *r, pattern, inj);
    const auto expected =
        8ull * static_cast<std::uint64_t>(topo.num_terminals());
    while (engine.delivered_packets() < expected && engine.now() < 200000 &&
           engine.step()) {
    }
    ASSERT_EQ(engine.delivered_packets(), expected) << routing;
    // Let in-flight credit returns land (up to one global RTT).
    const Cycle settle = engine.now() + 300;
    while (engine.now() < settle && engine.step()) {
    }

    for (RouterId rt = 0; rt < topo.num_routers(); ++rt) {
      for (PortId p = 0; p < topo.first_terminal_port(); ++p) {
        const int cap = engine.buffer_capacity(topo.port_class(p));
        for (VcId v = 0; v < engine.vc_count(p); ++v) {
          EXPECT_EQ(engine.output_vc(rt, p, v).credits_phits, cap)
              << routing << " r" << rt << " p" << p << " vc" << v;
          EXPECT_EQ(engine.output_vc(rt, p, v).bound_packet, kInvalid);
        }
      }
    }
  }
}

TEST(FlowControl, WormholeCreditsAndBindingsRestoredAfterDrain) {
  DragonflyTopology topo(2);
  auto r = make_routing("rlm", topo, {});
  UniformPattern pattern(topo);
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBurst;
  inj.burst_packets = 4;
  EngineConfig ec;
  ec.flow = FlowControl::kWormhole;
  ec.packet_phits = 80;
  ec.flit_phits = 10;
  Engine engine(topo, ec, *r, pattern, inj);
  const auto expected =
      4ull * static_cast<std::uint64_t>(topo.num_terminals());
  while (engine.delivered_packets() < expected && engine.now() < 500000 &&
         engine.step()) {
  }
  ASSERT_EQ(engine.delivered_packets(), expected);
  ASSERT_FALSE(engine.deadlock_detected());
  const Cycle settle = engine.now() + 300;
  while (engine.now() < settle && engine.step()) {
  }
  for (RouterId rt = 0; rt < topo.num_routers(); ++rt) {
    for (PortId p = 0; p < topo.first_terminal_port(); ++p) {
      const int cap = engine.buffer_capacity(topo.port_class(p));
      for (VcId v = 0; v < engine.vc_count(p); ++v) {
        EXPECT_EQ(engine.output_vc(rt, p, v).credits_phits, cap);
        EXPECT_EQ(engine.output_vc(rt, p, v).bound_packet, kInvalid);
      }
    }
  }
}

// Two VCT packets from distinct sources race for one destination router:
// both must arrive intact, one after the other (output serialization).
TEST(FlowControl, ContendingPacketsSerializeOnSharedLink) {
  TestNet net(2, "minimal", vct_cfg(), std::make_unique<NeverPattern>());
  const DragonflyTopology& topo = net.topo;
  // Terminals 0 and 1 live on router 0; both send to router 2's slot 0 —
  // they share the single local link 0 -> 2.
  const NodeId dst0 = topo.terminal_id(topo.router_id(0, 2), 0);
  const NodeId dst1 = topo.terminal_id(topo.router_id(0, 2), 1);
  net.engine.inject_for_test(0, dst0, 0);
  net.engine.inject_for_test(1, dst1, 0);
  std::vector<Cycle> deliveries;
  net.engine.set_delivery_hook(
      [&](const Packet&, Cycle now) { deliveries.push_back(now); });
  net.engine.run_until(500);
  ASSERT_EQ(deliveries.size(), 2u);
  // Ejection ports differ, so the gap comes from link serialization:
  // second packet is >= 8 phits behind the first on the shared wire.
  EXPECT_GE(deliveries[1], deliveries[0] + 8);
}

// A stream into a single bounded VC must be throttled by credits: with a
// 32-phit buffer and a slow consumer, at most 4 packets can be in the
// downstream buffer plus one in flight.
TEST(FlowControl, CreditBackpressureBoundsOccupancy) {
  TestNet net(2, "minimal", vct_cfg(), std::make_unique<NeverPattern>());
  const DragonflyTopology& topo = net.topo;
  const NodeId dst = topo.terminal_id(topo.router_id(0, 2), 0);
  for (int i = 0; i < 12; ++i) net.engine.inject_for_test(0, dst, 0);
  for (Cycle t = 0; t < 400; ++t) {
    net.engine.step();
    const InputVc& ivc = net.engine.input_vc(
        topo.router_id(0, 2), topo.local_port_to(2, 0), 0);
    EXPECT_LE(ivc.occupancy_phits, 32);
  }
  net.engine.run_until(2000);
  EXPECT_EQ(net.engine.delivered_packets(), 12u);
}

// Injection is rate-limited to 1 phit/cycle per terminal regardless of
// backlog: 10 packets of 8 phits need >= 80 cycles of injection time.
TEST(FlowControl, InjectionSerializesAtOnePhitPerCycle) {
  TestNet net(2, "minimal", vct_cfg(), std::make_unique<NeverPattern>());
  const NodeId dst = net.topo.terminal_id(net.topo.router_id(0, 1), 0);
  for (int i = 0; i < 10; ++i) net.engine.inject_for_test(0, dst, 0);
  Cycle last = 0;
  net.engine.set_delivery_hook(
      [&](const Packet&, Cycle now) { last = now; });
  net.engine.run_until(2000);
  ASSERT_EQ(net.engine.delivered_packets(), 10u);
  EXPECT_GE(last, 80u + 8u);
}

// The same seed and config must produce identical wormhole runs too.
TEST(FlowControl, WormholeDeterminism) {
  auto run = [] {
    DragonflyTopology topo(2);
    auto r = make_routing("par-6/2", topo, {});
    UniformPattern pattern(topo);
    InjectionProcess inj;
    inj.load = 0.3;
    EngineConfig ec;
    ec.flow = FlowControl::kWormhole;
    ec.packet_phits = 80;
    ec.flit_phits = 10;
    ec.local_vcs = 6;
    ec.seed = 4242;
    Engine engine(topo, ec, *r, pattern, inj);
    engine.run_until(4000);
    return std::pair(engine.delivered_packets(),
                     engine.phits_sent(PortClass::kGlobal));
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dfsim
