#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

using testing::NeverPattern;
using testing::TestNet;

EngineConfig small_vct() {
  EngineConfig ec;
  ec.flow = FlowControl::kVirtualCutThrough;
  ec.packet_phits = 8;
  ec.local_latency = 10;
  ec.global_latency = 100;
  return ec;
}

/// Expected zero-load latency of one packet: injection serialization +
/// per-hop (serialization + wire) + ejection serialization.
Cycle expected_latency(const DragonflyTopology& topo, NodeId src, NodeId dst,
                       int phits, int local_lat, int global_lat) {
  const RouterId a = topo.router_of_terminal(src);
  const RouterId b = topo.router_of_terminal(dst);
  Cycle total = static_cast<Cycle>(phits);  // injection
  if (a != b) {
    const GroupId ga = topo.group_of_router(a);
    const GroupId gb = topo.group_of_router(b);
    if (ga == gb) {
      total += static_cast<Cycle>(phits + local_lat);
    } else {
      if (topo.gateway_router(ga, gb) != a) {
        total += static_cast<Cycle>(phits + local_lat);
      }
      total += static_cast<Cycle>(phits + global_lat);
      if (topo.gateway_router(gb, ga) != b) {
        total += static_cast<Cycle>(phits + local_lat);
      }
    }
  }
  total += static_cast<Cycle>(phits);  // ejection
  return total;
}

TEST(Engine, SingleMinimalPacketLatencyIsExact) {
  TestNet net(2, "minimal", small_vct(), std::make_unique<NeverPattern>());
  const DragonflyTopology& topo = net.topo;

  // A destination two groups away whose entry/exit add local hops.
  const NodeId src = 0;
  const NodeId dst = topo.terminal_id(topo.router_id(1, 3), 0);
  net.engine.inject_for_test(src, dst, 0);

  Cycle delivered_at = 0;
  net.engine.set_delivery_hook(
      [&](const Packet& pkt, Cycle now) {
        EXPECT_EQ(pkt.src, src);
        EXPECT_EQ(pkt.dst, dst);
        delivered_at = now;
      });
  net.engine.run_until(2000);
  ASSERT_GT(delivered_at, 0u);
  EXPECT_EQ(delivered_at, expected_latency(topo, src, dst, 8, 10, 100));
  EXPECT_EQ(net.engine.delivered_packets(), 1u);
  EXPECT_EQ(net.engine.packets_in_flight(), 0u);
}

TEST(Engine, SameRouterPacketOnlySerializes) {
  TestNet net(2, "minimal", small_vct(), std::make_unique<NeverPattern>());
  const NodeId src = 0;
  const NodeId dst = 1;  // h=2: terminals 0 and 1 share router 0
  ASSERT_EQ(net.topo.router_of_terminal(src), net.topo.router_of_terminal(dst));
  net.engine.inject_for_test(src, dst, 0);
  Cycle delivered_at = 0;
  net.engine.set_delivery_hook(
      [&](const Packet&, Cycle now) { delivered_at = now; });
  net.engine.run_until(100);
  EXPECT_EQ(delivered_at, 16u);  // 8 in + 8 out, no network hop
}

TEST(Engine, IntraGroupPacketTakesOneLocalHop) {
  TestNet net(2, "minimal", small_vct(), std::make_unique<NeverPattern>());
  const DragonflyTopology& topo = net.topo;
  const NodeId src = 0;
  const NodeId dst = topo.terminal_id(topo.router_id(0, 2), 1);
  net.engine.inject_for_test(src, dst, 0);
  Cycle delivered_at = 0;
  int hops = 0;
  net.engine.set_delivery_hook([&](const Packet& pkt, Cycle now) {
    delivered_at = now;
    hops = pkt.rs.total_hops;
  });
  net.engine.run_until(200);
  EXPECT_EQ(hops, 1);
  EXPECT_EQ(delivered_at, expected_latency(topo, src, dst, 8, 10, 100));
}

TEST(Engine, WormholeSinglePacketLatency) {
  EngineConfig ec = small_vct();
  ec.flow = FlowControl::kWormhole;
  ec.packet_phits = 80;
  ec.flit_phits = 10;
  TestNet net(2, "minimal", ec, std::make_unique<NeverPattern>());
  const DragonflyTopology& topo = net.topo;
  const NodeId src = 0;
  const NodeId dst = topo.terminal_id(topo.router_id(1, 3), 0);
  net.engine.inject_for_test(src, dst, 0);
  Cycle delivered_at = 0;
  net.engine.set_delivery_hook(
      [&](const Packet&, Cycle now) { delivered_at = now; });
  net.engine.run_until(5000);
  ASSERT_GT(delivered_at, 0u);
  // With no contention the tail leaves the source back-to-back at cycle
  // 80 and then pays (flit serialization + wire) per hop + flit ejection.
  const RouterId a = topo.router_of_terminal(src);
  const RouterId b = topo.router_of_terminal(dst);
  const GroupId ga = topo.group_of_router(a);
  const GroupId gb = topo.group_of_router(b);
  Cycle expected = 80;
  if (topo.gateway_router(ga, gb) != a) expected += 10 + 10;
  expected += 10 + 100;
  if (topo.gateway_router(gb, ga) != b) expected += 10 + 10;
  expected += 10;
  EXPECT_EQ(delivered_at, expected);
}

TEST(Engine, WormholeDeliversAllFlitsInOrder) {
  EngineConfig ec = small_vct();
  ec.flow = FlowControl::kWormhole;
  ec.packet_phits = 80;
  ec.flit_phits = 10;
  TestNet net(2, "minimal", ec, std::make_unique<NeverPattern>());
  for (int i = 0; i < 4; ++i) {
    net.engine.inject_for_test(0, net.topo.terminal_id(net.topo.router_id(3, 1), 0),
                               0);
  }
  net.engine.run_until(5000);
  EXPECT_EQ(net.engine.delivered_packets(), 4u);
  EXPECT_FALSE(net.engine.deadlock_detected());
  EXPECT_EQ(net.engine.packets_in_flight(), 0u);
}

TEST(Engine, RejectsVctWithMultiFlitPackets) {
  EngineConfig ec = small_vct();
  ec.packet_phits = 80;
  ec.flit_phits = 10;
  EXPECT_THROW(
      TestNet(2, "minimal", ec, std::make_unique<NeverPattern>()),
      std::invalid_argument);
}

TEST(Engine, RejectsIndivisibleFlitSize) {
  EngineConfig ec = small_vct();
  ec.flow = FlowControl::kWormhole;
  ec.packet_phits = 80;
  ec.flit_phits = 7;
  EXPECT_THROW(
      TestNet(2, "minimal", ec, std::make_unique<NeverPattern>()),
      std::invalid_argument);
}

TEST(Engine, RejectsWormholeForOlm) {
  EngineConfig ec = small_vct();
  ec.flow = FlowControl::kWormhole;
  ec.packet_phits = 80;
  ec.flit_phits = 10;
  EXPECT_THROW(TestNet(2, "olm", ec, std::make_unique<NeverPattern>()),
               std::invalid_argument);
}

TEST(Engine, RejectsInsufficientVcsForPar62) {
  EngineConfig ec = small_vct();
  ec.local_vcs = 3;  // PAR-6/2 needs 6
  EXPECT_THROW(TestNet(2, "par-6/2", ec, std::make_unique<NeverPattern>()),
               std::invalid_argument);
}

TEST(Engine, BernoulliDrainConservesPackets) {
  EngineConfig ec = small_vct();
  DragonflyTopology topo(2);
  auto routing = make_routing("minimal", topo, {});
  auto pattern = std::make_unique<UniformPattern>(topo);
  InjectionProcess inj;
  inj.mode = InjectionProcess::Mode::kBurst;
  inj.burst_packets = 5;
  Engine engine(topo, ec, *routing, *pattern, inj);
  const auto expected =
      5ull * static_cast<std::uint64_t>(topo.num_terminals());
  while (engine.delivered_packets() < expected && engine.now() < 100000 &&
         engine.step()) {
  }
  EXPECT_EQ(engine.delivered_packets(), expected);
  EXPECT_EQ(engine.packets_in_flight(), 0u);
  EXPECT_FALSE(engine.deadlock_detected());
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    EngineConfig ec;
    ec.seed = 99;
    DragonflyTopology topo(2);
    auto routing = make_routing("olm", topo, {});
    auto pattern = std::make_unique<UniformPattern>(topo);
    InjectionProcess inj;
    inj.load = 0.4;
    Engine engine(topo, ec, *routing, *pattern, inj);
    engine.run_until(3000);
    return std::make_tuple(engine.delivered_packets(),
                           engine.delivered_phits(),
                           engine.phits_sent(PortClass::kLocal),
                           engine.phits_sent(PortClass::kGlobal));
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, OccupancyReflectsCredits) {
  TestNet net(2, "minimal", small_vct(), std::make_unique<NeverPattern>());
  // Before any traffic, everything is empty.
  for (PortId p = 0; p < net.topo.first_terminal_port(); ++p) {
    EXPECT_DOUBLE_EQ(net.engine.output_occupancy(0, p, 0), 0.0);
  }
  EXPECT_DOUBLE_EQ(net.engine.port_occupancy(0, 0), 0.0);
}

TEST(Engine, PhitAccounting) {
  TestNet net(2, "minimal", small_vct(), std::make_unique<NeverPattern>());
  const NodeId dst = net.topo.terminal_id(net.topo.router_id(1, 0), 0);
  net.engine.inject_for_test(0, dst, 0);
  net.engine.run_until(2000);
  EXPECT_EQ(net.engine.delivered_phits(), 8u);
  // The packet ejected once: 8 phits on a terminal output.
  EXPECT_EQ(net.engine.phits_sent(PortClass::kTerminal), 8u);
  // At least one global hop was taken.
  EXPECT_GE(net.engine.phits_sent(PortClass::kGlobal), 8u);
}

}  // namespace
}  // namespace dfsim
