// Bit-identity pins: run_steady results for one seed per routing
// algorithm, captured on the pre-refactor engine (PR 1, commit f69a197)
// with the exact configuration below. The hot-path overhaul (arena flit
// rings, worklists, decision memoization, retry suppression) must leave
// every simulated outcome byte-for-byte intact; these doubles are
// compared exactly, not approximately.
//
// p99_latency is deliberately NOT pinned here: the Histogram::percentile
// bugfix in the same change legitimately shifts it (the old value was
// biased to the bucket upper edge). Everything else in SteadyResult is
// produced by the simulation proper and must not move.
#include <gtest/gtest.h>

#include <string>

#include "api/config.hpp"
#include "api/simulator.hpp"

namespace dfsim {
namespace {

struct Golden {
  const char* routing;
  double avg_latency;
  double accepted_load;
  double avg_hops;
  std::uint64_t delivered;
};

SimConfig pinned_config() {
  SimConfig cfg;
  cfg.h = 2;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 1500;
  cfg.load = 0.3;
  cfg.seed = 7;
  return cfg;
}

// Captured from the pre-refactor engine (printf "%.17g").
//
// The olm row was recaptured once (PR 5) after the OLM escape-invariant
// fix: intra-group packets misrouted onto lVC2 may no longer commit a
// Valiant detour straight onto gVC2 (routing/olm.cpp
// direct_commit_allowed), which legitimately shifts olm results under
// patterns with intra-group pairs (UN, ADVL). Every other row — and olm
// under ADVG, whose traffic is purely inter-group — is original.
constexpr Golden kVctGoldens[] = {
    {"minimal", 144.0289732770741, 0.29170370370370369, 2.32658227848101,
     3555},
    {"valiant", 275.93769470405044, 0.29459259259259257, 4.1722741433021691,
     3210},
    {"olm", 165.39880613985193, 0.2931111111111111, 2.7774303581580422,
     3518},
    {"rlm", 158.95648512071915, 0.29814814814814816, 2.6282987085906679,
     3562},
    {"par-6/2", 165.63303013075608, 0.29414814814814816, 2.7680500284252467,
     3518},
    {"pb", 148.65119589977235, 0.29170370370370369, 2.3712984054669706,
     3512},
    {"ugal", 172.24207492795384, 0.29155555555555557, 2.8394812680115304,
     3470},
};

TEST(BitIdentity, VctRunSteadyMatchesPreRefactorEngine) {
  for (const Golden& g : kVctGoldens) {
    SCOPED_TRACE(g.routing);
    SimConfig cfg = pinned_config();
    cfg.routing = g.routing;
    const SteadyResult r = run_steady(cfg);
    EXPECT_EQ(r.avg_latency, g.avg_latency);
    EXPECT_EQ(r.accepted_load, g.accepted_load);
    EXPECT_EQ(r.avg_hops, g.avg_hops);
    EXPECT_EQ(r.delivered, g.delivered);
    EXPECT_FALSE(r.deadlock);
  }
}

// PR 5 goldens: the same pinned configuration under two more patterns.
//
// The advg+1 rows pin the claim that the OLM escape fix (see the olm row
// comment above) only touches patterns with intra-group pairs: ADVG
// traffic is purely inter-group, so these values were verified identical
// with the fix compiled in and out (as was the full fig05 ADVG CSV).
//
// The transpose rows pin the PR 5 traffic subsystem's deterministic
// bit-permutation path end to end: table construction, the spec-string
// factory ("transpose" resolves through make_pattern's registry
// fallback), and the RNG-free dest() draws riding the same engine stream.
constexpr Golden kAdvgGoldens[] = {
    {"minimal", 700.75768757687513, 0.12429629629629629, 2.1389913899138966,
     813},
    {"olm", 232.40724117295042, 0.29725925925925928, 3.5167564332734904,
     3342},
};

constexpr Golden kTransposeGoldens[] = {
    {"minimal", 174.2742406542057, 0.28607407407407409, 2.4360397196261721,
     3424},
    {"olm", 163.64729231641638, 0.29459259259259257, 2.7133541253189684,
     3527},
};

void expect_pattern_goldens(const char* pattern, const Golden* begin,
                            const Golden* end) {
  for (const Golden* g = begin; g != end; ++g) {
    SCOPED_TRACE(std::string(pattern) + "/" + g->routing);
    SimConfig cfg = pinned_config();
    cfg.routing = g->routing;
    cfg.pattern = pattern;
    const SteadyResult r = run_steady(cfg);
    EXPECT_EQ(r.avg_latency, g->avg_latency);
    EXPECT_EQ(r.accepted_load, g->accepted_load);
    EXPECT_EQ(r.avg_hops, g->avg_hops);
    EXPECT_EQ(r.delivered, g->delivered);
    EXPECT_FALSE(r.deadlock);
  }
}

TEST(BitIdentity, AdvgRunSteadyMatchesPinnedGoldens) {
  expect_pattern_goldens("advg+1", std::begin(kAdvgGoldens),
                         std::end(kAdvgGoldens));
}

TEST(BitIdentity, TransposeRunSteadyMatchesPinnedGoldens) {
  expect_pattern_goldens("transpose", std::begin(kTransposeGoldens),
                         std::end(kTransposeGoldens));
}

TEST(BitIdentity, WormholeRunSteadyMatchesPreRefactorEngine) {
  SimConfig cfg = pinned_config();
  cfg.routing = "rlm";
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;
  cfg.flit_phits = 10;
  cfg.load = 0.2;
  const SteadyResult r = run_steady(cfg);
  EXPECT_EQ(r.avg_latency, 275.80444444444441);
  EXPECT_EQ(r.accepted_load, 0.20592592592592593);
  EXPECT_EQ(r.avg_hops, 2.6622222222222227);
  EXPECT_EQ(r.delivered, 225u);
  EXPECT_FALSE(r.deadlock);
}

}  // namespace
}  // namespace dfsim
