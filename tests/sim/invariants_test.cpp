// Engine invariant suite: credit conservation and buffer-occupancy bounds
// checked every cycle while traffic flows, over both flow-control
// disciplines. These invariants gate the hot-path machinery (arena ring
// buffers, worklists, retry suppression): any bookkeeping drift shows up
// here long before it corrupts a figure.
#include <gtest/gtest.h>

#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

/// Every cycle, for every link (r, p, v):
///   0 <= credits <= cap                     (no credit leak/overflow)
///   0 <= downstream occupancy <= cap        (no buffer overflow)
///   credits + downstream occupancy <= cap   (in-flight phits >= 0)
/// and per router the nonempty-VC accounting must match the buffers.
void check_invariants(const Engine& engine, const DragonflyTopology& topo) {
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    for (PortId p = 0; p < topo.ports_per_router(); ++p) {
      const PortClass cls = topo.port_class(p);
      const int cap = engine.buffer_capacity(cls);
      for (VcId v = 0; v < engine.vc_count(p); ++v) {
        const InputVc& ivc = engine.input_vc(r, p, v);
        ASSERT_GE(ivc.occupancy_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ivc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_EQ(ivc.fifo.empty(), ivc.occupancy_phits == 0);

        if (cls == PortClass::kTerminal) continue;
        const OutputVc& ovc = engine.output_vc(r, p, v);
        ASSERT_GE(ovc.credits_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ovc.credits_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        const auto down = topo.remote_endpoint(r, p);
        if (down.router == kInvalid) {
          // Unwired global slot (unbalanced shapes only): never carries
          // traffic, so its input side must stay empty.
          ASSERT_EQ(ivc.occupancy_phits, 0)
              << "unwired r" << r << " p" << p << " v" << v;
          continue;
        }
        const InputVc& divc = engine.input_vc(down.router, down.port, v);
        ASSERT_LE(ovc.credits_phits + divc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v
            << ": credits plus downstream occupancy exceed capacity";
      }
    }
  }
}

void run_checked_on(const DragonflyTopology& topo,
                    const std::string& routing_name, const EngineConfig& ec,
                    Cycle cycles) {
  auto routing = make_routing(routing_name, topo, {});
  UniformPattern pattern(topo);
  InjectionProcess inj;
  inj.load = 0.4;
  Engine engine(topo, ec, *routing, pattern, inj);
  for (Cycle t = 0; t < cycles; ++t) {
    ASSERT_TRUE(engine.step()) << routing_name << " deadlocked at " << t;
    check_invariants(engine, topo);
  }
  EXPECT_GT(engine.delivered_packets(), 0u) << routing_name;
}

void run_checked(const std::string& routing_name, const EngineConfig& ec,
                 Cycle cycles) {
  run_checked_on(DragonflyTopology(2), routing_name, ec, cycles);
}

using ::dfsim::testing::kAllMechanisms;

/// VCs sized for every mechanism in kAllMechanisms at once.
EngineConfig all_mechanism_config(FlowControl flow) {
  EngineConfig ec;
  ec.flow = flow;
  ec.local_vcs = 6;  // covers par-6/2, the largest requirement
  ec.global_vcs = 2;
  if (flow == FlowControl::kWormhole) {
    ec.packet_phits = 80;
    ec.flit_phits = 10;
  }
  ec.seed = 17;
  return ec;
}

TEST(EngineInvariants, VctEveryCycle) {
  for (const char* routing : {"minimal", "olm", "pb"}) {
    EngineConfig ec;
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

TEST(EngineInvariants, WormholeEveryCycle) {
  for (const char* routing : {"minimal", "rlm", "par-6/2"}) {
    EngineConfig ec;
    ec.flow = FlowControl::kWormhole;
    ec.packet_phits = 80;
    ec.flit_phits = 10;
    ec.local_vcs = 6;  // covers par-6/2's requirement
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

// The same per-cycle invariants must hold for every mechanism when the
// topology leaves the balanced shape: palmtree arrangement, and the
// unbalanced reference (p=2, a=6, h=3, g=8) whose global wiring is
// trunked and partially populated.
TEST(EngineInvariants, PalmtreeEveryMechanism) {
  const DragonflyTopology topo(2, GlobalArrangement::kPalmtree);
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, UnbalancedEveryMechanism) {
  const DragonflyTopology topo(2, 6, 3, 8);
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, UnbalancedPalmtreeWormhole) {
  const DragonflyTopology topo(2, 6, 3, 8, GlobalArrangement::kPalmtree);
  for (const char* routing : {"minimal", "rlm", "par-6/2", "pb"}) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kWormhole), 1500);
  }
}

}  // namespace
}  // namespace dfsim
