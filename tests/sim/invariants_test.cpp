// Engine invariant suite: credit conservation and buffer-occupancy bounds
// checked every cycle while traffic flows, over both flow-control
// disciplines. These invariants gate the hot-path machinery (arena ring
// buffers, worklists, retry suppression): any bookkeeping drift shows up
// here long before it corrupts a figure.
#include <gtest/gtest.h>

#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "topology/dragonfly_topology.hpp"
#include "topology/fault_model.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

/// Every cycle, for every link (r, p, v):
///   0 <= credits <= cap                     (no credit leak/overflow)
///   0 <= downstream occupancy <= cap        (no buffer overflow)
///   credits + downstream occupancy <= cap   (in-flight phits >= 0)
/// and per router the nonempty-VC accounting must match the buffers.
void check_invariants(const Engine& engine, const DragonflyTopology& topo) {
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    for (PortId p = 0; p < topo.ports_per_router(); ++p) {
      const PortClass cls = topo.port_class(p);
      const int cap = engine.buffer_capacity(cls);
      for (VcId v = 0; v < engine.vc_count(p); ++v) {
        const InputVc& ivc = engine.input_vc(r, p, v);
        ASSERT_GE(ivc.occupancy_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ivc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_EQ(ivc.fifo.empty(), ivc.occupancy_phits == 0);

        if (cls == PortClass::kTerminal) continue;
        const OutputVc& ovc = engine.output_vc(r, p, v);
        ASSERT_GE(ovc.credits_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ovc.credits_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        const auto down = topo.remote_endpoint(r, p);
        if (down.router == kInvalid) {
          // Unwired global slot (unbalanced shapes only): never carries
          // traffic, so its input side must stay empty.
          ASSERT_EQ(ivc.occupancy_phits, 0)
              << "unwired r" << r << " p" << p << " v" << v;
          continue;
        }
        if (!topo.port_alive(r, p)) {
          // Dead port (degraded topologies): wired, but no flit may ever
          // traverse it, so its input side must stay empty and its
          // credits untouched.
          ASSERT_EQ(ivc.occupancy_phits, 0)
              << "dead r" << r << " p" << p << " v" << v;
          ASSERT_EQ(ovc.credits_phits, cap)
              << "dead r" << r << " p" << p << " v" << v;
        }
        const InputVc& divc = engine.input_vc(down.router, down.port, v);
        ASSERT_LE(ovc.credits_phits + divc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v
            << ": credits plus downstream occupancy exceed capacity";
      }
    }
  }
}

void run_checked_on(const DragonflyTopology& topo,
                    const std::string& routing_name, const EngineConfig& ec,
                    Cycle cycles) {
  auto routing = make_routing(routing_name, topo, {});
  UniformPattern pattern(topo);
  InjectionProcess inj;
  inj.load = 0.4;
  Engine engine(topo, ec, *routing, pattern, inj);
  // Degraded topologies: machine-check that no mechanism ever routes a
  // flit onto a dead (or unwired) port.
  engine.set_hop_hook(
      [&topo, &routing_name](const Packet&, const RouteChoice& choice,
                             RouterId r) {
        ASSERT_TRUE(topo.port_alive(r, choice.port))
            << routing_name << " traversed dead port " << choice.port
            << " at router " << r;
      });
  for (Cycle t = 0; t < cycles; ++t) {
    ASSERT_TRUE(engine.step()) << routing_name << " deadlocked at " << t;
    check_invariants(engine, topo);
  }
  EXPECT_GT(engine.delivered_packets(), 0u) << routing_name;
}

void run_checked(const std::string& routing_name, const EngineConfig& ec,
                 Cycle cycles) {
  run_checked_on(DragonflyTopology(2), routing_name, ec, cycles);
}

using ::dfsim::testing::kAllMechanisms;

/// VCs sized for every mechanism in kAllMechanisms at once.
EngineConfig all_mechanism_config(FlowControl flow) {
  EngineConfig ec;
  ec.flow = flow;
  ec.local_vcs = 6;  // covers par-6/2, the largest requirement
  ec.global_vcs = 2;
  if (flow == FlowControl::kWormhole) {
    ec.packet_phits = 80;
    ec.flit_phits = 10;
  }
  ec.seed = 17;
  return ec;
}

TEST(EngineInvariants, VctEveryCycle) {
  for (const char* routing : {"minimal", "olm", "pb"}) {
    EngineConfig ec;
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

TEST(EngineInvariants, WormholeEveryCycle) {
  for (const char* routing : {"minimal", "rlm", "par-6/2"}) {
    EngineConfig ec;
    ec.flow = FlowControl::kWormhole;
    ec.packet_phits = 80;
    ec.flit_phits = 10;
    ec.local_vcs = 6;  // covers par-6/2's requirement
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

// The same per-cycle invariants must hold for every mechanism when the
// topology leaves the balanced shape: palmtree arrangement, and the
// unbalanced reference (p=2, a=6, h=3, g=8) whose global wiring is
// trunked and partially populated.
TEST(EngineInvariants, PalmtreeEveryMechanism) {
  const DragonflyTopology topo(2, GlobalArrangement::kPalmtree);
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, UnbalancedEveryMechanism) {
  const DragonflyTopology topo(2, 6, 3, 8);
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, UnbalancedPalmtreeWormhole) {
  const DragonflyTopology topo(2, 6, 3, 8, GlobalArrangement::kPalmtree);
  for (const char* routing : {"minimal", "rlm", "par-6/2", "pb"}) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kWormhole), 1500);
  }
}

// Degraded networks: the same per-cycle invariants — plus the hop-hook
// check that no dead port is ever traversed — must hold for every
// mechanism with failed global links, under both reference off-balance
// shapes. Sampled sets never disconnect a group pair, so every terminal
// stays reachable and no false deadlock may fire.
TEST(EngineInvariants, FaultedPalmtreeEveryMechanism) {
  // Balanced shapes wire exactly one link per group pair, so any dead
  // link would sever a pair; the survivable whole-router fault there is
  // an entire dead group (its pairs disappear with its terminals, and no
  // live pair routed through it). Every mechanism must drop the dead
  // group's traffic at the sources and keep the rest flowing.
  DragonflyTopology topo(2, GlobalArrangement::kPalmtree);
  topo.apply_faults(
      FaultModel::parse(topo, "r:12,r:13,r:14,r:15"));  // all of group 3
  ASSERT_EQ(topo.connectivity_failure(), "");
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, FaultedUnbalancedEveryMechanism) {
  DragonflyTopology topo(2, 6, 3, 8);
  const FaultModel fm = FaultModel::sample(topo, 0.2, 11);
  ASSERT_FALSE(fm.empty());  // the trunked shape has spare links to kill
  topo.apply_faults(fm);
  ASSERT_EQ(topo.connectivity_failure(), "");
  for (const char* routing : kAllMechanisms) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kVirtualCutThrough),
                   1500);
  }
}

TEST(EngineInvariants, FaultedUnbalancedWormhole) {
  DragonflyTopology topo(2, 6, 3, 8, GlobalArrangement::kPalmtree);
  const FaultModel fm = FaultModel::sample(topo, 0.2, 5);
  ASSERT_FALSE(fm.empty());
  topo.apply_faults(fm);
  for (const char* routing : {"minimal", "rlm", "par-6/2", "pb"}) {
    run_checked_on(topo, routing,
                   all_mechanism_config(FlowControl::kWormhole), 1500);
  }
}

}  // namespace
}  // namespace dfsim
