// Engine invariant suite: credit conservation and buffer-occupancy bounds
// checked every cycle while traffic flows, over both flow-control
// disciplines. These invariants gate the hot-path machinery (arena ring
// buffers, worklists, retry suppression): any bookkeeping drift shows up
// here long before it corrupts a figure.
#include <gtest/gtest.h>

#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

/// Every cycle, for every link (r, p, v):
///   0 <= credits <= cap                     (no credit leak/overflow)
///   0 <= downstream occupancy <= cap        (no buffer overflow)
///   credits + downstream occupancy <= cap   (in-flight phits >= 0)
/// and per router the nonempty-VC accounting must match the buffers.
void check_invariants(const Engine& engine, const DragonflyTopology& topo) {
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    for (PortId p = 0; p < topo.ports_per_router(); ++p) {
      const PortClass cls = topo.port_class(p);
      const int cap = engine.buffer_capacity(cls);
      for (VcId v = 0; v < engine.vc_count(p); ++v) {
        const InputVc& ivc = engine.input_vc(r, p, v);
        ASSERT_GE(ivc.occupancy_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ivc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_EQ(ivc.fifo.empty(), ivc.occupancy_phits == 0);

        if (cls == PortClass::kTerminal) continue;
        const OutputVc& ovc = engine.output_vc(r, p, v);
        ASSERT_GE(ovc.credits_phits, 0)
            << "r" << r << " p" << p << " v" << v;
        ASSERT_LE(ovc.credits_phits, cap)
            << "r" << r << " p" << p << " v" << v;
        const auto down = topo.remote_endpoint(r, p);
        const InputVc& divc = engine.input_vc(down.router, down.port, v);
        ASSERT_LE(ovc.credits_phits + divc.occupancy_phits, cap)
            << "r" << r << " p" << p << " v" << v
            << ": credits plus downstream occupancy exceed capacity";
      }
    }
  }
}

void run_checked(const std::string& routing_name, const EngineConfig& ec,
                 Cycle cycles) {
  DragonflyTopology topo(2);
  auto routing = make_routing(routing_name, topo, {});
  UniformPattern pattern(topo);
  InjectionProcess inj;
  inj.load = 0.4;
  Engine engine(topo, ec, *routing, pattern, inj);
  for (Cycle t = 0; t < cycles; ++t) {
    ASSERT_TRUE(engine.step()) << routing_name << " deadlocked at " << t;
    check_invariants(engine, topo);
  }
  EXPECT_GT(engine.delivered_packets(), 0u) << routing_name;
}

TEST(EngineInvariants, VctEveryCycle) {
  for (const char* routing : {"minimal", "olm", "pb"}) {
    EngineConfig ec;
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

TEST(EngineInvariants, WormholeEveryCycle) {
  for (const char* routing : {"minimal", "rlm", "par-6/2"}) {
    EngineConfig ec;
    ec.flow = FlowControl::kWormhole;
    ec.packet_phits = 80;
    ec.flit_phits = 10;
    ec.local_vcs = 6;  // covers par-6/2's requirement
    ec.seed = 17;
    run_checked(routing, ec, 2500);
  }
}

}  // namespace
}  // namespace dfsim
