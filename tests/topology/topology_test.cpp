#include "topology/dragonfly_topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfsim {
namespace {

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, GlobalArrangement>> {
 protected:
  int h() const { return std::get<0>(GetParam()); }
  GlobalArrangement arr() const { return std::get<1>(GetParam()); }
};

TEST_P(TopologySweep, ScaleFormulas) {
  const DragonflyTopology t(h(), arr());
  EXPECT_EQ(t.routers_per_group(), 2 * h());
  EXPECT_EQ(t.num_groups(), 2 * h() * h() + 1);
  EXPECT_EQ(t.num_routers(), 2 * h() * (2 * h() * h() + 1));
  EXPECT_EQ(t.num_terminals(), t.num_routers() * h());
  EXPECT_EQ(t.ports_per_router(), 4 * h() - 1);
}

TEST_P(TopologySweep, PortClassLayout) {
  const DragonflyTopology t(h(), arr());
  for (PortId p = 0; p < t.ports_per_router(); ++p) {
    if (p < 2 * h() - 1) {
      EXPECT_EQ(t.port_class(p), PortClass::kLocal);
    } else if (p < 3 * h() - 1) {
      EXPECT_EQ(t.port_class(p), PortClass::kGlobal);
    } else {
      EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    }
  }
}

TEST_P(TopologySweep, LocalPortMappingIsInverse) {
  const DragonflyTopology t(h(), arr());
  const int a = t.routers_per_group();
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < a; ++j) {
      if (i == j) continue;
      const PortId p = t.local_port_to(i, j);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, t.num_local_ports());
      EXPECT_EQ(t.local_peer(i, p), j);
    }
  }
}

TEST_P(TopologySweep, EveryGroupPairHasExactlyOneGlobalLink) {
  const DragonflyTopology t(h(), arr());
  const int G = t.num_groups();
  const int L = 2 * h() * h();
  for (GroupId g = 0; g < G; ++g) {
    std::set<GroupId> reached;
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      EXPECT_NE(d, g);
      reached.insert(d);
    }
    EXPECT_EQ(static_cast<int>(reached.size()), G - 1);
  }
}

TEST_P(TopologySweep, GlobalLinkReverseIsConsistent) {
  const DragonflyTopology t(h(), arr());
  const int L = 2 * h() * h();
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      const int jr = t.global_link_reverse(g, j);
      ASSERT_GE(jr, 0);
      ASSERT_LT(jr, L);
      EXPECT_EQ(t.global_link_dest(d, jr), g);
    }
  }
}

TEST_P(TopologySweep, GatewayReachesTarget) {
  const DragonflyTopology t(h(), arr());
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (GroupId d = 0; d < t.num_groups(); ++d) {
      if (g == d) continue;
      const RouterId gw = t.gateway_router(g, d);
      EXPECT_EQ(t.group_of_router(gw), g);
      const PortId port = t.gateway_port(g, d);
      EXPECT_EQ(t.port_class(port), PortClass::kGlobal);
      const auto far = t.remote_endpoint(gw, port);
      EXPECT_EQ(t.group_of_router(far.router), d);
    }
  }
}

TEST_P(TopologySweep, RemoteEndpointIsAnInvolution) {
  const DragonflyTopology t(h(), arr());
  for (RouterId r = 0; r < t.num_routers(); ++r) {
    for (PortId p = 0; p < t.first_terminal_port(); ++p) {
      const auto far = t.remote_endpoint(r, p);
      ASSERT_NE(far.router, kInvalid);
      ASSERT_NE(far.router, r);
      const auto back = t.remote_endpoint(far.router, far.port);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(TopologySweep, TerminalMapping) {
  const DragonflyTopology t(h(), arr());
  for (NodeId n = 0; n < t.num_terminals(); ++n) {
    const RouterId r = t.router_of_terminal(n);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, t.num_routers());
    const PortId p = t.terminal_port(n);
    EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    EXPECT_EQ(t.terminal_id(r, p - t.first_terminal_port()), n);
  }
}

TEST_P(TopologySweep, MinHopsBounds) {
  const DragonflyTopology t(h(), arr());
  // Sample pairs; exhaustive is O(n^2) and slow for big h.
  const int n = t.num_routers();
  for (RouterId a = 0; a < n; a += std::max(1, n / 50)) {
    for (RouterId b = 0; b < n; b += std::max(1, n / 50)) {
      const int d = t.min_hops(a, b);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, 3);
      EXPECT_EQ(d == 0, a == b);
      if (t.group_of_router(a) == t.group_of_router(b) && a != b) {
        EXPECT_EQ(d, 1);
      }
      if (t.group_of_router(a) != t.group_of_router(b)) EXPECT_GE(d, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(GlobalArrangement::kAbsolute,
                                         GlobalArrangement::kPalmtree)),
    [](const auto& info) {
      return "h" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == GlobalArrangement::kAbsolute
                  ? "_absolute"
                  : "_palmtree");
    });

TEST(Topology, PaperScaleH8) {
  // Paper Sec. IV: h=8 -> 31-port routers, 16512 servers, 2064 routers,
  // 129 supernodes of 16 routers.
  const DragonflyTopology t(8);
  EXPECT_EQ(t.ports_per_router(), 31);
  EXPECT_EQ(t.num_terminals(), 16512);
  EXPECT_EQ(t.num_routers(), 2064);
  EXPECT_EQ(t.num_groups(), 129);
  EXPECT_EQ(t.routers_per_group(), 16);
}

TEST(Topology, RejectsInvalidH) {
  EXPECT_THROW(DragonflyTopology(0), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(-3), std::invalid_argument);
}

TEST(Topology, DescribeMentionsScale) {
  const DragonflyTopology t(2);
  const std::string s = t.describe();
  EXPECT_NE(s.find("h=2"), std::string::npos);
  EXPECT_NE(s.find("9 groups"), std::string::npos);
}

}  // namespace
}  // namespace dfsim
