#include "topology/dragonfly_topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfsim {
namespace {

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, GlobalArrangement>> {
 protected:
  int h() const { return std::get<0>(GetParam()); }
  GlobalArrangement arr() const { return std::get<1>(GetParam()); }
};

TEST_P(TopologySweep, ScaleFormulas) {
  const DragonflyTopology t(h(), arr());
  EXPECT_EQ(t.routers_per_group(), 2 * h());
  EXPECT_EQ(t.num_groups(), 2 * h() * h() + 1);
  EXPECT_EQ(t.num_routers(), 2 * h() * (2 * h() * h() + 1));
  EXPECT_EQ(t.num_terminals(), t.num_routers() * h());
  EXPECT_EQ(t.ports_per_router(), 4 * h() - 1);
}

TEST_P(TopologySweep, PortClassLayout) {
  const DragonflyTopology t(h(), arr());
  for (PortId p = 0; p < t.ports_per_router(); ++p) {
    if (p < 2 * h() - 1) {
      EXPECT_EQ(t.port_class(p), PortClass::kLocal);
    } else if (p < 3 * h() - 1) {
      EXPECT_EQ(t.port_class(p), PortClass::kGlobal);
    } else {
      EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    }
  }
}

TEST_P(TopologySweep, LocalPortMappingIsInverse) {
  const DragonflyTopology t(h(), arr());
  const int a = t.routers_per_group();
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < a; ++j) {
      if (i == j) continue;
      const PortId p = t.local_port_to(i, j);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, t.num_local_ports());
      EXPECT_EQ(t.local_peer(i, p), j);
    }
  }
}

TEST_P(TopologySweep, EveryGroupPairHasExactlyOneGlobalLink) {
  const DragonflyTopology t(h(), arr());
  const int G = t.num_groups();
  const int L = 2 * h() * h();
  for (GroupId g = 0; g < G; ++g) {
    std::set<GroupId> reached;
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      EXPECT_NE(d, g);
      reached.insert(d);
    }
    EXPECT_EQ(static_cast<int>(reached.size()), G - 1);
  }
}

TEST_P(TopologySweep, GlobalLinkReverseIsConsistent) {
  const DragonflyTopology t(h(), arr());
  const int L = 2 * h() * h();
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      const int jr = t.global_link_reverse(g, j);
      ASSERT_GE(jr, 0);
      ASSERT_LT(jr, L);
      EXPECT_EQ(t.global_link_dest(d, jr), g);
    }
  }
}

TEST_P(TopologySweep, GatewayReachesTarget) {
  const DragonflyTopology t(h(), arr());
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (GroupId d = 0; d < t.num_groups(); ++d) {
      if (g == d) continue;
      const RouterId gw = t.gateway_router(g, d);
      EXPECT_EQ(t.group_of_router(gw), g);
      const PortId port = t.gateway_port(g, d);
      EXPECT_EQ(t.port_class(port), PortClass::kGlobal);
      const auto far = t.remote_endpoint(gw, port);
      EXPECT_EQ(t.group_of_router(far.router), d);
    }
  }
}

TEST_P(TopologySweep, RemoteEndpointIsAnInvolution) {
  const DragonflyTopology t(h(), arr());
  for (RouterId r = 0; r < t.num_routers(); ++r) {
    for (PortId p = 0; p < t.first_terminal_port(); ++p) {
      const auto far = t.remote_endpoint(r, p);
      ASSERT_NE(far.router, kInvalid);
      ASSERT_NE(far.router, r);
      const auto back = t.remote_endpoint(far.router, far.port);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(TopologySweep, TerminalMapping) {
  const DragonflyTopology t(h(), arr());
  for (NodeId n = 0; n < t.num_terminals(); ++n) {
    const RouterId r = t.router_of_terminal(n);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, t.num_routers());
    const PortId p = t.terminal_port(n);
    EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    EXPECT_EQ(t.terminal_id(r, p - t.first_terminal_port()), n);
  }
}

TEST_P(TopologySweep, MinHopsBounds) {
  const DragonflyTopology t(h(), arr());
  // Sample pairs; exhaustive is O(n^2) and slow for big h.
  const int n = t.num_routers();
  for (RouterId a = 0; a < n; a += std::max(1, n / 50)) {
    for (RouterId b = 0; b < n; b += std::max(1, n / 50)) {
      const int d = t.min_hops(a, b);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, 3);
      EXPECT_EQ(d == 0, a == b);
      if (t.group_of_router(a) == t.group_of_router(b) && a != b) {
        EXPECT_EQ(d, 1);
      }
      if (t.group_of_router(a) != t.group_of_router(b)) EXPECT_GE(d, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(GlobalArrangement::kAbsolute,
                                         GlobalArrangement::kPalmtree)),
    [](const auto& info) {
      return "h" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == GlobalArrangement::kAbsolute
                  ? "_absolute"
                  : "_palmtree");
    });

// ---------------------------------------------------------------------
// Parametric (p, a, h, g) shapes: unbalanced, trunked and degenerate.
// ---------------------------------------------------------------------

struct Shape {
  int p, a, h, g;
};

class ParametricSweep
    : public ::testing::TestWithParam<std::tuple<Shape, GlobalArrangement>> {
 protected:
  Shape shape() const { return std::get<0>(GetParam()); }
  GlobalArrangement arr() const { return std::get<1>(GetParam()); }
  DragonflyTopology make() const {
    const Shape s = shape();
    return DragonflyTopology(s.p, s.a, s.h, s.g, arr());
  }
};

TEST_P(ParametricSweep, ScaleFormulas) {
  const Shape s = shape();
  const DragonflyTopology t = make();
  EXPECT_EQ(t.p(), s.p);
  EXPECT_EQ(t.a(), s.a);
  EXPECT_EQ(t.h(), s.h);
  EXPECT_EQ(t.g(), s.g);
  EXPECT_EQ(t.routers_per_group(), s.a);
  EXPECT_EQ(t.num_groups(), s.g);
  EXPECT_EQ(t.num_routers(), s.a * s.g);
  EXPECT_EQ(t.num_terminals(), s.a * s.g * s.p);
  EXPECT_EQ(t.ports_per_router(), s.a - 1 + s.h + s.p);
  EXPECT_EQ(t.global_links_per_group(), s.a * s.h);
}

TEST_P(ParametricSweep, PortClassLayout) {
  const Shape s = shape();
  const DragonflyTopology t = make();
  for (PortId p = 0; p < t.ports_per_router(); ++p) {
    if (p < s.a - 1) {
      EXPECT_EQ(t.port_class(p), PortClass::kLocal);
    } else if (p < s.a - 1 + s.h) {
      EXPECT_EQ(t.port_class(p), PortClass::kGlobal);
    } else {
      EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    }
  }
}

TEST_P(ParametricSweep, WiredSlotsAreSymmetricInvolutions) {
  const DragonflyTopology t = make();
  const int L = t.global_links_per_group();
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      const int jr = t.global_link_reverse(g, j);
      if (d == kInvalid) {
        // Unwired slots have no reverse, and only exist below a*h+1
        // groups.
        EXPECT_EQ(jr, kInvalid);
        EXPECT_LT(t.num_groups(), t.global_links_per_group() + 1);
        continue;
      }
      ASSERT_GE(jr, 0);
      ASSERT_LT(jr, L);
      EXPECT_NE(d, g);
      EXPECT_EQ(t.global_link_dest(d, jr), g);
      EXPECT_EQ(t.global_link_reverse(d, jr), j);
    }
  }
}

TEST_P(ParametricSweep, EveryGroupPairConnectedAtLeastOnce) {
  const DragonflyTopology t = make();
  const int G = t.num_groups();
  const int L = t.global_links_per_group();
  for (GroupId g = 0; g < G; ++g) {
    std::set<GroupId> reached;
    for (int j = 0; j < L; ++j) {
      const GroupId d = t.global_link_dest(g, j);
      if (d != kInvalid) reached.insert(d);
    }
    EXPECT_EQ(static_cast<int>(reached.size()), G - 1) << "group " << g;
    for (GroupId d = 0; d < G; ++d) {
      if (d == g) continue;
      const int j = t.global_link_to(g, d);
      ASSERT_GE(j, 0);
      ASSERT_LT(j, L);
      EXPECT_EQ(t.global_link_dest(g, j), d);
    }
  }
}

TEST_P(ParametricSweep, GatewayAndEndpointsConsistent) {
  const DragonflyTopology t = make();
  for (GroupId g = 0; g < t.num_groups(); ++g) {
    for (GroupId d = 0; d < t.num_groups(); ++d) {
      if (g == d) continue;
      const RouterId gw = t.gateway_router(g, d);
      EXPECT_EQ(t.group_of_router(gw), g);
      const auto far = t.remote_endpoint(gw, t.gateway_port(g, d));
      EXPECT_EQ(t.group_of_router(far.router), d);
    }
  }
  for (RouterId r = 0; r < t.num_routers(); ++r) {
    for (PortId p = 0; p < t.first_terminal_port(); ++p) {
      const auto far = t.remote_endpoint(r, p);
      if (far.router == kInvalid) continue;  // unwired global slot
      ASSERT_NE(far.router, r);
      const auto back = t.remote_endpoint(far.router, far.port);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST_P(ParametricSweep, TerminalMappingAndMinHops) {
  const DragonflyTopology t = make();
  for (NodeId n = 0; n < t.num_terminals(); ++n) {
    const RouterId r = t.router_of_terminal(n);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, t.num_routers());
    const PortId p = t.terminal_port(n);
    EXPECT_EQ(t.port_class(p), PortClass::kTerminal);
    EXPECT_EQ(t.terminal_id(r, p - t.first_terminal_port()), n);
  }
  const int n = t.num_routers();
  for (RouterId a = 0; a < n; a += std::max(1, n / 40)) {
    for (RouterId b = 0; b < n; b += std::max(1, n / 40)) {
      const int d = t.min_hops(a, b);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, 3);
      EXPECT_EQ(d == 0, a == b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParametricSweep,
    ::testing::Combine(
        ::testing::Values(Shape{2, 6, 3, 8},    // the unbalanced reference
                          Shape{1, 4, 2, 5},    // thin terminals, few groups
                          Shape{3, 5, 2, 11},   // odd a, maximal g = a*h+1
                          Shape{2, 4, 2, 2},    // two groups, 8x trunked
                          Shape{2, 3, 1, 4},    // h=1, maximal
                          Shape{4, 8, 4, 33}),  // balanced h=4 spelled out
        ::testing::Values(GlobalArrangement::kAbsolute,
                          GlobalArrangement::kPalmtree)),
    [](const auto& info) {
      const Shape s = std::get<0>(info.param);
      return "p" + std::to_string(s.p) + "a" + std::to_string(s.a) + "h" +
             std::to_string(s.h) + "g" + std::to_string(s.g) +
             (std::get<1>(info.param) == GlobalArrangement::kAbsolute
                  ? "_absolute"
                  : "_palmtree");
    });

// The balanced shorthand must reproduce the historical closed-form
// wiring bit-for-bit: dest = (g ± (j+1)) mod G, reverse = G - 2 - j.
TEST(Topology, BalancedMatchesClosedFormWiring) {
  for (const int h : {1, 2, 3, 4}) {
    for (const auto arr :
         {GlobalArrangement::kAbsolute, GlobalArrangement::kPalmtree}) {
      const DragonflyTopology t(h, arr);
      ASSERT_TRUE(t.balanced());
      const int G = t.num_groups();
      const int L = t.global_links_per_group();
      ASSERT_EQ(L, G - 1);
      for (GroupId g = 0; g < G; ++g) {
        for (int j = 0; j < L; ++j) {
          const GroupId expect =
              arr == GlobalArrangement::kAbsolute
                  ? (g + j + 1) % G
                  : ((g - j - 1) % G + G) % G;
          ASSERT_EQ(t.global_link_dest(g, j), expect)
              << "h=" << h << " g=" << g << " j=" << j;
          ASSERT_EQ(t.global_link_reverse(g, j), G - 2 - j);
        }
      }
    }
  }
}

// The one-argument shorthand and the spelled-out balanced shape are the
// same topology object in every observable way.
TEST(Topology, ShorthandEqualsExplicitBalanced) {
  const DragonflyTopology a(3);
  const DragonflyTopology b(3, 6, 3, 19);
  EXPECT_TRUE(b.balanced());
  EXPECT_EQ(a.num_routers(), b.num_routers());
  EXPECT_EQ(a.ports_per_router(), b.ports_per_router());
  for (RouterId r = 0; r < a.num_routers(); ++r) {
    for (PortId p = 0; p < a.first_terminal_port(); ++p) {
      const auto ea = a.remote_endpoint(r, p);
      const auto eb = b.remote_endpoint(r, p);
      ASSERT_EQ(ea.router, eb.router);
      ASSERT_EQ(ea.port, eb.port);
    }
  }
}

TEST(Topology, RejectsOversizedShapesInsteadOfOverflowing) {
  // a*h = 10^10 would overflow the int link-slot count and then attempt
  // a multi-GB table allocation; the ctor must throw instead.
  EXPECT_THROW(DragonflyTopology(1, 100000, 100000, 2),
               std::invalid_argument);
  // The balanced shorthand squares h.
  EXPECT_THROW(DragonflyTopology(2000000000), std::invalid_argument);
}

TEST(Topology, RejectsInvalidShapes) {
  EXPECT_THROW(DragonflyTopology(2, 4, 2, 10), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(0, 4, 2, 5), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(2, 0, 2, 5), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(2, 4, 0, 5), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(2, 4, 2, 0), std::invalid_argument);
}

TEST(Topology, DescribeMentionsUnbalancedShape) {
  const DragonflyTopology t(2, 6, 3, 8);
  const std::string s = t.describe();
  EXPECT_NE(s.find("p=2"), std::string::npos);
  EXPECT_NE(s.find("a=6"), std::string::npos);
  EXPECT_NE(s.find("g=8"), std::string::npos);
  EXPECT_NE(s.find("8 groups"), std::string::npos);
}

TEST(Topology, PaperScaleH8) {
  // Paper Sec. IV: h=8 -> 31-port routers, 16512 servers, 2064 routers,
  // 129 supernodes of 16 routers.
  const DragonflyTopology t(8);
  EXPECT_EQ(t.ports_per_router(), 31);
  EXPECT_EQ(t.num_terminals(), 16512);
  EXPECT_EQ(t.num_routers(), 2064);
  EXPECT_EQ(t.num_groups(), 129);
  EXPECT_EQ(t.routers_per_group(), 16);
}

TEST(Topology, RejectsInvalidH) {
  EXPECT_THROW(DragonflyTopology(0), std::invalid_argument);
  EXPECT_THROW(DragonflyTopology(-3), std::invalid_argument);
}

TEST(Topology, DescribeMentionsScale) {
  const DragonflyTopology t(2);
  const std::string s = t.describe();
  EXPECT_NE(s.find("h=2"), std::string::npos);
  EXPECT_NE(s.find("9 groups"), std::string::npos);
}

}  // namespace
}  // namespace dfsim
