// The fault-injection subsystem: spec parsing, seeded sampling, the
// per-port alive/dead predicate, canonical-link rerouting around dead
// trunks, the connectivity check, engine-level drop semantics, the
// fault-aware census/CDG analyses, and the seed-determinism contract
// (same fault_seed -> identical fault set -> bit-identical sweep CSV).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "analysis/cdg.hpp"
#include "analysis/route_census.hpp"
#include "api/config.hpp"
#include "api/simulator.hpp"
#include "api/sweep.hpp"
#include "routing/parity_sign.hpp"
#include "topology/dragonfly_topology.hpp"
#include "topology/fault_model.hpp"

namespace dfsim {
namespace {

std::string spec_for_global_link(const DragonflyTopology& topo, GroupId u,
                                 GroupId v) {
  const RouterId a = topo.gateway_router(u, v);
  const auto far = topo.remote_endpoint(a, topo.gateway_port(u, v));
  return "gl:" + std::to_string(a) + "-" + std::to_string(far.router);
}

TEST(FaultModel, DeadRouterKillsItsPortsTerminalsAndNeighbourPorts) {
  DragonflyTopology topo(2);  // 9 groups x 4 routers, p=2
  const RouterId victim = 5;
  topo.apply_faults(FaultModel::parse(topo, "r:5"));

  ASSERT_TRUE(topo.faulted());
  EXPECT_FALSE(topo.router_alive(victim));
  for (PortId p = 0; p < topo.ports_per_router(); ++p) {
    EXPECT_FALSE(topo.port_alive(victim, p)) << "port " << p;
    // Every neighbour's port toward the dead router dies with it, so no
    // mechanism can ever select an output into the corpse.
    if (topo.port_class(p) == PortClass::kTerminal) continue;
    const auto far = topo.remote_endpoint(victim, p);
    if (far.router == kInvalid) continue;
    EXPECT_FALSE(topo.port_alive(far.router, far.port));
  }
  for (int slot = 0; slot < topo.terminals_per_router(); ++slot) {
    EXPECT_FALSE(topo.terminal_alive(topo.terminal_id(victim, slot)));
  }
  // Live routers and their ports are untouched.
  EXPECT_TRUE(topo.router_alive(0));
  EXPECT_TRUE(topo.terminal_alive(0));
}

TEST(FaultModel, BalancedShapeLosesGroupPairWhenItsOnlyLinkDies) {
  DragonflyTopology topo(2);
  // The balanced h=2 shape wires exactly one link per group pair, so
  // killing it must sever the pair (and the connectivity check must
  // reject the set with a pointed message).
  topo.apply_faults(FaultModel::parse(topo, spec_for_global_link(topo, 0, 1)));
  EXPECT_FALSE(topo.groups_linked(0, 1));
  EXPECT_FALSE(topo.groups_linked(1, 0));
  EXPECT_EQ(topo.reachable_groups(0), topo.num_groups() - 2);
  const std::string err = topo.connectivity_failure();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("no alive global link"), std::string::npos) << err;
}

TEST(FaultModel, TrunkedDuplicateTakesOverAsCanonicalLink) {
  // p2a6h3g8: 18 link slots over 7 offsets -> several group pairs are
  // trunked twice. Find one, kill its canonical link, and the minimal
  // route must fall over to the duplicate — no connectivity loss.
  DragonflyTopology topo(2, 6, 3, 8);
  GroupId u = kInvalid, v = kInvalid;
  int canonical = -1, duplicate = -1;
  for (GroupId g = 0; g < topo.num_groups() && u == kInvalid; ++g) {
    for (GroupId d = 0; d < topo.num_groups(); ++d) {
      if (d == g) continue;
      int first = -1, second = -1;
      for (int j = 0; j < topo.global_links_per_group(); ++j) {
        if (topo.global_link_dest(g, j) != d) continue;
        (first < 0 ? first : second) = j;
      }
      if (second >= 0) {
        u = g;
        v = d;
        canonical = first;
        duplicate = second;
        break;
      }
    }
  }
  ASSERT_NE(u, kInvalid) << "expected a trunked pair in p2a6h3g8";
  ASSERT_EQ(topo.global_link_to(u, v), canonical);

  const RouterId gw = topo.router_id(u, topo.global_link_router(canonical));
  const auto far = topo.remote_endpoint(
      gw, topo.global_link_port(canonical));
  DragonflyTopology faulted(2, 6, 3, 8);
  faulted.apply_faults(FaultModel::parse(
      faulted,
      "gl:" + std::to_string(gw) + "-" + std::to_string(far.router)));

  EXPECT_TRUE(faulted.groups_linked(u, v));
  EXPECT_EQ(faulted.global_link_to(u, v), duplicate);
  EXPECT_EQ(faulted.connectivity_failure(), "");
}

TEST(FaultModel, DeadLocalLinkBreaksMinimalRouteAndIsReported) {
  DragonflyTopology topo(2);
  topo.apply_faults(FaultModel::parse(topo, "ll:0-1"));
  EXPECT_FALSE(topo.local_link_alive(0, 1));
  EXPECT_TRUE(topo.local_link_alive(0, 2));
  const std::string err = topo.connectivity_failure();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("local link"), std::string::npos) << err;
}

TEST(FaultModel, ParseRejectsMalformedSpecsWithPointedMessages) {
  const DragonflyTopology topo(2);
  const auto message = [&](const std::string& spec) {
    try {
      FaultModel::parse(topo, spec);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message("x:1").find("unknown kind"), std::string::npos);
  EXPECT_NE(message("r:9999").find("only routers"), std::string::npos);
  EXPECT_NE(message("gl:0-1").find("wires none"), std::string::npos);
  // Routers 0 and 4 sit in different groups (a = 4): not a local link.
  EXPECT_NE(message("ll:0-4").find("never cross groups"),
            std::string::npos);
  EXPECT_NE(message("gl:3").find("<routerA>-<routerB>"), std::string::npos);
  EXPECT_NE(message("r:1-2").find("trailing"), std::string::npos);
  EXPECT_NE(message("ll:2-2").find("same router twice"), std::string::npos);
}

TEST(FaultModel, SampleIsSeedDeterministicAndNeverDisconnects) {
  // Balanced shapes wire exactly one link per group pair (a*h = g-1), so
  // the never-disconnect rule forbids every kill: the sampled set is
  // empty and the network stays whole.
  const DragonflyTopology balanced(3);
  EXPECT_TRUE(FaultModel::sample(balanced, 0.15, 42).empty());

  // The trunked unbalanced shape has spare links; the sampler kills only
  // those, deterministically per seed, keeping connectivity green.
  const DragonflyTopology topo(2, 6, 3, 8);
  const FaultModel a = FaultModel::sample(topo, 0.2, 42);
  const FaultModel b = FaultModel::sample(topo, 0.2, 42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.describe(), b.describe());

  const FaultModel c = FaultModel::sample(topo, 0.2, 43);
  EXPECT_NE(a.describe(), c.describe());

  DragonflyTopology faulted(2, 6, 3, 8);
  faulted.apply_faults(a);
  EXPECT_EQ(faulted.connectivity_failure(), "");
}

TEST(FaultModel, ValidateRejectsDisconnectingAndConflictingKnobs) {
  SimConfig cfg;
  cfg.topo = "h2";
  cfg.fault_spec = "ll:0-1";
  try {
    cfg.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("disconnects"), std::string::npos) << msg;
    EXPECT_NE(msg.find("local link"), std::string::npos) << msg;
  }

  cfg = SimConfig{};
  cfg.fault_fraction = 1.0;  // must be < 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fault_fraction = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.fault_spec = "r:0";
  cfg.fault_fraction = 0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // A survivable fault set passes.
  cfg = SimConfig{};
  cfg.topo = "p2a6h3g8";
  cfg.fault_fraction = 0.15;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FaultModel, DeadDestinationsAreDroppedAndCounted) {
  // Kill a whole group (the survivable whole-router fault on a balanced
  // shape: a single dead router would take the only link to each of its
  // h destination groups with it). Uniform traffic toward the dead
  // group's terminals is dropped at the sources (counted), everything
  // else still flows.
  SimConfig cfg;
  cfg.topo = "h2";
  cfg.fault_spec = "r:4,r:5,r:6,r:7";  // all of group 1 (a = 4)
  cfg.routing = "olm";
  cfg.load = 0.3;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 900;
  const SteadyResult r = run_steady(cfg);
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.dead_destination_drops, 0u);
}

TEST(FaultModel, FaultedBurstDrainsToCompletion) {
  // Burst mode on a degraded network: dead terminals inject nothing and
  // live sources' packets to dead destinations are dropped — the drain
  // target must account for both, or the run would spin to max_cycles
  // and report completed=false forever.
  SimConfig cfg;
  cfg.topo = "h2";
  cfg.fault_spec = "r:4,r:5,r:6,r:7";  // all of group 1
  cfg.routing = "minimal";
  cfg.burst_packets = 5;
  cfg.max_cycles = 200000;
  const BurstResult r = run_burst(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlock);
  EXPECT_LT(r.consumption_cycles, cfg.max_cycles);
}

TEST(FaultModel, HealthyRunsReportZeroDeadDrops) {
  SimConfig cfg;
  cfg.topo = "h2";
  cfg.routing = "minimal";
  cfg.load = 0.3;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  const SteadyResult r = run_steady(cfg);
  EXPECT_EQ(r.dead_destination_drops, 0u);
  EXPECT_FALSE(r.deadlock);
}

TEST(FaultModel, FaultedCensusAndCdgDropDeadChannels) {
  DragonflyTopology topo(2, 6, 3, 8);
  topo.apply_faults(FaultModel::parse(topo, "ll:1-2"));

  const LocalRouteRestriction none_restriction(RestrictionPolicy::kNone);
  const RouteCensus healthy(6, none_restriction);
  const RouteCensus faulted(topo, GroupId{0}, none_restriction);
  // Routes THROUGH the dead link vanish (1 -> 2 -> 3 is gone from the
  // 1 -> 3 set), the dead link carries zero 2-hop routes, and routes
  // avoiding it (1 -> k -> 2) survive; other groups are untouched.
  EXPECT_LT(faulted.routes()[1][3], healthy.routes()[1][3]);
  EXPECT_EQ(faulted.link_load()[1][2], 0);
  EXPECT_EQ(faulted.link_load()[2][1], 0);
  EXPECT_EQ(faulted.routes()[1][2], healthy.routes()[1][2]);
  const RouteCensus other_group(topo, GroupId{3}, none_restriction);
  EXPECT_EQ(other_group.routes()[1][3], healthy.routes()[1][3]);

  // The faulted CDG is a subgraph: faults can only remove dependencies.
  const LocalChannelDependencyGraph healthy_cdg(6, none_restriction);
  const LocalChannelDependencyGraph faulted_cdg(topo, GroupId{0},
                                                none_restriction);
  std::size_t healthy_edges = 0, faulted_edges = 0;
  for (const auto& row : healthy_cdg.adjacency()) healthy_edges += row.size();
  for (const auto& row : faulted_cdg.adjacency()) faulted_edges += row.size();
  EXPECT_LT(faulted_edges, healthy_edges);
  // Channels over the dead link have no outgoing dependencies at all.
  EXPECT_TRUE(faulted_cdg.adjacency()[static_cast<std::size_t>(
                                          faulted_cdg.channel_id(1, 2))]
                  .empty());

  // The parity-sign restriction stays acyclic on the degraded group.
  const LocalRouteRestriction parity(RestrictionPolicy::kParitySign);
  EXPECT_FALSE(
      LocalChannelDependencyGraph(topo, GroupId{0}, parity).has_cycle());
}

std::string sweep_csv(const SimConfig& base, int jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  const auto points = run_experiments(
      sweep_grid(base, {"minimal", "olm"}, {0.2, 0.4}), opts);
  std::ostringstream os;
  print_sweep(os, points, Metric::kThroughput, "offered_load");
  return os.str();
}

TEST(FaultModel, SameFaultSeedYieldsBitIdenticalSweeps) {
  SimConfig cfg;
  cfg.topo = "p2a6h3g8";
  cfg.fault_fraction = 0.15;
  cfg.fault_seed = 9;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  cfg.seed = 42;

  const std::string serial = sweep_csv(cfg, 1);
  const std::string parallel = sweep_csv(cfg, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, sweep_csv(cfg, 1));

  // A different fault seed samples a different fault set and (with
  // overwhelming probability) perturbs the measured numbers.
  SimConfig other = cfg;
  other.fault_seed = 10;
  EXPECT_NE(serial, sweep_csv(other, 1));
}

}  // namespace
}  // namespace dfsim
