// Shared helpers for engine-level tests: a fixture that wires topology,
// routing, traffic and engine together, plus a per-packet route recorder
// that validates mechanism invariants hop by hop.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/pattern.hpp"

namespace dfsim::testing {

/// Every user-facing routing mechanism the factory can build (the
/// rlm-signonly/rlm-unrestricted ablation variants excluded). Sweeps
/// that claim "every mechanism" coverage iterate this list so a new
/// factory entry only needs adding here.
inline constexpr const char* kAllMechanisms[] = {
    "minimal", "valiant", "ugal", "pb", "olm", "rlm", "par-6/2"};

/// Pattern that must never be asked (tests drive inject_for_test).
class NeverPattern final : public TrafficPattern {
 public:
  NodeId dest(NodeId, Rng&) override {
    ADD_FAILURE() << "NeverPattern::dest called";
    return 0;
  }
  std::string name() const override { return "never"; }
};

struct TestNet {
  TestNet(int h, const std::string& routing_name, EngineConfig ec,
          std::unique_ptr<TrafficPattern> pat,
          InjectionProcess inj = {},
          const RoutingParams& rp = {})
      : topo(h),
        routing(make_routing(routing_name, topo, rp)),
        pattern(std::move(pat)),
        engine(topo, ec, *routing, *pattern, inj) {}

  DragonflyTopology topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<TrafficPattern> pattern;
  Engine engine;
};

/// One recorded hop: router it was taken at, port class, VC, misroute info.
struct HopRecord {
  RouterId router;
  PortClass cls;
  VcId vc;
  bool local_misroute;
  bool commit_valiant;
};

/// Records the full hop sequence of every packet (keyed by source and
/// creation cycle, which is unique per terminal) and hands completed
/// routes to a validator on delivery.
class RouteRecorder {
 public:
  using Key = std::pair<NodeId, Cycle>;

  void attach(Engine& engine) {
    engine.set_hop_hook(
        [this](const Packet& pkt, const RouteChoice& choice, RouterId r) {
          const PortClass cls =
              engine_->topology().port_class(choice.port);
          routes_[{pkt.src, pkt.created}].push_back(
              {r, cls, choice.vc, choice.local_misroute,
               choice.commit_valiant});
        });
    engine_ = &engine;
  }

  /// Hop sequence of a delivered (or in-flight) packet.
  const std::vector<HopRecord>& route(NodeId src, Cycle created) const {
    static const std::vector<HopRecord> kEmpty;
    const auto it = routes_.find({src, created});
    return it == routes_.end() ? kEmpty : it->second;
  }

  const std::map<Key, std::vector<HopRecord>>& all() const {
    return routes_;
  }

 private:
  Engine* engine_ = nullptr;
  std::map<Key, std::vector<HopRecord>> routes_;
};

}  // namespace dfsim::testing
