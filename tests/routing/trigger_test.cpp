#include "routing/trigger.hpp"

#include <gtest/gtest.h>

namespace dfsim {
namespace {

TEST(Trigger, CandidateMustBeStrictlyBelowScaledMinimal) {
  const MisroutingTrigger t(0.45);
  EXPECT_TRUE(t.allows(0.10, 0.50));   // 0.10 < 0.225
  EXPECT_FALSE(t.allows(0.30, 0.50));  // 0.30 >= 0.225
  EXPECT_FALSE(t.allows(0.225, 0.50));  // boundary is exclusive
}

TEST(Trigger, EmptyMinimalQueueNeverMisroutes) {
  const MisroutingTrigger t(0.45);
  EXPECT_FALSE(t.allows(0.0, 0.0));
  EXPECT_FALSE(t.allows(0.1, 0.0));
}

TEST(Trigger, ZeroThresholdDisablesMisrouting) {
  const MisroutingTrigger t(0.0);
  EXPECT_FALSE(t.allows(0.0, 1.0));
  EXPECT_FALSE(t.allows(0.5, 1.0));
}

TEST(Trigger, HigherThresholdAdmitsMoreCandidates) {
  const MisroutingTrigger low(0.30);
  const MisroutingTrigger high(0.60);
  const double min_occ = 0.8;
  int low_count = 0;
  int high_count = 0;
  for (double c = 0.0; c < 1.0; c += 0.05) {
    if (low.allows(c, min_occ)) ++low_count;
    if (high.allows(c, min_occ)) ++high_count;
  }
  EXPECT_GT(high_count, low_count);
}

TEST(Trigger, SaturatedMinimalAdmitsNearEmptyCandidates) {
  const MisroutingTrigger t(0.45);
  EXPECT_TRUE(t.allows(0.0, 1.0));
  EXPECT_TRUE(t.allows(0.44, 1.0));
  EXPECT_FALSE(t.allows(0.46, 1.0));
}

}  // namespace
}  // namespace dfsim
