// Mechanism-level invariants, machine-checked on full hop traces: hop
// budgets, VC ladders, parity-sign compliance, OLM escape feasibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "../test_util.hpp"
#include "routing/olm.hpp"
#include "routing/parity_sign.hpp"
#include "routing/vc_ladder.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

using testing::HopRecord;
using testing::RouteRecorder;

struct TraceRun {
  explicit TraceRun(const std::string& routing_name, int h = 2,
                    const std::string& pattern_name = "uniform",
                    double load = 0.45, int local_vcs = 3)
      : topo(h) {
    RoutingParams rp;
    routing = make_routing(routing_name, topo, rp);
    pattern = make_pattern(topo, pattern_name, 1, 0.5);
    EngineConfig ec;
    ec.local_vcs = std::max(local_vcs, routing->min_local_vcs());
    ec.seed = 1234;
    InjectionProcess inj;
    inj.load = load;
    engine = std::make_unique<Engine>(topo, ec, *routing, *pattern, inj);
    recorder.attach(*engine);
    engine->set_delivery_hook([this](const Packet& pkt, Cycle) {
      delivered_routes.push_back(
          {pkt, recorder.route(pkt.src, pkt.created)});
    });
  }

  void run(Cycle cycles) { engine->run_until(cycles); }

  DragonflyTopology topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<TrafficPattern> pattern;
  std::unique_ptr<Engine> engine;
  RouteRecorder recorder;
  std::vector<std::pair<Packet, std::vector<HopRecord>>> delivered_routes;
};

int count_class(const std::vector<HopRecord>& route, PortClass cls) {
  return static_cast<int>(
      std::count_if(route.begin(), route.end(),
                    [cls](const HopRecord& h) { return h.cls == cls; }));
}

// The recorder also logs the final ejection decision; network hops are
// the local + global ones.
int network_hops(const std::vector<HopRecord>& route) {
  return count_class(route, PortClass::kLocal) +
         count_class(route, PortClass::kGlobal);
}

// Split a route into per-group segments of consecutive local hops.
std::vector<std::vector<HopRecord>> local_segments(
    const std::vector<HopRecord>& route) {
  std::vector<std::vector<HopRecord>> segments(1);
  for (const HopRecord& hop : route) {
    if (hop.cls == PortClass::kGlobal) {
      segments.emplace_back();
    } else if (hop.cls == PortClass::kLocal) {
      segments.back().push_back(hop);
    }
  }
  return segments;
}

TEST(RoutingTrace, MinimalNeverExceedsThreeHops) {
  TraceRun t("minimal");
  t.run(4000);
  ASSERT_GT(t.delivered_routes.size(), 50u);
  for (const auto& [pkt, route] : t.delivered_routes) {
    EXPECT_LE(network_hops(route), 3);
    EXPECT_LE(count_class(route, PortClass::kGlobal), 1);
    EXPECT_FALSE(pkt.rs.valiant);
  }
}

TEST(RoutingTrace, ValiantCapsAtFiveHops) {
  TraceRun t("valiant");
  t.run(4000);
  ASSERT_GT(t.delivered_routes.size(), 50u);
  for (const auto& [pkt, route] : t.delivered_routes) {
    EXPECT_LE(network_hops(route), 5);
    EXPECT_LE(count_class(route, PortClass::kGlobal), 2);
  }
}

TEST(RoutingTrace, EveryMechanismRespectsPaperBudgets) {
  for (const char* name : {"minimal", "valiant", "pb", "ugal", "par-6/2",
                           "rlm", "olm"}) {
    TraceRun t(name);
    t.run(4000);
    ASSERT_GT(t.delivered_routes.size(), 20u) << name;
    for (const auto& [pkt, route] : t.delivered_routes) {
      EXPECT_LE(network_hops(route), 8) << name;
      EXPECT_LE(count_class(route, PortClass::kGlobal), 2) << name;
      for (const auto& seg : local_segments(route)) {
        EXPECT_LE(seg.size(), 2u) << name;
      }
    }
    EXPECT_FALSE(t.engine->deadlock_detected()) << name;
  }
}

// Günther's ascending rule: strictly increasing VC index within each
// class, for the mechanisms that rely on it.
TEST(RoutingTrace, DistanceClassMechanismsUseAscendingVcs) {
  for (const char* name : {"minimal", "valiant", "pb", "ugal", "par-6/2"}) {
    TraceRun t(name);
    t.run(4000);
    for (const auto& [pkt, route] : t.delivered_routes) {
      int last_local = -1;
      int last_global = -1;
      for (const HopRecord& hop : route) {
        if (hop.cls == PortClass::kLocal) {
          EXPECT_GT(hop.vc, last_local) << name;
          last_local = hop.vc;
        } else if (hop.cls == PortClass::kGlobal) {
          EXPECT_GT(hop.vc, last_global) << name;
          last_global = hop.vc;
        }
      }
    }
  }
}

// RLM: both local hops of a group share lVC_{1+globals}; consecutive
// local hops satisfy the parity-sign restriction.
TEST(RoutingTrace, RlmGroupVcAndRestriction) {
  const LocalRouteRestriction restriction(RestrictionPolicy::kParitySign);
  for (const char* pattern : {"uniform", "advl", "advg"}) {
    TraceRun t("rlm", 2, pattern, 0.6);
    t.run(6000);
    ASSERT_GT(t.delivered_routes.size(), 20u) << pattern;
    for (const auto& [pkt, route] : t.delivered_routes) {
      int globals = 0;
      const HopRecord* prev_local_in_group = nullptr;
      for (const HopRecord& hop : route) {
        if (hop.cls == PortClass::kGlobal) {
          EXPECT_EQ(hop.vc, globals) << pattern;
          ++globals;
          prev_local_in_group = nullptr;
          continue;
        }
        if (hop.cls != PortClass::kLocal) continue;
        EXPECT_EQ(hop.vc, globals) << pattern;  // lVC_{1+globals}
        if (prev_local_in_group != nullptr) {
          // Second local hop in the group: the 2-hop combo must be
          // allowed. Reconstruct local indices from consecutive routers.
          const int i = t.topo.local_index(prev_local_in_group->router);
          const int k = t.topo.local_index(hop.router);
          // The hop's own destination: look up where this hop leads —
          // the next hop's router or, for the last hop, the dst router.
          const HopRecord* next = &hop;
          const ptrdiff_t idx = next - route.data();
          const RouterId to = (idx + 1 < static_cast<ptrdiff_t>(route.size()))
                                  ? route[static_cast<size_t>(idx + 1)].router
                                  : pkt.rs.dst_router;
          const int j = t.topo.local_index(to);
          EXPECT_TRUE(restriction.hop_pair_allowed(i, k, j))
              << pattern << " " << i << "->" << k << "->" << j;
        }
        prev_local_in_group = &hop;
      }
    }
  }
}

// OLM: the rank sequence of the occupied VCs satisfies the escape
// invariant after every hop — already asserted inside OlmRouting in
// debug builds; here we validate misroute placement from traces.
TEST(RoutingTrace, OlmMisroutesOnlyOnFeasibleVcs) {
  for (const char* pattern : {"uniform", "advl", "advg"}) {
    TraceRun t("olm", 2, pattern, 0.6);
    t.run(6000);
    for (const auto& [pkt, route] : t.delivered_routes) {
      for (const HopRecord& hop : route) {
        if (!hop.local_misroute) continue;
        EXPECT_EQ(hop.cls, PortClass::kLocal);
        // Misroutes never land on the last local VC (no escape above).
        EXPECT_LT(hop.vc, 2) << pattern;
      }
    }
  }
}

TEST(RoutingTrace, AdversarialGlobalTriggersValiantCommits) {
  TraceRun t("olm", 2, "advg", 0.7);
  t.run(6000);
  int committed = 0;
  for (const auto& [pkt, route] : t.delivered_routes) {
    committed += pkt.rs.valiant ? 1 : 0;
  }
  ASSERT_GT(t.delivered_routes.size(), 50u);
  // Under ADVG+1 nearly everything must detour globally.
  EXPECT_GT(committed, static_cast<int>(t.delivered_routes.size() / 2));
}

TEST(RoutingTrace, UniformLowLoadStaysMostlyMinimal) {
  TraceRun t("olm", 2, "uniform", 0.05);
  t.run(6000);
  int misrouted = 0;
  for (const auto& [pkt, route] : t.delivered_routes) {
    if (pkt.rs.valiant) ++misrouted;
    for (const auto& hop : route) {
      if (hop.local_misroute) ++misrouted;
    }
  }
  ASSERT_GT(t.delivered_routes.size(), 20u);
  EXPECT_LT(misrouted, static_cast<int>(t.delivered_routes.size() / 10 + 2));
}

// --- OLM escape feasibility, unit-level -------------------------------

TEST(OlmEscape, MatchesPaperVcRules) {
  const DragonflyTopology topo(4);
  RouteState rs;
  // Destination: router 0 of group 0; evaluate from a router in another
  // group (an "intermediate group" position needing l-g-l).
  rs.dst_router = topo.router_id(0, 0);
  rs.dst_group = 0;
  const RouterId inter = topo.router_id(5, 3);
  // Misroute onto lVC1 (rank 1) leaves lVC2-gVC2-lVC3: feasible.
  EXPECT_TRUE(OlmRouting::escape_feasible(topo, 3, 2, local_rank(0), inter, rs));
  // Misroute onto lVC2 (rank 3) would need a global VC above rank 5: no.
  EXPECT_FALSE(
      OlmRouting::escape_feasible(topo, 3, 2, local_rank(1), inter, rs));
  // In the destination group both lVC1 and lVC2 are feasible, lVC3 not.
  const RouterId in_dst = topo.router_id(0, 5);
  EXPECT_TRUE(
      OlmRouting::escape_feasible(topo, 3, 2, local_rank(0), in_dst, rs));
  EXPECT_TRUE(
      OlmRouting::escape_feasible(topo, 3, 2, local_rank(1), in_dst, rs));
  EXPECT_FALSE(
      OlmRouting::escape_feasible(topo, 3, 2, local_rank(2), in_dst, rs));
  // At the destination router there is nothing left to block on.
  EXPECT_TRUE(OlmRouting::escape_feasible(topo, 3, 2, local_rank(2),
                                          rs.dst_router, rs));
}

TEST(OlmEscape, GatewayPositionsAllowHigherVcs) {
  const DragonflyTopology topo(4);
  RouteState rs;
  rs.dst_router = topo.router_id(0, 0);
  rs.dst_group = 0;
  // From the router owning the global link into group 0, the remaining
  // classes are [g, l?]: lVC2 (rank 3) still escapes via gVC2-lVC3.
  const GroupId other = 5;
  const RouterId gw = topo.gateway_router(other, 0);
  EXPECT_TRUE(OlmRouting::escape_feasible(topo, 3, 2, local_rank(1), gw, rs));
}

TEST(VcLadder, RanksInterleaveClasses) {
  EXPECT_EQ(local_rank(0), 1);
  EXPECT_EQ(global_rank(0), 2);
  EXPECT_EQ(local_rank(1), 3);
  EXPECT_EQ(global_rank(1), 4);
  EXPECT_EQ(local_rank(2), 5);
  EXPECT_EQ(next_local_vc_above(0, 3), 0);
  EXPECT_EQ(next_local_vc_above(1, 3), 1);
  EXPECT_EQ(next_local_vc_above(4, 3), 2);
  EXPECT_EQ(next_local_vc_above(5, 3), -1);
  EXPECT_EQ(next_global_vc_above(1, 2), 0);
  EXPECT_EQ(next_global_vc_above(2, 2), 1);
  EXPECT_EQ(next_global_vc_above(4, 2), -1);
  EXPECT_EQ(occupied_rank(PortClass::kTerminal, 0), 0);
  EXPECT_EQ(occupied_rank(PortClass::kLocal, 1), 3);
  EXPECT_EQ(occupied_rank(PortClass::kGlobal, 1), 4);
}

}  // namespace
}  // namespace dfsim
