#include "routing/parity_sign.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dfsim {
namespace {

using LH = LocalHopType;

TEST(LocalHopType, SignAndParity) {
  EXPECT_EQ(local_hop_type(3, 6), LH::kOddPlus);    // 3->6: up, diff parity
  EXPECT_EQ(local_hop_type(6, 3), LH::kOddMinus);   // down, diff parity
  EXPECT_EQ(local_hop_type(1, 7), LH::kEvenPlus);   // up, same parity
  EXPECT_EQ(local_hop_type(5, 2), LH::kOddMinus);   // paper's odd example
  EXPECT_EQ(local_hop_type(7, 1), LH::kEvenMinus);  // down, same parity
  EXPECT_EQ(local_hop_type(0, 2), LH::kEvenPlus);
}

// The paper's Table I, verbatim (order odd-, even+, odd+, even-).
TEST(ParitySign, MatchesPaperTableI) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  const std::map<std::pair<LH, LH>, bool> expected = {
      {{LH::kOddMinus, LH::kEvenPlus}, true},
      {{LH::kOddMinus, LH::kEvenMinus}, true},
      {{LH::kOddMinus, LH::kOddPlus}, true},
      {{LH::kOddMinus, LH::kOddMinus}, true},
      {{LH::kEvenPlus, LH::kEvenPlus}, true},
      {{LH::kEvenPlus, LH::kEvenMinus}, true},
      {{LH::kEvenPlus, LH::kOddPlus}, true},
      {{LH::kEvenPlus, LH::kOddMinus}, false},
      {{LH::kOddPlus, LH::kEvenPlus}, false},
      {{LH::kOddPlus, LH::kEvenMinus}, true},
      {{LH::kOddPlus, LH::kOddPlus}, true},
      {{LH::kOddPlus, LH::kOddMinus}, false},
      {{LH::kEvenMinus, LH::kEvenPlus}, false},
      {{LH::kEvenMinus, LH::kEvenMinus}, true},
      {{LH::kEvenMinus, LH::kOddPlus}, false},
      {{LH::kEvenMinus, LH::kOddMinus}, false},
  };
  for (const auto& [combo, allowed] : expected) {
    EXPECT_EQ(r.combo_allowed(combo.first, combo.second), allowed)
        << to_string(combo.first) << " then " << to_string(combo.second);
  }
}

TEST(ParitySign, PaperFigure2Examples) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  // Combination 2 (5 -> 1 -> 0) is [even-, odd-]: forbidden.
  EXPECT_FALSE(r.hop_pair_allowed(5, 1, 0));
  // But 5 -> 2 -> 0 and 5 -> 4 -> 0 are [odd-, even-]... type check:
  EXPECT_TRUE(r.hop_pair_allowed(5, 2, 0));
  EXPECT_TRUE(r.hop_pair_allowed(5, 4, 0));
  // 5 -> 6 -> 0 is [odd+, even-]: allowed.
  EXPECT_TRUE(r.hop_pair_allowed(5, 6, 0));
  // Exactly h-1 = 3 two-hop routes from 5 to 0 in the h=4 example.
  EXPECT_EQ(r.allowed_intermediates(5, 0, 8).size(), 3u);
}

// Property over many group sizes: parity-sign guarantees at least h-1
// two-hop routes between every ordered pair (paper Sec. III-B).
class ParitySignSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParitySignSweep, AtLeastHMinusOneRoutes) {
  const int h = GetParam();
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  EXPECT_GE(r.min_two_hop_routes(2 * h), h - 1);
}

TEST_P(ParitySignSweep, MoreBalancedThanSignOnly) {
  const int h = GetParam();
  const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
  const LocalRouteRestriction so(RestrictionPolicy::kSignOnly);
  // Sign-only spreads from 0 to 2h-2 routes per pair; parity-sign keeps a
  // strictly smaller imbalance and never starves a pair.
  const int ps_spread =
      ps.max_two_hop_routes(2 * h) - ps.min_two_hop_routes(2 * h);
  const int so_spread =
      so.max_two_hop_routes(2 * h) - so.min_two_hop_routes(2 * h);
  EXPECT_LT(ps_spread, so_spread);
  EXPECT_GT(ps.min_two_hop_routes(2 * h), 0);
}

TEST_P(ParitySignSweep, SignOnlyIsUnbalanced) {
  const int h = GetParam();
  const LocalRouteRestriction r(RestrictionPolicy::kSignOnly);
  // The paper's motivating flaw: adjacent indices (0 -> 1) have no
  // allowed 2-hop route at all, while 0 -> 2h-1 has 2h-2.
  EXPECT_EQ(r.min_two_hop_routes(2 * h), 0);
  EXPECT_EQ(r.max_two_hop_routes(2 * h), 2 * h - 2);
  EXPECT_TRUE(r.allowed_intermediates(0, 1, 2 * h).empty());
  EXPECT_EQ(r.allowed_intermediates(0, 2 * h - 1, 2 * h).size(),
            static_cast<size_t>(2 * h - 2));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ParitySignSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(ParitySign, SameTypePairsAlwaysAllowed) {
  for (const auto policy :
       {RestrictionPolicy::kParitySign, RestrictionPolicy::kSignOnly}) {
    const LocalRouteRestriction r(policy);
    for (int t = 0; t < kNumHopTypes; ++t) {
      EXPECT_TRUE(
          r.combo_allowed(static_cast<LH>(t), static_cast<LH>(t)));
    }
  }
}

// Key invariant behind the deadlock-freedom proof: following any chain of
// allowed combos, the final link type can never equal the initial one.
TEST(ParitySign, ChainsNeverReturnToInitialType) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  // Build reachability over link types via allowed pairs, then check that
  // no type can reach itself through a nonempty chain that starts and
  // ends with the same type... Equivalent check: the "allowed" relation,
  // viewed as a digraph over the 4 types with self-loops removed, is
  // acyclic.
  bool reach[kNumHopTypes][kNumHopTypes] = {};
  for (int a = 0; a < kNumHopTypes; ++a) {
    for (int b = 0; b < kNumHopTypes; ++b) {
      if (a != b &&
          r.combo_allowed(static_cast<LH>(a), static_cast<LH>(b))) {
        reach[a][b] = true;
      }
    }
  }
  for (int k = 0; k < kNumHopTypes; ++k) {
    for (int a = 0; a < kNumHopTypes; ++a) {
      for (int b = 0; b < kNumHopTypes; ++b) {
        reach[a][b] = reach[a][b] || (reach[a][k] && reach[k][b]);
      }
    }
  }
  for (int a = 0; a < kNumHopTypes; ++a) {
    EXPECT_FALSE(reach[a][a]) << "type " << to_string(static_cast<LH>(a))
                              << " can cycle back to itself";
  }
}

// The marking algorithm is safe for EVERY processing order (the
// cross-type "allowed" relation is acyclic by construction), but the
// paper's h-1 route guarantee is a property of the order: exactly 8 of
// the 24 permutations achieve it — the paper's order among them. The
// others starve some pairs entirely, like sign-only does.
TEST(ParitySign, OrderControlsBalanceButNotSafety) {
  std::array<LH, 4> order = {LH::kOddMinus, LH::kEvenPlus, LH::kOddPlus,
                             LH::kEvenMinus};
  std::sort(order.begin(), order.end());
  int permutations = 0;
  int balanced = 0;
  do {
    const LocalRouteRestriction r(RestrictionPolicy::kParitySign, order);
    // Safety for every order: no type chain returns to its initial type.
    bool reach[kNumHopTypes][kNumHopTypes] = {};
    for (int a = 0; a < kNumHopTypes; ++a) {
      for (int b = 0; b < kNumHopTypes; ++b) {
        if (a != b && r.combo_allowed(static_cast<LH>(a), static_cast<LH>(b))) {
          reach[a][b] = true;
        }
      }
    }
    for (int k = 0; k < kNumHopTypes; ++k) {
      for (int a = 0; a < kNumHopTypes; ++a) {
        for (int b = 0; b < kNumHopTypes; ++b) {
          reach[a][b] = reach[a][b] || (reach[a][k] && reach[k][b]);
        }
      }
    }
    for (int a = 0; a < kNumHopTypes; ++a) EXPECT_FALSE(reach[a][a]);

    bool meets_guarantee = true;
    for (const int h : {2, 4, 8}) {
      if (r.min_two_hop_routes(2 * h) < h - 1) meets_guarantee = false;
    }
    if (meets_guarantee) ++balanced;
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 24);
  EXPECT_EQ(balanced, 8);
  // The paper's published order is one of the balanced ones.
  const LocalRouteRestriction paper(RestrictionPolicy::kParitySign);
  EXPECT_GE(paper.min_two_hop_routes(16), 7);  // h = 8
}

TEST(ParitySign, TableHas16Rows) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  const auto rows = r.table();
  EXPECT_EQ(rows.size(), 16u);
  int allowed = 0;
  for (const auto& row : rows) allowed += row.allowed ? 1 : 0;
  EXPECT_EQ(allowed, 10);  // paper Table I: 10 YES, 6 NO
}

TEST(ParitySign, NonePolicyAllowsEverything) {
  const LocalRouteRestriction r(RestrictionPolicy::kNone);
  for (int a = 0; a < kNumHopTypes; ++a) {
    for (int b = 0; b < kNumHopTypes; ++b) {
      EXPECT_TRUE(r.combo_allowed(static_cast<LH>(a), static_cast<LH>(b)));
    }
  }
  EXPECT_EQ(r.min_two_hop_routes(8), 6);  // all 2h-2 intermediates
}

}  // namespace
}  // namespace dfsim
