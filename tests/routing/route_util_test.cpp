// Phase resolution and minimal-hop computation shared by all mechanisms.
#include "routing/route_util.hpp"

#include <gtest/gtest.h>

namespace dfsim {
namespace {

Packet make_pkt(const DragonflyTopology& topo, NodeId src, NodeId dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.rs.dst_router = topo.router_of_terminal(dst);
  p.rs.dst_group = topo.group_of_terminal(dst);
  p.rs.src_group = topo.group_of_terminal(src);
  return p;
}

TEST(SteeringGroup, MinimalTargetsDestination) {
  RouteState rs;
  rs.dst_group = 7;
  EXPECT_EQ(steering_group(rs, 3), 7);
}

TEST(SteeringGroup, CommittedValiantTargetsIntermediateUntilGlobalHop) {
  RouteState rs;
  rs.dst_group = 7;
  rs.valiant = true;
  rs.inter_group = 4;
  rs.global_hops = 0;
  EXPECT_EQ(steering_group(rs, 3), 4);
  rs.global_hops = 1;
  EXPECT_EQ(steering_group(rs, 4), 7);
}

TEST(SteeringGroup, IntraGroupValiantLeavesHome) {
  // ADVL traffic detoured globally: source group == dst group, committed.
  RouteState rs;
  rs.dst_group = 3;
  rs.valiant = true;
  rs.inter_group = 9;
  rs.global_hops = 0;
  EXPECT_EQ(steering_group(rs, 3), 9);
}

TEST(MinimalHop, EjectsAtDestinationRouter) {
  const DragonflyTopology topo(2);
  const NodeId dst = 5;
  Packet p = make_pkt(topo, 0, dst);
  const Hop hop =
      minimal_hop_with(topo, p.rs.dst_router, p, 0, 0);
  EXPECT_EQ(topo.port_class(hop.port), PortClass::kTerminal);
  EXPECT_EQ(hop.port, topo.terminal_port(dst));
}

TEST(MinimalHop, IntraGroupIsOneLocalHop) {
  const DragonflyTopology topo(2);
  const NodeId src = 0;  // router 0, group 0
  const NodeId dst = topo.terminal_id(topo.router_id(0, 3), 0);
  Packet p = make_pkt(topo, src, dst);
  const Hop hop = minimal_hop_with(topo, 0, p, 1, 0);
  EXPECT_EQ(topo.port_class(hop.port), PortClass::kLocal);
  EXPECT_EQ(hop.vc, 1);
  const auto far = topo.remote_endpoint(0, hop.port);
  EXPECT_EQ(far.router, p.rs.dst_router);
}

TEST(MinimalHop, RemoteGroupGoesViaGateway) {
  const DragonflyTopology topo(3);
  const NodeId src = 0;
  const GroupId target_group = 5;
  const NodeId dst = topo.terminal_id(topo.router_id(target_group, 4), 1);
  Packet p = make_pkt(topo, src, dst);

  RouterId r = topo.router_of_terminal(src);
  const RouterId gw = topo.gateway_router(0, target_group);
  const Hop hop = minimal_hop_with(topo, r, p, 0, 0);
  if (r == gw) {
    EXPECT_EQ(topo.port_class(hop.port), PortClass::kGlobal);
  } else {
    EXPECT_EQ(topo.port_class(hop.port), PortClass::kLocal);
    EXPECT_EQ(topo.remote_endpoint(r, hop.port).router, gw);
    // And from the gateway the hop is global toward the target group.
    const Hop hop2 = minimal_hop_with(topo, gw, p, 0, 1);
    EXPECT_EQ(topo.port_class(hop2.port), PortClass::kGlobal);
    EXPECT_EQ(hop2.vc, 1);
    EXPECT_EQ(topo.group_of_router(topo.remote_endpoint(gw, hop2.port).router),
              target_group);
  }
}

TEST(MinimalClasses, MatchesPathDecomposition) {
  const DragonflyTopology topo(3);
  // Same router: nothing left.
  Packet p = make_pkt(topo, 0, 1);
  EXPECT_EQ(minimal_classes(topo, p.rs.dst_router, p.rs).count, 0);

  // Same group: one local.
  Packet q = make_pkt(topo, 0, topo.terminal_id(topo.router_id(0, 5), 0));
  const auto seq = minimal_classes(topo, 0, q.rs);
  ASSERT_EQ(seq.count, 1);
  EXPECT_EQ(seq.cls[0], PortClass::kLocal);

  // Remote group, generic position: l-g-l.
  Packet w = make_pkt(topo, 0, topo.terminal_id(topo.router_id(7, 0), 0));
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    if (topo.group_of_router(r) == 7 || r == w.rs.dst_router) continue;
    const auto s = minimal_classes(topo, r, w.rs);
    ASSERT_GE(s.count, 1);
    ASSERT_LE(s.count, 3);
    // The sequence always contains exactly one global hop unless we are
    // already in the destination group.
    int globals = 0;
    for (int i = 0; i < s.count; ++i) {
      if (s.cls[i] == PortClass::kGlobal) ++globals;
    }
    EXPECT_EQ(globals,
              topo.group_of_router(r) == 7 ? 0 : 1);
  }
}

TEST(MinimalClasses, HopCountMatchesTopologyMinHops) {
  const DragonflyTopology topo(2);
  Packet p = make_pkt(topo, 0, topo.num_terminals() - 1);
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    EXPECT_EQ(minimal_classes(topo, r, p.rs).count,
              topo.min_hops(r, p.rs.dst_router));
  }
}

}  // namespace
}  // namespace dfsim
