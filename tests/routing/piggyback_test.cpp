// Piggybacking's distributed-state model: the published table lags the
// real occupancancies by the broadcast period ("PB is slower sensing
// congestion"), saturation uses the worst VC, and decisions flip from
// minimal to Valiant when (and only when) the minimal signal saturates.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "routing/piggyback.hpp"
#include "sim/engine.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

TEST(Piggyback, PublishedStateStartsCold) {
  const DragonflyTopology topo(2);
  PiggybackRouting pb(topo, {});
  for (GroupId g = 0; g < topo.num_groups(); ++g) {
    for (int j = 0; j < 2 * topo.h() * topo.h(); ++j) {
      EXPECT_DOUBLE_EQ(pb.published(g, j), 0.0);
    }
  }
}

TEST(Piggyback, BroadcastLagsByPeriod) {
  const DragonflyTopology topo(2);
  PiggybackParams params;
  params.broadcast_period = 50;
  auto pattern = make_pattern(topo, "advg", 1, 0.0);
  PiggybackRouting pb(topo, params);
  InjectionProcess inj;
  inj.load = 0.8;
  EngineConfig ec;
  Engine engine(topo, ec, pb, *pattern, inj);

  // Run a few cycles: links congest but the table only refreshes on the
  // period boundary, so right before the first refresh it is still cold.
  for (Cycle t = 0; t < 49; ++t) engine.step();
  const int j = topo.global_link_to(0, 1);
  EXPECT_DOUBLE_EQ(pb.published(0, j), 0.0);
  // After the next boundary the saturated minimal link shows up.
  for (Cycle t = 0; t < 200; ++t) engine.step();
  EXPECT_GT(pb.published(0, j), 0.2);
}

TEST(Piggyback, AdvgFlipsTrafficToValiant) {
  const DragonflyTopology topo(2);
  auto pattern = make_pattern(topo, "advg", 1, 0.0);
  PiggybackRouting pb(topo, {});
  InjectionProcess inj;
  inj.load = 0.8;
  EngineConfig ec;
  Engine engine(topo, ec, pb, *pattern, inj);
  std::uint64_t valiant = 0;
  std::uint64_t total = 0;
  engine.set_delivery_hook([&](const Packet& pkt, Cycle) {
    ++total;
    if (pkt.rs.valiant) ++valiant;
  });
  engine.run_until(6000);
  ASSERT_GT(total, 200u);
  // Once the broadcast warms up, nearly all ADVG traffic detours.
  EXPECT_GT(static_cast<double>(valiant) / static_cast<double>(total), 0.6);
}

TEST(Piggyback, UniformLowLoadStaysMinimal) {
  const DragonflyTopology topo(2);
  auto pattern = make_pattern(topo, "uniform", 0, 0.0);
  PiggybackRouting pb(topo, {});
  InjectionProcess inj;
  inj.load = 0.15;
  EngineConfig ec;
  Engine engine(topo, ec, pb, *pattern, inj);
  std::uint64_t valiant = 0;
  std::uint64_t total = 0;
  engine.set_delivery_hook([&](const Packet& pkt, Cycle) {
    ++total;
    if (pkt.rs.valiant) ++valiant;
  });
  engine.run_until(6000);
  ASSERT_GT(total, 100u);
  EXPECT_LT(valiant, total / 20 + 2);
}

TEST(Piggyback, IntraGroupSaturationDetoursViaValiant) {
  // ADVL+1 saturates one local link; PB cannot misroute locally but its
  // implementation sends local traffic through a Valiant global detour
  // (paper Sec. IV-A), lifting throughput above the 1/h cap.
  const DragonflyTopology topo(2);
  auto pattern = make_pattern(topo, "advl", 1, 0.0);
  PiggybackRouting pb(topo, {});
  InjectionProcess inj;
  inj.load = 1.0;
  EngineConfig ec;
  Engine engine(topo, ec, pb, *pattern, inj);
  std::uint64_t valiant = 0;
  std::uint64_t total = 0;
  std::uint64_t phits = 0;
  engine.set_delivery_hook([&](const Packet& pkt, Cycle) {
    ++total;
    phits += static_cast<std::uint64_t>(pkt.size_phits);
    if (pkt.rs.valiant) ++valiant;
  });
  engine.run_until(8000);
  ASSERT_GT(total, 500u);
  EXPECT_GT(valiant, total / 3);
  const double accepted =
      static_cast<double>(phits) /
      (8000.0 * static_cast<double>(topo.num_terminals()));
  EXPECT_GT(accepted, 1.0 / topo.h() - 0.02);
}

}  // namespace
}  // namespace dfsim
