#include "analysis/route_census.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dfsim {
namespace {

TEST(RouteCensus, UnrestrictedIsPerfectlyBalanced) {
  const LocalRouteRestriction none(RestrictionPolicy::kNone);
  const RouteCensus census(8, none);
  // Every ordered pair has all 2h-2 = 6 intermediates.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i != j) EXPECT_EQ(census.routes()[i][j], 6);
    }
  }
  EXPECT_EQ(census.starved_pairs(), 0);
  EXPECT_EQ(census.max_link_load(), census.min_link_load());
}

TEST(RouteCensus, SignOnlyStarvesAdjacentPairs) {
  const LocalRouteRestriction so(RestrictionPolicy::kSignOnly);
  const RouteCensus census(8, so);
  EXPECT_GT(census.starved_pairs(), 0);
  EXPECT_EQ(census.routes()[0][1], 0);  // the paper's 0->1 example
  EXPECT_EQ(census.routes()[0][7], 6);  // while 0->7 keeps everything
}

TEST(RouteCensus, ParitySignNeverStarves) {
  for (const int h : {2, 3, 4, 8}) {
    const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
    const RouteCensus census(2 * h, ps);
    EXPECT_EQ(census.starved_pairs(), 0) << "h=" << h;
    const auto hist = census.pair_histogram();
    EXPECT_EQ(hist[0], 0) << "h=" << h;
  }
}

TEST(RouteCensus, ParitySignLinkLoadTighterThanSignOnly) {
  const RouteCensus ps(16, LocalRouteRestriction(RestrictionPolicy::kParitySign));
  const RouteCensus so(16, LocalRouteRestriction(RestrictionPolicy::kSignOnly));
  const int ps_spread = ps.max_link_load() - ps.min_link_load();
  const int so_spread = so.max_link_load() - so.min_link_load();
  EXPECT_LT(ps_spread, so_spread);
}

TEST(RouteCensus, HistogramCountsAllPairs) {
  const RouteCensus census(8, LocalRouteRestriction(RestrictionPolicy::kParitySign));
  const auto hist = census.pair_histogram();
  const int total = std::accumulate(hist.begin(), hist.end(), 0);
  EXPECT_EQ(total, 8 * 7);
}

TEST(RouteCensus, RouteCountsMatchRestrictionQueries) {
  const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
  const RouteCensus census(6, ps);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_EQ(census.routes()[i][j],
                static_cast<int>(ps.allowed_intermediates(i, j, 6).size()));
    }
  }
}

}  // namespace
}  // namespace dfsim
