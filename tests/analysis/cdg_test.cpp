#include "analysis/cdg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dfsim {
namespace {

// RLM's core claim, machine-checked: under the parity-sign restriction
// the intra-group channel dependency graph is ACYCLIC for every group
// size, so two local hops can share one VC without deadlock.
class CdgSweep : public ::testing::TestWithParam<int> {};

TEST_P(CdgSweep, ParitySignIsAcyclic) {
  const LocalRouteRestriction r(RestrictionPolicy::kParitySign);
  const LocalChannelDependencyGraph g(GetParam(), r);
  EXPECT_FALSE(g.has_cycle());
}

TEST_P(CdgSweep, SignOnlyIsAcyclicToo) {
  // Sign-only also breaks cycles (its flaw is imbalance, not deadlock).
  const LocalRouteRestriction r(RestrictionPolicy::kSignOnly);
  const LocalChannelDependencyGraph g(GetParam(), r);
  EXPECT_FALSE(g.has_cycle());
}

TEST_P(CdgSweep, UnrestrictedHasCycles) {
  const LocalRouteRestriction r(RestrictionPolicy::kNone);
  const LocalChannelDependencyGraph g(GetParam(), r);
  EXPECT_TRUE(g.has_cycle());
  const auto cycle = g.find_cycle();
  EXPECT_GE(cycle.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CdgSweep,
                         ::testing::Values(4, 6, 8, 12, 16, 32));

TEST(Cdg, ChannelIdsAreDense) {
  const LocalRouteRestriction r(RestrictionPolicy::kNone);
  const LocalChannelDependencyGraph g(4, r);
  EXPECT_EQ(g.num_channels(), 12);
  std::vector<bool> seen(12, false);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const int id = g.channel_id(i, j);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, 12);
      EXPECT_FALSE(seen[static_cast<size_t>(id)]);
      seen[static_cast<size_t>(id)] = true;
    }
  }
}

// The Fig. 2 cycle: routes (0 via 5 to 1), (5 via 1 to 0), (1 via 0 to 5)
// chain channel dependencies 0->5 -> 5->1 -> 1->0 -> 0->5. Unrestricted
// misrouting admits all three 2-hop routes; parity-sign breaks the loop.
TEST(Cdg, PaperFigure2CycleIsBroken) {
  const LocalRouteRestriction none(RestrictionPolicy::kNone);
  EXPECT_TRUE(none.hop_pair_allowed(0, 5, 1));
  EXPECT_TRUE(none.hop_pair_allowed(5, 1, 0));
  EXPECT_TRUE(none.hop_pair_allowed(1, 0, 5));

  const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
  const bool all_three = ps.hop_pair_allowed(0, 5, 1) &&
                         ps.hop_pair_allowed(5, 1, 0) &&
                         ps.hop_pair_allowed(1, 0, 5);
  EXPECT_FALSE(all_three);
  // Specifically combination 2 (5 -> 1 -> 0, [even-, odd-]) is the one
  // Table I forbids.
  EXPECT_FALSE(ps.hop_pair_allowed(5, 1, 0));
}

TEST(Cdg, AdjacencyRespectsRestriction) {
  const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
  const LocalChannelDependencyGraph g(8, ps);
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 8; ++k) {
      if (k == i) continue;
      const auto& deps =
          g.adjacency()[static_cast<size_t>(g.channel_id(i, k))];
      for (int j = 0; j < 8; ++j) {
        if (j == i || j == k) continue;
        const bool edge =
            std::find(deps.begin(), deps.end(), g.channel_id(k, j)) !=
            deps.end();
        EXPECT_EQ(edge, ps.hop_pair_allowed(i, k, j));
      }
    }
  }
}

}  // namespace
}  // namespace dfsim
