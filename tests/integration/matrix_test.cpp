// Robustness matrix: every mechanism x traffic pattern x flow-control
// combination the library supports must deliver traffic, stay deadlock
// free, and respect the paper's hop budgets. This is the compatibility
// contract a downstream user relies on.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "api/simulator.hpp"

namespace dfsim {
namespace {

using Combo = std::tuple<const char*, const char*, FlowControl>;

class Matrix : public ::testing::TestWithParam<Combo> {};

TEST_P(Matrix, DeliversWithoutDeadlock) {
  const auto& [routing, pattern, flow] = GetParam();
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = routing;
  cfg.pattern = pattern;
  cfg.pattern_offset = 1;
  cfg.global_fraction = 0.5;
  cfg.flow = flow;
  if (flow == FlowControl::kWormhole) {
    cfg.packet_phits = 80;
    cfg.flit_phits = 10;
  }
  cfg.load = 0.35;
  cfg.warmup_cycles = 1500;
  cfg.measure_cycles = 4000;
  cfg.watchdog_cycles = 8000;

  const SteadyResult r = run_steady(cfg);
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.delivered, 50u);
  EXPECT_GT(r.accepted_load, 0.05);
  EXPECT_LE(r.avg_hops, 8.0);
  EXPECT_GT(r.avg_latency, 0.0);
}

constexpr const char* kVctRoutings[] = {"minimal", "valiant", "pb",
                                        "ugal", "par-6/2", "rlm", "olm"};
constexpr const char* kWhRoutings[] = {"minimal", "valiant", "pb",
                                       "ugal", "par-6/2", "rlm"};
constexpr const char* kPatterns[] = {"uniform", "advg", "advl",
                                     "mixed", "shift", "hotspot"};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s = std::get<0>(info.param);
  s += "_";
  s += std::get<1>(info.param);
  s += std::get<2>(info.param) == FlowControl::kWormhole ? "_wh" : "_vct";
  for (char& c : s) {
    if (c == '-' || c == '/') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Vct, Matrix,
    ::testing::Combine(::testing::ValuesIn(kVctRoutings),
                       ::testing::ValuesIn(kPatterns),
                       ::testing::Values(FlowControl::kVirtualCutThrough)),
    combo_name);

INSTANTIATE_TEST_SUITE_P(
    Wormhole, Matrix,
    ::testing::Combine(::testing::ValuesIn(kWhRoutings),
                       ::testing::ValuesIn(kPatterns),
                       ::testing::Values(FlowControl::kWormhole)),
    combo_name);

}  // namespace
}  // namespace dfsim
