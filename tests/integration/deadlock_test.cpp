// The paper's safety claims, demonstrated dynamically: local misrouting
// at 3/2 VCs deadlocks WITHOUT the parity-sign restriction (or OLM's
// escape discipline), and never with them.
#include <gtest/gtest.h>

#include "api/simulator.hpp"

namespace dfsim {
namespace {

SimConfig stress(const char* routing) {
  SimConfig cfg;
  cfg.h = 3;
  cfg.routing = routing;
  cfg.pattern = "advl";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  cfg.misroute_threshold = 0.9;  // misroute aggressively
  cfg.local_buf_phits = 16;      // tight buffers -> cycles close fast
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 12000;
  cfg.watchdog_cycles = 3000;
  cfg.seed = 5;
  return cfg;
}

TEST(Deadlock, UnrestrictedLocalMisroutingDeadlocks) {
  const SteadyResult r = run_steady(stress("rlm-unrestricted"));
  EXPECT_TRUE(r.deadlock);
  // Cyclic waits strangle the network: accepted load collapses to a
  // fraction of even the no-misrouting 1/h bound.
  EXPECT_LT(r.accepted_load, 0.1);
}

TEST(Deadlock, ParitySignRestrictionPreventsIt) {
  const SteadyResult r = run_steady(stress("rlm"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

TEST(Deadlock, OlmEscapePathsPreventIt) {
  const SteadyResult r = run_steady(stress("olm"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

TEST(Deadlock, Par62DistanceClassesPreventIt) {
  const SteadyResult r = run_steady(stress("par-6/2"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

// Sign-only is cycle-free combinatorially (the CDG tests prove it), and
// indeed it does NOT collapse like the unrestricted variant — but its
// unbalanced route set starves individual flows under extreme stress
// (the head-age watchdog eventually fires even though throughput stays
// healthy). This liveness pathology is exactly why the paper discards
// sign-only for parity-sign; the test pins the observed behaviour.
TEST(Deadlock, SignOnlyKeepsThroughputButStarvesFlows) {
  const SteadyResult r = run_steady(stress("rlm-signonly"));
  EXPECT_GT(r.accepted_load, 0.3);  // far from the unrestricted collapse
}

// Deadlock freedom must hold across seeds, not by luck of one schedule.
class DeadlockSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockSeedSweep, SafeMechanismsStaySafe) {
  for (const char* routing : {"rlm", "olm"}) {
    SimConfig cfg = stress(routing);
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    cfg.measure_cycles = 6000;
    const SteadyResult r = run_steady(cfg);
    EXPECT_FALSE(r.deadlock) << routing << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlockSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dfsim
