// The paper's safety claims, demonstrated dynamically: local misrouting
// at 3/2 VCs deadlocks WITHOUT the parity-sign restriction (or OLM's
// escape discipline), and never with them.
#include <gtest/gtest.h>

#include "api/simulator.hpp"
#include "test_util.hpp"

namespace dfsim {
namespace {

SimConfig stress(const char* routing) {
  SimConfig cfg;
  cfg.h = 3;
  cfg.routing = routing;
  cfg.pattern = "advl";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  cfg.misroute_threshold = 0.9;  // misroute aggressively
  cfg.local_buf_phits = 16;      // tight buffers -> cycles close fast
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 12000;
  cfg.watchdog_cycles = 3000;
  cfg.seed = 5;
  return cfg;
}

TEST(Deadlock, UnrestrictedLocalMisroutingDeadlocks) {
  const SteadyResult r = run_steady(stress("rlm-unrestricted"));
  EXPECT_TRUE(r.deadlock);
  // Cyclic waits strangle the network: accepted load collapses to a
  // fraction of even the no-misrouting 1/h bound.
  EXPECT_LT(r.accepted_load, 0.1);
}

TEST(Deadlock, ParitySignRestrictionPreventsIt) {
  const SteadyResult r = run_steady(stress("rlm"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

TEST(Deadlock, OlmEscapePathsPreventIt) {
  const SteadyResult r = run_steady(stress("olm"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

TEST(Deadlock, Par62DistanceClassesPreventIt) {
  const SteadyResult r = run_steady(stress("par-6/2"));
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.accepted_load, 0.4);
}

// Sign-only is cycle-free combinatorially (the CDG tests prove it), and
// indeed it does NOT collapse like the unrestricted variant — but its
// unbalanced route set starves individual flows under extreme stress
// (the head-age watchdog eventually fires even though throughput stays
// healthy). This liveness pathology is exactly why the paper discards
// sign-only for parity-sign; the test pins the observed behaviour.
TEST(Deadlock, SignOnlyKeepsThroughputButStarvesFlows) {
  const SteadyResult r = run_steady(stress("rlm-signonly"));
  EXPECT_GT(r.accepted_load, 0.3);  // far from the unrestricted collapse
}

// Deadlock freedom must hold across seeds, not by luck of one schedule.
class DeadlockSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockSeedSweep, SafeMechanismsStaySafe) {
  for (const char* routing : {"rlm", "olm"}) {
    SimConfig cfg = stress(routing);
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    cfg.measure_cycles = 6000;
    const SteadyResult r = run_steady(cfg);
    EXPECT_FALSE(r.deadlock) << routing << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlockSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// The deadlock-freedom arguments (VC ladders, parity-sign restriction,
// OLM escape paths) nowhere rely on the balanced shape, so they must
// survive the palmtree arrangement and unbalanced (p ≠ h, g < a*h + 1)
// wiring, for EVERY mechanism, under both adversarial stress patterns.
//
// Loads sit inside every mechanism's minimal-path envelope (ADVL cap is
// 1/p without misrouting, ADVG cap 1/(a*p)) and the watchdog horizon is
// 10k cycles inside a 14k-cycle run: at these operating points a head
// waiting that long can only be a true cyclic dependency, never the
// overload-starvation tail the sign-only test above documents.
using ::dfsim::testing::kAllMechanisms;

SimConfig off_balance(const char* routing, const char* pattern, double load,
                      bool unbalanced) {
  SimConfig cfg = stress(routing);
  cfg.pattern = pattern;
  cfg.load = load;
  cfg.measure_cycles = 12000;
  cfg.watchdog_cycles = 10000;
  if (unbalanced) {
    cfg.p = 2;
    cfg.a = 6;
    cfg.g = 8;  // h stays 3: p != h, g < a*h + 1 = 19
  } else {
    cfg.arrangement = GlobalArrangement::kPalmtree;
  }
  return cfg;
}

class OffBalanceSweep : public ::testing::TestWithParam<bool> {};

TEST_P(OffBalanceSweep, AllMechanismsStaySafe) {
  const bool unbalanced = GetParam();
  for (const char* pattern : {"advl", "advg"}) {
    const double load = pattern[3] == 'l' ? 0.25 : 0.04;
    for (const char* routing : kAllMechanisms) {
      const SteadyResult r =
          run_steady(off_balance(routing, pattern, load, unbalanced));
      EXPECT_FALSE(r.deadlock) << routing << " on " << pattern;
      EXPECT_GT(r.delivered, 0u) << routing << " on " << pattern;
    }
  }
}

// The misrouting mechanisms must additionally survive the full-overload
// ADVL stress (the balanced tests above) on the generalized wiring.
TEST_P(OffBalanceSweep, SafeMisroutersSurviveFullStress) {
  const bool unbalanced = GetParam();
  for (const char* routing : {"rlm", "olm", "par-6/2"}) {
    const SteadyResult r =
        run_steady(off_balance(routing, "advl", 1.0, unbalanced));
    EXPECT_FALSE(r.deadlock) << routing;
    EXPECT_GT(r.accepted_load, 0.4) << routing;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OffBalanceSweep, ::testing::Values(false, true),
    [](const auto& info) {
      return info.param ? std::string("unbalanced_p2a6h3g8")
                        : std::string("palmtree_h3");
    });

// Degraded networks must not manufacture deadlock: with a few failed
// global links (sampled; never the last link of a pair) the safe
// mechanisms still drain adversarial stress on both off-balance shapes.
// Loads sit inside the minimal-path envelope, as above, so a watchdog
// firing could only be a genuine cyclic wait introduced by the fault
// handling (e.g. a candidate filter breaking a VC ladder).
TEST_P(OffBalanceSweep, FaultedSafeMechanismsStaySafe) {
  const bool unbalanced = GetParam();
  for (const char* pattern : {"advl", "advg"}) {
    const double load = pattern[3] == 'l' ? 0.25 : 0.04;
    for (const char* routing : {"rlm", "olm", "par-6/2", "pb"}) {
      SimConfig cfg = off_balance(routing, pattern, load, unbalanced);
      if (unbalanced) {
        cfg.fault_fraction = 0.15;  // p2a6h3g8 has trunked spares to kill
        cfg.fault_seed = 11;
      } else {
        // Balanced palmtree h=3 wires one link per pair; the survivable
        // whole-router fault is an entire dead group (see the invariants
        // suite): kill group 9, routers 54..59.
        cfg.fault_spec = "r:54,r:55,r:56,r:57,r:58,r:59";
      }
      const SteadyResult r = run_steady(cfg);
      EXPECT_FALSE(r.deadlock)
          << routing << " on " << pattern << " with faults";
      EXPECT_GT(r.delivered, 0u) << routing << " on " << pattern;
    }
  }
}

TEST(Deadlock, UnbalancedPalmtreeUnrestrictedStillDeadlocks) {
  // The generalized wiring must not accidentally *hide* the pathology:
  // unrestricted local misrouting still closes cycles and wedges for
  // good (seed chosen to form the cycle; it survives a 10k-cycle
  // watchdog, unlike any starvation artifact).
  SimConfig cfg = stress("rlm-unrestricted");
  cfg.p = 2;
  cfg.a = 6;
  cfg.g = 8;
  cfg.arrangement = GlobalArrangement::kPalmtree;
  cfg.measure_cycles = 16000;
  cfg.watchdog_cycles = 10000;
  cfg.seed = 4;
  const SteadyResult r = run_steady(cfg);
  EXPECT_TRUE(r.deadlock);
}

}  // namespace
}  // namespace dfsim
