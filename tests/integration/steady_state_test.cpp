// End-to-end behavioural checks through the public API: throughput caps
// the paper derives analytically, mechanism orderings the paper reports,
// deadlock freedom under stress for the safe mechanisms.
#include <gtest/gtest.h>

#include "api/simulator.hpp"

namespace dfsim {
namespace {

SimConfig quick(int h = 2) {
  SimConfig cfg;
  cfg.h = h;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 5000;
  cfg.seed = 77;
  return cfg;
}

TEST(Steady, UniformLowLoadDeliversAtOfferedRate) {
  for (const char* routing : {"minimal", "olm", "rlm", "pb"}) {
    SimConfig cfg = quick();
    cfg.routing = routing;
    cfg.pattern = "uniform";
    cfg.load = 0.2;
    const SteadyResult r = run_steady(cfg);
    EXPECT_FALSE(r.deadlock) << routing;
    EXPECT_NEAR(r.accepted_load, 0.2, 0.03) << routing;
    EXPECT_GT(r.avg_latency, 100.0) << routing;  // >= wire latencies
    EXPECT_LT(r.avg_latency, 400.0) << routing;
  }
}

TEST(Steady, MinimalThroughputCollapsesUnderAdvg) {
  // One global link between the two groups: cap = 1/(2h^2+1) with h=2
  // (~0.111 phits/node/cycle), paper Sec. II.
  SimConfig cfg = quick();
  cfg.routing = "minimal";
  cfg.pattern = "advg";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  const SteadyResult r = run_steady(cfg);
  EXPECT_FALSE(r.deadlock);
  EXPECT_LT(r.accepted_load, 1.0 / 9.0 + 0.03);
}

TEST(Steady, ValiantBeatsMinimalUnderAdvg) {
  SimConfig base = quick();
  base.pattern = "advg";
  base.pattern_offset = 1;
  base.load = 0.5;

  SimConfig min_cfg = base;
  min_cfg.routing = "minimal";
  SimConfig val_cfg = base;
  val_cfg.routing = "valiant";

  const SteadyResult rm = run_steady(min_cfg);
  const SteadyResult rv = run_steady(val_cfg);
  EXPECT_GT(rv.accepted_load, rm.accepted_load * 1.5);
}

TEST(Steady, MinimalBeatsValiantUnderUniform) {
  SimConfig base = quick();
  base.pattern = "uniform";
  base.load = 0.7;

  SimConfig min_cfg = base;
  min_cfg.routing = "minimal";
  SimConfig val_cfg = base;
  val_cfg.routing = "valiant";

  const SteadyResult rm = run_steady(min_cfg);
  const SteadyResult rv = run_steady(val_cfg);
  EXPECT_GT(rm.accepted_load, rv.accepted_load);
}

TEST(Steady, LocalMisroutingLiftsAdvlThroughput) {
  // ADVL+1 caps at 1/h without local misrouting (paper Sec. II); OLM and
  // RLM must clearly beat that bound, PB must not reach it minimally
  // (it can only detour via Valiant global paths).
  SimConfig base = quick(2);
  base.pattern = "advl";
  base.pattern_offset = 1;
  base.load = 1.0;

  SimConfig olm_cfg = base;
  olm_cfg.routing = "olm";
  const SteadyResult rolm = run_steady(olm_cfg);
  EXPECT_FALSE(rolm.deadlock);
  EXPECT_GT(rolm.accepted_load, 1.0 / 2.0 + 0.05);  // well above 1/h = 0.5

  SimConfig rlm_cfg = base;
  rlm_cfg.routing = "rlm";
  const SteadyResult rrlm = run_steady(rlm_cfg);
  EXPECT_FALSE(rrlm.deadlock);
  EXPECT_GT(rrlm.accepted_load, 1.0 / 2.0);

  SimConfig min_cfg = base;
  min_cfg.routing = "minimal";
  const SteadyResult rmin = run_steady(min_cfg);
  EXPECT_LT(rmin.accepted_load, 1.0 / 2.0 + 0.03);  // pinned at the cap
}

TEST(Steady, AdaptivesSurviveAdversarialStressWithoutDeadlock) {
  for (const char* routing : {"par-6/2", "rlm", "olm"}) {
    for (const char* pattern : {"advg", "advl", "mixed"}) {
      SimConfig cfg = quick(2);
      cfg.routing = routing;
      cfg.pattern = pattern;
      cfg.pattern_offset = pattern == std::string("advg") ? 2 : 1;
      cfg.global_fraction = 0.5;
      cfg.load = 1.0;
      cfg.watchdog_cycles = 4000;
      const SteadyResult r = run_steady(cfg);
      EXPECT_FALSE(r.deadlock) << routing << "/" << pattern;
      EXPECT_GT(r.accepted_load, 0.05) << routing << "/" << pattern;
    }
  }
}

TEST(Steady, WormholeRunsForWormholeCapableMechanisms) {
  for (const char* routing : {"minimal", "valiant", "pb", "par-6/2", "rlm"}) {
    SimConfig cfg = quick(2);
    cfg.flow = FlowControl::kWormhole;
    cfg.packet_phits = 80;
    cfg.flit_phits = 10;
    cfg.routing = routing;
    cfg.pattern = "uniform";
    cfg.load = 0.2;
    const SteadyResult r = run_steady(cfg);
    EXPECT_FALSE(r.deadlock) << routing;
    EXPECT_GT(r.delivered, 100u) << routing;
    EXPECT_NEAR(r.accepted_load, 0.2, 0.04) << routing;
  }
}

TEST(Steady, HigherLoadNeverLowersAcceptedLoadMuch) {
  // Accepted load should be monotone (within noise) in offered load.
  double prev = 0.0;
  for (const double load : {0.1, 0.3, 0.5}) {
    SimConfig cfg = quick();
    cfg.routing = "olm";
    cfg.load = load;
    const SteadyResult r = run_steady(cfg);
    EXPECT_GT(r.accepted_load, prev - 0.02);
    prev = r.accepted_load;
  }
}

TEST(Burst, DrainsCompletelyAndFasterWithMisrouting) {
  SimConfig base = quick(2);
  base.pattern = "mixed";
  base.global_fraction = 0.5;
  base.burst_packets = 30;
  base.max_cycles = 400000;

  SimConfig olm_cfg = base;
  olm_cfg.routing = "olm";
  const BurstResult rolm = run_burst(olm_cfg);
  EXPECT_TRUE(rolm.completed);
  EXPECT_FALSE(rolm.deadlock);

  SimConfig pb_cfg = base;
  pb_cfg.routing = "pb";
  const BurstResult rpb = run_burst(pb_cfg);
  EXPECT_TRUE(rpb.completed);

  // The paper's Fig. 6b: adaptive in-transit mechanisms drain bursts much
  // faster than PB.
  EXPECT_LT(rolm.consumption_cycles, rpb.consumption_cycles);
}

TEST(Steady, ThresholdZeroDisablesMisrouting) {
  SimConfig cfg = quick();
  cfg.routing = "olm";
  cfg.pattern = "advg";
  cfg.pattern_offset = 1;
  cfg.load = 0.5;
  cfg.misroute_threshold = 0.0;
  const SteadyResult r = run_steady(cfg);
  // Without misrouting OLM degenerates to minimal: capped by the single
  // global link.
  EXPECT_LT(r.accepted_load, 1.0 / 9.0 + 0.03);
}

TEST(Steady, DeterministicForEqualSeeds) {
  SimConfig cfg = quick();
  cfg.routing = "rlm";
  cfg.load = 0.4;
  const SteadyResult a = run_steady(cfg);
  const SteadyResult b = run_steady(cfg);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.accepted_load, b.accepted_load);
  cfg.seed = 78;
  const SteadyResult c = run_steady(cfg);
  EXPECT_NE(a.avg_latency, c.avg_latency);
}

}  // namespace
}  // namespace dfsim
