// The contract of the parallel sweep runtime: worker count changes
// wall-clock, never results. 1 worker and N workers must produce the same
// ExperimentResult vector — same seeds, same ordering, bit-identical
// metrics — and the primitives underneath (parallel_for, the sharded
// queue, seed derivation) must be deterministic and complete.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <vector>

#include "api/config.hpp"
#include "api/sweep.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed.hpp"
#include "runtime/work_queue.hpp"

namespace dfsim {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.h = 2;  // 9 groups, 36 routers — seconds, not minutes
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 600;
  cfg.seed = 42;
  return cfg;
}

void expect_same_points(const std::vector<ExperimentResult>& a,
                        const std::vector<ExperimentResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].series, b[i].series);
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].steady.avg_latency, b[i].steady.avg_latency);
    EXPECT_EQ(a[i].steady.p99_latency, b[i].steady.p99_latency);
    EXPECT_EQ(a[i].steady.accepted_load, b[i].steady.accepted_load);
    EXPECT_EQ(a[i].steady.avg_hops, b[i].steady.avg_hops);
    EXPECT_EQ(a[i].steady.delivered, b[i].steady.delivered);
    EXPECT_EQ(a[i].steady.deadlock, b[i].steady.deadlock);
  }
}

TEST(ParallelSweepTest, OneWorkerAndManyWorkersBitIdentical) {
  const SimConfig base = tiny_config();
  const std::vector<std::string> routings = {"minimal", "olm"};
  const std::vector<double> loads = {0.1, 0.3};

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;

  const auto grid = sweep_grid(base, routings, loads);
  const auto a = run_experiments(grid, serial);
  const auto b = run_experiments(grid, parallel);
  ASSERT_EQ(a.size(), routings.size() * loads.size());
  expect_same_points(a, b);
}

TEST(ParallelSweepTest, OrderingIsRoutingsMajorLoadsMinor) {
  const SimConfig base = tiny_config();
  SweepOptions opts;
  opts.jobs = 3;
  const auto points =
      run_experiments(sweep_grid(base, {"minimal", "olm"}, {0.1, 0.2}), opts);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].series, "minimal");
  EXPECT_EQ(points[0].x, 0.1);
  EXPECT_EQ(points[1].series, "minimal");
  EXPECT_EQ(points[1].x, 0.2);
  EXPECT_EQ(points[2].series, "olm");
  EXPECT_EQ(points[2].x, 0.1);
  EXPECT_EQ(points[3].series, "olm");
  EXPECT_EQ(points[3].x, 0.2);
}

TEST(ParallelSweepTest, GenericJobGridPreservesOrderAndDerivesSeeds) {
  const SimConfig base = tiny_config();
  std::vector<ExperimentPoint> grid;
  for (const double th : {0.3, 0.6}) {
    ExperimentPoint pt;
    pt.series = "th";
    pt.x = th;
    pt.cfg = base;
    pt.cfg.routing = "rlm";
    pt.cfg.misroute_threshold = th;
    pt.cfg.load = 0.2;
    grid.push_back(pt);
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 2;
  const auto a = run_experiments(grid, serial);
  const auto b = run_experiments(grid, parallel);
  expect_same_points(a, b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].seed, runtime::derive_seed(base.seed, 0));
  EXPECT_EQ(a[1].seed, runtime::derive_seed(base.seed, 1));
  EXPECT_NE(a[0].seed, a[1].seed);
}

TEST(ParallelSweepTest, DeriveSeedsOffKeepsConfigSeed) {
  const SimConfig base = tiny_config();
  SweepOptions opts;
  opts.jobs = 1;
  opts.derive_seeds = false;
  const auto points =
      run_experiments(sweep_grid(base, {"minimal"}, {0.1, 0.2}), opts);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].seed, base.seed);
  EXPECT_EQ(points[1].seed, base.seed);
}

TEST(DeriveSeedTest, DeterministicAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      const std::uint64_t s = runtime::derive_seed(base, i);
      EXPECT_EQ(s, runtime::derive_seed(base, i));
      seen.insert(s);
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across bases/indices
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(kN, 8,
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(
      runtime::parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

TEST(ParallelForTest, ParallelMapIsOrdered) {
  const auto out = runtime::parallel_map<std::size_t>(
      257, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ShardedIndexQueueTest, ShardsPartitionTheRange) {
  runtime::ShardedIndexQueue queue(103, 8);
  std::vector<bool> covered(103, false);
  std::size_t begin = 0, end = 0;
  while (queue.next(begin, end)) {
    ASSERT_LE(end, covered.size());
    for (std::size_t i = begin; i < end; ++i) {
      ASSERT_FALSE(covered[i]) << "index " << i << " claimed twice";
      covered[i] = true;
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    ASSERT_TRUE(covered[i]) << "index " << i << " never claimed";
  }
}

TEST(ResolveJobsTest, ExplicitRequestWinsOverDefault) {
  runtime::set_default_jobs(3);
  EXPECT_EQ(runtime::resolve_jobs(5), 5);
  EXPECT_EQ(runtime::resolve_jobs(0), 3);
  runtime::set_default_jobs(0);  // back to auto
  EXPECT_GE(runtime::resolve_jobs(0), 1);
}

}  // namespace
}  // namespace dfsim
