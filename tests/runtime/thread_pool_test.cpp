// The ThreadPool primitive under the parallel sweep runtime. These
// suites (with parallel_sweep_test) are what the tsan CI job runs: the
// pool and the sharded queue are the only concurrent code in the tree.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace dfsim::runtime {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  }
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WaitIdleSeparatesPhases) {
  // One pool serving several sweep phases in sequence: tasks of phase 2
  // must observe everything phase 1 wrote (wait_idle is the barrier).
  ThreadPool pool(3);
  std::atomic<int> phase1{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&phase1] { phase1++; });
  }
  pool.wait_idle();
  ASSERT_EQ(phase1.load(), 64);

  std::atomic<bool> phase2_saw_phase1{true};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      if (phase1.load() != 64) phase2_saw_phase1 = false;
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(phase2_saw_phase1.load());
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran++; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran++; });
    }
    // No wait_idle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &ran] {
      ran++;
      pool.submit([&ran] { ran++; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace dfsim::runtime
