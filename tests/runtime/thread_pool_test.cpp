// The ThreadPool primitive under the parallel sweep runtime. These
// suites (with parallel_sweep_test) are what the tsan CI job runs: the
// pool and the sharded queue are the only concurrent code in the tree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace dfsim::runtime {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  }
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WaitIdleSeparatesPhases) {
  // One pool serving several sweep phases in sequence: tasks of phase 2
  // must observe everything phase 1 wrote (wait_idle is the barrier).
  ThreadPool pool(3);
  std::atomic<int> phase1{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&phase1] { phase1++; });
  }
  pool.wait_idle();
  ASSERT_EQ(phase1.load(), 64);

  std::atomic<bool> phase2_saw_phase1{true};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      if (phase1.load() != 64) phase2_saw_phase1 = false;
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(phase2_saw_phase1.load());
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran++; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran++; });
    }
    // No wait_idle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &ran] {
      ran++;
      pool.submit([&ran] { ran++; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
}

// --- BarrierTeam ---------------------------------------------------------

TEST(BarrierTeamTest, EveryWorkerIndexRunsOncePerRound) {
  constexpr int kWorkers = 4;
  constexpr int kRounds = 200;
  std::vector<std::atomic<int>> hits(kWorkers);
  BarrierTeam team(kWorkers, [&hits](int w) {
    hits[static_cast<std::size_t>(w)]++;
  });
  ASSERT_EQ(team.size(), kWorkers);
  for (int r = 0; r < kRounds; ++r) {
    team.run();
    // run() returning IS the barrier: every index must have fired in the
    // round just closed, none twice.
    for (int w = 0; w < kWorkers; ++w) {
      ASSERT_EQ(hits[static_cast<std::size_t>(w)].load(), r + 1)
          << "worker " << w << " round " << r;
    }
  }
}

TEST(BarrierTeamTest, HandoffPublishesPlainWritesBothWays) {
  // The documented contract: the caller's pre-run() writes are visible
  // to every worker, and every worker's writes are visible to the caller
  // when run() returns — with PLAIN (non-atomic) variables, exactly how
  // the sharded engine hands its state arrays across phases. A missed
  // release/acquire edge trips tsan and these checks both.
  constexpr int kWorkers = 3;
  std::vector<std::uint64_t> cells(kWorkers, 0);  // plain, not atomic
  std::uint64_t round = 0;                        // plain, caller-owned
  std::atomic<bool> ok{true};
  BarrierTeam team(kWorkers, [&](int w) {
    // Reads the caller's `round` store; writes only this worker's cell.
    cells[static_cast<std::size_t>(w)] = round + 1;
  });
  for (round = 0; round < 500; ++round) {
    team.run();
    for (int w = 0; w < kWorkers; ++w) {
      if (cells[static_cast<std::size_t>(w)] != round + 1) ok = false;
    }
  }
  EXPECT_TRUE(ok.load());
}

TEST(BarrierTeamTest, SingleWorkerRunsInline) {
  int ran = 0;
  BarrierTeam team(1, [&ran](int w) {
    EXPECT_EQ(w, 0);
    ++ran;
  });
  EXPECT_EQ(team.size(), 1);
  team.run();
  team.run();
  EXPECT_EQ(ran, 2);
}

TEST(BarrierTeamTest, ZeroSpinBudgetParksAndStillCompletes) {
  // spin_budget = 0 forces the futex path on every round — the slow edge
  // where lost-wakeup bugs live. Hammer it.
  std::atomic<int> ran{0};
  BarrierTeam team(4, [&ran](int) { ran++; }, /*spin_budget=*/0);
  EXPECT_EQ(team.spin_budget(), 0);
  for (int r = 0; r < 300; ++r) team.run();
  EXPECT_EQ(ran.load(), 4 * 300);
}

}  // namespace
}  // namespace dfsim::runtime
