// The BENCH_sweep.json appender: JSON string escaping of bench names (a
// manifest named with quotes or backslashes must not make the ledger
// unparsable forever) and the grown-array shape across appends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bench_json.hpp"

namespace dfsim {
namespace {

namespace fs = std::filesystem;

class TempBenchFile {
 public:
  TempBenchFile()
      : path_((fs::temp_directory_path() /
               ("dfsim_bench_json_" + std::to_string(::getpid()) + ".json"))
                  .string()) {
    fs::remove(path_);
  }
  ~TempBenchFile() { fs::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain-name_1.2"), "plain-name_1.2");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(BenchJson, QuotedBenchNameStaysParsable) {
  // Regression: append_bench_record used to splice the raw name between
  // quotes, so manifest:we"ird broke the array for every later append.
  TempBenchFile file;
  append_bench_record("manifest:we\"ird\\name", 1.5, 2, file.str());
  const std::string body = slurp(file.str());
  EXPECT_NE(body.find("\"manifest:we\\\"ird\\\\name\""), std::string::npos)
      << body;

  // The appender itself must still recognize the file as its own array
  // and grow it — an unescaped name would have poisoned it for good.
  append_bench_record("plain", 2.0, 1, file.str());
  const std::string grown = slurp(file.str());
  EXPECT_EQ(grown.front(), '[');
  EXPECT_EQ(grown.substr(grown.size() - 2), "]\n");
  EXPECT_EQ(count(grown, "\"bench\""), 2u) << grown;
  EXPECT_EQ(count(grown, "\"wall_s\""), 2u) << grown;
}

}  // namespace
}  // namespace dfsim
