// The env knob readers: trailing garbage must be rejected (DF_H=3x used
// to parse as 3 and silently run the wrong network), out-of-range values
// fall back with a warning instead of being coerced, and DF_JOBS never
// silently turns a negative worker count into "auto".
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"

namespace dfsim {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("DF_TEST_VALUE");
    ::unsetenv("DF_JOBS");
  }
  void set(const char* value) { ::setenv("DF_TEST_VALUE", value, 1); }
};

TEST_F(EnvTest, IntParsesPlainValues) {
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);  // unset -> fallback
  set("42");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 42);
  set("-3");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), -3);
  set(" 5 ");  // surrounding whitespace is harmless
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 5);
}

TEST_F(EnvTest, IntRejectsTrailingGarbage) {
  set("3x");  // the historical DF_H=3x bug: parsed as 3
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
  set("12 34");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
  set("abc");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
  set("");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
}

TEST_F(EnvTest, IntRejectsOutOfRangeValues) {
  set("99999999999999999999999999");  // > INT64_MAX
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
  set("-99999999999999999999999999");
  EXPECT_EQ(env_int("DF_TEST_VALUE", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndRejectsLikeInt) {
  set("0.5");
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_VALUE", 1.5), 0.5);
  set("2e-3");
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_VALUE", 1.5), 2e-3);
  set("0.5abc");
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_VALUE", 1.5), 1.5);
  set("nope");
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_VALUE", 1.5), 1.5);
  set("1e999");  // overflows double
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_VALUE", 1.5), 1.5);
}

TEST_F(EnvTest, JobsAcceptsPositiveRejectsNegativeAndGarbage) {
  EXPECT_EQ(env_jobs(), 0);  // unset -> auto
  ::setenv("DF_JOBS", "4", 1);
  EXPECT_EQ(env_jobs(), 4);
  ::setenv("DF_JOBS", "0", 1);
  EXPECT_EQ(env_jobs(), 0);  // explicit auto
  ::setenv("DF_JOBS", "-2", 1);
  EXPECT_EQ(env_jobs(), 0);  // warned, not coerced to a bogus count
  ::setenv("DF_JOBS", "8x", 1);
  EXPECT_EQ(env_jobs(), 0);
  ::setenv("DF_JOBS", "9999999999999", 1);
  EXPECT_EQ(env_jobs(), 0);  // beyond int range -> auto with a warning
}

TEST_F(EnvTest, StrAndFlagSemanticsUnchanged) {
  EXPECT_EQ(env_str("DF_TEST_VALUE", "dflt"), "dflt");
  set("hello");
  EXPECT_EQ(env_str("DF_TEST_VALUE", "dflt"), "hello");
  EXPECT_TRUE(env_flag("DF_TEST_VALUE"));
  set("0");
  EXPECT_FALSE(env_flag("DF_TEST_VALUE"));
  set("false");
  EXPECT_FALSE(env_flag("DF_TEST_VALUE"));
}

}  // namespace
}  // namespace dfsim
