#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfsim {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsRoughlyBalanced) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

// split() now routes the child key through a splitmix64 expansion step
// (near-equal parent states must not yield correlated children). These
// constants pin the resulting draw sequences: the child stream, and the
// parent cursor having advanced by exactly one draw.
TEST(Rng, SplitGolden) {
  Rng a(31);
  Rng b = a.split();
  EXPECT_EQ(b.next_u64(), 0x452939871b51ff97ULL);
  EXPECT_EQ(b.next_u64(), 0xace83fad70820cb0ULL);
  EXPECT_EQ(b.next_u64(), 0xee027420b775ad43ULL);
  EXPECT_EQ(a.next_u64(), 0x85234ccb6c2ad01aULL);
}

// keyed_stream is the sharded engine's counter-based determinism
// contract: the stream depends only on the key tuple, never on which
// worker constructs it or in what order. Pin the derivation so a future
// change to the mixing chain cannot silently re-key every sharded run.
TEST(Rng, KeyedStreamGolden) {
  Rng k = keyed_stream(42, 7, 1, 12345);
  EXPECT_EQ(k.next_u64(), 0xa8bf9618880ed975ULL);
  EXPECT_EQ(k.next_u64(), 0xa0fecab4b12703b3ULL);
  EXPECT_EQ(keyed_stream(42, 7, 2, 12345).next_u64(),
            0x6e543dbd354b92a6ULL);
  EXPECT_EQ(keyed_stream(42, 8, 1, 12345).next_u64(),
            0xcf03c37376b412abULL);
  EXPECT_EQ(mix64(1, 2), 0x71c18690ee42c90bULL);
}

TEST(Rng, KeyedStreamIsPureFunctionOfKey) {
  for (std::uint64_t e : {0ULL, 1ULL, 999ULL}) {
    Rng x = keyed_stream(9, 100, 3, e);
    Rng y = keyed_stream(9, 100, 3, e);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(x.next_u64(), y.next_u64());
  }
}

}  // namespace
}  // namespace dfsim
