#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfsim {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsRoughlyBalanced) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace dfsim
