#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dfsim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat whole;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, CountsAndPercentiles) {
  Histogram h(10.0, 10);  // buckets [0,10), [10,20)...
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(99.0), 100.0, 10.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(1.0, 4);
  h.add(1000.0);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(100.0), 4.0);  // overflow reported beyond range
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

// Regression: percentile() used to return the bucket *upper edge*
// width*(i+1), biasing every percentile upward by up to one bucket width
// (16 cycles at the collector's default width).
TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  // 100 uniform samples: rank k sits at (k-0.5) under interpolation.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 49.5);  // upper-edge bug gave 50
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 98.5);  // upper-edge bug gave 100
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.5);    // upper-edge bug gave 10
}

// Regression: ranks landing in the overflow bucket were reported as
// width*(num_buckets+1) — an in-range-looking value one bucket past the
// end — conflating unbounded samples with the last real bucket. They now
// pin to the end of the covered range.
TEST(Histogram, OverflowNotConflatedWithLastBucket) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(1000.0);  // overflow
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);  // conflation bug gave 5
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.5);
}

}  // namespace
}  // namespace dfsim
