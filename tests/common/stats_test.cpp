#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dfsim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat whole;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, CountsAndPercentiles) {
  Histogram h(10.0, 10);  // buckets [0,10), [10,20)...
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(99.0), 100.0, 10.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(1.0, 4);
  h.add(1000.0);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(100.0), 4.0);  // overflow reported beyond range
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

}  // namespace
}  // namespace dfsim
