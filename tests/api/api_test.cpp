// Facade-level behaviour: config derivation, environment defaults,
// replication, sweeps and CSV output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>

#include "api/experiment.hpp"
#include "api/simulator.hpp"
#include "api/sweep.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "routing/factory.hpp"

namespace dfsim {
namespace {

TEST(Config, RaisesVcsToMechanismMinimum) {
  const DragonflyTopology topo(2);
  SimConfig cfg;
  cfg.local_vcs = 3;
  const auto par = make_routing("par-6/2", topo, cfg.routing_params());
  EXPECT_EQ(cfg.engine_config(*par).local_vcs, 6);
  const auto olm = make_routing("olm", topo, cfg.routing_params());
  EXPECT_EQ(cfg.engine_config(*olm).local_vcs, 3);
}

TEST(Config, RoutingParamsCarryThreshold) {
  SimConfig cfg;
  cfg.misroute_threshold = 0.6;
  cfg.pb_threshold = 0.2;
  const RoutingParams rp = cfg.routing_params();
  EXPECT_DOUBLE_EQ(rp.adaptive.threshold, 0.6);
  EXPECT_DOUBLE_EQ(rp.piggyback.saturation_threshold, 0.2);
}

TEST(Config, BenchDefaultsHonourEnvironment) {
  ::setenv("DF_H", "2", 1);
  ::setenv("DF_WARMUP", "111", 1);
  ::setenv("DF_MEASURE", "222", 1);
  ::setenv("DF_SEED", "33", 1);
  const SimConfig cfg = bench_defaults();
  EXPECT_EQ(cfg.h, 2);
  EXPECT_EQ(cfg.warmup_cycles, 111u);
  EXPECT_EQ(cfg.measure_cycles, 222u);
  EXPECT_EQ(cfg.seed, 33u);
  ::unsetenv("DF_H");
  ::unsetenv("DF_WARMUP");
  ::unsetenv("DF_MEASURE");
  ::unsetenv("DF_SEED");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("DF_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DF_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("DF_TEST_MISSING", 7), 7);
  ::setenv("DF_TEST_INT", "junk", 1);
  EXPECT_EQ(env_int("DF_TEST_INT", 7), 7);
  ::setenv("DF_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("DF_TEST_FLAG"));
  ::setenv("DF_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("DF_TEST_FLAG"));
  ::setenv("DF_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("DF_TEST_DBL", 1.0), 0.25);
  EXPECT_EQ(env_str("DF_TEST_MISSING", "dflt"), "dflt");
  ::unsetenv("DF_TEST_INT");
  ::unsetenv("DF_TEST_FLAG");
  ::unsetenv("DF_TEST_DBL");
}

TEST(Replication, AggregatesAcrossSeeds) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = "minimal";
  cfg.load = 0.2;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 2000;
  const ReplicatedResult r = run_replicated(cfg, 3);
  EXPECT_EQ(r.replications, 3);
  EXPECT_EQ(r.deadlocks, 0);
  EXPECT_EQ(r.accepted_load.count(), 3u);
  EXPECT_NEAR(r.accepted_mean(), 0.2, 0.03);
  // Independent seeds differ, so there is *some* spread.
  EXPECT_GT(r.latency_stddev(), 0.0);
}

// Regression: replication k used to run with seed `base + k`, so
// replication 1 of base seed s was the *same stream* as replication 0 of
// base seed s+1 — neighboring sweep points shared error-bar samples.
TEST(Replication, SeedsAreDerivedNotOffsets) {
  EXPECT_NE(replication_seed(1, 1), replication_seed(2, 0));
  EXPECT_NE(replication_seed(1, 2), replication_seed(3, 0));
  std::set<std::uint64_t> all;
  for (std::uint64_t base = 1; base <= 4; ++base) {
    for (int k = 0; k < 4; ++k) all.insert(replication_seed(base, k));
  }
  EXPECT_EQ(all.size(), 16u);  // base+k collides 6 of these
}

TEST(Replication, ExposesPerRunSeedsAndResults) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = "minimal";
  cfg.load = 0.2;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 1000;
  const ReplicatedResult r = run_replicated(cfg, 2);
  ASSERT_EQ(r.seeds.size(), 2u);
  ASSERT_EQ(r.runs.size(), 2u);
  EXPECT_EQ(r.seeds[0], replication_seed(cfg.seed, 0));
  EXPECT_EQ(r.seeds[1], replication_seed(cfg.seed, 1));
  EXPECT_NE(r.seeds[0], r.seeds[1]);
  EXPECT_GT(r.runs[0].delivered, 0u);
}

// Regression: the collector counted generated/dropped packets but
// run_steady never surfaced them, so a saturated point (sources dropping
// under the queue cap) looked identical to a healthy accepted-load
// plateau.
TEST(Facade, SurfacesOfferedLoadAndDropRate) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = "minimal";
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 4000;

  cfg.load = 0.2;  // far below saturation: healthy sources
  const SteadyResult light = run_steady(cfg);
  EXPECT_NEAR(light.offered_load, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(light.source_drop_rate, 0.0);

  // Full load on ADVG+1: minimal routing caps at the single global link
  // (~1/(a*p) accepted), so the source-queue cap must bind and drop.
  cfg.pattern = "advg";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  const SteadyResult heavy = run_steady(cfg);
  EXPECT_GT(heavy.offered_load, heavy.accepted_load);
  EXPECT_GT(heavy.source_drop_rate, 0.0);
}

TEST(Sweep, ProducesOnePointPerComboInOrder) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 1000;
  const auto pts =
      run_experiments(sweep_grid(cfg, {"minimal", "valiant"}, {0.1, 0.2}));
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].series, "minimal");
  EXPECT_DOUBLE_EQ(pts[0].x, 0.1);
  EXPECT_EQ(pts[3].series, "valiant");
  EXPECT_DOUBLE_EQ(pts[3].x, 0.2);
}

TEST(Sweep, PrintFormatsCsv) {
  std::ostringstream os;
  std::vector<ExperimentResult> pts(1);
  pts[0].series = "olm";
  pts[0].x = 0.5;
  pts[0].steady.avg_latency = 123.5;
  pts[0].steady.accepted_load = 0.25;
  pts[0].steady.offered_load = 0.5;
  pts[0].steady.source_drop_rate = 0.125;
  print_sweep(os, pts, Metric::kLatency, "offered_load");
  EXPECT_EQ(os.str(),
            "series,offered_load,avg_latency_cycles,offered_load_measured,"
            "source_drop_rate\nolm,0.5,123.5,0.5,0.125\n");
}

TEST(Sweep, DefaultLoadsAreEvenlySpaced) {
  const auto loads = default_loads(1.0, 4);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_DOUBLE_EQ(loads[0], 0.25);
  EXPECT_DOUBLE_EQ(loads[3], 1.0);
}

TEST(Csv, EscapesNothingButFormatsCompactly) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"x", CsvWriter::fmt(0.123456789)});
  csv.point("s", 1.0, 2.5);
  EXPECT_EQ(os.str(), "a,b\nx,0.123457\ns,1,2.5\n");
}

TEST(Facade, RejectsUnknownRouting) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = "nonsense";
  EXPECT_THROW(run_steady(cfg), std::invalid_argument);
}

TEST(Facade, RejectsUnknownPattern) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.pattern = "nonsense";
  EXPECT_THROW(run_steady(cfg), std::invalid_argument);
}

TEST(Facade, BurstCompletesOnTinyNetwork) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = "rlm";
  cfg.pattern = "uniform";
  cfg.burst_packets = 10;
  cfg.max_cycles = 200000;
  const BurstResult r = run_burst(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlock);
  EXPECT_GT(r.consumption_cycles, 0u);
}

}  // namespace
}  // namespace dfsim
