// SimConfig::describe() / parse() — the textual round-trip the manifest
// ledger and run checkpoints lean on for config-drift detection. The
// contract: parse(describe()) reconstructs the config exactly (doubles
// included, via round-trip precision), and malformed input fails with a
// message naming the offending key or line.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/config.hpp"

namespace dfsim {
namespace {

SimConfig exotic_config() {
  SimConfig cfg;
  cfg.topo = "p2a6h3g8";
  cfg.arrangement = GlobalArrangement::kPalmtree;
  cfg.fault_spec = "r:4,r:5";
  cfg.fault_seed = 77;
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;
  cfg.flit_phits = 10;
  cfg.routing = "ugal";
  cfg.misroute_threshold = 1.0 / 3.0;  // not representable in decimal —
  cfg.load = 0.1 + 0.2;                // round-trip precision must hold
  cfg.pattern = "mix:un=0.7,advg+1=0.3";
  cfg.onoff_on = 0.05;
  cfg.onoff_off = 0.2;
  cfg.warmup_cycles = 12345;
  cfg.seed = 987654321;
  return cfg;
}

TEST(ConfigText, DescribeParseRoundTripsExactly) {
  const SimConfig cfg = exotic_config();
  const std::string text = cfg.describe();
  const SimConfig back = SimConfig::parse(text);
  // describe() is the canonical form: a true round-trip reproduces it
  // byte for byte (which also proves every double survived exactly).
  EXPECT_EQ(back.describe(), text);
  EXPECT_EQ(back.load, cfg.load);
  EXPECT_EQ(back.misroute_threshold, cfg.misroute_threshold);
  EXPECT_EQ(back.flow, cfg.flow);
  EXPECT_EQ(back.arrangement, cfg.arrangement);
  EXPECT_EQ(back.topo, cfg.topo);
  EXPECT_EQ(back.fault_spec, cfg.fault_spec);
}

TEST(ConfigText, DefaultConfigRoundTrips) {
  const SimConfig cfg;
  EXPECT_EQ(SimConfig::parse(cfg.describe()).describe(), cfg.describe());
}

TEST(ConfigText, ParseAcceptsSubsetCommentsAndBlanks) {
  const SimConfig cfg = SimConfig::parse(
      "# just two knobs, defaults for the rest\n"
      "\n"
      "routing = pb\n"
      "load=0.25\n");
  EXPECT_EQ(cfg.routing, "pb");
  EXPECT_EQ(cfg.load, 0.25);
  EXPECT_EQ(cfg.h, SimConfig{}.h);  // untouched default
}

TEST(ConfigText, UnknownKeyNamesTheKey) {
  try {
    SimConfig cfg;
    cfg.set("no_such_knob", "1");
    FAIL() << "set accepted an unknown key";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_knob"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigText, BadValueNamesTheKey) {
  SimConfig cfg;
  EXPECT_THROW(cfg.set("load", "fast"), std::invalid_argument);
  EXPECT_THROW(cfg.set("warmup_cycles", "12x"), std::invalid_argument);
  EXPECT_THROW(cfg.set("flow", "quantum"), std::invalid_argument);
}

TEST(ConfigText, ParseNamesTheOffendingLine) {
  try {
    SimConfig::parse("routing = olm\nwat\n");
    FAIL() << "parse accepted a line without =";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dfsim
