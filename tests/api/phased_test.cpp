// Phased runs (run_phased): schedule validation, the windows-tile-the-run
// accounting contract, worker-count bit-identity of phased sweeps, the
// UN -> ADVG+1 transient regression the fig_transient bench plots, and
// the Markov ON/OFF source process layered on a pattern.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "api/config.hpp"
#include "api/simulator.hpp"
#include "api/sweep.hpp"

namespace dfsim {
namespace {

SimConfig small_config(const std::string& routing) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = routing;
  cfg.pattern = "un";
  cfg.load = 0.3;
  cfg.warmup_cycles = 500;
  cfg.seed = 7;
  return cfg;
}

TEST(Phased, RejectsBadSchedules) {
  const SimConfig cfg = small_config("minimal");
  EXPECT_THROW(run_phased(cfg, {}), std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{0, 1, "", -1.0}}), std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{100, 0, "", -1.0}}), std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{100, 101, "", -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{100, 1, "bogus", -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(run_phased(cfg, {{100, 1, "", 1.5}}), std::invalid_argument);
  EXPECT_THROW(
      run_phased(cfg,
                 {{100, 1, "", std::numeric_limits<double>::quiet_NaN()}}),
      std::invalid_argument);
  // A phase may not switch to a load the ON/OFF duty cycle cannot
  // sustain (mirrors the validate() check on the base load).
  SimConfig bursty = cfg;
  bursty.packet_phits = 4;
  bursty.load = 0.3;
  bursty.onoff_on = 0.02;
  bursty.onoff_off = 0.18;  // duty 0.1 -> at most load 0.4
  EXPECT_THROW(run_phased(bursty, {{100, 1, "", 0.8}}),
               std::invalid_argument);
  EXPECT_NO_THROW(run_phased(bursty, {{100, 1, "", 0.4}}));
}

TEST(Phased, WindowStatsSumToWholeRunStats) {
  SimConfig cfg = small_config("olm");
  const PhasedResult r = run_phased(
      cfg, {{1500, 3, "", -1.0}, {1700, 4, "advg+1", -1.0}});
  ASSERT_EQ(r.windows.size(), 7u);
  ASSERT_FALSE(r.total.deadlock);
  EXPECT_TRUE(r.drained);

  // Windows tile [warmup, end of drain]: consecutive spans abut, phase
  // lengths are honored (the last window absorbs remainders).
  Cycle expect_start = cfg.warmup_cycles;
  for (const PhaseWindow& w : r.windows) {
    EXPECT_EQ(w.stats.start, expect_start);
    expect_start = w.stats.end;
  }
  EXPECT_EQ(r.windows[2].stats.end, cfg.warmup_cycles + 1500);
  EXPECT_EQ(r.windows[6].stats.end, cfg.warmup_cycles + 1500 + 1700);
  EXPECT_EQ(r.drain.start, r.windows.back().stats.end);
  EXPECT_EQ(r.windows[0].pattern, "UN");
  EXPECT_EQ(r.windows[3].pattern, "ADVG+1");

  // Every counter of the whole run is the exact sum of its windows'.
  std::uint64_t delivered = r.drain.delivered;
  std::uint64_t phits = r.drain.delivered_phits;
  std::uint64_t generated = r.drain.generated;
  std::uint64_t dropped = r.drain.dropped;
  for (const PhaseWindow& w : r.windows) {
    delivered += w.stats.delivered;
    phits += w.stats.delivered_phits;
    generated += w.stats.generated;
    dropped += w.stats.dropped;
  }
  EXPECT_EQ(delivered, r.total.delivered);
  EXPECT_EQ(r.drain.generated, 0u);  // injection stops before the drain
  // The aggregate rates are the summed counters over the full span —
  // computed with the same arithmetic the collector uses, so exactly.
  const Cycle span = r.drain.end - cfg.warmup_cycles;
  const auto nodes = static_cast<double>(72);  // h=2: 72 terminals
  EXPECT_EQ(r.total.accepted_load,
            static_cast<double>(phits) /
                (static_cast<double>(span) * nodes));
  EXPECT_EQ(r.total.offered_load,
            static_cast<double>(generated) *
                static_cast<double>(cfg.packet_phits) /
                (static_cast<double>(span) * nodes));
  if (generated > 0) {
    EXPECT_EQ(r.total.source_drop_rate,
              static_cast<double>(dropped) / static_cast<double>(generated));
  }
}

TEST(Phased, SameSeedBitIdenticalAcrossWorkerCounts) {
  std::vector<ExperimentPoint> points;
  for (const char* routing : {"minimal", "valiant", "olm", "pb"}) {
    ExperimentPoint pt;
    pt.series = routing;
    pt.cfg = small_config(routing);
    pt.phases = {{800, 2, "", -1.0}, {800, 2, "advg+1", -1.0}};
    points.push_back(std::move(pt));
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = run_experiments(points, serial);
  const auto b = run_experiments(points, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].series);
    EXPECT_TRUE(a[i].is_phased);
    EXPECT_EQ(a[i].seed, b[i].seed);
    ASSERT_EQ(a[i].phased.windows.size(), b[i].phased.windows.size());
    for (std::size_t w = 0; w < a[i].phased.windows.size(); ++w) {
      const TrafficWindow& wa = a[i].phased.windows[w].stats;
      const TrafficWindow& wb = b[i].phased.windows[w].stats;
      EXPECT_EQ(wa.delivered, wb.delivered);
      EXPECT_EQ(wa.accepted_load, wb.accepted_load);  // exact doubles
      EXPECT_EQ(wa.avg_latency, wb.avg_latency);
    }
    EXPECT_EQ(a[i].phased.total.avg_latency, b[i].phased.total.avg_latency);
    EXPECT_EQ(a[i].phased.total.delivered, b[i].phased.total.delivered);
  }
}

// The transient the paper's "on-the-fly" argument predicts: after a
// UN -> ADVG+1 switch the in-transit adaptive mechanism re-routes and
// recovers its throughput within the measurement span, while minimal
// routing collapses onto the single minimal global link (~1/(a*p)).
TEST(Phased, AdaptiveRecoversFromPatternSwitchMinimalCollapses) {
  const std::vector<Phase> phases = {{2000, 4, "", -1.0},
                                     {3000, 6, "advg+1", -1.0}};
  const auto mean_accepted = [](const std::vector<PhaseWindow>& ws, int from,
                                int to) {
    double sum = 0.0;
    for (int i = from; i < to; ++i) {
      sum += ws[static_cast<std::size_t>(i)].stats.accepted_load;
    }
    return sum / (to - from);
  };

  const PhasedResult olm = run_phased(small_config("olm"), phases);
  ASSERT_FALSE(olm.total.deadlock);
  const double olm_before = mean_accepted(olm.windows, 0, 4);
  const double olm_after = mean_accepted(olm.windows, 8, 10);
  EXPECT_GT(olm_before, 0.25);  // delivering the 0.3 offered load under UN
  EXPECT_GT(olm_after, 0.8 * olm_before)
      << "OLM did not recover after the switch";

  const PhasedResult min = run_phased(small_config("minimal"), phases);
  ASSERT_FALSE(min.total.deadlock);
  const double min_before = mean_accepted(min.windows, 0, 4);
  const double min_after = mean_accepted(min.windows, 8, 10);
  EXPECT_GT(min_before, 0.25);
  // h=2: a*p = 8, so minimal's ADVG ceiling is 0.125 phits/node/cycle.
  EXPECT_LT(min_after, 0.6 * min_before)
      << "minimal should collapse toward 1/(a*p)";
  EXPECT_LT(min_after, 0.16);
  EXPECT_GT(olm_after, 2.0 * min_after);
}

// --- Markov ON/OFF sources ---------------------------------------------

TEST(OnOff, MatchesConfiguredMeanLoadAndReplaysBySeed) {
  SimConfig cfg = small_config("minimal");
  cfg.load = 0.15;
  cfg.onoff_on = 0.05;   // stationary ON share 0.25 ...
  cfg.onoff_off = 0.15;  // ... bursts of mean length 1/0.15 ≈ 6.7 cycles
  cfg.measure_cycles = 4000;
  const SteadyResult a = run_steady(cfg);
  EXPECT_FALSE(a.deadlock);
  // Long-run offered load is duty-compensated back to cfg.load.
  EXPECT_NEAR(a.offered_load, 0.15, 0.02);
  EXPECT_NEAR(a.accepted_load, 0.15, 0.02);
  const SteadyResult b = run_steady(cfg);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.accepted_load, b.accepted_load);
}

TEST(OnOff, BurstinessRaisesQueueingLatencyAtEqualMeanLoad) {
  SimConfig smooth = small_config("minimal");
  smooth.load = 0.2;
  smooth.measure_cycles = 4000;
  SimConfig bursty = smooth;
  bursty.onoff_on = 0.02;  // ON 1/6 of the time -> 6x rate while ON
  bursty.onoff_off = 0.1;
  const SteadyResult rs = run_steady(smooth);
  const SteadyResult rb = run_steady(bursty);
  ASSERT_FALSE(rs.deadlock);
  ASSERT_FALSE(rb.deadlock);
  EXPECT_NEAR(rb.offered_load, rs.offered_load, 0.03);
  // Same mean load, clumped arrivals: source queueing must show up.
  EXPECT_GT(rb.avg_latency, rs.avg_latency);
}

TEST(OnOff, ValidateRejectsHalfConfiguredChains) {
  SimConfig cfg = small_config("minimal");
  cfg.onoff_on = 0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.onoff_on = 0.0;
  cfg.onoff_off = 0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.onoff_on = 1.5;
  cfg.onoff_off = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.onoff_on = 0.1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(OnOff, ValidateRejectsNaNProbabilities) {
  SimConfig cfg = small_config("minimal");
  cfg.onoff_on = std::numeric_limits<double>::quiet_NaN();
  cfg.onoff_off = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(OnOff, ValidateRejectsUnsustainableDutyLoadCombination) {
  // Duty 0.1 with packet_phits 4 sustains at most load 0.4: ON terminals
  // would need a generation probability above 1 to offer 0.6, and the
  // clamp would silently mismeasure — validate must reject instead.
  SimConfig cfg = small_config("minimal");
  cfg.packet_phits = 4;
  cfg.flit_phits = 0;
  cfg.load = 0.6;
  cfg.onoff_on = 0.02;
  cfg.onoff_off = 0.18;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.load = 0.4;
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace dfsim
