// SimConfig::validate(), the (p, a, h, g) spec-string parser and the
// topology resolution rules: `h` alone keeps the paper's balanced
// shorthand, explicit knobs or a spec string unlock unbalanced shapes,
// and every out-of-range knob fails fast with a pointed message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "api/config.hpp"
#include "api/simulator.hpp"
#include "traffic/pattern.hpp"

namespace dfsim {
namespace {

std::string thrown_message(const SimConfig& cfg) {
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(TopoSpec, ParsesShorthandAndFullForm) {
  const TopoParams balanced = parse_topo_spec("h4");
  EXPECT_EQ(balanced.p, 4);
  EXPECT_EQ(balanced.a, 8);
  EXPECT_EQ(balanced.h, 4);
  EXPECT_EQ(balanced.g, 33);

  const TopoParams full = parse_topo_spec("p2a6h3g8");
  EXPECT_EQ(full.p, 2);
  EXPECT_EQ(full.a, 6);
  EXPECT_EQ(full.h, 3);
  EXPECT_EQ(full.g, 8);
}

TEST(TopoSpec, AcceptsSeparatorsAnyOrderAndPartialOverrides) {
  const TopoParams tp = parse_topo_spec("g8, a6, h3, p2");
  EXPECT_EQ(tp.p, 2);
  EXPECT_EQ(tp.a, 6);
  EXPECT_EQ(tp.g, 8);

  // Only p overridden: a and g keep their balanced-for-h defaults.
  const TopoParams partial = parse_topo_spec("h3 p1");
  EXPECT_EQ(partial.p, 1);
  EXPECT_EQ(partial.a, 6);
  EXPECT_EQ(partial.g, 19);

  const TopoParams kv = parse_topo_spec("p=2,a=6,h=3,g=8");
  EXPECT_EQ(kv.a, 6);
}

TEST(TopoSpec, BareIntegerIsBalancedShorthand) {
  const TopoParams tp = parse_topo_spec("3");
  EXPECT_EQ(tp.p, 3);
  EXPECT_EQ(tp.a, 6);
  EXPECT_EQ(tp.h, 3);
  EXPECT_EQ(tp.g, 19);
}

TEST(TopoSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_topo_spec(""), std::invalid_argument);        // no h
  EXPECT_THROW(parse_topo_spec("p2a6"), std::invalid_argument);    // no h
  EXPECT_THROW(parse_topo_spec("x4"), std::invalid_argument);      // bad dim
  EXPECT_THROW(parse_topo_spec("h"), std::invalid_argument);       // no value
  EXPECT_THROW(parse_topo_spec("h3h4"), std::invalid_argument);    // twice
  // Oversized values get the documented invalid_argument (never
  // out_of_range or a silent signed overflow downstream).
  EXPECT_THROW(parse_topo_spec("h99999999999"), std::invalid_argument);
  EXPECT_THROW(parse_topo_spec("a20000000h2g3"), std::invalid_argument);
}

TEST(Validate, NegativeKnobsAreRejectedNotDefaulted) {
  // Only exactly 0 selects the balanced default; a negative knob (e.g. a
  // DF_P=-2 typo) must fail fast, not silently run the balanced shape.
  SimConfig cfg;
  cfg.p = -2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.a = -6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.g = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validate, RejectsRouterDegreeAboveEngineLimit) {
  SimConfig cfg;
  cfg.topo = "p2000a4h60";  // degree 3 + 60 + 2000 = 2063 > 2047
  const std::string msg = thrown_message(cfg);
  EXPECT_NE(msg.find("2047-port"), std::string::npos);
}

TEST(Validate, LargeDirectKnobsDoNotOverflow) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.a = 2000000000;  // a*h+1 would overflow 32 bits
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.h = 2000000000;
  cfg.g = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, TopoParamsResolveBalancedShorthand) {
  SimConfig cfg;
  cfg.h = 3;
  const TopoParams tp = cfg.topo_params();
  EXPECT_EQ(tp.p, 3);
  EXPECT_EQ(tp.a, 6);
  EXPECT_EQ(tp.g, 19);
  EXPECT_TRUE(cfg.make_topology().balanced());
}

TEST(Config, NumericKnobsAndSpecStringResolve) {
  SimConfig cfg;
  cfg.h = 3;
  cfg.p = 2;
  cfg.a = 6;
  cfg.g = 8;
  const DragonflyTopology t = cfg.make_topology();
  EXPECT_EQ(t.terminals_per_router(), 2);
  EXPECT_EQ(t.num_groups(), 8);
  EXPECT_FALSE(t.balanced());

  // The spec string overrides the numeric knobs entirely.
  cfg.topo = "h2";
  EXPECT_TRUE(cfg.make_topology().balanced());
  EXPECT_EQ(cfg.make_topology().num_groups(), 9);
}

TEST(Validate, AcceptsDefaultsAndUnbalancedReference) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.h = 3;
  cfg.p = 2;
  cfg.a = 6;
  cfg.g = 8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Validate, RejectsBadTopologyWithPointedMessages) {
  SimConfig cfg;
  cfg.h = 0;
  EXPECT_NE(thrown_message(cfg).find("h"), std::string::npos);

  cfg = SimConfig{};
  cfg.h = 2;
  cfg.a = 4;
  cfg.g = 10;  // > a*h + 1 = 9
  const std::string msg = thrown_message(cfg);
  EXPECT_NE(msg.find("a*h + 1"), std::string::npos);
  EXPECT_NE(msg.find("10"), std::string::npos);

  cfg = SimConfig{};
  cfg.topo = "h3 q5";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validate, RejectsLoadOutsideUnitInterval) {
  SimConfig cfg;
  for (const double bad : {0.0, -0.5, 1.0001, 2.0}) {
    cfg.load = bad;
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << bad;
  }
  cfg.load = 1.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.load = 1e-6;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Validate, RejectsFlitLargerThanPacket) {
  SimConfig cfg;
  cfg.packet_phits = 8;
  cfg.flit_phits = 10;
  const std::string msg = thrown_message(cfg);
  EXPECT_NE(msg.find("flit_phits"), std::string::npos);
  cfg.flit_phits = 8;
  EXPECT_NO_THROW(cfg.validate());
  cfg.flit_phits = 0;  // whole-packet mode
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Validate, RejectsVcCountsBelowTheFloor) {
  SimConfig cfg;
  cfg.local_vcs = 0;
  EXPECT_NE(thrown_message(cfg).find("VC"), std::string::npos);
  cfg = SimConfig{};
  cfg.global_vcs = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Validate, RunSteadyRejectsInvalidConfigsBeforeBuilding) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.load = 1.5;
  EXPECT_THROW(run_steady(cfg), std::invalid_argument);
  cfg.load = 0.5;
  cfg.g = 100;  // impossible group count for h=2
  EXPECT_THROW(run_steady(cfg), std::invalid_argument);
  cfg.g = 0;
  cfg.flit_phits = 99;
  EXPECT_THROW(run_burst(cfg), std::invalid_argument);
}

TEST(Config, BenchDefaultsHonourShapeEnvironment) {
  ::setenv("DF_H", "3", 1);
  ::setenv("DF_P", "2", 1);
  ::setenv("DF_A", "6", 1);
  ::setenv("DF_G", "8", 1);
  const SimConfig cfg = bench_defaults();
  const TopoParams tp = cfg.topo_params();
  EXPECT_EQ(tp.p, 2);
  EXPECT_EQ(tp.a, 6);
  EXPECT_EQ(tp.h, 3);
  EXPECT_EQ(tp.g, 8);
  ::unsetenv("DF_H");
  ::unsetenv("DF_P");
  ::unsetenv("DF_A");
  ::unsetenv("DF_G");

  ::setenv("DF_TOPO", "p1a4h2g5", 1);
  const SimConfig spec_cfg = bench_defaults();
  EXPECT_EQ(spec_cfg.topo_params().g, 5);
  ::unsetenv("DF_TOPO");
}

// The engine still rejects explicit EngineConfigs below a mechanism's VC
// floor (SimConfig::engine_config auto-raises instead, which
// Config.RaisesVcsToMechanismMinimum in api_test pins).
TEST(Validate, EngineRejectsVcsBelowMechanismFloor) {
  const DragonflyTopology topo(2);
  SimConfig cfg;
  auto par = make_routing("par-6/2", topo, cfg.routing_params());
  EngineConfig ec;
  ec.local_vcs = 3;  // par-6/2 needs 6
  UniformPattern pattern(topo);
  InjectionProcess inj;
  EXPECT_THROW(Engine(topo, ec, *par, pattern, inj),
               std::invalid_argument);
}

}  // namespace
}  // namespace dfsim
