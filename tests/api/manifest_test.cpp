// The manifest runner: grid expansion, the per-point completion ledger,
// resume (skip completed points, restore the in-flight one from its
// checkpoint), worker-count bit-identity of the merged CSV, and drift
// rejection against an existing run directory.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/manifest.hpp"
#include "api/sweep.hpp"
#include "runtime/seed.hpp"

namespace dfsim {
namespace {

namespace fs = std::filesystem;

const char* kSteadyManifest =
    "name = mtest\n"
    "h = 2\n"
    "warmup_cycles = 200\n"
    "measure_cycles = 600\n"
    "seed = 42\n"
    "grid.routing = minimal, olm\n"
    "grid.load = 0.1, 0.3\n";

// A scratch run directory, unique per test and cleaned up afterwards.
class TempRunDir {
 public:
  explicit TempRunDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("dfsim_manifest_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempRunDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Manifest, ParsesAndExpandsOdometerOrder) {
  const Manifest m = Manifest::parse(kSteadyManifest);
  EXPECT_EQ(m.name, "mtest");
  EXPECT_EQ(m.base.h, 2);
  EXPECT_EQ(m.base.seed, 42u);
  ASSERT_EQ(m.axes.size(), 2u);

  const auto points = m.expand();
  ASSERT_EQ(points.size(), 4u);
  // First axis slowest, last fastest — routings-major, loads-minor.
  EXPECT_EQ(points[0].series, "minimal");
  EXPECT_EQ(points[0].x, 0.1);
  EXPECT_EQ(points[1].series, "minimal");
  EXPECT_EQ(points[1].x, 0.3);
  EXPECT_EQ(points[2].series, "olm");
  EXPECT_EQ(points[3].cfg.routing, "olm");
  EXPECT_EQ(points[3].cfg.load, 0.3);
  EXPECT_TRUE(points[0].phases.empty());
}

TEST(Manifest, MatchesSweepGridExpansion) {
  // A manifest (routing, load) grid must be the exact grid the figure
  // sweeps run — same order, same configs, same derived seeds.
  const Manifest m = Manifest::parse(kSteadyManifest);
  const auto a = m.expand();
  const auto b = sweep_grid(m.base, {"minimal", "olm"}, {0.1, 0.3});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].series, b[i].series);
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].cfg.describe(), b[i].cfg.describe());
  }
}

TEST(Manifest, ParsesPhaseSchedule) {
  const Manifest m = Manifest::parse(
      "name = ph\n"
      "h = 2\n"
      "grid.routing = olm\n"
      "phase = cycles=800 windows=2\n"
      "phase = cycles=600 windows=3 pattern=advg+1 load=0.4\n");
  ASSERT_EQ(m.phases.size(), 2u);
  EXPECT_EQ(m.phases[0].cycles, 800u);
  EXPECT_EQ(m.phases[0].windows, 2);
  EXPECT_EQ(m.phases[0].pattern, "");
  EXPECT_EQ(m.phases[0].load, -1.0);
  EXPECT_EQ(m.phases[1].pattern, "advg+1");
  EXPECT_EQ(m.phases[1].load, 0.4);
  EXPECT_FALSE(m.expand()[0].phases.empty());
}

TEST(Manifest, RejectsMalformedInputNamingTheLine) {
  EXPECT_THROW(Manifest::parse("this is not key value\n"),
               std::invalid_argument);
  EXPECT_THROW(Manifest::parse("grid.bogus_knob = 1, 2\n"),
               std::invalid_argument);
  EXPECT_THROW(Manifest::parse("phase = windows=2\n"),  // no cycles
               std::invalid_argument);
  EXPECT_THROW(Manifest::parse("grid.load =\n"),  // empty axis
               std::invalid_argument);
  try {
    Manifest::parse("h = 2\nload = warp9\n");
    FAIL() << "parse accepted a bad value";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Manifest, RunMergesAndIsWorkerCountInvariant) {
  const Manifest m = Manifest::parse(kSteadyManifest);

  TempRunDir dir_a("jobs1");
  TempRunDir dir_b("jobs4");
  ManifestRunOptions opts;
  opts.run_dir = dir_a.str();
  opts.jobs = 1;
  const ManifestRunSummary sa = run_manifest(m, opts);
  opts.run_dir = dir_b.str();
  opts.jobs = 4;
  const ManifestRunSummary sb = run_manifest(m, opts);

  EXPECT_EQ(sa.total_points, 4u);
  EXPECT_EQ(sa.ran_points, 4u);
  EXPECT_EQ(sa.skipped_points, 0u);
  const std::string csv_a = slurp(sa.csv_path);
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, slurp(sb.csv_path));  // bytes, not just numbers
}

TEST(Manifest, ResumeSkipsExactlyCompletedPoints) {
  const Manifest m = Manifest::parse(kSteadyManifest);
  TempRunDir dir("resume");
  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 2;
  const ManifestRunSummary first = run_manifest(m, opts);
  const std::string golden = slurp(first.csv_path);

  // Simulate a crash that lost two in-flight points.
  fs::remove(dir.str() + "/point_0001.csv");
  fs::remove(dir.str() + "/point_0002.csv");
  const ManifestRunSummary second = run_manifest(m, opts);
  EXPECT_EQ(second.total_points, 4u);
  EXPECT_EQ(second.skipped_points, 2u);
  EXPECT_EQ(second.ran_points, 2u);
  EXPECT_EQ(slurp(second.csv_path), golden);

  // A third run has nothing to do and still reproduces the merge.
  const ManifestRunSummary third = run_manifest(m, opts);
  EXPECT_EQ(third.skipped_points, 4u);
  EXPECT_EQ(third.ran_points, 0u);
  EXPECT_EQ(slurp(third.csv_path), golden);
}

TEST(Manifest, DriftAgainstRunDirectoryRejected) {
  const Manifest m = Manifest::parse(kSteadyManifest);
  TempRunDir dir("drift");
  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 2;
  run_manifest(m, opts);

  Manifest drifted = m;
  drifted.base.measure_cycles = 700;
  try {
    run_manifest(drifted, opts);
    FAIL() << "run_manifest accepted a drifted manifest";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drift"), std::string::npos) << msg;
    EXPECT_NE(msg.find("measure_cycles"), std::string::npos) << msg;
  }
}

TEST(Manifest, InFlightPointResumesFromCheckpointBitIdentically) {
  // The library-level half of the kill -9 smoke: leave a mid-run
  // checkpoint behind (as a killed process would), then let the unified
  // point executor pick it up and finish — identically to a clean run.
  SimConfig cfg;
  cfg.h = 2;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1500;
  cfg.seed = 5;
  ExperimentPoint pt;
  pt.series = "olm";
  pt.cfg = cfg;

  TempRunDir dir("inflight");
  fs::create_directories(dir.str());
  const std::string ckpt = dir.str() + "/point_0000.ckpt";
  const std::uint64_t seed = runtime::derive_seed(cfg.seed, 0);

  {
    SimConfig seeded = cfg;
    seeded.seed = seed;
    SimulationRun partial = SimulationRun::steady(seeded);
    partial.advance(700);  // killed mid-measurement
    std::ofstream os(ckpt, std::ios::binary);
    partial.save_checkpoint(os);
  }

  SweepOptions opts;
  opts.checkpoint_every = 400;
  opts.checkpoint_path = [&](std::size_t) { return ckpt; };
  opts.resume = true;
  const ExperimentResult resumed =
      run_experiment_point(pt, seed, 0, opts);

  const ExperimentResult clean = run_experiment_point(pt, seed, 0, {});
  EXPECT_EQ(resumed.steady.avg_latency, clean.steady.avg_latency);
  EXPECT_EQ(resumed.steady.accepted_load, clean.steady.accepted_load);
  EXPECT_EQ(resumed.steady.delivered, clean.steady.delivered);
  EXPECT_FALSE(fs::exists(ckpt));  // dropped once the point completed
}

}  // namespace
}  // namespace dfsim
