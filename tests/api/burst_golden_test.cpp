// Golden regression for the run_burst collapse into the staged
// SimulationRun engine: these consumption-cycle values were captured
// from the standalone pre-refactor burst loop and must never move. Any
// drift means the unified warmup/measure/drain machine changed burst
// semantics (injection at cycle 0, drain predicate, deadlock handling).
#include <gtest/gtest.h>

#include "api/config.hpp"
#include "api/simulator.hpp"

namespace dfsim {
namespace {

SimConfig burst_base() {
  SimConfig cfg;
  cfg.h = 2;
  cfg.burst_packets = 40;
  cfg.max_cycles = 400000;
  cfg.seed = 7;
  return cfg;
}

void expect_burst(const SimConfig& cfg, Cycle golden_consumption) {
  const BurstResult r = run_burst(cfg);
  EXPECT_EQ(r.consumption_cycles, golden_consumption);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlock);

  // And the explicit run-object spelling must agree with the wrapper.
  SimulationRun run = SimulationRun::burst(cfg);
  run.run_to_completion();
  EXPECT_EQ(run.burst_result().consumption_cycles, r.consumption_cycles);
  EXPECT_EQ(run.burst_result().completed, r.completed);
}

TEST(BurstGolden, VctOlmUniform) { expect_burst(burst_base(), 775); }

TEST(BurstGolden, WormholeUgalUniform) {
  SimConfig cfg = burst_base();
  cfg.routing = "ugal";
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;
  cfg.flit_phits = 10;
  cfg.burst_packets = 10;
  expect_burst(cfg, 2936);
}

TEST(BurstGolden, FaultedGroup) {
  SimConfig cfg = burst_base();
  cfg.fault_spec = "r:4,r:5,r:6,r:7";
  expect_burst(cfg, 714);
}

TEST(BurstGolden, PiggybackRouting) {
  SimConfig cfg = burst_base();
  cfg.routing = "pb";
  expect_burst(cfg, 728);
}

TEST(BurstGolden, AdversarialMinimal) {
  SimConfig cfg = burst_base();
  cfg.routing = "min";
  cfg.pattern = "advg+1";
  expect_burst(cfg, 2695);
}

}  // namespace
}  // namespace dfsim
