// The work-stealing point claimer: two concurrent claimers on one run
// directory merge byte-identically to a single-process run, stale
// leases of dead claimers are stolen after the TTL (and the point still
// lands exactly once), live leases block with the merge barrier
// reporting the pending remainder, and the atomic-write/env-validation
// fixes the protocol rests on.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "api/claim.hpp"
#include "api/manifest.hpp"

namespace dfsim {
namespace {

namespace fs = std::filesystem;

const char* kManifest =
    "name = ctest\n"
    "h = 2\n"
    "warmup_cycles = 200\n"
    "measure_cycles = 600\n"
    "seed = 42\n"
    "grid.routing = minimal, olm\n"
    "grid.load = 0.1, 0.3\n";

class TempRunDir {
 public:
  explicit TempRunDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("dfsim_claim_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempRunDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void age_file(const std::string& path, int seconds) {
  fs::last_write_time(path, fs::file_time_type::clock::now() -
                                std::chrono::seconds(seconds));
}

// The single-process jobs=1 merge every claim scenario must reproduce
// byte-for-byte.
std::string reference_csv(const Manifest& m, const std::string& tag) {
  TempRunDir dir(tag);
  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 1;
  return slurp(run_manifest(m, opts).csv_path);
}

TEST(Claim, TwoConcurrentClaimersMergeByteIdentically) {
  const Manifest m = Manifest::parse(kManifest);
  const std::string golden = reference_csv(m, "ref_conc");

  TempRunDir dir("conc");
  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 1;
  opts.claim = true;
  opts.claim_ttl_s = 60.0;  // nothing should be stolen in a healthy race

  ManifestRunSummary sa;
  ManifestRunSummary sb;
  std::thread a([&] { sa = run_manifest(m, opts); });
  std::thread b([&] { sb = run_manifest(m, opts); });
  a.join();
  b.join();

  // The lease files partition the grid: every point executed exactly
  // once across the two claimers, nothing stolen, and whoever reached
  // the complete barrier merged the same bytes as the serial run.
  EXPECT_EQ(sa.ran_points + sb.ran_points, 4u);
  EXPECT_EQ(sa.stolen_leases + sb.stolen_leases, 0u);
  EXPECT_EQ(sa.pending_points, 0u);
  EXPECT_EQ(sb.pending_points, 0u);
  EXPECT_TRUE(sa.merged || sb.merged);
  EXPECT_EQ(slurp(dir.str() + "/results.csv"), golden);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(fs::exists(dir.str() + "/claim_000" + std::to_string(i)))
        << "lease " << i << " not released";
  }
}

TEST(Claim, StaleLeaseOfDeadClaimerIsStolen) {
  const Manifest m = Manifest::parse(kManifest);
  const std::string golden = reference_csv(m, "ref_steal");

  // A crashed claimer's leftovers: a lease nobody flock-holds, aged
  // well past the TTL (a killed process cannot refresh its mtime).
  TempRunDir dir("steal");
  fs::create_directories(dir.str());
  {
    std::ofstream os(dir.str() + "/claim_0000");
    os << "deadhost:99999:0\n";
  }
  age_file(dir.str() + "/claim_0000", 3600);

  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 1;
  opts.claim = true;
  opts.claim_ttl_s = 1.0;
  const ManifestRunSummary s = run_manifest(m, opts);

  EXPECT_EQ(s.ran_points, 4u);  // the stolen point landed exactly once
  EXPECT_EQ(s.stolen_leases, 1u);
  EXPECT_TRUE(s.merged);
  EXPECT_EQ(s.pending_points, 0u);
  EXPECT_EQ(slurp(s.csv_path), golden);
  EXPECT_FALSE(fs::exists(dir.str() + "/claim_0000"));
}

TEST(Claim, LiveLeaseBlocksAndBarrierReportsPending) {
  const Manifest m = Manifest::parse(kManifest);
  const std::string golden = reference_csv(m, "ref_live");

  TempRunDir dir("live");
  fs::create_directories(dir.str());
  // A live peer: fresh lease, flock held for the duration — stale age
  // alone must NOT make it stealable.
  const std::string lease = dir.str() + "/claim_0000";
  {
    std::ofstream os(lease);
    os << PointClaimer::lease_record();
  }
  age_file(lease, 3600);  // expired mtime, but the holder is alive
  const int held = ::open(lease.c_str(), O_RDWR);
  ASSERT_GE(held, 0);
  ASSERT_EQ(::flock(held, LOCK_EX | LOCK_NB), 0);

  ManifestRunOptions opts;
  opts.run_dir = dir.str();
  opts.jobs = 1;
  opts.claim = true;
  opts.claim_ttl_s = 1.0;
  opts.no_merge = true;  // exit instead of polling for the live peer
  const ManifestRunSummary s = run_manifest(m, opts);

  EXPECT_EQ(s.ran_points, 3u);
  EXPECT_EQ(s.stolen_leases, 0u);
  EXPECT_EQ(s.pending_points, 1u);
  EXPECT_FALSE(s.merged);
  EXPECT_FALSE(fs::exists(dir.str() + "/results.csv"))
      << "merge barrier must hold while a point is pending";

  // The peer "dies": release the flock and drop its lease. A waiting
  // claimer now collects the remainder and performs the merge.
  ::close(held);
  fs::remove(lease);
  opts.no_merge = false;
  const ManifestRunSummary done = run_manifest(m, opts);
  EXPECT_EQ(done.skipped_points, 3u);
  EXPECT_EQ(done.ran_points, 1u);
  EXPECT_TRUE(done.merged);
  EXPECT_EQ(slurp(done.csv_path), golden);
}

TEST(Claim, CleanupRemovesOnlyStaleTemps) {
  TempRunDir dir("temps");
  fs::create_directories(dir.str());
  const std::string stale = dir.str() + "/point_0000.csv.tmp.123.0";
  const std::string fresh = dir.str() + "/point_0001.csv.tmp.124.7";
  const std::string ledger = dir.str() + "/point_0002.csv";
  for (const std::string& p : {stale, fresh, ledger}) {
    std::ofstream os(p);
    os << "x\n";
  }
  age_file(stale, 3600);

  cleanup_stale_temps(dir.str(), 60.0);
  EXPECT_FALSE(fs::exists(stale)) << "aged orphan temp must be removed";
  EXPECT_TRUE(fs::exists(fresh)) << "a live peer's in-flight temp survives";
  EXPECT_TRUE(fs::exists(ledger));
}

TEST(Claim, UniqueTempPathsNeverCollide) {
  const std::string a = unique_temp_path("point_0000.csv");
  const std::string b = unique_temp_path("point_0000.csv");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.find("point_0000.csv.tmp."), 0u);
}

TEST(Claim, ResolveCheckpointEveryValidatesEnv) {
  // The option always wins.
  ::setenv("DF_CHECKPOINT_EVERY", "123", 1);
  EXPECT_EQ(resolve_checkpoint_every(7), 7u);
  // A sane env value resolves.
  EXPECT_EQ(resolve_checkpoint_every(0), 123u);
  // 0 explicitly disables periodic checkpoints.
  ::setenv("DF_CHECKPOINT_EVERY", "0", 1);
  EXPECT_EQ(resolve_checkpoint_every(0), 0u);
  // A negative value must not wrap to a huge unsigned Cycle (which
  // silently disabled checkpointing); it is rejected for the default.
  ::setenv("DF_CHECKPOINT_EVERY", "-5", 1);
  EXPECT_EQ(resolve_checkpoint_every(0), 20000u);
  ::unsetenv("DF_CHECKPOINT_EVERY");
  EXPECT_EQ(resolve_checkpoint_every(0), 20000u);
}

TEST(Claim, LeaseRecordNamesHostPidTimestamp) {
  const std::string record = PointClaimer::lease_record();
  // host:pid:timestamp — two separators, our pid in the middle.
  const std::size_t first = record.find(':');
  const std::size_t second = record.find(':', first + 1);
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(record.substr(first + 1, second - first - 1),
            std::to_string(::getpid()));
  EXPECT_EQ(record.back(), '\n');
}

}  // namespace
}  // namespace dfsim
