// Checkpoint/restart of SimulationRun: a run cut at cycle C, serialized,
// and resumed in a fresh run object must finish with bit-identical
// results to the uninterrupted run — across every experiment shape
// (steady, burst, phased), flow control, ON/OFF sources, and degraded
// topologies. Damaged or mismatched checkpoints must be rejected with a
// pointed message, never silently mis-resumed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/simulator.hpp"

namespace dfsim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.h = 2;  // 9 groups, 36 routers — seconds, not minutes
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 1200;
  cfg.load = 0.3;
  cfg.seed = 11;
  return cfg;
}

void expect_same_steady(const SteadyResult& a, const SteadyResult& b) {
  EXPECT_EQ(a.avg_latency, b.avg_latency);  // exact doubles throughout:
  EXPECT_EQ(a.p99_latency, b.p99_latency);  // resume is bit-identity
  EXPECT_EQ(a.accepted_load, b.accepted_load);
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.source_drop_rate, b.source_drop_rate);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dead_destination_drops, b.dead_destination_drops);
  EXPECT_EQ(a.deadlock, b.deadlock);
}

void expect_same_phased(const PhasedResult& a, const PhasedResult& b) {
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.windows[i].phase, b.windows[i].phase);
    EXPECT_EQ(a.windows[i].window, b.windows[i].window);
    EXPECT_EQ(a.windows[i].pattern, b.windows[i].pattern);
    EXPECT_EQ(a.windows[i].stats.end, b.windows[i].stats.end);
    EXPECT_EQ(a.windows[i].stats.delivered, b.windows[i].stats.delivered);
    EXPECT_EQ(a.windows[i].stats.accepted_load,
              b.windows[i].stats.accepted_load);
    EXPECT_EQ(a.windows[i].stats.avg_latency,
              b.windows[i].stats.avg_latency);
  }
  EXPECT_EQ(a.drain.end, b.drain.end);
  EXPECT_EQ(a.drain.delivered, b.drain.delivered);
  EXPECT_EQ(a.drained, b.drained);
  expect_same_steady(a.total, b.total);
}

// Run to ~cut cycles, checkpoint, restore into a fresh run, finish.
SteadyResult steady_via_cut(const SimConfig& cfg, Cycle cut) {
  SimulationRun a = SimulationRun::steady(cfg);
  a.advance(cut);
  std::stringstream ss;
  a.save_checkpoint(ss);
  SimulationRun b = SimulationRun::steady(cfg);
  b.restore(ss);
  b.run_to_completion();
  return b.steady_result();
}

PhasedResult phased_via_cut(const SimConfig& cfg,
                            const std::vector<Phase>& phases, Cycle cut) {
  SimulationRun a = SimulationRun::phased(cfg, phases);
  a.advance(cut);
  std::stringstream ss;
  a.save_checkpoint(ss);
  SimulationRun b = SimulationRun::phased(cfg, phases);
  b.restore(ss);
  b.run_to_completion();
  return b.phased_result();
}

TEST(Checkpoint, SteadyResumeBitIdenticalVct) {
  const SimConfig cfg = small_config();
  const SteadyResult ref = run_steady(cfg);
  // Cuts inside warmup, inside the measurement span, and near the end.
  for (const Cycle cut : {Cycle{150}, Cycle{900}, Cycle{1550}}) {
    SCOPED_TRACE(cut);
    expect_same_steady(ref, steady_via_cut(cfg, cut));
  }
}

TEST(Checkpoint, SteadyResumeBitIdenticalWormhole) {
  SimConfig cfg = small_config();
  cfg.routing = "ugal";
  cfg.flow = FlowControl::kWormhole;
  cfg.packet_phits = 80;
  cfg.flit_phits = 10;
  const SteadyResult ref = run_steady(cfg);
  expect_same_steady(ref, steady_via_cut(cfg, 700));
}

TEST(Checkpoint, SteadyResumeBitIdenticalFaulted) {
  SimConfig cfg = small_config();
  cfg.fault_spec = "r:4,r:5,r:6,r:7";  // one whole dead group
  const SteadyResult ref = run_steady(cfg);
  expect_same_steady(ref, steady_via_cut(cfg, 800));
}

TEST(Checkpoint, SteadyResumeBitIdenticalOnOffSources) {
  SimConfig cfg = small_config();
  cfg.onoff_on = 0.05;
  cfg.onoff_off = 0.2;
  const SteadyResult ref = run_steady(cfg);
  expect_same_steady(ref, steady_via_cut(cfg, 800));
}

TEST(Checkpoint, SteadyResumeBitIdenticalPiggyback) {
  // PB is the one mechanism with cross-cycle routing state (the
  // published-congestion table), which must survive the checkpoint.
  SimConfig cfg = small_config();
  cfg.routing = "pb";
  const SteadyResult ref = run_steady(cfg);
  expect_same_steady(ref, steady_via_cut(cfg, 800));
}

TEST(Checkpoint, BurstResumeBitIdentical) {
  SimConfig cfg = small_config();
  cfg.burst_packets = 20;
  cfg.max_cycles = 400000;
  const BurstResult ref = run_burst(cfg);
  SimulationRun a = SimulationRun::burst(cfg);
  a.advance(150);
  std::stringstream ss;
  a.save_checkpoint(ss);
  SimulationRun b = SimulationRun::burst(cfg);
  b.restore(ss);
  b.run_to_completion();
  const BurstResult resumed = b.burst_result();
  EXPECT_EQ(ref.consumption_cycles, resumed.consumption_cycles);
  EXPECT_EQ(ref.completed, resumed.completed);
  EXPECT_EQ(ref.deadlock, resumed.deadlock);
}

TEST(Checkpoint, PhasedResumeBitIdentical) {
  SimConfig cfg = small_config();
  const std::vector<Phase> phases = {{800, 2, "", -1.0},
                                     {800, 2, "advg+1", 0.4}};
  const PhasedResult ref = run_phased(cfg, phases);
  // Cuts in warmup, mid-phase 0, and after the mid-run pattern+load
  // switch (the rebuilt-switched-pattern path).
  for (const Cycle cut : {Cycle{200}, Cycle{900}, Cycle{1700}}) {
    SCOPED_TRACE(cut);
    expect_same_phased(ref, phased_via_cut(cfg, phases, cut));
  }
}

TEST(Checkpoint, WorkloadResumeBitIdentical) {
  // Collective with replies, message sizes and an explicit per-job load:
  // the forced-injection queues, packet flags, per-terminal generation
  // probabilities and per-job collector counters all cross the
  // checkpoint boundary.
  SimConfig cfg = small_config();
  cfg.workload = "jobs:2:alltoall:size=1-3:reply=1|ring@0.2";
  cfg.load = 0.15;
  const SteadyResult ref = run_steady(cfg);
  for (const Cycle cut : {Cycle{150}, Cycle{900}}) {
    SCOPED_TRACE(cut);
    const SteadyResult resumed = steady_via_cut(cfg, cut);
    expect_same_steady(ref, resumed);
    ASSERT_EQ(resumed.per_job.size(), ref.per_job.size());
    for (std::size_t j = 0; j < ref.per_job.size(); ++j) {
      EXPECT_EQ(ref.per_job[j].delivered, resumed.per_job[j].delivered);
      EXPECT_EQ(ref.per_job[j].avg_latency, resumed.per_job[j].avg_latency);
    }
  }
}

TEST(Checkpoint, TraceWorkloadResumeReplaysTheCursor) {
  // The cut lands between trace rows; the replay cursor must resume from
  // the checkpoint, neither re-injecting earlier rows nor skipping later
  // ones.
  const std::string path = "checkpoint_test_trace.csv";
  {
    std::ofstream os(path);
    for (int i = 0; i < 40; ++i) {
      os << (i * 30) << "," << (i % 36) << "," << (36 + i % 36) << ",8\n";
    }
  }
  SimConfig cfg = small_config();
  cfg.workload = "trace:" + path;
  const SteadyResult ref = run_steady(cfg);
  const SteadyResult resumed = steady_via_cut(cfg, 600);  // row 20 of 40
  expect_same_steady(ref, resumed);
  EXPECT_GT(ref.delivered, 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveAtCompletionRoundTrips) {
  const SimConfig cfg = small_config();
  SimulationRun a = SimulationRun::steady(cfg);
  a.run_to_completion();
  std::stringstream ss;
  a.save_checkpoint(ss);
  SimulationRun b = SimulationRun::steady(cfg);
  b.restore(ss);
  EXPECT_TRUE(b.done());
  expect_same_steady(a.steady_result(), b.steady_result());
}

// --- rejection of damaged / mismatched checkpoints -----------------------

std::string checkpoint_bytes(const SimConfig& cfg, Cycle cut) {
  SimulationRun run = SimulationRun::steady(cfg);
  run.advance(cut);
  std::stringstream ss;
  run.save_checkpoint(ss);
  return ss.str();
}

void expect_restore_error(const SimConfig& cfg, const std::string& bytes,
                          const std::string& needle) {
  SimulationRun run = SimulationRun::steady(cfg);
  std::istringstream is(bytes);
  try {
    run.restore(is);
    FAIL() << "restore accepted a damaged checkpoint";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(Checkpoint, TruncatedCheckpointRejected) {
  const SimConfig cfg = small_config();
  const std::string full = checkpoint_bytes(cfg, 700);
  for (const std::size_t keep :
       {std::size_t{4}, full.size() / 2, full.size() - 3}) {
    SCOPED_TRACE(keep);
    expect_restore_error(cfg, full.substr(0, keep), "truncated");
  }
}

TEST(Checkpoint, BadMagicRejected) {
  const SimConfig cfg = small_config();
  std::string bytes = checkpoint_bytes(cfg, 700);
  bytes[0] = 'X';
  expect_restore_error(cfg, bytes, "not a dfsim run checkpoint");
}

TEST(Checkpoint, UnknownVersionRejected) {
  const SimConfig cfg = small_config();
  std::string bytes = checkpoint_bytes(cfg, 700);
  bytes[8] = 99;  // the version u32 sits right after the 8-byte magic
  expect_restore_error(cfg, bytes, "version 99 is not supported");
}

TEST(Checkpoint, VersionOneRejectedPointedly) {
  // v2 added the workload knob to the config text and per-job sections to
  // every accumulated window; a v1 stream must name that, not be
  // misparsed as an empty per-job section.
  const SimConfig cfg = small_config();
  std::string bytes = checkpoint_bytes(cfg, 700);
  bytes[8] = 1;
  SimulationRun run = SimulationRun::steady(cfg);
  std::istringstream is(bytes);
  try {
    run.restore(is);
    FAIL() << "restore accepted a version-1 checkpoint";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("workload"), std::string::npos) << msg;
  }
}

TEST(Checkpoint, CorruptTrailingBytesRejected) {
  // The engine section ends in a sentinel; a flipped final byte must
  // trip it rather than yield a quietly-wrong engine state.
  const SimConfig cfg = small_config();
  std::string bytes = checkpoint_bytes(cfg, 700);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
  expect_restore_error(cfg, bytes, "mismatch");
}

TEST(Checkpoint, ConfigDriftRejectedNamingTheKnob) {
  const SimConfig cfg = small_config();
  const std::string bytes = checkpoint_bytes(cfg, 700);
  SimConfig drifted = cfg;
  drifted.load = 0.4;
  SimulationRun run = SimulationRun::steady(drifted);
  std::istringstream is(bytes);
  try {
    run.restore(is);
    FAIL() << "restore accepted a drifted config";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("config drift"), std::string::npos) << msg;
    EXPECT_NE(msg.find("load"), std::string::npos) << msg;
  }
}

TEST(Checkpoint, ShapeMismatchRejected) {
  const SimConfig cfg = small_config();
  const std::string bytes = checkpoint_bytes(cfg, 700);  // a steady run
  SimulationRun run =
      SimulationRun::phased(cfg, {{800, 2, "", -1.0}});
  std::istringstream is(bytes);
  EXPECT_THROW(run.restore(is), std::runtime_error);
}

TEST(Checkpoint, PhaseScheduleMismatchRejected) {
  SimConfig cfg = small_config();
  const std::vector<Phase> phases = {{800, 2, "", -1.0},
                                     {800, 2, "advg+1", -1.0}};
  SimulationRun a = SimulationRun::phased(cfg, phases);
  a.advance(600);
  std::stringstream ss;
  a.save_checkpoint(ss);

  const std::vector<Phase> other = {{800, 2, "", -1.0},
                                    {900, 2, "advg+1", -1.0}};
  SimulationRun b = SimulationRun::phased(cfg, other);
  try {
    b.restore(ss);
    FAIL() << "restore accepted a different phase schedule";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("phase"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RestoreIntoAdvancedRunThrowsLogicError) {
  const SimConfig cfg = small_config();
  const std::string bytes = checkpoint_bytes(cfg, 700);
  SimulationRun run = SimulationRun::steady(cfg);
  run.advance(50);
  std::istringstream is(bytes);
  EXPECT_THROW(run.restore(is), std::logic_error);
}

TEST(Checkpoint, WrapperAndRunObjectAgree) {
  // run_steady / run_phased are thin wrappers over SimulationRun; the
  // two spellings must agree exactly.
  const SimConfig cfg = small_config();
  SimulationRun run = SimulationRun::steady(cfg);
  run.run_to_completion();
  expect_same_steady(run_steady(cfg), run.steady_result());

  const std::vector<Phase> phases = {{600, 2, "advg+1", -1.0}};
  SimulationRun ph = SimulationRun::phased(cfg, phases);
  ph.run_to_completion();
  expect_same_phased(run_phased(cfg, phases), ph.phased_result());
}

}  // namespace
}  // namespace dfsim
